// Documentation lint, run by `make docs-lint` and the ordinary test
// suite: every internal package must carry a package doc comment, and
// every local markdown link in the top-level docs must resolve.
package mpid_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestPackageDocs requires a `// Package <name> ...` doc comment in every
// package under internal/ (and on the root package), so `go doc` has
// something to say about each subsystem.
func TestPackageDocs(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	dirs = append(dirs, ".")
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		pkg := filepath.Base(dir)
		if dir == "." {
			pkg = "mpid"
		}
		if !packageHasDoc(t, dir, pkg) {
			t.Errorf("package %s (%s) has no '// Package %s ...' doc comment", pkg, dir, pkg)
		}
	}
}

// TestCommandDocs requires a `// Command <name> ...` doc comment on every
// main package under cmd/.
func TestCommandDocs(t *testing.T) {
	dirs, err := filepath.Glob("cmd/*")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		name := filepath.Base(dir)
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil || len(files) == 0 {
			continue
		}
		found := false
		for _, f := range files {
			if fileHasPrefixComment(t, f, "// Command "+name+" ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("command %s has no '// Command %s ...' doc comment", dir, name)
		}
	}
}

func packageHasDoc(t *testing.T, dir, pkg string) bool {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if fileHasPrefixComment(t, f, "// Package "+pkg+" ") {
			return true
		}
	}
	return false
}

// fileHasPrefixComment reports whether f contains a comment line starting
// with prefix immediately adjacent to its package clause (i.e. a real doc
// comment, not a stray mention).
func fileHasPrefixComment(t *testing.T, f, prefix string) bool {
	t.Helper()
	data, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		// Walk forward through the comment block; it must end at a
		// package/func clause boundary for godoc to pick it up.
		for j := i + 1; j < len(lines); j++ {
			switch {
			case strings.HasPrefix(lines[j], "//"):
				continue
			case strings.HasPrefix(lines[j], "package "):
				return true
			}
			break
		}
	}
	return false
}

// TestDocSections pins the load-bearing sections and names the
// top-level docs promise each other: DESIGN.md section numbers that
// other docs cite, the flags and packages ARCHITECTURE.md documents,
// and the committed-baseline schemas EXPERIMENTS.md describes. A
// rename or deletion that breaks a cross-reference fails here instead
// of silently leaving a dangling mention.
func TestDocSections(t *testing.T) {
	required := map[string][]string{
		"DESIGN.md": {
			"## 10. Pipelined shuffle/merge engine",
			"## 11. Zero-allocation MPI-D fast path",
			"## 12. The job service (mpid-serve)",
			"## 13. Shuffle-byte reduction",
			"## 14. Transport raw speed",
			"NodeCombine", "NodeArena", "Mcast", "mapred.combiner.fallback",
			"NewRingWorld", "CopyPayloads", "LegacyFraming", "PutFile",
		},
		"EXPERIMENTS.md": {
			"## Extension — Workload suite",
			"## Extension — Shuffle-byte reduction",
			"## Extension — Transport raw speed",
			"### BENCH_workloads.json schema",
			"### BENCH_shufflebytes.json schema",
			"### BENCH_transport.json schema",
			"### Figure 6 (coded)",
			"coded-r1", "mpid-nodearena", "hadoop-nodecombine",
			"ring_vs_chan_small_p50", "max_allocs_per_op",
		},
		"ARCHITECTURE.md": {
			"**`internal/coded`**",
			"Config.NodeCombine", "Job.NodeCombine", "core.NodeArena",
			"Mcast", "CodedReplication",
			"shuffle-byte reduction (ext.)",
			"transport raw speed (ext.)",
			"NewRingWorld", "TCPOptions.LegacyFraming", "Store.PutFile",
		},
		"README.md": {
			"BENCH_shuffle.json", "BENCH_mpid.json", "BENCH_serve.json",
			"BENCH_workloads.json", "BENCH_shufflebytes.json",
			"BENCH_transport.json",
			"-suite shufflebytes", "-suite transport",
		},
	}
	for doc, wants := range required {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		text := string(data)
		for _, want := range wants {
			if !strings.Contains(text, want) {
				t.Errorf("%s: missing required section or name %q", doc, want)
			}
		}
	}
}

// mdLink matches inline markdown links [text](target); images and
// reference-style links are out of scope for these docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks checks that every local (non-URL) link target in the
// top-level docs points at an existing file or directory.
func TestMarkdownLinks(t *testing.T) {
	docs := []string{
		"README.md", "DESIGN.md", "EXPERIMENTS.md", "ARCHITECTURE.md",
		"ROADMAP.md", "CHANGES.md",
	}
	for _, doc := range docs {
		f, err := os.Open(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			for _, m := range mdLink.FindAllStringSubmatch(sc.Text(), -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue // external; not checked offline
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue // intra-document anchor
				}
				if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
					t.Errorf("%s:%d: broken local link %q", doc, lineNo, fmt.Sprint(m[1]))
				}
			}
		}
		if err := sc.Err(); err != nil {
			t.Errorf("%s: %v", doc, err)
		}
		f.Close()
	}
}
