module github.com/ict-repro/mpid

go 1.22
