// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`), plus live micro-benchmarks of
// the real substrates and ablations of the MPI-D design choices called out
// in DESIGN.md §6.
//
// Paper artifacts report their headline quantity via b.ReportMetric so the
// bench output doubles as a reproduction check:
//
//	BenchmarkFigure2aLatencySmall   ratio-1B / ratio-1KB
//	BenchmarkFigure3Bandwidth       peak MB/s per substrate
//	BenchmarkFigure1ShuffleOverhead copy share of reducer lifecycle
//	BenchmarkTable1CopyPercentage   copy %% at the largest swept size
//	BenchmarkFigure6WordCount       MPI-D/Hadoop time ratio
package mpid_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/experiments"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/jetty"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/mpi"
	"github.com/ict-repro/mpid/internal/mpidsim"
	"github.com/ict-repro/mpid/internal/netmodel"
	"github.com/ict-repro/mpid/internal/workload"
)

// ---------------------------------------------------------------------------
// Paper artifacts

func benchFigure2(b *testing.B, panel experiments.SizeRange) {
	var rows []experiments.Figure2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure2(panel, experiments.Model)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Ratio(), "ratio-first")
	b.ReportMetric(rows[len(rows)-1].Ratio(), "ratio-last")
}

func BenchmarkFigure2aLatencySmall(b *testing.B)  { benchFigure2(b, experiments.Small) }
func BenchmarkFigure2bLatencyMedium(b *testing.B) { benchFigure2(b, experiments.Medium) }
func BenchmarkFigure2cLatencyLarge(b *testing.B)  { benchFigure2(b, experiments.Large) }

func BenchmarkFigure3Bandwidth(b *testing.B) {
	var rows []experiments.Figure3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure3(experiments.Model)
		if err != nil {
			b.Fatal(err)
		}
	}
	rpc, jettyPeak, mpiPeak, _ := experiments.PeakBandwidths(rows)
	b.ReportMetric(rpc/1e6, "RPC-peak-MB/s")
	b.ReportMetric(jettyPeak/1e6, "Jetty-peak-MB/s")
	b.ReportMetric(mpiPeak/1e6, "MPI-peak-MB/s")
}

func BenchmarkFigure1ShuffleOverhead(b *testing.B) {
	// 4 GB keeps a bench iteration under a second; the cmd runs 150 GB.
	var copyShare float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1(4 * netmodel.GB)
		copyShare = r.CopyPercent()
	}
	b.ReportMetric(copyShare, "copy-%")
}

func BenchmarkTable1CopyPercentage(b *testing.B) {
	var cells []experiments.Table1Cell
	for i := 0; i < b.N; i++ {
		cells = experiments.Table1(3)
	}
	b.ReportMetric(cells[len(cells)-1].CopyPct, "copy-%-3GB-16/16")
}

func BenchmarkFigure6WordCount(b *testing.B) {
	var rows []experiments.Figure6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure6(2)
	}
	b.ReportMetric(rows[len(rows)-1].Ratio(), "mpid/hadoop-ratio")
}

// ---------------------------------------------------------------------------
// Live substrate micro-benchmarks (real code paths over loopback TCP)

func benchMPIPingPong(b *testing.B, size int64) {
	w, err := mpi.NewTCPWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	go func() {
		c1 := w.Comm(1)
		for {
			data, st, err := c1.Recv(0, mpi.AnyTag)
			if err != nil || st.Tag == 1 {
				return
			}
			if c1.Send(0, 0, data) != nil {
				return
			}
		}
	}()
	c0 := w.Comm(0)
	payload := make([]byte, size)
	b.SetBytes(2 * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c0.Send(1, 0, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := c0.Recv(1, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c0.Send(1, 1, nil)
}

func BenchmarkMPIPingPongTCP_1KB(b *testing.B)  { benchMPIPingPong(b, 1<<10) }
func BenchmarkMPIPingPongTCP_64KB(b *testing.B) { benchMPIPingPong(b, 64<<10) }
func BenchmarkMPIPingPongTCP_1MB(b *testing.B)  { benchMPIPingPong(b, 1<<20) }

func benchRPCEcho(b *testing.B, size int64) {
	srv := hadooprpc.NewServer()
	srv.Register(hadooprpc.NewEchoProtocol())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := hadooprpc.Dial(addr, hadooprpc.EchoProtocolName, hadooprpc.EchoProtocolVersion)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	payload := make([]byte, size)
	b.SetBytes(2 * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call("recv", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHadoopRPCEcho_1KB(b *testing.B)  { benchRPCEcho(b, 1<<10) }
func BenchmarkHadoopRPCEcho_64KB(b *testing.B) { benchRPCEcho(b, 64<<10) }
func BenchmarkHadoopRPCEcho_1MB(b *testing.B)  { benchRPCEcho(b, 1<<20) }

func BenchmarkJettyShuffleFetch_1MB(b *testing.B) {
	store := jetty.NewStore()
	srv := jetty.NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	key := jetty.OutputKey{Job: "bench", Map: 0, Reduce: 0}
	store.Put(key, bytes.Repeat([]byte{7}, 1<<20))
	cli := jetty.NewClient()
	defer cli.Close()
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.FetchMapOutput(addr, key); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Real MPI-D library benchmarks

// benchWordCountJob runs the real WordCount job over the in-process world.
func benchWordCountJob(b *testing.B, job mapred.Job, textBytes int) {
	vocab := workload.NewVocabulary(2_000, 3)
	text := workload.NewTextGenerator(vocab, 1.15, 4).BytesOfText(textBytes)
	splits := mapred.SplitText(text, 32<<10)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapred.Run(job, splits, 4); err != nil {
			b.Fatal(err)
		}
	}
}

var benchMapper = mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
	for _, w := range bytes.Fields(line) {
		if err := emit(w, kv.AppendVLong(nil, 1)); err != nil {
			return err
		}
	}
	return nil
})

var benchReducer = mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
	var total int64
	for _, v := range values {
		n, _, err := kv.ReadVLong(v)
		if err != nil {
			return err
		}
		total += n
	}
	return emit(key, kv.AppendVLong(nil, total))
})

func BenchmarkMPIDWordCountInProc(b *testing.B) {
	benchWordCountJob(b, mapred.Job{
		Mapper:      benchMapper,
		Reducer:     benchReducer,
		Combiner:    mapred.CombinerFromReducer(benchReducer),
		NumReducers: 2,
	}, 512<<10)
}

// ---------------------------------------------------------------------------
// Shuffle engine A/B (DESIGN.md §10) — same workload as cmd/mpid-bench and
// the committed BENCH_shuffle.json, at the smoke scale so a bench run stays
// fast. Compare the two ns/op numbers for the speedup.

func benchShuffleEngine(b *testing.B, pipelined bool) {
	cfg := experiments.SmokeShuffleBench()
	segs := experiments.GenShuffleWorkload(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if pipelined {
			var passes int
			passes, err = experiments.PipelinedShuffleWave(segs, cfg)
			if err == nil && i == 0 {
				b.ReportMetric(float64(passes)/float64(cfg.Reducers), "merge-passes/reducer")
			}
		} else {
			err = experiments.LegacyShuffleWave(segs, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShuffleLegacy(b *testing.B)    { benchShuffleEngine(b, false) }
func BenchmarkShufflePipelined(b *testing.B) { benchShuffleEngine(b, true) }

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §6)

// runCoreWordCount pushes nPairs hot-key pairs through a 2-rank MPI-D
// instance and returns the sender counters.
func runCoreWordCount(b *testing.B, cfg core.Config, nPairs int) core.Counters {
	var counters core.Counters
	err := mpi.Run(2, func(c *mpi.Comm) error {
		local := cfg
		local.Comm = c
		local.Reducers = []int{0}
		d, err := core.Init(local)
		if err != nil {
			return err
		}
		if d.IsSender() {
			word := []byte("hot")
			for i := 0; i < nPairs; i++ {
				if i%16 == 0 {
					word = []byte(fmt.Sprintf("key-%d", i%4096))
				}
				if err := d.Send(word, kv.AppendVLong(nil, 1)); err != nil {
					return err
				}
			}
			if err := d.Finalize(); err != nil {
				return err
			}
			counters = d.Counters()
			return nil
		}
		for {
			if _, _, err := d.Recv(); err == io.EOF {
				break
			} else if err != nil {
				return err
			}
		}
		return d.Finalize()
	})
	if err != nil {
		b.Fatal(err)
	}
	return counters
}

var coreSumCombiner core.CombineFunc = func(_ []byte, values [][]byte) [][]byte {
	var total int64
	for _, v := range values {
		n, _, err := kv.ReadVLong(v)
		if err != nil {
			panic(err)
		}
		total += n
	}
	return [][]byte{kv.AppendVLong(nil, total)}
}

// BenchmarkAblationCombiner quantifies the paper's claim that local
// combination cuts the transmission quantity.
func BenchmarkAblationCombiner(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		cfg := core.Config{}
		if on {
			name = "on"
			cfg.Combiner = coreSumCombiner
		}
		b.Run(name, func(b *testing.B) {
			var cs core.Counters
			for i := 0; i < b.N; i++ {
				cs = runCoreWordCount(b, cfg, 50_000)
			}
			b.ReportMetric(float64(cs.BytesSent), "bytes-shuffled")
			b.ReportMetric(float64(cs.PairsCombined), "pairs-combined")
		})
	}
}

// BenchmarkAblationRealignment compares realigned batch transmission
// (large spill buffer -> few contiguous messages) against near-per-pair
// sends (tiny spill buffer), the design choice that lets MPI-D ride MPI's
// large-message bandwidth.
func BenchmarkAblationRealignment(b *testing.B) {
	for _, c := range []struct {
		name  string
		spill int
	}{
		{"per-pair", 1},
		{"realigned-64KB", 64 << 10},
		{"realigned-1MB", 1 << 20},
	} {
		b.Run(c.name, func(b *testing.B) {
			var cs core.Counters
			for i := 0; i < b.N; i++ {
				cs = runCoreWordCount(b, core.Config{SpillThreshold: c.spill}, 20_000)
			}
			b.ReportMetric(float64(cs.MessagesSent), "messages")
		})
	}
}

// BenchmarkAblationSpillThreshold sweeps the hash-table spill threshold.
func BenchmarkAblationSpillThreshold(b *testing.B) {
	for _, spill := range []int{4 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dKB", spill>>10), func(b *testing.B) {
			var cs core.Counters
			for i := 0; i < b.N; i++ {
				cs = runCoreWordCount(b, core.Config{
					SpillThreshold: spill,
					Combiner:       coreSumCombiner,
				}, 50_000)
			}
			b.ReportMetric(float64(cs.Spills), "spills")
		})
	}
}

// BenchmarkAblationTransport compares the in-process and TCP transports
// under the same MPI-D workload.
func BenchmarkAblationTransport(b *testing.B) {
	body := func(c *mpi.Comm) error {
		d, err := core.Init(core.Config{Comm: c, Reducers: []int{0}, Combiner: coreSumCombiner})
		if err != nil {
			return err
		}
		if d.IsSender() {
			for i := 0; i < 20_000; i++ {
				if err := d.Send([]byte(fmt.Sprintf("k%d", i%512)), kv.AppendVLong(nil, 1)); err != nil {
					return err
				}
			}
			return d.Finalize()
		}
		for {
			if _, _, err := d.Recv(); err == io.EOF {
				break
			} else if err != nil {
				return err
			}
		}
		return d.Finalize()
	}
	b.Run("inproc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := mpi.Run(2, body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := mpi.NewTCPWorld(2)
			if err != nil {
				b.Fatal(err)
			}
			if err := mpi.RunOn(w, body); err != nil {
				b.Fatal(err)
			}
			w.Close()
		}
	})
}

// BenchmarkAblationPartitionSkew compares the hash-mod partitioner against
// a degenerate all-to-one partitioner across 4 reducers.
func BenchmarkAblationPartitionSkew(b *testing.B) {
	run := func(b *testing.B, part core.PartitionFunc) {
		err := mpi.Run(6, func(c *mpi.Comm) error {
			d, err := core.Init(core.Config{
				Comm:        c,
				Reducers:    []int{0, 1, 2, 3},
				Partitioner: part,
			})
			if err != nil {
				return err
			}
			if d.IsSender() {
				for i := 0; i < 10_000; i++ {
					if err := d.Send([]byte(fmt.Sprintf("key-%d", i)), []byte("v")); err != nil {
						return err
					}
				}
				return d.Finalize()
			}
			for {
				if _, _, err := d.Recv(); err == io.EOF {
					break
				} else if err != nil {
					return err
				}
			}
			return d.Finalize()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, nil) // default hash-mod
		}
	})
	b.Run("all-to-one", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, func([]byte, int) int { return 0 })
		}
	})
}

// BenchmarkAblationAsyncOverlap flips the Isend overlap of the simulated
// MPI-D system (the §IV.A future-work optimization).
func BenchmarkAblationAsyncOverlap(b *testing.B) {
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		b.Run(name, func(b *testing.B) {
			var jobSecs float64
			for i := 0; i < b.N; i++ {
				p := mpidsim.WordCount(4 * netmodel.GB)
				p.Async = async
				jobSecs = mpidsim.Run(p).JobTime.Seconds()
			}
			b.ReportMetric(jobSecs, "sim-job-s")
		})
	}
}

// BenchmarkFigure6Live runs the identical WordCount on the real mini-Hadoop
// engine and the real MPI-D runtime — the live analogue of Figure 6.
func BenchmarkFigure6Live(b *testing.B) {
	var rows []experiments.Figure6LiveRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure6Live([]int64{256 << 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Ratio(), "mpid/hadoop-live-ratio")
}
