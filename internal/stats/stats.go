// Package stats provides the small statistics and rendering toolkit the
// experiment harness uses: streaming summaries, percentiles, histograms and
// fixed-width tables that print the same rows and series the paper reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates observations and answers the usual questions. The
// zero value is ready to use. Values are retained to support percentiles;
// the experiments here observe at most a few thousand points.
type Summary struct {
	values []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
}

// AddDuration records a time observation in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of observations.
func (s *Summary) Count() int { return len(s.values) }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 with none.
func (s *Summary) Min() float64 {
	s.ensureSorted()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[0]
}

// Max returns the largest observation, or 0 with none.
func (s *Summary) Max() float64 {
	s.ensureSorted()
	if len(s.values) == 0 {
		return 0
	}
	return s.values[len(s.values)-1]
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0..100) by linear interpolation
// between closest ranks.
func (s *Summary) Percentile(p float64) float64 {
	s.ensureSorted()
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Summary) Median() float64 { return s.Percentile(50) }

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Values returns a copy of the observations in sorted order.
func (s *Summary) Values() []float64 {
	s.ensureSorted()
	return append([]float64(nil), s.values...)
}

// ---------------------------------------------------------------------------
// Table rendering

// Table renders rows with aligned columns, suitable for terminal output and
// EXPERIMENTS.md code blocks.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = FormatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Formatting helpers

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e15:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	case av >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// FormatDuration renders a duration with sensible units for the experiment
// tables (µs under 1 ms, ms under 10 s, seconds above).
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < 10*time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

// FormatBytes renders a byte count with binary units (64 MB-style, as the
// paper writes sizes).
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatRate renders a bytes/second rate in MB/s as the paper does.
func FormatRate(bytesPerSec float64) string {
	return fmt.Sprintf("%.2fMB/s", bytesPerSec/1e6)
}

// ---------------------------------------------------------------------------
// Histogram for Figure-1-style distributions.

// Histogram buckets observations into fixed-width bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram creates a histogram over [lo, hi) with n bins.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records an observation; out-of-range values are tallied separately.
func (h *Histogram) Add(v float64) {
	switch {
	case v < h.Lo:
		h.under++
	case v >= h.Hi:
		h.over++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // float edge
			i--
		}
		h.Counts[i]++
	}
}

// Outliers returns counts below Lo and at-or-above Hi.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// String renders the histogram as an ASCII bar chart.
func (h *Histogram) String() string {
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	var b strings.Builder
	for i, c := range h.Counts {
		bars := c * 50 / maxCount
		fmt.Fprintf(&b, "%10s |%s %d\n",
			FormatFloat(h.Lo+float64(i)*width), strings.Repeat("#", bars), c)
	}
	return b.String()
}
