package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.Count() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Fatalf("count/sum/mean = %d/%g/%g", s.Count(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 || s.Median() != 3 {
		t.Fatalf("min/max/median = %g/%g/%g", s.Min(), s.Max(), s.Median())
	}
	want := math.Sqrt(2)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.Stddev(), want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryPercentileInterpolation(t *testing.T) {
	var s Summary
	for i := 1; i <= 4; i++ {
		s.Add(float64(i)) // 1,2,3,4
	}
	if got := s.Percentile(50); got != 2.5 {
		t.Errorf("p50 = %g, want 2.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	if got := s.Percentile(100); got != 4 {
		t.Errorf("p100 = %g, want 4", got)
	}
	if got := s.Percentile(-5); got != 1 {
		t.Errorf("p-5 = %g, want clamp to 1", got)
	}
}

func TestSummaryAddAfterSortKeepsCorrectness(t *testing.T) {
	var s Summary
	s.Add(10)
	_ = s.Min() // forces sort
	s.Add(1)
	if s.Min() != 1 || s.Max() != 10 {
		t.Fatalf("min/max after late add = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryPercentileBoundsProperty(t *testing.T) {
	f := func(vals []float64, p float64) bool {
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		if len(vals) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		got := s.Percentile(p)
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryValuesSortedCopy(t *testing.T) {
	var s Summary
	s.Add(3)
	s.Add(1)
	v := s.Values()
	if !sort.Float64sAreSorted(v) {
		t.Fatal("Values not sorted")
	}
	v[0] = 99
	if s.Min() == 99 {
		t.Fatal("Values aliases internal storage")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("size", "latency", "ratio")
	tb.AddRow("1KB", 8900*time.Microsecond, 15.1)
	tb.AddRow("1MB", 1259*time.Millisecond, 123.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "size") || !strings.Contains(lines[0], "ratio") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(out, "8.90ms") || !strings.Contains(out, "15.10") {
		t.Errorf("row formatting wrong:\n%s", out)
	}
	// Columns align: all rows should place column 2 at the same offset.
	off := strings.Index(lines[0], "latency")
	if off < 0 || len(lines[2]) < off {
		t.Fatalf("alignment check impossible:\n%s", out)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "0.5µs"},
		{522 * time.Microsecond, "522.0µs"},
		{8900 * time.Microsecond, "8.90ms"},
		{1259 * time.Millisecond, "1259.00ms"},
		{56827 * time.Millisecond, "56.8s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{1, "1B"}, {512, "512B"}, {1024, "1KB"}, {64 << 20, "64MB"},
		{150 << 30, "150GB"}, {1536, "B"},
	}
	for _, c := range cases[:5] {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
	if got := FormatBytes(1536); got != "1536B" {
		t.Errorf("FormatBytes(1536) = %q, want fallback bytes", got)
	}
}

func TestFormatFloat(t *testing.T) {
	if got := FormatFloat(123); got != "123" {
		t.Errorf("FormatFloat(123) = %q", got)
	}
	if got := FormatFloat(0.0102); got != "0.0102" {
		t.Errorf("FormatFloat(0.0102) = %q", got)
	}
	if got := FormatFloat(128.5); got != "128.5" {
		t.Errorf("FormatFloat(128.5) = %q", got)
	}
}

func TestFormatRate(t *testing.T) {
	if got := FormatRate(111e6); got != "111.00MB/s" {
		t.Errorf("FormatRate = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1, 2.5, 9.99, 10, -1, 100} {
		h.Add(v)
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Fatalf("outliers = %d/%d, want 1/2", under, over)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("in-range count = %d, want 4", total)
	}
	if h.Counts[0] != 2 { // 0 and 1 both land in [0,2)
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("histogram render has no bars")
	}
}

func TestHistogramInvalidBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}
