// Package hadoopsim simulates Hadoop 0.20 MapReduce on the modelled
// cluster, reproducing the mechanisms behind the paper's §II.A
// measurements (Figure 1 and Table I) and the Hadoop side of Figure 6:
//
//   - HDFS-style block placement: one map task per 64 MB block, data-local;
//   - jobtracker scheduling over heartbeats: a tasktracker receives at most
//     one map and one reduce task per 3-second heartbeat (the 0.20
//     behaviour), with reduce slow-start after a fraction of maps finish;
//   - per-task JVM startup cost;
//   - the shuffle copy stage: every reduce task fetches its partition from
//     every map output over the Jetty data path — each fetch is a small
//     random disk read at the source plus an HTTP transfer, so total fetch
//     count grows as maps x reduces while fetch size shrinks, which is what
//     turns shuffle seek- and contention-bound at scale and drives the copy
//     share of Table I from ~35-45% at 1 GB to ~70-83% at 150 GB;
//   - merge/sort and the reduce phase proper.
//
// The per-reducer copy/sort/reduce statistics the simulator records are the
// series Figure 1 plots; the paper's observation that 56 (= 7 nodes x 8
// slots) first-wave reducers sit near the total map-phase duration falls
// out of the model: those reducers hold slots from the start and their
// copy clock runs while they wait for map outputs to exist.
package hadoopsim

import (
	"fmt"
	"math/rand"

	"github.com/ict-repro/mpid/internal/cluster"
	"github.com/ict-repro/mpid/internal/des"
	"github.com/ict-repro/mpid/internal/netmodel"
	"github.com/ict-repro/mpid/internal/stats"
)

// Params configures one simulated job.
type Params struct {
	// Cluster is the hardware model; Default() matches the paper.
	Cluster cluster.Config
	// InputBytes is the job input size.
	InputBytes int64
	// BlockSize is the HDFS block size (default 64 MB, the paper's value).
	BlockSize int64
	// NumReduceTasks is the reduce task count; 0 means one per map task,
	// GridMix JavaSort's data-proportional setting (the paper's 150 GB run
	// shows 2345 reducers against 2400 blocks).
	NumReduceTasks int
	// MaxMapSlots and MaxReduceSlots are per-node concurrency limits, the
	// Table I configuration axis (4/2, 4/4, 8/8, 16/16).
	MaxMapSlots, MaxReduceSlots int

	// MapCPUBytesPerSec is the per-core throughput of the map function
	// including the collect/sort/spill machinery.
	MapCPUBytesPerSec float64
	// ReduceCPUBytesPerSec is the per-core reduce function throughput.
	ReduceCPUBytesPerSec float64
	// MapSelectivity is map output bytes per input byte (after the
	// combiner): 1.0 for JavaSort, small for WordCount.
	MapSelectivity float64
	// ReduceSelectivity is reduce output bytes per reduce input byte.
	ReduceSelectivity float64

	// TaskStartup is the per-task JVM spawn cost.
	TaskStartup des.Time
	// JobSetup is the fixed job submission/initialization cost.
	JobSetup des.Time
	// Heartbeat is the tasktracker heartbeat interval (3 s in 0.20).
	Heartbeat des.Time
	// SlowstartFraction is the completed-maps fraction before reducers
	// launch (mapred.reduce.slowstart default 0.05).
	SlowstartFraction float64
	// CopierThreads bounds a reducer's parallel fetches (default 5).
	CopierThreads int
	// FetchHTTPLatency is the per-fetch Jetty request overhead.
	FetchHTTPLatency des.Time
	// SortFixed is the post-copy "sort" phase the paper measures at
	// ~0.0102 s (the merge already happened during copy).
	SortFixed des.Time
	// InMemoryMergeLimit is the largest reduce input merged in memory;
	// bigger inputs are re-read from disk before the reduce phase
	// (mapred.job.shuffle.merge.percent behaviour, coarsely).
	InMemoryMergeLimit int64
	// PageCacheBytes is the OS page cache available per node for map
	// outputs. While a node's outputs fit, shuffle fetches are served
	// from memory and pay no seeks; beyond it, the uncached fraction
	// pays the full random-read cost. This is the mechanism behind Table
	// I's jump between 27 GB (cached, copy ~36-48%) and 81+ GB
	// (disk-bound, copy ~60-83%). Default 8 GB of the 16 GB nodes.
	PageCacheBytes int64

	// Seed drives deterministic per-task jitter; JitterFrac is the +/-
	// fraction applied to startup and CPU times.
	Seed       int64
	JitterFrac float64

	// Speculative enables speculative execution of straggling map tasks
	// (mapred.map.tasks.speculative.execution): once no fresh tasks
	// remain, a tracker with an idle slot duplicates a running task that
	// has exceeded SpeculativeFactor x the mean completed duration; the
	// first attempt to finish wins and the loser is killed.
	Speculative bool
	// SpeculativeFactor is the straggler threshold (default 1.5).
	SpeculativeFactor float64
	// SlowNode injects a straggler: tasks on worker SlowNode-1 run their
	// CPU phase SlowNodeFactor times slower — a failing disk or a
	// co-tenant hog, the situations speculation exists for. 0 disables
	// injection (the field is 1-based so the zero value is "none").
	SlowNode       int
	SlowNodeFactor float64
}

// withDefaults fills zero fields.
func (p Params) withDefaults() Params {
	if p.Cluster.Nodes == 0 {
		p.Cluster = cluster.Default()
	}
	if p.BlockSize == 0 {
		p.BlockSize = 64 * netmodel.MB
	}
	if p.MaxMapSlots == 0 {
		p.MaxMapSlots = 8
	}
	if p.MaxReduceSlots == 0 {
		p.MaxReduceSlots = 8
	}
	if p.MapCPUBytesPerSec == 0 {
		p.MapCPUBytesPerSec = 12e6
	}
	if p.ReduceCPUBytesPerSec == 0 {
		p.ReduceCPUBytesPerSec = 30e6
	}
	if p.MapSelectivity == 0 {
		p.MapSelectivity = 1.0
	}
	if p.TaskStartup == 0 {
		p.TaskStartup = des.FromSeconds(1.5)
	}
	if p.JobSetup == 0 {
		p.JobSetup = des.FromSeconds(5)
	}
	if p.Heartbeat == 0 {
		p.Heartbeat = des.FromSeconds(3)
	}
	if p.SlowstartFraction == 0 {
		p.SlowstartFraction = 0.05
	}
	if p.CopierThreads == 0 {
		p.CopierThreads = 5
	}
	if p.FetchHTTPLatency == 0 {
		p.FetchHTTPLatency = netmodel.Jetty().Latency(0)
	}
	if p.SortFixed == 0 {
		p.SortFixed = des.FromSeconds(0.0102)
	}
	if p.InMemoryMergeLimit == 0 {
		p.InMemoryMergeLimit = 100 * netmodel.MB
	}
	if p.PageCacheBytes == 0 {
		p.PageCacheBytes = 8 * netmodel.GB
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.2
	}
	if p.SpeculativeFactor == 0 {
		p.SpeculativeFactor = 1.5
	}
	if p.SlowNodeFactor == 0 {
		p.SlowNodeFactor = 3
	}
	return p
}

// JavaSort returns the GridMix JavaSort workload of §II.A on the paper's
// cluster: identity map/reduce over 100-byte records, selectivity 1, reduce
// tasks proportional to input.
func JavaSort(inputBytes int64, maxMap, maxReduce int) Params {
	p := Params{
		InputBytes:     inputBytes,
		MaxMapSlots:    maxMap,
		MaxReduceSlots: maxReduce,
		// Sorting 64 MB of 100-byte records in the 0.20 map-side
		// collect/spill path.
		MapCPUBytesPerSec:    12e6,
		ReduceCPUBytesPerSec: 15e6,
		MapSelectivity:       1.0,
		ReduceSelectivity:    1.0,
	}
	return p.withDefaults()
}

// WordCount returns the §IV.C Hadoop WordCount workload: text tokenization
// with a combiner, 7/7 slots, a single reduce task (as the paper's
// experiment configures), heavy per-record CPU.
func WordCount(inputBytes int64) Params {
	p := Params{
		InputBytes:     inputBytes,
		MaxMapSlots:    7,
		MaxReduceSlots: 7,
		NumReduceTasks: 1,
		// Java text tokenization + per-word object churn + combiner +
		// spill sort: low per-core throughput.
		MapCPUBytesPerSec:    1.5e6,
		ReduceCPUBytesPerSec: 20e6,
		// The combiner collapses each spill to roughly the vocabulary.
		MapSelectivity:    0.05,
		ReduceSelectivity: 0.1,
	}
	return p.withDefaults()
}

// MapStat records one map task.
type MapStat struct {
	Task       int
	Node       int
	Start, End des.Time
}

// Duration returns the task's wall time.
func (m MapStat) Duration() des.Time { return m.End - m.Start }

// ReduceStat records one reduce task, split into the phases Figure 1 plots.
type ReduceStat struct {
	Task       int
	Node       int
	Start, End des.Time
	// Copy is the shuffle copy stage: from task start to the last map
	// output fetched — the quantity the paper measures from Hadoop logs.
	Copy des.Time
	// Sort is the post-copy merge accounting phase.
	Sort des.Time
	// Reduce is the user reduce phase.
	Reduce des.Time
	// FirstWave marks reducers launched before the map phase ended; the
	// paper deletes these 56 stragglers from Figure 1.
	FirstWave bool
}

// Duration returns the task's wall time.
func (r ReduceStat) Duration() des.Time { return r.End - r.Start }

// Report is the outcome of one simulated job.
type Report struct {
	Params      Params
	NumMaps     int
	NumReduces  int
	JobTime     des.Time
	MapPhaseEnd des.Time
	Maps        []MapStat
	Reduces     []ReduceStat
	// Speculated counts duplicate map attempts launched (speculative
	// execution enabled).
	Speculated int
}

// CopyPercent returns Table I's metric: the sum of all copy-stage time
// divided by the sum of all mapper and reducer task execution time.
func (r *Report) CopyPercent() float64 {
	var copySum, total float64
	for _, m := range r.Maps {
		total += m.Duration().Seconds()
	}
	for _, rd := range r.Reduces {
		total += rd.Duration().Seconds()
		copySum += rd.Copy.Seconds()
	}
	if total == 0 {
		return 0
	}
	return 100 * copySum / total
}

// CopySummary returns the copy-stage distribution over non-first-wave
// reducers, the population Figure 1 plots.
func (r *Report) CopySummary() *stats.Summary {
	var s stats.Summary
	for _, rd := range r.Reduces {
		if !rd.FirstWave {
			s.AddDuration(rd.Copy)
		}
	}
	return &s
}

// ReduceSummary returns the reduce-stage distribution over non-first-wave
// reducers.
func (r *Report) ReduceSummary() *stats.Summary {
	var s stats.Summary
	for _, rd := range r.Reduces {
		if !rd.FirstWave {
			s.AddDuration(rd.Reduce)
		}
	}
	return &s
}

// SortSummary returns the sort-stage distribution.
func (r *Report) SortSummary() *stats.Summary {
	var s stats.Summary
	for _, rd := range r.Reduces {
		if !rd.FirstWave {
			s.AddDuration(rd.Sort)
		}
	}
	return &s
}

// FirstWaveCount returns the number of first-wave (straggler) reducers.
func (r *Report) FirstWaveCount() int {
	n := 0
	for _, rd := range r.Reduces {
		if rd.FirstWave {
			n++
		}
	}
	return n
}

// Run simulates the job to completion and returns the report.
func Run(p Params) *Report {
	p = p.withDefaults()
	if p.InputBytes <= 0 {
		panic(fmt.Sprintf("hadoopsim: InputBytes must be positive, got %d", p.InputBytes))
	}
	sim := newSim(p)
	sim.run()
	return sim.report
}

// sim is the running state of one job simulation.
type sim struct {
	p       Params
	eng     *des.Engine
	cl      *cluster.Cluster
	workers []*cluster.Node // node 0 is the master, as in the paper
	rng     *rand.Rand

	numMaps    int
	numReduces int
	partBytes  int64 // per (map, reduce) partition size

	nextMap    int
	nextReduce int

	completedMaps   int
	completedByNode []int // per worker index
	mapProgress     *des.Signal
	mapPhaseEnd     des.Time

	// Speculation state.
	mapTaskDone  []bool           // winner recorded per task
	mapRunning   map[int]des.Time // task -> earliest attempt start
	mapDup       map[int]bool     // task already duplicated
	doneDurSum   float64          // completed map durations (seconds)
	doneDurCount int
	speculated   int // duplicates launched (for tests/reporting)

	mapsDone    int
	reducesDone int

	// seekFactor is the uncached fraction of map outputs per node: the
	// share of shuffle fetches that pay a real disk seek.
	seekFactor float64

	report *Report
}

func newSim(p Params) *sim {
	eng := des.New()
	cl := cluster.New(eng, p.Cluster)
	numMaps := int((p.InputBytes + p.BlockSize - 1) / p.BlockSize)
	numReduces := p.NumReduceTasks
	if numReduces <= 0 {
		numReduces = numMaps
	}
	mapOut := int64(float64(p.BlockSize) * p.MapSelectivity)
	part := mapOut / int64(numReduces)
	if part < 1 {
		part = 1
	}
	s := &sim{
		p:               p,
		eng:             eng,
		cl:              cl,
		workers:         cl.Nodes[1:],
		rng:             rand.New(rand.NewSource(p.Seed + 1)),
		numMaps:         numMaps,
		numReduces:      numReduces,
		partBytes:       part,
		completedByNode: make([]int, len(cl.Nodes)-1),
		mapProgress:     des.NewSignal(eng),
		mapTaskDone:     make([]bool, numMaps),
		mapRunning:      make(map[int]des.Time),
		mapDup:          make(map[int]bool),
	}
	outputPerNode := float64(p.InputBytes) * p.MapSelectivity / float64(len(cl.Nodes)-1)
	if outputPerNode > float64(p.PageCacheBytes) {
		s.seekFactor = 1 - float64(p.PageCacheBytes)/outputPerNode
	}
	s.report = &Report{
		Params:     p,
		NumMaps:    numMaps,
		NumReduces: numReduces,
		Maps:       make([]MapStat, 0, numMaps),
		Reduces:    make([]ReduceStat, 0, numReduces),
	}
	return s
}

// jitter returns a deterministic multiplicative factor in [1-J, 1+J].
func (s *sim) jitter() float64 {
	j := s.p.JitterFrac
	return 1 - j + 2*j*s.rng.Float64()
}

func (s *sim) run() {
	for wi := range s.workers {
		wi := wi
		s.eng.GoAt(s.p.JobSetup, fmt.Sprintf("tracker-%d", wi), func(p *des.Proc) {
			s.tracker(p, wi)
		})
	}
	s.eng.Run()
	if s.mapsDone != s.numMaps || s.reducesDone != s.numReduces {
		panic(fmt.Sprintf("hadoopsim: job ended with %d/%d maps, %d/%d reduces",
			s.mapsDone, s.numMaps, s.reducesDone, s.numReduces))
	}
	// The engine clock stops at the last completion event: job end.
	s.report.JobTime = s.eng.Now()
	s.report.MapPhaseEnd = s.mapPhaseEnd
	s.report.Speculated = s.speculated
}

// tracker is one tasktracker's heartbeat loop: at most one map and one
// reduce assignment per beat, as in Hadoop 0.20.
func (s *sim) tracker(p *des.Proc, wi int) {
	node := s.workers[wi]
	mapSlots := des.NewResource(s.eng, fmt.Sprintf("map-slots-%d", wi), s.p.MaxMapSlots)
	reduceSlots := des.NewResource(s.eng, fmt.Sprintf("reduce-slots-%d", wi), s.p.MaxReduceSlots)
	for {
		mapsExhausted := s.nextMap >= s.numMaps &&
			(!s.p.Speculative || s.completedMaps >= s.numMaps)
		if mapsExhausted && s.nextReduce >= s.numReduces {
			return
		}
		// One map assignment per heartbeat.
		if s.nextMap < s.numMaps && mapSlots.InUse() < mapSlots.Capacity() {
			task := s.nextMap
			s.nextMap++
			s.mapRunning[task] = s.eng.Now()
			mapSlots.Acquire(p, 1)
			s.eng.Go(fmt.Sprintf("map-%d", task), func(tp *des.Proc) {
				s.mapTask(tp, task, node)
				mapSlots.Release(1)
			})
		} else if s.p.Speculative && s.nextMap >= s.numMaps &&
			mapSlots.InUse() < mapSlots.Capacity() {
			// No fresh work: duplicate one straggling attempt.
			if task, ok := s.pickStraggler(); ok {
				s.mapDup[task] = true
				s.speculated++
				mapSlots.Acquire(p, 1)
				s.eng.Go(fmt.Sprintf("map-%d-spec", task), func(tp *des.Proc) {
					s.mapTask(tp, task, node)
					mapSlots.Release(1)
				})
			}
		}
		// One reduce assignment per heartbeat, after slow-start.
		slowstartMet := float64(s.completedMaps) >= s.p.SlowstartFraction*float64(s.numMaps)
		if s.nextReduce < s.numReduces && slowstartMet && reduceSlots.InUse() < reduceSlots.Capacity() {
			task := s.nextReduce
			s.nextReduce++
			reduceSlots.Acquire(p, 1)
			s.eng.Go(fmt.Sprintf("reduce-%d", task), func(tp *des.Proc) {
				s.reduceTask(tp, task, node, wi)
				reduceSlots.Release(1)
			})
		}
		p.Sleep(s.p.Heartbeat)
	}
}

// pickStraggler returns a running, not-yet-duplicated task whose runtime
// exceeds SpeculativeFactor x the mean completed duration.
func (s *sim) pickStraggler() (int, bool) {
	if s.doneDurCount == 0 {
		return 0, false
	}
	threshold := s.p.SpeculativeFactor * s.doneDurSum / float64(s.doneDurCount)
	best, bestAge := -1, 0.0
	for task, started := range s.mapRunning {
		if s.mapDup[task] || s.mapTaskDone[task] {
			continue
		}
		age := (s.eng.Now() - started).Seconds()
		if age > threshold && age > bestAge {
			best, bestAge = task, age
		}
	}
	return best, best >= 0
}

// cpuRate returns the map CPU throughput on a node, honouring straggler
// injection.
func (s *sim) cpuRate(node *cluster.Node) float64 {
	rate := s.p.MapCPUBytesPerSec
	if s.p.SlowNode > 0 && s.workerIndexOf(node) == s.p.SlowNode-1 {
		rate /= s.p.SlowNodeFactor
	}
	return rate
}

// mapTask simulates one map task attempt: JVM start, block read,
// map+collect CPU, output write. With speculation, a losing attempt
// observes the winner at phase boundaries and aborts (the kill signal).
func (s *sim) mapTask(p *des.Proc, task int, node *cluster.Node) {
	start := p.Now()
	jit := s.jitter()
	p.Sleep(des.FromSeconds(s.p.TaskStartup.Seconds() * jit))
	if s.mapTaskDone[task] {
		return // killed: the other attempt won during startup
	}

	bytes := s.blockBytes(task)
	node.ReadStream(p, bytes)
	if s.mapTaskDone[task] {
		return
	}
	node.Compute(p, bytes, s.cpuRate(node)/jit)
	if s.mapTaskDone[task] {
		return
	}
	out := int64(float64(bytes) * s.p.MapSelectivity)
	node.WriteStream(p, out)
	if s.mapTaskDone[task] {
		return
	}

	// This attempt wins the task.
	s.mapTaskDone[task] = true
	delete(s.mapRunning, task)
	dur := (p.Now() - start).Seconds()
	s.doneDurSum += dur
	s.doneDurCount++

	wi := s.workerIndexOf(node)
	s.completedMaps++
	s.completedByNode[wi]++
	if s.completedMaps == s.numMaps {
		s.mapPhaseEnd = p.Now()
	}
	s.mapProgress.Fire()
	s.report.Maps = append(s.report.Maps, MapStat{Task: task, Node: node.ID, Start: start, End: p.Now()})
	s.taskFinished(true)
}

// blockBytes returns the size of the task's block (the last may be short).
func (s *sim) blockBytes(task int) int64 {
	if task == s.numMaps-1 {
		if rem := s.p.InputBytes % s.p.BlockSize; rem != 0 {
			return rem
		}
	}
	return s.p.BlockSize
}

func (s *sim) workerIndexOf(node *cluster.Node) int { return node.ID - 1 }

// reduceTask simulates one reduce task: copy (fetch from all maps as they
// complete), sort, reduce.
func (s *sim) reduceTask(p *des.Proc, task int, node *cluster.Node, wi int) {
	start := p.Now()
	firstWave := s.completedMaps < s.numMaps
	jit := s.jitter()
	p.Sleep(des.FromSeconds(s.p.TaskStartup.Seconds() * jit))

	// Copy stage: fetch this task's partition from every map output.
	cursor := make([]int, len(s.workers))
	fetched := 0
	for fetched < s.numMaps {
		var latches []*des.Done
		progressed := false
		for si := range s.workers {
			k := s.completedByNode[si] - cursor[si]
			if k <= 0 {
				continue
			}
			cursor[si] += k
			fetched += k
			progressed = true
			latches = append(latches, s.fetch(si, wi, k))
		}
		if len(latches) > 0 {
			des.WaitAll(p, latches...)
		}
		if fetched < s.numMaps && !progressed {
			s.mapProgress.Wait(p)
		}
	}
	copyEnd := p.Now()

	// Sort stage: the final merge bookkeeping Hadoop's logs time at ~10 ms.
	p.Sleep(s.p.SortFixed)
	sortEnd := p.Now()

	// Reduce stage: run the reduce function over the merged partition
	// (re-read from disk only when it exceeded the in-memory merge
	// buffer), write the output.
	totalIn := s.partBytes * int64(s.numMaps)
	if totalIn > s.p.InMemoryMergeLimit {
		node.ReadStream(p, totalIn)
	}
	node.Compute(p, totalIn, s.p.ReduceCPUBytesPerSec/jit)
	node.WriteStream(p, int64(float64(totalIn)*s.p.ReduceSelectivity))
	end := p.Now()

	s.report.Reduces = append(s.report.Reduces, ReduceStat{
		Task: task, Node: node.ID,
		Start: start, End: end,
		Copy:      copyEnd - start,
		Sort:      sortEnd - copyEnd,
		Reduce:    end - sortEnd,
		FirstWave: firstWave,
	})
	s.taskFinished(false)
}

// fetch models copying k map outputs' partitions from source worker si to
// destination worker wi: a random read at the source (k seeks), the HTTP
// transfer, the local merge write, and per-request servlet latency
// amortized over the copier threads. It returns a completion latch so
// fetches from different sources overlap, as the parallel copiers do.
func (s *sim) fetch(si, wi, k int) *des.Done {
	done := des.NewDone(s.eng)
	src, dst := s.workers[si], s.workers[wi]
	bytes := int64(k) * s.partBytes
	// Only the uncached fraction of fetches seeks on the source disk.
	seeks := int(float64(k) * s.seekFactor)
	s.eng.Go(fmt.Sprintf("fetch-%d->%d", si, wi), func(p *des.Proc) {
		src.ReadRandom(p, bytes, seeks)
		s.cl.Transfer(p, src, dst, bytes)
		dst.WriteStream(p, bytes)
		lat := s.p.FetchHTTPLatency.Seconds() * float64(k) / float64(s.p.CopierThreads)
		p.Sleep(des.FromSeconds(lat))
		done.Complete()
	})
	return done
}

// taskFinished tracks completion of the whole job.
func (s *sim) taskFinished(isMap bool) {
	if isMap {
		s.mapsDone++
	} else {
		s.reducesDone++
	}
}
