package hadoopsim

import (
	"testing"

	"github.com/ict-repro/mpid/internal/netmodel"
)

func TestJavaSortSmallJobConsistency(t *testing.T) {
	r := Run(JavaSort(1*netmodel.GB, 8, 8))
	if r.NumMaps != 16 {
		t.Fatalf("NumMaps = %d, want 16 (1GB / 64MB)", r.NumMaps)
	}
	if r.NumReduces != 16 {
		t.Fatalf("NumReduces = %d, want 16 (proportional)", r.NumReduces)
	}
	if len(r.Maps) != 16 || len(r.Reduces) != 16 {
		t.Fatalf("stats: %d maps, %d reduces", len(r.Maps), len(r.Reduces))
	}
	if r.JobTime <= 0 {
		t.Fatal("JobTime not positive")
	}
	if r.MapPhaseEnd <= 0 || r.MapPhaseEnd > r.JobTime {
		t.Fatalf("MapPhaseEnd = %v outside (0, %v]", r.MapPhaseEnd, r.JobTime)
	}
	for _, m := range r.Maps {
		if m.End <= m.Start {
			t.Fatalf("map %d has non-positive duration", m.Task)
		}
	}
	for _, rd := range r.Reduces {
		if rd.End <= rd.Start || rd.Copy < 0 || rd.Sort <= 0 || rd.Reduce <= 0 {
			t.Fatalf("reduce %d has invalid phases: %+v", rd.Task, rd)
		}
		if got := rd.Copy + rd.Sort + rd.Reduce; got != rd.Duration() {
			t.Fatalf("reduce %d phases %v != duration %v", rd.Task, got, rd.Duration())
		}
	}
	pct := r.CopyPercent()
	if pct <= 0 || pct >= 100 {
		t.Fatalf("CopyPercent = %g", pct)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Run(JavaSort(1*netmodel.GB, 4, 4))
	b := Run(JavaSort(1*netmodel.GB, 4, 4))
	if a.JobTime != b.JobTime {
		t.Fatalf("same seed, different job times: %v vs %v", a.JobTime, b.JobTime)
	}
	p := JavaSort(1*netmodel.GB, 4, 4)
	p.Seed = 99
	c := Run(p)
	if c.JobTime == a.JobTime {
		t.Log("different seeds produced identical job time (possible but unlikely)")
	}
}

func TestCopyShareGrowsWithInputSize(t *testing.T) {
	// Table I's headline shape: the copy share rises with input size
	// because fetch count grows as maps x reduces.
	small := Run(JavaSort(1*netmodel.GB, 8, 8)).CopyPercent()
	large := Run(JavaSort(16*netmodel.GB, 8, 8)).CopyPercent()
	if large <= small {
		t.Fatalf("copy%% did not grow: %g%% (1GB) vs %g%% (16GB)", small, large)
	}
}

func TestCopyShareInPaperBandSmall(t *testing.T) {
	// Paper Table I, small inputs: 33.9%..47.9% across configs. Allow a
	// generous simulation band.
	for _, cfg := range [][2]int{{4, 2}, {4, 4}, {8, 8}} {
		pct := Run(JavaSort(1*netmodel.GB, cfg[0], cfg[1])).CopyPercent()
		if pct < 15 || pct > 65 {
			t.Errorf("1GB %d/%d: copy%% = %g, outside [15,65]", cfg[0], cfg[1], pct)
		}
	}
}

func TestFirstWaveReducersBoundedBySlots(t *testing.T) {
	r := Run(JavaSort(4*netmodel.GB, 8, 8))
	maxFirstWave := 7 * 8 // workers x reduce slots
	if fw := r.FirstWaveCount(); fw > maxFirstWave {
		t.Fatalf("first wave = %d > %d", fw, maxFirstWave)
	}
}

func TestSortStageTiny(t *testing.T) {
	// Paper: average sort stage ~0.0102 s. Measure over every reducer
	// (at 1 GB all reducers are first-wave, so the filtered summary is
	// empty).
	r := Run(JavaSort(1*netmodel.GB, 8, 8))
	var sum float64
	for _, rd := range r.Reduces {
		sum += rd.Sort.Seconds()
	}
	mean := sum / float64(len(r.Reduces))
	if mean < 0.005 || mean > 0.05 {
		t.Fatalf("sort mean = %gs, want ~0.01s", mean)
	}
}

func TestWordCountSingleReducer(t *testing.T) {
	r := Run(WordCount(1 * netmodel.GB))
	if r.NumReduces != 1 {
		t.Fatalf("NumReduces = %d, want 1 (paper's Fig. 6 setup)", r.NumReduces)
	}
	if r.JobTime <= 0 {
		t.Fatal("JobTime not positive")
	}
}

func TestWordCountScalesSublinearly(t *testing.T) {
	// Paper Fig. 6: 1 GB -> 49 s, 100 GB -> 2001 s: 100x data, ~41x time.
	// The fixed overheads must make small jobs relatively expensive.
	t1 := Run(WordCount(1 * netmodel.GB)).JobTime.Seconds()
	t8 := Run(WordCount(8 * netmodel.GB)).JobTime.Seconds()
	if t8 >= 8*t1 {
		t.Fatalf("no fixed-overhead effect: T(8GB)=%g >= 8*T(1GB)=%g", t8, 8*t1)
	}
	if t8 <= t1 {
		t.Fatalf("larger input not slower: %g vs %g", t8, t1)
	}
}

func TestOverSubscribedSlotsContendOnCores(t *testing.T) {
	// 16/16 slots on 8 cores must not be faster than 8/8 for a CPU-heavy
	// job (Table I's right column shows no benefit from oversubscription).
	t88 := Run(JavaSort(8*netmodel.GB, 8, 8)).JobTime
	t1616 := Run(JavaSort(8*netmodel.GB, 16, 16)).JobTime
	if t1616 < t88*3/4 {
		t.Fatalf("16/16 (%v) near-linearly faster than 8/8 (%v) despite the core limit", t1616, t88)
	}
}

func TestPartialLastBlock(t *testing.T) {
	// 1 GB + 1 MB: 17 blocks, the last being 1 MB.
	r := Run(JavaSort(1*netmodel.GB+1*netmodel.MB, 8, 8))
	if r.NumMaps != 17 {
		t.Fatalf("NumMaps = %d, want 17", r.NumMaps)
	}
}

func TestInvalidInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero input")
		}
	}()
	Run(Params{})
}

func TestCopySummaryExcludesFirstWave(t *testing.T) {
	r := Run(JavaSort(4*netmodel.GB, 8, 8))
	total := len(r.Reduces)
	if got := r.CopySummary().Count() + r.FirstWaveCount(); got != total {
		t.Fatalf("summary(%d) + firstwave(%d) != reduces(%d)",
			r.CopySummary().Count(), r.FirstWaveCount(), total)
	}
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	// Inject a 6x-slow worker. Without speculation its map tasks drag the
	// job; with speculation, duplicates on healthy nodes win.
	base := JavaSort(2*netmodel.GB, 4, 4)
	base.SlowNode = 3 // worker index 2
	base.SlowNodeFactor = 6

	slow := Run(base)

	spec := base
	spec.Speculative = true
	fast := Run(spec)

	if fast.Speculated == 0 {
		t.Fatal("no speculative attempts launched despite a 6x straggler")
	}
	if fast.JobTime >= slow.JobTime {
		t.Fatalf("speculation did not help: %v (spec) vs %v (no spec)", fast.JobTime, slow.JobTime)
	}
	// Every map task still completes exactly once.
	seen := make(map[int]bool)
	for _, m := range fast.Maps {
		if seen[m.Task] {
			t.Fatalf("task %d recorded twice", m.Task)
		}
		seen[m.Task] = true
	}
	if len(seen) != fast.NumMaps {
		t.Fatalf("%d unique map completions, want %d", len(seen), fast.NumMaps)
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	r := Run(JavaSort(1*netmodel.GB, 4, 4))
	if r.Speculated != 0 {
		t.Fatalf("Speculated = %d with speculation off", r.Speculated)
	}
}

func TestSpeculationHarmlessWithoutStragglers(t *testing.T) {
	// On a healthy cluster speculation must not distort results: same
	// unique-completion invariant, comparable job time.
	p := JavaSort(1*netmodel.GB, 8, 8)
	p.Speculative = true
	r := Run(p)
	if r.JobTime <= 0 {
		t.Fatal("job did not complete")
	}
	seen := make(map[int]bool)
	for _, m := range r.Maps {
		if seen[m.Task] {
			t.Fatalf("task %d recorded twice", m.Task)
		}
		seen[m.Task] = true
	}
}

func TestSlowNodeInjectionSlowsJob(t *testing.T) {
	healthy := Run(JavaSort(1*netmodel.GB, 4, 4)).JobTime
	p := JavaSort(1*netmodel.GB, 4, 4)
	p.SlowNode = 1
	p.SlowNodeFactor = 8
	hurt := Run(p).JobTime
	if hurt <= healthy {
		t.Fatalf("slow node did not slow the job: %v vs %v", hurt, healthy)
	}
}
