package cluster

import (
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/des"
)

func TestDefaultMatchesPaperTestbed(t *testing.T) {
	cfg := Default()
	if cfg.Nodes != 8 {
		t.Errorf("Nodes = %d, want 8", cfg.Nodes)
	}
	if cfg.CoresPerNode != 8 {
		t.Errorf("CoresPerNode = %d, want 8 (2x quad-core)", cfg.CoresPerNode)
	}
	if cfg.NICBandwidth < 100e6 || cfg.NICBandwidth > 125e6 {
		t.Errorf("NICBandwidth = %g, want GigE-class", cfg.NICBandwidth)
	}
}

func TestComputeOccupiesCore(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 1, CoresPerNode: 2, DiskReadBW: 1, DiskWriteBW: 1, NICBandwidth: 1})
	n := c.Nodes[0]
	var ends []des.Time
	// 4 jobs of 1s on 2 cores: finish at 1s,1s,2s,2s.
	for i := 0; i < 4; i++ {
		eng.Go("job", func(p *des.Proc) {
			n.Compute(p, 100, 100) // 1 second
			ends = append(ends, p.Now())
		})
	}
	eng.Run()
	if ends[0] != time.Second || ends[3] != 2*time.Second {
		t.Fatalf("ends = %v", ends)
	}
}

func TestComputeZeroWorkReturnsImmediately(t *testing.T) {
	eng := des.New()
	c := New(eng, Config{Nodes: 1, CoresPerNode: 1, DiskReadBW: 1, DiskWriteBW: 1, NICBandwidth: 1})
	eng.Go("job", func(p *des.Proc) {
		c.Nodes[0].Compute(p, 0, 100)
		c.Nodes[0].Compute(p, 100, 0)
		if p.Now() != 0 {
			t.Errorf("zero work advanced clock to %v", p.Now())
		}
	})
	eng.Run()
}

func TestTransferHoldsBothEnds(t *testing.T) {
	cfg := Config{Nodes: 3, CoresPerNode: 1, DiskReadBW: 1e6, DiskWriteBW: 1e6,
		NICBandwidth: 100, NetLatency: 0}
	eng := des.New()
	c := New(eng, cfg)
	var abEnd, cbEnd des.Time
	// Two senders (A and C) into one receiver B: B's in-link is the
	// bottleneck, so both 500 B transfers take ~10 s, not 5 s.
	eng.Go("a->b", func(p *des.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[1], 500)
		abEnd = p.Now()
	})
	eng.Go("c->b", func(p *des.Proc) {
		c.Transfer(p, c.Nodes[2], c.Nodes[1], 500)
		cbEnd = p.Now()
	})
	eng.Run()
	if abEnd != 10*time.Second || cbEnd != 10*time.Second {
		t.Fatalf("transfers ended at %v and %v, want 10s each", abEnd, cbEnd)
	}
}

func TestTransferLatencyApplied(t *testing.T) {
	cfg := Config{Nodes: 2, CoresPerNode: 1, DiskReadBW: 1e6, DiskWriteBW: 1e6,
		NICBandwidth: 1000, NetLatency: 3 * time.Second}
	eng := des.New()
	c := New(eng, cfg)
	var end des.Time
	eng.Go("tx", func(p *des.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[1], 1000) // 1s wire + 3s latency
		end = p.Now()
	})
	eng.Run()
	if end != 4*time.Second {
		t.Fatalf("end = %v, want 4s", end)
	}
}

func TestLocalTransferIsFree(t *testing.T) {
	eng := des.New()
	c := New(eng, Default())
	eng.Go("tx", func(p *des.Proc) {
		c.Transfer(p, c.Nodes[0], c.Nodes[0], 1<<30)
		if p.Now() != 0 {
			t.Errorf("local transfer took %v", p.Now())
		}
	})
	eng.Run()
}

func TestSeekEquivalentBytes(t *testing.T) {
	cfg := Default()
	eng := des.New()
	c := New(eng, cfg)
	n := c.Nodes[0]
	// One seek ~ 8ms at 90 MB/s ~ 720 KB.
	one := n.SeekEquivalentBytes(1)
	if one < 500_000 || one > 1_000_000 {
		t.Errorf("seek equivalent = %d bytes", one)
	}
	if n.SeekEquivalentBytes(10) != 10*one {
		t.Error("seek equivalent not linear")
	}
	if n.SeekEquivalentBytes(0) != 0 || n.SeekEquivalentBytes(-1) != 0 {
		t.Error("non-positive accesses should cost nothing")
	}
}

func TestRandomReadSlowerThanStream(t *testing.T) {
	eng := des.New()
	c := New(eng, Default())
	n := c.Nodes[0]
	var streamEnd, randomEnd des.Time
	eng.Go("stream", func(p *des.Proc) {
		n.ReadStream(p, 64<<20)
		streamEnd = p.Now()
	})
	eng.Run()
	eng2 := des.New()
	c2 := New(eng2, Default())
	n2 := c2.Nodes[0]
	eng2.Go("random", func(p *des.Proc) {
		n2.ReadRandom(p, 64<<20, 2000) // 2000 seeks
		randomEnd = p.Now()
	})
	eng2.Run()
	if randomEnd < 2*streamEnd {
		t.Errorf("random read %v not much slower than stream %v", randomEnd, streamEnd)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(des.New(), Config{Nodes: 0})
}
