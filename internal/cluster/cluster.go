// Package cluster models the paper's experimental platform on the DES
// kernel: 8 nodes, each with two quad-core Xeon E5620s, 16 GB memory and a
// single SATA disk, interconnected by a non-blocking Gigabit Ethernet
// switch (§II). The Hadoop and MPI-D system simulators schedule work onto
// these modelled resources.
//
// Resource model:
//
//   - Cores: a counted resource per node; compute phases hold one core for
//     work/throughput seconds. Slot over-subscription (e.g. 16 map + 16
//     reduce slots on 8 cores, Table I's last column) therefore queues on
//     cores, which is exactly the effect the paper's configuration sweep
//     exposes.
//   - Disk: two fair-share links per node (read and write). Small random
//     reads — the per-map-output fetches of shuffle — pay a seek cost,
//     expressed in equivalent bytes so they compose with streaming traffic
//     on the same link.
//   - Network: per-node in and out links (the two directions of the GigE
//     port) with processor sharing; a transfer holds both ends. The switch
//     backplane is non-blocking, as an 8-port GigE switch is.
//
// Config describes the testbed; Default matches the paper's hardware.
package cluster

import (
	"fmt"

	"github.com/ict-repro/mpid/internal/des"
	"github.com/ict-repro/mpid/internal/netmodel"
)

// Config describes the modelled hardware.
type Config struct {
	// Nodes is the machine count (the paper uses 8: 1 master + 7 workers).
	Nodes int
	// CoresPerNode is the CPU core count per node (2x quad-core = 8).
	CoresPerNode int
	// DiskReadBW and DiskWriteBW are streaming disk rates in bytes/sec.
	DiskReadBW, DiskWriteBW float64
	// DiskSeek is the cost of one random access, paid by small reads.
	DiskSeek des.Time
	// NICBandwidth is the per-direction effective TCP goodput of the GigE
	// port in bytes/sec.
	NICBandwidth float64
	// NetLatency is the one-way wire+stack latency for a message.
	NetLatency des.Time
}

// Default returns the paper's testbed: 8 nodes, 8 cores each, one
// 2010-class SATA disk, Gigabit Ethernet.
func Default() Config {
	return Config{
		Nodes:        8,
		CoresPerNode: 8,
		DiskReadBW:   90e6,
		DiskWriteBW:  70e6,
		DiskSeek:     9 * des.Time(1e6), // 9 ms (2010-class SATA)
		NICBandwidth: 111e6,             // matches netmodel.MPI peak goodput
		NetLatency:   netmodel.MPI().Latency(0),
	}
}

// Cluster is an instantiated set of nodes bound to a DES engine.
type Cluster struct {
	Eng   *des.Engine
	Cfg   Config
	Nodes []*Node
}

// Node models one machine.
type Node struct {
	ID        int
	Cores     *des.Resource
	DiskRead  *des.Link
	DiskWrite *des.Link
	NICIn     *des.Link
	NICOut    *des.Link

	cfg *Config
}

// New builds a cluster on the engine.
func New(eng *des.Engine, cfg Config) *Cluster {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		panic(fmt.Sprintf("cluster: invalid config %+v", cfg))
	}
	c := &Cluster{Eng: eng, Cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		c.Nodes = append(c.Nodes, &Node{
			ID:        i,
			Cores:     des.NewResource(eng, fmt.Sprintf("node%d.cores", i), cfg.CoresPerNode),
			DiskRead:  des.NewLink(eng, fmt.Sprintf("node%d.diskR", i), cfg.DiskReadBW),
			DiskWrite: des.NewLink(eng, fmt.Sprintf("node%d.diskW", i), cfg.DiskWriteBW),
			NICIn:     des.NewLink(eng, fmt.Sprintf("node%d.nicIn", i), cfg.NICBandwidth),
			NICOut:    des.NewLink(eng, fmt.Sprintf("node%d.nicOut", i), cfg.NICBandwidth),
			cfg:       &c.Cfg,
		})
	}
	return c
}

// Compute occupies one core of the node for work/rate seconds.
func (n *Node) Compute(p *des.Proc, bytes int64, bytesPerSec float64) {
	if bytes <= 0 || bytesPerSec <= 0 {
		return
	}
	d := des.FromSeconds(float64(bytes) / bytesPerSec)
	n.Cores.Use(p, 1, d)
}

// ComputeTime occupies one core for a fixed duration.
func (n *Node) ComputeTime(p *des.Proc, d des.Time) {
	if d <= 0 {
		return
	}
	n.Cores.Use(p, 1, d)
}

// ReadStream reads bytes sequentially from the node's disk.
func (n *Node) ReadStream(p *des.Proc, bytes int64) {
	n.DiskRead.Transfer(p, bytes)
}

// ReadRandom reads bytes in `accesses` random accesses: the seek cost is
// converted to equivalent streamed bytes so it contends fairly with
// concurrent streaming readers.
func (n *Node) ReadRandom(p *des.Proc, bytes int64, accesses int) {
	n.DiskRead.Transfer(p, bytes+n.SeekEquivalentBytes(accesses))
}

// SeekEquivalentBytes converts a number of random accesses into the bytes a
// streaming read of equal duration would move.
func (n *Node) SeekEquivalentBytes(accesses int) int64 {
	if accesses <= 0 {
		return 0
	}
	perSeek := int64(n.cfg.DiskSeek.Seconds()*n.cfg.DiskReadBW + 0.5)
	return perSeek * int64(accesses)
}

// WriteStream writes bytes sequentially to the node's disk.
func (n *Node) WriteStream(p *des.Proc, bytes int64) {
	n.DiskWrite.Transfer(p, bytes)
}

// Transfer moves bytes from one node to another: the flow holds the sender
// out-link and the receiver in-link concurrently (completing when both have
// moved the bytes) plus the one-way latency. Local transfers pay a memcpy
// at memory speed, approximated as free relative to everything else.
func (c *Cluster) Transfer(p *des.Proc, from, to *Node, bytes int64) {
	if from == to || bytes <= 0 {
		return
	}
	p.Sleep(c.Cfg.NetLatency)
	out := from.NICOut.Start(bytes)
	in := to.NICIn.Start(bytes)
	des.WaitAll(p, out, in)
}

// TransferStart is the non-blocking Transfer: it returns a latch completing
// when both link directions finish. The latency is folded into the sender
// link by the caller when needed.
func (c *Cluster) TransferStart(from, to *Node, bytes int64) (*des.Done, *des.Done) {
	return from.NICOut.Start(bytes), to.NICIn.Start(bytes)
}
