package trace

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/kv"
)

// Propagation formats. On the RPC path a context travels as a trailing
// type-tagged parameter (see hadooprpc); on the HTTP shuffle path it is the
// X-Trace-Context header. Both carry the same two ids.

// ErrCorrupt marks undecodable trace wire data. Receivers treat it as "no
// context": tracing must never fail an operation it observes.
var ErrCorrupt = errors.New("trace: corrupt wire data")

// EncodeContext renders a context for the RPC trailing parameter. An
// invalid context encodes to nil (no parameter appended).
func EncodeContext(c Context) []byte {
	if !c.Valid() {
		return nil
	}
	b := kv.AppendVLong(nil, int64(c.Trace))
	return kv.AppendVLong(b, int64(c.Span))
}

// DecodeContext parses an encoded context. Empty input is a valid "no
// context"; garbage returns ErrCorrupt.
func DecodeContext(b []byte) (Context, error) {
	if len(b) == 0 {
		return Context{}, nil
	}
	tr, n, err := kv.ReadVLong(b)
	if err != nil {
		return Context{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	sp, _, err := kv.ReadVLong(b[n:])
	if err != nil {
		return Context{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return Context{Trace: uint64(tr), Span: uint64(sp)}, nil
}

// String renders the header form, "trace-span" in hex ("" when invalid).
func (c Context) String() string {
	if !c.Valid() {
		return ""
	}
	return strconv.FormatUint(c.Trace, 16) + "-" + strconv.FormatUint(c.Span, 16)
}

// ParseContext parses the header form. "" is a valid "no context".
func ParseContext(s string) (Context, error) {
	if s == "" {
		return Context{}, nil
	}
	dash := strings.IndexByte(s, '-')
	if dash < 0 {
		return Context{}, fmt.Errorf("%w: %q", ErrCorrupt, s)
	}
	tr, err1 := strconv.ParseUint(s[:dash], 16, 64)
	sp, err2 := strconv.ParseUint(s[dash+1:], 16, 64)
	if err1 != nil || err2 != nil {
		return Context{}, fmt.Errorf("%w: %q", ErrCorrupt, s)
	}
	return Context{Trace: tr, Span: sp}, nil
}

// EncodeSpans frames a finished-span batch for shipping over RPC: a count,
// then per span the ids, names, unix-nano timestamps and annotations. Nil
// for an empty batch, so callers can skip the parameter entirely.
func EncodeSpans(spans []Span) []byte {
	if len(spans) == 0 {
		return nil
	}
	b := kv.AppendVLong(nil, int64(len(spans)))
	for _, s := range spans {
		b = kv.AppendVLong(b, int64(s.Trace))
		b = kv.AppendVLong(b, int64(s.ID))
		b = kv.AppendVLong(b, int64(s.Parent))
		b = kv.AppendBytes(b, []byte(s.Name))
		b = kv.AppendBytes(b, []byte(s.Kind))
		b = kv.AppendBytes(b, []byte(s.Proc))
		b = kv.AppendVLong(b, s.Start.UnixNano())
		b = kv.AppendVLong(b, s.Finish.UnixNano())
		b = kv.AppendVLong(b, int64(len(s.Notes)))
		for _, a := range s.Notes {
			b = kv.AppendBytes(b, []byte(a.Key))
			b = kv.AppendBytes(b, []byte(a.Value))
		}
	}
	return b
}

// DecodeSpans parses an EncodeSpans batch. Empty input decodes to nil.
func DecodeSpans(b []byte) ([]Span, error) {
	if len(b) == 0 {
		return nil, nil
	}
	count, n, err := kv.ReadVLong(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	b = b[n:]
	if count < 0 || count > 1<<20 {
		return nil, fmt.Errorf("%w: %d spans is implausible", ErrCorrupt, count)
	}
	spans := make([]Span, 0, count)
	for i := int64(0); i < count; i++ {
		var s Span
		var fields [3]int64
		for f := range fields {
			v, n, err := kv.ReadVLong(b)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			fields[f], b = v, b[n:]
		}
		s.Trace, s.ID, s.Parent = uint64(fields[0]), uint64(fields[1]), uint64(fields[2])
		var strs [3][]byte
		for f := range strs {
			v, n, err := kv.ReadBytes(b)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			strs[f], b = v, b[n:]
		}
		s.Name, s.Kind, s.Proc = string(strs[0]), string(strs[1]), string(strs[2])
		startNs, n, err := kv.ReadVLong(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		b = b[n:]
		endNs, n, err := kv.ReadVLong(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		b = b[n:]
		s.Start, s.Finish = time.Unix(0, startNs), time.Unix(0, endNs)
		notes, n, err := kv.ReadVLong(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		b = b[n:]
		if notes < 0 || notes > 1<<16 {
			return nil, fmt.Errorf("%w: %d annotations is implausible", ErrCorrupt, notes)
		}
		for a := int64(0); a < notes; a++ {
			k, n, err := kv.ReadBytes(b)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			b = b[n:]
			v, n, err := kv.ReadBytes(b)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			b = b[n:]
			s.Notes = append(s.Notes, Annotation{Key: string(k), Value: string(v)})
		}
		spans = append(spans, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	return spans, nil
}
