package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/stats"
)

// RenderTimeline draws finished spans as a fixed-width ASCII Gantt chart —
// the live analogue of the paper's Figure 1, one bar per span, grouped by
// process lane and ordered by start time. width is the bar column's
// character budget (default 60). Instant spans (faults) render as a '!'.
//
//	span            proc        timeline                        dur
//	job             jobtracker  ############################    41ms
//	m0 a1           tracker0    ##                              2.1ms
//	r1.copy         tracker1        ########                    8.9ms
func RenderTimeline(spans []Span, width int) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	if width <= 0 {
		width = 60
	}
	t0 := earliest(spans)
	var t1 = t0
	for _, s := range spans {
		if s.Finish.After(t1) {
			t1 = s.Finish
		}
	}
	total := t1.Sub(t0)
	if total <= 0 {
		total = 1
	}
	scale := func(off, span int64) (int, int) {
		lo := int(float64(off) / float64(total) * float64(width))
		n := int(float64(span) / float64(total) * float64(width))
		if lo >= width {
			lo = width - 1
		}
		if n < 1 {
			n = 1
		}
		if lo+n > width {
			n = width - lo
		}
		return lo, n
	}

	ordered := append([]Span(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Proc != ordered[j].Proc {
			return ordered[i].Proc < ordered[j].Proc
		}
		return ordered[i].Start.Before(ordered[j].Start)
	})

	tb := stats.NewTable("span", "proc", "timeline", "dur")
	for _, s := range ordered {
		lo, n := scale(int64(s.Start.Sub(t0)), int64(s.Duration()))
		mark := byte('#')
		if s.Kind == KindFault || s.Duration() == 0 {
			mark = '!'
		}
		bar := strings.Repeat(".", lo) + strings.Repeat(string(mark), n) +
			strings.Repeat(".", width-lo-n)
		name := s.Name
		if att := s.Note("attempt"); att != "" {
			name += " a" + att
		}
		tb.AddRow(name, displayProc(s.Proc), bar, stats.FormatDuration(s.Duration()))
	}
	return fmt.Sprintf("trace timeline: %d spans over %s (one column ~ %s)\n",
		len(spans), stats.FormatDuration(total), stats.FormatDuration(total/time.Duration(width))) + tb.String()
}
