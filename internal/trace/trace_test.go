package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every operation on a nil tracer and the nil spans it
// yields must be a silent no-op — the contract that lets production call
// sites thread tracing unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if got := tr.Proc(); got != "" {
		t.Fatalf("nil Proc() = %q", got)
	}
	s := tr.StartRoot("x", KindTask)
	if s != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	s.Annotate("k", "v")
	c := s.Child("y", KindPhase)
	c.Annotate("k", "v")
	c.End()
	s.End()
	tr.Instant(Context{}, "f", KindFault)
	tr.Add(Span{Name: "z"})
	if tr.Drain() != nil || tr.Spans() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer retained spans")
	}
	if s.Context().Valid() {
		t.Fatal("nil span context is valid")
	}
}

// TestSpanLifecycle covers parenting, annotations, idempotent End and the
// collector's Drain/Add/Spans cycle.
func TestSpanLifecycle(t *testing.T) {
	tr := New("tracker0")
	root := tr.StartRoot("job", KindJob)
	if !root.Context().Valid() {
		t.Fatal("root context invalid")
	}
	child := root.Child("m0", KindTask)
	child.Annotate("attempt", "1")
	if got := tr.Len(); got != 0 {
		t.Fatalf("Len before End = %d", got)
	}
	child.End()
	child.End() // idempotent
	child.Annotate("late", "x")
	root.End()
	spans := tr.Drain()
	if len(spans) != 2 {
		t.Fatalf("drained %d spans, want 2", len(spans))
	}
	if tr.Len() != 0 {
		t.Fatal("Drain left spans behind")
	}
	var c, r Span
	for _, s := range spans {
		switch s.Name {
		case "m0":
			c = s
		case "job":
			r = s
		}
	}
	if c.Trace != r.Trace {
		t.Fatalf("child trace %d != root trace %d", c.Trace, r.Trace)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent %d != root id %d", c.Parent, r.ID)
	}
	if c.Note("attempt") != "1" {
		t.Fatalf("annotation lost: %v", c.Notes)
	}
	if c.Note("late") != "" {
		t.Fatal("annotation accepted after End")
	}
	if c.Proc != "tracker0" {
		t.Fatalf("proc = %q", c.Proc)
	}
	if c.Finish.Before(c.Start) {
		t.Fatal("finish before start")
	}

	agg := New("jobtracker")
	agg.Add(spans...)
	if agg.Len() != 2 {
		t.Fatalf("aggregate Len = %d", agg.Len())
	}
	sorted := agg.Spans()
	if len(sorted) != 2 || sorted[0].Start.After(sorted[1].Start) {
		t.Fatal("Spans not sorted by start")
	}
}

// TestConcurrentCollector hammers one tracer from many goroutines — span
// creation, annotation, draining and merging at once. Run under -race (the
// repo's `make race` gate), this is the collector's thread-safety proof.
func TestConcurrentCollector(t *testing.T) {
	tr := New("t")
	agg := New("agg")
	const workers, perWorker = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := tr.StartRoot(fmt.Sprintf("w%d.%d", w, i), KindTask)
				c := s.Child("phase", KindPhase)
				c.Annotate("i", fmt.Sprint(i))
				c.End()
				s.End()
				if i%17 == 0 {
					agg.Add(tr.Drain()...)
				}
			}
		}(w)
	}
	wg.Wait()
	agg.Add(tr.Drain()...)
	if got, want := agg.Len(), workers*perWorker*2; got != want {
		t.Fatalf("collected %d spans, want %d", got, want)
	}
}

// TestContextWire round-trips both propagation encodings and rejects
// garbage without ever failing the "no context" case.
func TestContextWire(t *testing.T) {
	c := Context{Trace: 0xdeadbeef, Span: 42}
	got, err := DecodeContext(EncodeContext(c))
	if err != nil || got != c {
		t.Fatalf("binary roundtrip: %v %v", got, err)
	}
	if EncodeContext(Context{}) != nil {
		t.Fatal("invalid context encoded to bytes")
	}
	if got, err := DecodeContext(nil); err != nil || got.Valid() {
		t.Fatalf("empty decode: %v %v", got, err)
	}
	if _, err := DecodeContext([]byte{0x90}); err == nil {
		t.Fatal("corrupt context accepted")
	}

	hdr := c.String()
	got, err = ParseContext(hdr)
	if err != nil || got != c {
		t.Fatalf("header roundtrip %q: %v %v", hdr, got, err)
	}
	if got, err := ParseContext(""); err != nil || got.Valid() {
		t.Fatalf("empty header: %v %v", got, err)
	}
	for _, bad := range []string{"zzz", "12", "-5", "12-zz"} {
		if _, err := ParseContext(bad); err == nil {
			t.Fatalf("bad header %q accepted", bad)
		}
	}
}

// TestSpansWire round-trips a span batch through the RPC shipping format.
func TestSpansWire(t *testing.T) {
	tr := New("tracker1")
	s := tr.StartRoot("m3", KindTask)
	s.Annotate("attempt", "2")
	s.Annotate("tracker", "1")
	s.Child("map.run", KindPhase).End()
	s.End()
	in := tr.Drain()

	out, err := DecodeSpans(EncodeSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Trace != b.Trace || a.ID != b.ID || a.Parent != b.Parent ||
			a.Name != b.Name || a.Kind != b.Kind || a.Proc != b.Proc {
			t.Fatalf("span %d identity mismatch: %+v vs %+v", i, a, b)
		}
		if !a.Start.Equal(b.Start) || !a.Finish.Equal(b.Finish) {
			t.Fatalf("span %d time mismatch", i)
		}
		if fmt.Sprint(a.Notes) != fmt.Sprint(b.Notes) {
			t.Fatalf("span %d notes mismatch: %v vs %v", i, a.Notes, b.Notes)
		}
	}
	if EncodeSpans(nil) != nil {
		t.Fatal("empty batch encoded to bytes")
	}
	if got, err := DecodeSpans(nil); err != nil || got != nil {
		t.Fatalf("empty batch decode: %v %v", got, err)
	}
	if _, err := DecodeSpans([]byte{0x02, 0x01}); err == nil {
		t.Fatal("corrupt batch accepted")
	}
}

// TestChromeTrace exports a small two-proc trace and validates it with the
// same checker the trace-demo tooling uses, then spot-checks the JSON.
func TestChromeTrace(t *testing.T) {
	jt := New("jobtracker")
	job := jt.StartRoot("job", KindJob)
	tt := New("tracker0")
	m := tt.StartChild(job.Context(), "m0", KindTask)
	m.Annotate("attempt", "1")
	time.Sleep(time.Millisecond)
	m.Child("map.run", KindPhase).End()
	m.End()
	job.End()
	jt.Add(tt.Drain()...)
	spans := jt.Spans()

	data, err := ChromeTrace(spans)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChrome(data)
	if err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, data)
	}
	if st.Spans != len(spans) {
		t.Fatalf("validator saw %d spans, want %d", st.Spans, len(spans))
	}
	if st.Procs != 2 {
		t.Fatalf("validator saw %d procs, want 2", st.Procs)
	}

	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	var procNames []string
	sawAttempt := false
	for _, e := range f.TraceEvents {
		if e["ph"] == "M" {
			procNames = append(procNames, e["args"].(map[string]any)["name"].(string))
		}
		if args, ok := e["args"].(map[string]any); ok && args["attempt"] == "1" {
			sawAttempt = true
		}
	}
	if fmt.Sprint(procNames) != "[jobtracker tracker0]" {
		t.Fatalf("process names = %v", procNames)
	}
	if !sawAttempt {
		t.Fatal("attempt annotation not exported to args")
	}
}

// TestValidateChromeRejects feeds the validator malformed inputs.
func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      "}{",
		"no events":     `{"traceEvents":[]}`,
		"bad phase":     `{"traceEvents":[{"name":"a","ph":"Q","ts":1,"pid":0,"tid":0}]}`,
		"negative ts":   `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"dur":1,"pid":0,"tid":0}]}`,
		"non-monotonic": `{"traceEvents":[{"name":"a","ph":"X","ts":5,"dur":1,"pid":0,"tid":0},{"name":"b","ph":"X","ts":2,"dur":1,"pid":0,"tid":0}]}`,
		"unmatched B":   `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0}]}`,
		"E without B":   `{"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":0,"tid":0}]}`,
	}
	for name, in := range cases {
		if _, err := ValidateChrome([]byte(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Matched B/E pairs are valid (external tools emit them).
	ok := `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0},{"name":"a","ph":"E","ts":4,"pid":0,"tid":0}]}`
	st, err := ValidateChrome([]byte(ok))
	if err != nil {
		t.Fatalf("matched B/E rejected: %v", err)
	}
	if st.Spans != 1 {
		t.Fatalf("B/E pair counted as %d spans", st.Spans)
	}
}

// TestRenderTimeline checks the Gantt rendering: every span appears, lanes
// are labelled, attempts are suffixed, and bars are width-bounded.
func TestRenderTimeline(t *testing.T) {
	tr := New("tracker0")
	s := tr.StartRoot("m1", KindTask)
	s.Annotate("attempt", "2")
	time.Sleep(2 * time.Millisecond)
	s.End()
	tr.Instant(s.Context(), "fault.fail", KindFault)
	out := RenderTimeline(tr.Spans(), 40)
	for _, want := range []string{"m1 a2", "tracker0", "fault.fail", "#", "!"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 40+70 {
			t.Fatalf("line too wide (%d chars): %q", len(line), line)
		}
	}
	if got := RenderTimeline(nil, 40); !strings.Contains(got, "no spans") {
		t.Fatalf("empty timeline: %q", got)
	}
}
