package trace

import (
	"fmt"
	"testing"
)

// A long-lived daemon folds every job's spans into one service-wide
// collector; SetCap bounds that collector by dropping the oldest spans and
// counting what it dropped.

func TestSetCapBoundsCollector(t *testing.T) {
	tr := New("svc")
	tr.SetCap(10)
	for i := 0; i < 25; i++ {
		s := tr.StartRoot(fmt.Sprintf("span%d", i), "test")
		s.End()
	}
	if got := tr.Len(); got != 10 {
		t.Fatalf("Len = %d, want cap 10", got)
	}
	if got := tr.Dropped(); got != 15 {
		t.Fatalf("Dropped = %d, want 15", got)
	}
	// The survivors are the newest spans.
	spans := tr.Spans()
	if got := spans[0].Name; got != "span15" {
		t.Fatalf("oldest retained span = %q, want span15", got)
	}
	if got := spans[len(spans)-1].Name; got != "span24" {
		t.Fatalf("newest retained span = %q, want span24", got)
	}
}

func TestSetCapAppliesToAdd(t *testing.T) {
	src := New("job")
	for i := 0; i < 8; i++ {
		src.StartRoot(fmt.Sprintf("j%d", i), "test").End()
	}
	dst := New("svc")
	dst.SetCap(5)
	dst.Add(src.Drain()...)
	if got := dst.Len(); got != 5 {
		t.Fatalf("Len after Add = %d, want 5", got)
	}
	if got := dst.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
}

func TestNoCapKeepsEverything(t *testing.T) {
	tr := New("svc")
	for i := 0; i < 100; i++ {
		tr.StartRoot("s", "test").End()
	}
	if got := tr.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100 without a cap", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
}
