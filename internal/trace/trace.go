// Package trace is the distributed-tracing substrate for the live stack: a
// concurrency-safe span collector plus a propagation format that travels as
// a trailing RPC parameter (hadooprpc) and an HTTP header (jetty), so one
// job's wall time can be attributed span by span across the jobtracker, the
// tasktrackers, the shuffle servers and the DFS — the per-task timeline view
// behind the paper's Figure 1, but for a single live run instead of an
// aggregate.
//
// The aggregate metrics layer (internal/metrics) answers "how much time did
// the copy stage take across the job"; this package answers "why did reducer
// 3 stall" — which fetch retried, which map re-execution pushed the tail,
// which injected fault started the cascade. Spans carry trace/span/parent
// ids, a kind, wall-clock start/end and ordered annotations; finished spans
// accumulate in a Tracer and can be drained, shipped over RPC in the span
// wire format (EncodeSpans), merged into an aggregating Tracer, exported as
// Chrome trace-event JSON (ChromeTrace) or rendered as a fixed-width ASCII
// timeline (RenderTimeline).
//
// Design points, following internal/metrics and internal/faults:
//
//   - a nil *Tracer is valid everywhere and records nothing, and every
//     method on the nil *Span it hands out is a no-op, so hot paths thread
//     tracing unconditionally without branching at call sites;
//   - span and trace ids come from one process-wide atomic counter, so ids
//     are unique across every tracer in the process (the mini-cluster's
//     "machines" share an address space; what crosses the wire is the
//     encoded context, exactly as it would between real processes);
//   - Context is the unit of propagation: binary on the RPC path,
//     "trace-span" hex text in the HTTP header.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds. Kind is free-form; these constants name the ones the live
// stack emits.
const (
	KindJob     = "job"     // the jobtracker's root span for one job
	KindAttempt = "attempt" // scheduler-side view of one task attempt
	KindTask    = "task"    // tracker-side execution of one task attempt
	KindPhase   = "phase"   // map run/spill, reduce copy/sort/reduce
	KindMerge   = "merge"   // one background merge pass inside the copy phase
	KindFetch   = "fetch"   // one shuffle fetch of one map output
	KindServe   = "serve"   // shuffle-server side of a fetch
	KindRPC     = "rpc"     // server-side handling of a traced RPC
	KindDFS     = "dfs"     // block read/write
	KindFault   = "fault"   // an injected fault firing (instant span)
)

// Annotation is one ordered key=value note on a span.
type Annotation struct {
	Key, Value string
}

// Span is one timed operation. Live spans handed out by a Tracer are
// mutated through their methods (guarded by the tracer's lock) until End;
// finished spans are plain immutable records — the form EncodeSpans ships
// and JobReport exposes.
type Span struct {
	Trace  uint64 // trace id, shared by every span of one job
	ID     uint64 // span id, process-unique
	Parent uint64 // parent span id, 0 for roots
	Name   string // e.g. "m3", "reduce.copy", "fetch m7"
	Kind   string
	Proc   string // emitting process lane: "jobtracker", "tracker0", "dfs"
	Start  time.Time
	Finish time.Time
	Notes  []Annotation

	tracer *Tracer // nil in finished records; set while live
	ended  bool
}

// Context is the propagated identity of a span: enough for a remote
// component to parent its own spans under the caller's.
type Context struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context carries a real trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// idCounter hands out process-unique span and trace ids. Starting above 0
// keeps 0 free as the "no parent / no trace" sentinel.
var idCounter atomic.Uint64

func newID() uint64 { return idCounter.Add(1) }

// Tracer is a span factory and collector for one process lane. Methods are
// safe for concurrent use; all methods on a nil *Tracer are no-ops that
// return nil spans.
type Tracer struct {
	proc string

	mu      sync.Mutex
	done    []Span // finished spans awaiting Drain/Spans
	cap     int    // when > 0, retain only the newest cap finished spans
	dropped uint64 // spans discarded by the cap
}

// New creates a tracer whose spans are labelled with the given process
// lane name.
func New(proc string) *Tracer { return &Tracer{proc: proc} }

// Proc returns the tracer's process lane name.
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// StartRoot opens a span beginning a fresh trace.
func (t *Tracer) StartRoot(name, kind string) *Span {
	if t == nil {
		return nil
	}
	return t.start(Context{}, name, kind)
}

// StartChild opens a span inside the given parent context. An invalid
// context starts a fresh trace instead, so callers need not special-case
// untraced peers.
func (t *Tracer) StartChild(parent Context, name, kind string) *Span {
	if t == nil {
		return nil
	}
	return t.start(parent, name, kind)
}

func (t *Tracer) start(parent Context, name, kind string) *Span {
	s := &Span{
		ID:     newID(),
		Name:   name,
		Kind:   kind,
		Proc:   t.proc,
		Start:  time.Now(),
		tracer: t,
	}
	if parent.Valid() {
		s.Trace, s.Parent = parent.Trace, parent.Span
	} else {
		s.Trace = newID()
	}
	return s
}

// Record adds an already-finished span with explicit start and finish
// times — for work measured elsewhere and reported after the fact, like a
// background merge pass whose observer only fires on completion.
func (t *Tracer) Record(parent Context, name, kind string, start, finish time.Time, notes ...Annotation) {
	if t == nil {
		return
	}
	s := Span{
		ID:     newID(),
		Name:   name,
		Kind:   kind,
		Proc:   t.proc,
		Start:  start,
		Finish: finish,
		Notes:  append([]Annotation(nil), notes...),
	}
	if parent.Valid() {
		s.Trace, s.Parent = parent.Trace, parent.Span
	} else {
		s.Trace = newID()
	}
	t.Add(s)
}

// Instant records an already-finished zero-duration span (an event): the
// fault injector's firings use it. It returns the recorded span's context so
// callers can cross-link the event elsewhere (a nil tracer returns the zero
// Context).
func (t *Tracer) Instant(parent Context, name, kind string, notes ...Annotation) Context {
	if t == nil {
		return Context{}
	}
	s := t.start(parent, name, kind)
	s.Notes = append(s.Notes, notes...)
	s.End()
	return s.Context()
}

// SetCap bounds the number of finished spans the tracer retains: once more
// than n accumulate, the oldest are discarded (counted by Dropped). A
// per-job tracer never needs this — one job's spans are bounded — but a
// long-lived daemon aggregating every job's spans into one admin view
// would otherwise grow without limit. n <= 0 removes the bound.
func (t *Tracer) SetCap(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cap = n
	t.trimLocked()
	t.mu.Unlock()
}

// Dropped reports how many finished spans the retention cap has discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// trimLocked enforces the retention cap, keeping the newest spans.
func (t *Tracer) trimLocked() {
	if t.cap <= 0 || len(t.done) <= t.cap {
		return
	}
	drop := len(t.done) - t.cap
	t.dropped += uint64(drop)
	// Copy down rather than re-slicing so the dropped prefix is freed.
	kept := make([]Span, t.cap)
	copy(kept, t.done[drop:])
	t.done = kept
}

// Add merges finished spans (typically decoded from a remote tracer's
// Drain) into this collector.
func (t *Tracer) Add(spans ...Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.done = append(t.done, spans...)
	t.trimLocked()
	t.mu.Unlock()
}

// Drain removes and returns the finished spans collected so far — the
// shipping primitive: a tasktracker drains on every heartbeat and
// completion RPC and sends the encoded batch along.
func (t *Tracer) Drain() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.done
	t.done = nil
	return out
}

// Spans returns a copy of the finished spans without removing them, sorted
// by start time for stable rendering.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.done...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Len reports the number of finished spans held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// Context returns the span's propagation context (zero for nil spans, so
// children of an untraced parent start fresh traces).
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.Trace, Span: s.ID}
}

// Annotate appends one key=value note. No-op on nil, finished or
// already-shipped spans.
func (s *Span) Annotate(key, value string) {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	if !s.ended {
		s.Notes = append(s.Notes, Annotation{Key: key, Value: value})
	}
	t.mu.Unlock()
}

// Child opens a sub-span in the same tracer.
func (s *Span) Child(name, kind string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.StartChild(s.Context(), name, kind)
}

// End finishes the span and hands it to its tracer's collector. Idempotent;
// only the first End counts.
func (s *Span) End() {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	if s.ended {
		t.mu.Unlock()
		return
	}
	s.ended = true
	s.Finish = time.Now()
	rec := *s
	rec.tracer = nil
	rec.Notes = append([]Annotation(nil), s.Notes...)
	t.done = append(t.done, rec)
	t.trimLocked()
	t.mu.Unlock()
}

// Duration is the finished span's wall time.
func (s Span) Duration() time.Duration { return s.Finish.Sub(s.Start) }

// Note returns the value of the first annotation with the given key, or "".
func (s Span) Note(key string) string {
	for _, a := range s.Notes {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}
