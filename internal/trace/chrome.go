package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"
)

// Chrome trace-event export: the JSON Object Format consumed by
// chrome://tracing and https://ui.perfetto.dev. Every span becomes one
// complete ("X") event; every process lane becomes a pid with a
// process_name metadata event, and overlapping spans within a lane are
// spread across tids so the viewer stacks them instead of overdrawing.

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds, X events
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the object-format wrapper.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders finished spans as a chrome://tracing JSON file.
// Timestamps are microseconds relative to the earliest span start, so the
// viewer opens at t=0 regardless of wall-clock time.
func ChromeTrace(spans []Span) ([]byte, error) {
	byProc := make(map[string][]Span)
	var procs []string
	for _, s := range spans {
		if _, seen := byProc[s.Proc]; !seen {
			procs = append(procs, s.Proc)
		}
		byProc[s.Proc] = append(byProc[s.Proc], s)
	}
	sort.Strings(procs)
	t0 := earliest(spans)

	var events []chromeEvent
	for pid, proc := range procs {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": displayProc(proc)},
		})
		lanes := assignLanes(byProc[proc])
		for i, s := range byProc[proc] {
			args := map[string]string{
				"trace": strconv.FormatUint(s.Trace, 16),
				"span":  strconv.FormatUint(s.ID, 16),
			}
			if s.Parent != 0 {
				args["parent"] = strconv.FormatUint(s.Parent, 16)
			}
			for _, a := range s.Notes {
				args[a.Key] = a.Value
			}
			events = append(events, chromeEvent{
				Name: s.Name,
				Cat:  s.Kind,
				Ph:   "X",
				Ts:   micros(s.Start.Sub(t0)),
				Dur:  micros(s.Duration()),
				Pid:  pid,
				Tid:  lanes[i],
				Args: args,
			})
		}
	}
	// Metadata first, then events in time order — the shape the validator
	// (and a human diffing two files) expects.
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if mi {
			return false
		}
		return events[i].Ts < events[j].Ts
	})
	return json.MarshalIndent(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}

// displayProc labels empty lanes (spans decoded from an untraced source).
func displayProc(proc string) string {
	if proc == "" {
		return "(unknown)"
	}
	return proc
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func earliest(spans []Span) time.Time {
	var t0 time.Time
	for _, s := range spans {
		if t0.IsZero() || s.Start.Before(t0) {
			t0 = s.Start
		}
	}
	return t0
}

// assignLanes greedily packs a lane's spans onto tids so that no two
// overlapping spans share a tid — interval-graph coloring in start order,
// which is what makes the Chrome view a readable Gantt chart.
func assignLanes(spans []Span) []int {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return spans[order[a]].Start.Before(spans[order[b]].Start)
	})
	lanes := make([]int, len(spans))
	var laneEnds []time.Time // per tid, when its last span finishes
	for _, i := range order {
		s := spans[i]
		placed := false
		for tid, end := range laneEnds {
			if !s.Start.Before(end) {
				lanes[i] = tid
				laneEnds[tid] = s.Finish
				placed = true
				break
			}
		}
		if !placed {
			lanes[i] = len(laneEnds)
			laneEnds = append(laneEnds, s.Finish)
		}
	}
	return lanes
}

// ChromeStats summarizes a validated trace file.
type ChromeStats struct {
	Events   int           // all events, metadata included
	Spans    int           // X (or matched B/E) events
	Procs    int           // distinct pids
	Duration time.Duration // last event end minus first event start
}

// ValidateChrome structurally checks a Chrome trace-event JSON file: it
// must unmarshal (object or bare-array form), timestamps must be
// non-negative and monotonically non-decreasing in file order, durations
// non-negative, and every B event must have a matching E on the same
// (pid, tid). Returns summary stats for reporting.
func ValidateChrome(data []byte) (ChromeStats, error) {
	var st ChromeStats
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		var bare []chromeEvent
		if err2 := json.Unmarshal(data, &bare); err2 != nil {
			return st, fmt.Errorf("trace: not a trace-event file: %w", err)
		}
		f.TraceEvents = bare
	}
	if len(f.TraceEvents) == 0 {
		return st, fmt.Errorf("trace: no events")
	}
	open := make(map[[2]int]int) // (pid,tid) -> open B depth
	pids := make(map[int]bool)
	lastTs := -1.0
	var start, end float64
	started := false
	for i, e := range f.TraceEvents {
		st.Events++
		pids[e.Pid] = true
		switch e.Ph {
		case "M":
			continue
		case "X":
			st.Spans++
			if e.Dur < 0 {
				return st, fmt.Errorf("trace: event %d (%q) has negative dur %v", i, e.Name, e.Dur)
			}
		case "B":
			open[[2]int{e.Pid, e.Tid}]++
		case "E":
			k := [2]int{e.Pid, e.Tid}
			if open[k] == 0 {
				return st, fmt.Errorf("trace: event %d: E without B on pid %d tid %d", i, e.Pid, e.Tid)
			}
			open[k]--
			if open[k] == 0 {
				st.Spans++
			}
		default:
			return st, fmt.Errorf("trace: event %d (%q) has unsupported phase %q", i, e.Name, e.Ph)
		}
		if e.Ts < 0 {
			return st, fmt.Errorf("trace: event %d (%q) has negative ts %v", i, e.Name, e.Ts)
		}
		if e.Ts < lastTs {
			return st, fmt.Errorf("trace: event %d (%q) ts %v before predecessor %v — not monotonic",
				i, e.Name, e.Ts, lastTs)
		}
		lastTs = e.Ts
		if !started || e.Ts < start {
			start, started = e.Ts, true
		}
		if e.Ts+e.Dur > end {
			end = e.Ts + e.Dur
		}
	}
	for k, depth := range open {
		if depth != 0 {
			return st, fmt.Errorf("trace: %d unmatched B events on pid %d tid %d", depth, k[0], k[1])
		}
	}
	st.Procs = len(pids)
	st.Duration = time.Duration((end - start) * 1e3)
	return st, nil
}
