// Package coded is a coded-shuffle prototype in the style of Coded
// MapReduce / Coded Distributed Computing (Li, Maddah-Ali, Avestimehr):
// map splits are replicated across r nodes, the redundant intermediate
// data is combine-encoded into XOR packets, and each packet is multicast
// so that one transmission serves r destinations at once — trading r×
// redundant map computation for an ~r× reduction in shipped shuffle
// bytes. It answers the paper's shuffle-volume question from the other
// direction: instead of making the shuffle transport faster (MPI-D), it
// makes the shuffle smaller.
//
// The prototype runs N logical nodes on an in-process MPI world; every
// node is both a mapper and a reducer (partition p is owned by node
// p mod N). Splits are assigned to batches — the lexicographically
// ordered r-subsets of nodes — and every node of a batch maps all of the
// batch's splits, so each node of a batch holds a byte-identical copy of
// the batch's intermediate segments (map functions are deterministic and
// the segments are built from sorted, combined runs). That redundancy is
// what the coding exploits:
//
//   - For every (r+1)-subset S of nodes and every sender m ∈ S, m
//     multicasts one packet to the other r members. The packet is the XOR
//     of r parts, one per destination k ∈ S∖{m}: part idx(m, T) of
//     segment seg[T][k] where T = S∖{k}. Each destination already holds
//     the other r−1 parts (it mapped those batches itself), cancels them
//     out of the XOR, and keeps the one part it is missing.
//   - After the schedule completes each node has all r parts of every
//     segment destined to it and reassembles them by concatenation.
//
// With r = 1 there is nothing to encode and the schedule degenerates to
// exactly today's shuffle: each node combines its own splits' output and
// unicasts every other node's partition data to it once — the per-node-
// combined baseline (the MPI-D engine's NodeArena path).
//
// Stats separates MulticastBytes (each packet's length counted once per
// Mcast, the accounting internal/mpi documents for multicast-capable
// fabrics) from UnicastBytes (r = 1 traffic and loss-recovery re-sends);
// ShippedBytes is their sum. The chaos knob Options.Loss silences one
// node's multicasts mid-schedule; every rank derives the same recovery
// plan — for each starved destination the lowest-ranked surviving holder
// of the missing part unicasts it raw — so a lost multicaster degrades
// coded delivery to unicast re-fetches without changing job output.
package coded

import (
	"errors"
	"fmt"
	"sort"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/mpi"
	"github.com/ict-repro/mpid/internal/shuffle"
)

// User tags for the coded exchange, well clear of mapred's framework tags.
const (
	codedTag         = 7001 // coded multicast packets and r=1 unicast segments
	codedFallbackTag = 7002 // raw parts re-sent after a lost multicaster
)

// NodeLoss describes the chaos scenario: Node stops multicasting after it
// has sourced AfterPackets coded packets (it keeps receiving and keeps
// serving unicast fallbacks are NOT expected of it — recovery uses the
// other replicas). Requires Replication >= 2: with r = 1 no other node
// holds the lost data.
type NodeLoss struct {
	// Node is the rank that goes multicast-silent.
	Node int
	// AfterPackets is how many packets Node sources before going silent;
	// 0 silences it from the start.
	AfterPackets int
}

// Options configures a coded run.
type Options struct {
	// Nodes is the number of logical nodes N; every node maps and
	// reduces. Required (>= 1).
	Nodes int
	// Replication is the map replication factor r: each split is mapped
	// by r nodes. 1 disables coding (plain per-node-combined unicast
	// shuffle); r >= 2 requires Nodes >= r+1 so multicast groups of
	// size r+1 exist.
	Replication int
	// Metrics, when non-nil, receives coded.* counters mirroring Stats
	// and is handed to Job.ObservedCombiner.
	Metrics *metrics.Registry
	// Loss, when non-nil, injects a multicast-silent node (see NodeLoss).
	Loss *NodeLoss
}

// Stats is the byte accounting of one coded run, aggregated over nodes.
type Stats struct {
	// MapExecutions counts map-task executions including replicas:
	// len(splits) * Replication.
	MapExecutions int64
	// Packets is the number of coded multicast packets actually sent.
	Packets int64
	// MulticastBytes sums len(packet) once per multicast, the cost on a
	// multicast-capable fabric however many destinations each packet has.
	MulticastBytes int64
	// UnicastBytes sums point-to-point segment bytes: all shuffle traffic
	// at r = 1, and loss-recovery part re-sends at r >= 2.
	UnicastBytes int64
	// ShippedBytes = MulticastBytes + UnicastBytes, the quantity the
	// shuffle-byte experiments compare across engines.
	ShippedBytes int64
}

// Run executes the job under coded shuffle and returns its result — output
// equality with mapred.Run (canonical Pairs) is the correctness gate — plus
// the byte accounting. Job knobs that configure the MPI-D transport
// (LegacySend, Async, SpillThreshold, MaxTaskAttempts...) do not apply: the
// prototype has its own static exchange.
func Run(job mapred.Job, splits []mapred.Split, opt Options) (*mapred.Result, *Stats, error) {
	if job.Mapper == nil || job.Reducer == nil {
		return nil, nil, errors.New("coded: job needs Mapper and Reducer")
	}
	n, r := opt.Nodes, opt.Replication
	if n < 1 {
		return nil, nil, fmt.Errorf("coded: need at least one node, got %d", n)
	}
	if r < 1 || r > n {
		return nil, nil, fmt.Errorf("coded: replication %d outside [1, nodes=%d]", r, n)
	}
	if r >= 2 && n < r+1 {
		return nil, nil, fmt.Errorf("coded: replication %d needs at least %d nodes for multicast groups, got %d", r, r+1, n)
	}
	if opt.Loss != nil {
		if r < 2 {
			return nil, nil, errors.New("coded: node loss needs replication >= 2 — with r=1 no replica holds the lost data")
		}
		if opt.Loss.Node < 0 || opt.Loss.Node >= n {
			return nil, nil, fmt.Errorf("coded: lost node %d outside [0, %d)", opt.Loss.Node, n)
		}
	}
	if job.NumReducers <= 0 {
		job.NumReducers = 1
	}
	part := job.Partitioner
	if part == nil {
		part = core.HashPartitioner
	}
	comb := shuffle.Combiner(job.Combiner)
	if job.ObservedCombiner != nil {
		comb = shuffle.Combiner(job.ObservedCombiner(opt.Metrics))
	}

	batches := subsetsOf(n, r) // batch b = the r nodes mapping splits s with s % len(batches) == b
	result := &mapred.Result{ByReducer: make([][]kv.Pair, job.NumReducers), MapTasks: len(splits)}
	stats := &Stats{}

	err := mpi.Run(n, func(c *mpi.Comm) error {
		nd := &node{
			c: c, job: job, splits: splits, opt: opt,
			part: part, comb: comb, batches: batches,
		}
		return nd.run(result, stats)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("coded: job %q: %w", job.Name, err)
	}
	stats.ShippedBytes = stats.MulticastBytes + stats.UnicastBytes
	if reg := opt.Metrics; reg != nil {
		reg.Counter("coded.map_executions").Add(stats.MapExecutions)
		reg.Counter("coded.packets").Add(stats.Packets)
		reg.Counter("coded.multicast_bytes").Add(stats.MulticastBytes)
		reg.Counter("coded.unicast_bytes").Add(stats.UnicastBytes)
		reg.Counter("coded.shipped_bytes").Add(stats.ShippedBytes)
	}
	return result, stats, nil
}

// node is one rank's run state.
type node struct {
	c       *mpi.Comm
	job     mapred.Job
	splits  []mapred.Split
	opt     Options
	part    core.PartitionFunc
	comb    shuffle.Combiner
	batches [][]int

	// seg[b][k] is batch b's serialized segment for destination node k:
	// the batch's combined, sorted runs of every partition k owns, each
	// framed with AppendBytes in ascending partition order. Only batches
	// this node mapped are populated; segments received (decoded or via
	// fallback) land in recvSeg[b].
	seg     map[int][][]byte
	recvSeg map[int][]byte

	mapExecs               int64
	packets                int64
	mcastBytes, ucastBytes int64
}

func (nd *node) run(result *mapred.Result, stats *Stats) error {
	if err := nd.mapPhase(); err != nil {
		return err
	}
	var err error
	if nd.opt.Replication == 1 {
		err = nd.unicastShuffle()
	} else {
		err = nd.codedShuffle()
	}
	if err != nil {
		return err
	}
	out, err := nd.reducePhase()
	if err != nil {
		return err
	}
	return nd.gather(out, result, stats)
}

// ---------------------------------------------------------------------------
// Map phase

// mapPhase runs every split of every batch this node belongs to and builds
// the per-destination segments. Replicas build byte-identical segments:
// splits are mapped in ascending order, runs are stably sorted, and the
// combiner is pure — the determinism the coding relies on.
func (nd *node) mapPhase() error {
	me := nd.c.Rank()
	nd.seg = make(map[int][][]byte)
	nd.recvSeg = make(map[int][]byte)
	for b, members := range nd.batches {
		if !contains(members, me) {
			continue
		}
		// pairs[p] accumulates partition p's raw emissions in map order.
		pairs := make([][]kv.Pair, nd.job.NumReducers)
		emit := func(key, value []byte) error {
			p := nd.part(key, nd.job.NumReducers)
			pairs[p] = append(pairs[p], kv.Pair{Key: key, Value: value}.Clone())
			return nil
		}
		for s := b; s < len(nd.splits); s += len(nd.batches) {
			nd.mapExecs++
			err := nd.splits[s].Records(func(k, v []byte) error {
				return nd.job.Mapper.Map(k, v, emit)
			})
			if err != nil {
				return fmt.Errorf("map split %d: %w", s, err)
			}
		}
		nd.seg[b] = make([][]byte, nd.c.Size())
		for k := 0; k < nd.c.Size(); k++ {
			var seg []byte
			for _, p := range ownedParts(k, nd.c.Size(), nd.job.NumReducers) {
				seg = kv.AppendBytes(seg, buildRun(pairs[p], nd.comb))
			}
			nd.seg[b][k] = seg
		}
	}
	return nil
}

// buildRun renders emissions as a sorted, combined run (the same shape as
// a hadoop map spill): keys in ascending order, values in emission order,
// multi-value groups passed through the combiner.
func buildRun(pairs []kv.Pair, comb shuffle.Combiner) []byte {
	sort.SliceStable(pairs, func(i, j int) bool {
		return kv.Compare(pairs[i].Key, pairs[j].Key) < 0
	})
	var run []byte
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && kv.Compare(pairs[j].Key, pairs[i].Key) == 0 {
			j++
		}
		values := make([][]byte, 0, j-i)
		for _, p := range pairs[i:j] {
			values = append(values, p.Value)
		}
		if comb != nil && len(values) > 1 {
			values = comb(pairs[i].Key, values)
		}
		run = kv.AppendKeyList(run, kv.KeyList{Key: pairs[i].Key, Values: values})
		i = j
	}
	return run
}

// ---------------------------------------------------------------------------
// r = 1: plain unicast shuffle

// unicastShuffle ships each remote destination's segment directly — the
// degenerate schedule coded delivery reduces to without replication.
// Empty segments are still sent to keep the schedule aligned.
func (nd *node) unicastShuffle() error {
	me := nd.c.Rank()
	for b, members := range nd.batches { // batch b = {b} when r = 1
		src := members[0]
		for k := 0; k < nd.c.Size(); k++ {
			if k == src {
				continue
			}
			switch me {
			case src:
				seg := nd.seg[b][k]
				if err := nd.c.Send(k, codedTag, seg); err != nil {
					return err
				}
				nd.ucastBytes += int64(len(seg))
			case k:
				data, _, err := nd.c.Recv(src, codedTag)
				if err != nil {
					return err
				}
				nd.recvSeg[b] = data
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// r >= 2: coded multicast shuffle

// packetHeader describes one coded packet: for each destination, the raw
// (unpadded) length of the part XORed in for it. Wire format:
// VLong ndests, then per destination (VLong dest, VLong rawLen), then the
// XOR body padded to the longest part.
type packetHeader struct {
	dests   []int
	rawLens []int
}

func (h packetHeader) encode(body []byte) []byte {
	out := kv.AppendVLong(nil, int64(len(h.dests)))
	for i, d := range h.dests {
		out = kv.AppendVLong(out, int64(d))
		out = kv.AppendVLong(out, int64(h.rawLens[i]))
	}
	return append(out, body...)
}

func decodePacket(data []byte) (packetHeader, []byte, error) {
	var h packetHeader
	nd64, n, err := kv.ReadVLong(data)
	if err != nil {
		return h, nil, fmt.Errorf("coded: corrupt packet header: %w", err)
	}
	data = data[n:]
	for i := int64(0); i < nd64; i++ {
		d, n, err := kv.ReadVLong(data)
		if err != nil {
			return h, nil, fmt.Errorf("coded: corrupt packet header: %w", err)
		}
		data = data[n:]
		l, n, err := kv.ReadVLong(data)
		if err != nil {
			return h, nil, fmt.Errorf("coded: corrupt packet header: %w", err)
		}
		data = data[n:]
		h.dests = append(h.dests, int(d))
		h.rawLens = append(h.rawLens, int(l))
	}
	return h, data, nil
}

// partOf slices part j of r from a segment: contiguous near-equal chunks,
// reassembled downstream by plain concatenation.
func partOf(seg []byte, j, r int) []byte {
	lo := j * len(seg) / r
	hi := (j + 1) * len(seg) / r
	return seg[lo:hi]
}

// codedShuffle walks the deterministic global schedule: every (r+1)-subset
// S in lexicographic order, every sender m ∈ S ascending. Sends are eager,
// so each rank can process the schedule sequentially without deadlock.
func (nd *node) codedShuffle() error {
	me, n, r := nd.c.Rank(), nd.c.Size(), nd.opt.Replication
	// parts[b] collects the r parts of batch b's segment for this node.
	parts := make(map[int][][]byte)
	lossSent := 0 // packets the lost node has sourced so far, tracked by every rank
	for _, s := range subsetsOf(n, r+1) {
		for _, m := range s {
			lost := nd.opt.Loss != nil && m == nd.opt.Loss.Node
			if lost {
				if lossSent < nd.opt.Loss.AfterPackets {
					lossSent++
					lost = false
				}
			}
			if lost {
				if err := nd.fallbackRound(s, m, parts); err != nil {
					return err
				}
				continue
			}
			switch {
			case me == m:
				if err := nd.sendPacket(s, m); err != nil {
					return err
				}
			case contains(s, me):
				if err := nd.recvPacket(s, m, parts); err != nil {
					return err
				}
			}
		}
	}
	// Reassemble received segments by concatenating their r parts.
	for b, members := range nd.batches {
		if contains(members, me) {
			continue
		}
		var seg []byte
		for j, p := range parts[b] {
			if p == nil {
				return fmt.Errorf("coded: node %d never received part %d of batch %d", me, j, b)
			}
			seg = append(seg, p...)
		}
		nd.recvSeg[b] = seg
	}
	return nil
}

// sendPacket multicasts packet (S, m) from this node: the XOR of one part
// per destination, padded to the longest.
func (nd *node) sendPacket(s []int, m int) error {
	h := packetHeader{}
	var raw [][]byte
	maxLen := 0
	for _, k := range s {
		if k == m {
			continue
		}
		t := without(s, k) // the batch whose segment k is missing; m ∈ t
		p := partOf(nd.seg[batchIndex(nd.batches, t)][k], indexOf(t, m), nd.opt.Replication)
		h.dests = append(h.dests, k)
		h.rawLens = append(h.rawLens, len(p))
		raw = append(raw, p)
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	body := make([]byte, maxLen)
	for _, p := range raw {
		for i := range p {
			body[i] ^= p[i]
		}
	}
	pkt := h.encode(body)
	if err := nd.c.Mcast(h.dests, codedTag, pkt); err != nil {
		return err
	}
	nd.packets++
	nd.mcastBytes += int64(len(pkt)) // one transmission, counted once
	return nil
}

// recvPacket receives packet (S, m), cancels the parts this node already
// holds (it mapped every other destination's batch) and keeps its own.
func (nd *node) recvPacket(s []int, m int, parts map[int][][]byte) error {
	me := nd.c.Rank()
	data, _, err := nd.c.Recv(m, codedTag)
	if err != nil {
		return err
	}
	h, xored, err := decodePacket(data)
	if err != nil {
		return err
	}
	// The payload may alias the sender's buffer on zero-copy transports;
	// decode into a private copy.
	body := append([]byte(nil), xored...)
	own := -1
	for i, k := range h.dests {
		if k == me {
			own = i
			continue
		}
		t := without(s, k)
		p := partOf(nd.seg[batchIndex(nd.batches, t)][k], indexOf(t, m), nd.opt.Replication)
		if len(p) != h.rawLens[i] {
			return fmt.Errorf("coded: node %d part for dest %d is %d bytes, packet says %d",
				me, k, len(p), h.rawLens[i])
		}
		for j := range p {
			body[j] ^= p[j]
		}
	}
	if own < 0 {
		return fmt.Errorf("coded: node %d missing from packet (%v, src %d)", me, s, m)
	}
	t := without(s, me)
	nd.storePart(parts, batchIndex(nd.batches, t), indexOf(t, m), body[:h.rawLens[own]])
	return nil
}

// fallbackRound replaces a silenced packet (S, L): for each destination k
// the missing raw part is re-sent point-to-point by the lowest-ranked
// surviving replica of k's batch. Every rank derives the identical plan
// from the schedule alone — no coordination with the lost node.
func (nd *node) fallbackRound(s []int, lostNode int, parts map[int][][]byte) error {
	me := nd.c.Rank()
	for _, k := range s {
		if k == lostNode {
			continue
		}
		t := without(s, k) // lostNode ∈ t; survivors of t also hold seg[t][k]
		holder := -1
		for _, h := range t {
			if h != lostNode {
				holder = h
				break
			}
		}
		j := indexOf(t, lostNode)
		switch me {
		case holder:
			p := partOf(nd.seg[batchIndex(nd.batches, t)][k], j, nd.opt.Replication)
			if err := nd.c.Send(k, codedFallbackTag, p); err != nil {
				return err
			}
			nd.ucastBytes += int64(len(p))
		case k:
			data, _, err := nd.c.Recv(holder, codedFallbackTag)
			if err != nil {
				return err
			}
			nd.storePart(parts, batchIndex(nd.batches, t), j, data)
		}
	}
	return nil
}

func (nd *node) storePart(parts map[int][][]byte, b, j int, p []byte) {
	if parts[b] == nil {
		parts[b] = make([][]byte, nd.opt.Replication)
	}
	if p == nil {
		// A zero-length part still counts as received; keep it non-nil so
		// reassembly can tell "empty" from "missing".
		p = []byte{}
	}
	parts[b][j] = p
}

// ---------------------------------------------------------------------------
// Reduce phase and collection

// reducePhase merges, for each owned partition, that partition's run from
// every batch segment — locally built or received — and reduces the merged
// groups in key order.
func (nd *node) reducePhase() (map[int][]byte, error) {
	me := nd.c.Rank()
	out := make(map[int][]byte)
	owned := ownedParts(me, nd.c.Size(), nd.job.NumReducers)
	for _, p := range owned {
		var runs []shuffle.Run
		for b, members := range nd.batches {
			var seg []byte
			if contains(members, me) {
				seg = nd.seg[b][me]
			} else {
				seg = nd.recvSeg[b]
			}
			run, err := partitionRun(seg, owned, p)
			if err != nil {
				return nil, fmt.Errorf("batch %d partition %d: %w", b, p, err)
			}
			if len(run) > 0 {
				runs = append(runs, shuffle.Run{Data: run, Seq: b})
			}
		}
		var buf []byte
		emit := func(key, value []byte) error {
			buf = kv.AppendPair(buf, kv.Pair{Key: key, Value: value})
			return nil
		}
		err := shuffle.MergeRuns(runs, nd.comb, func(kl kv.KeyList) error {
			return nd.job.Reducer.Reduce(kl.Key, kl.Values, emit)
		})
		if err != nil {
			return nil, fmt.Errorf("reduce partition %d: %w", p, err)
		}
		out[p] = buf
	}
	return out, nil
}

// gather collects every node's reduce outputs and byte accounting at rank 0
// and fills the shared result.
func (nd *node) gather(out map[int][]byte, result *mapred.Result, stats *Stats) error {
	blob := kv.AppendVLong(nil, nd.mapExecs)
	blob = kv.AppendVLong(blob, nd.packets)
	blob = kv.AppendVLong(blob, nd.mcastBytes)
	blob = kv.AppendVLong(blob, nd.ucastBytes)
	owned := ownedParts(nd.c.Rank(), nd.c.Size(), nd.job.NumReducers)
	blob = kv.AppendVLong(blob, int64(len(owned)))
	for _, p := range owned {
		blob = kv.AppendVLong(blob, int64(p))
		blob = kv.AppendBytes(blob, out[p])
	}
	blobs, err := nd.c.Gather(0, blob)
	if err != nil {
		return err
	}
	if nd.c.Rank() != 0 {
		return nil
	}
	for _, b := range blobs {
		fields := []*int64{&stats.MapExecutions, &stats.Packets, &stats.MulticastBytes, &stats.UnicastBytes}
		for _, f := range fields {
			v, n, err := kv.ReadVLong(b)
			if err != nil {
				return fmt.Errorf("coded: corrupt stats blob: %w", err)
			}
			*f += v
			b = b[n:]
		}
		nParts, n, err := kv.ReadVLong(b)
		if err != nil {
			return fmt.Errorf("coded: corrupt result blob: %w", err)
		}
		b = b[n:]
		for i := int64(0); i < nParts; i++ {
			p64, n, err := kv.ReadVLong(b)
			if err != nil {
				return fmt.Errorf("coded: corrupt result blob: %w", err)
			}
			b = b[n:]
			framed, n, err := kv.ReadBytes(b)
			if err != nil {
				return fmt.Errorf("coded: corrupt result blob: %w", err)
			}
			b = b[n:]
			pairs, err := decodeFramedPairs(framed)
			if err != nil {
				return err
			}
			result.ByReducer[p64] = pairs
		}
	}
	return nil
}

func decodeFramedPairs(b []byte) ([]kv.Pair, error) {
	var pairs []kv.Pair
	for len(b) > 0 {
		p, n, err := kv.ReadPair(b)
		if err != nil {
			return nil, fmt.Errorf("coded: corrupt reduce output: %w", err)
		}
		pairs = append(pairs, p.Clone())
		b = b[n:]
	}
	return pairs, nil
}

// ---------------------------------------------------------------------------
// Subset and partition helpers

// subsetsOf enumerates the size-k subsets of [0, n) in lexicographic
// order, each sorted ascending. The order is the global contract: batch
// indices and the multicast schedule both derive from it.
func subsetsOf(n, k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= n-(k-len(cur)); i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// batchIndex finds the batch holding exactly the given sorted member set.
func batchIndex(batches [][]int, members []int) int {
	for b, m := range batches {
		if equalInts(m, members) {
			return b
		}
	}
	panic(fmt.Sprintf("coded: no batch for members %v", members))
}

// without returns sorted subset s minus one element.
func without(s []int, x int) []int {
	out := make([]int, 0, len(s)-1)
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func indexOf(s []int, x int) int {
	for i, v := range s {
		if v == x {
			return i
		}
	}
	panic(fmt.Sprintf("coded: %d not in subset %v", x, s))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ownedParts lists the partitions node k owns: p in [0, numReducers) with
// p mod n == k, ascending.
func ownedParts(k, n, numReducers int) []int {
	var out []int
	for p := k; p < numReducers; p += n {
		out = append(out, p)
	}
	return out
}

// partitionRun extracts partition p's framed run from a segment whose
// frames follow the owner's ascending partition order.
func partitionRun(seg []byte, owned []int, p int) ([]byte, error) {
	for _, q := range owned {
		run, n, err := kv.ReadBytes(seg)
		if err != nil {
			return nil, fmt.Errorf("coded: corrupt segment: %w", err)
		}
		if q == p {
			return run, nil
		}
		seg = seg[n:]
	}
	return nil, fmt.Errorf("coded: partition %d not framed in segment", p)
}
