package coded

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
)

var words = []string{
	"map", "reduce", "shuffle", "merge", "spill", "sort", "combine",
	"partition", "tracker", "heartbeat", "jetty", "rank", "arena",
}

func genText(size, seed int) []byte {
	rng := rand.New(rand.NewSource(int64(seed)))
	var buf bytes.Buffer
	for buf.Len() < size {
		n := 3 + rng.Intn(8)
		for i := 0; i < n; i++ {
			if i > 0 {
				buf.WriteByte(' ')
			}
			buf.WriteString(words[rng.Intn(len(words))])
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

var wcMapper = mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
	for _, w := range bytes.Fields(line) {
		if err := emit(w, kv.AppendVLong(nil, 1)); err != nil {
			return err
		}
	}
	return nil
})

var wcReducer = mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
	var total int64
	for _, v := range values {
		n, _, err := kv.ReadVLong(v)
		if err != nil {
			return err
		}
		total += n
	}
	return emit(key, kv.AppendVLong(nil, total))
})

func wcJob(reducers int) mapred.Job {
	return mapred.Job{
		Name:        "wc-coded",
		Mapper:      wcMapper,
		Reducer:     wcReducer,
		Combiner:    mapred.CombinerFromReducer(wcReducer),
		NumReducers: reducers,
	}
}

func encodePairs(pairs []kv.Pair) []byte {
	var buf []byte
	for _, p := range pairs {
		buf = kv.AppendPair(buf, p)
	}
	return buf
}

// TestCodedByteIdenticalAcrossReplication: coded shuffle at every
// replication factor must reproduce the MPI-D engine's output bit for bit
// (canonical pair order), with r = 1 degenerating to a pure unicast
// schedule and r >= 2 actually multicasting coded packets.
func TestCodedByteIdenticalAcrossReplication(t *testing.T) {
	text := genText(40_000, 31)
	splits := mapred.SplitText(text, 2_500)
	want, err := mapred.Run(wcJob(5), splits, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := encodePairs(want.Pairs())
	for _, r := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			res, st, err := Run(wcJob(5), splits, Options{Nodes: 4, Replication: r})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodePairs(res.Pairs()), ref) {
				t.Fatalf("coded r=%d output differs from mapred.Run", r)
			}
			if want := int64(len(splits) * r); st.MapExecutions != want {
				t.Errorf("MapExecutions = %d, want %d (r× replication)", st.MapExecutions, want)
			}
			if r == 1 {
				if st.Packets != 0 || st.MulticastBytes != 0 {
					t.Errorf("r=1 multicasted (%d packets, %d bytes); must be pure unicast", st.Packets, st.MulticastBytes)
				}
				if st.UnicastBytes == 0 {
					t.Error("r=1 shipped no unicast bytes")
				}
			} else {
				if st.Packets == 0 || st.MulticastBytes == 0 {
					t.Errorf("r=%d sent no coded packets", r)
				}
				if st.UnicastBytes != 0 {
					t.Errorf("r=%d shipped %d unicast bytes without any loss", r, st.UnicastBytes)
				}
			}
			if st.ShippedBytes != st.MulticastBytes+st.UnicastBytes {
				t.Errorf("ShippedBytes %d != multicast %d + unicast %d", st.ShippedBytes, st.MulticastBytes, st.UnicastBytes)
			}
		})
	}
}

// TestCodedReplicationReducesShippedBytes is the headline tradeoff: paying
// r× map executions buys an ~r× reduction in shipped shuffle bytes, since
// each multicast packet serves r destinations for one transmission.
func TestCodedReplicationReducesShippedBytes(t *testing.T) {
	text := genText(60_000, 32)
	splits := mapred.SplitText(text, 2_000)
	shipped := make(map[int]int64)
	for _, r := range []int{1, 2, 3} {
		_, st, err := Run(wcJob(6), splits, Options{Nodes: 4, Replication: r})
		if err != nil {
			t.Fatal(err)
		}
		shipped[r] = st.ShippedBytes
		t.Logf("r=%d: shipped %d bytes (%d multicast packets)", r, st.ShippedBytes, st.Packets)
	}
	if shipped[2] >= shipped[1] {
		t.Errorf("r=2 did not reduce shipped bytes: %d >= %d", shipped[2], shipped[1])
	}
	if shipped[3] >= shipped[1] {
		t.Errorf("r=3 did not reduce shipped bytes vs r=1: %d >= %d", shipped[3], shipped[1])
	}
}

// TestCodedLostNodeFallsBackToUnicast: a node going multicast-silent
// mid-schedule must not change job output — every starved destination
// re-fetches its missing raw part point-to-point from a surviving replica
// — and the recovery traffic shows up as UnicastBytes.
func TestCodedLostNodeFallsBackToUnicast(t *testing.T) {
	text := genText(40_000, 33)
	splits := mapred.SplitText(text, 2_500)
	clean, stClean, err := Run(wcJob(5), splits, Options{Nodes: 4, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	lossy, st, err := Run(wcJob(5), splits, Options{
		Nodes: 4, Replication: 2,
		Loss: &NodeLoss{Node: 1, AfterPackets: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodePairs(lossy.Pairs()), encodePairs(clean.Pairs())) {
		t.Fatal("lost multicaster changed job output")
	}
	if st.UnicastBytes == 0 {
		t.Fatal("no unicast fallback traffic after node loss")
	}
	if st.Packets >= stClean.Packets {
		t.Errorf("lost node still sourced a full packet schedule: %d >= %d", st.Packets, stClean.Packets)
	}
}

// TestCodedOptionValidation: the degenerate and unsupported corners fail
// loudly instead of wedging the exchange.
func TestCodedOptionValidation(t *testing.T) {
	splits := mapred.SplitText([]byte("a b c\n"), 10)
	cases := []struct {
		name string
		opt  Options
	}{
		{"zero nodes", Options{Nodes: 0, Replication: 1}},
		{"replication above nodes", Options{Nodes: 2, Replication: 3}},
		{"no room for multicast group", Options{Nodes: 2, Replication: 2}},
		{"loss without redundancy", Options{Nodes: 3, Replication: 1, Loss: &NodeLoss{Node: 0}}},
		{"lost node out of range", Options{Nodes: 3, Replication: 2, Loss: &NodeLoss{Node: 7}}},
	}
	for _, tc := range cases {
		if _, _, err := Run(wcJob(2), splits, tc.opt); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
