// Package hadoop is a miniature but real Hadoop 0.20 MapReduce engine
// assembled from this repository's live substrates: a jobtracker serving
// the task protocol over internal/hadooprpc, tasktrackers that poll it
// with heartbeats and run map/reduce tasks in slot-bounded workers, map
// outputs partitioned and served through internal/jetty's shuffle servlet,
// and reducers that fetch, merge and reduce.
//
// It executes the same jobs as the MPI-D path (internal/mapred): both
// consume mapred.Job and mapred.Split, so one workload can run on either
// engine. That enables the live counterpart of the paper's Figure 6 — the
// identical WordCount on the Hadoop-shaped data path (RPC heartbeats +
// HTTP shuffle + per-task scheduling) versus the MPI-D path (pre-spawned
// ranks + buffered/combined/realigned MPI messages) — on one machine, with
// every byte crossing real sockets.
package hadoop

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
)

// Config sizes the mini-cluster.
type Config struct {
	// NumTrackers is the tasktracker count (default 2).
	NumTrackers int
	// MapSlots and ReduceSlots bound per-tracker task concurrency
	// (defaults 2 and 2).
	MapSlots, ReduceSlots int
	// Heartbeat is the tasktracker poll interval. Hadoop uses 3 s; the
	// default here is 2 ms so tests and live benchmarks are not dominated
	// by idle waiting — scale it up to study scheduling latency.
	Heartbeat time.Duration
	// SlowstartFraction gates reduce launches on map progress (default
	// 0.05, as mapred.reduce.slowstart).
	SlowstartFraction float64
	// CopierThreads is the number of parallel shuffle fetchers per reduce
	// task (mapred.reduce.parallel.copies; default 5).
	CopierThreads int
}

func (c Config) withDefaults() Config {
	if c.NumTrackers <= 0 {
		c.NumTrackers = 2
	}
	if c.MapSlots <= 0 {
		c.MapSlots = 2
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = 2
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 2 * time.Millisecond
	}
	if c.SlowstartFraction <= 0 {
		c.SlowstartFraction = 0.05
	}
	if c.CopierThreads <= 0 {
		c.CopierThreads = 5
	}
	return c
}

// Protocol identity for the jobtracker RPC service.
const (
	jtProtocolName    = "org.ict.mpid.JobTrackerProtocol"
	jtProtocolVersion = int64(20)
)

// Heartbeat action types.
const (
	actLaunchMap    = 1
	actLaunchReduce = 2
	actAbort        = 3
	actJobDone      = 4
)

// Run executes the job over the given splits on a fresh mini-cluster and
// returns the collected result. It is the Hadoop-path analogue of
// mapred.Run.
func Run(job mapred.Job, splits []mapred.Split, cfg Config) (*mapred.Result, error) {
	if job.Mapper == nil || job.Reducer == nil {
		return nil, errors.New("hadoop: job needs Mapper and Reducer")
	}
	if job.NumReducers <= 0 {
		job.NumReducers = 1
	}
	cfg = cfg.withDefaults()

	jt := newJobTracker(job, splits, cfg)
	addr, err := jt.start()
	if err != nil {
		return nil, err
	}
	defer jt.stop()

	var wg sync.WaitGroup
	trackerErrs := make([]error, cfg.NumTrackers)
	for i := 0; i < cfg.NumTrackers; i++ {
		tt, err := newTaskTracker(addr, job, splits, cfg)
		if err != nil {
			jt.abort(fmt.Errorf("hadoop: tracker %d: %w", i, err))
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trackerErrs[i] = tt.run()
			tt.close()
		}(i)
	}
	wg.Wait()

	jt.mu.Lock()
	defer jt.mu.Unlock()
	if jt.failure != nil {
		return nil, jt.failure
	}
	for _, err := range trackerErrs {
		if err != nil {
			return nil, err
		}
	}
	if jt.reducesDone != job.NumReducers {
		return nil, fmt.Errorf("hadoop: job ended with %d/%d reduces done", jt.reducesDone, job.NumReducers)
	}
	result := &mapred.Result{
		ByReducer: jt.outputs,
		MapTasks:  len(splits),
	}
	return result, nil
}

// --------------------------------------------------------------------------
// JobTracker

type trackerInfo struct {
	id        int
	jettyAddr string
}

type jobTracker struct {
	job    mapred.Job
	splits []mapred.Split
	cfg    Config

	srv *hadooprpc.Server

	mu          sync.Mutex
	trackers    []trackerInfo
	pendingMaps []int
	mapsDone    int
	mapLocation map[int]int  // map task -> tracker id (provisional at assign)
	completed   map[int]bool // map tasks that reported completion
	nextReduce  int
	reducesDone int
	outputs     [][]kv.Pair
	failure     error
}

func newJobTracker(job mapred.Job, splits []mapred.Split, cfg Config) *jobTracker {
	jt := &jobTracker{
		job:         job,
		splits:      splits,
		cfg:         cfg,
		mapLocation: make(map[int]int),
		completed:   make(map[int]bool),
		outputs:     make([][]kv.Pair, job.NumReducers),
	}
	for i := range splits {
		jt.pendingMaps = append(jt.pendingMaps, i)
	}
	return jt
}

func (jt *jobTracker) start() (string, error) {
	jt.srv = hadooprpc.NewServer()
	jt.srv.Register(&hadooprpc.Protocol{
		Name:    jtProtocolName,
		Version: jtProtocolVersion,
		Methods: map[string]hadooprpc.Handler{
			"register":        jt.handleRegister,
			"heartbeat":       jt.handleHeartbeat,
			"mapCompleted":    jt.handleMapCompleted,
			"reduceCompleted": jt.handleReduceCompleted,
			"taskFailed":      jt.handleTaskFailed,
			"mapLocations":    jt.handleMapLocations,
		},
	})
	return jt.srv.Listen("127.0.0.1:0")
}

func (jt *jobTracker) stop() {
	jt.srv.Close()
}

func (jt *jobTracker) abort(err error) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if jt.failure == nil {
		jt.failure = err
	}
}

// handleRegister: [jettyAddr] -> trackerID.
func (jt *jobTracker) handleRegister(params [][]byte) ([]byte, error) {
	if len(params) != 1 {
		return nil, errors.New("register wants 1 parameter")
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	id := len(jt.trackers)
	jt.trackers = append(jt.trackers, trackerInfo{id: id, jettyAddr: string(params[0])})
	return kv.AppendVLong(nil, int64(id)), nil
}

// handleHeartbeat: [trackerID, freeMapSlots, freeReduceSlots] -> action
// list. At most one map and one reduce launch per heartbeat, the 0.20
// behaviour.
func (jt *jobTracker) handleHeartbeat(params [][]byte) ([]byte, error) {
	if len(params) != 3 {
		return nil, errors.New("heartbeat wants 3 parameters")
	}
	trackerID, _, err := kv.ReadVLong(params[0])
	if err != nil {
		return nil, err
	}
	freeMap, _, err := kv.ReadVLong(params[1])
	if err != nil {
		return nil, err
	}
	freeReduce, _, err := kv.ReadVLong(params[2])
	if err != nil {
		return nil, err
	}

	jt.mu.Lock()
	defer jt.mu.Unlock()
	var resp []byte
	switch {
	case jt.failure != nil:
		resp = kv.AppendVLong(resp, actAbort)
	case jt.reducesDone == jt.job.NumReducers:
		resp = kv.AppendVLong(resp, actJobDone)
	default:
		if freeMap > 0 && len(jt.pendingMaps) > 0 {
			task := jt.pendingMaps[0]
			jt.pendingMaps = jt.pendingMaps[1:]
			jt.mapLocation[task] = int(trackerID) // provisional; confirmed on completion
			resp = kv.AppendVLong(resp, actLaunchMap)
			resp = kv.AppendVLong(resp, int64(task))
		}
		slowstartMet := float64(jt.mapsDone) >= jt.cfg.SlowstartFraction*float64(len(jt.splits))
		if freeReduce > 0 && slowstartMet && jt.nextReduce < jt.job.NumReducers {
			resp = kv.AppendVLong(resp, actLaunchReduce)
			resp = kv.AppendVLong(resp, int64(jt.nextReduce))
			jt.nextReduce++
		}
	}
	return resp, nil
}

// handleMapCompleted: [trackerID, mapID].
func (jt *jobTracker) handleMapCompleted(params [][]byte) ([]byte, error) {
	if len(params) != 2 {
		return nil, errors.New("mapCompleted wants 2 parameters")
	}
	trackerID, _, err := kv.ReadVLong(params[0])
	if err != nil {
		return nil, err
	}
	mapID, _, err := kv.ReadVLong(params[1])
	if err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.mapLocation[int(mapID)] = int(trackerID)
	if !jt.completed[int(mapID)] {
		jt.completed[int(mapID)] = true
		jt.mapsDone++
	}
	return nil, nil
}

// handleReduceCompleted: [reduceID, framedPairs].
func (jt *jobTracker) handleReduceCompleted(params [][]byte) ([]byte, error) {
	if len(params) != 2 {
		return nil, errors.New("reduceCompleted wants 2 parameters")
	}
	reduceID, _, err := kv.ReadVLong(params[0])
	if err != nil {
		return nil, err
	}
	pairs, err := decodePairs(params[1])
	if err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if int(reduceID) < 0 || int(reduceID) >= len(jt.outputs) {
		return nil, fmt.Errorf("reduce id %d out of range", reduceID)
	}
	jt.outputs[reduceID] = pairs
	jt.reducesDone++
	return nil, nil
}

// handleTaskFailed: [message] — the job aborts (no retries in the mini
// engine; internal/mapred demonstrates retry scheduling).
func (jt *jobTracker) handleTaskFailed(params [][]byte) ([]byte, error) {
	msg := "task failed"
	if len(params) == 1 {
		msg = string(params[0])
	}
	jt.abort(errors.New("hadoop: " + msg))
	return nil, nil
}

// handleMapLocations: [] -> [count, then per completed map: mapID,
// jettyAddr]. Reducers poll this until every map is present — the event
// stream a real reduce task's copier follows.
func (jt *jobTracker) handleMapLocations(params [][]byte) ([]byte, error) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	done := make([]int, 0, len(jt.completed))
	for task := range jt.completed {
		done = append(done, task)
	}
	sort.Ints(done)
	resp := kv.AppendVLong(nil, int64(len(done)))
	for _, task := range done {
		resp = kv.AppendVLong(resp, int64(task))
		resp = kv.AppendBytes(resp, []byte(jt.trackers[jt.mapLocation[task]].jettyAddr))
	}
	return resp, nil
}
