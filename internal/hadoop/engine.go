// Package hadoop is a miniature but real Hadoop 0.20 MapReduce engine
// assembled from this repository's live substrates: a jobtracker serving
// the task protocol over internal/hadooprpc, tasktrackers that poll it
// with heartbeats and run map/reduce tasks in slot-bounded workers, map
// outputs partitioned and served through internal/jetty's shuffle servlet,
// and reducers that fetch, merge and reduce.
//
// It executes the same jobs as the MPI-D path (internal/mapred): both
// consume mapred.Job and mapred.Split, so one workload can run on either
// engine. That enables the live counterpart of the paper's Figure 6 — the
// identical WordCount on the Hadoop-shaped data path (RPC heartbeats +
// HTTP shuffle + per-task scheduling) versus the MPI-D path (pre-spawned
// ranks + buffered/combined/realigned MPI messages) — on one machine, with
// every byte crossing real sockets.
//
// The engine is fault tolerant in the Hadoop mold: failed tasks are
// re-queued and re-executed up to Config.MaxTaskAttempts; tasktrackers
// that stop heartbeating are declared lost after Config.TrackerTimeout and
// their work (including already-completed map outputs, which died with
// their shuffle server) is re-executed elsewhere; reducers that cannot
// fetch a map output report the failure and are redirected to the
// replacement execution. Heartbeats carry a sequence number so a retried
// heartbeat RPC replays the cached response instead of double-assigning
// tasks — the responseId mechanism of Hadoop's InterTrackerProtocol.
package hadoop

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/admin"
	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/obs"
	"github.com/ict-repro/mpid/internal/trace"
)

// Config sizes the mini-cluster.
type Config struct {
	// NumTrackers is the tasktracker count (default 2).
	NumTrackers int
	// MapSlots and ReduceSlots bound per-tracker task concurrency
	// (defaults 2 and 2).
	MapSlots, ReduceSlots int
	// Heartbeat is the tasktracker poll interval. Hadoop uses 3 s; the
	// default here is 2 ms so tests and live benchmarks are not dominated
	// by idle waiting — scale it up to study scheduling latency.
	Heartbeat time.Duration
	// SlowstartFraction gates reduce launches on map progress (default
	// 0.05, as mapred.reduce.slowstart).
	SlowstartFraction float64
	// CopierThreads is the number of parallel shuffle fetchers per reduce
	// task (mapred.reduce.parallel.copies; default 5).
	CopierThreads int
	// MergeFactor is the reduce-side merge fan-in (io.sort.factor; default
	// 10): while fetches are still in flight, a background merge pass folds
	// the MergeFactor smallest pending runs into one, overlapping merge CPU
	// with copy wait. Only meaningful on the pipelined shuffle path.
	MergeFactor int
	// CompressShuffle compresses map-output segments on the jetty wire
	// (mapred.compress.map.output): trackers advertise acceptance on fetch,
	// shuffle servers DEFLATE each served segment, and the copier inflates
	// into pooled buffers. Trades a little CPU for shuffle bytes.
	CompressShuffle bool
	// LegacyShuffle restores the pre-pipeline reduce path — buffer every
	// fetched segment into one hash map, then sort the whole key space —
	// kept for A/B benchmarking and the byte-identical property tests. The
	// default (false) is the pipelined sorted-run merge engine.
	LegacyShuffle bool
	// NodeCombine enables the per-tracker combine stage — in-node combining
	// for the Hadoop path. Map tasks defer their completion report; once
	// the jobtracker signals the map queue drained (actMapsDrained), each
	// tracker merges the sorted spill runs of its co-located completed
	// maps through the job's combiner and publishes one combined segment
	// per partition under a negative group id, which reducers fetch in one
	// request instead of one per map. Per-map segments are still published
	// and advertised, so reducers that already hold part of a group — or
	// whose group fetch fails — fall back to per-map fetches through the
	// unchanged fetchFailed/re-execution machinery. Requires deterministic
	// map output (the repo-wide byte-identity assumption): a group fetch
	// credits every original member, including one that was re-queued
	// after a lost tracker. Off (the default), the per-task path of prior
	// releases runs byte-identically unchanged.
	NodeCombine bool
	// MaxTaskAttempts bounds how many times one task may be attempted
	// before the job aborts (mapred.map.max.attempts; default 4).
	// Re-executions forced by tracker loss are not charged against it.
	MaxTaskAttempts int
	// TrackerTimeout is how long a tracker may go without heartbeating
	// before the jobtracker declares it lost and re-queues its tasks
	// (default max(500 ms, 150 heartbeats); negative disables liveness
	// detection).
	TrackerTimeout time.Duration
	// RPC configures the tasktrackers' jobtracker clients and, via
	// MaxAttempts/Backoff, the shuffle fetch retry budget. The zero value
	// keeps the fail-fast defaults.
	RPC hadooprpc.Options
	// Injector, when set, threads fault injection through the cluster:
	// tracker i is the component "hadoop.tracker<i>" (operation
	// "heartbeat"; a Crash kills it abruptly, shuffle server included),
	// its RPC client uses the hadooprpc injection points, and its shuffle
	// fetches the jetty ones.
	Injector *faults.Injector
	// Metrics receives the job's observability: RPC call counts/latency/
	// retries/bytes from every tracker's jobtracker client, shuffle fetch
	// latency/bytes/retries from the copy stage, per-task phase timers
	// (task.map.run/spill, task.reduce.copy/sort/reduce), scheduling
	// counters (hadoop.map_launches, hadoop.reexecutions, ...) and — when
	// an Injector is set — injected-fault counts. Left nil, Run creates a
	// fresh registry per job so the jobtracker Report is always populated.
	Metrics *metrics.Registry
	// Tracer is the jobtracker's span collector. Every job is traced: the
	// jobtracker opens a root job span plus a scheduler-side span per task
	// attempt (ended "ok", "failed" or "lost" — which is how attempts that
	// died with their tracker still appear in the trace), tasktrackers
	// record task/phase/fetch spans and ship them on heartbeat and
	// completion RPCs, and the aggregate lands in JobReport.Spans. Left
	// nil, a fresh collector (proc "jobtracker") is created per job.
	Tracer *trace.Tracer
	// AdminAddr, when non-empty, runs a live admin HTTP server on that
	// address for the duration of the job, serving /metrics (registry
	// snapshot), /trace.json (Chrome trace-event export of the spans
	// collected so far), /timeline (ASCII Gantt) and net/http/pprof under
	// /debug/pprof/. Use "127.0.0.1:0" for an ephemeral port.
	AdminAddr string
	// Watch, when set, is called once the jobtracker is serving, with a
	// control handle over the cluster's tracker liveness. External liveness
	// detectors (the job service's active prober, internal/serve) use it to
	// observe tracker addresses and feed dead verdicts into the same
	// re-execution path the heartbeat-timeout sweep uses — so recovery can
	// start on probe loss instead of waiting out TrackerTimeout. The handle
	// stays valid until RunWithReport returns; calls after that are safe
	// no-ops.
	Watch func(ClusterControl)
	// Events, when set, is the job's flight recorder: the jobtracker emits
	// attempt lifecycle events (scheduled/failed/lost/superseded) and fetch
	// redirects, tasktrackers emit spill and fetch-failure events, and the
	// RPC, jetty and fault layers fold their retry/deadline/fault events
	// into the same ring. Each event carries the trace span id of the work
	// it describes. A nil recorder records nothing.
	Events *obs.Recorder
}

// TrackerState is an external view of one tasktracker's liveness: its
// jobtracker-assigned id, the address of its jetty shuffle server (which
// doubles as the probe surface — it dies with the tracker, and it is
// exactly the component whose death strands map outputs), whether it has
// been declared lost, and when it last heartbeated.
type TrackerState struct {
	ID       int
	Addr     string
	Lost     bool
	LastSeen time.Time
}

// ClusterControl is the handle Config.Watch receives: enough to observe
// tracker liveness from outside and to feed externally-detected deaths
// into the engine's re-execution machinery.
type ClusterControl interface {
	// Trackers snapshots every registered tracker's state. Trackers
	// register asynchronously, so early calls may see fewer than
	// Config.NumTrackers entries.
	Trackers() []TrackerState
	// MarkLost declares a tracker dead, re-queueing its running tasks and
	// re-executing its completed maps elsewhere — the same path the
	// heartbeat-timeout sweep takes. It reports whether the verdict acted:
	// false when the id is unknown, the tracker is already lost, or the
	// job has already finished or failed, making it safe to call from a
	// flapping prober — duplicate verdicts are no-ops.
	MarkLost(id int) bool
}

func (c Config) withDefaults() Config {
	if c.NumTrackers <= 0 {
		c.NumTrackers = 2
	}
	if c.MapSlots <= 0 {
		c.MapSlots = 2
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = 2
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 2 * time.Millisecond
	}
	if c.SlowstartFraction <= 0 {
		c.SlowstartFraction = 0.05
	}
	if c.CopierThreads <= 0 {
		c.CopierThreads = 5
	}
	if c.MergeFactor <= 1 {
		c.MergeFactor = 10
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 4
	}
	if c.TrackerTimeout == 0 {
		c.TrackerTimeout = 150 * c.Heartbeat
		if c.TrackerTimeout < 500*time.Millisecond {
			c.TrackerTimeout = 500 * time.Millisecond
		}
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = trace.New("jobtracker")
	}
	return c
}

// rpcOptions is the client configuration handed to each tasktracker.
func (c Config) rpcOptions() hadooprpc.Options {
	o := c.RPC
	if o.Injector == nil {
		o.Injector = c.Injector
	}
	if o.Metrics == nil {
		o.Metrics = c.Metrics
	}
	if o.Events == nil {
		o.Events = c.Events
	}
	return o
}

// Protocol identity for the jobtracker RPC service.
const (
	jtProtocolName    = "org.ict.mpid.JobTrackerProtocol"
	jtProtocolVersion = int64(20)
)

// Heartbeat action types.
const (
	actLaunchMap    = 1
	actLaunchReduce = 2
	actAbort        = 3
	actJobDone      = 4
	// actMapsDrained (NodeCombine only) tells a tracker the map queue is
	// empty, so the maps it holds locally are the last it will get for now
	// and it may run its node-level combine over them. Purely a batching
	// hint: a later re-queue simply produces another, smaller group.
	actMapsDrained = 5
)

// Task kinds on the wire.
const (
	taskKindMap    = "m"
	taskKindReduce = "r"
)

// Run executes the job over the given splits on a fresh mini-cluster and
// returns the collected result. It is the Hadoop-path analogue of
// mapred.Run. The job succeeds as long as every reduce completes, even if
// individual tasktrackers crashed along the way.
func Run(job mapred.Job, splits []mapred.Split, cfg Config) (*mapred.Result, error) {
	res, _, err := RunWithReport(job, splits, cfg)
	return res, err
}

// RunWithReport executes the job like Run and additionally returns the
// jobtracker's per-job report: the live Figure-1-style per-reducer
// copy/sort/reduce breakdown, per-map run/spill times, and the job's
// metrics snapshot (RPC, shuffle, scheduling and fault counters). The
// report is returned even when the job fails, so a post-mortem can see how
// far it got; it is nil only when the job never started.
func RunWithReport(job mapred.Job, splits []mapred.Split, cfg Config) (*mapred.Result, *JobReport, error) {
	return RunWithReportContext(context.Background(), job, splits, cfg)
}

// RunWithReportContext is RunWithReport under a context: cancellation
// aborts the job — trackers stop heartbeating, reduce copy loops cut their
// fetch and backoff schedules short (the context threads down to the jetty
// client), and the error returned is the context's. The report still
// reflects whatever completed before the cancel, so a drained job leaves a
// usable post-mortem.
func RunWithReportContext(ctx context.Context, job mapred.Job, splits []mapred.Split, cfg Config) (*mapred.Result, *JobReport, error) {
	if job.Mapper == nil || job.Reducer == nil {
		return nil, nil, errors.New("hadoop: job needs Mapper and Reducer")
	}
	if job.NumReducers <= 0 {
		job.NumReducers = 1
	}
	cfg = cfg.withDefaults()
	// Injected faults count toward the same per-job registry, so a chaos
	// run's report shows re-executions next to the faults that caused them.
	cfg.Injector.SetMetrics(cfg.Metrics)
	cfg.Injector.SetEvents(cfg.Events)

	jt := newJobTracker(job, splits, cfg)
	// Fault firings get their own trace lane; closeTrace merges it.
	cfg.Injector.SetTracer(jt.faultTr)
	addr, err := jt.start()
	if err != nil {
		return nil, nil, err
	}
	defer jt.stop()
	if cfg.Watch != nil {
		cfg.Watch(jt)
	}
	if ctx.Done() != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				jt.abort(ctx.Err())
			case <-stopWatch:
			}
		}()
	}

	if cfg.AdminAddr != "" {
		adm, err := admin.New(cfg.AdminAddr, cfg.Metrics, jt.tr, admin.EventsPage(cfg.Events))
		if err != nil {
			return nil, nil, fmt.Errorf("hadoop: admin server: %w", err)
		}
		defer adm.Close()
	}

	var wg sync.WaitGroup
	trackerErrs := make([]error, cfg.NumTrackers)
	for i := 0; i < cfg.NumTrackers; i++ {
		tt, err := newTaskTracker(ctx, i, addr, job, splits, cfg)
		if err != nil {
			jt.abort(fmt.Errorf("hadoop: tracker %d: %w", i, err))
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trackerErrs[i] = tt.run()
			tt.close()
		}(i)
	}
	wg.Wait()

	jt.closeTrace()
	report := jt.Report()
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if jt.reducesDone == job.NumReducers {
		// Complete output trumps tracker obituaries: crashed trackers are
		// the fault model working, not a job failure.
		maxExec, reexec := 0, 0
		for _, n := range jt.executions {
			if n > maxExec {
				maxExec = n
			}
			if n > 1 {
				reexec += n - 1
			}
		}
		return &mapred.Result{
			ByReducer:         jt.outputs,
			MapTasks:          len(splits),
			FailedAttempts:    reexec,
			MaxTaskExecutions: maxExec,
		}, report, nil
	}
	if jt.failure != nil {
		return nil, report, jt.failure
	}
	for _, err := range trackerErrs {
		if err != nil {
			return nil, report, err
		}
	}
	return nil, report, fmt.Errorf("hadoop: job ended with %d/%d reduces done", jt.reducesDone, job.NumReducers)
}

// --------------------------------------------------------------------------
// JobTracker

type trackerInfo struct {
	id        int
	jettyAddr string
	lastSeen  time.Time
	lost      bool
	lastSeq   int64  // last heartbeat sequence number answered
	lastResp  []byte // its cached response, replayed on retried heartbeats
}

type jobTracker struct {
	job    mapred.Job
	splits []mapred.Split
	cfg    Config
	met    *metrics.Registry
	tr     *trace.Tracer
	ev     *obs.Recorder
	// faultTr is a dedicated lane for injected-fault instants; the shared
	// injector fires from every process, so attributing its spans to one
	// tracker would lie. closeTrace merges it into tr.
	faultTr *trace.Tracer

	srv     *hadooprpc.Server
	done    chan struct{}
	sweeper sync.WaitGroup

	mu           sync.Mutex
	jobSpan      *trace.Span
	attemptSpans map[string]*trace.Span // open scheduler-side attempt spans
	seenSpans    map[uint64]bool        // shipped span ids, for replay dedup
	trackers     []*trackerInfo
	pendingMaps  []int
	runningMaps  map[int]int // map task -> tracker currently executing it
	completed    map[int]bool
	mapsDone     int
	mapLocation  map[int]int // completed map -> tracker serving its output
	// NodeCombine bookkeeping: which group segment covers a completed map,
	// and each group's full original membership. Membership is never pruned
	// when a member is re-queued — map output is deterministic, so a group
	// fetch legitimately credits every original member (see Config.NodeCombine).
	mapGroup       map[int]int64 // completed map -> group id serving it
	groupMembers   map[int64][]int
	pendingReduces []int
	runningReduces map[int]int
	doneReduces    map[int]bool
	reducesDone    int
	outputs        [][]kv.Pair
	attempts       map[string]int // task key -> failure-charged attempts
	executions     map[string]int // task key -> times launched
	mapTimings     map[int]MapTiming
	reduceTimings  map[int]ReduceTiming
	failure        error
}

func taskKey(kind string, id int) string { return fmt.Sprintf("%s%d", kind, id) }

func newJobTracker(job mapred.Job, splits []mapred.Split, cfg Config) *jobTracker {
	jt := &jobTracker{
		job:            job,
		splits:         splits,
		cfg:            cfg,
		met:            cfg.Metrics,
		tr:             cfg.Tracer,
		ev:             cfg.Events,
		faultTr:        trace.New("faults"),
		attemptSpans:   make(map[string]*trace.Span),
		seenSpans:      make(map[uint64]bool),
		runningMaps:    make(map[int]int),
		completed:      make(map[int]bool),
		mapLocation:    make(map[int]int),
		mapGroup:       make(map[int]int64),
		groupMembers:   make(map[int64][]int),
		runningReduces: make(map[int]int),
		doneReduces:    make(map[int]bool),
		outputs:        make([][]kv.Pair, job.NumReducers),
		attempts:       make(map[string]int),
		executions:     make(map[string]int),
		mapTimings:     make(map[int]MapTiming),
		reduceTimings:  make(map[int]ReduceTiming),
	}
	for i := range splits {
		jt.pendingMaps = append(jt.pendingMaps, i)
	}
	for r := 0; r < job.NumReducers; r++ {
		jt.pendingReduces = append(jt.pendingReduces, r)
	}
	return jt
}

func (jt *jobTracker) start() (string, error) {
	jt.srv = hadooprpc.NewServer()
	jt.srv.Register(&hadooprpc.Protocol{
		Name:    jtProtocolName,
		Version: jtProtocolVersion,
		Methods: map[string]hadooprpc.Handler{
			"register":        jt.handleRegister,
			"heartbeat":       jt.handleHeartbeat,
			"mapCompleted":    jt.handleMapCompleted,
			"nodeCombined":    jt.handleNodeCombined,
			"reduceCompleted": jt.handleReduceCompleted,
			"taskFailed":      jt.handleTaskFailed,
			"fetchFailed":     jt.handleFetchFailed,
			"mapLocations":    jt.handleMapLocations,
		},
	})
	addr, err := jt.srv.Listen("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	jt.mu.Lock()
	jt.jobSpan = jt.tr.StartRoot("job", trace.KindJob)
	jt.jobSpan.Annotate("maps", fmt.Sprint(len(jt.splits)))
	jt.jobSpan.Annotate("reduces", fmt.Sprint(jt.job.NumReducers))
	jt.mu.Unlock()
	if jt.cfg.TrackerTimeout > 0 {
		jt.done = make(chan struct{})
		jt.sweeper.Add(1)
		go jt.sweepLoop()
	}
	return addr, nil
}

func (jt *jobTracker) stop() {
	if jt.done != nil {
		close(jt.done)
		jt.sweeper.Wait()
	}
	jt.srv.Close()
}

func (jt *jobTracker) abort(err error) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.abortLocked(err)
}

func (jt *jobTracker) abortLocked(err error) {
	if jt.failure == nil {
		jt.failure = err
	}
}

// sweepLoop is the liveness detector: trackers silent past TrackerTimeout
// are declared lost and their work re-queued.
func (jt *jobTracker) sweepLoop() {
	defer jt.sweeper.Done()
	interval := jt.cfg.TrackerTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-jt.done:
			return
		case now := <-ticker.C:
			jt.sweep(now)
		}
	}
}

func (jt *jobTracker) sweep(now time.Time) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if jt.failure != nil || jt.reducesDone == jt.job.NumReducers || len(jt.trackers) == 0 {
		return
	}
	alive := 0
	for _, tr := range jt.trackers {
		if tr.lost {
			continue
		}
		if now.Sub(tr.lastSeen) > jt.cfg.TrackerTimeout {
			jt.markLostLocked(tr)
		} else {
			alive++
		}
	}
	if alive == 0 {
		jt.abortLocked(errors.New("hadoop: all tasktrackers lost"))
	}
}

// Trackers implements ClusterControl: a snapshot of every registered
// tracker's liveness state.
func (jt *jobTracker) Trackers() []TrackerState {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	out := make([]TrackerState, 0, len(jt.trackers))
	for _, tr := range jt.trackers {
		out = append(out, TrackerState{
			ID:       tr.id,
			Addr:     tr.jettyAddr,
			Lost:     tr.lost,
			LastSeen: tr.lastSeen,
		})
	}
	return out
}

// MarkLost implements ClusterControl: an externally-detected tracker death
// takes the same path as the heartbeat-timeout sweep. Idempotent and inert
// once the job has finished or failed, so a flapping prober can never
// corrupt a completed job or double-requeue work.
func (jt *jobTracker) MarkLost(id int) bool {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if id < 0 || id >= len(jt.trackers) {
		return false
	}
	if jt.failure != nil || jt.reducesDone == jt.job.NumReducers {
		return false
	}
	tr := jt.trackers[id]
	if tr.lost {
		return false
	}
	jt.markLostLocked(tr)
	jt.met.Counter("hadoop.trackers_probe_lost").Inc()
	alive := 0
	for _, t := range jt.trackers {
		if !t.lost {
			alive++
		}
	}
	// The sweep's all-lost abort may be disabled (TrackerTimeout < 0), so
	// the externally-driven path must reach the same terminal state itself.
	if alive == 0 {
		jt.abortLocked(errors.New("hadoop: all tasktrackers lost"))
	}
	return true
}

// closeTrace finishes the job's trace: scheduler attempt spans still open
// when the cluster wound down are closed as "abandoned", the fault lane is
// merged in, and the root job span ends. Called once after all trackers
// have exited, before the report is taken.
func (jt *jobTracker) closeTrace() {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	for key, s := range jt.attemptSpans {
		s.Annotate("status", "abandoned")
		s.End()
		delete(jt.attemptSpans, key)
	}
	status := "ok"
	if jt.failure != nil {
		status = "failed"
	}
	jt.jobSpan.Annotate("status", status)
	jt.jobSpan.End()
	jt.tr.Add(jt.faultTr.Drain()...)
}

// startAttemptLocked opens the scheduler-side span for one task attempt.
// These spans live on the jobtracker, not the tracker running the task, so
// an attempt that dies with its tracker — which can never ship its own
// spans — still appears in the trace, ended "lost". The span id rides the
// launch action so the tracker's task span can parent under it.
func (jt *jobTracker) startAttemptLocked(kind string, task, trackerID int) *trace.Span {
	key := taskKey(kind, task)
	if old := jt.attemptSpans[key]; old != nil {
		old.Annotate("status", "superseded")
		old.End()
		octx := old.Context()
		jt.ev.Emit(obs.Event{Type: obs.EvAttemptSuperseded, Task: key,
			Span: octx.Span, Trace: octx.Trace})
	}
	s := jt.tr.StartChild(jt.jobSpan.Context(), key, trace.KindAttempt)
	s.Annotate("attempt", fmt.Sprint(jt.executions[key]))
	s.Annotate("tracker", fmt.Sprint(trackerID))
	jt.attemptSpans[key] = s
	sctx := s.Context()
	jt.ev.Emit(obs.Event{Type: obs.EvAttemptScheduled, Task: key,
		Attempt: jt.executions[key], Span: sctx.Span, Trace: sctx.Trace,
		Detail: fmt.Sprintf("tracker %d", trackerID)})
	return s
}

// endAttemptLocked closes the open attempt span for a task, if any, with a
// terminal status ("ok", "failed", "lost").
func (jt *jobTracker) endAttemptLocked(kind string, task int, status string) {
	key := taskKey(kind, task)
	if s := jt.attemptSpans[key]; s != nil {
		s.Annotate("status", status)
		s.End()
		delete(jt.attemptSpans, key)
		// Healthy completions are the common case and already visible in the
		// trace; the flight recorder keeps the anomalies.
		var typ string
		switch status {
		case "failed":
			typ = obs.EvAttemptFailed
		case "lost":
			typ = obs.EvAttemptLost
		}
		if typ != "" {
			sctx := s.Context()
			jt.ev.Emit(obs.Event{Type: typ, Task: key,
				Attempt: jt.executions[key], Span: sctx.Span, Trace: sctx.Trace})
		}
	}
}

// ingestSpansLocked merges a span batch a tasktracker shipped on an RPC.
// Batches can be redelivered (the RPC layer retries whole frames), so
// spans already seen are dropped by id.
func (jt *jobTracker) ingestSpansLocked(blob []byte) {
	if len(blob) == 0 {
		return
	}
	spans, err := trace.DecodeSpans(blob)
	if err != nil {
		jt.met.Counter("trace.corrupt_batches").Inc()
		return
	}
	for _, s := range spans {
		if jt.seenSpans[s.ID] {
			continue
		}
		jt.seenSpans[s.ID] = true
		jt.tr.Add(s)
	}
}

// markLostLocked declares a tracker dead: its running tasks go back to the
// queues, and its completed map outputs — which lived in its now-dead
// shuffle server — are marked incomplete so the maps re-execute elsewhere.
// These re-executions are the tracker's fault, not the tasks', so no
// attempt budget is charged.
func (jt *jobTracker) markLostLocked(tr *trackerInfo) {
	tr.lost = true
	jt.met.Counter("hadoop.trackers_lost").Inc()
	for task, owner := range jt.runningMaps {
		if owner == tr.id {
			delete(jt.runningMaps, task)
			jt.pendingMaps = append(jt.pendingMaps, task)
			jt.endAttemptLocked(taskKindMap, task, "lost")
		}
	}
	for task, done := range jt.completed {
		if done && jt.mapLocation[task] == tr.id {
			jt.completed[task] = false
			jt.mapsDone--
			delete(jt.mapLocation, task)
			delete(jt.mapGroup, task)
			jt.pendingMaps = append(jt.pendingMaps, task)
		}
	}
	for task, owner := range jt.runningReduces {
		if owner == tr.id {
			delete(jt.runningReduces, task)
			jt.pendingReduces = append(jt.pendingReduces, task)
			jt.endAttemptLocked(taskKindReduce, task, "lost")
		}
	}
}

// handleRegister: [jettyAddr] -> [trackerID, jobTraceContext]. The trailing
// trace context (framed bytes) parents every tracker-side span under the
// job's root span; clients of servers that don't send it trace standalone.
func (jt *jobTracker) handleRegister(params [][]byte) ([]byte, error) {
	if len(params) < 1 {
		return nil, errors.New("register wants 1 parameter")
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	id := len(jt.trackers)
	jt.trackers = append(jt.trackers, &trackerInfo{
		id:        id,
		jettyAddr: string(params[0]),
		lastSeen:  time.Now(),
	})
	resp := kv.AppendVLong(nil, int64(id))
	resp = kv.AppendBytes(resp, trace.EncodeContext(jt.jobSpan.Context()))
	return resp, nil
}

// handleHeartbeat: [trackerID, seq, freeMapSlots, freeReduceSlots, spans?]
// -> action list. At most one map and one reduce launch per heartbeat, the
// 0.20 behaviour; launch actions are [act, task, attempt, spanID] so the
// tracker can label and parent its task span. A repeated seq replays the
// cached response, so a transport-level retry of a lost response cannot
// double-assign tasks. The optional fifth parameter is an encoded span
// batch the tracker drained since its last report.
func (jt *jobTracker) handleHeartbeat(params [][]byte) ([]byte, error) {
	if len(params) < 4 {
		return nil, errors.New("heartbeat wants 4 parameters")
	}
	trackerID, _, err := kv.ReadVLong(params[0])
	if err != nil {
		return nil, err
	}
	seq, _, err := kv.ReadVLong(params[1])
	if err != nil {
		return nil, err
	}
	freeMap, _, err := kv.ReadVLong(params[2])
	if err != nil {
		return nil, err
	}
	freeReduce, _, err := kv.ReadVLong(params[3])
	if err != nil {
		return nil, err
	}

	jt.mu.Lock()
	defer jt.mu.Unlock()
	if trackerID < 0 || int(trackerID) >= len(jt.trackers) {
		return nil, fmt.Errorf("unknown tracker %d", trackerID)
	}
	tr := jt.trackers[trackerID]
	tr.lastSeen = time.Now()
	if seq == tr.lastSeq && tr.lastResp != nil {
		// Replayed heartbeat: its span batch was ingested on first delivery.
		return tr.lastResp, nil
	}
	if len(params) > 4 {
		jt.ingestSpansLocked(params[4])
	}

	var resp []byte
	switch {
	case jt.failure != nil:
		resp = kv.AppendVLong(resp, actAbort)
	case tr.lost:
		// Its tasks were re-queued on loss; completions from it are being
		// ignored. Working further is pointless.
		resp = kv.AppendVLong(resp, actAbort)
	case jt.reducesDone == jt.job.NumReducers:
		resp = kv.AppendVLong(resp, actJobDone)
	default:
		if freeMap > 0 && len(jt.pendingMaps) > 0 {
			task := jt.pendingMaps[0]
			jt.pendingMaps = jt.pendingMaps[1:]
			jt.runningMaps[task] = tr.id
			jt.executions[taskKey(taskKindMap, task)]++
			jt.met.Counter("hadoop.map_launches").Inc()
			if jt.executions[taskKey(taskKindMap, task)] > 1 {
				jt.met.Counter("hadoop.reexecutions").Inc()
			}
			span := jt.startAttemptLocked(taskKindMap, task, tr.id)
			resp = kv.AppendVLong(resp, actLaunchMap)
			resp = kv.AppendVLong(resp, int64(task))
			resp = kv.AppendVLong(resp, int64(jt.executions[taskKey(taskKindMap, task)]))
			resp = kv.AppendVLong(resp, int64(span.Context().Span))
		}
		slowstartMet := float64(jt.mapsDone) >= jt.cfg.SlowstartFraction*float64(len(jt.splits))
		if freeReduce > 0 && slowstartMet && len(jt.pendingReduces) > 0 {
			task := jt.pendingReduces[0]
			jt.pendingReduces = jt.pendingReduces[1:]
			jt.runningReduces[task] = tr.id
			jt.executions[taskKey(taskKindReduce, task)]++
			jt.met.Counter("hadoop.reduce_launches").Inc()
			if jt.executions[taskKey(taskKindReduce, task)] > 1 {
				jt.met.Counter("hadoop.reexecutions").Inc()
			}
			span := jt.startAttemptLocked(taskKindReduce, task, tr.id)
			resp = kv.AppendVLong(resp, actLaunchReduce)
			resp = kv.AppendVLong(resp, int64(task))
			resp = kv.AppendVLong(resp, int64(jt.executions[taskKey(taskKindReduce, task)]))
			resp = kv.AppendVLong(resp, int64(span.Context().Span))
		}
		if jt.cfg.NodeCombine && len(jt.pendingMaps) == 0 {
			resp = kv.AppendVLong(resp, actMapsDrained)
		}
	}
	if resp == nil {
		resp = []byte{} // cacheable empty response
	}
	tr.lastSeq, tr.lastResp = seq, resp
	return resp, nil
}

// handleMapCompleted: [trackerID, mapID, runNs, spillNs, spans?].
// Idempotent; completions from trackers already declared lost are ignored
// (their shuffle output is unreachable and the map was re-queued). The
// runNs/spillNs parameters carry the task's measured phase wall times for
// the job report (the latest accepted completion wins); the optional fifth
// is the tracker's drained span batch, which is ingested even from lost
// trackers — the work happened, the trace should show it.
func (jt *jobTracker) handleMapCompleted(params [][]byte) ([]byte, error) {
	if len(params) < 4 {
		return nil, errors.New("mapCompleted wants 4 parameters")
	}
	trackerID, _, err := kv.ReadVLong(params[0])
	if err != nil {
		return nil, err
	}
	mapID, _, err := kv.ReadVLong(params[1])
	if err != nil {
		return nil, err
	}
	runNs, _, err := kv.ReadVLong(params[2])
	if err != nil {
		return nil, err
	}
	spillNs, _, err := kv.ReadVLong(params[3])
	if err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if trackerID < 0 || int(trackerID) >= len(jt.trackers) {
		return nil, fmt.Errorf("unknown tracker %d", trackerID)
	}
	if len(params) > 4 {
		jt.ingestSpansLocked(params[4])
	}
	if jt.trackers[trackerID].lost {
		return nil, nil
	}
	jt.completeMapLocked(int(trackerID), int(mapID), runNs, spillNs)
	return nil, nil
}

// completeMapLocked records one map completion: the shared core of
// mapCompleted (per-task path) and nodeCombined (per-member). A plain
// completion clears any stale group membership so the map is advertised
// under its own id again.
func (jt *jobTracker) completeMapLocked(trackerID, task int, runNs, spillNs int64) {
	if owner, running := jt.runningMaps[task]; running && owner == trackerID {
		delete(jt.runningMaps, task)
	}
	jt.endAttemptLocked(taskKindMap, task, "ok")
	jt.mapLocation[task] = trackerID
	delete(jt.mapGroup, task)
	jt.mapTimings[task] = MapTiming{
		Task:    task,
		Tracker: trackerID,
		Run:     time.Duration(runNs),
		Spill:   time.Duration(spillNs),
	}
	if !jt.completed[task] {
		jt.completed[task] = true
		jt.mapsDone++
	}
}

// handleNodeCombined: [trackerID, groupID, members, spans?] — a tracker
// finished its node-level combine stage: every member map completes at
// once, served by the shared group segment. The members blob is a VLong
// count followed by (mapID, runNs, spillNs) per member. Idempotent like
// mapCompleted; completions from lost trackers are ignored.
func (jt *jobTracker) handleNodeCombined(params [][]byte) ([]byte, error) {
	if len(params) < 3 {
		return nil, errors.New("nodeCombined wants 3 parameters")
	}
	trackerID, _, err := kv.ReadVLong(params[0])
	if err != nil {
		return nil, err
	}
	groupID, _, err := kv.ReadVLong(params[1])
	if err != nil {
		return nil, err
	}
	blob := params[2]
	count, n, err := kv.ReadVLong(blob)
	if err != nil {
		return nil, err
	}
	blob = blob[n:]
	type member struct {
		task           int
		runNs, spillNs int64
	}
	members := make([]member, 0, int(count))
	for i := int64(0); i < count; i++ {
		var m member
		task64, n, err := kv.ReadVLong(blob)
		if err != nil {
			return nil, err
		}
		blob = blob[n:]
		m.task = int(task64)
		if m.runNs, n, err = kv.ReadVLong(blob); err != nil {
			return nil, err
		}
		blob = blob[n:]
		if m.spillNs, n, err = kv.ReadVLong(blob); err != nil {
			return nil, err
		}
		blob = blob[n:]
		members = append(members, m)
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if trackerID < 0 || int(trackerID) >= len(jt.trackers) {
		return nil, fmt.Errorf("unknown tracker %d", trackerID)
	}
	if len(params) > 3 {
		jt.ingestSpansLocked(params[3])
	}
	if jt.trackers[trackerID].lost {
		return nil, nil
	}
	ids := make([]int, 0, len(members))
	for _, m := range members {
		jt.completeMapLocked(int(trackerID), m.task, m.runNs, m.spillNs)
		jt.mapGroup[m.task] = groupID
		ids = append(ids, m.task)
	}
	sort.Ints(ids)
	jt.groupMembers[groupID] = ids
	jt.met.Counter("hadoop.node_combines").Inc()
	return nil, nil
}

// handleReduceCompleted: [trackerID, reduceID, framedPairs, copyNs,
// sortNs, reduceNs, mergeNs, spans?]. Idempotent — duplicate completions
// (retried RPCs, speculative re-executions after a tracker was wrongly
// presumed lost) are dropped. The Ns parameters carry the reduce task's
// measured copy/sort/reduce phase wall times plus the background merge
// CPU time overlapped with copy; the optional eighth is the tracker's
// drained span batch.
func (jt *jobTracker) handleReduceCompleted(params [][]byte) ([]byte, error) {
	if len(params) < 7 {
		return nil, errors.New("reduceCompleted wants 7 parameters")
	}
	trackerID, _, err := kv.ReadVLong(params[0])
	if err != nil {
		return nil, err
	}
	reduceID, _, err := kv.ReadVLong(params[1])
	if err != nil {
		return nil, err
	}
	pairs, err := decodePairs(params[2])
	if err != nil {
		return nil, err
	}
	copyNs, _, err := kv.ReadVLong(params[3])
	if err != nil {
		return nil, err
	}
	sortNs, _, err := kv.ReadVLong(params[4])
	if err != nil {
		return nil, err
	}
	reduceNs, _, err := kv.ReadVLong(params[5])
	if err != nil {
		return nil, err
	}
	mergeNs, _, err := kv.ReadVLong(params[6])
	if err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if trackerID < 0 || int(trackerID) >= len(jt.trackers) {
		return nil, fmt.Errorf("unknown tracker %d", trackerID)
	}
	if int(reduceID) < 0 || int(reduceID) >= len(jt.outputs) {
		return nil, fmt.Errorf("reduce id %d out of range", reduceID)
	}
	if len(params) > 7 {
		jt.ingestSpansLocked(params[7])
	}
	if jt.trackers[trackerID].lost || jt.doneReduces[int(reduceID)] {
		return nil, nil
	}
	task := int(reduceID)
	if owner, running := jt.runningReduces[task]; running && owner == int(trackerID) {
		delete(jt.runningReduces, task)
	}
	jt.endAttemptLocked(taskKindReduce, task, "ok")
	jt.outputs[task] = pairs
	jt.reduceTimings[task] = ReduceTiming{
		Task:    task,
		Tracker: int(trackerID),
		Copy:    time.Duration(copyNs),
		Sort:    time.Duration(sortNs),
		Reduce:  time.Duration(reduceNs),
		Merge:   time.Duration(mergeNs),
	}
	jt.doneReduces[task] = true
	jt.reducesDone++
	return nil, nil
}

// handleTaskFailed: [trackerID, kind, taskID, message, spans?]. The task
// is re-queued and charged one attempt; past MaxTaskAttempts the job
// aborts with the task's error.
func (jt *jobTracker) handleTaskFailed(params [][]byte) ([]byte, error) {
	if len(params) < 4 {
		return nil, errors.New("taskFailed wants 4 parameters")
	}
	trackerID, _, err := kv.ReadVLong(params[0])
	if err != nil {
		return nil, err
	}
	kind := string(params[1])
	taskID, _, err := kv.ReadVLong(params[2])
	if err != nil {
		return nil, err
	}
	msg := string(params[3])
	if kind != taskKindMap && kind != taskKindReduce {
		return nil, fmt.Errorf("unknown task kind %q", kind)
	}

	jt.mu.Lock()
	defer jt.mu.Unlock()
	if trackerID < 0 || int(trackerID) >= len(jt.trackers) {
		return nil, fmt.Errorf("unknown tracker %d", trackerID)
	}
	if len(params) > 4 {
		jt.ingestSpansLocked(params[4])
	}
	if jt.trackers[trackerID].lost {
		return nil, nil // already re-queued by markLostLocked
	}
	task := int(taskID)
	jt.endAttemptLocked(kind, task, "failed")
	key := taskKey(kind, task)
	jt.attempts[key]++
	jt.met.Counter("hadoop.task_failures").Inc()
	if jt.attempts[key] >= jt.cfg.MaxTaskAttempts {
		jt.abortLocked(fmt.Errorf("hadoop: task %s failed %d times, giving up: %s",
			key, jt.attempts[key], msg))
		return nil, nil
	}
	if kind == taskKindMap {
		if owner, running := jt.runningMaps[task]; running && owner == int(trackerID) {
			delete(jt.runningMaps, task)
			jt.pendingMaps = append(jt.pendingMaps, task)
		}
	} else {
		if owner, running := jt.runningReduces[task]; running && owner == int(trackerID) {
			delete(jt.runningReduces, task)
			jt.pendingReduces = append(jt.pendingReduces, task)
		}
	}
	return nil, nil
}

// handleFetchFailed: [reduceID, mapID, trackerID] — a reducer could not
// fetch a completed map's output from the tracker serving it. The map is
// marked incomplete and re-queued (charging one attempt), and the reducer
// is redirected to the re-execution through its mapLocations polling.
func (jt *jobTracker) handleFetchFailed(params [][]byte) ([]byte, error) {
	if len(params) != 3 {
		return nil, errors.New("fetchFailed wants 3 parameters")
	}
	if _, _, err := kv.ReadVLong(params[0]); err != nil { // reduceID, informational
		return nil, err
	}
	mapID, _, err := kv.ReadVLong(params[1])
	if err != nil {
		return nil, err
	}
	trackerID, _, err := kv.ReadVLong(params[2])
	if err != nil {
		return nil, err
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	task := int(mapID)
	// Only the first report for this (map, location) acts; later ones find
	// the map already un-completed or moved.
	if !jt.completed[task] || jt.mapLocation[task] != int(trackerID) {
		return nil, nil
	}
	key := taskKey(taskKindMap, task)
	jt.attempts[key]++
	jt.met.Counter("hadoop.fetch_failures").Inc()
	if jt.attempts[key] >= jt.cfg.MaxTaskAttempts {
		jt.abortLocked(fmt.Errorf("hadoop: map %d unfetchable after %d attempts", task, jt.attempts[key]))
		return nil, nil
	}
	jt.completed[task] = false
	jt.mapsDone--
	delete(jt.mapLocation, task)
	delete(jt.mapGroup, task)
	if _, running := jt.runningMaps[task]; !running {
		jt.pendingMaps = append(jt.pendingMaps, task)
	}
	jt.ev.Emit(obs.Event{Type: obs.EvFetchRedirect, Task: key,
		Detail: fmt.Sprintf("map output on tracker %d unfetchable; re-queued", trackerID)})
	return nil, nil
}

// handleMapLocations: [] -> [count, then per completed map: mapID,
// trackerID, jettyAddr, groupID; then groupCount, per group: groupID,
// memberCount, members...]. Reducers poll this until every map is present —
// the event stream a real reduce task's copier follows. The trackerID lets
// a reducer report fetch failures against the right server. A map combined
// into a node-level group carries that group's (negative) id; an
// uncombined map carries its own id. The trailing table lists each
// advertised group's full original membership, so a reducer fetching the
// group segment knows exactly which maps it credits.
func (jt *jobTracker) handleMapLocations(params [][]byte) ([]byte, error) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	done := make([]int, 0, len(jt.completed))
	for task, ok := range jt.completed {
		if ok {
			done = append(done, task)
		}
	}
	sort.Ints(done)
	resp := kv.AppendVLong(nil, int64(len(done)))
	var groups []int64
	seen := make(map[int64]bool)
	for _, task := range done {
		loc := jt.mapLocation[task]
		group, grouped := jt.mapGroup[task]
		if !grouped {
			group = int64(task)
		}
		resp = kv.AppendVLong(resp, int64(task))
		resp = kv.AppendVLong(resp, int64(loc))
		resp = kv.AppendBytes(resp, []byte(jt.trackers[loc].jettyAddr))
		resp = kv.AppendVLong(resp, group)
		if grouped && !seen[group] {
			seen[group] = true
			groups = append(groups, group)
		}
	}
	resp = kv.AppendVLong(resp, int64(len(groups)))
	for _, g := range groups {
		members := jt.groupMembers[g]
		resp = kv.AppendVLong(resp, g)
		resp = kv.AppendVLong(resp, int64(len(members)))
		for _, m := range members {
			resp = kv.AppendVLong(resp, int64(m))
		}
	}
	return resp, nil
}
