package hadoop

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/stats"
	"github.com/ict-repro/mpid/internal/trace"
)

// MapTiming is one map task's measured phase breakdown, reported by the
// tasktracker that ran it on mapCompleted. Run is the record-processing
// loop (Map calls included); Spill is combining, partitioning, serializing
// and publishing the output to the shuffle server.
type MapTiming struct {
	Task    int
	Tracker int
	Run     time.Duration
	Spill   time.Duration
}

// Total is the task's measured wall time across both phases.
func (m MapTiming) Total() time.Duration { return m.Run + m.Spill }

// ReduceTiming is one reduce task's copy/sort/reduce phase breakdown —
// the live analogue of the per-reducer bars in the paper's Figure 1.
// Copy spans from the first mapLocations poll until every map output is
// fetched and merged; Sort is the final merge pass (the key collection
// and ordering pass on the legacy path); Reduce is the user Reduce loop
// plus output serialization. Merge is the background merge-pass CPU time
// the pipelined shuffle overlapped with the copy phase — it runs inside
// Copy's wall time, so it is reported alongside the phases but not added
// to Total.
type ReduceTiming struct {
	Task    int
	Tracker int
	Copy    time.Duration
	Sort    time.Duration
	Reduce  time.Duration
	Merge   time.Duration
}

// Total is the task's measured wall time across the three phases. Merge
// time overlaps Copy and is deliberately excluded.
func (r ReduceTiming) Total() time.Duration { return r.Copy + r.Sort + r.Reduce }

// JobReport is the jobtracker's post-job observability bundle: the
// per-task phase timings shipped on the completion RPCs plus a snapshot
// of the job's metrics registry (RPC, shuffle, DFS, scheduling and
// injected-fault counters). RunWithReport returns one per job, even for
// failed jobs, so a post-mortem can see how far the job got.
type JobReport struct {
	Maps    []MapTiming    // sorted by task id; last accepted execution of each
	Reduces []ReduceTiming // sorted by task id
	Metrics metrics.Snapshot
	// Spans is the job's aggregated trace, sorted by start time: the root
	// job span, a scheduler-side span per task attempt (re-executions
	// included, with attempt numbers and terminal status annotations), and
	// the task/phase/fetch/serve spans shipped by the tasktrackers. Spans
	// of attempts that died with their tracker appear with status "lost".
	Spans []trace.Span
}

// ChromeTrace exports the job's spans as a chrome://tracing /
// ui.perfetto.dev trace-event JSON file.
func (r *JobReport) ChromeTrace() ([]byte, error) { return trace.ChromeTrace(r.Spans) }

// Timeline renders the job's spans as a fixed-width ASCII Gantt chart, the
// live analogue of the paper's Figure 1 (width <= 0 uses the default).
func (r *JobReport) Timeline(width int) string { return trace.RenderTimeline(r.Spans, width) }

// CopyShareOfReduce is the copy phase's share of total reducer time,
// Σcopy / Σ(copy+sort+reduce) × 100 — the quantity the paper's Figure 1
// makes visible per reducer. Zero when no reduce timings were recorded.
func (r *JobReport) CopyShareOfReduce() float64 {
	var copyT, total time.Duration
	for _, rt := range r.Reduces {
		copyT += rt.Copy
		total += rt.Total()
	}
	if total <= 0 {
		return 0
	}
	return 100 * float64(copyT) / float64(total)
}

// CopyShareOfTotal is the copy phase's share of all measured task time,
// Σcopy / (Σmap + Σreduce) × 100 — the live counterpart of the paper's
// Table I ("data movement takes up to 30% of the total execution time").
// Zero when nothing was recorded.
func (r *JobReport) CopyShareOfTotal() float64 {
	var copyT, total time.Duration
	for _, mt := range r.Maps {
		total += mt.Total()
	}
	for _, rt := range r.Reduces {
		copyT += rt.Copy
		total += rt.Total()
	}
	if total <= 0 {
		return 0
	}
	return 100 * float64(copyT) / float64(total)
}

// String renders the report: a per-map run/spill table, the
// Figure-1-style per-reducer copy/sort/reduce table with copy-share
// percentages, the two aggregate copy shares, and the metrics snapshot.
func (r *JobReport) String() string {
	var b strings.Builder
	if len(r.Maps) > 0 {
		t := stats.NewTable("map", "tracker", "run", "spill", "total")
		for _, m := range r.Maps {
			t.AddRow(
				fmt.Sprintf("m%d", m.Task),
				fmt.Sprintf("%d", m.Tracker),
				stats.FormatDuration(m.Run),
				stats.FormatDuration(m.Spill),
				stats.FormatDuration(m.Total()),
			)
		}
		b.WriteString("Map tasks\n")
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	if len(r.Reduces) > 0 {
		t := stats.NewTable("reduce", "tracker", "copy", "merge", "sort", "reduce", "total", "copy%")
		for _, rt := range r.Reduces {
			share := 0.0
			if rt.Total() > 0 {
				share = 100 * float64(rt.Copy) / float64(rt.Total())
			}
			t.AddRow(
				fmt.Sprintf("r%d", rt.Task),
				fmt.Sprintf("%d", rt.Tracker),
				stats.FormatDuration(rt.Copy),
				stats.FormatDuration(rt.Merge),
				stats.FormatDuration(rt.Sort),
				stats.FormatDuration(rt.Reduce),
				stats.FormatDuration(rt.Total()),
				fmt.Sprintf("%.1f", share),
			)
		}
		b.WriteString("Reduce tasks (Figure 1, live)\n")
		b.WriteString(t.String())
		fmt.Fprintf(&b, "copy share of reducer time: %.1f%%   copy share of all task time (Table I, live): %.1f%%\n\n",
			r.CopyShareOfReduce(), r.CopyShareOfTotal())
	}
	b.WriteString(r.Metrics.String())
	return b.String()
}

// Report snapshots the jobtracker's per-task timings and metrics. Safe to
// call at any time; mid-job it reflects the completions seen so far.
func (jt *jobTracker) Report() *JobReport {
	jt.mu.Lock()
	rep := &JobReport{
		Maps:    make([]MapTiming, 0, len(jt.mapTimings)),
		Reduces: make([]ReduceTiming, 0, len(jt.reduceTimings)),
	}
	for _, m := range jt.mapTimings {
		rep.Maps = append(rep.Maps, m)
	}
	for _, r := range jt.reduceTimings {
		rep.Reduces = append(rep.Reduces, r)
	}
	jt.mu.Unlock()
	sort.Slice(rep.Maps, func(i, j int) bool { return rep.Maps[i].Task < rep.Maps[j].Task })
	sort.Slice(rep.Reduces, func(i, j int) bool { return rep.Reduces[i].Task < rep.Reduces[j].Task })
	rep.Metrics = jt.met.Snapshot()
	rep.Spans = jt.tr.Spans()
	return rep
}
