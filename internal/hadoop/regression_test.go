package hadoop

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/jetty"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/trace"
)

// Regression tests for the reduce-copier scheduling fixes: the copy loop
// must pace its mapLocations polling at the heartbeat interval when a
// poll makes no progress, and a mapID advertised twice in one response
// must merge exactly once.

// TestReducePollingBoundedWhileMapsPending: two map splits, the second
// deliberately slow, one reducer launched by slowstart after the first
// map completes. For ~150 ms the reducer's polls return nothing new; the
// no-progress backoff must pace them at the heartbeat interval. The old
// hot loop issued mapLocations RPCs back to back and racked up thousands
// of calls in that window.
func TestReducePollingBoundedWhileMapsPending(t *testing.T) {
	slowMapper := mapred.MapperFunc(func(k, line []byte, emit mapred.Emit) error {
		if bytes.Contains(line, []byte("sloth")) {
			time.Sleep(150 * time.Millisecond)
		}
		return wcMapper.Map(k, line, emit)
	})
	splits := []mapred.Split{
		mapred.NewPairSplit(0, []kv.Pair{{Key: nil, Value: []byte("quick fox")}}),
		mapred.NewPairSplit(1, []kv.Pair{{Key: nil, Value: []byte("sloth nap")}}),
	}
	job := mapred.Job{
		Name:        "poll-regression",
		Mapper:      slowMapper,
		Reducer:     wcReducer,
		NumReducers: 1,
	}
	m := metrics.NewRegistry()
	res, err := Run(job, splits, Config{
		NumTrackers: 2, MapSlots: 1, ReduceSlots: 1,
		Heartbeat: 2 * time.Millisecond,
		Metrics:   m,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := decode(t, res.Pairs())
	for _, w := range []string{"quick", "fox", "sloth", "nap"} {
		if got[w] != 1 {
			t.Fatalf("count[%q] = %d, want 1", w, got[w])
		}
	}
	// Paced polling: ~150 ms of waiting at a 2 ms heartbeat is ~75 polls
	// plus scheduling noise. 400 leaves 5x headroom; the hot loop exceeds
	// it several times over.
	polls := m.Snapshot().Counter("rpc.calls.mapLocations")
	if polls == 0 {
		t.Fatal("no mapLocations polls recorded — metrics not wired")
	}
	if polls > 400 {
		t.Fatalf("mapLocations polled %d times while maps pending — copy loop is hot-polling", polls)
	}
}

// fakeJobTracker serves just enough of the jobtracker protocol for a
// taskTracker to register and for runReduceTask to poll: mapLocations
// always answers with the given advertisement list.
func fakeJobTracker(t *testing.T, locs []mapOutputLoc) (string, func()) {
	t.Helper()
	srv := hadooprpc.NewServer()
	srv.Register(&hadooprpc.Protocol{
		Name:    jtProtocolName,
		Version: jtProtocolVersion,
		Methods: map[string]hadooprpc.Handler{
			"register": func(params [][]byte) ([]byte, error) {
				return kv.AppendVLong(nil, 0), nil
			},
			"mapLocations": func(params [][]byte) ([]byte, error) {
				resp := kv.AppendVLong(nil, int64(len(locs)))
				for _, l := range locs {
					resp = kv.AppendVLong(resp, int64(l.mapID))
					resp = kv.AppendVLong(resp, int64(l.trackerID))
					resp = kv.AppendBytes(resp, []byte(l.addr))
					resp = kv.AppendVLong(resp, int64(l.mapID)) // own group: uncombined
				}
				resp = kv.AppendVLong(resp, 0) // no node-combined groups
				return resp, nil
			},
			"fetchFailed": func(params [][]byte) ([]byte, error) {
				t.Error("unexpected fetchFailed report")
				return nil, nil
			},
		},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, func() { srv.Close() }
}

// runReduceAgainst runs one reduce task against a fake jobtracker that
// advertises the given locations, returning the framed reduce output.
func runReduceAgainst(t *testing.T, locs []mapOutputLoc, numSplits int) []byte {
	t.Helper()
	jtAddr, stop := fakeJobTracker(t, locs)
	defer stop()
	splits := make([]mapred.Split, numSplits)
	for i := range splits {
		splits[i] = mapred.NewPairSplit(i, nil)
	}
	job := mapred.Job{Mapper: wcMapper, Reducer: wcReducer, NumReducers: 1}
	tt, err := newTaskTracker(context.Background(), 0, jtAddr, job, splits, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	defer tt.close()
	out, _, err := tt.runReduceTask(0, 0, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDuplicateMapAdvertisementMergesOnce: a re-executed map can appear
// twice in one mapLocations response (the old and the new completion,
// both listed). The copy loop must fetch and merge it exactly once; the
// old code queued both entries and merged the values twice, inflating
// counts. The reduce output must be byte-identical to the run where each
// map is advertised once.
func TestDuplicateMapAdvertisementMergesOnce(t *testing.T) {
	one := kv.AppendVLong(nil, 1)
	store := jetty.NewStore()
	store.Put(jetty.OutputKey{Job: jobName, Map: 0, Reduce: 0},
		kv.AppendKeyList(kv.AppendKeyList(nil,
			kv.KeyList{Key: []byte("alpha"), Values: [][]byte{one}}),
			kv.KeyList{Key: []byte("beta"), Values: [][]byte{one}}))
	store.Put(jetty.OutputKey{Job: jobName, Map: 1, Reduce: 0},
		kv.AppendKeyList(nil, kv.KeyList{Key: []byte("alpha"), Values: [][]byte{one}}))
	js := jetty.NewServer(store)
	jAddr, err := js.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()

	unique := []mapOutputLoc{
		{mapID: 0, trackerID: 0, addr: jAddr},
		{mapID: 1, trackerID: 0, addr: jAddr},
	}
	duplicated := []mapOutputLoc{
		{mapID: 0, trackerID: 0, addr: jAddr},
		{mapID: 0, trackerID: 0, addr: jAddr}, // same map advertised twice
		{mapID: 1, trackerID: 0, addr: jAddr},
	}
	want := runReduceAgainst(t, unique, 2)
	got := runReduceAgainst(t, duplicated, 2)
	if !bytes.Equal(got, want) {
		t.Fatalf("duplicate advertisement changed reduce output (%d vs %d bytes)", len(got), len(want))
	}
	counts := decode(t, mustDecodePairs(t, got))
	if counts["alpha"] != 2 || counts["beta"] != 1 {
		t.Fatalf("counts = %v, want alpha=2 beta=1", counts)
	}
}

func mustDecodePairs(t *testing.T, b []byte) []kv.Pair {
	t.Helper()
	pairs, err := decodePairs(b)
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

// TestChaosTrackerCrashReportCounters re-runs the tracker-crash chaos
// scenario through RunWithReport: the job report must surface the fault
// (injected-crash counter), the recovery (re-execution and tracker-loss
// counters) and a complete per-reducer phase breakdown.
func TestChaosTrackerCrashReportCounters(t *testing.T) {
	text := genText(t, 120_000, 11)
	splits := mapred.SplitText(text, 3_000)
	slowMapper := mapred.MapperFunc(func(k, v []byte, emit mapred.Emit) error {
		time.Sleep(3 * time.Millisecond)
		return wcMapper.Map(k, v, emit)
	})
	job := wcJob(3)
	job.Mapper = slowMapper

	inj := faults.New(1, faults.Rule{
		Component: "hadoop.tracker1",
		Operation: "heartbeat",
		After:     10,
		Action:    faults.Crash,
	})
	res, rep, err := RunWithReport(job, splits, Config{
		NumTrackers:    3,
		Injector:       inj,
		TrackerTimeout: 200 * time.Millisecond,
		RPC: hadooprpc.Options{
			MaxAttempts: 3,
			Backoff:     faults.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatalf("job with tracker crash: %v", err)
	}
	if res.MaxTaskExecutions < 2 {
		t.Fatalf("MaxTaskExecutions = %d, want >= 2", res.MaxTaskExecutions)
	}
	if rep == nil {
		t.Fatal("RunWithReport returned nil report")
	}
	if n := rep.Metrics.Counter("faults.injected.crash"); n == 0 {
		t.Error("faults.injected.crash = 0, want > 0 — injector not wired to the job registry")
	}
	if n := rep.Metrics.Counter("hadoop.trackers_lost"); n == 0 {
		t.Error("hadoop.trackers_lost = 0, want > 0")
	}
	if n := rep.Metrics.Counter("hadoop.reexecutions"); n == 0 {
		t.Error("hadoop.reexecutions = 0, want > 0 after tracker loss")
	}
	if len(rep.Reduces) != 3 {
		t.Fatalf("report has %d reduce timings, want 3", len(rep.Reduces))
	}
	for _, rt := range rep.Reduces {
		if rt.Total() <= 0 {
			t.Errorf("reduce %d: zero total phase time", rt.Task)
		}
	}
	if share := rep.CopyShareOfReduce(); share <= 0 || share > 100 {
		t.Errorf("CopyShareOfReduce = %.1f, want in (0, 100]", share)
	}
	if len(rep.Maps) != len(splits) {
		t.Errorf("report has %d map timings, want %d", len(rep.Maps), len(splits))
	}
}
