package hadoop

import (
	"testing"

	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/obs"
	"github.com/ict-repro/mpid/internal/workload"
)

// BenchmarkWordCountEvents measures the flight recorder's cost on a live
// WordCount: the same job with event emission off (nil recorder — every
// Emit is a nil-receiver early return) and on. Emission is control-plane
// only — per attempt, spill and failure, never per record — so the two
// sub-benchmarks must stay within the noise of each other (the PR's
// acceptance budget is <3% overhead).
func BenchmarkWordCountEvents(b *testing.B) {
	vocab := workload.NewVocabulary(300, 1)
	text := workload.NewTextGenerator(vocab, 1.1, 2).BytesOfText(256 << 10)
	splits := mapred.SplitText(text, 16_000)
	job := mapred.Job{
		Name:        "wc",
		Mapper:      wcMapper,
		Reducer:     wcReducer,
		Combiner:    mapred.CombinerFromReducer(wcReducer),
		NumReducers: 2,
	}
	run := func(b *testing.B, rec *obs.Recorder) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := Run(job, splits, Config{NumTrackers: 3, Events: rec}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewRecorder(0)) })
}
