package hadoop

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/jetty"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
)

// jobName labels map outputs in the shuffle store.
const jobName = "job_local_0001"

// taskTracker runs tasks for one simulated machine: an RPC client to the
// jobtracker, an embedded jetty server holding this tracker's map outputs,
// and slot-bounded worker pools.
type taskTracker struct {
	id     int
	job    mapred.Job
	splits []mapred.Split
	cfg    Config

	rpc       *hadooprpc.MuxClient
	store     *jetty.Store
	jettySrv  *jetty.Server
	jettyAddr string
	fetch     *jetty.Client

	mapSem    chan struct{}
	reduceSem chan struct{}
	tasks     sync.WaitGroup

	mu       sync.Mutex
	taskErr  error
	aborting bool
}

func newTaskTracker(jtAddr string, job mapred.Job, splits []mapred.Split, cfg Config) (*taskTracker, error) {
	tt := &taskTracker{
		job:       job,
		splits:    splits,
		cfg:       cfg,
		store:     jetty.NewStore(),
		fetch:     jetty.NewClient(),
		mapSem:    make(chan struct{}, cfg.MapSlots),
		reduceSem: make(chan struct{}, cfg.ReduceSlots),
	}
	tt.jettySrv = jetty.NewServer(tt.store)
	addr, err := tt.jettySrv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tt.jettyAddr = addr

	tt.rpc, err = hadooprpc.DialMux(jtAddr, jtProtocolName, jtProtocolVersion)
	if err != nil {
		tt.jettySrv.Close()
		return nil, err
	}
	idBytes, err := tt.rpc.Call("register", []byte(addr))
	if err != nil {
		tt.close()
		return nil, err
	}
	id, _, err := kv.ReadVLong(idBytes)
	if err != nil {
		tt.close()
		return nil, err
	}
	tt.id = int(id)
	return tt, nil
}

func (tt *taskTracker) close() {
	tt.rpc.Close()
	tt.jettySrv.Close()
	tt.fetch.Close()
}

func (tt *taskTracker) fail(err error) {
	tt.mu.Lock()
	if tt.taskErr == nil {
		tt.taskErr = err
	}
	tt.mu.Unlock()
	// Report once; the jobtracker aborts the job.
	_, _ = tt.rpc.Call("taskFailed", []byte(err.Error()))
}

// run is the heartbeat loop: report free slots, launch whatever comes back,
// exit on job completion or abort.
func (tt *taskTracker) run() error {
	for {
		resp, err := tt.rpc.Call("heartbeat",
			kv.AppendVLong(nil, int64(tt.id)),
			kv.AppendVLong(nil, int64(free(tt.mapSem))),
			kv.AppendVLong(nil, int64(free(tt.reduceSem))))
		if err != nil {
			tt.tasks.Wait()
			return fmt.Errorf("hadoop: heartbeat: %w", err)
		}
		stop, err := tt.dispatch(resp)
		if err != nil {
			tt.tasks.Wait()
			return err
		}
		if stop {
			tt.tasks.Wait()
			tt.mu.Lock()
			defer tt.mu.Unlock()
			return tt.taskErr
		}
		time.Sleep(tt.cfg.Heartbeat)
	}
}

// free reports a semaphore's free slots.
func free(sem chan struct{}) int { return cap(sem) - len(sem) }

// dispatch decodes a heartbeat response and launches tasks. It reports
// stop=true on job end or abort.
func (tt *taskTracker) dispatch(resp []byte) (bool, error) {
	for len(resp) > 0 {
		act, n, err := kv.ReadVLong(resp)
		if err != nil {
			return false, fmt.Errorf("hadoop: corrupt heartbeat response: %w", err)
		}
		resp = resp[n:]
		switch act {
		case actJobDone:
			return true, nil
		case actAbort:
			tt.mu.Lock()
			tt.aborting = true
			tt.mu.Unlock()
			return true, nil
		case actLaunchMap, actLaunchReduce:
			id64, n, err := kv.ReadVLong(resp)
			if err != nil {
				return false, fmt.Errorf("hadoop: corrupt task id: %w", err)
			}
			resp = resp[n:]
			if act == actLaunchMap {
				tt.launchMap(int(id64))
			} else {
				tt.launchReduce(int(id64))
			}
		default:
			return false, fmt.Errorf("hadoop: unknown action %d", act)
		}
	}
	return false, nil
}

func (tt *taskTracker) launchMap(task int) {
	tt.mapSem <- struct{}{}
	tt.tasks.Add(1)
	go func() {
		defer tt.tasks.Done()
		defer func() { <-tt.mapSem }()
		if err := tt.runMapTask(task); err != nil {
			tt.fail(fmt.Errorf("map task %d: %w", task, err))
			return
		}
		if _, err := tt.rpc.Call("mapCompleted",
			kv.AppendVLong(nil, int64(tt.id)),
			kv.AppendVLong(nil, int64(task))); err != nil {
			tt.fail(err)
		}
	}()
}

func (tt *taskTracker) launchReduce(task int) {
	tt.reduceSem <- struct{}{}
	tt.tasks.Add(1)
	go func() {
		defer tt.tasks.Done()
		defer func() { <-tt.reduceSem }()
		out, err := tt.runReduceTask(task)
		if err != nil {
			tt.fail(fmt.Errorf("reduce task %d: %w", task, err))
			return
		}
		if _, err := tt.rpc.Call("reduceCompleted",
			kv.AppendVLong(nil, int64(task)), out); err != nil {
			tt.fail(err)
		}
	}()
}

// runMapTask maps one split, partitions the output, optionally combines,
// and publishes per-reduce partitions into the local shuffle store.
func (tt *taskTracker) runMapTask(task int) error {
	nParts := tt.job.NumReducers
	partitioner := tt.job.Partitioner
	if partitioner == nil {
		partitioner = core.HashPartitioner
	}
	// Collect pairs grouped per partition, keyed for the combiner.
	groups := make([]map[string][][]byte, nParts)
	order := make([][]string, nParts)
	for i := range groups {
		groups[i] = make(map[string][][]byte)
	}
	emit := func(key, value []byte) error {
		p := partitioner(key, nParts)
		if p < 0 || p >= nParts {
			return fmt.Errorf("partitioner returned %d for %d partitions", p, nParts)
		}
		k := string(key)
		if _, seen := groups[p][k]; !seen {
			order[p] = append(order[p], k)
		}
		groups[p][k] = append(groups[p][k], append([]byte(nil), value...))
		return nil
	}
	if err := tt.splits[task].Records(func(k, v []byte) error {
		return tt.job.Mapper.Map(k, v, emit)
	}); err != nil {
		return err
	}
	// Spill: combine and serialize each partition, publish to the store.
	for p := 0; p < nParts; p++ {
		var buf []byte
		for _, k := range order[p] {
			values := groups[p][k]
			if tt.job.Combiner != nil {
				values = tt.job.Combiner([]byte(k), values)
			}
			buf = kv.AppendKeyList(buf, kv.KeyList{Key: []byte(k), Values: values})
		}
		tt.store.Put(jetty.OutputKey{Job: jobName, Map: task, Reduce: p}, buf)
	}
	return nil
}

// runReduceTask is the copy/sort/reduce lifecycle: poll the jobtracker for
// completed map locations, fetch partitions over HTTP with a pool of
// parallel copiers (mapred.reduce.parallel.copies), merge by key, sort, and
// run the user reduce function.
func (tt *taskTracker) runReduceTask(task int) ([]byte, error) {
	fetched := make(map[int]bool, len(tt.splits))
	merged := make(map[string][][]byte)
	var mergedMu sync.Mutex
	copierSem := make(chan struct{}, tt.cfg.CopierThreads)

	for len(fetched) < len(tt.splits) {
		if tt.isAborting() {
			return nil, fmt.Errorf("job aborted during copy")
		}
		locs, err := tt.rpc.Call("mapLocations")
		if err != nil {
			return nil, err
		}
		count, n, err := kv.ReadVLong(locs)
		if err != nil {
			return nil, err
		}
		locs = locs[n:]
		type fetchJob struct {
			mapID int
			addr  string
		}
		var jobs []fetchJob
		for i := int64(0); i < count; i++ {
			mapID64, n, err := kv.ReadVLong(locs)
			if err != nil {
				return nil, err
			}
			locs = locs[n:]
			addr, n, err := kv.ReadBytes(locs)
			if err != nil {
				return nil, err
			}
			locs = locs[n:]
			if mapID := int(mapID64); !fetched[mapID] {
				jobs = append(jobs, fetchJob{mapID: mapID, addr: string(addr)})
			}
		}
		// Fetch the new outputs with bounded parallelism.
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			fetchErr error
		)
		for _, j := range jobs {
			j := j
			copierSem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-copierSem }()
				data, err := tt.fetch.FetchMapOutput(j.addr,
					jetty.OutputKey{Job: jobName, Map: j.mapID, Reduce: task})
				if err != nil {
					errMu.Lock()
					if fetchErr == nil {
						fetchErr = fmt.Errorf("fetch map %d: %w", j.mapID, err)
					}
					errMu.Unlock()
					return
				}
				for len(data) > 0 {
					klist, n, err := kv.ReadKeyList(data)
					if err != nil {
						errMu.Lock()
						if fetchErr == nil {
							fetchErr = fmt.Errorf("corrupt map %d output: %w", j.mapID, err)
						}
						errMu.Unlock()
						return
					}
					data = data[n:]
					k := string(klist.Key)
					mergedMu.Lock()
					merged[k] = append(merged[k], klist.Values...)
					mergedMu.Unlock()
				}
			}()
		}
		wg.Wait()
		if fetchErr != nil {
			return nil, fetchErr
		}
		for _, j := range jobs {
			fetched[j.mapID] = true
		}
		if len(fetched) < len(tt.splits) && len(jobs) == 0 {
			time.Sleep(tt.cfg.Heartbeat)
		}
	}

	// Sort keys (the merge-sort phase) and reduce.
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	emit := func(key, value []byte) error {
		out = kv.AppendPair(out, kv.Pair{Key: key, Value: value})
		return nil
	}
	for _, k := range keys {
		if err := tt.job.Reducer.Reduce([]byte(k), merged[k], emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (tt *taskTracker) isAborting() bool {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.aborting
}

// decodePairs parses framed pairs (reduce output).
func decodePairs(b []byte) ([]kv.Pair, error) {
	var pairs []kv.Pair
	for len(b) > 0 {
		p, n, err := kv.ReadPair(b)
		if err != nil {
			return nil, fmt.Errorf("hadoop: corrupt reduce output: %w", err)
		}
		pairs = append(pairs, p.Clone())
		b = b[n:]
	}
	return pairs, nil
}
