package hadoop

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/jetty"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/obs"
	"github.com/ict-repro/mpid/internal/shuffle"
	"github.com/ict-repro/mpid/internal/trace"
)

// jobName labels map outputs in the shuffle store.
const jobName = "job_local_0001"

// taskTracker runs tasks for one simulated machine: an RPC client to the
// jobtracker, an embedded jetty server holding this tracker's map outputs,
// and slot-bounded worker pools.
//
// A task that fails is reported per-task (taskFailed) and the tracker keeps
// serving; the jobtracker decides between re-queueing and aborting. The
// tracker itself dies in two ways: orderly — a heartbeat-level error drains
// running tasks and reports partial progress in its error — or abruptly,
// when an injected Crash kills it mid-heartbeat, taking its shuffle server
// (and every map output it held) down with it.
type taskTracker struct {
	idx    int             // slot index in the cluster, names the fault component
	id     int             // jobtracker-assigned id
	ctx    context.Context // job lifetime; cancellation stops fetches and heartbeats
	comp   string
	job    mapred.Job
	splits []mapred.Split
	cfg    Config
	inj    *faults.Injector
	met    *metrics.Registry
	tr     *trace.Tracer
	ev     *obs.Recorder
	jobCtx trace.Context // the job root span, from the register response

	rpc       *hadooprpc.MuxClient
	store     *jetty.Store
	jettySrv  *jetty.Server
	jettyAddr string
	fetch     *jetty.Client
	pool      *shuffle.BufferPool // fetch + merge buffers, shared across this tracker's reduces

	// combine is the job combiner every combine stage on this tracker uses
	// (map spill, reduce-side merge passes, node-level combine). When the
	// job provides an ObservedCombiner factory it is bound to the job's
	// metrics registry here, so combiner fallbacks anywhere on the tracker
	// surface as mapred.combiner.fallback.
	combine core.CombineFunc

	mapSem    chan struct{}
	reduceSem chan struct{}
	tasks     sync.WaitGroup

	// NodeCombine state: spills of locally-completed maps awaiting the
	// node-level combine stage, the drain hint from the jobtracker, and a
	// single-flight latch for the flush goroutine. All under nodeMu.
	nodeMu      sync.Mutex
	nodePending []nodeSpill
	nodeSeq     int
	nodeDrained bool
	nodeFlush   bool

	mu         sync.Mutex
	taskErr    error
	aborting   bool
	mapsRun    int // completed map tasks, for partial-progress reporting
	reducesRun int // completed reduce tasks
	mapsFailed int
	redsFailed int
}

func newTaskTracker(ctx context.Context, idx int, jtAddr string, job mapred.Job, splits []mapred.Split, cfg Config) (*taskTracker, error) {
	tt := &taskTracker{
		idx:       idx,
		ctx:       ctx,
		comp:      fmt.Sprintf("hadoop.tracker%d", idx),
		job:       job,
		splits:    splits,
		cfg:       cfg,
		inj:       cfg.Injector,
		met:       cfg.Metrics,
		tr:        trace.New(fmt.Sprintf("tracker%d", idx)),
		ev:        cfg.Events,
		store:     jetty.NewStore(),
		fetch:     jetty.NewClient(),
		pool:      shuffle.NewBufferPool(),
		mapSem:    make(chan struct{}, cfg.MapSlots),
		reduceSem: make(chan struct{}, cfg.ReduceSlots),
	}
	tt.combine = job.Combiner
	if job.ObservedCombiner != nil {
		tt.combine = job.ObservedCombiner(cfg.Metrics)
	}
	// The shuffle fetch client shares the RPC retry budget, the fault
	// injector, the job's metrics registry and — on the pipelined path —
	// the tracker's buffer pool, so fetch buffers recycle through the
	// merger and back into the next fetch.
	tt.fetch.MaxAttempts = cfg.RPC.MaxAttempts
	tt.fetch.Backoff = cfg.RPC.Backoff
	tt.fetch.Injector = cfg.Injector
	tt.fetch.Metrics = cfg.Metrics
	tt.fetch.Events = cfg.Events
	tt.fetch.Compress = cfg.CompressShuffle
	if !cfg.LegacyShuffle {
		tt.fetch.Pool = tt.pool
	}
	tt.fetch.SetSeed(int64(idx) + 1)

	tt.jettySrv = jetty.NewServer(tt.store)
	tt.jettySrv.Injector = cfg.Injector
	tt.jettySrv.Component = tt.comp + ".jetty"
	tt.jettySrv.Metrics = cfg.Metrics
	tt.jettySrv.Tracer = tt.tr
	tt.jettySrv.Compress = cfg.CompressShuffle
	addr, err := tt.jettySrv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tt.jettyAddr = addr

	tt.rpc, err = hadooprpc.DialMuxOptions(jtAddr, jtProtocolName, jtProtocolVersion, cfg.rpcOptions())
	if err != nil {
		tt.jettySrv.Close()
		return nil, err
	}
	idBytes, err := tt.rpc.Call("register", []byte(addr))
	if err != nil {
		tt.close()
		return nil, err
	}
	id, n, err := kv.ReadVLong(idBytes)
	if err != nil {
		tt.close()
		return nil, err
	}
	tt.id = int(id)
	// The response may carry the job's trace context after the id; a
	// jobtracker without tracing simply doesn't send it, and this tracker's
	// spans then start their own traces.
	if rest := idBytes[n:]; len(rest) > 0 {
		if b, _, err := kv.ReadBytes(rest); err == nil {
			if ctx, err := trace.DecodeContext(b); err == nil {
				tt.jobCtx = ctx
			}
		}
	}
	return tt, nil
}

func (tt *taskTracker) close() {
	tt.rpc.Close()
	tt.jettySrv.Close()
	tt.fetch.Close()
}

// noteErr records a tracker-level problem (not a task failure).
func (tt *taskTracker) noteErr(err error) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if tt.taskErr == nil {
		tt.taskErr = err
	}
}

// reportTaskFailed tells the jobtracker one task attempt failed. The
// tracker itself stays up; re-queue vs abort is the jobtracker's call.
func (tt *taskTracker) reportTaskFailed(kind string, task int, taskErr error) {
	tt.mu.Lock()
	if kind == taskKindMap {
		tt.mapsFailed++
	} else {
		tt.redsFailed++
	}
	tt.mu.Unlock()
	params := [][]byte{
		kv.AppendVLong(nil, int64(tt.id)),
		[]byte(kind),
		kv.AppendVLong(nil, int64(task)),
		[]byte(taskErr.Error()),
	}
	if blob := trace.EncodeSpans(tt.tr.Drain()); blob != nil {
		params = append(params, blob)
	}
	if _, err := tt.rpc.Call("taskFailed", params...); err != nil {
		tt.noteErr(fmt.Errorf("hadoop: reporting %s task %d failure: %w", kind, task, err))
	}
}

// progress summarizes completed work for partial-progress error reports.
func (tt *taskTracker) progress() string {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return fmt.Sprintf("%d maps and %d reduces completed, %d/%d attempts failed",
		tt.mapsRun, tt.reducesRun, tt.mapsFailed, tt.redsFailed)
}

// run is the heartbeat loop: report free slots, launch whatever comes back,
// exit on job completion or abort. Heartbeats carry a sequence number so
// the jobtracker can replay a response whose first delivery was lost to a
// transport failure.
func (tt *taskTracker) run() error {
	for seq := int64(1); ; seq++ {
		if err := tt.ctx.Err(); err != nil {
			// Job canceled or drained: flip to aborting so running copy
			// loops stop, drain tasks, and report the context's error.
			tt.mu.Lock()
			tt.aborting = true
			tt.mu.Unlock()
			tt.tasks.Wait()
			return fmt.Errorf("hadoop: tracker %d canceled: %w", tt.idx, err)
		}
		if err := tt.inj.Check(tt.comp, "heartbeat", ""); err != nil {
			if faults.IsCrash(err) {
				// Abrupt death: no goodbyes, no draining. The shuffle
				// server dies too — completed map outputs become
				// unreachable, exactly what a machine crash does.
				tt.rpc.Close()
				tt.jettySrv.Close()
				return fmt.Errorf("hadoop: tracker %d crashed: %w", tt.idx, err)
			}
			time.Sleep(tt.cfg.Heartbeat) // transient: skip this beat
			continue
		}
		params := [][]byte{
			kv.AppendVLong(nil, int64(tt.id)),
			kv.AppendVLong(nil, seq),
			kv.AppendVLong(nil, int64(free(tt.mapSem))),
			kv.AppendVLong(nil, int64(free(tt.reduceSem))),
		}
		// Ship spans drained since the last report; serve-side shuffle
		// spans have no completion RPC of their own and ride here.
		if blob := trace.EncodeSpans(tt.tr.Drain()); blob != nil {
			params = append(params, blob)
		}
		resp, err := tt.rpc.Call("heartbeat", params...)
		if err != nil {
			// Orderly shutdown: drain running tasks, then report with
			// partial progress.
			tt.tasks.Wait()
			return fmt.Errorf("hadoop: tracker %d heartbeat: %w (%s)", tt.idx, err, tt.progress())
		}
		stop, err := tt.dispatch(resp)
		if err != nil {
			tt.tasks.Wait()
			return fmt.Errorf("%w (%s)", err, tt.progress())
		}
		if stop {
			tt.tasks.Wait()
			tt.mu.Lock()
			defer tt.mu.Unlock()
			return tt.taskErr
		}
		tt.maybeNodeFlush()
		time.Sleep(tt.cfg.Heartbeat)
	}
}

// free reports a semaphore's free slots.
func free(sem chan struct{}) int { return cap(sem) - len(sem) }

// dispatch decodes a heartbeat response and launches tasks. It reports
// stop=true on job end or abort.
func (tt *taskTracker) dispatch(resp []byte) (bool, error) {
	for len(resp) > 0 {
		act, n, err := kv.ReadVLong(resp)
		if err != nil {
			return false, fmt.Errorf("hadoop: corrupt heartbeat response: %w", err)
		}
		resp = resp[n:]
		switch act {
		case actJobDone:
			return true, nil
		case actAbort:
			tt.mu.Lock()
			tt.aborting = true
			tt.mu.Unlock()
			return true, nil
		case actLaunchMap, actLaunchReduce:
			id64, n, err := kv.ReadVLong(resp)
			if err != nil {
				return false, fmt.Errorf("hadoop: corrupt task id: %w", err)
			}
			resp = resp[n:]
			att64, n, err := kv.ReadVLong(resp)
			if err != nil {
				return false, fmt.Errorf("hadoop: corrupt attempt number: %w", err)
			}
			resp = resp[n:]
			span64, n, err := kv.ReadVLong(resp)
			if err != nil {
				return false, fmt.Errorf("hadoop: corrupt attempt span id: %w", err)
			}
			resp = resp[n:]
			// Parent the task span under the scheduler's attempt span.
			pctx := trace.Context{Trace: tt.jobCtx.Trace, Span: uint64(span64)}
			if act == actLaunchMap {
				// A fresh launch reopens the local batch: its spill belongs
				// in the next node-level combine group.
				tt.nodeMu.Lock()
				tt.nodeDrained = false
				tt.nodeMu.Unlock()
				tt.launchMap(int(id64), int(att64), pctx)
			} else {
				tt.launchReduce(int(id64), int(att64), pctx)
			}
		case actMapsDrained:
			tt.nodeMu.Lock()
			tt.nodeDrained = true
			tt.nodeMu.Unlock()
		default:
			return false, fmt.Errorf("hadoop: unknown action %d", act)
		}
	}
	return false, nil
}

func (tt *taskTracker) launchMap(task, attempt int, pctx trace.Context) {
	tt.mapSem <- struct{}{}
	tt.tasks.Add(1)
	go func() {
		defer tt.tasks.Done()
		defer func() { <-tt.mapSem }()
		ph, parts, err := tt.runMapTask(task, attempt, pctx)
		if err != nil {
			tt.reportTaskFailed(taskKindMap, task, fmt.Errorf("map task %d: %w", task, err))
			return
		}
		if tt.cfg.NodeCombine {
			// Defer the completion report: the map joins this tracker's
			// pending batch and completes via the node-level combine stage.
			tt.nodeMu.Lock()
			tt.nodePending = append(tt.nodePending, nodeSpill{task: task, ph: ph, parts: parts})
			tt.nodeMu.Unlock()
			tt.mu.Lock()
			tt.mapsRun++
			tt.mu.Unlock()
			return
		}
		// The task's spans are finished before the completion RPC, so the
		// shipped batch always covers the attempt that just completed.
		params := [][]byte{
			kv.AppendVLong(nil, int64(tt.id)),
			kv.AppendVLong(nil, int64(task)),
			kv.AppendVLong(nil, int64(ph.run)),
			kv.AppendVLong(nil, int64(ph.spill)),
		}
		if blob := trace.EncodeSpans(tt.tr.Drain()); blob != nil {
			params = append(params, blob)
		}
		if _, err := tt.rpc.Call("mapCompleted", params...); err != nil {
			tt.noteErr(err)
			return
		}
		tt.mu.Lock()
		tt.mapsRun++
		tt.mu.Unlock()
	}()
}

func (tt *taskTracker) launchReduce(task, attempt int, pctx trace.Context) {
	tt.reduceSem <- struct{}{}
	tt.tasks.Add(1)
	go func() {
		defer tt.tasks.Done()
		defer func() { <-tt.reduceSem }()
		out, ph, err := tt.runReduceTask(task, attempt, pctx)
		if err != nil {
			tt.reportTaskFailed(taskKindReduce, task, fmt.Errorf("reduce task %d: %w", task, err))
			return
		}
		params := [][]byte{
			kv.AppendVLong(nil, int64(tt.id)),
			kv.AppendVLong(nil, int64(task)), out,
			kv.AppendVLong(nil, int64(ph.copy)),
			kv.AppendVLong(nil, int64(ph.sort)),
			kv.AppendVLong(nil, int64(ph.reduce)),
			kv.AppendVLong(nil, int64(ph.merge)),
		}
		if blob := trace.EncodeSpans(tt.tr.Drain()); blob != nil {
			params = append(params, blob)
		}
		if _, err := tt.rpc.Call("reduceCompleted", params...); err != nil {
			tt.noteErr(err)
			return
		}
		tt.mu.Lock()
		tt.reducesRun++
		tt.mu.Unlock()
	}()
}

// maybeNodeFlush starts the node-level combine stage when it is due: the
// jobtracker signalled the map queue drained, no map is still running in a
// slot (its spill belongs in this group), a batch is pending, and no flush
// is already in flight. Called once per heartbeat; the stage itself runs
// in a goroutine so merging never stalls the heartbeat loop.
func (tt *taskTracker) maybeNodeFlush() {
	if !tt.cfg.NodeCombine {
		return
	}
	tt.nodeMu.Lock()
	defer tt.nodeMu.Unlock()
	if tt.nodeFlush || !tt.nodeDrained || len(tt.nodePending) == 0 {
		return
	}
	if free(tt.mapSem) != cap(tt.mapSem) {
		return
	}
	batch := tt.nodePending
	tt.nodePending = nil
	tt.nodeSeq++
	// Group ids are negative so they can never collide with a map id, and
	// carry the tracker id so concurrent trackers never collide either.
	gid := -(int64(tt.id)*1_000_000 + int64(tt.nodeSeq))
	tt.nodeFlush = true
	tt.tasks.Add(1)
	go func() {
		defer tt.tasks.Done()
		tt.flushNodeGroup(batch, gid)
		tt.nodeMu.Lock()
		tt.nodeFlush = false
		tt.nodeMu.Unlock()
	}()
}

// flushNodeGroup is the node-level combine stage: for each partition it
// k-way merges the batch members' sorted spill runs through the job's
// combiner (the in-node combining the per-task path cannot do), publishes
// the combined segment under the group id, and reports every member
// complete in one nodeCombined RPC. Per-map segments stay published as the
// reducers' fallback. A merge failure fails every member so the jobtracker
// can re-queue them.
func (tt *taskTracker) flushNodeGroup(batch []nodeSpill, gid int64) {
	span := tt.tr.StartChild(tt.jobCtx, fmt.Sprintf("nodecombine g%d", -gid), trace.KindMerge)
	defer span.End()
	span.Annotate("maps", fmt.Sprint(len(batch)))
	start := time.Now()
	var comb shuffle.Combiner
	if tt.combine != nil {
		comb = shuffle.Combiner(tt.combine)
	}
	nParts := tt.job.NumReducers
	var inBytes, outBytes int
	for p := 0; p < nParts; p++ {
		runs := make([]shuffle.Run, 0, len(batch))
		for _, sp := range batch {
			if len(sp.parts[p]) > 0 {
				runs = append(runs, shuffle.Run{Data: sp.parts[p], Seq: sp.task})
				inBytes += len(sp.parts[p])
			}
		}
		var buf []byte
		err := shuffle.MergeRuns(runs, comb, func(kl kv.KeyList) error {
			buf = kv.AppendKeyList(buf, kl)
			return nil
		})
		if err != nil {
			span.Annotate("error", err.Error())
			for _, sp := range batch {
				tt.reportTaskFailed(taskKindMap, sp.task, fmt.Errorf("node combine of map %d: %w", sp.task, err))
			}
			return
		}
		outBytes += len(buf)
		tt.store.Put(jetty.OutputKey{Job: jobName, Map: int(gid), Reduce: p}, buf)
	}
	tt.met.Timer("task.map.nodecombine").ObserveDuration(time.Since(start))
	tt.met.Counter("hadoop.node_combine_maps").Add(int64(len(batch)))
	sctx := span.Context()
	tt.ev.Emit(obs.Event{Type: obs.EvSpill, Task: fmt.Sprintf("g%d", -gid),
		Span: sctx.Span, Trace: sctx.Trace,
		Detail: fmt.Sprintf("tracker %d node combine: %d maps, %d -> %d bytes",
			tt.idx, len(batch), inBytes, outBytes)})

	blob := kv.AppendVLong(nil, int64(len(batch)))
	for _, sp := range batch {
		blob = kv.AppendVLong(blob, int64(sp.task))
		blob = kv.AppendVLong(blob, int64(sp.ph.run))
		blob = kv.AppendVLong(blob, int64(sp.ph.spill))
	}
	span.End()
	params := [][]byte{
		kv.AppendVLong(nil, int64(tt.id)),
		kv.AppendVLong(nil, gid),
		blob,
	}
	if sb := trace.EncodeSpans(tt.tr.Drain()); sb != nil {
		params = append(params, sb)
	}
	if _, err := tt.rpc.Call("nodeCombined", params...); err != nil {
		tt.noteErr(fmt.Errorf("hadoop: reporting node combine g%d: %w", -gid, err))
	}
}

// mapPhases is the wall-time breakdown of one map task: run is the record
// iteration through the user map function, spill is the combine/serialize/
// publish stage.
type mapPhases struct {
	run   time.Duration
	spill time.Duration
}

// nodeSpill is one locally-completed map awaiting the node-level combine
// stage: its phase times for the deferred completion report and its
// published per-partition sorted runs (aliasing the shuffle store's
// segments, read-only).
type nodeSpill struct {
	task  int
	ph    mapPhases
	parts [][]byte
}

// runMapTask maps one split, partitions the output, optionally combines,
// and publishes per-reduce partitions into the local shuffle store. The
// returned slice holds the published per-partition runs, which the
// NodeCombine path merges across co-located maps.
func (tt *taskTracker) runMapTask(task, attempt int, pctx trace.Context) (mapPhases, [][]byte, error) {
	var ph mapPhases
	span := tt.tr.StartChild(pctx, fmt.Sprintf("m%d", task), trace.KindTask)
	span.Annotate("attempt", fmt.Sprint(attempt))
	defer span.End()
	nParts := tt.job.NumReducers
	partitioner := tt.job.Partitioner
	if partitioner == nil {
		partitioner = core.HashPartitioner
	}
	// Collect pairs grouped per partition, keyed for the combiner.
	groups := make([]map[string][][]byte, nParts)
	order := make([][]string, nParts)
	for i := range groups {
		groups[i] = make(map[string][][]byte)
	}
	emit := func(key, value []byte) error {
		p := partitioner(key, nParts)
		if p < 0 || p >= nParts {
			return fmt.Errorf("partitioner returned %d for %d partitions", p, nParts)
		}
		k := string(key)
		if _, seen := groups[p][k]; !seen {
			order[p] = append(order[p], k)
		}
		groups[p][k] = append(groups[p][k], append([]byte(nil), value...))
		return nil
	}
	runSpan := span.Child("map.run", trace.KindPhase)
	defer runSpan.End()
	runStart := time.Now()
	if err := tt.splits[task].Records(func(k, v []byte) error {
		return tt.job.Mapper.Map(k, v, emit)
	}); err != nil {
		span.Annotate("error", err.Error())
		return ph, nil, err
	}
	ph.run = time.Since(runStart)
	runSpan.End()
	tt.met.Timer("task.map.run").ObserveDuration(ph.run)

	// Spill: sort, combine and serialize each partition, publish to the
	// store. Sorting here makes every published segment a run — framed
	// KeyLists in strictly increasing key order — which is what lets the
	// reduce side merge instead of re-sort (the map-side half of the
	// pipelined shuffle; see internal/shuffle).
	spillSpan := span.Child("map.spill", trace.KindPhase)
	defer spillSpan.End()
	spillStart := time.Now()
	var spilled int
	parts := make([][]byte, nParts)
	for p := 0; p < nParts; p++ {
		sort.Strings(order[p])
		var buf []byte
		for _, k := range order[p] {
			values := groups[p][k]
			if tt.combine != nil {
				values = tt.combine([]byte(k), values)
			}
			buf = kv.AppendKeyList(buf, kv.KeyList{Key: []byte(k), Values: values})
		}
		spilled += len(buf)
		parts[p] = buf
		tt.store.Put(jetty.OutputKey{Job: jobName, Map: task, Reduce: p}, buf)
	}
	ph.spill = time.Since(spillStart)
	spillSpan.End()
	tt.met.Timer("task.map.spill").ObserveDuration(ph.spill)
	sctx := spillSpan.Context()
	tt.ev.Emit(obs.Event{Type: obs.EvSpill, Task: fmt.Sprintf("m%d", task),
		Attempt: attempt, Span: sctx.Span, Trace: sctx.Trace,
		Detail: fmt.Sprintf("tracker %d: %d partitions, %d bytes", tt.idx, nParts, spilled)})
	return ph, parts, nil
}

// mapOutputLoc is one completed map's shuffle address.
type mapOutputLoc struct {
	mapID     int
	trackerID int
	addr      string
}

// reducePhases is the wall-time breakdown of one reduce task — the live
// counterpart of the paper's Figure 1 per-reducer measurement. merge is
// background merge-pass CPU overlapped with copy; it runs inside copy's
// wall time and is reported separately, never summed into it.
type reducePhases struct {
	copy   time.Duration
	sort   time.Duration
	reduce time.Duration
	merge  time.Duration
}

// runReduceTask is the copy/sort/reduce lifecycle: poll the jobtracker for
// completed map locations, fetch partitions over HTTP with a pool of
// parallel copiers (mapred.reduce.parallel.copies), merge by key, and run
// the user reduce function. The returned phases are the task's wall times
// per stage, reported to the jobtracker with the output.
//
// The default path is the pipelined shuffle (runReducePipelined): fetched
// segments are sorted runs, a concurrent merger folds them while copies
// are still in flight, and the final merge streams key groups in order —
// no whole-key-space sort. Config.LegacyShuffle selects the old
// buffer-everything-then-sort path (runReduceLegacy), kept for A/B
// benchmarking and the byte-identical property tests.
func (tt *taskTracker) runReduceTask(task, attempt int, pctx trace.Context) ([]byte, reducePhases, error) {
	if tt.cfg.LegacyShuffle {
		return tt.runReduceLegacy(task, attempt, pctx)
	}
	return tt.runReducePipelined(task, attempt, pctx)
}

// runReducePipelined is the streaming shuffle: copiers validate each
// fetched run and hand it straight to a shuffle.Merger, whose background
// passes fold runs (applying the job's combiner) while more fetches are in
// flight — the copy/merge overlap the paper says Hadoop's copy-dominated
// shuffle is missing. The sort phase is the final k-way pass; the reduce
// loop consumes its merge order directly.
//
// The same scheduling rules as the legacy path apply: re-advertised maps
// are deduped per poll and guarded on the fetched set under the merge
// lock, and a no-progress poll backs off for a heartbeat. A fetch that
// yields a malformed run counts as a fetch failure (reported, map
// re-executed) — corruption must not surface mid-merge.
func (tt *taskTracker) runReducePipelined(task, attempt int, pctx trace.Context) ([]byte, reducePhases, error) {
	var ph reducePhases
	span := tt.tr.StartChild(pctx, fmt.Sprintf("r%d", task), trace.KindTask)
	span.Annotate("attempt", fmt.Sprint(attempt))
	defer span.End()

	var combine shuffle.Combiner
	if tt.combine != nil {
		combine = shuffle.Combiner(tt.combine)
	}
	// With NodeCombine a group segment covers several maps, so fewer
	// segments than splits arrive; the merger runs in streaming mode and
	// the copy loop's own fetched-set accounting declares end-of-stream.
	expected := len(tt.splits)
	if tt.cfg.NodeCombine {
		expected = 0
	}
	// OnPass fires from each background pass's own goroutine, and passes
	// can overlap — the pass number must be atomic.
	var passNo int64
	merger := shuffle.NewMerger(shuffle.Config{
		Expected: expected,
		Factor:   tt.cfg.MergeFactor,
		Combine:  combine,
		Pool:     tt.pool,
		OnPass: func(pi shuffle.PassInfo) {
			tt.met.Timer("task.reduce.merge").ObserveDuration(pi.Duration)
			tt.met.Counter("shuffle.merge_passes").Inc()
			n := atomic.AddInt64(&passNo, 1)
			tt.tr.Record(span.Context(), fmt.Sprintf("merge.pass%d", n), trace.KindMerge,
				pi.Start, pi.Start.Add(pi.Duration),
				trace.Annotation{Key: "runs", Value: fmt.Sprint(pi.Runs)},
				trace.Annotation{Key: "bytes_in", Value: fmt.Sprint(pi.BytesIn)},
				trace.Annotation{Key: "bytes_out", Value: fmt.Sprint(pi.BytesOut)})
		},
	})

	fetched := make(map[int]bool, len(tt.splits))
	var mergedMu sync.Mutex // guards fetched; serializes merger handoff
	copierSem := make(chan struct{}, tt.cfg.CopierThreads)

	copySpan := span.Child("reduce.copy", trace.KindPhase)
	defer copySpan.End()
	copyStart := time.Now()
	for len(fetched) < len(tt.splits) {
		if tt.isAborting() {
			return nil, ph, fmt.Errorf("job aborted during copy")
		}
		groups, jobs, err := tt.pollMapLocations(fetched)
		if err != nil {
			return nil, ph, err
		}
		var (
			wg       sync.WaitGroup
			okMu     sync.Mutex
			progress int
			failed   []mapOutputLoc
		)
		// Wave 1 (NodeCombine): group segments, one fetch crediting every
		// member map. A group whose fetch fails degrades to per-map fetches
		// in wave 2 — the unicast re-fetch fallback — and only those decide
		// whether to report fetchFailed.
		for _, g := range groups {
			g := g
			copierSem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-copierSem }()
				data, err := tt.fetchGroup(g, task, copySpan.Context())
				if err != nil {
					okMu.Lock()
					jobs = append(jobs, g.rows...)
					okMu.Unlock()
					return
				}
				mergedMu.Lock()
				fresh := true
				for _, m := range g.members {
					if fetched[m] {
						fresh = false
						break
					}
				}
				if fresh {
					seq := g.members[0]
					for _, m := range g.members {
						fetched[m] = true
						if m < seq {
							seq = m
						}
					}
					merger.Add(seq, data)
					mergedMu.Unlock()
				} else {
					// A per-map fetch of a member raced this group copy;
					// the overlapping data must not reach the merger.
					mergedMu.Unlock()
					tt.pool.Put(data)
				}
				okMu.Lock()
				progress++
				okMu.Unlock()
			}()
		}
		wg.Wait()
		// Wave 2: per-map segments (uncombined maps, partially-covered
		// groups, and wave-1 fallbacks).
		for _, j := range jobs {
			j := j
			copierSem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-copierSem }()
				data, err := tt.fetchRun(j, task, copySpan.Context())
				if err != nil {
					okMu.Lock()
					failed = append(failed, j)
					okMu.Unlock()
					return
				}
				mergedMu.Lock()
				if !fetched[j.mapID] {
					fetched[j.mapID] = true
					merger.Add(j.mapID, data)
					mergedMu.Unlock()
				} else {
					// A re-execution raced the original copy; this
					// duplicate must not reach the merger.
					mergedMu.Unlock()
					tt.pool.Put(data)
				}
				okMu.Lock()
				progress++
				okMu.Unlock()
			}()
		}
		wg.Wait()
		if err := tt.reportFetchFailures(task, failed); err != nil {
			return nil, ph, err
		}
		if len(fetched) < len(tt.splits) && progress == 0 {
			time.Sleep(tt.cfg.Heartbeat)
		}
	}
	ph.copy = time.Since(copyStart)
	copySpan.End()
	tt.met.Timer("task.reduce.copy").ObserveDuration(ph.copy)

	// Sort phase = the final k-way merge pass: it streams key groups in
	// merge order, so there is no whole-key-space sort.Strings here. Groups
	// alias the merger's buffers, which stay live until the task returns.
	sortSpan := span.Child("reduce.sort", trace.KindPhase)
	defer sortSpan.End()
	sortStart := time.Now()
	var groups []kv.KeyList
	if err := merger.Merge(func(kl kv.KeyList) error {
		groups = append(groups, kl)
		return nil
	}); err != nil {
		span.Annotate("error", err.Error())
		return nil, ph, err
	}
	ph.sort = time.Since(sortStart)
	sortSpan.End()
	tt.met.Timer("task.reduce.sort").ObserveDuration(ph.sort)
	ph.merge = merger.Stats().Time

	reduceSpan := span.Child("reduce.reduce", trace.KindPhase)
	defer reduceSpan.End()
	reduceStart := time.Now()
	var out []byte
	emit := func(key, value []byte) error {
		out = kv.AppendPair(out, kv.Pair{Key: key, Value: value})
		return nil
	}
	for _, g := range groups {
		if err := tt.job.Reducer.Reduce(g.Key, g.Values, emit); err != nil {
			return nil, ph, err
		}
	}
	ph.reduce = time.Since(reduceStart)
	reduceSpan.End()
	tt.met.Timer("task.reduce.reduce").ObserveDuration(ph.reduce)
	return out, ph, nil
}

// groupFetch is one node-combined segment worth fetching: its (negative)
// group id, the tracker serving it, the group's full original membership,
// and the members' per-map rows — the unicast fallback plan if the group
// fetch fails or the group is already partially covered.
type groupFetch struct {
	groupID   int64
	trackerID int
	addr      string
	members   []int
	rows      []mapOutputLoc
}

// pollMapLocations asks the jobtracker for completed map locations and
// plans this round's fetches: group segments to fetch whole, and per-map
// segments for everything else. Maps already fetched are skipped, and maps
// advertised more than once in one response (an old and a re-executed
// copy) are deduped. A group with any member already fetched is never
// fetched as a group — its data would overlap the merger's input — so its
// remaining members are planned per-map instead.
func (tt *taskTracker) pollMapLocations(fetched map[int]bool) ([]groupFetch, []mapOutputLoc, error) {
	locs, err := tt.rpc.Call("mapLocations")
	if err != nil {
		return nil, nil, err
	}
	count, n, err := kv.ReadVLong(locs)
	if err != nil {
		return nil, nil, err
	}
	locs = locs[n:]
	type row struct {
		loc   mapOutputLoc
		group int64
	}
	rows := make([]row, 0, int(count))
	for i := int64(0); i < count; i++ {
		mapID64, n, err := kv.ReadVLong(locs)
		if err != nil {
			return nil, nil, err
		}
		locs = locs[n:]
		trackerID64, n, err := kv.ReadVLong(locs)
		if err != nil {
			return nil, nil, err
		}
		locs = locs[n:]
		addr, n, err := kv.ReadBytes(locs)
		if err != nil {
			return nil, nil, err
		}
		locs = locs[n:]
		group, n, err := kv.ReadVLong(locs)
		if err != nil {
			return nil, nil, err
		}
		locs = locs[n:]
		rows = append(rows, row{
			loc:   mapOutputLoc{mapID: int(mapID64), trackerID: int(trackerID64), addr: string(addr)},
			group: group,
		})
	}
	members := make(map[int64][]int)
	groupCount, n, err := kv.ReadVLong(locs)
	if err != nil {
		return nil, nil, err
	}
	locs = locs[n:]
	for i := int64(0); i < groupCount; i++ {
		g, n, err := kv.ReadVLong(locs)
		if err != nil {
			return nil, nil, err
		}
		locs = locs[n:]
		memberCount, n, err := kv.ReadVLong(locs)
		if err != nil {
			return nil, nil, err
		}
		locs = locs[n:]
		ms := make([]int, 0, int(memberCount))
		for j := int64(0); j < memberCount; j++ {
			m, n, err := kv.ReadVLong(locs)
			if err != nil {
				return nil, nil, err
			}
			locs = locs[n:]
			ms = append(ms, int(m))
		}
		members[g] = ms
	}

	var (
		jobs       []mapOutputLoc
		groups     []groupFetch
		groupOrder []int64
	)
	queued := make(map[int]bool, len(rows))
	grouped := make(map[int64]*groupFetch)
	for _, r := range rows {
		if fetched[r.loc.mapID] || queued[r.loc.mapID] {
			continue
		}
		queued[r.loc.mapID] = true
		if r.group == int64(r.loc.mapID) || len(members[r.group]) == 0 {
			jobs = append(jobs, r.loc)
			continue
		}
		g, ok := grouped[r.group]
		if !ok {
			g = &groupFetch{
				groupID:   r.group,
				trackerID: r.loc.trackerID,
				addr:      r.loc.addr,
				members:   members[r.group],
			}
			grouped[r.group] = g
			groupOrder = append(groupOrder, r.group)
		}
		g.rows = append(g.rows, r.loc)
	}
	for _, id := range groupOrder {
		g := grouped[id]
		covered := false
		for _, m := range g.members {
			if fetched[m] {
				covered = true
				break
			}
		}
		if covered {
			jobs = append(jobs, g.rows...)
		} else {
			groups = append(groups, *g)
		}
	}
	return groups, jobs, nil
}

// fetchGroup retrieves one node-combined group segment and validates it is
// a well-formed sorted run, exactly like fetchRun for a per-map segment.
func (tt *taskTracker) fetchGroup(g groupFetch, reduce int, pctx trace.Context) ([]byte, error) {
	fs := tt.tr.StartChild(pctx, fmt.Sprintf("fetch g%d", -g.groupID), trace.KindFetch)
	defer fs.End()
	fs.Annotate("from", fmt.Sprintf("tracker%d", g.trackerID))
	fs.Annotate("maps", fmt.Sprint(len(g.members)))
	data, err := tt.fetch.FetchMapOutputContext(tt.ctx, fs.Context(), g.addr,
		jetty.OutputKey{Job: jobName, Map: int(g.groupID), Reduce: reduce})
	if err != nil {
		fs.Annotate("error", err.Error())
		return nil, err
	}
	fs.Annotate("bytes", fmt.Sprint(len(data)))
	if _, err := shuffle.ValidateRun(data); err != nil {
		fs.Annotate("error", "corrupt output")
		tt.pool.Put(data)
		return nil, fmt.Errorf("corrupt group %d output: %w", g.groupID, err)
	}
	return data, nil
}

// reportFetchFailures tells the jobtracker about failed fetches so the
// affected maps are re-executed elsewhere.
func (tt *taskTracker) reportFetchFailures(task int, failed []mapOutputLoc) error {
	for _, j := range failed {
		if _, err := tt.rpc.Call("fetchFailed",
			kv.AppendVLong(nil, int64(task)),
			kv.AppendVLong(nil, int64(j.mapID)),
			kv.AppendVLong(nil, int64(j.trackerID))); err != nil {
			return err
		}
	}
	return nil
}

// fetchRun retrieves one map output partition and validates it is a
// well-formed sorted run before handing it to the caller. The returned
// buffer may come from the tracker's pool (the fetch client shares it);
// ownership passes to the caller.
func (tt *taskTracker) fetchRun(j mapOutputLoc, reduce int, pctx trace.Context) ([]byte, error) {
	fs := tt.tr.StartChild(pctx, fmt.Sprintf("fetch m%d", j.mapID), trace.KindFetch)
	defer fs.End()
	fs.Annotate("from", fmt.Sprintf("tracker%d", j.trackerID))
	data, err := tt.fetch.FetchMapOutputContext(tt.ctx, fs.Context(), j.addr,
		jetty.OutputKey{Job: jobName, Map: j.mapID, Reduce: reduce})
	if err != nil {
		fs.Annotate("error", err.Error())
		tt.emitFetchFail(fs, j, reduce, err)
		return nil, err
	}
	fs.Annotate("bytes", fmt.Sprint(len(data)))
	if _, err := shuffle.ValidateRun(data); err != nil {
		fs.Annotate("error", "corrupt output")
		tt.pool.Put(data)
		return nil, fmt.Errorf("corrupt map %d output: %w", j.mapID, err)
	}
	return data, nil
}

// runReduceLegacy is the pre-pipeline path: parse every fetched output
// completely, buffer all values into one hash map, then sort the whole key
// space with sort.Strings before reducing. Selected by
// Config.LegacyShuffle for A/B benchmarking.
//
// Each fetched output is parsed completely before it is merged, so a fetch
// or parse failure leaves no partial state behind: the failure is reported
// to the jobtracker (fetchFailed), the map is re-executed elsewhere, and
// the next mapLocations poll redirects this reducer to the new copy.
//
// Two scheduling rules keep the copy loop honest:
//
//   - a mapID may be advertised more than once in a single mapLocations
//     response (an old and a re-executed copy, both completed); jobs are
//     deduped per poll, and the merge itself is guarded on the fetched set
//     under the merge lock, so one map's values can never be merged twice;
//   - when a poll makes no progress — no new locations, or every fetch
//     failed — the reducer backs off for a heartbeat instead of hot-polling
//     the jobtracker in a tight RPC loop while maps are still running.
func (tt *taskTracker) runReduceLegacy(task, attempt int, pctx trace.Context) ([]byte, reducePhases, error) {
	var ph reducePhases
	span := tt.tr.StartChild(pctx, fmt.Sprintf("r%d", task), trace.KindTask)
	span.Annotate("attempt", fmt.Sprint(attempt))
	defer span.End()
	fetched := make(map[int]bool, len(tt.splits))
	merged := make(map[string][][]byte)
	var mergedMu sync.Mutex // guards merged and fetched together
	copierSem := make(chan struct{}, tt.cfg.CopierThreads)

	// Span.End is idempotent, so each phase span is deferred for the error
	// paths and ended explicitly at its boundary on the happy path.
	copySpan := span.Child("reduce.copy", trace.KindPhase)
	defer copySpan.End()
	copyStart := time.Now()
	for len(fetched) < len(tt.splits) {
		if tt.isAborting() {
			return nil, ph, fmt.Errorf("job aborted during copy")
		}
		groups, jobs, err := tt.pollMapLocations(fetched)
		if err != nil {
			return nil, ph, err
		}
		// The legacy path parses whole outputs into one hash map and never
		// exploits group segments; node-combined maps are fetched per-map
		// through their fallback rows, keeping this path byte-identical to
		// its pre-NodeCombine behaviour.
		for _, g := range groups {
			jobs = append(jobs, g.rows...)
		}
		// Fetch the new outputs with bounded parallelism. A failed fetch
		// is reported and skipped, not fatal: the map will move.
		var (
			wg       sync.WaitGroup
			okMu     sync.Mutex
			progress int
			failed   []mapOutputLoc
		)
		for _, j := range jobs {
			j := j
			copierSem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-copierSem }()
				lists, err := tt.fetchAndParse(j, task, copySpan.Context())
				if err != nil {
					okMu.Lock()
					failed = append(failed, j)
					okMu.Unlock()
					return
				}
				mergedMu.Lock()
				if !fetched[j.mapID] {
					for _, kl := range lists {
						merged[string(kl.Key)] = append(merged[string(kl.Key)], kl.Values...)
					}
					fetched[j.mapID] = true
				}
				mergedMu.Unlock()
				okMu.Lock()
				progress++
				okMu.Unlock()
			}()
		}
		wg.Wait()
		if err := tt.reportFetchFailures(task, failed); err != nil {
			return nil, ph, err
		}
		if len(fetched) < len(tt.splits) && progress == 0 {
			time.Sleep(tt.cfg.Heartbeat)
		}
	}
	ph.copy = time.Since(copyStart)
	copySpan.End()
	tt.met.Timer("task.reduce.copy").ObserveDuration(ph.copy)

	// Sort keys (the merge-sort phase) and reduce.
	sortSpan := span.Child("reduce.sort", trace.KindPhase)
	sortStart := time.Now()
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ph.sort = time.Since(sortStart)
	sortSpan.End()
	tt.met.Timer("task.reduce.sort").ObserveDuration(ph.sort)

	reduceSpan := span.Child("reduce.reduce", trace.KindPhase)
	defer reduceSpan.End()
	reduceStart := time.Now()
	var out []byte
	emit := func(key, value []byte) error {
		out = kv.AppendPair(out, kv.Pair{Key: key, Value: value})
		return nil
	}
	for _, k := range keys {
		if err := tt.job.Reducer.Reduce([]byte(k), merged[k], emit); err != nil {
			return nil, ph, err
		}
	}
	ph.reduce = time.Since(reduceStart)
	reduceSpan.End()
	tt.met.Timer("task.reduce.reduce").ObserveDuration(ph.reduce)
	return out, ph, nil
}

// fetchAndParse retrieves one map output partition and decodes it fully,
// returning the key lists only if the whole body is well-formed. The fetch
// span parents under the reduce task's copy phase, and its context rides
// the HTTP request so the serving tracker's span parents under it in turn.
func (tt *taskTracker) fetchAndParse(j mapOutputLoc, reduce int, pctx trace.Context) ([]kv.KeyList, error) {
	fs := tt.tr.StartChild(pctx, fmt.Sprintf("fetch m%d", j.mapID), trace.KindFetch)
	defer fs.End()
	fs.Annotate("from", fmt.Sprintf("tracker%d", j.trackerID))
	data, err := tt.fetch.FetchMapOutputContext(tt.ctx, fs.Context(), j.addr,
		jetty.OutputKey{Job: jobName, Map: j.mapID, Reduce: reduce})
	if err != nil {
		fs.Annotate("error", err.Error())
		tt.emitFetchFail(fs, j, reduce, err)
		return nil, err
	}
	fs.Annotate("bytes", fmt.Sprint(len(data)))
	var lists []kv.KeyList
	for len(data) > 0 {
		klist, n, err := kv.ReadKeyList(data)
		if err != nil {
			fs.Annotate("error", "corrupt output")
			return nil, fmt.Errorf("corrupt map %d output: %w", j.mapID, err)
		}
		lists = append(lists, klist)
		data = data[n:]
	}
	return lists, nil
}

// emitFetchFail records a reducer's definitive fetch failure, cross-linked
// to the fetch span that carried the attempts.
func (tt *taskTracker) emitFetchFail(fs *trace.Span, j mapOutputLoc, reduce int, err error) {
	fctx := fs.Context()
	tt.ev.Emit(obs.Event{Type: obs.EvFetchFail, Task: fmt.Sprintf("r%d", reduce),
		Span: fctx.Span, Trace: fctx.Trace,
		Detail: fmt.Sprintf("map %d on tracker %d: %v", j.mapID, j.trackerID, err)})
}

func (tt *taskTracker) isAborting() bool {
	if tt.ctx.Err() != nil {
		return true
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.aborting
}

// decodePairs parses framed pairs (reduce output).
func decodePairs(b []byte) ([]kv.Pair, error) {
	var pairs []kv.Pair
	for len(b) > 0 {
		p, n, err := kv.ReadPair(b)
		if err != nil {
			return nil, fmt.Errorf("hadoop: corrupt reduce output: %w", err)
		}
		pairs = append(pairs, p.Clone())
		b = b[n:]
	}
	return pairs, nil
}
