package hadoop

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

var wcMapper = mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
	for _, w := range bytes.Fields(line) {
		if err := emit(w, kv.AppendVLong(nil, 1)); err != nil {
			return err
		}
	}
	return nil
})

var wcReducer = mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
	var total int64
	for _, v := range values {
		n, _, err := kv.ReadVLong(v)
		if err != nil {
			return err
		}
		total += n
	}
	return emit(key, kv.AppendVLong(nil, total))
})

func genText(t *testing.T, size int, seed int64) []byte {
	t.Helper()
	vocab := workload.NewVocabulary(300, seed)
	return workload.NewTextGenerator(vocab, 1.1, seed+1).BytesOfText(size)
}

func refCounts(text []byte) map[string]int64 {
	ref := make(map[string]int64)
	for _, line := range strings.Split(string(text), "\n") {
		for _, w := range strings.Fields(line) {
			ref[w]++
		}
	}
	return ref
}

func decode(t *testing.T, pairs []kv.Pair) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, p := range pairs {
		n, _, err := kv.ReadVLong(p.Value)
		if err != nil {
			t.Fatal(err)
		}
		out[string(p.Key)] += n
	}
	return out
}

func TestWordCountOnMiniHadoop(t *testing.T) {
	text := genText(t, 60_000, 1)
	job := mapred.Job{
		Name:        "wc",
		Mapper:      wcMapper,
		Reducer:     wcReducer,
		Combiner:    mapred.CombinerFromReducer(wcReducer),
		NumReducers: 3,
	}
	res, err := Run(job, mapred.SplitText(text, 8_000), Config{NumTrackers: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := decode(t, res.Pairs())
	want := refCounts(text)
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
	if res.MapTasks != len(mapred.SplitText(text, 8_000)) {
		t.Errorf("MapTasks = %d", res.MapTasks)
	}
}

func TestMiniHadoopMatchesMPIDEngine(t *testing.T) {
	// The same job on both engines must produce identical results — the
	// precondition for a fair live Figure 6.
	text := genText(t, 30_000, 2)
	splits := mapred.SplitText(text, 4_000)
	job := mapred.Job{
		Mapper:      wcMapper,
		Reducer:     wcReducer,
		Combiner:    mapred.CombinerFromReducer(wcReducer),
		NumReducers: 2,
	}
	hres, err := Run(job, splits, Config{NumTrackers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := mapred.Run(job, splits, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, m := decode(t, hres.Pairs()), decode(t, mres.Pairs())
	if len(h) != len(m) {
		t.Fatalf("engines disagree on distinct words: %d vs %d", len(h), len(m))
	}
	for w, c := range m {
		if h[w] != c {
			t.Errorf("count[%q]: hadoop %d, mpid %d", w, h[w], c)
		}
	}
}

func TestMiniHadoopSortJobGlobalOrder(t *testing.T) {
	gen := workload.NewSortGenerator(3)
	records := gen.Records(1_000)
	var pairs []kv.Pair
	for _, r := range records {
		pairs = append(pairs, kv.Pair{Key: r.Key, Value: r.Value})
	}
	splits := []mapred.Split{
		mapred.NewPairSplit(0, pairs[:400]),
		mapred.NewPairSplit(1, pairs[400:]),
	}
	identityMap := mapred.MapperFunc(func(k, v []byte, emit mapred.Emit) error { return emit(k, v) })
	identityReduce := mapred.ReducerFunc(func(k []byte, values [][]byte, emit mapred.Emit) error {
		for _, v := range values {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	})
	res, err := Run(mapred.Job{
		Mapper:      identityMap,
		Reducer:     identityReduce,
		Partitioner: core.FirstByteRangePartitioner,
		NumReducers: 4,
	}, splits, Config{NumTrackers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var out []kv.Pair
	for _, rp := range res.ByReducer {
		out = append(out, rp...)
	}
	if len(out) != len(pairs) {
		t.Fatalf("output %d records, want %d", len(out), len(pairs))
	}
	for i := 1; i < len(out); i++ {
		if kv.Compare(out[i-1].Key, out[i].Key) > 0 {
			t.Fatalf("global order violated at %d", i)
		}
	}
}

func TestMiniHadoopMapperErrorAbortsJob(t *testing.T) {
	bad := mapred.MapperFunc(func(_, _ []byte, _ mapred.Emit) error {
		return errors.New("deliberate map failure")
	})
	_, err := Run(mapred.Job{Mapper: bad, Reducer: wcReducer},
		mapred.SplitText([]byte("x\n"), 10), Config{})
	if err == nil || !strings.Contains(err.Error(), "deliberate map failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestMiniHadoopReducerErrorAbortsJob(t *testing.T) {
	bad := mapred.ReducerFunc(func(_ []byte, _ [][]byte, _ mapred.Emit) error {
		return errors.New("deliberate reduce failure")
	})
	_, err := Run(mapred.Job{Mapper: wcMapper, Reducer: bad},
		mapred.SplitText([]byte("x y\n"), 10), Config{})
	if err == nil || !strings.Contains(err.Error(), "deliberate reduce failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestMiniHadoopValidation(t *testing.T) {
	if _, err := Run(mapred.Job{}, nil, Config{}); err == nil {
		t.Error("job without mapper/reducer accepted")
	}
}

func TestMiniHadoopEmptyInput(t *testing.T) {
	res, err := Run(mapred.Job{Mapper: wcMapper, Reducer: wcReducer, NumReducers: 2},
		nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs()) != 0 {
		t.Fatalf("empty input produced %d pairs", len(res.Pairs()))
	}
}

func TestMiniHadoopManyTrackersAndSlots(t *testing.T) {
	text := genText(t, 40_000, 4)
	job := mapred.Job{
		Mapper:      wcMapper,
		Reducer:     wcReducer,
		NumReducers: 4,
	}
	res, err := Run(job, mapred.SplitText(text, 2_000),
		Config{NumTrackers: 4, MapSlots: 3, ReduceSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := decode(t, res.Pairs())
	want := refCounts(text)
	var gt, wt int64
	for _, v := range got {
		gt += v
	}
	for _, v := range want {
		wt += v
	}
	if gt != wt {
		t.Fatalf("word totals differ: %d vs %d", gt, wt)
	}
}

func TestCopierThreadsConfigurable(t *testing.T) {
	// A single copier thread must still complete correctly (degenerate
	// pool), and many threads must not duplicate or lose fetches.
	text := genText(t, 20_000, 9)
	splits := mapred.SplitText(text, 2_000)
	job := mapred.Job{Mapper: wcMapper, Reducer: wcReducer, NumReducers: 2}
	want := refCounts(text)
	for _, copiers := range []int{1, 8} {
		res, err := Run(job, splits, Config{NumTrackers: 2, CopierThreads: copiers})
		if err != nil {
			t.Fatalf("copiers=%d: %v", copiers, err)
		}
		got := decode(t, res.Pairs())
		if len(got) != len(want) {
			t.Fatalf("copiers=%d: distinct words %d, want %d", copiers, len(got), len(want))
		}
		for w, c := range want {
			if got[w] != c {
				t.Fatalf("copiers=%d: count[%q] = %d, want %d", copiers, w, got[w], c)
			}
		}
	}
}
