package hadoop

import (
	"bytes"
	"io"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/dfs"
	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
)

// Chaos tests: the live engine must complete jobs — with output
// byte-identical to a fault-free run — while the fault injector breaks
// RPCs, kills a tasktracker mid-job, and crashes a DataNode mid-read.
// All seeds are fixed; the suites are deterministic.

// encodePairs frames a sorted pair list for byte-exact comparison.
func encodePairs(pairs []kv.Pair) []byte {
	var buf []byte
	for _, p := range pairs {
		buf = kv.AppendPair(buf, p)
	}
	return buf
}

func wcJob(reducers int) mapred.Job {
	return mapred.Job{
		Name:        "chaos-wc",
		Mapper:      wcMapper,
		Reducer:     wcReducer,
		Combiner:    mapred.CombinerFromReducer(wcReducer),
		NumReducers: reducers,
	}
}

// TestChaosWordCountUnderFlakyRPC runs WordCount while every tenth RPC
// call (statistically, under a fixed seed) fails at the client injection
// point. With a retry budget the job must complete and its output must be
// byte-identical to the fault-free run.
func TestChaosWordCountUnderFlakyRPC(t *testing.T) {
	text := genText(t, 40_000, 7)
	splits := mapred.SplitText(text, 4_000)
	job := wcJob(3)

	clean, err := Run(job, splits, Config{NumTrackers: 3})
	if err != nil {
		t.Fatal(err)
	}

	inj := faults.New(42, faults.Rule{
		Component:   "hadooprpc.client",
		Operation:   "call",
		Probability: 0.1,
		Action:      faults.Fail,
	})
	res, err := Run(job, splits, Config{
		NumTrackers: 3,
		Injector:    inj,
		RPC: hadooprpc.Options{
			MaxAttempts: 8,
			Backoff:     faults.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatalf("job under flaky RPC: %v", err)
	}
	if inj.Count("hadooprpc.client", "call") == 0 {
		t.Fatal("injector never saw an RPC call — injection points not wired")
	}
	if got, want := encodePairs(res.Pairs()), encodePairs(clean.Pairs()); !bytes.Equal(got, want) {
		t.Fatalf("output under faults differs from fault-free run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosTrackerCrashMidJob kills one of three tasktrackers at its 11th
// heartbeat — taking its shuffle server, completed map outputs, and
// running tasks with it. The jobtracker must detect the loss, re-execute
// the dead tracker's work on the survivors, redirect reducers to the new
// map outputs, and still produce byte-identical output.
func TestChaosTrackerCrashMidJob(t *testing.T) {
	text := genText(t, 120_000, 11)
	splits := mapred.SplitText(text, 3_000) // ~40 map tasks
	// Slow the mapper slightly so the doomed tracker still has completed
	// and in-flight maps when it dies.
	slowMapper := mapred.MapperFunc(func(k, v []byte, emit mapred.Emit) error {
		time.Sleep(3 * time.Millisecond)
		return wcMapper.Map(k, v, emit)
	})
	job := wcJob(3)
	job.Mapper = slowMapper

	clean, err := Run(job, splits, Config{NumTrackers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if clean.MaxTaskExecutions != 1 {
		t.Fatalf("fault-free MaxTaskExecutions = %d, want 1", clean.MaxTaskExecutions)
	}

	inj := faults.New(1, faults.Rule{
		Component: "hadoop.tracker1",
		Operation: "heartbeat",
		After:     10,
		Action:    faults.Crash,
	})
	res, err := Run(job, splits, Config{
		NumTrackers:    3,
		Injector:       inj,
		TrackerTimeout: 200 * time.Millisecond,
		RPC: hadooprpc.Options{
			MaxAttempts: 3,
			Backoff:     faults.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatalf("job with tracker crash: %v", err)
	}
	if !inj.Crashed("hadoop.tracker1") {
		t.Fatal("tracker 1 never crashed — injection point not reached")
	}
	// The dead tracker had finished (or was running) tasks; those must
	// have been re-executed elsewhere.
	if res.MaxTaskExecutions < 2 {
		t.Fatalf("MaxTaskExecutions = %d, want >= 2 (re-execution after tracker loss)", res.MaxTaskExecutions)
	}
	if res.FailedAttempts == 0 {
		t.Fatal("FailedAttempts = 0, want > 0 after tracker loss")
	}
	if got, want := encodePairs(res.Pairs()), encodePairs(clean.Pairs()); !bytes.Equal(got, want) {
		t.Fatalf("output after tracker crash differs from fault-free run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosDataNodeCrashMidRead runs WordCount over DFS input while a
// DataNode crashes partway through serving block reads: replica failover
// inside the DFS read path must absorb the loss without a single task
// failure, and the counts must be exact.
func TestChaosDataNodeCrashMidRead(t *testing.T) {
	nn, err := dfs.NewCluster(3, dfs.Config{BlockSize: 2_048, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	text := genText(t, 50_000, 3)
	w, err := nn.Create("/input")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(w, bytes.NewReader(text)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	splits, err := mapred.DFSSplits(nn, "/input")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 4 {
		t.Fatalf("only %d splits — too few to crash mid-read", len(splits))
	}

	// Node 2 survives its first three block reads, then dies.
	inj := faults.New(1, faults.Rule{
		Component: "dfs.datanode2",
		Operation: "read",
		After:     3,
		Action:    faults.Crash,
	})
	nn.SetInjector(inj)

	res, err := Run(wcJob(2), splits, Config{NumTrackers: 2})
	if err != nil {
		t.Fatalf("job with DataNode crash: %v", err)
	}
	if !nn.DataNode(2).Down() {
		t.Fatal("datanode 2 never crashed — too few reads reached it")
	}
	got := decode(t, res.Pairs())
	want := refCounts(text)
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for word, n := range want {
		if got[word] != n {
			t.Fatalf("count[%q] = %d, want %d", word, got[word], n)
		}
	}
	// Failover, not re-execution, absorbed this fault.
	if res.FailedAttempts != 0 {
		t.Fatalf("FailedAttempts = %d, want 0 (DFS failover should be invisible to the engine)", res.FailedAttempts)
	}
}
