package hadoop

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/jetty"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/trace"
)

// observedWC is wcJob with the combiner supplied as an ObservedCombiner
// factory, so every combine stage binds to the job's registry.
func observedWC(reducers int) mapred.Job {
	job := wcJob(reducers)
	job.Combiner = nil
	job.ObservedCombiner = func(reg *metrics.Registry) core.CombineFunc {
		return mapred.CombinerFromReducerObserved(wcReducer, reg)
	}
	return job
}

// TestNodeCombineByteIdenticalAndFewerBytes is the headline property of
// the per-tracker combine stage: identical job output, strictly fewer
// shuffle bytes on the wire (each key ships once per tracker group
// instead of once per map), and the node-combine counters visible in the
// job registry.
func TestNodeCombineByteIdenticalAndFewerBytes(t *testing.T) {
	text := genText(t, 80_000, 21)
	splits := mapred.SplitText(text, 5_000)
	job := observedWC(3)

	base := metrics.NewRegistry()
	want, err := Run(job, splits, Config{NumTrackers: 3, Metrics: base})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	got, err := Run(job, splits, Config{NumTrackers: 3, NodeCombine: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodePairs(got.Pairs()), encodePairs(want.Pairs())) {
		t.Fatal("NodeCombine changed job output")
	}
	snap := reg.Snapshot()
	if snap.Counter("hadoop.node_combines") == 0 {
		t.Fatal("no node-level combine stage ran")
	}
	if snap.Counter("hadoop.node_combine_maps") == 0 {
		t.Fatal("node combine stage covered no maps")
	}
	baseBytes := base.Snapshot().Counter("shuffle.fetch_bytes")
	ncBytes := snap.Counter("shuffle.fetch_bytes")
	if baseBytes == 0 || ncBytes == 0 {
		t.Fatalf("fetch byte counters not wired (base=%d, nodecombine=%d)", baseBytes, ncBytes)
	}
	if ncBytes >= baseBytes {
		t.Fatalf("node combining did not reduce shuffle bytes: %d >= %d", ncBytes, baseBytes)
	}
}

// TestNodeCombineLegacyShuffleByteIdentical: the legacy reduce path never
// exploits group segments — node-combined maps degrade to their per-map
// fallback rows — and the output stays byte-identical.
func TestNodeCombineLegacyShuffleByteIdentical(t *testing.T) {
	text := genText(t, 50_000, 22)
	splits := mapred.SplitText(text, 5_000)
	job := observedWC(2)
	want, err := Run(job, splits, Config{NumTrackers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(job, splits, Config{NumTrackers: 2, NodeCombine: true, LegacyShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodePairs(got.Pairs()), encodePairs(want.Pairs())) {
		t.Fatal("NodeCombine+LegacyShuffle changed job output")
	}
}

// TestNodeCombineFallbackCounter: a combiner whose derived reducer rekeys
// its output trips CombinerFromReducer's fallback everywhere it runs. The
// node-level combine stage must emit those fallbacks into the job
// registry too — per-node combine failures have to be visible in
// /metrics.prom — so the NodeCombine run records strictly more of them
// than the per-task run, and the output (fallback passes values through
// untouched) still matches the combiner-free reference. Eight maps keep
// every reducer below the merge factor, so no background merge pass
// muddies the comparison.
func TestNodeCombineFallbackCounter(t *testing.T) {
	rekey := mapred.ReducerFunc(func(_ []byte, values [][]byte, emit mapred.Emit) error {
		var total int64
		for _, v := range values {
			n, _, err := kv.ReadVLong(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit([]byte("rekeyed"), kv.AppendVLong(nil, total))
	})
	text := genText(t, 40_000, 23)
	splits := mapred.SplitText(text, 5_000)
	job := wcJob(2)
	job.Combiner = nil
	job.ObservedCombiner = func(reg *metrics.Registry) core.CombineFunc {
		return mapred.CombinerFromReducerObserved(rekey, reg)
	}

	plain, err := Run(wcJob(2), splits, Config{NumTrackers: 2})
	if err != nil {
		t.Fatal(err)
	}
	taskReg := metrics.NewRegistry()
	if _, err := Run(job, splits, Config{NumTrackers: 2, Metrics: taskReg}); err != nil {
		t.Fatal(err)
	}
	nodeReg := metrics.NewRegistry()
	got, err := Run(job, splits, Config{NumTrackers: 2, NodeCombine: true, Metrics: nodeReg})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodePairs(got.Pairs()), encodePairs(plain.Pairs())) {
		t.Fatal("fallback did not pass values through untouched")
	}
	taskFB := taskReg.Snapshot().Counter("mapred.combiner.fallback")
	nodeFB := nodeReg.Snapshot().Counter("mapred.combiner.fallback")
	if taskFB == 0 {
		t.Fatal("rekeying combiner tripped no fallbacks at all")
	}
	if nodeFB <= taskFB {
		t.Fatalf("node-level combine stage emitted no fallbacks: %d (node) vs %d (per-task)", nodeFB, taskFB)
	}
}

// TestGroupFetchFailureFallsBackToPerMap: a reducer whose group-segment
// fetch fails (here: the group key is simply absent from the serving
// store, as after a partial tracker wipe) must fall back to unicast
// per-map re-fetches in the same round, without reporting fetchFailed.
func TestGroupFetchFailureFallsBackToPerMap(t *testing.T) {
	one := kv.AppendVLong(nil, 1)
	store := jetty.NewStore()
	store.Put(jetty.OutputKey{Job: jobName, Map: 0, Reduce: 0},
		kv.AppendKeyList(kv.AppendKeyList(nil,
			kv.KeyList{Key: []byte("alpha"), Values: [][]byte{one}}),
			kv.KeyList{Key: []byte("beta"), Values: [][]byte{one}}))
	store.Put(jetty.OutputKey{Job: jobName, Map: 1, Reduce: 0},
		kv.AppendKeyList(nil, kv.KeyList{Key: []byte("alpha"), Values: [][]byte{one}}))
	js := jetty.NewServer(store)
	jAddr, err := js.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()

	const gid = int64(-7)
	srv := hadooprpc.NewServer()
	srv.Register(&hadooprpc.Protocol{
		Name:    jtProtocolName,
		Version: jtProtocolVersion,
		Methods: map[string]hadooprpc.Handler{
			"register": func(params [][]byte) ([]byte, error) {
				return kv.AppendVLong(nil, 0), nil
			},
			"mapLocations": func(params [][]byte) ([]byte, error) {
				resp := kv.AppendVLong(nil, 2)
				for mapID := int64(0); mapID < 2; mapID++ {
					resp = kv.AppendVLong(resp, mapID)
					resp = kv.AppendVLong(resp, 0)
					resp = kv.AppendBytes(resp, []byte(jAddr))
					resp = kv.AppendVLong(resp, gid)
				}
				resp = kv.AppendVLong(resp, 1) // group table: gid -> {0, 1}
				resp = kv.AppendVLong(resp, gid)
				resp = kv.AppendVLong(resp, 2)
				resp = kv.AppendVLong(resp, 0)
				resp = kv.AppendVLong(resp, 1)
				return resp, nil
			},
			"fetchFailed": func(params [][]byte) ([]byte, error) {
				t.Error("fetchFailed reported: per-map fallback should have recovered the group")
				return nil, nil
			},
		},
	})
	jtAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	splits := []mapred.Split{mapred.NewPairSplit(0, nil), mapred.NewPairSplit(1, nil)}
	job := mapred.Job{Mapper: wcMapper, Reducer: wcReducer, NumReducers: 1}
	tt, err := newTaskTracker(context.Background(), 0, jtAddr, job, splits,
		Config{NodeCombine: true}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	defer tt.close()
	out, _, err := tt.runReduceTask(0, 0, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	counts := decode(t, mustDecodePairs(t, out))
	if counts["alpha"] != 2 || counts["beta"] != 1 {
		t.Fatalf("counts = %v, want alpha=2 beta=1", counts)
	}
}

// TestChaosNodeCombineTrackerCrash: a tracker crash mid-job with
// NodeCombine on — taking its group segment, per-map segments and pending
// node batch down with it — must still produce byte-identical output via
// re-execution and fresh groups on the survivors.
func TestChaosNodeCombineTrackerCrash(t *testing.T) {
	text := genText(t, 120_000, 24)
	splits := mapred.SplitText(text, 3_000)
	slowMapper := mapred.MapperFunc(func(k, v []byte, emit mapred.Emit) error {
		time.Sleep(2 * time.Millisecond)
		return wcMapper.Map(k, v, emit)
	})
	job := observedWC(3)
	job.Mapper = slowMapper

	clean, err := Run(job, splits, Config{NumTrackers: 3, NodeCombine: true})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(5, faults.Rule{
		Component: "hadoop.tracker1",
		Operation: "heartbeat",
		After:     10,
		Action:    faults.Crash,
	})
	reg := metrics.NewRegistry()
	got, err := Run(job, splits, Config{
		NumTrackers: 3,
		NodeCombine: true,
		Injector:    inj,
		Metrics:     reg,
		RPC: hadooprpc.Options{
			MaxAttempts: 4,
			Backoff:     faults.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodePairs(got.Pairs()), encodePairs(clean.Pairs())) {
		t.Fatal("tracker crash under NodeCombine changed job output")
	}
	if reg.Snapshot().Counter("hadoop.trackers_lost") == 0 {
		t.Fatal("crash was not detected as tracker loss")
	}
}
