package hadoop

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/trace"
)

// Pipeline tests: the pipelined shuffle (sorted spills + concurrent
// k-way merge, the default path) must produce output byte-identical to
// the legacy buffer-then-sort path (Config.LegacyShuffle) — fault-free,
// under chaos, and with wire compression on — and its merge passes must
// visibly overlap the copy phase in the trace.

// runBoth runs one job on both shuffle paths and returns the framed
// outputs for byte-exact comparison.
func runBoth(t *testing.T, job mapred.Job, splits []mapred.Split, cfg Config) (pipelined, legacy []byte) {
	t.Helper()
	cfg.LegacyShuffle = false
	resP, err := Run(job, splits, cfg)
	if err != nil {
		t.Fatalf("pipelined run: %v", err)
	}
	cfg.LegacyShuffle = true
	cfg.Metrics = nil // fresh registry; don't mix the two runs' counters
	resL, err := Run(job, splits, cfg)
	if err != nil {
		t.Fatalf("legacy run: %v", err)
	}
	return encodePairs(resP.Pairs()), encodePairs(resL.Pairs())
}

// TestPipelinedMatchesLegacy sweeps map/reduce shapes — including ones
// where maps far exceed MergeFactor, so intermediate passes actually run —
// and checks byte-identical output between the two paths.
func TestPipelinedMatchesLegacy(t *testing.T) {
	cases := []struct {
		name     string
		size     int
		split    int
		reducers int
		factor   int
	}{
		{"few-maps", 20_000, 5_000, 2, 10},      // below factor: final merge only
		{"many-maps", 80_000, 2_000, 3, 4},      // 40 maps, factor 4: deep pass tree
		{"single-reducer", 60_000, 3_000, 1, 3}, // everything funnels into one merger
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			text := genText(t, tc.size, 23)
			splits := mapred.SplitText(text, tc.split)
			job := wcJob(tc.reducers)
			got, want := runBoth(t, job, splits, Config{NumTrackers: 3, MergeFactor: tc.factor})
			if !bytes.Equal(got, want) {
				t.Fatalf("pipelined output differs from legacy (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestPipelinedMatchesLegacyNoCombiner covers the path where merge passes
// concatenate multi-run value lists instead of combining them.
func TestPipelinedMatchesLegacyNoCombiner(t *testing.T) {
	text := genText(t, 50_000, 31)
	splits := mapred.SplitText(text, 2_500) // 20 maps
	job := wcJob(2)
	job.Combiner = nil
	got, want := runBoth(t, job, splits, Config{NumTrackers: 2, MergeFactor: 4})
	if !bytes.Equal(got, want) {
		t.Fatalf("no-combiner pipelined output differs from legacy (%d vs %d bytes)", len(got), len(want))
	}
}

// TestPipelinedMatchesLegacyOrderInsensitive drives a reducer that
// canonicalizes its value list before emitting — the strictest
// order-insensitive check of multi-run value merging: every value byte
// must survive the pass tree, in any order.
func TestPipelinedMatchesLegacyOrderInsensitive(t *testing.T) {
	// Map each word to "word -> split-local occurrence tag"; the reducer
	// sorts and joins the tags, so outputs match iff the merged value
	// multisets match exactly.
	tagMapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		for i, w := range bytes.Fields(line) {
			tag := fmt.Sprintf("%s#%d", w, i)
			if err := emit(w, []byte(tag)); err != nil {
				return err
			}
		}
		return nil
	})
	joinReducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		tags := make([]string, len(values))
		for i, v := range values {
			tags[i] = string(v)
		}
		sort.Strings(tags)
		return emit(key, []byte(fmt.Sprint(tags)))
	})
	text := genText(t, 40_000, 17)
	splits := mapred.SplitText(text, 2_000) // 20 maps
	job := mapred.Job{Name: "tag-join", Mapper: tagMapper, Reducer: joinReducer, NumReducers: 3}
	got, want := runBoth(t, job, splits, Config{NumTrackers: 3, MergeFactor: 3})
	if !bytes.Equal(got, want) {
		t.Fatalf("order-insensitive output differs between paths (%d vs %d bytes)", len(got), len(want))
	}
}

// TestPipelinedMatchesLegacyUnderChaos repeats the flaky-RPC chaos run on
// both paths: injected failures, retries and map re-executions must not
// break the byte-identical guarantee.
func TestPipelinedMatchesLegacyUnderChaos(t *testing.T) {
	text := genText(t, 40_000, 7)
	splits := mapred.SplitText(text, 2_000) // 20 maps
	job := wcJob(3)
	newCfg := func(legacy bool) Config {
		return Config{
			NumTrackers:   3,
			MergeFactor:   4,
			LegacyShuffle: legacy,
			Injector: faults.New(42, faults.Rule{
				Component:   "hadooprpc.client",
				Operation:   "call",
				Probability: 0.1,
				Action:      faults.Fail,
			}),
			RPC: hadooprpc.Options{
				MaxAttempts: 8,
				Backoff:     faults.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
			},
		}
	}
	resP, err := Run(job, splits, newCfg(false))
	if err != nil {
		t.Fatalf("pipelined under chaos: %v", err)
	}
	resL, err := Run(job, splits, newCfg(true))
	if err != nil {
		t.Fatalf("legacy under chaos: %v", err)
	}
	if got, want := encodePairs(resP.Pairs()), encodePairs(resL.Pairs()); !bytes.Equal(got, want) {
		t.Fatalf("outputs differ under chaos (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCompressedShuffleMatches turns wire compression on and checks the
// output still matches the uncompressed run, and that compressed fetches
// actually happened.
func TestCompressedShuffleMatches(t *testing.T) {
	text := genText(t, 40_000, 13)
	splits := mapred.SplitText(text, 4_000)
	job := wcJob(2)
	plain, err := Run(job, splits, Config{NumTrackers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := RunWithReport(job, splits, Config{NumTrackers: 2, CompressShuffle: true})
	if err != nil {
		t.Fatalf("compressed run: %v", err)
	}
	if got, want := encodePairs(res.Pairs()), encodePairs(plain.Pairs()); !bytes.Equal(got, want) {
		t.Fatalf("compressed output differs (%d vs %d bytes)", len(got), len(want))
	}
	if n := rep.Metrics.Counter("shuffle.fetches_compressed"); n == 0 {
		t.Fatal("CompressShuffle on but no compressed fetches recorded")
	}
}

// TestMergeOverlapVisibleInSpans is the trace-level acceptance check: with
// many maps and a small MergeFactor, at least one background merge span
// must lie inside its reduce task's copy-phase span — the copy/merge
// overlap the pipeline exists to create, as it appears in the Chrome trace.
func TestMergeOverlapVisibleInSpans(t *testing.T) {
	text := genText(t, 120_000, 5)
	splits := mapred.SplitText(text, 2_000) // ~60 maps
	job := wcJob(2)
	_, rep, err := RunWithReport(job, splits, Config{NumTrackers: 3, MergeFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Index copy-phase spans by task span id.
	copyByParent := make(map[uint64]trace.Span)
	var merges []trace.Span
	for _, s := range rep.Spans {
		switch {
		case s.Kind == trace.KindPhase && s.Name == "reduce.copy":
			copyByParent[s.Parent] = s
		case s.Kind == trace.KindMerge:
			merges = append(merges, s)
		}
	}
	if len(merges) == 0 {
		t.Fatal("no merge spans recorded — background passes never ran")
	}
	overlapped := 0
	for _, m := range merges {
		cp, ok := copyByParent[m.Parent]
		if !ok {
			continue
		}
		if !m.Start.Before(cp.Start) && !m.Finish.After(cp.Finish) {
			overlapped++
		}
	}
	if overlapped == 0 {
		t.Fatalf("none of %d merge spans fall inside their task's copy phase", len(merges))
	}
	// The report should also carry the overlapped merge time per reducer.
	var mergeTime time.Duration
	for _, rt := range rep.Reduces {
		mergeTime += rt.Merge
	}
	if mergeTime == 0 {
		t.Fatal("reduce timings carry no merge time despite merge passes")
	}
}
