package hadoop

import (
	"strings"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/trace"
)

// note returns the value of a span annotation, or "" when absent.
func note(s trace.Span, key string) string {
	for _, a := range s.Notes {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTracedJobSpans runs a clean job with tracing and a live admin
// endpoint enabled and checks the aggregated trace is complete: a root
// job span, a scheduler attempt span and a tracker task span per task,
// the reduce phase spans, shuffle fetch/serve pairs, and a Chrome export
// that validates.
func TestTracedJobSpans(t *testing.T) {
	text := genText(t, 60_000, 7)
	splits := mapred.SplitText(text, 6_000)
	_, rep, err := RunWithReport(wcJob(2), splits, Config{
		NumTrackers: 2,
		AdminAddr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) == 0 {
		t.Fatal("report carries no spans")
	}

	var root *trace.Span
	byKind := map[string][]trace.Span{}
	for i, s := range rep.Spans {
		byKind[s.Kind] = append(byKind[s.Kind], s)
		if s.Kind == trace.KindJob {
			root = &rep.Spans[i]
		}
	}
	if root == nil {
		t.Fatal("no root job span")
	}
	if got := note(*root, "status"); got != "ok" {
		t.Errorf("job span status = %q, want ok", got)
	}
	if root.Finish.Before(root.Start) {
		t.Error("job span finishes before it starts")
	}

	// Every task the report timed must have a scheduler attempt span with
	// status ok and a tracker-shipped task span, parented into one trace.
	taskSpans := map[string]bool{}
	for _, s := range byKind[trace.KindTask] {
		taskSpans[s.Name] = true
		if s.Trace != root.Trace {
			t.Errorf("task span %s in trace %x, want %x", s.Name, s.Trace, root.Trace)
		}
	}
	okAttempts := map[string]bool{}
	for _, s := range byKind[trace.KindAttempt] {
		if note(s, "status") == "ok" {
			okAttempts[s.Name] = true
		}
	}
	for _, m := range rep.Maps {
		key := taskKey(taskKindMap, m.Task)
		if !taskSpans[key] {
			t.Errorf("no task span for completed map %s", key)
		}
		if !okAttempts[key] {
			t.Errorf("no ok attempt span for completed map %s", key)
		}
	}
	for _, r := range rep.Reduces {
		key := taskKey(taskKindReduce, r.Task)
		if !taskSpans[key] {
			t.Errorf("no task span for completed reduce %s", key)
		}
		if !okAttempts[key] {
			t.Errorf("no ok attempt span for completed reduce %s", key)
		}
	}

	// Reduce phases and the shuffle both sides: each reduce task ships
	// copy/sort/reduce phase spans; fetches appear on the reducer side and
	// serve spans on the jetty side, joined by propagated contexts.
	phases := map[string]int{}
	for _, s := range byKind[trace.KindPhase] {
		phases[s.Name]++
	}
	for _, name := range []string{"reduce.copy", "reduce.sort", "reduce.reduce", "map.run", "map.spill"} {
		if phases[name] == 0 {
			t.Errorf("no %s phase spans", name)
		}
	}
	if len(byKind[trace.KindFetch]) == 0 || len(byKind[trace.KindServe]) == 0 {
		t.Fatalf("shuffle spans missing: %d fetch, %d serve",
			len(byKind[trace.KindFetch]), len(byKind[trace.KindServe]))
	}
	fetchIDs := map[uint64]bool{}
	for _, s := range byKind[trace.KindFetch] {
		fetchIDs[s.ID] = true
	}
	linked := 0
	for _, s := range byKind[trace.KindServe] {
		if fetchIDs[s.Parent] {
			linked++
		}
	}
	if linked == 0 {
		t.Error("no serve span is parented under a fetch span — shuffle trace context not propagated")
	}

	data, err := rep.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.ValidateChrome(data)
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if st.Spans != len(rep.Spans) {
		t.Errorf("chrome export has %d spans, report has %d", st.Spans, len(rep.Spans))
	}
	if tl := rep.Timeline(100); !strings.Contains(tl, "m0") || !strings.Contains(tl, "job") {
		t.Errorf("timeline missing expected rows:\n%s", tl)
	}
}

// TestChaosTrackerCrashTrace crashes a tracker mid-job and checks the
// trace tells the recovery story: the killed attempt appears with status
// "lost" even though its tracker never shipped spans, the re-execution
// appears with a higher attempt number and status "ok", injected faults
// show up as fault spans, and the Chrome export stays well-formed.
func TestChaosTrackerCrashTrace(t *testing.T) {
	text := genText(t, 120_000, 11)
	splits := mapred.SplitText(text, 3_000)
	slowMapper := mapred.MapperFunc(func(k, v []byte, emit mapred.Emit) error {
		time.Sleep(3 * time.Millisecond)
		return wcMapper.Map(k, v, emit)
	})
	job := wcJob(3)
	job.Mapper = slowMapper

	inj := faults.New(1, faults.Rule{
		Component: "hadoop.tracker1",
		Operation: "heartbeat",
		After:     10,
		Action:    faults.Crash,
	})
	res, rep, err := RunWithReport(job, splits, Config{
		NumTrackers:    3,
		Injector:       inj,
		TrackerTimeout: 200 * time.Millisecond,
		RPC: hadooprpc.Options{
			MaxAttempts: 3,
			Backoff:     faults.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatalf("job with tracker crash: %v", err)
	}
	if res.MaxTaskExecutions < 2 {
		t.Fatalf("MaxTaskExecutions = %d, want >= 2", res.MaxTaskExecutions)
	}

	// Scheduler attempt spans by task name: the crash must leave at least
	// one "lost" attempt, and each lost task must also carry a later
	// attempt with a higher attempt number that ended "ok".
	attempts := map[string][]trace.Span{}
	var faultSpans int
	for _, s := range rep.Spans {
		switch s.Kind {
		case trace.KindAttempt:
			attempts[s.Name] = append(attempts[s.Name], s)
		case trace.KindFault:
			faultSpans++
		}
	}
	lostTasks := 0
	for name, spans := range attempts {
		for _, s := range spans {
			if note(s, "status") != "lost" {
				continue
			}
			lostTasks++
			lostAttempt := note(s, "attempt")
			redone := false
			for _, other := range spans {
				if note(other, "status") == "ok" && note(other, "attempt") > lostAttempt {
					redone = true
				}
			}
			if !redone {
				t.Errorf("task %s: lost attempt %s has no later ok attempt in the trace", name, lostAttempt)
			}
		}
	}
	if lostTasks == 0 {
		t.Error("no attempt span with status lost — killed attempts invisible in the trace")
	}
	if faultSpans == 0 {
		t.Error("no fault spans — injector tracer not wired")
	}

	// Completed-attempt coverage: every task the report timed has a task
	// span shipped by the tracker that ran its accepted execution.
	taskSpans := map[string]bool{}
	for _, s := range rep.Spans {
		if s.Kind == trace.KindTask {
			taskSpans[s.Name] = true
		}
	}
	for _, m := range rep.Maps {
		if key := taskKey(taskKindMap, m.Task); !taskSpans[key] {
			t.Errorf("no task span for completed map %s", key)
		}
	}
	for _, r := range rep.Reduces {
		if key := taskKey(taskKindReduce, r.Task); !taskSpans[key] {
			t.Errorf("no task span for completed reduce %s", key)
		}
	}

	data, err := rep.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateChrome(data); err != nil {
		t.Fatalf("chaos trace export does not validate: %v", err)
	}
}
