// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock over a time-ordered event queue. On top
// of plain scheduled callbacks it offers goroutine-backed simulation
// processes (Proc) in the style of SimPy: a process runs real Go code and
// blocks on simulation primitives — Sleep, Resource.Acquire, Link.Transfer,
// Queue.Get — while the kernel guarantees that at most one process (or the
// kernel itself) executes at a time, so simulations are data-race free and
// fully deterministic: ties in event time are broken by schedule order.
//
// All higher-level simulators in this repository (the cluster model, the
// Hadoop MapReduce simulator and the MPI-D system simulator) are built on
// this package.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation. It reuses time.Duration for convenient literals (3 *
// time.Second) and string formatting.
type Time = time.Duration

// Infinity is a virtual time later than any event a simulation can schedule.
const Infinity Time = Time(math.MaxInt64)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At reports the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel was called.
func (ev *Event) Cancelled() bool { return ev.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the simulation kernel. The zero value is not usable; create one
// with New. An Engine must be driven from a single goroutine (typically the
// test or main goroutine) via Run or RunUntil.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	yield  chan struct{} // process -> engine: "I blocked or finished"
	active int           // live (spawned, unfinished) processes
	inProc bool          // true while a process goroutine has control
	panicV any           // panic captured from a process goroutine
}

// New returns a fresh Engine with the clock at zero.
func New() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still scheduled (including cancelled
// events that have not been reaped yet).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// step pops and executes the next event. It reports false when the queue has
// drained.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		if e.panicV != nil {
			v := e.panicV
			e.panicV = nil
			panic(v)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains. If processes are still alive
// when the queue drains (a deadlock: every process is blocked and nothing can
// wake one), Run panics — silent deadlocks hide modelling bugs.
func (e *Engine) Run() {
	for e.step() {
	}
	if e.active > 0 {
		panic(fmt.Sprintf("des: deadlock — %d process(es) blocked with no pending events at %v", e.active, e.now))
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Unlike Run it tolerates still-blocked processes (they may be waiting on
// events after t).
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

// Proc is a simulation process: real Go code running in its own goroutine,
// interleaved with the kernel so that exactly one of them executes at a time.
// All blocking methods must be called from the process's own goroutine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the label the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Go spawns a simulation process that starts at the current virtual time.
// fn runs in its own goroutine under kernel control; when fn returns the
// process terminates.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt spawns a simulation process that starts at absolute virtual time t.
func (e *Engine) GoAt(t Time, name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.active++
	e.At(t, func() {
		go p.run(fn)
		e.handoff(p)
	})
	return p
}

// run is the body of the process goroutine.
func (p *Proc) run(fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			p.eng.panicV = fmt.Sprintf("des: process %q panicked: %v", p.name, r)
		}
		p.done = true
		p.eng.active--
		p.eng.yield <- struct{}{}
	}()
	<-p.resume // wait for the kernel to hand over control
	fn(p)
}

// handoff transfers control to process p and blocks until p yields (blocks on
// a primitive or terminates). It must only be called from kernel context.
func (e *Engine) handoff(p *Proc) {
	if e.inProc {
		panic("des: handoff while a process is already running")
	}
	e.inProc = true
	p.resume <- struct{}{}
	<-e.yield
	e.inProc = false
}

// yieldAndWait is called from a process goroutine after it has registered a
// wakeup. It returns control to the kernel and blocks until the kernel hands
// control back.
func (p *Proc) yieldAndWait() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// wake schedules process p to resume at the current virtual time. It must be
// called from kernel context (an event callback) or from another process.
func (e *Engine) wake(p *Proc) {
	e.After(0, func() { e.handoff(p) })
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.At(p.eng.now+d, func() { p.eng.handoff(p) })
	p.yieldAndWait()
}

// SleepUntil suspends the process until absolute virtual time t. If t is in
// the past it returns immediately.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.eng.At(t, func() { p.eng.handoff(p) })
	p.yieldAndWait()
}

// Signal is a broadcast condition: processes wait on it, another party fires
// it, and all current waiters resume. Later waiters block until the next
// Fire. A fired Signal resets automatically.
type Signal struct {
	eng     *Engine
	waiters []*Proc
}

// NewSignal creates a Signal bound to the engine.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Wait blocks the process until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.yieldAndWait()
}

// Fire wakes every process currently waiting, in FIFO order.
func (s *Signal) Fire() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.eng.wake(w)
	}
}

// WaiterCount returns the number of processes currently blocked in Wait.
func (s *Signal) WaiterCount() int { return len(s.waiters) }

// Done is a one-shot completion latch. Wait returns immediately once
// Complete has been called.
type Done struct {
	eng      *Engine
	complete bool
	waiters  []*Proc
}

// NewDone creates a latch bound to the engine.
func NewDone(e *Engine) *Done { return &Done{eng: e} }

// Completed reports whether Complete has been called.
func (d *Done) Completed() bool { return d.complete }

// Complete releases all current and future waiters. Calling it twice panics:
// a latch completing twice means two owners think they finished the same work.
func (d *Done) Complete() {
	if d.complete {
		panic("des: Done completed twice")
	}
	d.complete = true
	ws := d.waiters
	d.waiters = nil
	for _, w := range ws {
		d.eng.wake(w)
	}
}

// Wait blocks the process until Complete is called (or returns immediately
// if it already was).
func (d *Done) Wait(p *Proc) {
	if d.complete {
		return
	}
	d.waiters = append(d.waiters, p)
	p.yieldAndWait()
}

// WaitAll blocks the process until every latch has completed.
func WaitAll(p *Proc, ds ...*Done) {
	for _, d := range ds {
		d.Wait(p)
	}
}
