package des

import "fmt"

// Resource models a counted resource (CPU slots, disk channels, copier
// threads) with FIFO admission. A process acquires n units, holds them while
// it works, and releases them; waiters are admitted strictly in arrival
// order, so the simulation is deterministic.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given capacity (> 0).
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("des: resource %q needs positive capacity, got %d", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks the process until n units are available and admission is
// FIFO-fair (a waiter never overtakes an earlier one, even if the earlier one
// needs more units). Requesting more than the capacity panics.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic(fmt.Sprintf("des: acquire %d exceeds capacity %d of resource %q", n, r.capacity, r.name))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, &resWaiter{p: p, n: n})
	p.yieldAndWait()
}

// Release returns n units and admits as many queued waiters as now fit.
func (r *Resource) Release(n int) {
	if n <= 0 {
		return
	}
	r.inUse -= n
	if r.inUse < 0 {
		panic(fmt.Sprintf("des: resource %q released below zero", r.name))
	}
	r.admit()
}

func (r *Resource) admit() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			return
		}
		r.inUse += w.n
		r.waiters = r.waiters[1:]
		r.eng.wake(w.p)
	}
}

// Use acquires n units, holds them for d of virtual time, and releases them.
func (r *Resource) Use(p *Proc, n int, d Time) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// Queue is an unbounded FIFO of items passed between processes. Put never
// blocks; Get blocks until an item is available. It is the DES analogue of a
// Go channel and is used for task queues and message mailboxes.
type Queue[T any] struct {
	eng     *Engine
	items   []T
	waiters []*Proc
	closed  bool
}

// NewQueue creates an empty queue bound to the engine.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{eng: e} }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends an item and wakes one waiting consumer, if any. Put may be
// called from kernel context (event callbacks) or from a process.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		panic("des: Put on closed Queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue closed: blocked and future Gets return ok=false once
// the queue drains.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	// Wake everyone; they will observe closed-and-empty.
	for len(q.waiters) > 0 {
		q.wakeOne()
	}
}

func (q *Queue[T]) wakeOne() {
	if len(q.waiters) == 0 {
		return
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	q.eng.wake(w)
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. It returns ok=false if the queue is closed and drained. Waiters are
// served FIFO; a woken waiter re-checks, so spurious wakeups from Close are
// harmless.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, p)
		p.yieldAndWait()
	}
	v = q.items[0]
	q.items = q.items[1:]
	// An item may have arrived for another waiter while we were scheduled.
	if len(q.items) > 0 {
		q.wakeOne()
	}
	return v, true
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}
