package des

import (
	"testing"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(3*time.Second, func() { order = append(order, 3) })
	e.At(1*time.Second, func() { order = append(order, 1) })
	e.At(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
}

func TestEngineBreaksTiesByScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, order)
		}
	}
}

func TestEventCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(2*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(time.Second, func() {})
	})
	e.Run()
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	e := New()
	ran := false
	e.After(-time.Second, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("After(-1s): ran=%v now=%v", ran, e.Now())
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := New()
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		wake = p.Now()
	})
	e.Run()
	if wake != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", wake)
	}
}

func TestProcSleepUntil(t *testing.T) {
	e := New()
	var times []Time
	e.Go("p", func(p *Proc) {
		p.SleepUntil(3 * time.Second)
		times = append(times, p.Now())
		p.SleepUntil(time.Second) // already past: no-op
		times = append(times, p.Now())
	})
	e.Run()
	if times[0] != 3*time.Second || times[1] != 3*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Second)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("run %d: len %d != %d", i, len(got), len(first))
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("nondeterministic interleaving at run %d pos %d: %v vs %v", i, j, got, first)
				}
			}
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New()
	e.Go("boom", func(p *Proc) {
		p.Sleep(time.Second)
		panic("kaboom")
	})
	defer func() {
		if recover() == nil {
			t.Error("process panic did not propagate to Run")
		}
	}()
	e.Run()
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	sig := NewSignal(e)
	e.Go("stuck", func(p *Proc) { sig.Wait(p) })
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	e.Run()
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := New()
	var fired []Time
	e.At(time.Second, func() { fired = append(fired, e.Now()) })
	e.At(5*time.Second, func() { fired = append(fired, e.Now()) })
	e.RunUntil(2 * time.Second)
	if len(fired) != 1 || fired[0] != time.Second {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("second event did not fire: %v", fired)
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	e := New()
	sig := NewSignal(e)
	woken := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(time.Second)
		if sig.WaiterCount() != 4 {
			t.Errorf("WaiterCount = %d, want 4", sig.WaiterCount())
		}
		sig.Fire()
	})
	e.Run()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestDoneLatch(t *testing.T) {
	e := New()
	d := NewDone(e)
	var sawAt Time
	e.Go("waiter", func(p *Proc) {
		d.Wait(p)
		sawAt = p.Now()
	})
	e.Go("completer", func(p *Proc) {
		p.Sleep(2 * time.Second)
		d.Complete()
	})
	e.Go("late", func(p *Proc) {
		p.Sleep(3 * time.Second)
		d.Wait(p) // already complete: returns immediately
		if p.Now() != 3*time.Second {
			t.Errorf("late waiter delayed to %v", p.Now())
		}
	})
	e.Run()
	if sawAt != 2*time.Second {
		t.Fatalf("waiter resumed at %v, want 2s", sawAt)
	}
	if !d.Completed() {
		t.Fatal("Completed() = false")
	}
}

func TestDoneCompleteTwicePanics(t *testing.T) {
	e := New()
	d := NewDone(e)
	d.Complete()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double Complete")
		}
	}()
	d.Complete()
}

func TestWaitAll(t *testing.T) {
	e := New()
	a, b := NewDone(e), NewDone(e)
	var doneAt Time
	e.Go("waiter", func(p *Proc) {
		WaitAll(p, a, b)
		doneAt = p.Now()
	})
	e.Go("x", func(p *Proc) { p.Sleep(time.Second); a.Complete() })
	e.Go("y", func(p *Proc) { p.Sleep(4 * time.Second); b.Complete() })
	e.Run()
	if doneAt != 4*time.Second {
		t.Fatalf("WaitAll resumed at %v, want 4s", doneAt)
	}
}

func TestGoAtStartsLater(t *testing.T) {
	e := New()
	var started Time
	e.GoAt(7*time.Second, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 7*time.Second {
		t.Fatalf("started at %v, want 7s", started)
	}
}
