package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestResourceLimitsConcurrency(t *testing.T) {
	e := New()
	r := NewResource(e, "slots", 2)
	var maxActive, active int
	for i := 0; i < 6; i++ {
		e.Go("worker", func(p *Proc) {
			r.Acquire(p, 1)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(time.Second)
			active--
			r.Release(1)
		})
	}
	e.Run()
	if maxActive != 2 {
		t.Fatalf("max concurrent = %d, want 2", maxActive)
	}
	// 6 workers, 2 slots, 1s each: finishes at 3s.
	if e.Now() != 3*time.Second {
		t.Fatalf("finished at %v, want 3s", e.Now())
	}
}

func TestResourceFIFOAdmission(t *testing.T) {
	e := New()
	r := NewResource(e, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.GoAt(Time(i)*time.Millisecond, "w", func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(time.Second)
			r.Release(1)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("admission not FIFO: %v", order)
		}
	}
}

func TestResourceNoOvertaking(t *testing.T) {
	// A waiter needing 2 units must not be overtaken by a later waiter
	// needing 1, even when 1 unit is free.
	e := New()
	r := NewResource(e, "r", 2)
	var order []string
	e.Go("hog", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * time.Second)
		r.Release(1)
	})
	e.GoAt(time.Second, "big", func(p *Proc) {
		r.Acquire(p, 2)
		order = append(order, "big")
		r.Release(2)
	})
	e.GoAt(2*time.Second, "small", func(p *Proc) {
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	e.Run()
	if len(order) != 2 || order[0] != "big" {
		t.Fatalf("overtaking occurred: %v", order)
	}
}

func TestResourceAcquireTooMuchPanics(t *testing.T) {
	e := New()
	r := NewResource(e, "r", 1)
	e.Go("greedy", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic acquiring beyond capacity")
			}
		}()
		r.Acquire(p, 2)
	})
	func() {
		defer func() { recover() }() // process panic propagates; absorb
		e.Run()
	}()
}

func TestResourceUse(t *testing.T) {
	e := New()
	r := NewResource(e, "r", 1)
	var end Time
	e.Go("a", func(p *Proc) { r.Use(p, 1, 2*time.Second) })
	e.Go("b", func(p *Proc) {
		r.Use(p, 1, 2*time.Second)
		end = p.Now()
	})
	e.Run()
	if end != 4*time.Second {
		t.Fatalf("second Use finished at %v, want 4s", end)
	}
}

func TestQueuePutGet(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Second)
			q.Put(i)
		}
		q.Close()
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestQueueMultipleConsumersFIFO(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	per := make(map[string][]int)
	for _, name := range []string{"c1", "c2"} {
		name := name
		e.Go(name, func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				per[name] = append(per[name], v)
				p.Sleep(time.Second)
			}
		})
	}
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 6; i++ {
			q.Put(i)
		}
		p.Sleep(10 * time.Second)
		q.Close()
	})
	e.Run()
	total := len(per["c1"]) + len(per["c2"])
	if total != 6 {
		t.Fatalf("consumed %d items, want 6 (%v)", total, per)
	}
}

func TestQueueTryGet(t *testing.T) {
	e := New()
	q := NewQueue[string](e)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put("x")
	if v, ok := q.TryGet(); !ok || v != "x" {
		t.Fatalf("TryGet = %q, %v", v, ok)
	}
}

func TestQueueCloseUnblocksWaiters(t *testing.T) {
	e := New()
	q := NewQueue[int](e)
	unblocked := 0
	for i := 0; i < 3; i++ {
		e.Go("c", func(p *Proc) {
			if _, ok := q.Get(p); !ok {
				unblocked++
			}
		})
	}
	e.Go("closer", func(p *Proc) {
		p.Sleep(time.Second)
		q.Close()
	})
	e.Run()
	if unblocked != 3 {
		t.Fatalf("unblocked = %d, want 3", unblocked)
	}
}

func TestLinkSingleTransferTime(t *testing.T) {
	e := New()
	l := NewLink(e, "nic", 100) // 100 B/s
	var end Time
	e.Go("tx", func(p *Proc) {
		l.Transfer(p, 500)
		end = p.Now()
	})
	e.Run()
	if end != 5*time.Second {
		t.Fatalf("500 B at 100 B/s finished at %v, want 5s", end)
	}
	if l.BytesMoved() != 500 {
		t.Fatalf("BytesMoved = %d, want 500", l.BytesMoved())
	}
}

func TestLinkFairSharing(t *testing.T) {
	// Two equal transfers started together share the link and finish
	// together in twice the solo time.
	e := New()
	l := NewLink(e, "nic", 100)
	var ends []Time
	for i := 0; i < 2; i++ {
		e.Go("tx", func(p *Proc) {
			l.Transfer(p, 500)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	for _, end := range ends {
		if end != 10*time.Second {
			t.Fatalf("shared transfer finished at %v, want 10s", end)
		}
	}
}

func TestLinkLateJoinerSlowsEarlier(t *testing.T) {
	// T1 moves 1000 B solo for 5 s (500 B done), then T2 (250 B) joins.
	// They share 50 B/s each; T2 finishes at 5+5=10 s; T1 then has 250 B
	// left at full rate: 10+2.5 = 12.5 s.
	e := New()
	l := NewLink(e, "nic", 100)
	var t1End, t2End Time
	e.Go("t1", func(p *Proc) {
		l.Transfer(p, 1000)
		t1End = p.Now()
	})
	e.GoAt(5*time.Second, "t2", func(p *Proc) {
		l.Transfer(p, 250)
		t2End = p.Now()
	})
	e.Run()
	if t2End != 10*time.Second {
		t.Fatalf("t2 finished at %v, want 10s", t2End)
	}
	want := 12*time.Second + 500*time.Millisecond
	if diff := (t1End - want); diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("t1 finished at %v, want ~%v", t1End, want)
	}
}

func TestLinkZeroByteTransferCompletesImmediately(t *testing.T) {
	e := New()
	l := NewLink(e, "nic", 100)
	var end Time
	e.Go("tx", func(p *Proc) {
		l.Transfer(p, 0)
		end = p.Now()
	})
	e.Run()
	if end != 0 {
		t.Fatalf("zero-byte transfer took %v", end)
	}
}

func TestLinkStartWaitAllConcurrent(t *testing.T) {
	// One process driving two concurrent transfers via Start/WaitAll gets
	// fair-shared timing, not sequential timing.
	e := New()
	l := NewLink(e, "nic", 100)
	var end Time
	e.Go("driver", func(p *Proc) {
		a := l.Start(500)
		b := l.Start(500)
		WaitAll(p, a, b)
		end = p.Now()
	})
	e.Run()
	if end != 10*time.Second {
		t.Fatalf("concurrent pair finished at %v, want 10s", end)
	}
}

func TestLinkManyTransfersConserveBytes(t *testing.T) {
	e := New()
	l := NewLink(e, "nic", 1e6)
	const n = 50
	var total int64
	for i := 1; i <= n; i++ {
		sz := int64(i * 1000)
		total += sz
		e.GoAt(Time(i)*time.Millisecond, "tx", func(p *Proc) {
			l.Transfer(p, sz)
		})
	}
	e.Run()
	if l.BytesMoved() != total {
		t.Fatalf("BytesMoved = %d, want %d", l.BytesMoved(), total)
	}
	if l.ActiveTransfers() != 0 {
		t.Fatalf("ActiveTransfers = %d after Run", l.ActiveTransfers())
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.001, 1, 128.5, 1e-9} {
		got := FromSeconds(s).Seconds()
		if got < s || got > s+1e-8 {
			t.Fatalf("FromSeconds(%g).Seconds() = %g", s, got)
		}
	}
	if FromSeconds(-1) != 0 {
		t.Fatal("negative seconds should clamp to 0")
	}
}

func TestLinkConservationQuickProperty(t *testing.T) {
	// quick.Check: arbitrary transfer sizes and start times always
	// conserve bytes and drain the link.
	f := func(sizes []uint16, starts []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		e := New()
		l := NewLink(e, "q", 1e4)
		var want int64
		for i, s := range sizes {
			n := int64(s) + 1
			want += n
			var at Time
			if i < len(starts) {
				at = Time(starts[i]) * time.Millisecond
			}
			e.GoAt(at, "tx", func(p *Proc) { l.Transfer(p, n) })
		}
		e.Run()
		return l.BytesMoved() == want && l.ActiveTransfers() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
