package des

import (
	"fmt"
	"math"
)

// Link models a bandwidth-shared channel with processor-sharing semantics:
// when k transfers are active, each progresses at rate/k bytes per second.
// This matches how concurrent TCP flows share a NIC or a switch port closely
// enough for shuffle-contention modelling, and it is what makes reduce-side
// copy times stretch when many copiers fetch at once.
//
// A Link recomputes the earliest completion whenever its active set changes
// and schedules exactly one pending event, so a transfer costs O(log n)
// events overall.
type Link struct {
	eng       *Engine
	name      string
	rate      float64 // bytes per second of virtual time
	active    []*transfer
	lastTouch Time
	pending   *Event
	moved     int64 // total bytes completed, for accounting
}

type transfer struct {
	total     float64
	remaining float64
	done      *Done
}

// NewLink creates a link with the given capacity in bytes/second.
func NewLink(e *Engine, name string, bytesPerSecond float64) *Link {
	if bytesPerSecond <= 0 {
		panic(fmt.Sprintf("des: link %q needs positive rate, got %g", name, bytesPerSecond))
	}
	return &Link{eng: e, name: name, rate: bytesPerSecond, lastTouch: e.now}
}

// Rate returns the link capacity in bytes/second.
func (l *Link) Rate() float64 { return l.rate }

// ActiveTransfers returns the number of in-flight transfers.
func (l *Link) ActiveTransfers() int { return len(l.active) }

// BytesMoved returns the total bytes of completed transfers.
func (l *Link) BytesMoved() int64 { return l.moved }

// Transfer moves n bytes across the link, blocking the process until the
// transfer completes under fair sharing with all concurrent transfers.
func (l *Link) Transfer(p *Proc, n int64) {
	l.Start(n).Wait(p)
}

// Start begins a transfer of n bytes and returns a latch that completes when
// the bytes have moved. It can be called from kernel context; combining Start
// with WaitAll lets one process drive several concurrent transfers.
func (l *Link) Start(n int64) *Done {
	d := NewDone(l.eng)
	if n <= 0 {
		d.Complete()
		return d
	}
	l.settle()
	l.active = append(l.active, &transfer{total: float64(n), remaining: float64(n), done: d})
	l.reschedule()
	return d
}

// settle applies progress since lastTouch to every active transfer.
func (l *Link) settle() {
	now := l.eng.now
	if now == l.lastTouch || len(l.active) == 0 {
		l.lastTouch = now
		return
	}
	elapsed := now.Seconds() - l.lastTouch.Seconds()
	share := l.rate / float64(len(l.active))
	progress := share * elapsed
	for _, t := range l.active {
		t.remaining -= progress
	}
	l.lastTouch = now
}

// reschedule computes the next completion time and (re)schedules the single
// pending event.
func (l *Link) reschedule() {
	if l.pending != nil {
		l.pending.Cancel()
		l.pending = nil
	}
	if len(l.active) == 0 {
		return
	}
	minRem := math.Inf(1)
	for _, t := range l.active {
		if t.remaining < minRem {
			minRem = t.remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	share := l.rate / float64(len(l.active))
	dt := secondsToTime(minRem / share)
	l.pending = l.eng.After(dt, l.complete)
}

// complete fires when the earliest transfer(s) finish.
func (l *Link) complete() {
	l.pending = nil
	l.settle()
	// Numerical slack: transfers within half a byte of done are done. The
	// clock has nanosecond granularity, so rounding can leave sub-byte
	// residue that must not spin the event loop.
	const eps = 0.5
	kept := l.active[:0]
	for _, t := range l.active {
		if t.remaining <= eps {
			l.moved += int64(t.total + 0.5)
			t.done.Complete()
		} else {
			kept = append(kept, t)
		}
	}
	// Zero dropped slots so the backing array does not retain latches.
	for i := len(kept); i < len(l.active); i++ {
		l.active[i] = nil
	}
	l.active = kept
	l.reschedule()
}

// secondsToTime converts a float seconds quantity to virtual Time, rounding
// up so a transfer never completes early.
func secondsToTime(s float64) Time {
	if s <= 0 {
		return 0
	}
	ns := math.Ceil(s * 1e9)
	if ns >= float64(math.MaxInt64) {
		return Infinity
	}
	return Time(ns)
}

// Seconds converts virtual Time to float seconds; it mirrors
// time.Duration.Seconds and exists for symmetry with FromSeconds.
func Seconds(t Time) float64 { return t.Seconds() }

// FromSeconds converts float seconds to virtual Time, rounding up.
func FromSeconds(s float64) Time { return secondsToTime(s) }
