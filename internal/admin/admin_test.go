package admin

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/trace"
)

// get fetches a path from the server and returns status and body.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestEndpoints exercises every admin route against a populated registry
// and tracer: /metrics shows counters, /trace.json is a valid Chrome
// trace, /timeline renders the spans, and the pprof handlers answer.
func TestEndpoints(t *testing.T) {
	met := metrics.NewRegistry()
	met.Counter("rpc.calls.heartbeat").Add(42)
	tr := trace.New("jobtracker")
	root := tr.StartRoot("job", trace.KindJob)
	task := tr.StartChild(root.Context(), "m0", trace.KindTask)
	task.End()
	root.End()

	s, err := New("127.0.0.1:0", met, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body := get(t, s, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "rpc.calls.heartbeat") {
		t.Errorf("/metrics = %d %q, want counter in body", code, body)
	}

	code, body = get(t, s, "/trace.json")
	if code != http.StatusOK {
		t.Fatalf("/trace.json = %d", code)
	}
	st, err := trace.ValidateChrome([]byte(body))
	if err != nil {
		t.Fatalf("/trace.json body does not validate: %v", err)
	}
	if st.Spans != 2 {
		t.Errorf("/trace.json has %d spans, want 2", st.Spans)
	}

	code, body = get(t, s, "/timeline")
	if code != http.StatusOK || !strings.Contains(body, "m0") {
		t.Errorf("/timeline = %d, body missing span row:\n%s", code, body)
	}

	code, body = get(t, s, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, want index with goroutine profile", code)
	}
	code, _ = get(t, s, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

// TestNilBackends: a server over nil registry and tracer must serve empty
// content, not panic — both backends are nil-safe by contract.
func TestNilBackends(t *testing.T) {
	s, err := New("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _ := get(t, s, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics on nil registry = %d", code)
	}
	code, body := get(t, s, "/trace.json")
	if code != http.StatusOK {
		t.Errorf("/trace.json on nil tracer = %d", code)
	}
	if !strings.Contains(body, "traceEvents") {
		t.Errorf("/trace.json on nil tracer is not a trace-event document: %q", body)
	}
	if code, _ := get(t, s, "/timeline"); code != http.StatusOK {
		t.Errorf("/timeline on nil tracer = %d", code)
	}
}

// TestCloseIdempotent: Close twice is fine, and the port stops answering.
func TestCloseIdempotent(t *testing.T) {
	s, err := New("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after Close")
	}
}
