package admin

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/obs"
	"github.com/ict-repro/mpid/internal/trace"
)

// getResp fetches a path and returns the full response (header access).
func getResp(t *testing.T, s *Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, b.String()
}

// TestMetricsPromLints is the format gate for the scrape endpoint: the live
// /metrics.prom body must pass the package's own OpenMetrics lint and carry
// the exposition Content-Type.
func TestMetricsPromLints(t *testing.T) {
	met := metrics.NewRegistry()
	met.Counter("rpc.calls.heartbeat").Add(42)
	met.Counter("serve.submitted").Inc()
	met.Gauge("serve.running").Set(2)
	for i := 1; i <= 50; i++ {
		met.Timer("serve.job_latency").Observe(float64(i) / 100)
	}
	s, err := New("127.0.0.1:0", met, trace.New("jobtracker"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, body := getResp(t, s, "/metrics.prom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.prom = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	if err := obs.LintProm([]byte(body)); err != nil {
		t.Fatalf("/metrics.prom fails format lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"mpid_rpc_calls_heartbeat_total 42",
		"mpid_serve_running 2",
		"mpid_serve_job_latency_count 50",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics.prom missing %q:\n%s", want, body)
		}
	}
}

// TestObservabilityPages wires the obs-backed extra pages onto a server and
// exercises /events, /healthz (both verdicts) and /series[.json].
func TestObservabilityPages(t *testing.T) {
	met := metrics.NewRegistry()
	rec := obs.NewRecorder(2)
	rec.Emit(obs.Event{Type: obs.EvJobAdmitted, Job: 1, Tenant: "alice"})
	rec.Emit(obs.Event{Type: obs.EvSpill, Job: 1, Task: "m0"})
	rec.Emit(obs.Event{Type: obs.EvJobDone, Job: 1}) // wraps the 2-cap ring

	healthy := true
	h := obs.NewHealth()
	h.Register("probe", func() obs.Status {
		if healthy {
			return obs.Healthy("all trackers answering")
		}
		return obs.Unhealthy("1 dead tracker under recovery")
	})

	smp := obs.NewSampler(met, obs.SeriesConfig{Gauges: []string{"serve.running"}})
	met.Gauge("serve.running").Set(3)
	smp.Sample(time.Now())

	extras := append([]Page{EventsPage(rec), HealthPage(h)}, SeriesPages(smp)...)
	s, err := New("127.0.0.1:0", met, nil, extras...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, body := getResp(t, s, "/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/events Content-Type = %q", ct)
	}
	if !strings.Contains(body, "spill") || !strings.Contains(body, "job.done") {
		t.Errorf("/events missing retained events:\n%s", body)
	}
	if !strings.Contains(body, "1 older events dropped") {
		t.Errorf("/events missing drop count after ring wrap:\n%s", body)
	}
	if strings.Contains(body, "job.admitted") {
		t.Errorf("/events shows an event the ring dropped:\n%s", body)
	}

	resp, body = getResp(t, s, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("/healthz healthy = %d %q", resp.StatusCode, body)
	}
	healthy = false
	resp, body = getResp(t, s, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz unhealthy = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, "1 dead tracker") {
		t.Errorf("/healthz body missing failing detail:\n%s", body)
	}

	resp, body = getResp(t, s, "/series.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/series.json = %d", resp.StatusCode)
	}
	var snap obs.SeriesSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/series.json is not valid JSON: %v\n%s", err, body)
	}
	if len(snap.Series) != 1 || snap.Series[0].Name != "serve.running" {
		t.Fatalf("/series.json = %+v, want the serve.running series", snap)
	}

	resp, body = getResp(t, s, "/series?width=10")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "serve.running") {
		t.Fatalf("/series = %d:\n%s", resp.StatusCode, body)
	}
}

// TestObsPagesNilBackends: the obs pages keep the admin nil-tolerance
// contract — nil recorder, health and sampler serve empty content.
func TestObsPagesNilBackends(t *testing.T) {
	extras := append([]Page{EventsPage(nil), HealthPage(nil)}, SeriesPages(nil)...)
	s, err := New("127.0.0.1:0", nil, nil, extras...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, path := range []string{"/events", "/healthz", "/series", "/series.json", "/metrics.prom"} {
		resp, body := getResp(t, s, path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with nil backends = %d\n%s", path, resp.StatusCode, body)
		}
	}
	if err := obs.LintProm([]byte(promBody(t, s))); err != nil {
		t.Errorf("empty /metrics.prom fails lint: %v", err)
	}
}

func promBody(t *testing.T, s *Server) string {
	t.Helper()
	_, body := getResp(t, s, "/metrics.prom")
	return body
}
