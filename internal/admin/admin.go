// Package admin is the live observability endpoint: a small HTTP server
// exposing the job's metrics registry, its trace in Chrome trace-event
// form, an ASCII timeline, and net/http/pprof — the runtime introspection
// a real Hadoop cluster gets from its web UIs and JMX, scaled down to one
// process. The hadoop engine starts one per job when Config.AdminAddr is
// set; cmd/mpid-job and cmd/mpid-shuffle expose it behind -admin.
package admin

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/obs"
	"github.com/ict-repro/mpid/internal/trace"
)

// Server serves the admin endpoints over one listener:
//
//	/metrics        text snapshot of the metrics registry
//	/metrics.prom   the same snapshot in OpenMetrics text exposition
//	/trace.json     Chrome trace-event JSON of the spans collected so far
//	/timeline       fixed-width ASCII Gantt of the same spans
//	/debug/pprof/   the standard net/http/pprof handlers
//
// plus whatever extra pages the caller mounts (EventsPage, HealthPage,
// SeriesPages). Reads are live: each request snapshots the
// registry/tracer at that moment, so polling /metrics during a job
// watches counters move.
type Server struct {
	met *metrics.Registry
	tr  *trace.Tracer

	srv *http.Server
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Page is an extra endpoint mounted on the admin mux — how long-lived
// daemons (cmd/mpid-serve) add service-specific views like /jobs without
// the admin package knowing about them.
type Page struct {
	// Path is the mount point, e.g. "/jobs".
	Path string
	// Handler serves it.
	Handler http.HandlerFunc
}

// New binds addr (use "127.0.0.1:0" for an ephemeral port) and starts
// serving. A nil registry or tracer is allowed and serves empty content.
// Extra pages, when given, are mounted alongside the built-in endpoints.
func New(addr string, met *metrics.Registry, tr *trace.Tracer, extras ...Page) (*Server, error) {
	s := &Server{met: met, tr: tr}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.prom", s.handleMetricsProm)
	mux.HandleFunc("/trace.json", s.handleTrace)
	mux.HandleFunc("/timeline", s.handleTimeline)
	for _, p := range extras {
		mux.HandleFunc(p.Path, p.Handler)
	}
	// pprof registers itself on http.DefaultServeMux; wire its handlers
	// onto this private mux instead so the admin server is self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	// ReadHeaderTimeout keeps a stalled client from pinning a serve
	// goroutine forever — this server lives as long as the daemon does.
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.srv.Serve(ln) // returns on Close
	}()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(s.met.Snapshot().String()))
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	data, err := trace.ChromeTrace(s.tr.Spans())
	if err != nil {
		http.Error(w, "admin: trace export: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(trace.RenderTimeline(s.tr.Spans(), 80)))
}

// PromContentType is the Content-Type /metrics.prom responds with.
const PromContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	obs.WriteProm(w, "mpid", s.met.Snapshot())
}

// EventsPage serves the flight recorder as a /events text table (newest
// retained events, oldest first), with a drop count when the ring has
// wrapped. A nil recorder serves an empty table.
func EventsPage(rec *obs.Recorder) Page {
	return Page{Path: "/events", Handler: func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if d := rec.Dropped(); d > 0 {
			fmt.Fprintf(w, "(%d older events dropped by the ring)\n", d)
		}
		w.Write([]byte(obs.RenderEvents(rec.Events())))
	}}
}

// HealthPage serves /healthz from an obs.Health: 200 with "ok" plus one
// line per check when every check passes, 503 otherwise. A nil Health is
// always healthy — a daemon with no checks registered has nothing to fail.
func HealthPage(h *obs.Health) Page {
	return Page{Path: "/healthz", Handler: func(w http.ResponseWriter, r *http.Request) {
		ok, results := h.Evaluate()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write([]byte(obs.RenderHealth(ok, results)))
	}}
}

// SeriesPages serves a sampler's history: /series.json (the machine view)
// and /series (ASCII sparklines; ?width=N sets the window). A nil sampler
// serves empty history.
func SeriesPages(smp *obs.Sampler) []Page {
	return []Page{
		{Path: "/series.json", Handler: func(w http.ResponseWriter, r *http.Request) {
			data, err := smp.MarshalJSON()
			if err != nil {
				http.Error(w, "admin: series export: "+err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
		}},
		{Path: "/series", Handler: func(w http.ResponseWriter, r *http.Request) {
			width, _ := strconv.Atoi(r.URL.Query().Get("width"))
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(obs.RenderSeries(smp.Snapshot(), width)))
		}},
	}
}
