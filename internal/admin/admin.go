// Package admin is the live observability endpoint: a small HTTP server
// exposing the job's metrics registry, its trace in Chrome trace-event
// form, an ASCII timeline, and net/http/pprof — the runtime introspection
// a real Hadoop cluster gets from its web UIs and JMX, scaled down to one
// process. The hadoop engine starts one per job when Config.AdminAddr is
// set; cmd/mpid-job and cmd/mpid-shuffle expose it behind -admin.
package admin

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/trace"
)

// Server serves the admin endpoints over one listener:
//
//	/metrics        text snapshot of the metrics registry
//	/trace.json     Chrome trace-event JSON of the spans collected so far
//	/timeline       fixed-width ASCII Gantt of the same spans
//	/debug/pprof/   the standard net/http/pprof handlers
//
// Reads are live: each request snapshots the registry/tracer at that
// moment, so polling /metrics during a job watches counters move.
type Server struct {
	met *metrics.Registry
	tr  *trace.Tracer

	srv *http.Server
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Page is an extra endpoint mounted on the admin mux — how long-lived
// daemons (cmd/mpid-serve) add service-specific views like /jobs without
// the admin package knowing about them.
type Page struct {
	// Path is the mount point, e.g. "/jobs".
	Path string
	// Handler serves it.
	Handler http.HandlerFunc
}

// New binds addr (use "127.0.0.1:0" for an ephemeral port) and starts
// serving. A nil registry or tracer is allowed and serves empty content.
// Extra pages, when given, are mounted alongside the built-in endpoints.
func New(addr string, met *metrics.Registry, tr *trace.Tracer, extras ...Page) (*Server, error) {
	s := &Server{met: met, tr: tr}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace.json", s.handleTrace)
	mux.HandleFunc("/timeline", s.handleTimeline)
	for _, p := range extras {
		mux.HandleFunc(p.Path, p.Handler)
	}
	// pprof registers itself on http.DefaultServeMux; wire its handlers
	// onto this private mux instead so the admin server is self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.srv.Serve(ln) // returns on Close
	}()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(s.met.Snapshot().String()))
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	data, err := trace.ChromeTrace(s.tr.Spans())
	if err != nil {
		http.Error(w, "admin: trace export: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(trace.RenderTimeline(s.tr.Spans(), 80)))
}
