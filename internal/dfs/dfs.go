// Package dfs is a miniature Hadoop distributed file system: the storage
// substrate Hadoop jobs read from and write to, reimplemented from scratch
// so the MapReduce framework in this repository can exercise the same
// block-oriented I/O path the paper's system assumes ("we distribute all
// input data across all nodes to guarantee the data accessing locally as
// in Hadoop", §IV.A).
//
// Faithful to the HDFS design points that matter here:
//
//   - a NameNode holds metadata only: files are sequences of fixed-size
//     blocks, each block replicated on several DataNodes;
//   - writes cut the stream into blocks and place replicas round-robin
//     across DataNodes (rack-unaware, as a single-switch cluster is);
//   - reads fetch block-by-block, preferring a hinted "local" DataNode and
//     failing over to any live replica;
//   - DataNodes can fail; reads survive while any replica lives, and the
//     NameNode can report under-replicated blocks for re-replication.
//
// Storage is in-memory (the simulators model disk timing; this package
// models structure and fault behaviour).
package dfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/trace"
)

// Errors returned by the file system.
var (
	ErrNotFound     = errors.New("dfs: file not found")
	ErrExists       = errors.New("dfs: file already exists")
	ErrBlockLost    = errors.New("dfs: all replicas of a block are lost")
	ErrDataNodeDown = errors.New("dfs: datanode is down")
	ErrWriterClosed = errors.New("dfs: writer already closed")
	ErrNoDataNodes  = errors.New("dfs: no datanodes available")
	ErrBlockMissing = errors.New("dfs: datanode does not hold block")
)

// Config sets file system parameters.
type Config struct {
	// BlockSize is the block size in bytes (default 64 MB, the paper's
	// setting).
	BlockSize int64
	// Replication is the replica count per block (HDFS default 3).
	Replication int
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 64 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	return c
}

// BlockID identifies one block of one file.
type BlockID struct {
	Path  string
	Index int
}

// String renders the id like an HDFS block name.
func (b BlockID) String() string { return fmt.Sprintf("blk_%s_%d", b.Path, b.Index) }

// BlockInfo describes a block's placement, the information the MapReduce
// scheduler uses for locality.
type BlockInfo struct {
	ID        BlockID
	Size      int64
	Locations []int // datanode ids holding a replica, primary first
}

// FileInfo describes a file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks int
}

// DataNode stores block replicas. All methods are safe for concurrent use.
type DataNode struct {
	id   int
	comp string // injector component name, "dfs.datanode<id>"

	mu     sync.RWMutex
	blocks map[BlockID][]byte
	down   bool
	inj    *faults.Injector
	met    *metrics.Registry
}

// ID returns the datanode id.
func (d *DataNode) ID() int { return d.id }

// inject runs the injection point for one I/O operation. An injected crash
// fails the node for good (replicas lost, I/O rejected) before the error is
// returned, so readers observe an ordinary dead-node failure.
func (d *DataNode) inject(op, peer string) error {
	d.mu.RLock()
	inj := d.inj
	d.mu.RUnlock()
	err := inj.Check(d.comp, op, peer)
	if err == nil {
		return nil
	}
	if faults.IsCrash(err) {
		d.Fail()
	}
	return err
}

// store keeps a replica. The caller must not modify data afterwards.
func (d *DataNode) store(id BlockID, data []byte) error {
	if err := d.inject("write", id.Path); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down {
		return ErrDataNodeDown
	}
	d.blocks[id] = data
	d.met.Counter("dfs.writes").Inc()
	d.met.Counter("dfs.write_bytes").Add(int64(len(data)))
	return nil
}

// Read returns a replica's content.
func (d *DataNode) Read(id BlockID) ([]byte, error) {
	if err := d.inject("read", id.Path); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.down {
		return nil, ErrDataNodeDown
	}
	data, ok := d.blocks[id]
	if !ok {
		return nil, ErrBlockMissing
	}
	d.met.Counter("dfs.reads").Inc()
	d.met.Counter("dfs.read_bytes").Add(int64(len(data)))
	return data, nil
}

// BlockCount returns the number of replicas held.
func (d *DataNode) BlockCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.blocks)
}

// Fail simulates a crash: the node drops its replicas and rejects I/O.
func (d *DataNode) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down = true
	d.blocks = make(map[BlockID][]byte)
}

// Recover brings a failed node back, empty.
func (d *DataNode) Recover() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down = false
}

// Down reports whether the node is failed.
func (d *DataNode) Down() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.down
}

// NameNode holds the namespace and block map.
type NameNode struct {
	cfg Config
	met *metrics.Registry
	tr  *trace.Tracer

	mu        sync.Mutex
	files     map[string]*fileMeta
	datanodes []*DataNode
	rr        int // round-robin placement cursor
}

type fileMeta struct {
	size   int64
	blocks []BlockInfo
}

// NewCluster creates a NameNode with n empty DataNodes.
func NewCluster(n int, cfg Config) (*NameNode, error) {
	if n <= 0 {
		return nil, ErrNoDataNodes
	}
	cfg = cfg.withDefaults()
	if cfg.Replication > n {
		cfg.Replication = n
	}
	nn := &NameNode{cfg: cfg, files: make(map[string]*fileMeta)}
	for i := 0; i < n; i++ {
		nn.datanodes = append(nn.datanodes, &DataNode{
			id:     i,
			comp:   fmt.Sprintf("dfs.datanode%d", i),
			blocks: make(map[BlockID][]byte),
		})
	}
	return nn, nil
}

// SetInjector wires a fault injector into every DataNode. Node i is the
// component "dfs.datanode<i>" with injection points "read" and "write"
// (peer = file path); an injected crash fails the node permanently, the
// same fault Fail simulates.
func (nn *NameNode) SetInjector(inj *faults.Injector) {
	for _, d := range nn.datanodes {
		d.mu.Lock()
		d.inj = inj
		d.mu.Unlock()
	}
}

// SetMetrics wires a metrics registry through the cluster: DataNode block
// I/O reports "dfs.reads"/"dfs.writes" counts and
// "dfs.read_bytes"/"dfs.write_bytes", replica failovers during block reads
// report "dfs.read_failovers", and re-replication reports
// "dfs.rereplications". A nil registry records nothing.
func (nn *NameNode) SetMetrics(m *metrics.Registry) {
	nn.met = m
	for _, d := range nn.datanodes {
		d.mu.Lock()
		d.met = m
		d.mu.Unlock()
	}
}

// SetTracer wires a span collector into the cluster: every block read and
// block commit records a trace.KindDFS span (proc = the tracer's process),
// with replica failovers annotated. A nil tracer records nothing.
func (nn *NameNode) SetTracer(tr *trace.Tracer) {
	nn.tr = tr
}

// Config returns the effective configuration.
func (nn *NameNode) Config() Config { return nn.cfg }

// DataNode returns datanode i.
func (nn *NameNode) DataNode(i int) *DataNode { return nn.datanodes[i] }

// DataNodeCount returns the cluster size.
func (nn *NameNode) DataNodeCount() int { return len(nn.datanodes) }

// liveNodes returns the ids of nodes currently up.
func (nn *NameNode) liveNodes() []int {
	var live []int
	for _, d := range nn.datanodes {
		if !d.Down() {
			live = append(live, d.id)
		}
	}
	return live
}

// placeReplicas chooses Replication distinct live datanodes round-robin.
func (nn *NameNode) placeReplicas() ([]int, error) {
	live := nn.liveNodes()
	if len(live) == 0 {
		return nil, ErrNoDataNodes
	}
	k := nn.cfg.Replication
	if k > len(live) {
		k = len(live)
	}
	locs := make([]int, 0, k)
	for i := 0; i < k; i++ {
		locs = append(locs, live[(nn.rr+i)%len(live)])
	}
	nn.rr = (nn.rr + 1) % len(live)
	return locs, nil
}

// Create opens a new file for writing. The writer buffers a block at a
// time and commits each block's replicas as the boundary is crossed.
func (nn *NameNode) Create(path string) (*FileWriter, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, dup := nn.files[path]; dup {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	nn.files[path] = &fileMeta{} // reserve the name
	return &FileWriter{nn: nn, path: path}, nil
}

// Stat describes a file.
func (nn *NameNode) Stat(path string) (FileInfo, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return FileInfo{Path: path, Size: f.size, Blocks: len(f.blocks)}, nil
}

// List returns all file paths, sorted.
func (nn *NameNode) List() []string {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	paths := make([]string, 0, len(nn.files))
	for p := range nn.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Delete removes a file and its replicas.
func (nn *NameNode) Delete(path string) error {
	nn.mu.Lock()
	f, ok := nn.files[path]
	if !ok {
		nn.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(nn.files, path)
	nn.mu.Unlock()
	for _, b := range f.blocks {
		for _, loc := range b.Locations {
			d := nn.datanodes[loc]
			d.mu.Lock()
			delete(d.blocks, b.ID)
			d.mu.Unlock()
		}
	}
	return nil
}

// Blocks returns a file's block placements.
func (nn *NameNode) Blocks(path string) ([]BlockInfo, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([]BlockInfo, len(f.blocks))
	copy(out, f.blocks)
	return out, nil
}

// Open returns a reader over the whole file.
func (nn *NameNode) Open(path string) (*FileReader, error) {
	blocks, err := nn.Blocks(path)
	if err != nil {
		return nil, err
	}
	return &FileReader{nn: nn, blocks: blocks}, nil
}

// ReadBlock fetches one block's content, preferring the hinted datanode
// (pass -1 for no preference) and failing over across replicas.
func (nn *NameNode) ReadBlock(id BlockID, preferNode int) ([]byte, error) {
	nn.mu.Lock()
	f, ok := nn.files[id.Path]
	if !ok {
		nn.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id.Path)
	}
	if id.Index < 0 || id.Index >= len(f.blocks) {
		nn.mu.Unlock()
		return nil, fmt.Errorf("dfs: block index %d out of range for %s", id.Index, id.Path)
	}
	locs := append([]int(nil), f.blocks[id.Index].Locations...)
	nn.mu.Unlock()

	// Try the preferred node first.
	if preferNode >= 0 {
		for i, l := range locs {
			if l == preferNode {
				locs[0], locs[i] = locs[i], locs[0]
				break
			}
		}
	}
	span := nn.tr.StartRoot(fmt.Sprintf("dfs.read %s#%d", id.Path, id.Index), trace.KindDFS)
	defer span.End()
	var lastErr error = ErrBlockLost
	for i, l := range locs {
		data, err := nn.datanodes[l].Read(id)
		if err == nil {
			if i > 0 {
				nn.met.Counter("dfs.read_failovers").Inc()
				span.Annotate("failovers", fmt.Sprint(i))
			}
			span.Annotate("bytes", fmt.Sprint(len(data)))
			span.Annotate("node", fmt.Sprint(l))
			return data, nil
		}
		lastErr = err
	}
	span.Annotate("error", lastErr.Error())
	return nil, fmt.Errorf("%w: %s (last: %v)", ErrBlockLost, id, lastErr)
}

// UnderReplicated reports blocks whose live replica count is below the
// configured replication, the NameNode's re-replication work list.
func (nn *NameNode) UnderReplicated() []BlockInfo {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []BlockInfo
	for _, f := range nn.files {
		for _, b := range f.blocks {
			live := 0
			for _, l := range b.Locations {
				if !nn.datanodes[l].Down() {
					live++
				}
			}
			if live < nn.cfg.Replication {
				out = append(out, b)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Path != out[j].ID.Path {
			return out[i].ID.Path < out[j].ID.Path
		}
		return out[i].ID.Index < out[j].ID.Index
	})
	return out
}

// Rereplicate restores missing replicas of under-replicated blocks from a
// surviving copy onto live nodes not already holding one. It returns the
// number of replicas created.
func (nn *NameNode) Rereplicate() (int, error) {
	created := 0
	for _, b := range nn.UnderReplicated() {
		data, err := nn.ReadBlock(b.ID, -1)
		if err != nil {
			return created, err // all replicas lost: data loss, surface it
		}
		nn.mu.Lock()
		f := nn.files[b.ID.Path]
		meta := &f.blocks[b.ID.Index]
		holding := make(map[int]bool)
		liveLocs := meta.Locations[:0]
		for _, l := range meta.Locations {
			if !nn.datanodes[l].Down() {
				holding[l] = true
				liveLocs = append(liveLocs, l)
			}
		}
		meta.Locations = liveLocs
		for _, l := range nn.liveNodes() {
			if len(meta.Locations) >= nn.cfg.Replication {
				break
			}
			if holding[l] {
				continue
			}
			if err := nn.datanodes[l].store(b.ID, data); err != nil {
				continue
			}
			meta.Locations = append(meta.Locations, l)
			created++
			nn.met.Counter("dfs.rereplications").Inc()
		}
		nn.mu.Unlock()
	}
	return created, nil
}

// --------------------------------------------------------------------------
// FileWriter

// FileWriter streams data into a file, cutting blocks at BlockSize and
// committing replicas as each block completes. It implements io.WriteCloser.
type FileWriter struct {
	nn     *NameNode
	path   string
	buf    []byte
	index  int
	closed bool
}

// Write implements io.Writer.
func (w *FileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrWriterClosed
	}
	total := len(p)
	for len(p) > 0 {
		room := int(w.nn.cfg.BlockSize) - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		if int64(len(w.buf)) == w.nn.cfg.BlockSize {
			if err := w.commitBlock(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// commitBlock places the buffered block's replicas and registers it.
func (w *FileWriter) commitBlock() error {
	if len(w.buf) == 0 {
		return nil
	}
	data := w.buf
	w.buf = nil
	id := BlockID{Path: w.path, Index: w.index}
	w.index++

	w.nn.mu.Lock()
	locs, err := w.nn.placeReplicas()
	if err != nil {
		w.nn.mu.Unlock()
		return err
	}
	f := w.nn.files[w.path]
	f.blocks = append(f.blocks, BlockInfo{ID: id, Size: int64(len(data)), Locations: locs})
	f.size += int64(len(data))
	w.nn.mu.Unlock()

	// Replication pipeline: primary first, then downstream replicas.
	span := w.nn.tr.StartRoot(fmt.Sprintf("dfs.write %s#%d", id.Path, id.Index), trace.KindDFS)
	span.Annotate("bytes", fmt.Sprint(len(data)))
	span.Annotate("replicas", fmt.Sprint(len(locs)))
	defer span.End()
	for _, l := range locs {
		if err := w.nn.datanodes[l].store(id, data); err != nil {
			span.Annotate("error", err.Error())
			return err
		}
	}
	return nil
}

// Close flushes the final partial block. It implements io.Closer and is
// idempotent.
func (w *FileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.commitBlock()
}

// --------------------------------------------------------------------------
// FileReader

// FileReader reads a file sequentially, block by block, failing over
// between replicas. It implements io.Reader.
type FileReader struct {
	nn     *NameNode
	blocks []BlockInfo
	bi     int
	cur    []byte
	pos    int
}

// Read implements io.Reader.
func (r *FileReader) Read(p []byte) (int, error) {
	for r.pos == len(r.cur) {
		if r.bi == len(r.blocks) {
			return 0, io.EOF
		}
		data, err := r.nn.ReadBlock(r.blocks[r.bi].ID, -1)
		if err != nil {
			return 0, err
		}
		r.cur, r.pos = data, 0
		r.bi++
	}
	n := copy(p, r.cur[r.pos:])
	r.pos += n
	return n, nil
}
