package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/ict-repro/mpid/internal/metrics"
)

func newTestCluster(t *testing.T, nodes int, blockSize int64, repl int) *NameNode {
	t.Helper()
	nn, err := NewCluster(nodes, Config{BlockSize: blockSize, Replication: repl})
	if err != nil {
		t.Fatal(err)
	}
	return nn
}

func writeFile(t *testing.T, nn *NameNode, path string, data []byte) {
	t.Helper()
	w, err := nn.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, nn *NameNode, path string) []byte {
	t.Helper()
	r, err := nn.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWriteReadRoundTrip(t *testing.T) {
	nn := newTestCluster(t, 4, 1024, 2)
	payload := bytes.Repeat([]byte("hadoop+mpi "), 500) // ~5.5 blocks
	writeFile(t, nn, "/data/input.txt", payload)
	got := readFile(t, nn, "/data/input.txt")
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip corrupted: %d vs %d bytes", len(got), len(payload))
	}
}

func TestBlockGeometry(t *testing.T) {
	nn := newTestCluster(t, 3, 100, 2)
	writeFile(t, nn, "/f", make([]byte, 250)) // 100+100+50
	info, err := nn.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 250 || info.Blocks != 3 {
		t.Fatalf("Stat = %+v", info)
	}
	blocks, err := nn.Blocks("/f")
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0].Size != 100 || blocks[2].Size != 50 {
		t.Fatalf("block sizes: %d, %d, %d", blocks[0].Size, blocks[1].Size, blocks[2].Size)
	}
	for i, b := range blocks {
		if b.ID.Index != i || b.ID.Path != "/f" {
			t.Fatalf("block %d id = %v", i, b.ID)
		}
		if len(b.Locations) != 2 {
			t.Fatalf("block %d has %d replicas, want 2", i, len(b.Locations))
		}
		if b.Locations[0] == b.Locations[1] {
			t.Fatalf("block %d replicas on same node", i)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	nn := newTestCluster(t, 2, 100, 1)
	writeFile(t, nn, "/empty", nil)
	if got := readFile(t, nn, "/empty"); len(got) != 0 {
		t.Fatalf("empty file read %d bytes", len(got))
	}
	info, _ := nn.Stat("/empty")
	if info.Blocks != 0 {
		t.Fatalf("empty file has %d blocks", info.Blocks)
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	nn := newTestCluster(t, 2, 100, 5)
	if nn.Config().Replication != 2 {
		t.Fatalf("replication = %d, want clamp to 2", nn.Config().Replication)
	}
}

func TestPlacementSpreadsAcrossNodes(t *testing.T) {
	nn := newTestCluster(t, 4, 10, 1)
	writeFile(t, nn, "/spread", make([]byte, 400)) // 40 blocks
	counts := make(map[int]int)
	blocks, _ := nn.Blocks("/spread")
	for _, b := range blocks {
		counts[b.Locations[0]]++
	}
	for node := 0; node < 4; node++ {
		if counts[node] < 5 {
			t.Errorf("node %d holds only %d/40 primaries: %v", node, counts[node], counts)
		}
	}
}

func TestCreateExistingFails(t *testing.T) {
	nn := newTestCluster(t, 2, 100, 1)
	writeFile(t, nn, "/dup", []byte("x"))
	if _, err := nn.Create("/dup"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestOpenMissingFails(t *testing.T) {
	nn := newTestCluster(t, 2, 100, 1)
	if _, err := nn.Open("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := nn.Stat("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat err = %v", err)
	}
}

func TestDeleteRemovesReplicas(t *testing.T) {
	nn := newTestCluster(t, 3, 100, 3)
	writeFile(t, nn, "/gone", make([]byte, 300))
	before := 0
	for i := 0; i < 3; i++ {
		before += nn.DataNode(i).BlockCount()
	}
	if before != 9 { // 3 blocks x 3 replicas
		t.Fatalf("replicas before delete = %d, want 9", before)
	}
	if err := nn.Delete("/gone"); err != nil {
		t.Fatal(err)
	}
	after := 0
	for i := 0; i < 3; i++ {
		after += nn.DataNode(i).BlockCount()
	}
	if after != 0 {
		t.Fatalf("replicas after delete = %d", after)
	}
	if err := nn.Delete("/gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestListSorted(t *testing.T) {
	nn := newTestCluster(t, 2, 100, 1)
	for _, p := range []string{"/c", "/a", "/b"} {
		writeFile(t, nn, p, []byte("x"))
	}
	got := nn.List()
	if fmt.Sprint(got) != "[/a /b /c]" {
		t.Fatalf("List = %v", got)
	}
}

func TestReadSurvivesSingleNodeFailure(t *testing.T) {
	nn := newTestCluster(t, 4, 256, 2)
	payload := bytes.Repeat([]byte("replicated"), 200)
	writeFile(t, nn, "/resilient", payload)
	nn.DataNode(0).Fail()
	got := readFile(t, nn, "/resilient")
	if !bytes.Equal(got, payload) {
		t.Fatal("read after single failure corrupted")
	}
}

func TestReadFailsWhenAllReplicasLost(t *testing.T) {
	nn := newTestCluster(t, 2, 256, 2)
	writeFile(t, nn, "/doomed", make([]byte, 100))
	nn.DataNode(0).Fail()
	nn.DataNode(1).Fail()
	r, err := nn.Open("/doomed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r); !errors.Is(err, ErrBlockLost) {
		t.Fatalf("err = %v, want ErrBlockLost", err)
	}
}

func TestUnderReplicatedReport(t *testing.T) {
	nn := newTestCluster(t, 3, 100, 2)
	writeFile(t, nn, "/watch", make([]byte, 300)) // 3 blocks x 2 replicas
	if ur := nn.UnderReplicated(); len(ur) != 0 {
		t.Fatalf("healthy cluster reports %d under-replicated", len(ur))
	}
	nn.DataNode(1).Fail()
	ur := nn.UnderReplicated()
	if len(ur) == 0 {
		t.Fatal("failure produced no under-replicated blocks")
	}
	for _, b := range ur {
		if b.ID.Path != "/watch" {
			t.Fatalf("unexpected block %v", b.ID)
		}
	}
}

func TestRereplicateRestoresRedundancy(t *testing.T) {
	nn := newTestCluster(t, 4, 100, 2)
	payload := make([]byte, 400)
	for i := range payload {
		payload[i] = byte(i)
	}
	writeFile(t, nn, "/heal", payload)
	nn.DataNode(0).Fail()
	lost := len(nn.UnderReplicated())
	if lost == 0 {
		t.Skip("round-robin placed nothing on node 0 (placement changed?)")
	}
	created, err := nn.Rereplicate()
	if err != nil {
		t.Fatal(err)
	}
	if created == 0 {
		t.Fatal("Rereplicate created nothing")
	}
	if ur := nn.UnderReplicated(); len(ur) != 0 {
		t.Fatalf("%d blocks still under-replicated after heal", len(ur))
	}
	// Fail another node: data must still be readable thanks to healing.
	nn.DataNode(1).Fail()
	if _, err := nn.Rereplicate(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, nn, "/heal")
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted after two failures with healing")
	}
}

func TestReadBlockPrefersHintedNode(t *testing.T) {
	nn := newTestCluster(t, 3, 100, 3)
	writeFile(t, nn, "/local", make([]byte, 100))
	blocks, _ := nn.Blocks("/local")
	for _, node := range blocks[0].Locations {
		if _, err := nn.ReadBlock(blocks[0].ID, node); err != nil {
			t.Fatalf("hinted read via node %d: %v", node, err)
		}
	}
	// Bad hint still succeeds via failover.
	if _, err := nn.ReadBlock(blocks[0].ID, 99); err != nil {
		t.Fatalf("read with bogus hint: %v", err)
	}
}

func TestReadBlockOutOfRange(t *testing.T) {
	nn := newTestCluster(t, 2, 100, 1)
	writeFile(t, nn, "/one", make([]byte, 50))
	if _, err := nn.ReadBlock(BlockID{Path: "/one", Index: 5}, -1); err == nil {
		t.Fatal("out-of-range block read succeeded")
	}
	if _, err := nn.ReadBlock(BlockID{Path: "/ghost", Index: 0}, -1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriterCloseIdempotentAndWriteAfterCloseFails(t *testing.T) {
	nn := newTestCluster(t, 2, 100, 1)
	w, err := nn.Create("/w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("late")); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("write after close err = %v", err)
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	nn := newTestCluster(t, 4, 512, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/concurrent/%d", i)
			payload := bytes.Repeat([]byte{byte(i)}, 2000)
			w, err := nn.Create(path)
			if err != nil {
				errs <- err
				return
			}
			if _, err := w.Write(payload); err != nil {
				errs <- err
				return
			}
			if err := w.Close(); err != nil {
				errs <- err
				return
			}
			r, err := nn.Open(path)
			if err != nil {
				errs <- err
				return
			}
			got, err := io.ReadAll(r)
			if err != nil || !bytes.Equal(got, payload) {
				errs <- fmt.Errorf("file %d corrupted (%v)", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPropertyRoundTripAnySize(t *testing.T) {
	nn := newTestCluster(t, 3, 64, 2)
	rng := rand.New(rand.NewSource(9))
	seq := 0
	f := func(n uint16) bool {
		size := int(n) % 5000
		payload := make([]byte, size)
		rng.Read(payload)
		path := fmt.Sprintf("/prop/%d", seq)
		seq++
		w, err := nn.Create(path)
		if err != nil {
			return false
		}
		// Write in randomly-sized chunks to exercise block boundaries.
		rest := payload
		for len(rest) > 0 {
			k := 1 + rng.Intn(200)
			if k > len(rest) {
				k = len(rest)
			}
			if _, err := w.Write(rest[:k]); err != nil {
				return false
			}
			rest = rest[k:]
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := nn.Open(path)
		if err != nil {
			return false
		}
		got, err := io.ReadAll(r)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestZeroDataNodesRejected(t *testing.T) {
	if _, err := NewCluster(0, Config{}); !errors.Is(err, ErrNoDataNodes) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoverAllowsNewPlacements(t *testing.T) {
	nn := newTestCluster(t, 2, 100, 2)
	nn.DataNode(0).Fail()
	writeFile(t, nn, "/during", make([]byte, 100))
	blocks, _ := nn.Blocks("/during")
	if len(blocks[0].Locations) != 1 {
		t.Fatalf("placement on failed cluster: %v", blocks[0].Locations)
	}
	nn.DataNode(0).Recover()
	if created, err := nn.Rereplicate(); err != nil || created != 1 {
		t.Fatalf("Rereplicate after recover = %d, %v", created, err)
	}
}

func TestMetricsCountBytesAndFailovers(t *testing.T) {
	nn := newTestCluster(t, 4, 256, 2)
	m := metrics.NewRegistry()
	nn.SetMetrics(m)
	payload := bytes.Repeat([]byte("metered"), 200)
	writeFile(t, nn, "/metered", payload)
	readFile(t, nn, "/metered")
	snap := m.Snapshot()
	// Replication 2: every byte is written twice across the cluster.
	if got, want := snap.Counter("dfs.write_bytes"), int64(2*len(payload)); got != want {
		t.Errorf("dfs.write_bytes = %d, want %d", got, want)
	}
	if got, want := snap.Counter("dfs.read_bytes"), int64(len(payload)); got != want {
		t.Errorf("dfs.read_bytes = %d, want %d", got, want)
	}
	if snap.Counter("dfs.read_failovers") != 0 {
		t.Error("healthy cluster recorded read failovers")
	}
	// Round-robin placement makes node 0 the primary replica of some
	// blocks; killing it forces those reads to fail over to the secondary.
	nn.DataNode(0).Fail()
	readFile(t, nn, "/metered")
	if m.Snapshot().Counter("dfs.read_failovers") == 0 {
		t.Error("dfs.read_failovers = 0 after killing primaries, want > 0")
	}
}
