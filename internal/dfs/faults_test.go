package dfs

import (
	"io"
	"strings"
	"testing"

	"github.com/ict-repro/mpid/internal/faults"
)

// TestReadFailsOverWhenDataNodeCrashesMidRead crashes a datanode partway
// through a sequential file read; replica failover must deliver the full,
// correct content anyway.
func TestReadFailsOverWhenDataNodeCrashesMidRead(t *testing.T) {
	nn, err := NewCluster(3, Config{BlockSize: 4, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	content := "twelve bytes"
	w, err := nn.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(w, strings.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Node 0 dies on its first read — mid-file, since it is the primary
	// replica of the first block only.
	inj := faults.New(1, faults.Rule{Component: "dfs.datanode0", Operation: "read", Action: faults.Crash})
	nn.SetInjector(inj)

	r, err := nn.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read across crash: %v", err)
	}
	if string(got) != content {
		t.Fatalf("read %q, want %q", got, content)
	}
	if !nn.DataNode(0).Down() {
		t.Fatal("crashed datanode still reports up")
	}
	// The namenode now sees the blocks as under-replicated and can heal
	// them onto the survivors... but with all three nodes already holding
	// replicas and one dead, replication 3 cannot be met; the work list
	// must still be reported.
	if len(nn.UnderReplicated()) == 0 {
		t.Fatal("no under-replicated blocks reported after crash")
	}
}

// TestWriteFailsWhenReplicaTargetCrashes crashes a replica target on its
// first write: the commit surfaces the failure to the writer.
func TestWriteFailsWhenReplicaTargetCrashes(t *testing.T) {
	nn, err := NewCluster(2, Config{BlockSize: 8, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(1, faults.Rule{Component: "dfs.datanode1", Operation: "write", Action: faults.Crash})
	nn.SetInjector(inj)
	w, err := nn.Create("/g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("data going nowhere")); !faults.IsCrash(err) {
		t.Fatalf("write = %v, want crash", err)
	}
}
