package metrics

import (
	"sync"
	"testing"
	"time"
)

// Child registries give each concurrent job private counters whose updates
// also roll up into the service-wide parent: the per-job view is isolated,
// the parent view is the fleet total.

func TestChildCounterPropagatesToParent(t *testing.T) {
	parent := NewRegistry()
	a, b := parent.NewChild(), parent.NewChild()

	a.Counter("work").Add(3)
	b.Counter("work").Add(7)
	parent.Counter("work").Inc()

	if got := a.Counter("work").Value(); got != 3 {
		t.Fatalf("child a = %d, want 3 (isolated from sibling)", got)
	}
	if got := b.Counter("work").Value(); got != 7 {
		t.Fatalf("child b = %d, want 7", got)
	}
	if got := parent.Counter("work").Value(); got != 11 {
		t.Fatalf("parent = %d, want 11 (3 + 7 + 1)", got)
	}
}

func TestChildGaugeAddPropagatesSetDoesNot(t *testing.T) {
	parent := NewRegistry()
	child := parent.NewChild()

	child.Gauge("inflight").Add(2)
	if got := parent.Gauge("inflight").Value(); got != 2 {
		t.Fatalf("parent gauge after child Add = %d, want 2", got)
	}
	// Set is a local assignment: "this job has 5 in flight" is not a
	// statement about the fleet, so it must not clobber the parent.
	child.Gauge("inflight").Set(5)
	if got := child.Gauge("inflight").Value(); got != 5 {
		t.Fatalf("child gauge = %d, want 5", got)
	}
	if got := parent.Gauge("inflight").Value(); got != 2 {
		t.Fatalf("parent gauge after child Set = %d, want 2 (Set is local)", got)
	}
}

func TestChildTimerPropagates(t *testing.T) {
	parent := NewRegistry()
	child := parent.NewChild()
	child.Timer("latency").ObserveDuration(10 * time.Millisecond)
	child.Timer("latency").ObserveDuration(30 * time.Millisecond)
	if got := parent.Timer("latency").Stats().Count; got != 2 {
		t.Fatalf("parent timer count = %d, want 2", got)
	}
	if got := child.Timer("latency").Stats().Count; got != 2 {
		t.Fatalf("child timer count = %d, want 2", got)
	}
}

// TestChildrenSumToParent is the isolation invariant the job service
// depends on: many children updating concurrently never lose or double a
// count, and the parent is exactly the sum.
func TestChildrenSumToParent(t *testing.T) {
	parent := NewRegistry()
	const children, perChild = 8, 1000
	var wg sync.WaitGroup
	kids := make([]*Registry, children)
	for i := range kids {
		kids[i] = parent.NewChild()
	}
	for _, kid := range kids {
		kid := kid
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perChild; i++ {
				kid.Counter("ops").Inc()
			}
		}()
	}
	wg.Wait()
	var sum int64
	for _, kid := range kids {
		if got := kid.Counter("ops").Value(); got != perChild {
			t.Fatalf("child = %d, want %d", got, perChild)
		}
		sum += kid.Counter("ops").Value()
	}
	if got := parent.Counter("ops").Value(); got != sum {
		t.Fatalf("parent = %d, want sum of children %d", got, sum)
	}
}
