package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(5)
	r.Timer("t").Observe(1.0)
	r.Timer("t").ObserveDuration(time.Second)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %d", got)
	}
	if got := r.Timer("t").Stats(); got.Count != 0 {
		t.Fatalf("nil timer stats = %+v", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Timers) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	if r.String() != "" {
		t.Fatalf("nil registry renders %q", r.String())
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rpc.calls")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters never go down
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("rpc.calls") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestTimerStats(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("lat")
	for i := 1; i <= 100; i++ {
		tm.Observe(float64(i))
	}
	s := tm.Stats()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.P50 < 45 || s.P50 > 56 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P95 < 90 || s.P95 > 100 {
		t.Fatalf("p95 = %v", s.P95)
	}
}

func TestTimerDecimationBoundsMemory(t *testing.T) {
	tm := &Timer{}
	n := timerSampleCap * 10
	for i := 0; i < n; i++ {
		tm.Observe(float64(i))
	}
	s := tm.Stats()
	if s.Count != int64(n) {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if s.Min != 0 || s.Max != float64(n-1) {
		t.Fatalf("exact min/max lost: %v/%v", s.Min, s.Max)
	}
	tm.mu.Lock()
	retained := len(tm.sample)
	tm.mu.Unlock()
	if retained >= timerSampleCap {
		t.Fatalf("sample grew to %d, cap is %d", retained, timerSampleCap)
	}
	// Percentiles should still be in the right neighbourhood.
	if s.P50 < float64(n)*0.3 || s.P50 > float64(n)*0.7 {
		t.Fatalf("p50 = %v after decimation (n=%d)", s.P50, n)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Timer("t").Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Gauge("g").Value(); got != workers*each {
		t.Fatalf("gauge = %d, want %d", got, workers*each)
	}
	if got := r.Timer("t").Stats().Count; got != workers*each {
		t.Fatalf("timer count = %d, want %d", got, workers*each)
	}
}

func TestSnapshotRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc.calls").Add(12)
	r.Gauge("trackers.live").Set(3)
	r.Timer("rpc.latency").ObserveDuration(3 * time.Millisecond)
	out := r.String()
	for _, want := range []string{"rpc.calls", "12", "trackers.live (gauge)", "rpc.latency", "3.00ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	snap := r.Snapshot()
	if snap.Counter("rpc.calls") != 12 {
		t.Fatalf("snapshot counter = %d", snap.Counter("rpc.calls"))
	}
	if snap.Counter("absent") != 0 {
		t.Fatal("absent counter should read 0")
	}
}
