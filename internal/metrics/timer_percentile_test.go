package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestTimerP99ExactSmallCount: below timerSampleCap every observation is
// retained, so P99 is the interpolated exact percentile.
func TestTimerP99ExactSmallCount(t *testing.T) {
	var tm Timer
	// 1..100 in shuffled order; percentiles must not depend on arrival order.
	r := rand.New(rand.NewSource(1))
	for _, v := range r.Perm(100) {
		tm.Observe(float64(v + 1))
	}
	st := tm.Stats()
	// Interpolated exact values over 1..100: p50 = 50.5, p99 = 99.01.
	if math.Abs(st.P50-50.5) > 1e-9 {
		t.Fatalf("P50 = %v, want 50.5", st.P50)
	}
	if math.Abs(st.P99-99.01) > 1e-9 {
		t.Fatalf("P99 = %v, want 99.01", st.P99)
	}
	if math.Abs(st.P95-95.05) > 1e-9 {
		t.Fatalf("P95 = %v, want 95.05", st.P95)
	}
}

// TestTimerPercentilesAfterDecimation pushes the timer well past
// timerSampleCap so the stride has doubled several times, then checks the
// decimated-sample percentiles stay within a small relative error of the
// true distribution percentiles. Uniform 0..1 observations make the true
// percentile p/100.
func TestTimerPercentilesAfterDecimation(t *testing.T) {
	var tm Timer
	const n = 20000 // ~5x timerSampleCap: stride doubles at least twice
	r := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		tm.Observe(r.Float64())
	}
	st := tm.Stats()
	if st.Count != n {
		t.Fatalf("Count = %d, want %d", st.Count, n)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"P50", st.P50, 0.50},
		{"P95", st.P95, 0.95},
		{"P99", st.P99, 0.99},
	} {
		// The decimated sample still holds >2000 near-uniformly-strided
		// points, so 5% relative error is generous headroom over sampling
		// noise while tight enough to catch a broken decimation.
		if rel := math.Abs(c.got-c.want) / c.want; rel > 0.05 {
			t.Errorf("%s = %v, want %v within 5%% (off by %.1f%%)", c.name, c.got, c.want, rel*100)
		}
	}
	if st.Min < 0 || st.Max > 1 || st.Mean < 0.45 || st.Mean > 0.55 {
		t.Fatalf("min/max/mean drifted: %+v", st)
	}
}

// TestTimerConcurrentObserve hammers one child+parent timer pair from many
// goroutines; under -race this is the data-race gate for the sampling path
// (decimation mutates the sample slice in place), and the count/sum totals
// must come out exact on both levels.
func TestTimerConcurrentObserve(t *testing.T) {
	parent := NewRegistry()
	child := parent.NewChild()
	tm := child.Timer("lat")
	const workers = 8
	const each = 5000 // workers*each > timerSampleCap: decimation runs concurrently
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				tm.Observe(r.Float64())
			}
		}(int64(w))
	}
	wg.Wait()
	for name, reg := range map[string]*Registry{"child": child, "parent": parent} {
		st := reg.Timer("lat").Stats()
		if st.Count != workers*each {
			t.Fatalf("%s Count = %d, want %d", name, st.Count, workers*each)
		}
		if st.Min < 0 || st.Max > 1 {
			t.Fatalf("%s min/max out of range: %+v", name, st)
		}
		if st.P50 < 0.3 || st.P50 > 0.7 {
			t.Fatalf("%s P50 = %v, want ~0.5", name, st.P50)
		}
	}
}
