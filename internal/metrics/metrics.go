// Package metrics is the observability substrate for the live stack: a
// lightweight, concurrency-safe registry of named counters, gauges and
// timers that the runtime components (hadooprpc clients, the jetty shuffle
// path, the dfs block store, the fault injector and the hadoop engine)
// report into, and that per-job reports render from.
//
// The paper's central measurement (§II.A) is a per-phase time breakdown —
// where does a reduce task's wall time go? The simulators produce those
// numbers from modelled time; this package produces them from real runs, so
// simulated and live copy-share can be cross-checked at matching scale.
//
// Design points, following the repository's fault-injection layer:
//
//   - a nil *Registry is valid everywhere and records nothing, so hot paths
//     thread it unconditionally without branching at call sites;
//   - metric handles (Counter, Gauge, Timer) are cheap to look up and
//     cheaper to update — counters and gauges are a single atomic op;
//   - timers keep exact count/sum/min/max and a decimated sample for
//     percentiles, so long runs stay bounded in memory;
//   - Snapshot returns a consistent copy for export, and String renders the
//     fixed-width tables the experiment harness prints (internal/stats).
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ict-repro/mpid/internal/stats"
)

// Counter is a monotonically increasing count. All methods on a nil
// *Counter are no-ops, matching the nil-registry contract. Counters handed
// out by a child registry (NewChild) carry a parent handle and propagate
// every update to it.
type Counter struct {
	v      atomic.Int64
	parent *Counter
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
	c.parent.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can move both ways (queue depths, live trackers).
// Child-registry gauges propagate relative moves (Add) to their parent, so
// the parent sees the aggregate level across children; Set stores an
// absolute value and is deliberately local — absolute levels from different
// children do not compose.
type Gauge struct {
	v      atomic.Int64
	parent *Gauge
}

// Set stores the value. Never propagated to a parent gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
	g.parent.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// timerSampleCap bounds a timer's retained observations. When the buffer
// fills, it is decimated (every second value kept) and the sampling stride
// doubles, so long runs keep a uniform-ish spread at bounded memory.
const timerSampleCap = 4096

// Timer accumulates duration observations (in seconds) with exact
// count/sum/min/max and a decimated sample for percentiles.
type Timer struct {
	parent *Timer

	mu     sync.Mutex
	count  int64
	sum    float64
	min    float64
	max    float64
	sample []float64
	stride int64 // record every stride-th observation into sample
	seen   int64 // observations since last sampled one
}

// Observe records one observation.
func (t *Timer) Observe(v float64) {
	if t == nil {
		return
	}
	t.parent.Observe(v)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 || v < t.min {
		t.min = v
	}
	if t.count == 0 || v > t.max {
		t.max = v
	}
	t.count++
	t.sum += v
	if t.stride == 0 {
		t.stride = 1
	}
	t.seen++
	if t.seen >= t.stride {
		t.seen = 0
		t.sample = append(t.sample, v)
		if len(t.sample) >= timerSampleCap {
			keep := t.sample[:0]
			for i := 1; i < len(t.sample); i += 2 {
				keep = append(keep, t.sample[i])
			}
			t.sample = keep
			t.stride *= 2
		}
	}
}

// ObserveDuration records a duration in seconds.
func (t *Timer) ObserveDuration(d time.Duration) { t.Observe(d.Seconds()) }

// Time runs fn and records its wall time in seconds.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.ObserveDuration(time.Since(start))
}

// TimerStats is an exported summary of one timer. Percentiles are exact
// while the timer has seen fewer than timerSampleCap observations and come
// from the decimated sample afterwards.
type TimerStats struct {
	Count               int64
	Sum, Min, Max, Mean float64
	P50, P95, P99       float64
}

// Stats summarizes the timer. Percentiles come from the decimated sample.
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimerStats{Count: t.count, Sum: t.sum, Min: t.min, Max: t.max}
	if t.count > 0 {
		s.Mean = t.sum / float64(t.count)
	}
	if len(t.sample) > 0 {
		sorted := append([]float64(nil), t.sample...)
		sort.Float64s(sorted)
		s.P50 = percentile(sorted, 50)
		s.P95 = percentile(sorted, 95)
		s.P99 = percentile(sorted, 99)
	}
	return s
}

// percentile interpolates between closest ranks of a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Registry holds named metrics. The zero value is not usable — construct
// with NewRegistry — but a nil *Registry is: every method returns a nil
// handle or zero snapshot, and nil handles absorb updates.
type Registry struct {
	parent *Registry // set for child registries; updates propagate up

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// NewChild creates a registry scoped under r: every update to a child
// metric also feeds the same-named metric in r (and transitively in r's own
// parent). This is how a long-lived job service isolates per-job metrics
// without losing service-wide totals — each job records into its own child
// registry (so concurrent jobs never bleed counters into each other's
// report), while the parent accumulates the fleet aggregate; per-job
// counters sum exactly to the parent's totals. Gauge.Set is the one
// non-propagating update (absolute levels do not compose). A nil receiver
// returns a fresh parentless registry.
func (r *Registry) NewChild() *Registry {
	if r == nil {
		return NewRegistry()
	}
	c := NewRegistry()
	c.parent = r
	return c
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{parent: r.parent.Counter(name)}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{parent: r.parent.Gauge(name)}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{parent: r.parent.Timer(name)}
		r.timers[name] = t
	}
	return t
}

// Snapshot is a consistent copy of every metric's current value.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Timers   map[string]TimerStats
}

// Counter returns a snapshotted counter value (0 when absent or nil).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Snapshot exports all metrics. A nil registry yields empty maps, so
// report-rendering code needs no nil checks.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Timers:   make(map[string]TimerStats),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range timers {
		snap.Timers[k] = v.Stats()
	}
	return snap
}

// String renders the snapshot as fixed-width tables (counters and gauges
// first, then timer summaries), the format every experiment report uses.
func (s Snapshot) String() string {
	var out string
	if len(s.Counters)+len(s.Gauges) > 0 {
		tb := stats.NewTable("metric", "value")
		for _, name := range sortedKeys(s.Counters) {
			tb.AddRow(name, s.Counters[name])
		}
		for _, name := range sortedKeys(s.Gauges) {
			tb.AddRow(name+" (gauge)", s.Gauges[name])
		}
		out += tb.String()
	}
	if len(s.Timers) > 0 {
		tb := stats.NewTable("timer", "count", "mean", "p50", "p95", "p99", "max", "total")
		names := make([]string, 0, len(s.Timers))
		for name := range s.Timers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t := s.Timers[name]
			tb.AddRow(name, t.Count,
				stats.FormatDuration(secs(t.Mean)),
				stats.FormatDuration(secs(t.P50)),
				stats.FormatDuration(secs(t.P95)),
				stats.FormatDuration(secs(t.P99)),
				stats.FormatDuration(secs(t.Max)),
				stats.FormatDuration(secs(t.Sum)))
		}
		out += tb.String()
	}
	return out
}

// String renders the registry's current state.
func (r *Registry) String() string { return r.Snapshot().String() }

func secs(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
