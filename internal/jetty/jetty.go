// Package jetty reimplements Hadoop's embedded-Jetty HTTP data path: the
// map-output servlet that tasktrackers run and reducers fetch intermediate
// data from during the copy stage of shuffle (§II.B of the paper), plus the
// streaming endpoint its bandwidth benchmark uses.
//
// It is built on net/http, which plays the role Jetty plays inside Hadoop:
// an embedded HTTP server. The shuffle protocol follows the 0.20
// MapOutputServlet: outputs are addressed by (job, map, reduce), responses
// carry the map-output length headers, and bodies stream in configurable
// write chunks — streaming is why the paper measures Jetty within 2-3% of
// MPI peak bandwidth while Hadoop RPC sits two orders of magnitude below.
package jetty

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/obs"
	"github.com/ict-repro/mpid/internal/shuffle"
	"github.com/ict-repro/mpid/internal/trace"
)

// ErrGone marks a fetch the server answered 410 Gone for: the map output no
// longer exists there (the tasktracker restarted or the job was cleaned up).
// Retrying the same server cannot help — the reducer must report the fetch
// failure so the map is re-executed elsewhere.
var ErrGone = errors.New("jetty: map output gone")

// IsGone reports whether err means the output is permanently missing from
// the queried server.
func IsGone(err error) bool { return errors.Is(err, ErrGone) }

// statusError is a non-200 HTTP response. 5xx responses are retryable
// (transient server-side trouble); other 4xx are not.
type statusError struct {
	code   int
	status string
}

func (e *statusError) Error() string { return "jetty: fetch status " + e.status }

// fetchRetryable reports whether a failed fetch may succeed on a retry
// against the same server: transport failures and 5xx responses are
// retryable; Gone, client errors and component crashes are not.
func fetchRetryable(err error) bool {
	if err == nil || IsGone(err) || faults.IsCrash(err) {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true
}

// Header names mirroring the 0.20 shuffle.
const (
	// HeaderMapOutputLength carries the payload size.
	HeaderMapOutputLength = "X-Map-Output-Length"
	// HeaderForReduce echoes the reduce id the output was partitioned for.
	HeaderForReduce = "X-For-Reduce"
	// HeaderTraceContext carries the fetcher's trace context ("trace-span"
	// in hex) so the serving side can parent its serve span under the
	// reducer's fetch span. Absent on untraced fetches; ignored by servers
	// without a Tracer.
	HeaderTraceContext = "X-Trace-Context"
	// HeaderAcceptCompressed is sent by copiers willing to inflate
	// (mapred.compress.map.output): a compressing server then DEFLATEs the
	// segment. Servers without Compress ignore it, so mixed clusters work.
	HeaderAcceptCompressed = "X-Accept-Compressed"
	// HeaderCompressed marks a response body as DEFLATE-compressed; the raw
	// segment length still travels in HeaderMapOutputLength so the client
	// can size its inflate buffer and verify the stream.
	HeaderCompressed = "X-Map-Output-Compressed"
)

// OutputKey addresses one map output partition.
type OutputKey struct {
	Job    string
	Map    int
	Reduce int
}

// Store holds map outputs a server can serve. It is safe for concurrent
// use: mappers put while reducers fetch. A segment is either an in-memory
// byte slice (Put) or a reference to a spill file on disk (PutFile); the
// server serves both through the same servlet, using sendfile for the
// file-backed ones.
type Store struct {
	mu    sync.RWMutex
	data  map[OutputKey][]byte
	files map[OutputKey]fileSegment
}

// fileSegment is a disk-resident map output: the spill file path and the
// segment's byte length (validated at PutFile time so serves can set
// Content-Length without a stat).
type fileSegment struct {
	path string
	size int64
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{data: make(map[OutputKey][]byte), files: make(map[OutputKey]fileSegment)}
}

// Put registers the output of one (job, map) for one reduce. The store
// keeps a reference; the caller must not modify data afterwards.
func (s *Store) Put(key OutputKey, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = data
}

// PutFile registers a disk-resident output: the segment lives in the spill
// file at path and is served straight off disk (sendfile on the
// uncompressed path). The file is stat'd once here so its size is known;
// the caller must keep it intact until Delete.
func (s *Store) PutFile(key OutputKey, path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("jetty: put file segment: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[key] = fileSegment{path: path, size: fi.Size()}
	return nil
}

// Get returns the stored in-memory output and whether it exists. File-backed
// segments are not materialized here; they are served directly by the
// server (see GetFile).
func (s *Store) Get(key OutputKey) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.data[key]
	return d, ok
}

// GetFile returns the path and size of a file-backed output.
func (s *Store) GetFile(key OutputKey) (string, int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[key]
	return f.path, f.size, ok
}

// Delete removes an output (job cleanup). For file-backed segments only the
// reference is dropped; the spill file itself belongs to the caller.
func (s *Store) Delete(key OutputKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	delete(s.files, key)
}

// Len returns the number of stored outputs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data) + len(s.files)
}

// Server is the embedded HTTP server a tasktracker would run.
type Server struct {
	store *Store
	// WriteChunk is the servlet's output buffer size: the body is written
	// in chunks of this many bytes (Hadoop uses a 64 KB buffer). The
	// bandwidth experiment sweeps it.
	WriteChunk int
	// Injector, when set, gates every mapOutput request ("serve"
	// operation); an injected fault answers 503 Service Unavailable,
	// which clients treat as retryable. Set before Listen.
	Injector *faults.Injector
	// Component names this server to the injector (default "jetty.server").
	Component string
	// Metrics, when set, counts served map outputs ("shuffle.serves") and
	// body bytes written ("shuffle.serve_bytes"). Set before Listen.
	Metrics *metrics.Registry
	// Tracer, when set, records a serve span per map-output request,
	// parented under the fetcher's span when the request carries
	// HeaderTraceContext. Set before Listen.
	Tracer *trace.Tracer
	// Compress, when set, DEFLATEs map-output bodies for clients that sent
	// HeaderAcceptCompressed, trading serve CPU for shuffle wire bytes.
	// Set before Listen.
	Compress bool
	// ZeroCopy (default on) serves uncompressed map outputs through
	// io.Copy over the ResponseWriter's io.ReaderFrom: file-backed
	// segments go out via sendfile without touching user space, and
	// in-memory ones in a single buffered pass instead of the servlet's
	// WriteChunk copy loop. Clear it to emulate the chunked servlet copy
	// (the DEFLATE-negotiated path always uses the chunk loop).
	ZeroCopy bool

	pool    *shuffle.BufferPool // recycles compression buffers across serves
	httpSrv *http.Server
	ln      net.Listener
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
}

// NewServer creates a server over the given store.
func NewServer(store *Store) *Server {
	return &Server{store: store, WriteChunk: 64 * 1024, ZeroCopy: true, pool: shuffle.NewBufferPool()}
}

// Listen binds to addr and starts serving; it returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/mapOutput", s.handleMapOutput)
	mux.HandleFunc("/stream", s.handleStream)
	mux.HandleFunc("/ping", s.handlePing)
	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	s.ln, s.httpSrv = ln, srv
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		srv.Serve(ln) // returns on Close
	}()
	return ln.Addr().String(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	srv := s.httpSrv
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Close()
	}
	s.wg.Wait()
	return err
}

// handleMapOutput serves one stored map output, the MapOutputServlet path.
func (s *Server) handleMapOutput(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	mapID, err1 := strconv.Atoi(q.Get("map"))
	reduceID, err2 := strconv.Atoi(q.Get("reduce"))
	job := q.Get("job")
	if err1 != nil || err2 != nil || job == "" {
		http.Error(w, "jetty: bad mapOutput query", http.StatusBadRequest)
		return
	}
	comp := s.Component
	if comp == "" {
		comp = "jetty.server"
	}
	// Parent the serve span under the fetcher's span when the request
	// carries a trace context; a malformed header degrades to a fresh root.
	pctx, _ := trace.ParseContext(r.Header.Get(HeaderTraceContext))
	span := s.Tracer.StartChild(pctx, fmt.Sprintf("serve m%d->r%d", mapID, reduceID), trace.KindServe)
	defer span.End()
	if err := s.Injector.Check(comp, "serve", job); err != nil {
		span.Annotate("error", err.Error())
		http.Error(w, "jetty: injected fault: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	key := OutputKey{Job: job, Map: mapID, Reduce: reduceID}
	data, ok := s.store.Get(key)
	var fpath string
	var fsize int64
	if !ok {
		fpath, fsize, ok = s.store.GetFile(key)
	}
	if !ok {
		span.Annotate("error", "gone")
		http.Error(w, "jetty: no such map output", http.StatusGone)
		return
	}
	compress := s.Compress && r.Header.Get(HeaderAcceptCompressed) != ""
	if fpath != "" {
		// File-backed segment. The uncompressed serve goes through
		// sendfile below; compression needs the bytes in user space, so
		// only then is the spill file read into a pooled buffer.
		if !compress {
			s.serveFile(w, span, fpath, fsize, reduceID)
			return
		}
		f, err := os.Open(fpath)
		if err != nil {
			span.Annotate("error", err.Error())
			http.Error(w, "jetty: map output unreadable", http.StatusGone)
			return
		}
		buf := s.pool.Get(int(fsize))
		_, rerr := io.ReadFull(f, buf)
		f.Close()
		if rerr != nil {
			s.pool.Put(buf)
			span.Annotate("error", rerr.Error())
			http.Error(w, "jetty: map output unreadable", http.StatusGone)
			return
		}
		defer s.pool.Put(buf)
		data = buf
	}
	span.Annotate("bytes", strconv.Itoa(len(data)))
	w.Header().Set(HeaderMapOutputLength, strconv.Itoa(len(data)))
	w.Header().Set(HeaderForReduce, strconv.Itoa(reduceID))
	body := data
	if compress {
		comp := shuffle.Compress(s.pool.Get(len(data))[:0], data)
		w.Header().Set(HeaderCompressed, "1")
		span.Annotate("wire_bytes", strconv.Itoa(len(comp)))
		s.Metrics.Counter("shuffle.serves_compressed").Inc()
		body = comp
		defer s.pool.Put(comp)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	s.Metrics.Counter("shuffle.serves").Inc()
	s.Metrics.Counter("shuffle.serve_bytes").Add(int64(len(body)))
	if s.ZeroCopy && !compress {
		// net/http's ResponseWriter implements io.ReaderFrom; with
		// Content-Length set the body bypasses chunked encoding, so
		// io.Copy moves the segment in one buffered pass instead of the
		// WriteChunk servlet loop.
		n, _ := io.Copy(w, bytes.NewReader(body))
		s.Metrics.Counter("shuffle.serves_zerocopy").Inc()
		s.Metrics.Counter("shuffle.zerocopy_bytes").Add(n)
		return
	}
	s.writeChunked(w, body)
}

// serveFile streams an uncompressed file-backed segment. io.Copy finds the
// ResponseWriter's io.ReaderFrom and the *os.File source, which on Linux
// collapses into sendfile(2): the segment moves disk→socket without ever
// entering user space — the Jetty NIO transferTo serving Hadoop uses when
// shuffle outputs spill to disk.
func (s *Server) serveFile(w http.ResponseWriter, span *trace.Span, path string, size int64, reduceID int) {
	f, err := os.Open(path)
	if err != nil {
		span.Annotate("error", err.Error())
		http.Error(w, "jetty: map output unreadable", http.StatusGone)
		return
	}
	defer f.Close()
	span.Annotate("bytes", strconv.FormatInt(size, 10))
	span.Annotate("sendfile", "1")
	w.Header().Set(HeaderMapOutputLength, strconv.FormatInt(size, 10))
	w.Header().Set(HeaderForReduce, strconv.Itoa(reduceID))
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	s.Metrics.Counter("shuffle.serves").Inc()
	s.Metrics.Counter("shuffle.serve_bytes").Add(size)
	n, _ := io.Copy(w, io.LimitReader(f, size))
	s.Metrics.Counter("shuffle.serves_zerocopy").Inc()
	s.Metrics.Counter("shuffle.sendfile_bytes").Add(n)
}

// handlePing answers liveness probes: a tiny 200 that proves the tracker's
// data path — the same HTTP server reducers fetch map outputs from — is up
// and answering. The injector gates it ("ping" operation) so chaos tests
// can make a live tracker look dead and a dead one flap back.
func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	comp := s.Component
	if comp == "" {
		comp = "jetty.server"
	}
	if err := s.Injector.Check(comp, "ping", r.RemoteAddr); err != nil {
		http.Error(w, "jetty: injected fault: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.Metrics.Counter("shuffle.pings").Inc()
	w.Header().Set("Content-Length", "4")
	w.Write([]byte("pong"))
}

// handleStream serves size synthetic bytes, the §II.B bandwidth endpoint.
// Optional "chunk" overrides the server write size for the sweep.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	size, err := strconv.ParseInt(r.URL.Query().Get("size"), 10, 64)
	if err != nil || size < 0 {
		http.Error(w, "jetty: bad stream size", http.StatusBadRequest)
		return
	}
	chunk := s.WriteChunk
	if c := r.URL.Query().Get("chunk"); c != "" {
		if v, err := strconv.Atoi(c); err == nil && v > 0 {
			chunk = v
		}
	}
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte('a' + i%26)
	}
	remaining := size
	for remaining > 0 {
		n := int64(len(buf))
		if n > remaining {
			n = remaining
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return
		}
		remaining -= n
	}
}

// writeChunked writes data in WriteChunk-sized pieces, mirroring the
// servlet's buffered copy loop.
func (s *Server) writeChunked(w io.Writer, data []byte) {
	chunk := s.WriteChunk
	if chunk <= 0 {
		chunk = 64 * 1024
	}
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := w.Write(data[off:end]); err != nil {
			return
		}
	}
}

// --------------------------------------------------------------------------
// Client: the reducer-side copier.

// Client fetches map outputs over HTTP, as a reduce task's copier threads
// do. ReadChunk controls the read buffer size (the client half of the
// packet-size sweep).
//
// Configure the exported fault-tolerance fields before sharing the client
// across goroutines; the fetch methods themselves are concurrency-safe.
// With MaxAttempts > 1 a transport failure or 5xx response is retried
// against the same server after a backoff; 410 Gone (ErrGone) is returned
// immediately so the caller can report a fetch failure and go elsewhere.
type Client struct {
	http      *http.Client
	ReadChunk int
	// MaxAttempts is the total tries per fetch (<= 1 means no retries).
	MaxAttempts int
	// Backoff shapes the delay between retries.
	Backoff faults.Backoff
	// Injector, when set, gates every fetch attempt ("fetch" operation,
	// peer = server address).
	Injector *faults.Injector
	// Component names this client to the injector (default "jetty.client").
	Component string
	// Metrics, when set, receives fetch observability: "shuffle.fetches"
	// and "shuffle.fetch_bytes" counters, a "shuffle.fetch_latency" timer
	// over whole fetches (retries included), "shuffle.fetch_retries" for
	// repeated attempts against the same server and
	// "shuffle.fetch_errors" for fetches that failed for good.
	Metrics *metrics.Registry
	// Events, when set, receives an obs.EvFetchRetry flight-recorder event
	// for every repeated attempt against the same server. A nil recorder
	// records nothing.
	Events *obs.Recorder
	// Compress advertises HeaderAcceptCompressed on map-output fetches;
	// against a compressing server the body arrives DEFLATEd and is
	// inflated here. The returned bytes are always the raw segment.
	Compress bool
	// Pool, when set, supplies the fetch and inflate buffers, so a steady
	// shuffle stops allocating per fetch. Callers that hand fetched
	// segments to a shuffle.Merger with the same pool get end-to-end buffer
	// recycling.
	Pool *shuffle.BufferPool

	jit *faults.Jitter
}

// NewClient creates a copier client with connection reuse enabled and
// retries off.
func NewClient() *Client {
	return &Client{
		http: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     30 * time.Second,
			},
		},
		ReadChunk: 64 * 1024,
		jit:       faults.NewJitter(1),
	}
}

// SetSeed reseeds the retry jitter for reproducible backoff schedules. Call
// before sharing the client across goroutines.
func (c *Client) SetSeed(seed int64) { c.jit = faults.NewJitter(seed) }

// FetchMapOutput retrieves one map output from a server, retrying transient
// failures per the client's retry configuration.
func (c *Client) FetchMapOutput(addr string, key OutputKey) ([]byte, error) {
	return c.FetchMapOutputTraced(trace.Context{}, addr, key)
}

// FetchMapOutputTraced is FetchMapOutput with trace propagation: a valid
// tctx rides the request as HeaderTraceContext so the serving tasktracker
// can parent its serve span under the reducer's fetch span. An invalid
// (zero) context sends no header.
func (c *Client) FetchMapOutputTraced(tctx trace.Context, addr string, key OutputKey) ([]byte, error) {
	return c.FetchMapOutputContext(context.Background(), tctx, addr, key)
}

// FetchMapOutputContext is FetchMapOutputTraced under a context: ctx
// cancellation aborts the in-flight HTTP exchange and cuts the backoff
// schedule short, so a killed or drained job stops fetching promptly
// instead of riding its retries out. Returns ctx.Err() (possibly wrapped)
// once the context is done.
func (c *Client) FetchMapOutputContext(ctx context.Context, tctx trace.Context, addr string, key OutputKey) ([]byte, error) {
	url := fmt.Sprintf("http://%s/mapOutput?job=%s&map=%d&reduce=%d",
		addr, key.Job, key.Map, key.Reduce)
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	c.Metrics.Counter("shuffle.fetches").Inc()
	start := time.Now()
	defer func() { c.Metrics.Timer("shuffle.fetch_latency").ObserveDuration(time.Since(start)) }()
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			c.Metrics.Counter("shuffle.fetch_errors").Inc()
			return nil, err
		}
		data, err := c.fetchOnce(ctx, url, addr, tctx)
		if err == nil || !fetchRetryable(err) || ctx.Err() != nil {
			if err != nil {
				c.Metrics.Counter("shuffle.fetch_errors").Inc()
			} else {
				c.Metrics.Counter("shuffle.fetch_bytes").Add(int64(len(data)))
			}
			return data, err
		}
		if attempt >= attempts {
			c.Metrics.Counter("shuffle.fetch_errors").Inc()
			return nil, err
		}
		c.Metrics.Counter("shuffle.fetch_retries").Inc()
		c.Events.Emit(obs.Event{Type: obs.EvFetchRetry,
			Task:   fmt.Sprintf("r%d", key.Reduce),
			Detail: fmt.Sprintf("%s map %d attempt %d: %v", addr, key.Map, attempt, err)})
		delay := time.NewTimer(c.Backoff.Delay(attempt, c.jit))
		select {
		case <-ctx.Done():
			delay.Stop()
			c.Metrics.Counter("shuffle.fetch_errors").Inc()
			return nil, ctx.Err()
		case <-delay.C:
		}
	}
}

// fetchOnce is one fetch attempt: injection point, then the HTTP exchange.
func (c *Client) fetchOnce(ctx context.Context, url, peer string, tctx trace.Context) ([]byte, error) {
	comp := c.Component
	if comp == "" {
		comp = "jetty.client"
	}
	if err := c.Injector.Check(comp, "fetch", peer); err != nil {
		return nil, err
	}
	return c.fetch(ctx, url, tctx)
}

// Ping probes the server's /ping endpoint under the given context and
// returns the round-trip time. Any transport failure, non-200 status or
// context expiry is a probe loss.
func (c *Client) Ping(ctx context.Context, addr string) (time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/ping", nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		// A torn body means the connection is poisoned mid-response.
		// Closing the body without a completed drain makes the transport
		// drop the connection instead of returning it to the idle pool,
		// where it would fail the next probe too.
		resp.Body.Close()
		return 0, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, &statusError{code: resp.StatusCode, status: resp.Status}
	}
	return time.Since(start), nil
}

// FetchStream retrieves size bytes from the bandwidth endpoint with the
// given server-side chunk size, discarding the body and returning the byte
// count read.
func (c *Client) FetchStream(addr string, size int64, chunk int) (int64, error) {
	url := fmt.Sprintf("http://%s/stream?size=%d&chunk=%d", addr, size, chunk)
	resp, err := c.http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("jetty: stream status %s", resp.Status)
	}
	buf := make([]byte, c.readChunk())
	var total int64
	for {
		n, err := resp.Body.Read(buf)
		total += int64(n)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

func (c *Client) readChunk() int {
	if c.ReadChunk <= 0 {
		return 64 * 1024
	}
	return c.ReadChunk
}

func (c *Client) fetch(ctx context.Context, url string, tctx trace.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if tctx.Valid() {
		req.Header.Set(HeaderTraceContext, tctx.String())
	}
	if c.Compress {
		req.Header.Set(HeaderAcceptCompressed, "1")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return nil, fmt.Errorf("%w (%s)", ErrGone, url)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &statusError{code: resp.StatusCode, status: resp.Status}
	}
	want := int64(-1)
	if h := resp.Header.Get(HeaderMapOutputLength); h != "" {
		if v, err := strconv.ParseInt(h, 10, 64); err == nil {
			want = v
		}
	}
	data, err := c.readBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.Header.Get(HeaderCompressed) != "" {
		if want < 0 {
			return nil, fmt.Errorf("jetty: compressed response without %s", HeaderMapOutputLength)
		}
		raw, err := shuffle.Decompress(c.Pool, data, int(want))
		c.Pool.Put(data)
		if err != nil {
			return nil, err
		}
		c.Metrics.Counter("shuffle.fetches_compressed").Inc()
		return raw, nil
	}
	if want >= 0 && int64(len(data)) != want {
		return nil, fmt.Errorf("jetty: got %d bytes, header said %d", len(data), want)
	}
	return data, nil
}

// readBody drains the response body, into a pooled buffer when the length
// is known and a pool is set.
func (c *Client) readBody(resp *http.Response) ([]byte, error) {
	if c.Pool == nil || resp.ContentLength < 0 {
		return io.ReadAll(resp.Body)
	}
	buf := c.Pool.Get(int(resp.ContentLength))
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		c.Pool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// Close releases idle connections.
func (c *Client) Close() {
	if t, ok := c.http.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}
