package jetty

import (
	"testing"

	"github.com/ict-repro/mpid/internal/trace"
)

// TestServeSpanPropagation: a traced fetch must produce a serve span on the
// server parented under the fetcher's context; an untraced fetch must
// produce a root serve span; a traced fetch against a tracer-less server
// must still succeed (the header is ignored).
func TestServeSpanPropagation(t *testing.T) {
	store := NewStore()
	key := OutputKey{Job: "job0", Map: 3, Reduce: 1}
	store.Put(key, []byte("payload"))
	srv := NewServer(store)
	srv.Tracer = trace.New("tracker0")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient()
	defer c.Close()

	fetcher := trace.New("tracker1")
	fspan := fetcher.StartRoot("fetch m3", trace.KindFetch)
	if _, err := c.FetchMapOutputTraced(fspan.Context(), addr, key); err != nil {
		t.Fatal(err)
	}
	fspan.End()
	if _, err := c.FetchMapOutput(addr, key); err != nil {
		t.Fatal(err)
	}

	spans := srv.Tracer.Drain()
	if len(spans) != 2 {
		t.Fatalf("server recorded %d spans, want 2", len(spans))
	}
	traced, untraced := spans[0], spans[1]
	if traced.Trace != fspan.Context().Trace || traced.Parent != fspan.Context().Span {
		t.Fatalf("serve span not parented under fetch: %+v vs %+v", traced, fspan.Context())
	}
	if traced.Kind != trace.KindServe || traced.Note("bytes") != "7" {
		t.Fatalf("serve span malformed: %+v", traced)
	}
	if untraced.Parent != 0 || untraced.Trace == traced.Trace {
		t.Fatalf("untraced fetch did not start a fresh root: %+v", untraced)
	}

	// Tracer-less server: the header must be harmless.
	srv2 := NewServer(store)
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if _, err := c.FetchMapOutputTraced(fspan.Context(), addr2, key); err != nil {
		t.Fatalf("traced fetch against untraced server: %v", err)
	}
}
