package jetty

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/trace"
)

// The reduce copier's fetch loop is context-aware: a canceled job must stop
// its fetches promptly — mid-backoff and before new attempts — instead of
// running the full retry budget against a cluster that no longer exists.

// TestFetchContextCanceledBeforeAttempt never issues an HTTP request when
// the context is already dead.
func TestFetchContextCanceledBeforeAttempt(t *testing.T) {
	addr, store := startFaultyServer(t, nil)
	key := OutputKey{Job: "job", Map: 0, Reduce: 0}
	store.Put(key, []byte("never fetched"))

	inj := faults.New(1) // rule-free: counts attempts
	c := NewClient()
	defer c.Close()
	c.Injector = inj
	c.MaxAttempts = 5

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.FetchMapOutputContext(ctx, trace.Context{}, addr, key)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := inj.Count("jetty.client", "fetch"); n != 0 {
		t.Fatalf("dead context still issued %d attempts", n)
	}
}

// TestFetchContextCancelInterruptsBackoff cancels while the client is
// sleeping between retries: the fetch must return with the context error
// well before the remaining backoff budget would have elapsed.
func TestFetchContextCancelInterruptsBackoff(t *testing.T) {
	addr, store := startFaultyServer(t, nil)
	key := OutputKey{Job: "job", Map: 0, Reduce: 0}
	store.Put(key, []byte("unreachable"))

	// Every attempt fails, and the backoff between them is far longer than
	// the cancellation point.
	inj := faults.New(1, faults.Rule{Component: "jetty.client", Operation: "fetch"})
	c := NewClient()
	defer c.Close()
	c.Injector = inj
	c.MaxAttempts = 50
	c.Backoff = faults.Backoff{Base: 2 * time.Second, Max: 2 * time.Second}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.FetchMapOutputContext(ctx, trace.Context{}, addr, key)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancel took %v to interrupt a 2 s backoff", elapsed)
	}
	if n := inj.Count("jetty.client", "fetch"); n != 1 {
		t.Fatalf("attempts = %d, want 1 (cancel must stop the retry loop)", n)
	}
}

// TestPing exercises the probe endpoint: a live server answers with a
// measurable round trip, a dead port errors, and an injected ping fault
// surfaces as a loss without disturbing the serve path.
func TestPing(t *testing.T) {
	inj := faults.New(1, faults.Rule{Component: "jetty.server", Operation: "ping", After: 1})
	addr, store := startFaultyServer(t, inj)
	store.Put(OutputKey{Job: "job", Map: 0, Reduce: 0}, []byte("data"))

	c := NewClient()
	defer c.Close()
	ctx := context.Background()
	rtt, err := c.Ping(ctx, addr)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if rtt <= 0 {
		t.Fatalf("rtt = %v, want > 0", rtt)
	}
	// Second ping hits the injected fault; the data path stays healthy.
	if _, err := c.Ping(ctx, addr); err == nil {
		t.Fatal("injected ping fault did not surface")
	}
	if _, err := c.FetchMapOutput(addr, OutputKey{Job: "job", Map: 0, Reduce: 0}); err != nil {
		t.Fatalf("fetch after ping fault: %v", err)
	}

	// A dead address is a loss, bounded by the context deadline.
	dctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	if _, err := c.Ping(dctx, "127.0.0.1:1"); err == nil {
		t.Fatal("ping to dead port succeeded")
	}
}
