package jetty

import (
	"bytes"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
)

func startFaultyServer(t *testing.T, inj *faults.Injector) (string, *Store) {
	t.Helper()
	store := NewStore()
	s := NewServer(store)
	s.Injector = inj
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr, store
}

func TestFetchRetriesInjectedClientFaults(t *testing.T) {
	addr, store := startFaultyServer(t, nil)
	key := OutputKey{Job: "job", Map: 0, Reduce: 0}
	payload := []byte("intermediate data")
	store.Put(key, payload)

	inj := faults.New(1, faults.Rule{Component: "jetty.client", Operation: "fetch", Until: 2})
	c := NewClient()
	defer c.Close()
	c.Injector = inj
	c.MaxAttempts = 5
	c.Backoff = faults.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}

	got, err := c.FetchMapOutput(addr, key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("fetch = %q, %v", got, err)
	}
	if n := inj.Count("jetty.client", "fetch"); n != 3 {
		t.Fatalf("attempts = %d, want 3", n)
	}
}

func TestFetchRetriesServerSide503(t *testing.T) {
	inj := faults.New(1, faults.Rule{Component: "jetty.server", Operation: "serve", Until: 2})
	addr, store := startFaultyServer(t, inj)
	key := OutputKey{Job: "job", Map: 1, Reduce: 2}
	payload := []byte("served on the third try")
	store.Put(key, payload)

	c := NewClient()
	defer c.Close()
	c.MaxAttempts = 5
	c.Backoff = faults.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}

	got, err := c.FetchMapOutput(addr, key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("fetch = %q, %v", got, err)
	}
	if n := inj.Count("jetty.server", "serve"); n != 3 {
		t.Fatalf("server saw %d requests, want 3", n)
	}
}

func TestFetchGoneNotRetried(t *testing.T) {
	addr, _ := startFaultyServer(t, nil)
	inj := faults.New(1) // rule-free: counts client attempts
	c := NewClient()
	defer c.Close()
	c.Injector = inj
	c.MaxAttempts = 5
	c.Backoff = faults.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}

	_, err := c.FetchMapOutput(addr, OutputKey{Job: "gone", Map: 0, Reduce: 0})
	if !IsGone(err) {
		t.Fatalf("err = %v, want ErrGone", err)
	}
	if n := inj.Count("jetty.client", "fetch"); n != 1 {
		t.Fatalf("410 Gone was retried: %d attempts", n)
	}
}

func TestFetchRetryBudgetExhausted(t *testing.T) {
	addr, store := startFaultyServer(t, nil)
	key := OutputKey{Job: "job", Map: 0, Reduce: 0}
	store.Put(key, []byte("unreachable"))

	inj := faults.New(1, faults.Rule{Component: "jetty.client", Operation: "fetch"})
	c := NewClient()
	defer c.Close()
	c.Injector = inj
	c.MaxAttempts = 3
	c.Backoff = faults.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}

	if _, err := c.FetchMapOutput(addr, key); !faults.IsInjected(err) {
		t.Fatalf("err = %v, want injected", err)
	}
	if n := inj.Count("jetty.client", "fetch"); n != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts = 3", n)
	}
}
