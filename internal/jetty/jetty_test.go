package jetty

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/shuffle"
)

func startServer(t *testing.T) (*Store, *Server, string) {
	t.Helper()
	store := NewStore()
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return store, srv, addr
}

func TestFetchMapOutput(t *testing.T) {
	store, _, addr := startServer(t)
	key := OutputKey{Job: "job_1", Map: 3, Reduce: 0}
	payload := bytes.Repeat([]byte("intermediate "), 1000)
	store.Put(key, payload)

	c := NewClient()
	defer c.Close()
	got, err := c.FetchMapOutput(addr, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("fetched %d bytes, want %d", len(got), len(payload))
	}
}

func TestFetchMissingOutputFails(t *testing.T) {
	_, _, addr := startServer(t)
	c := NewClient()
	defer c.Close()
	if _, err := c.FetchMapOutput(addr, OutputKey{Job: "none", Map: 0, Reduce: 0}); err == nil {
		t.Fatal("fetch of missing output succeeded")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	k := OutputKey{Job: "j", Map: 1, Reduce: 2}
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store returned data")
	}
	s.Put(k, []byte("x"))
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if d, ok := s.Get(k); !ok || string(d) != "x" {
		t.Fatalf("Get = %q, %v", d, ok)
	}
	s.Delete(k)
	if s.Len() != 0 {
		t.Fatal("Delete did not remove")
	}
}

func TestEmptyMapOutput(t *testing.T) {
	store, _, addr := startServer(t)
	key := OutputKey{Job: "j", Map: 0, Reduce: 5}
	store.Put(key, nil)
	c := NewClient()
	defer c.Close()
	got, err := c.FetchMapOutput(addr, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty output fetched as %d bytes", len(got))
	}
}

func TestSmallWriteChunkStillCorrect(t *testing.T) {
	store, srv, addr := startServer(t)
	srv.WriteChunk = 7 // pathological chunking must not corrupt data
	key := OutputKey{Job: "j", Map: 1, Reduce: 1}
	payload := []byte("0123456789abcdefghij")
	store.Put(key, payload)
	c := NewClient()
	defer c.Close()
	got, err := c.FetchMapOutput(addr, key)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestStreamEndpointExactSize(t *testing.T) {
	_, _, addr := startServer(t)
	c := NewClient()
	defer c.Close()
	for _, size := range []int64{0, 1, 1000, 1 << 20} {
		n, err := c.FetchStream(addr, size, 4096)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if n != size {
			t.Fatalf("size %d: read %d bytes", size, n)
		}
	}
}

func TestStreamRejectsBadQuery(t *testing.T) {
	_, _, addr := startServer(t)
	c := NewClient()
	defer c.Close()
	if _, err := c.FetchStream(addr, -5, 4096); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestConcurrentFetches(t *testing.T) {
	// The copy stage is multi-threaded: many reducers fetch concurrently.
	store, _, addr := startServer(t)
	const maps, reduces = 4, 4
	for m := 0; m < maps; m++ {
		for r := 0; r < reduces; r++ {
			key := OutputKey{Job: "j", Map: m, Reduce: r}
			store.Put(key, []byte(fmt.Sprintf("m%d-r%d", m, r)))
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, maps*reduces)
	for r := 0; r < reduces; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewClient()
			defer c.Close()
			for m := 0; m < maps; m++ {
				key := OutputKey{Job: "j", Map: m, Reduce: r}
				got, err := c.FetchMapOutput(addr, key)
				want := fmt.Sprintf("m%d-r%d", m, r)
				if err != nil || string(got) != want {
					errs <- fmt.Errorf("fetch %v: %q %v", key, got, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(NewStore())
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedFetchRoundTrip(t *testing.T) {
	store, srv, addr := startServer(t)
	srv.Compress = true
	key := OutputKey{Job: "job_1", Map: 0, Reduce: 0}
	payload := bytes.Repeat([]byte("intermediate "), 4096)
	store.Put(key, payload)

	// A compressing client gets the raw bytes back, inflated from fewer
	// wire bytes.
	c := NewClient()
	defer c.Close()
	c.Compress = true
	c.Pool = shuffle.NewBufferPool()
	got, err := c.FetchMapOutput(addr, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("compressed fetch: %d bytes, want %d", len(got), len(payload))
	}

	// A client that does not advertise acceptance gets plain bytes from
	// the same compressing server.
	plain := NewClient()
	defer plain.Close()
	got, err = plain.FetchMapOutput(addr, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("plain fetch from compressing server: %d bytes, want %d", len(got), len(payload))
	}
}

func TestPooledFetch(t *testing.T) {
	store, _, addr := startServer(t)
	key := OutputKey{Job: "job_1", Map: 0, Reduce: 0}
	payload := bytes.Repeat([]byte("pooled "), 1024)
	store.Put(key, payload)

	c := NewClient()
	defer c.Close()
	c.Pool = shuffle.NewBufferPool()
	for i := 0; i < 3; i++ {
		got, err := c.FetchMapOutput(addr, key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("pooled fetch %d: %d bytes, want %d", i, len(got), len(payload))
		}
		c.Pool.Put(got)
	}
}

// TestFileBackedFetch serves a segment registered with PutFile — the
// sendfile path — and checks the bytes match a byte-identical in-memory
// serve of the same payload.
func TestFileBackedFetch(t *testing.T) {
	store, srv, addr := startServer(t)
	reg := metrics.NewRegistry()
	srv.Metrics = reg
	payload := bytes.Repeat([]byte("spilled segment "), 4096)
	path := filepath.Join(t.TempDir(), "spill_0.out")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	fkey := OutputKey{Job: "job_f", Map: 1, Reduce: 0}
	if err := store.PutFile(fkey, path); err != nil {
		t.Fatal(err)
	}
	mkey := OutputKey{Job: "job_f", Map: 2, Reduce: 0}
	store.Put(mkey, payload)

	c := NewClient()
	defer c.Close()
	fromFile, err := c.FetchMapOutput(addr, fkey)
	if err != nil {
		t.Fatal(err)
	}
	fromMem, err := c.FetchMapOutput(addr, mkey)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile, payload) || !bytes.Equal(fromMem, fromFile) {
		t.Fatal("file-backed serve is not byte-identical to the in-memory serve")
	}
	if got := reg.Counter("shuffle.sendfile_bytes").Value(); got != int64(len(payload)) {
		t.Fatalf("sendfile_bytes = %d, want %d", got, len(payload))
	}
	if got := reg.Counter("shuffle.serves_zerocopy").Value(); got != 2 {
		t.Fatalf("serves_zerocopy = %d, want 2 (one sendfile, one ReaderFrom)", got)
	}
}

// TestFileBackedCompressedFetch exercises the file-backed + DEFLATE
// combination: the spill is read back into user space, compressed, and
// still inflates to the original bytes client-side.
func TestFileBackedCompressedFetch(t *testing.T) {
	store, srv, addr := startServer(t)
	srv.Compress = true
	payload := bytes.Repeat([]byte("compressible compressible "), 2048)
	path := filepath.Join(t.TempDir(), "spill_1.out")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	key := OutputKey{Job: "job_fc", Map: 0, Reduce: 0}
	if err := store.PutFile(key, path); err != nil {
		t.Fatal(err)
	}
	c := NewClient()
	c.Compress = true
	defer c.Close()
	got, err := c.FetchMapOutput(addr, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("compressed file-backed fetch corrupted the segment")
	}
}

// TestFileBackedGoneAfterDelete checks Delete drops file-backed references
// and that PutFile of a missing path fails up front.
func TestFileBackedGoneAfterDelete(t *testing.T) {
	store, _, addr := startServer(t)
	path := filepath.Join(t.TempDir(), "spill_2.out")
	if err := os.WriteFile(path, []byte("seg"), 0o644); err != nil {
		t.Fatal(err)
	}
	key := OutputKey{Job: "job_d", Map: 0, Reduce: 0}
	if err := store.PutFile(key, path); err != nil {
		t.Fatal(err)
	}
	store.Delete(key)
	c := NewClient()
	defer c.Close()
	if _, err := c.FetchMapOutput(addr, key); !IsGone(err) {
		t.Fatalf("fetch after delete: got %v, want gone", err)
	}
	if err := store.PutFile(key, filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("PutFile of a missing spill succeeded")
	}
}

// TestZeroCopyOffStillCorrect pins the escape hatch: with ZeroCopy cleared
// the servlet chunk loop serves the same bytes.
func TestZeroCopyOffStillCorrect(t *testing.T) {
	store, srv, addr := startServer(t)
	srv.ZeroCopy = false
	srv.WriteChunk = 7
	payload := bytes.Repeat([]byte("chunked"), 999)
	key := OutputKey{Job: "job_z", Map: 0, Reduce: 0}
	store.Put(key, payload)
	c := NewClient()
	defer c.Close()
	got, err := c.FetchMapOutput(addr, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("chunked serve corrupted the segment")
	}
}
