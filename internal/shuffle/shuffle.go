// Package shuffle is the pipelined shuffle/merge engine behind the live
// Hadoop path's reduce side: sorted spill runs, a concurrent k-way merger
// that folds runs together while shuffle fetches are still in flight, a
// reusable buffer pool for fetch and merge buffers, and the optional
// segment compression the jetty wire uses.
//
// The paper's Figure 1 and Table I show the copy stage of shuffle
// dominating Hadoop job time; DataMPI-style systems win by overlapping
// communication with sorted-run merging and by combining early. This
// package supplies exactly that structure to the live engine:
//
//   - map tasks spill each partition as a *run* — framed kv.KeyList
//     records in nondecreasing key order, each key appearing once — instead
//     of an unsorted blob, so the reduce side can merge instead of re-sort;
//   - reducers hand fetched runs to a Merger; whenever enough runs are
//     pending and more fetches are still expected, a background *merge
//     pass* folds the smallest pending runs into one (optionally applying
//     the job's combiner, the in-node "combine early" optimization), so
//     merge CPU overlaps fetch wait — the overlap is visible in Chrome
//     traces as merge spans running inside the copy phase;
//   - when every run has arrived, Merge performs the final k-way pass over
//     the survivors with a min-heap and streams key groups in sorted
//     order, so the reduce function consumes merge order directly and the
//     old whole-key-space sort.Strings pass disappears.
//
// Value ordering: values within one source run keep their run order, and
// runs with equal keys pop in ascending run sequence; but once intermediate
// passes merge arbitrary run subsets, the cross-run value order for a key
// is unspecified — the same contract Hadoop's reduce offers. Combiners
// supplied to the Merger must therefore be associative and commutative
// (CombinerFromReducer over an order-insensitive reducer qualifies), and
// they may run zero or more times per key, exactly as in Hadoop.
package shuffle

import (
	"bytes"
	"container/heap"
	"fmt"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/bufpool"
	"github.com/ict-repro/mpid/internal/kv"
)

// Combiner pre-reduces a key's value list. It matches core.CombineFunc so
// a job's combiner threads straight through. It must be associative and
// commutative, and may be applied zero or more times per key.
type Combiner func(key []byte, values [][]byte) [][]byte

// ---------------------------------------------------------------------------
// Buffer pool

// BufferPool is the size-classed byte-buffer pool shared across the live
// stack. It started here (PR 4) and was promoted to internal/bufpool once
// the MPI-D fast path needed the same recycling; the alias keeps the
// shuffle/jetty/tasktracker call sites unchanged. A nil *BufferPool is
// valid and simply allocates.
type BufferPool = bufpool.Pool

// NewBufferPool creates an empty pool.
func NewBufferPool() *BufferPool { return bufpool.New() }

// ---------------------------------------------------------------------------
// Runs

// ValidateRun scans a run and checks every frame decodes and keys are
// strictly increasing (each key appears once, sorted). It returns the
// number of keys. Reducers validate fetched segments up front so a corrupt
// fetch is reported against the serving tracker instead of surfacing
// mid-merge.
func ValidateRun(data []byte) (keys int, err error) {
	var prev []byte
	for len(data) > 0 {
		klist, n, err := kv.ReadKeyList(data)
		if err != nil {
			return keys, fmt.Errorf("shuffle: corrupt run at key %d: %w", keys, err)
		}
		if keys > 0 && kv.Compare(prev, klist.Key) >= 0 {
			return keys, fmt.Errorf("shuffle: run not sorted at key %d (%q after %q)", keys, klist.Key, prev)
		}
		prev = klist.Key
		keys++
		data = data[n:]
	}
	return keys, nil
}

// run is one sorted segment awaiting merging.
type run struct {
	data   []byte
	seq    int  // smallest source segment index, tie-breaks equal keys
	pooled bool // buffer may be recycled once the run is consumed by a pass
}

// Run is one sorted segment handed to MergeRuns: framed kv.KeyList records
// in strictly increasing key order. Seq tie-breaks equal keys across runs
// (lower Seq's values come first).
type Run struct {
	Data []byte
	Seq  int
}

// MergeRuns k-way merges sorted runs, calling emit once per key in strictly
// increasing key order with the values of equal keys grouped (combined when
// combine is non-nil and the key drew from more than one run). Emitted
// slices alias the run buffers; the caller decides their lifetime. This is
// the exported face of the merge heap, reused by MPI-D's streaming
// receiver (internal/core) over per-sender spill fragments.
func MergeRuns(rs []Run, combine Combiner, emit func(kv.KeyList) error) error {
	internal := make([]run, len(rs))
	for i, r := range rs {
		internal[i] = run{data: r.Data, seq: r.Seq}
	}
	return mergeRuns(internal, combine, emit)
}

// cursor walks a run's KeyList frames.
type cursor struct {
	rest []byte
	cur  kv.KeyList
	seq  int
}

// advance decodes the next frame; ok=false on clean end.
func (c *cursor) advance() (ok bool, err error) {
	if len(c.rest) == 0 {
		return false, nil
	}
	klist, n, err := kv.ReadKeyList(c.rest)
	if err != nil {
		return false, err
	}
	c.cur, c.rest = klist, c.rest[n:]
	return true, nil
}

// mergeHeap orders cursors by current key, then run sequence — the k-way
// merge frontier.
type mergeHeap []*cursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := kv.Compare(h[i].cur.Key, h[j].cur.Key); c != 0 {
		return c < 0
	}
	return h[i].seq < h[j].seq
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*cursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// mergeRuns k-way merges rs, calling emit once per key with the grouped
// values (combined when combine is non-nil and the key drew from more than
// one run). Emitted slices alias the run buffers; the caller decides their
// lifetime.
func mergeRuns(rs []run, combine Combiner, emit func(kv.KeyList) error) error {
	h := make(mergeHeap, 0, len(rs))
	for _, r := range rs {
		c := &cursor{rest: r.data, seq: r.seq}
		ok, err := c.advance()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	var group []*cursor
	for h.Len() > 0 {
		c := heap.Pop(&h).(*cursor)
		group = append(group[:0], c)
		key := c.cur.Key
		for h.Len() > 0 && bytes.Equal(h[0].cur.Key, key) {
			group = append(group, heap.Pop(&h).(*cursor))
		}
		var out kv.KeyList
		if len(group) == 1 {
			out = c.cur
		} else {
			values := make([][]byte, 0, len(group)*2)
			for _, g := range group {
				values = append(values, g.cur.Values...)
			}
			if combine != nil {
				values = combine(key, values)
			}
			out = kv.KeyList{Key: key, Values: values}
		}
		if err := emit(out); err != nil {
			return err
		}
		for _, g := range group {
			ok, err := g.advance()
			if err != nil {
				return err
			}
			if ok {
				heap.Push(&h, g)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Merger

// PassInfo describes one completed intermediate merge pass, for metrics
// and tracing.
type PassInfo struct {
	Runs     int           // runs folded by this pass
	BytesIn  int           // framed bytes consumed
	BytesOut int           // framed bytes produced
	Keys     int           // key groups written
	Start    time.Time     // when the pass began
	Duration time.Duration // wall time of the pass
}

// MergeStats aggregates a Merger's background work, reported by the
// reduce task alongside its phase timers.
type MergeStats struct {
	Passes   int
	RunsIn   int           // runs consumed by intermediate passes
	BytesIn  int64         // framed bytes consumed by intermediate passes
	BytesOut int64         // framed bytes produced by intermediate passes
	Time     time.Duration // total background merge CPU time
}

// Config shapes a Merger.
type Config struct {
	// Expected is how many segments Add will deliver in total. Merge may
	// only be called after all of them arrived. Zero means the count is
	// unknown (streaming use, as in MPI-D's wildcard reception): background
	// passes then run whenever Factor runs are pending, and Merge trusts
	// the caller to have observed end-of-stream externally.
	Expected int
	// Factor is the merge fan-in (io.sort.factor): an intermediate pass
	// starts whenever at least Factor runs are pending and more segments
	// are still expected, folding the Factor smallest pending runs into
	// one. Default 10.
	Factor int
	// Combine, when set, is applied to multi-run key groups during
	// intermediate passes (never in the final pass, so the reduce function
	// still sees a value list). Must be associative and commutative.
	Combine Combiner
	// Pool recycles intermediate pass buffers; segment buffers handed to
	// Add are recycled too once a pass consumes them. Optional.
	Pool *BufferPool
	// Ordered makes intermediate passes fold the lowest-seq pending runs
	// instead of the smallest. Folding an arbitrary subset can interleave
	// equal-key value groups out of seq order in the final stream; folding
	// a seq-prefix cannot, because a pass output's seq is the batch minimum
	// and every run left behind has a larger seq. MPI-D's grouped receiver
	// relies on this to stay byte-identical with the legacy arrival-order
	// drain. Costs the smallest-runs heuristic, so only set it when the
	// emitted value order matters.
	Ordered bool
	// OnPass, when set, observes every completed intermediate pass — the
	// hook the tasktracker uses to emit merge spans and metrics. Called
	// from the pass's goroutine.
	OnPass func(PassInfo)
}

// Merger is the reduce-side concurrent merge engine. Copier goroutines
// Add sorted segments as fetches complete; the merger folds pending runs
// in background passes while more fetches are in flight, and Merge
// performs the final k-way pass streaming key groups in sorted order.
type Merger struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	pending []run
	added   int
	passes  int // in-flight background passes
	stats   MergeStats
	err     error
}

// NewMerger creates a merger expecting cfg.Expected segments.
func NewMerger(cfg Config) *Merger {
	if cfg.Factor <= 1 {
		cfg.Factor = 10
	}
	m := &Merger{cfg: cfg}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Add hands one fetched segment to the merger: framed KeyLists in strictly
// increasing key order (ValidateRun verifies). The merger takes ownership
// of data — when Config.Pool is set the buffer may be recycled after an
// intermediate pass consumes it, so callers must not retain it. seq orders
// equal-key value groups and is typically the map task id. Safe for
// concurrent use.
func (m *Merger) Add(seq int, data []byte) {
	m.mu.Lock()
	m.added++
	m.pending = append(m.pending, run{data: data, seq: seq, pooled: m.cfg.Pool != nil})
	m.maybeStartPassLocked()
	m.mu.Unlock()
}

// maybeStartPassLocked launches a background pass when enough runs are
// pending and more segments are still expected. The final batch is left
// for Merge so the last arrivals don't trigger a useless extra pass.
func (m *Merger) maybeStartPassLocked() {
	if m.err != nil || len(m.pending) < m.cfg.Factor {
		return
	}
	if m.cfg.Expected > 0 && m.added >= m.cfg.Expected {
		return
	}
	// Fold the smallest pending runs: cheapest pass, and it keeps large
	// already-merged runs from being recopied over and over. Ordered mode
	// folds the oldest instead to preserve the seq order of equal keys,
	// and runs one pass at a time: with every unfolded run visible in
	// pending, the Factor lowest seqs are a contiguous prefix of what is
	// left, so folding them cannot jump an in-flight seq range.
	var batch []run
	if m.cfg.Ordered {
		if m.passes > 0 {
			return
		}
		batch = m.takeOldestLocked(m.cfg.Factor)
	} else {
		batch = m.takeSmallestLocked(m.cfg.Factor)
	}
	m.passes++
	go m.runPass(batch)
}

// takeSmallestLocked removes and returns the n pending runs with the
// fewest bytes.
func (m *Merger) takeSmallestLocked(n int) []run {
	// Selection by repeated scan: n and len(pending) are both small (tens).
	batch := make([]run, 0, n)
	for len(batch) < n {
		best := 0
		for i, r := range m.pending {
			if len(r.data) < len(m.pending[best].data) {
				best = i
			}
		}
		batch = append(batch, m.pending[best])
		m.pending = append(m.pending[:best], m.pending[best+1:]...)
	}
	return batch
}

// takeOldestLocked removes and returns the n pending runs with the lowest
// seq (Ordered mode).
func (m *Merger) takeOldestLocked(n int) []run {
	batch := make([]run, 0, n)
	for len(batch) < n {
		best := 0
		for i, r := range m.pending {
			if r.seq < m.pending[best].seq {
				best = i
			}
		}
		batch = append(batch, m.pending[best])
		m.pending = append(m.pending[:best], m.pending[best+1:]...)
	}
	return batch
}

// runPass merges one batch of runs into a single combined run.
func (m *Merger) runPass(batch []run) {
	start := time.Now()
	var bytesIn, minSeq int
	minSeq = batch[0].seq
	for _, r := range batch {
		bytesIn += len(r.data)
		if r.seq < minSeq {
			minSeq = r.seq
		}
	}
	out := m.cfg.Pool.Get(bytesIn)[:0]
	keys := 0
	err := mergeRuns(batch, m.cfg.Combine, func(kl kv.KeyList) error {
		out = kv.AppendKeyList(out, kl)
		keys++
		return nil
	})
	for _, r := range batch {
		if r.pooled {
			m.cfg.Pool.Put(r.data)
		}
	}
	dur := time.Since(start)

	m.mu.Lock()
	if err != nil && m.err == nil {
		m.err = err
	} else if err == nil {
		m.pending = append(m.pending, run{data: out, seq: minSeq, pooled: m.cfg.Pool != nil})
		m.stats.Passes++
		m.stats.RunsIn += len(batch)
		m.stats.BytesIn += int64(bytesIn)
		m.stats.BytesOut += int64(len(out))
		m.stats.Time += dur
		m.maybeStartPassLocked()
	}
	m.passes--
	m.cond.Broadcast()
	m.mu.Unlock()

	if err == nil && m.cfg.OnPass != nil {
		m.cfg.OnPass(PassInfo{
			Runs: len(batch), BytesIn: bytesIn, BytesOut: len(out),
			Keys: keys, Start: start, Duration: dur,
		})
	}
}

// Merge waits for in-flight passes, then performs the final k-way pass
// over every remaining run, calling emit once per key in strictly
// increasing key order. The combiner is not applied here, so emit sees the
// (possibly pre-combined) value lists the reduce function should consume.
// Emitted slices alias the merger's buffers and stay valid until the
// merger is garbage; they are never recycled into the pool. Must be called
// once, after all Expected segments were Added.
func (m *Merger) Merge(emit func(kv.KeyList) error) error {
	m.mu.Lock()
	for m.passes > 0 {
		m.cond.Wait()
	}
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return err
	}
	if m.cfg.Expected > 0 && m.added != m.cfg.Expected {
		n := m.added
		m.mu.Unlock()
		return fmt.Errorf("shuffle: final merge with %d/%d segments", n, m.cfg.Expected)
	}
	final := m.pending
	m.pending = nil
	m.mu.Unlock()
	return mergeRuns(final, nil, emit)
}

// Stats returns the background-pass totals accumulated so far.
func (m *Merger) Stats() MergeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
