package shuffle

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/ict-repro/mpid/internal/kv"
)

// buildRun frames the given key -> values map as a sorted run.
func buildRun(t *testing.T, groups map[string][][]byte) []byte {
	t.Helper()
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		buf = kv.AppendKeyList(buf, kv.KeyList{Key: []byte(k), Values: groups[k]})
	}
	return buf
}

// randSegments generates n segments with random overlapping keys; the
// returned reference maps key -> values in segment order.
func randSegments(t *testing.T, rng *rand.Rand, n, keysPer, vocab int) (segs [][]byte, ref map[string][][]byte) {
	t.Helper()
	ref = make(map[string][][]byte)
	perSeg := make([]map[string][][]byte, n)
	for s := 0; s < n; s++ {
		perSeg[s] = make(map[string][][]byte)
		for len(perSeg[s]) < keysPer {
			k := fmt.Sprintf("key-%04d", rng.Intn(vocab))
			if _, dup := perSeg[s][k]; dup {
				continue
			}
			var vals [][]byte
			for v := 0; v <= rng.Intn(3); v++ {
				vals = append(vals, []byte(fmt.Sprintf("s%d-%s-v%d", s, k, v)))
			}
			perSeg[s][k] = vals
		}
	}
	// Reference in segment order.
	for s := 0; s < n; s++ {
		keys := make([]string, 0, len(perSeg[s]))
		for k := range perSeg[s] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ref[k] = append(ref[k], perSeg[s][k]...)
		}
		segs = append(segs, buildRun(t, perSeg[s]))
	}
	return segs, ref
}

// collect runs the final merge and gathers emitted groups, checking key
// order is strictly increasing.
func collect(t *testing.T, m *Merger) (keys []string, got map[string][][]byte) {
	t.Helper()
	got = make(map[string][][]byte)
	var prev []byte
	err := m.Merge(func(kl kv.KeyList) error {
		if prev != nil && kv.Compare(prev, kl.Key) >= 0 {
			t.Fatalf("merge emitted %q after %q", kl.Key, prev)
		}
		prev = append([]byte(nil), kl.Key...)
		vals := make([][]byte, len(kl.Values))
		for i, v := range kl.Values {
			vals[i] = append([]byte(nil), v...)
		}
		key := string(kl.Key)
		keys = append(keys, key)
		got[key] = vals
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys, got
}

func TestValidateRun(t *testing.T) {
	run := buildRun(t, map[string][][]byte{
		"a": {[]byte("1")}, "b": {[]byte("2"), []byte("3")}, "c": {},
	})
	n, err := ValidateRun(run)
	if err != nil || n != 3 {
		t.Fatalf("ValidateRun = %d, %v; want 3, nil", n, err)
	}
	// Out of order: b before a.
	bad := kv.AppendKeyList(nil, kv.KeyList{Key: []byte("b")})
	bad = kv.AppendKeyList(bad, kv.KeyList{Key: []byte("a")})
	if _, err := ValidateRun(bad); err == nil {
		t.Fatal("unsorted run validated")
	}
	// Duplicate key.
	dup := kv.AppendKeyList(nil, kv.KeyList{Key: []byte("a")})
	dup = kv.AppendKeyList(dup, kv.KeyList{Key: []byte("a")})
	if _, err := ValidateRun(dup); err == nil {
		t.Fatal("duplicate-key run validated")
	}
	// Truncated frame.
	if _, err := ValidateRun(run[:len(run)-1]); err == nil {
		t.Fatal("truncated run validated")
	}
}

// TestMergeDeterministicOrder checks the pure final merge (no intermediate
// passes): exact equality with the reference, including cross-segment
// value order by segment sequence.
func TestMergeDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	segs, ref := randSegments(t, rng, 6, 40, 60)
	m := NewMerger(Config{Expected: len(segs), Factor: 100})
	for i, s := range segs {
		m.Add(i, s)
	}
	keys, got := collect(t, m)
	if len(keys) != len(ref) {
		t.Fatalf("merged %d keys, want %d", len(keys), len(ref))
	}
	for k, want := range ref {
		if !valuesEqual(got[k], want) {
			t.Fatalf("key %s: values %q, want %q", k, got[k], want)
		}
	}
	if st := m.Stats(); st.Passes != 0 {
		t.Fatalf("factor 100 over 6 segments ran %d passes, want 0", st.Passes)
	}
}

// TestMergerPipelinedPasses drives a small-factor merger from concurrent
// adders and checks (a) intermediate passes actually ran, (b) the merged
// key space and value multisets match the reference.
func TestMergerPipelinedPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	segs, ref := randSegments(t, rng, 24, 50, 120)
	var passes int
	var passMu sync.Mutex
	m := NewMerger(Config{
		Expected: len(segs),
		Factor:   4,
		Pool:     NewBufferPool(),
		OnPass: func(pi PassInfo) {
			passMu.Lock()
			passes++
			passMu.Unlock()
			if pi.Runs < 2 || pi.BytesIn <= 0 || pi.Keys <= 0 {
				t.Errorf("degenerate pass info: %+v", pi)
			}
		},
	})
	var wg sync.WaitGroup
	for i, s := range segs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Add(i, s)
		}()
	}
	wg.Wait()
	_, got := collect(t, m)
	if len(got) != len(ref) {
		t.Fatalf("merged %d keys, want %d", len(got), len(ref))
	}
	for k, want := range ref {
		if !sameMultiset(got[k], want) {
			t.Fatalf("key %s: values %q, want (any order) %q", k, got[k], want)
		}
	}
	passMu.Lock()
	defer passMu.Unlock()
	if passes == 0 {
		t.Fatal("no intermediate passes ran — pipeline not pipelining")
	}
	st := m.Stats()
	if st.Passes != passes || st.RunsIn == 0 || st.Time <= 0 {
		t.Fatalf("stats %+v disagree with %d observed passes", st, passes)
	}
}

// TestMergerCombine checks merge-time combining: with a sum combiner,
// per-key totals survive arbitrary pass composition, and intermediate
// passes shrink the data.
func TestMergerCombine(t *testing.T) {
	const segs, keysPer, vocab = 20, 30, 40
	rng := rand.New(rand.NewSource(3))
	ref := make(map[string]int64)
	m := NewMerger(Config{
		Expected: segs,
		Factor:   3,
		Pool:     NewBufferPool(),
		Combine: func(key []byte, values [][]byte) [][]byte {
			var total int64
			for _, v := range values {
				n, _, err := kv.ReadVLong(v)
				if err != nil {
					t.Errorf("combine: %v", err)
					return values
				}
				total += n
			}
			return [][]byte{kv.AppendVLong(nil, total)}
		},
	})
	for s := 0; s < segs; s++ {
		groups := make(map[string][][]byte)
		for len(groups) < keysPer {
			k := fmt.Sprintf("key-%03d", rng.Intn(vocab))
			if _, dup := groups[k]; dup {
				continue
			}
			n := int64(rng.Intn(50) + 1)
			ref[k] += n
			groups[k] = [][]byte{kv.AppendVLong(nil, n)}
		}
		m.Add(s, buildRun(t, groups))
	}
	got := make(map[string]int64)
	err := m.Merge(func(kl kv.KeyList) error {
		var total int64
		for _, v := range kl.Values {
			n, _, err := kv.ReadVLong(v)
			if err != nil {
				return err
			}
			total += n
		}
		got[string(kl.Key)] = total
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("merged %d keys, want %d", len(got), len(ref))
	}
	for k, want := range ref {
		if got[k] != want {
			t.Fatalf("key %s: total %d, want %d", k, got[k], want)
		}
	}
	if st := m.Stats(); st.Passes == 0 || st.BytesOut >= st.BytesIn {
		t.Fatalf("combining passes should shrink data: %+v", st)
	}
}

func TestMergeRefusesIncomplete(t *testing.T) {
	m := NewMerger(Config{Expected: 2})
	m.Add(0, buildRun(t, map[string][][]byte{"a": {[]byte("1")}}))
	if err := m.Merge(func(kv.KeyList) error { return nil }); err == nil {
		t.Fatal("final merge with missing segments did not error")
	}
}

func TestMergeEmptySegments(t *testing.T) {
	m := NewMerger(Config{Expected: 3})
	m.Add(0, nil)
	m.Add(1, buildRun(t, map[string][][]byte{"k": {[]byte("v")}}))
	m.Add(2, nil)
	keys, got := collect(t, m)
	if len(keys) != 1 || string(got["k"][0]) != "v" {
		t.Fatalf("merge over empty segments: keys %v, got %v", keys, got)
	}
}

func TestBufferPoolReuse(t *testing.T) {
	p := NewBufferPool()
	b := p.Get(100)
	if len(b) != 100 {
		t.Fatalf("Get(100) len = %d", len(b))
	}
	p.Put(b)
	b2 := p.Get(50)
	if cap(b2) < 50 || len(b2) != 50 {
		t.Fatalf("recycled Get(50): len %d cap %d", len(b2), cap(b2))
	}
	// Nil pool allocates.
	var nilPool *BufferPool
	if got := nilPool.Get(8); len(got) != 8 {
		t.Fatalf("nil pool Get(8) len = %d", len(got))
	}
	nilPool.Put(nil)
}

func TestCompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, size := range []int{0, 1, 100, 64 << 10} {
		src := make([]byte, size)
		for i := range src {
			src[i] = byte('a' + rng.Intn(8)) // compressible
		}
		comp := Compress(nil, src)
		out, err := Decompress(nil, comp, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		if _, err := Decompress(nil, comp, size+1); err == nil && size > 0 {
			t.Fatalf("size %d: inflate to wrong size did not error", size)
		}
	}
	big := bytes.Repeat([]byte("shuffle "), 8<<10)
	if comp := Compress(nil, big); len(comp) >= len(big) {
		t.Fatalf("compressible payload grew: %d -> %d", len(big), len(comp))
	}
}

func valuesEqual(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func sameMultiset(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i], bs[i] = string(a[i]), string(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
