package shuffle

// Optional segment compression for the jetty shuffle wire
// (mapred.compress.map.output). DEFLATE at the fastest level: shuffle
// segments are short-lived and the point is trading a little CPU for wire
// bytes, not archival ratios. Writers and readers are pooled so the
// per-segment cost is one Reset, not one allocation.

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

var flateWriters = sync.Pool{
	New: func() interface{} {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// Compress appends the DEFLATE encoding of src to dst and returns the
// result. dst may be nil or a recycled buffer ([:0]).
func Compress(dst, src []byte) []byte {
	buf := bytes.NewBuffer(dst)
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(buf)
	w.Write(src) // (*flate.Writer).Write to a bytes.Buffer cannot fail
	w.Close()
	flateWriters.Put(w)
	return buf.Bytes()
}

// Decompress inflates src, which must decode to exactly size bytes. The
// output buffer comes from pool when non-nil.
func Decompress(pool *BufferPool, src []byte, size int) ([]byte, error) {
	out := pool.Get(size)
	r := flate.NewReader(bytes.NewReader(src))
	n, err := io.ReadFull(r, out)
	if err != nil {
		pool.Put(out)
		return nil, fmt.Errorf("shuffle: inflate: %w", err)
	}
	// The stream must end exactly at size: a longer payload means the
	// length header lied.
	if extra, _ := io.Copy(io.Discard, r); extra != 0 {
		pool.Put(out)
		return nil, fmt.Errorf("shuffle: inflate: %d bytes past declared size %d", extra, size)
	}
	r.Close()
	return out[:n], nil
}
