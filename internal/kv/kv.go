// Package kv implements the key-value data model that MPI-D and the
// MapReduce framework operate on, together with Hadoop-compatible binary
// encodings.
//
// The paper's central observation (§III) is that MapReduce programs operate
// on "non-contiguous and variable sized key-value pair data", which MPI's
// contiguous fixed-size buffers do not capture. This package supplies the
// variable-size representation (Pair) and the serialization used when MPI-D
// realigns pairs into contiguous partitions: the same wire formats Hadoop's
// Writable types use — zero-compressed variable-length integers (VInt/VLong)
// and length-prefixed byte strings — so the realigned buffers carry no fixed
// padding.
package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Pair is a single key-value record. Keys and values are opaque bytes; the
// comparator and partitioner decide their meaning.
type Pair struct {
	Key   []byte
	Value []byte
}

// P builds a Pair from strings, a convenience for tests and examples.
func P(key, value string) Pair { return Pair{Key: []byte(key), Value: []byte(value)} }

// String renders the pair as key\tvalue, Hadoop's text output format.
func (p Pair) String() string { return fmt.Sprintf("%s\t%s", p.Key, p.Value) }

// Size returns the payload size in bytes (key + value, without framing).
func (p Pair) Size() int { return len(p.Key) + len(p.Value) }

// Clone deep-copies the pair so the caller may reuse its buffers.
func (p Pair) Clone() Pair {
	return Pair{Key: append([]byte(nil), p.Key...), Value: append([]byte(nil), p.Value...)}
}

// KeyList is a key with the list of all values collected for it — the
// <K, {V1, V1'}> shape the MPI-D combiner produces (§IV.A).
type KeyList struct {
	Key    []byte
	Values [][]byte
}

// Size returns the payload size in bytes.
func (kl KeyList) Size() int {
	n := len(kl.Key)
	for _, v := range kl.Values {
		n += len(v)
	}
	return n
}

// Compare orders keys lexicographically, the default Hadoop raw comparator.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// ---------------------------------------------------------------------------
// Hadoop VInt/VLong zero-compressed encoding.
//
// Format (org.apache.hadoop.io.WritableUtils): values in [-112, 127] are a
// single byte. Otherwise the first byte encodes sign and byte-count:
// -113..-120 mean a positive value of 1..8 following big-endian bytes,
// -121..-128 mean a negated value of 1..8 following bytes.

var errVIntTruncated = errors.New("kv: truncated vint")

// AppendVLong appends the zero-compressed encoding of v to dst.
func AppendVLong(dst []byte, v int64) []byte {
	if v >= -112 && v <= 127 {
		return append(dst, byte(v))
	}
	length := -112
	if v < 0 {
		v = ^v // v = -(v+1)
		length = -120
	}
	tmp := v
	for tmp != 0 {
		tmp >>= 8
		length--
	}
	dst = append(dst, byte(length))
	var n int
	if length < -120 {
		n = -(length + 120)
	} else {
		n = -(length + 112)
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(8*uint(i))))
	}
	return dst
}

// ReadVLong decodes a zero-compressed integer from b, returning the value
// and the number of bytes consumed.
func ReadVLong(b []byte) (int64, int, error) {
	if len(b) == 0 {
		return 0, 0, errVIntTruncated
	}
	first := int8(b[0])
	if first >= -112 {
		return int64(first), 1, nil
	}
	var n int
	neg := false
	if first < -120 {
		n = -(int(first) + 120)
		neg = true
	} else {
		n = -(int(first) + 112)
	}
	if len(b) < 1+n {
		return 0, 0, errVIntTruncated
	}
	var v int64
	for i := 0; i < n; i++ {
		v = v<<8 | int64(b[1+i])
	}
	if neg {
		v = ^v
	}
	return v, 1 + n, nil
}

// VLongSize returns the encoded size of v in bytes without encoding it.
func VLongSize(v int64) int {
	if v >= -112 && v <= 127 {
		return 1
	}
	if v < 0 {
		v = ^v
	}
	n := 0
	for v != 0 {
		v >>= 8
		n++
	}
	return 1 + n
}

// ---------------------------------------------------------------------------
// Length-prefixed byte strings (Text / BytesWritable analogue).

// AppendBytes appends a VInt length prefix followed by the raw bytes.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendVLong(dst, int64(len(b)))
	return append(dst, b...)
}

// ReadBytes decodes a length-prefixed byte string, returning a subslice of b
// (no copy) and bytes consumed.
func ReadBytes(b []byte) ([]byte, int, error) {
	n, used, err := ReadVLong(b)
	if err != nil {
		return nil, 0, err
	}
	if n < 0 || int64(len(b)-used) < n {
		return nil, 0, errVIntTruncated
	}
	return b[used : used+int(n) : used+int(n)], used + int(n), nil
}

// BytesSize returns the encoded size of a length-prefixed byte string.
func BytesSize(b []byte) int { return VLongSize(int64(len(b))) + len(b) }

// ---------------------------------------------------------------------------
// Typed helpers for common Hadoop writables.

// EncodeInt64 renders v as a fixed 8-byte big-endian value (LongWritable).
func EncodeInt64(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// DecodeInt64 parses a LongWritable value.
func DecodeInt64(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("kv: LongWritable needs 8 bytes, got %d", len(b))
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}

// ---------------------------------------------------------------------------
// Pair stream encoding: the on-the-wire format of a realigned partition.
// Each record is AppendBytes(key) ++ AppendBytes(value); a partition is a
// plain concatenation, so it can be scanned sequentially in streaming mode.

// AppendPair appends the framed encoding of p to dst.
func AppendPair(dst []byte, p Pair) []byte {
	dst = AppendBytes(dst, p.Key)
	return AppendBytes(dst, p.Value)
}

// PairSize returns the framed size of p.
func PairSize(p Pair) int { return BytesSize(p.Key) + BytesSize(p.Value) }

// ReadPair decodes one framed pair, returning subslices of b and bytes
// consumed.
func ReadPair(b []byte) (Pair, int, error) {
	k, n1, err := ReadBytes(b)
	if err != nil {
		return Pair{}, 0, err
	}
	v, n2, err := ReadBytes(b[n1:])
	if err != nil {
		return Pair{}, 0, err
	}
	return Pair{Key: k, Value: v}, n1 + n2, nil
}

// AppendKeyList appends the framed encoding of a key with its value list:
// key, value count, then each value.
func AppendKeyList(dst []byte, kl KeyList) []byte {
	dst = AppendBytes(dst, kl.Key)
	dst = AppendVLong(dst, int64(len(kl.Values)))
	for _, v := range kl.Values {
		dst = AppendBytes(dst, v)
	}
	return dst
}

// KeyListSize returns the framed size of kl.
func KeyListSize(kl KeyList) int {
	n := BytesSize(kl.Key) + VLongSize(int64(len(kl.Values)))
	for _, v := range kl.Values {
		n += BytesSize(v)
	}
	return n
}

// ReadKeyList decodes one framed key-list, returning subslices of b.
func ReadKeyList(b []byte) (KeyList, int, error) {
	k, n, err := ReadBytes(b)
	if err != nil {
		return KeyList{}, 0, err
	}
	cnt, used, err := ReadVLong(b[n:])
	if err != nil {
		return KeyList{}, 0, err
	}
	n += used
	if cnt < 0 {
		return KeyList{}, 0, fmt.Errorf("kv: negative value count %d", cnt)
	}
	kl := KeyList{Key: k, Values: make([][]byte, 0, cnt)}
	for i := int64(0); i < cnt; i++ {
		v, used, err := ReadBytes(b[n:])
		if err != nil {
			return KeyList{}, 0, err
		}
		kl.Values = append(kl.Values, v)
		n += used
	}
	return kl, n, nil
}

// ---------------------------------------------------------------------------
// Streaming reader/writer over io interfaces, used by spill files and the
// reduce-side reverse realignment.

// Writer frames pairs onto an io.Writer.
type Writer struct {
	w   io.Writer
	buf []byte
	n   int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WritePair frames and writes one pair.
func (w *Writer) WritePair(p Pair) error {
	w.buf = AppendPair(w.buf[:0], p)
	n, err := w.w.Write(w.buf)
	w.n += int64(n)
	return err
}

// BytesWritten returns the total framed bytes written.
func (w *Writer) BytesWritten() int64 { return w.n }

// Reader scans framed pairs from an io.Reader.
type Reader struct {
	r   *bufferedReader
	key []byte
	val []byte
}

// bufferedReader is a minimal pull buffer; bufio would work but pulling
// exactly what the frames need keeps ReadPair allocation-free after warmup.
type bufferedReader struct {
	r   io.Reader
	buf []byte
	pos int
	end int
}

func (br *bufferedReader) readByte() (byte, error) {
	if br.pos == br.end {
		if err := br.fill(); err != nil {
			return 0, err
		}
	}
	b := br.buf[br.pos]
	br.pos++
	return b, nil
}

func (br *bufferedReader) fill() error {
	if br.buf == nil {
		br.buf = make([]byte, 32*1024)
	}
	br.pos, br.end = 0, 0
	n, err := br.r.Read(br.buf)
	if n > 0 {
		br.end = n
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

func (br *bufferedReader) readFull(dst []byte) error {
	for len(dst) > 0 {
		if br.pos == br.end {
			if err := br.fill(); err != nil {
				if err == io.EOF {
					return io.ErrUnexpectedEOF
				}
				return err
			}
		}
		n := copy(dst, br.buf[br.pos:br.end])
		br.pos += n
		dst = dst[n:]
	}
	return nil
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: &bufferedReader{r: r}}
}

func (r *Reader) readVLong() (int64, error) {
	b0, err := r.r.readByte()
	if err != nil {
		return 0, err
	}
	first := int8(b0)
	if first >= -112 {
		return int64(first), nil
	}
	var n int
	neg := false
	if first < -120 {
		n = -(int(first) + 120)
		neg = true
	} else {
		n = -(int(first) + 112)
	}
	var v int64
	for i := 0; i < n; i++ {
		b, err := r.r.readByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		v = v<<8 | int64(b)
	}
	if neg {
		v = ^v
	}
	return v, nil
}

func (r *Reader) readBytesInto(dst []byte) ([]byte, error) {
	n, err := r.readVLong()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("kv: negative length %d", n)
	}
	if cap(dst) < int(n) {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	if err := r.r.readFull(dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// ReadPair reads the next framed pair. The returned slices are only valid
// until the next call. io.EOF marks a clean end of stream.
func (r *Reader) ReadPair() (Pair, error) {
	k, err := r.readBytesInto(r.key)
	if err != nil {
		return Pair{}, err // EOF before a key is a clean end
	}
	r.key = k
	v, err := r.readBytesInto(r.val)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Pair{}, err
	}
	r.val = v
	return Pair{Key: r.key, Value: r.val}, nil
}
