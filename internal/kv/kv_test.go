package kv

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestVLongRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 112, -112, 127, 128, -113, 255, 256, -129,
		1 << 20, -(1 << 20), math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		enc := AppendVLong(nil, v)
		if len(enc) != VLongSize(v) {
			t.Errorf("VLongSize(%d) = %d, encoded %d bytes", v, VLongSize(v), len(enc))
		}
		got, n, err := ReadVLong(enc)
		if err != nil || got != v || n != len(enc) {
			t.Errorf("ReadVLong(%d): got %d, n=%d, err=%v", v, got, n, err)
		}
	}
}

func TestVLongPropertyRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		enc := AppendVLong(nil, v)
		got, n, err := ReadVLong(enc)
		return err == nil && got == v && n == len(enc) && len(enc) == VLongSize(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVLongHadoopCompatibleSingleByteRange(t *testing.T) {
	// Hadoop stores -112..127 in one byte equal to the value itself.
	for v := int64(-112); v <= 127; v++ {
		enc := AppendVLong(nil, v)
		if len(enc) != 1 || int8(enc[0]) != int8(v) {
			t.Fatalf("VLong(%d) = % x, want single byte", v, enc)
		}
	}
}

func TestVLongKnownEncodings(t *testing.T) {
	// Reference vectors from Hadoop's WritableUtils.
	cases := []struct {
		v   int64
		enc []byte
	}{
		{128, []byte{0x8f, 0x80}},           // -113, then 128
		{-113, []byte{0x87, 0x70}},          // -121, then 112 (=-(-113)-1)
		{4096, []byte{0x8e, 0x10, 0x00}},    // -114, two bytes
		{-4097, []byte{0x86, 0x10, 0x00}},   // -122, two bytes of 4096
		{1 << 24, []byte{0x8c, 1, 0, 0, 0}}, // -116, four bytes
	}
	for _, c := range cases {
		got := AppendVLong(nil, c.v)
		if !bytes.Equal(got, c.enc) {
			t.Errorf("VLong(%d) = % x, want % x", c.v, got, c.enc)
		}
	}
}

func TestVLongTruncated(t *testing.T) {
	enc := AppendVLong(nil, 1<<40)
	for i := 0; i < len(enc); i++ {
		if _, _, err := ReadVLong(enc[:i]); err == nil {
			t.Errorf("ReadVLong of %d/%d bytes succeeded", i, len(enc))
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", string(make([]byte, 5000))} {
		enc := AppendBytes(nil, []byte(s))
		if len(enc) != BytesSize([]byte(s)) {
			t.Errorf("BytesSize(%q) = %d, encoded %d", s, BytesSize([]byte(s)), len(enc))
		}
		got, n, err := ReadBytes(enc)
		if err != nil || string(got) != s || n != len(enc) {
			t.Errorf("ReadBytes(%q): %q, n=%d, err=%v", s, got, n, err)
		}
	}
}

func TestReadBytesTruncated(t *testing.T) {
	enc := AppendBytes(nil, []byte("hello"))
	if _, _, err := ReadBytes(enc[:3]); err == nil {
		t.Error("truncated ReadBytes succeeded")
	}
	if _, _, err := ReadBytes(nil); err == nil {
		t.Error("empty ReadBytes succeeded")
	}
}

func TestPairRoundTrip(t *testing.T) {
	p := P("the-key", "the-value")
	enc := AppendPair(nil, p)
	if len(enc) != PairSize(p) {
		t.Errorf("PairSize = %d, encoded %d", PairSize(p), len(enc))
	}
	got, n, err := ReadPair(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("ReadPair: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got.Key, p.Key) || !bytes.Equal(got.Value, p.Value) {
		t.Errorf("ReadPair = %v, want %v", got, p)
	}
}

func TestPairPropertyRoundTrip(t *testing.T) {
	f := func(key, value []byte) bool {
		p := Pair{Key: key, Value: value}
		enc := AppendPair(nil, p)
		got, n, err := ReadPair(enc)
		return err == nil && n == len(enc) &&
			bytes.Equal(got.Key, key) && bytes.Equal(got.Value, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyListRoundTrip(t *testing.T) {
	kl := KeyList{Key: []byte("word"), Values: [][]byte{[]byte("1"), []byte("2"), []byte("3")}}
	enc := AppendKeyList(nil, kl)
	if len(enc) != KeyListSize(kl) {
		t.Errorf("KeyListSize = %d, encoded %d", KeyListSize(kl), len(enc))
	}
	got, n, err := ReadKeyList(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("ReadKeyList: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got.Key, kl.Key) || len(got.Values) != 3 {
		t.Fatalf("ReadKeyList = %+v", got)
	}
	for i := range kl.Values {
		if !bytes.Equal(got.Values[i], kl.Values[i]) {
			t.Errorf("value %d = %q, want %q", i, got.Values[i], kl.Values[i])
		}
	}
}

func TestKeyListEmptyValues(t *testing.T) {
	kl := KeyList{Key: []byte("k")}
	enc := AppendKeyList(nil, kl)
	got, _, err := ReadKeyList(enc)
	if err != nil || len(got.Values) != 0 {
		t.Fatalf("empty key-list: %+v, err=%v", got, err)
	}
}

func TestInt64Codec(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		got, err := DecodeInt64(EncodeInt64(v))
		if err != nil || got != v {
			t.Errorf("Int64 roundtrip %d: got %d err %v", v, got, err)
		}
	}
	if _, err := DecodeInt64([]byte{1, 2}); err == nil {
		t.Error("DecodeInt64 of 2 bytes succeeded")
	}
}

func TestCompareIsLexicographic(t *testing.T) {
	if Compare([]byte("a"), []byte("b")) >= 0 ||
		Compare([]byte("b"), []byte("a")) <= 0 ||
		Compare([]byte("ab"), []byte("ab")) != 0 ||
		Compare([]byte("a"), []byte("ab")) >= 0 {
		t.Error("Compare is not lexicographic")
	}
}

func TestStreamWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pairs := []Pair{P("a", "1"), P("bb", "22"), P("", ""), P("ccc", "")}
	var want int64
	for _, p := range pairs {
		if err := w.WritePair(p); err != nil {
			t.Fatal(err)
		}
		want += int64(PairSize(p))
	}
	if w.BytesWritten() != want {
		t.Errorf("BytesWritten = %d, want %d", w.BytesWritten(), want)
	}
	r := NewReader(&buf)
	for i, p := range pairs {
		got, err := r.ReadPair()
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if !bytes.Equal(got.Key, p.Key) || !bytes.Equal(got.Value, p.Value) {
			t.Errorf("pair %d = %v, want %v", i, got, p)
		}
	}
	if _, err := r.ReadPair(); err != io.EOF {
		t.Errorf("end of stream err = %v, want io.EOF", err)
	}
}

func TestStreamReaderLargeRecords(t *testing.T) {
	// Records larger than the 32 KiB internal buffer must still decode.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	big := bytes.Repeat([]byte("x"), 100*1024)
	if err := w.WritePair(Pair{Key: []byte("big"), Value: big}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	got, err := r.ReadPair()
	if err != nil || !bytes.Equal(got.Value, big) {
		t.Fatalf("large record: err=%v len=%d", err, len(got.Value))
	}
}

func TestStreamReaderTruncatedValue(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePair(P("key", "value")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.ReadPair(); err != io.ErrUnexpectedEOF {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestPairCloneIndependence(t *testing.T) {
	orig := P("k", "v")
	cl := orig.Clone()
	orig.Key[0] = 'X'
	if cl.Key[0] != 'k' {
		t.Error("Clone shares key storage")
	}
}

func TestPairStringAndSize(t *testing.T) {
	p := P("word", "1")
	if p.String() != "word\t1" {
		t.Errorf("String = %q", p.String())
	}
	if p.Size() != 5 {
		t.Errorf("Size = %d, want 5", p.Size())
	}
	kl := KeyList{Key: []byte("ab"), Values: [][]byte{[]byte("c"), []byte("de")}}
	if kl.Size() != 5 {
		t.Errorf("KeyList.Size = %d, want 5", kl.Size())
	}
}
