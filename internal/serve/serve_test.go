package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
)

// testCluster is the small fast per-job engine template every serve test
// uses: two trackers, probing off unless the test turns it on.
func testCluster() hadoop.Config {
	return hadoop.Config{NumTrackers: 2}
}

// smallWC is a quick deterministic WordCount job.
func smallWC(t *testing.T) (mapred.Job, []mapred.Split) {
	t.Helper()
	job, splits, err := WordCount(map[string]int64{"bytes": 8 << 10, "split": 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return job, splits
}

// gatedJob is a single-split job whose only map task blocks until release
// is closed — the tool for filling slots and queues deterministically. The
// mapper also watches stop (closed by t.Cleanup) so an engine abort can
// always finish the task goroutine.
func gatedJob(name string, release, stop <-chan struct{}) (mapred.Job, []mapred.Split) {
	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		select {
		case <-release:
		case <-stop:
		}
		return emit(line, kv.AppendVLong(nil, 1))
	})
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		return emit(key, kv.AppendVLong(nil, int64(len(values))))
	})
	job := mapred.Job{Name: name, Mapper: mapper, Reducer: reducer, NumReducers: 1}
	return job, mapred.SplitText([]byte(name), len(name))
}

func TestSubmitRunsJob(t *testing.T) {
	s := New(Config{Cluster: testCluster()})
	job, splits := smallWC(t)
	j, err := s.Submit("alice", "wc", job, splits)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if j.Result == nil || len(j.Result.Pairs()) == 0 {
		t.Fatal("finished job has no output")
	}
	if j.Report == nil {
		t.Fatal("finished job has no report")
	}
	if j.Latency() <= 0 {
		t.Fatalf("latency = %v, want > 0", j.Latency())
	}
	st := s.Stats()
	if st.Done != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want done=1 failed=0", st)
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitDefaultsTenant(t *testing.T) {
	s := New(Config{Cluster: testCluster()})
	defer s.Drain(5 * time.Second)
	job, splits := smallWC(t)
	j, err := s.Submit("", "wc", job, splits)
	if err != nil {
		t.Fatal(err)
	}
	if j.Tenant != "default" {
		t.Fatalf("tenant = %q, want default", j.Tenant)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionControlSaturates fills every slot and queue position with
// gated jobs, then checks the next submission is rejected with the typed
// error carrying the queue depth and a positive retry hint — and that the
// slot freed by a finished job admits again.
func TestAdmissionControlSaturates(t *testing.T) {
	release := make(chan struct{})
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	s := New(Config{Slots: 1, QueueDepth: 2, Cluster: testCluster()})

	var jobs []*Job
	for i := 0; i < 3; i++ { // 1 running + 2 queued
		job, splits := gatedJob("gate", release, stop)
		j, err := s.Submit("alice", "gate", job, splits)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}

	_, err := s.Submit("alice", "gate", mapred.Job{}, nil)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("err = %v (%T), want *SaturatedError", err, err)
	}
	// Queued counts the whole backlog (1 running + 2 waiting) against the
	// configured capacity (slots + queue).
	if sat.Queued != 3 || sat.Depth != 3 {
		t.Fatalf("SaturatedError = %+v, want queued=3 depth=3", sat)
	}
	if sat.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", sat.RetryAfter)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}

	close(release)
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatalf("gated job: %v", err)
		}
	}
	// Capacity is back: the same submission is admitted now.
	job, splits := smallWC(t)
	j, err := s.Submit("alice", "wc", job, splits)
	if err != nil {
		t.Fatalf("submit after drain of queue: %v", err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulingFairAcrossTenantsFIFOWithin saturates a one-slot service
// with a backlog from tenant a, then one job from tenant b. Round-robin
// must run b's job before a's backlog drains, while a's own jobs stay in
// submission order.
func TestSchedulingFairAcrossTenantsFIFOWithin(t *testing.T) {
	release := make(chan struct{})
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	s := New(Config{Slots: 1, QueueDepth: 16, Cluster: testCluster()})

	var mu sync.Mutex
	var order []string
	logged := func(name string) (mapred.Job, []mapred.Split) {
		job, splits := gatedJob(name, release, stop)
		inner := job.Mapper
		job.Mapper = mapred.MapperFunc(func(k, v []byte, emit mapred.Emit) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return inner.Map(k, v, emit)
		})
		return job, splits
	}

	var jobs []*Job
	submit := func(tenant, name string) {
		job, splits := logged(name)
		j, err := s.Submit(tenant, name, job, splits)
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		jobs = append(jobs, j)
	}
	submit("a", "a1") // occupies the slot
	submit("a", "a2")
	submit("a", "a3")
	submit("b", "b1")

	close(release)
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", j.Name, err)
		}
	}

	mu.Lock()
	got := strings.Join(order, " ")
	mu.Unlock()
	pos := func(name string) int { return strings.Index(got, name) }
	if pos("a1") < 0 || pos("a2") < 0 || pos("a3") < 0 || pos("b1") < 0 {
		t.Fatalf("missing executions in %q", got)
	}
	// FIFO within tenant a.
	if !(pos("a1") < pos("a2") && pos("a2") < pos("a3")) {
		t.Fatalf("tenant a out of FIFO order: %q", got)
	}
	// Fairness: b1 arrived last but must not wait out a's whole backlog.
	if pos("b1") > pos("a3") {
		t.Fatalf("tenant b starved behind tenant a's backlog: %q", got)
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDrainGraceful(t *testing.T) {
	s := New(Config{Cluster: testCluster()})
	job, splits := smallWC(t)
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit("alice", "wc", job, splits)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatalf("job not finished before drain returned: %v", err)
		}
	}
	// A drained service admits nothing.
	if _, err := s.Submit("alice", "wc", job, splits); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	// Draining again is an immediate no-op.
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDrainTimeoutCancelsStragglers submits a job that only finishes when
// its own context is canceled, then drains with a short budget: the drain
// must cancel the job, report it, and still return (the engine threads the
// cancellation down, so the straggler actually stops).
func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	s := New(Config{Cluster: testCluster()})

	var mu sync.Mutex
	var jctx context.Context
	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		// Wait for the submitted job's context, then for its cancellation.
		for {
			mu.Lock()
			c := jctx
			mu.Unlock()
			if c != nil {
				<-c.Done()
				return c.Err()
			}
			time.Sleep(time.Millisecond)
		}
	})
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		return emit(key, nil)
	})
	job := mapred.Job{Name: "straggler", Mapper: mapper, Reducer: reducer, NumReducers: 1}
	j, err := s.Submit("alice", "straggler", job, mapred.SplitText([]byte("x"), 1))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	jctx = j.ctx
	mu.Unlock()

	err = s.Drain(100 * time.Millisecond)
	if err == nil {
		t.Fatal("drain of a stuck job returned nil, want cancellation report")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("drain error = %v, want it to name canceled jobs", err)
	}
	<-j.Done()
	if j.Err == nil {
		t.Fatal("canceled job has nil error")
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("failed = %d, want 1", st.Failed)
	}
}

func TestOutputDigestDeterministicAndSensitive(t *testing.T) {
	s := New(Config{Cluster: testCluster()})
	defer s.Drain(5 * time.Second)
	run := func(seed int64) []byte {
		job, splits, err := WordCount(map[string]int64{"bytes": 8 << 10, "seed": seed})
		if err != nil {
			t.Fatal(err)
		}
		j, err := s.Submit("alice", "wc", job, splits)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return OutputDigest(j.Result)
	}
	a1, a2, b := run(1), run(1), run(2)
	if !bytes.Equal(a1, a2) {
		t.Fatal("same seed produced different digests")
	}
	if bytes.Equal(a1, b) {
		t.Fatal("different seeds produced equal digests")
	}
	if OutputDigest(nil) == nil {
		t.Fatal("nil result digest should still be a hash")
	}
}

func TestLookupUnknownJob(t *testing.T) {
	s := New(Config{Cluster: testCluster()})
	defer s.Drain(time.Second)
	if _, err := s.Lookup(99); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

// TestRPCRoundTrip runs the full wire path: daemon-side protocol, remote
// submit/wait/stats, the digest crossing the wire intact, and unknown
// workloads failing cleanly.
func TestRPCRoundTrip(t *testing.T) {
	s := New(Config{Cluster: testCluster()})
	defer s.Drain(5 * time.Second)
	srv := hadooprpc.NewServer()
	srv.Register(NewProtocol(s, NewWorkloads()))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialService(addr, hadooprpc.Options{CallTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	params := map[string]int64{"bytes": 8 << 10, "split": 2 << 10}
	id, err := c.Submit("alice", "wordcount", params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Duration <= 0 || len(res.Digest) == 0 {
		t.Fatalf("remote result = %+v, want ok with latency and digest", res)
	}
	// The wire digest equals a local run of the same deterministic job.
	j, err := s.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Digest, OutputDigest(j.Result)) {
		t.Fatal("digest over the wire differs from the local digest")
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("remote stats done = %d, want 1", st.Done)
	}
	if _, err := c.Submit("alice", "no-such-workload", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("unknown workload err = %v", err)
	}
}

// TestRPCSaturationRoundTrip checks a saturated admission crosses the wire
// as a reconstructable typed error with the retry hint intact.
func TestRPCSaturationRoundTrip(t *testing.T) {
	release := make(chan struct{})
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	s := New(Config{Slots: 1, QueueDepth: 1, Cluster: testCluster()})
	workloads := NewWorkloads()
	workloads.Register("gate", func(map[string]int64) (mapred.Job, []mapred.Split, error) {
		job, splits := gatedJob("gate", release, stop)
		return job, splits, nil
	})
	srv := hadooprpc.NewServer()
	srv.Register(NewProtocol(s, workloads))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialService(addr, hadooprpc.Options{CallTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids := make([]int64, 0, 2)
	for i := 0; i < 2; i++ { // fill the slot and the queue
		id, err := c.Submit("alice", "gate", nil)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	_, err = c.Submit("alice", "gate", nil)
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("remote saturated err = %v (%T), want *SaturatedError", err, err)
	}
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("errors.Is(err, ErrSaturated) = false for %v", err)
	}
	if sat.Queued != 2 || sat.Depth != 2 || sat.RetryAfter <= 0 {
		t.Fatalf("decoded SaturatedError = %+v", sat)
	}

	close(release)
	for _, id := range ids {
		if res, err := c.Wait(id); err != nil || !res.OK {
			t.Fatalf("wait %d = %+v, %v", id, res, err)
		}
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSaturatedEncodeDecode(t *testing.T) {
	in := &SaturatedError{Queued: 12, Depth: 64, RetryAfter: 150 * time.Millisecond}
	out, ok := decodeSaturated("hadooprpc: remote error: " + encodeSaturated(in))
	if !ok {
		t.Fatal("decode failed")
	}
	if out.Queued != 12 || out.Depth != 64 || out.RetryAfter != 150*time.Millisecond {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	if _, ok := decodeSaturated("some other failure"); ok {
		t.Fatal("decoded a saturation out of an unrelated error")
	}
}

func TestJobsListing(t *testing.T) {
	s := New(Config{Cluster: testCluster()})
	defer s.Drain(5 * time.Second)
	job, splits := smallWC(t)
	j, err := s.Submit("alice", "wc", job, splits)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	jobs := s.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("Jobs() = %d entries, want 1", len(jobs))
	}
	info := jobs[0]
	if info.ID != j.ID || info.Tenant != "alice" || info.State != "done" || info.Latency <= 0 {
		t.Fatalf("JobInfo = %+v", info)
	}
}
