package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

// Workload builds a runnable job from wire-encodable parameters. Jobs
// carry function values, which cannot cross the RPC boundary; remote
// submissions instead name a registered workload and pass integer
// parameters, and the daemon constructs the job server-side — the
// job-jar-by-name model, scaled down.
type Workload func(params map[string]int64) (mapred.Job, []mapred.Split, error)

// ErrBadParam is the unknown-parameter sentinel: errors.Is(err,
// ErrBadParam) is true for every *BadParamError, however it traveled.
var ErrBadParam = errors.New("serve: unknown workload parameter")

// BadParamError rejects a submission naming a parameter the workload does
// not accept. Unknown names used to be silently ignored, so a client typo
// (`reducer` for `reducers`) ran the default configuration and returned a
// digest that "passed" against the wrong job; now the submission fails
// loudly, and the error survives the RPC wire (see Client.Submit).
type BadParamError struct {
	// Workload is the submitted workload name.
	Workload string
	// Param is the offending parameter name.
	Param string
	// Known lists the parameter names the workload accepts, sorted.
	Known []string
}

func (e *BadParamError) Error() string {
	return fmt.Sprintf("serve: workload %q has no parameter %q (known: %s)",
		e.Workload, e.Param, strings.Join(e.Known, ", "))
}

// Is makes errors.Is(err, ErrBadParam) match.
func (e *BadParamError) Is(target error) bool { return target == ErrBadParam }

// registered is one registry entry: the builder plus its declared
// parameter names.
type registered struct {
	fn     Workload
	params map[string]bool
}

// Workloads is a named workload registry for the RPC front-end.
type Workloads struct {
	mu sync.Mutex
	m  map[string]registered
}

// NewWorkloads creates a registry pre-loaded with the full workload suite
// (workload.Suite): wordcount, terasort, invindex, grep, join, pagerank.
func NewWorkloads() *Workloads {
	w := &Workloads{m: make(map[string]registered)}
	for _, spec := range workload.Suite() {
		w.Register(spec.Name, spec.Build, spec.Params...)
	}
	return w
}

// Register adds (or replaces) a named workload. params declares every
// parameter name the builder accepts; Build rejects submissions naming any
// other parameter.
func (w *Workloads) Register(name string, fn Workload, params ...string) {
	known := make(map[string]bool, len(params))
	for _, p := range params {
		known[p] = true
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.m[name] = registered{fn: fn, params: known}
}

// Names lists the registered workloads, sorted.
func (w *Workloads) Names() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.m))
	for name := range w.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Build constructs the named workload's job, rejecting unknown workload
// names and — with a typed *BadParamError — unknown parameter names.
func (w *Workloads) Build(name string, params map[string]int64) (mapred.Job, []mapred.Split, error) {
	w.mu.Lock()
	reg, ok := w.m[name]
	w.mu.Unlock()
	if !ok {
		return mapred.Job{}, nil, fmt.Errorf("serve: unknown workload %q", name)
	}
	for p := range params {
		if !reg.params[p] {
			known := make([]string, 0, len(reg.params))
			for k := range reg.params {
				known = append(known, k)
			}
			sort.Strings(known)
			return mapred.Job{}, nil, &BadParamError{Workload: name, Param: p, Known: known}
		}
	}
	return reg.fn(params)
}

// WordCount is the built-in WordCount workload, kept as a directly callable
// builder for tests and embedders; it is the same function the suite
// registers under "wordcount". See workload.WordCount for the parameters.
func WordCount(params map[string]int64) (mapred.Job, []mapred.Split, error) {
	return workload.WordCount(params)
}
