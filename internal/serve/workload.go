package serve

import (
	"bytes"
	"fmt"
	"sync"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

// Workload builds a runnable job from wire-encodable parameters. Jobs
// carry function values, which cannot cross the RPC boundary; remote
// submissions instead name a registered workload and pass integer
// parameters, and the daemon constructs the job server-side — the
// job-jar-by-name model, scaled down.
type Workload func(params map[string]int64) (mapred.Job, []mapred.Split, error)

// Workloads is a named workload registry for the RPC front-end.
type Workloads struct {
	mu sync.Mutex
	m  map[string]Workload
}

// NewWorkloads creates a registry with the built-in "wordcount" already
// registered.
func NewWorkloads() *Workloads {
	w := &Workloads{m: make(map[string]Workload)}
	w.Register("wordcount", WordCount)
	return w
}

// Register adds (or replaces) a named workload.
func (w *Workloads) Register(name string, fn Workload) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.m[name] = fn
}

// Build constructs the named workload's job.
func (w *Workloads) Build(name string, params map[string]int64) (mapred.Job, []mapred.Split, error) {
	w.mu.Lock()
	fn, ok := w.m[name]
	w.mu.Unlock()
	if !ok {
		return mapred.Job{}, nil, fmt.Errorf("serve: unknown workload %q", name)
	}
	return fn(params)
}

// param reads an integer parameter with a default.
func param(params map[string]int64, key string, def int64) int64 {
	if v, ok := params[key]; ok {
		return v
	}
	return def
}

// WordCount is the built-in workload: Zipf-distributed synthetic text
// through the canonical WordCount job — the same job shape the paper's
// live engine comparison runs. Parameters (all optional):
//
//	bytes     input size in bytes (default 32768)
//	split     split size in bytes (default 8192)
//	reducers  reduce task count (default 2)
//	seed      text generator seed (default 1) — same seed, same input,
//	          same output, which is what makes cross-run digests comparable
func WordCount(params map[string]int64) (mapred.Job, []mapred.Split, error) {
	size := param(params, "bytes", 32<<10)
	split := param(params, "split", 8<<10)
	reducers := param(params, "reducers", 2)
	seed := param(params, "seed", 1)
	if size <= 0 || split <= 0 || reducers <= 0 {
		return mapred.Job{}, nil, fmt.Errorf("serve: wordcount params out of range (bytes=%d split=%d reducers=%d)", size, split, reducers)
	}

	vocab := workload.NewVocabulary(500, seed)
	text := workload.NewTextGenerator(vocab, 1.15, seed).BytesOfText(int(size))
	splits := mapred.SplitText(text, int(split))

	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		for _, w := range bytes.Fields(line) {
			if err := emit(w, kv.AppendVLong(nil, 1)); err != nil {
				return err
			}
		}
		return nil
	})
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		var total int64
		for _, v := range values {
			n, _, err := kv.ReadVLong(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit(key, kv.AppendVLong(nil, total))
	})
	job := mapred.Job{
		Name:        "serve-wordcount",
		Mapper:      mapper,
		Reducer:     reducer,
		Combiner:    mapred.CombinerFromReducer(reducer),
		NumReducers: int(reducers),
	}
	return job, splits, nil
}
