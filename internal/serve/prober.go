package serve

import (
	"context"
	"sort"
	"sync"
	"time"

	"fmt"

	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/jetty"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/obs"
)

// ProbeConfig paces the active liveness prober.
type ProbeConfig struct {
	// Interval is the probe pacing per tracker (default 5 ms here, where a
	// heartbeat is 2 ms; a real cluster would probe at hundreds of ms).
	Interval time.Duration
	// Timeout bounds one probe's round trip (default 4x Interval). A probe
	// that misses it counts as lost even if a response arrives later.
	Timeout time.Duration
	// Window is the rolling sample window per tracker over which loss rate
	// and latency are kept (default 32 probes).
	Window int
	// DeadAfter is the consecutive-loss threshold for a dead verdict
	// (default 5): one dropped probe is noise, DeadAfter in a row is a
	// dead data path. Larger values tolerate flappier networks at the
	// cost of slower detection.
	DeadAfter int
	// Disable turns active probing off; tracker loss then falls back to
	// the engine's heartbeat-timeout sweep alone.
	Disable bool
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 4 * c.Interval
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 5
	}
	return c
}

// probeState is one tracker's rolling probe history.
type probeState struct {
	addr       string
	sent       int
	lost       int
	window     []bool          // ring: true = answered
	rtts       []time.Duration // ring, parallel to window (0 on loss)
	next       int
	consecLoss int
	verdict    bool // dead verdict already delivered
}

// record pushes one probe outcome into the ring.
func (ps *probeState) record(ok bool, rtt time.Duration, window int) {
	ps.sent++
	if !ok {
		ps.lost++
		ps.consecLoss++
	} else {
		ps.consecLoss = 0
	}
	if len(ps.window) < window {
		ps.window = append(ps.window, ok)
		ps.rtts = append(ps.rtts, rtt)
	} else {
		ps.window[ps.next] = ok
		ps.rtts[ps.next] = rtt
		ps.next = (ps.next + 1) % window
	}
}

// ProbeStats is one tracker's view for diagnostics.
type ProbeStats struct {
	ID         int
	Addr       string
	Sent       int
	Lost       int
	ConsecLoss int
	LossRate   float64 // over the rolling window
	MeanRTT    time.Duration
	Dead       bool
}

// Prober is the active liveness detector for one running job's cluster: an
// mping-style paced probe loop with per-tracker rolling loss/latency
// windows. Each tick it probes every not-yet-lost tracker's jetty /ping —
// the shuffle data path itself, whose death is exactly what strands map
// outputs — and after DeadAfter consecutive losses delivers a dead verdict
// through hadoop.ClusterControl.MarkLost, putting the tracker's work back
// in the queues without waiting for the heartbeat timeout. Verdicts are
// idempotent on the engine side, so a flapping tracker costs at most one
// re-queue per real transition.
type Prober struct {
	cfg    ProbeConfig
	cc     hadoop.ClusterControl
	met    *metrics.Registry
	ev     *obs.Recorder
	client *jetty.Client

	stop chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	states map[int]*probeState
}

// NewProber builds a prober over a cluster control handle. Metrics (may be
// nil) receives "probe.sent", "probe.lost", "probe.verdicts" counters and
// a "probe.rtt" timer; ev (may be nil) receives an obs.EvProbeVerdict
// flight-recorder event whenever a dead verdict latches, emitted before
// the verdict is delivered to the engine.
func NewProber(cfg ProbeConfig, cc hadoop.ClusterControl, met *metrics.Registry, ev *obs.Recorder) *Prober {
	return &Prober{
		cfg:    cfg.withDefaults(),
		cc:     cc,
		met:    met,
		ev:     ev,
		client: jetty.NewClient(),
		stop:   make(chan struct{}),
		states: make(map[int]*probeState),
	}
}

// Start launches the probe loop.
func (p *Prober) Start() {
	p.wg.Add(1)
	go p.loop()
}

// Stop halts probing and waits for in-flight probes. Idempotent-safe only
// for a single caller; the service calls it once per job.
func (p *Prober) Stop() {
	close(p.stop)
	p.wg.Wait()
	p.client.Close()
}

func (p *Prober) loop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.tick()
		}
	}
}

// tick probes every live tracker once, concurrently, and delivers verdicts.
func (p *Prober) tick() {
	trackers := p.cc.Trackers()
	var wg sync.WaitGroup
	for _, tr := range trackers {
		if tr.Lost {
			continue
		}
		tr := tr
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.probe(tr)
		}()
	}
	wg.Wait()
}

// probe sends one probe and records the outcome; on crossing the
// consecutive-loss threshold it delivers the dead verdict.
func (p *Prober) probe(tr hadoop.TrackerState) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	rtt, err := p.client.Ping(ctx, tr.Addr)
	cancel()
	ok := err == nil
	p.met.Counter("probe.sent").Inc()
	if ok {
		p.met.Timer("probe.rtt").ObserveDuration(rtt)
	} else {
		p.met.Counter("probe.lost").Inc()
	}

	p.mu.Lock()
	ps, found := p.states[tr.ID]
	if !found {
		ps = &probeState{addr: tr.Addr}
		p.states[tr.ID] = ps
	}
	ps.record(ok, rtt, p.cfg.Window)
	deliver := !ps.verdict && ps.consecLoss >= p.cfg.DeadAfter
	if deliver {
		ps.verdict = true
	}
	if ok && ps.verdict {
		// The tracker answered after a dead verdict (a flap, or a wrong
		// call): re-arm so a real death later is still detected. The
		// engine ignores duplicate MarkLost calls, so re-arming cannot
		// double-requeue.
		ps.verdict = false
	}
	p.mu.Unlock()

	if deliver {
		// Emit the verdict before delivering it: MarkLost synchronously
		// emits the attempt.lost events, so this order keeps the flight
		// recorder causal (verdict, then losses, then re-scheduling).
		p.ev.Emit(obs.Event{Type: obs.EvProbeVerdict,
			Detail: fmt.Sprintf("tracker %d (%s) dead after %d consecutive losses",
				tr.ID, tr.Addr, p.cfg.DeadAfter)})
		if p.cc.MarkLost(tr.ID) {
			p.met.Counter("probe.verdicts").Inc()
		}
	}
}

// DeadCount is how many trackers currently hold a latched dead verdict —
// the /healthz probe check's input. A flapped tracker that answered again
// has re-armed and no longer counts.
func (p *Prober) DeadCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ps := range p.states {
		if ps.verdict {
			n++
		}
	}
	return n
}

// Stats snapshots every probed tracker, ordered by id.
func (p *Prober) Stats() []ProbeStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProbeStats, 0, len(p.states))
	for id, ps := range p.states {
		st := ProbeStats{
			ID:         id,
			Addr:       ps.addr,
			Sent:       ps.sent,
			Lost:       ps.lost,
			ConsecLoss: ps.consecLoss,
			Dead:       ps.verdict,
		}
		if n := len(ps.window); n > 0 {
			lost, sum, okCount := 0, time.Duration(0), 0
			for i, ok := range ps.window {
				if !ok {
					lost++
				} else {
					sum += ps.rtts[i]
					okCount++
				}
			}
			st.LossRate = float64(lost) / float64(n)
			if okCount > 0 {
				st.MeanRTT = sum / time.Duration(okCount)
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
