package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/kv"
)

// Protocol identity for the job service RPC front-end.
const (
	ProtocolName    = "org.ict.mpid.JobServiceProtocol"
	ProtocolVersion = int64(1)
)

// saturatedPrefix marks an admission rejection on the wire so the client
// can reconstruct the typed *SaturatedError from the remote error text.
const saturatedPrefix = "SATURATED"

// encodeSaturated renders a SaturatedError as a parseable remote-error
// message: "SATURATED queued=12 depth=12 retry_ms=150".
func encodeSaturated(e *SaturatedError) string {
	return fmt.Sprintf("%s queued=%d depth=%d retry_ms=%d",
		saturatedPrefix, e.Queued, e.Depth, e.RetryAfter.Milliseconds())
}

// decodeSaturated reconstructs a *SaturatedError from a remote error's
// text, reporting whether the text carried one.
func decodeSaturated(msg string) (*SaturatedError, bool) {
	i := strings.Index(msg, saturatedPrefix)
	if i < 0 {
		return nil, false
	}
	var queued, depth int
	var retryMs int64
	_, err := fmt.Sscanf(msg[i:], saturatedPrefix+" queued=%d depth=%d retry_ms=%d",
		&queued, &depth, &retryMs)
	if err != nil {
		return nil, false
	}
	return &SaturatedError{
		Queued:     queued,
		Depth:      depth,
		RetryAfter: time.Duration(retryMs) * time.Millisecond,
	}, true
}

// badParamPrefix marks an unknown-parameter rejection on the wire, so a
// client typo surfaces as the same typed *BadParamError the local API
// returns instead of an opaque remote failure.
const badParamPrefix = "BADPARAM"

// encodeBadParam renders a BadParamError as a parseable remote-error
// message: "BADPARAM workload=terasort param=reducer known=records,reducers".
func encodeBadParam(e *BadParamError) string {
	return fmt.Sprintf("%s workload=%s param=%s known=%s",
		badParamPrefix, e.Workload, e.Param, strings.Join(e.Known, ","))
}

// decodeBadParam reconstructs a *BadParamError from a remote error's text,
// reporting whether the text carried one.
func decodeBadParam(msg string) (*BadParamError, bool) {
	i := strings.Index(msg, badParamPrefix)
	if i < 0 {
		return nil, false
	}
	var wl, param, known string
	n, err := fmt.Sscanf(msg[i:], badParamPrefix+" workload=%s param=%s known=%s", &wl, &param, &known)
	if err != nil && n < 2 {
		return nil, false
	}
	e := &BadParamError{Workload: wl, Param: param}
	if known != "" {
		e.Known = strings.Split(known, ",")
	}
	return e, true
}

// NewProtocol builds the RPC protocol serving the job service:
//
//	submit(tenant, workload, paramsJSON) -> jobID
//	wait(jobID)                          -> ok, errMsg, durationNs, digest
//	stats()                              -> Stats JSON
//
// Submissions name a registered workload (jobs carry function values and
// cannot cross the wire). Saturation travels as a typed marker in the
// remote error text; Client.Submit reconstructs the *SaturatedError.
func NewProtocol(s *Service, workloads *Workloads) *hadooprpc.Protocol {
	return &hadooprpc.Protocol{
		Name:    ProtocolName,
		Version: ProtocolVersion,
		Methods: map[string]hadooprpc.Handler{
			"submit": func(params [][]byte) ([]byte, error) {
				if len(params) != 3 {
					return nil, errors.New("submit wants 3 parameters")
				}
				tenant := string(params[0])
				name := string(params[1])
				var args map[string]int64
				if len(params[2]) > 0 {
					if err := json.Unmarshal(params[2], &args); err != nil {
						return nil, fmt.Errorf("submit params: %w", err)
					}
				}
				job, splits, err := workloads.Build(name, args)
				if err != nil {
					var bad *BadParamError
					if errors.As(err, &bad) {
						return nil, errors.New(encodeBadParam(bad))
					}
					return nil, err
				}
				j, err := s.Submit(tenant, name, job, splits)
				if err != nil {
					var sat *SaturatedError
					if errors.As(err, &sat) {
						return nil, errors.New(encodeSaturated(sat))
					}
					return nil, err
				}
				return kv.AppendVLong(nil, j.ID), nil
			},
			"wait": func(params [][]byte) ([]byte, error) {
				if len(params) != 1 {
					return nil, errors.New("wait wants 1 parameter")
				}
				id, _, err := kv.ReadVLong(params[0])
				if err != nil {
					return nil, err
				}
				j, err := s.Lookup(id)
				if err != nil {
					return nil, err
				}
				<-j.Done()
				ok := int64(1)
				msg := ""
				if j.Err != nil {
					ok = 0
					msg = j.Err.Error()
				}
				resp := kv.AppendVLong(nil, ok)
				resp = kv.AppendBytes(resp, []byte(msg))
				resp = kv.AppendVLong(resp, int64(j.Latency()))
				resp = kv.AppendBytes(resp, OutputDigest(j.Result))
				return resp, nil
			},
			"stats": func(params [][]byte) ([]byte, error) {
				return json.Marshal(s.Stats())
			},
		},
	}
}

// RemoteResult is a completed job as seen over the wire: success, the
// failure message if any, queue-to-finish latency, and the output digest
// (OutputDigest) for byte-identical cross-run comparison.
type RemoteResult struct {
	OK       bool
	ErrMsg   string
	Duration time.Duration
	Digest   []byte
}

// Client is a job-service RPC client: the submitter side of cmd/mpid-serve.
type Client struct {
	rpc *hadooprpc.MuxClient
}

// DialService connects to a running mpid-serve daemon.
func DialService(addr string, opts hadooprpc.Options) (*Client, error) {
	rpc, err := hadooprpc.DialMuxOptions(addr, ProtocolName, ProtocolVersion, opts)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rpc}, nil
}

// Submit submits a named workload for a tenant and returns the job id. A
// saturated service surfaces as a *SaturatedError (errors.Is(err,
// ErrSaturated)); a submission naming a parameter the workload does not
// accept as a *BadParamError (errors.Is(err, ErrBadParam)); a draining
// service as an error wrapping ErrDraining's text.
func (c *Client) Submit(tenant, workload string, params map[string]int64) (int64, error) {
	blob, err := json.Marshal(params)
	if err != nil {
		return 0, err
	}
	resp, err := c.rpc.Call("submit", []byte(tenant), []byte(workload), blob)
	if err != nil {
		if sat, ok := decodeSaturated(err.Error()); ok {
			return 0, sat
		}
		if bad, ok := decodeBadParam(err.Error()); ok {
			return 0, bad
		}
		return 0, err
	}
	id, _, err := kv.ReadVLong(resp)
	return id, err
}

// Wait blocks until the job finishes and returns its remote result. The
// call rides the RPC layer's deadline: pass Options with a CallTimeout
// sized for the longest job when dialing.
func (c *Client) Wait(id int64) (RemoteResult, error) {
	resp, err := c.rpc.Call("wait", kv.AppendVLong(nil, id))
	if err != nil {
		return RemoteResult{}, err
	}
	ok, n, err := kv.ReadVLong(resp)
	if err != nil {
		return RemoteResult{}, err
	}
	resp = resp[n:]
	msg, n, err := kv.ReadBytes(resp)
	if err != nil {
		return RemoteResult{}, err
	}
	resp = resp[n:]
	dur, n, err := kv.ReadVLong(resp)
	if err != nil {
		return RemoteResult{}, err
	}
	resp = resp[n:]
	digest, _, err := kv.ReadBytes(resp)
	if err != nil {
		return RemoteResult{}, err
	}
	return RemoteResult{
		OK:       ok == 1,
		ErrMsg:   string(msg),
		Duration: time.Duration(dur),
		Digest:   append([]byte(nil), digest...),
	}, nil
}

// Stats fetches the service's current snapshot.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.rpc.Call("stats")
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(resp, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.rpc.Close() }
