package serve

import (
	"sync"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/jetty"
	"github.com/ict-repro/mpid/internal/metrics"
)

// fakeCC is a scriptable ClusterControl: the prober's verdicts land here
// instead of in a real jobtracker.
type fakeCC struct {
	mu       sync.Mutex
	trackers []hadoop.TrackerState
	marked   []int
}

func (f *fakeCC) Trackers() []hadoop.TrackerState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]hadoop.TrackerState(nil), f.trackers...)
}

// MarkLost records the call; like the engine, only the first call for a
// tracker takes effect. The Lost flag deliberately stays false so the
// prober keeps probing — that is how the duplicate-verdict path is
// exercised.
func (f *fakeCC) MarkLost(id int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.marked {
		if m == id {
			f.marked = append(f.marked, id)
			return false
		}
	}
	f.marked = append(f.marked, id)
	return true
}

func (f *fakeCC) calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.marked)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestProberVerdictAfterConsecutiveLosses points the prober at a dead port:
// after DeadAfter consecutive losses it must deliver exactly one verdict,
// and keep delivering none while the losses continue.
func TestProberVerdictAfterConsecutiveLosses(t *testing.T) {
	cc := &fakeCC{trackers: []hadoop.TrackerState{{ID: 0, Addr: "127.0.0.1:1"}}}
	met := metrics.NewRegistry()
	p := NewProber(ProbeConfig{Interval: 2 * time.Millisecond, Timeout: 20 * time.Millisecond, DeadAfter: 3}, cc, met, nil)
	p.Start()
	defer p.Stop()

	waitFor(t, 5*time.Second, "dead verdict", func() bool { return cc.calls() >= 1 })
	// The verdict is latched: continued losses must not re-deliver.
	time.Sleep(50 * time.Millisecond)
	if got := cc.calls(); got != 1 {
		t.Fatalf("MarkLost called %d times for one continuous outage, want 1", got)
	}
	st := p.Stats()
	if len(st) != 1 || !st[0].Dead {
		t.Fatalf("Stats() = %+v, want one dead tracker", st)
	}
	if st[0].ConsecLoss < 3 || st[0].LossRate == 0 {
		t.Fatalf("Stats() = %+v, want accumulated losses", st[0])
	}
	if met.Counter("probe.lost").Value() == 0 {
		t.Fatal("probe.lost counter never moved")
	}
}

// TestProberReArmsAfterRecovery scripts an outage, a recovery, and a second
// outage against a real jetty server via the fault injector. The prober
// must deliver a verdict per real transition — two in total — with the
// recovery in between re-arming detection.
func TestProberReArmsAfterRecovery(t *testing.T) {
	inj := faults.New(1,
		// Outage one: pings 1-10 lost.
		faults.Rule{Component: "jetty.server", Operation: "ping", Until: 10},
		// Recovery: pings 11-15 answer. Outage two: ping 16 on lost.
		faults.Rule{Component: "jetty.server", Operation: "ping", After: 15},
	)
	srv := jetty.NewServer(jetty.NewStore())
	srv.Injector = inj
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cc := &fakeCC{trackers: []hadoop.TrackerState{{ID: 7, Addr: addr}}}
	met := metrics.NewRegistry()
	p := NewProber(ProbeConfig{Interval: 2 * time.Millisecond, Timeout: 50 * time.Millisecond, DeadAfter: 3}, cc, met, nil)
	p.Start()
	defer p.Stop()

	waitFor(t, 5*time.Second, "second verdict after re-arm", func() bool { return cc.calls() >= 2 })
	// Both verdicts name the same tracker; only the first took effect.
	cc.mu.Lock()
	first := cc.marked[0]
	cc.mu.Unlock()
	if first != 7 {
		t.Fatalf("verdict for tracker %d, want 7", first)
	}
	if rtt := met.Timer("probe.rtt").Stats().Count; rtt == 0 {
		t.Fatal("no successful probes recorded during the recovery window")
	}
}

// TestProberDisabled is wired at the service layer, but the config knob
// deserves its own check: withDefaults must not resurrect a disabled probe.
func TestProbeConfigDefaults(t *testing.T) {
	c := ProbeConfig{}.withDefaults()
	if c.Interval <= 0 || c.Timeout <= 0 || c.Window <= 0 || c.DeadAfter <= 0 {
		t.Fatalf("withDefaults left zero fields: %+v", c)
	}
	d := ProbeConfig{Disable: true}.withDefaults()
	if !d.Disable {
		t.Fatal("withDefaults cleared Disable")
	}
}
