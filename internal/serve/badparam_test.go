package serve

import (
	"errors"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/hadooprpc"
)

// TestBuildRejectsUnknownParam is the regression test for the silent-typo
// bug: Build used to ignore parameter names the workload never reads, so a
// client typo ran a default-configured job with a misleadingly "passing"
// digest. Now the typo is a typed error naming the accepted parameters.
func TestBuildRejectsUnknownParam(t *testing.T) {
	w := NewWorkloads()
	_, _, err := w.Build("wordcount", map[string]int64{"reducer": 4}) // typo: `reducers`
	if err == nil {
		t.Fatal("unknown param accepted")
	}
	if !errors.Is(err, ErrBadParam) {
		t.Fatalf("err = %v, want ErrBadParam", err)
	}
	var bad *BadParamError
	if !errors.As(err, &bad) {
		t.Fatalf("err = %T, want *BadParamError", err)
	}
	if bad.Workload != "wordcount" || bad.Param != "reducer" {
		t.Fatalf("BadParamError = %+v", bad)
	}
	if len(bad.Known) == 0 {
		t.Fatalf("BadParamError carries no known params: %+v", bad)
	}
	// Known params still build.
	if _, _, err := w.Build("wordcount", map[string]int64{"reducers": 2, "bytes": 8 << 10}); err != nil {
		t.Fatalf("known params rejected: %v", err)
	}
}

// TestSuiteRegisteredWorkloadsBuild ensures every suite workload is
// reachable by name from the registry, with its declared defaults.
func TestSuiteRegisteredWorkloadsBuild(t *testing.T) {
	w := NewWorkloads()
	names := w.Names()
	want := []string{"grep", "invindex", "join", "pagerank", "terasort", "wordcount"}
	if len(names) != len(want) {
		t.Fatalf("registry holds %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry holds %v, want %v", names, want)
		}
	}
	for _, name := range names {
		job, splits, err := w.Build(name, nil)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		if job.Mapper == nil || job.Reducer == nil || len(splits) == 0 {
			t.Fatalf("build %s: incomplete job (%d splits)", name, len(splits))
		}
	}
}

func TestBadParamWireCodec(t *testing.T) {
	e := &BadParamError{Workload: "terasort", Param: "record", Known: []string{"records", "reducers"}}
	got, ok := decodeBadParam("remote call failed: " + encodeBadParam(e))
	if !ok {
		t.Fatal("round-trip failed to decode")
	}
	if got.Workload != e.Workload || got.Param != e.Param {
		t.Fatalf("decoded %+v, want %+v", got, e)
	}
	if len(got.Known) != 2 || got.Known[0] != "records" || got.Known[1] != "reducers" {
		t.Fatalf("decoded Known = %v", got.Known)
	}
	if _, ok := decodeBadParam("some unrelated error"); ok {
		t.Fatal("decoded a BadParamError from unrelated text")
	}
}

// TestBadParamRoundTripsRPC submits a typo'd parameter through the real
// wire path and asserts the client gets the typed error back.
func TestBadParamRoundTripsRPC(t *testing.T) {
	s := New(Config{Cluster: testCluster()})
	defer s.Drain(5 * time.Second)
	srv := hadooprpc.NewServer()
	srv.Register(NewProtocol(s, NewWorkloads()))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialService(addr, hadooprpc.Options{CallTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Submit("alice", "terasort", map[string]int64{"record": 100}) // typo: `records`
	if err == nil {
		t.Fatal("typo'd submission accepted over RPC")
	}
	if !errors.Is(err, ErrBadParam) {
		t.Fatalf("remote err = %v, want ErrBadParam", err)
	}
	var bad *BadParamError
	if !errors.As(err, &bad) {
		t.Fatalf("remote err = %T (%v), want *BadParamError", err, err)
	}
	if bad.Workload != "terasort" || bad.Param != "record" {
		t.Fatalf("remote BadParamError = %+v", bad)
	}
	// The service never admitted the job.
	if st := s.Stats(); st.Done != 0 || st.Failed != 0 || st.Queued != 0 {
		t.Fatalf("stats after rejected submit = %+v, want all zero", st)
	}
}
