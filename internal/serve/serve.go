// Package serve is the long-lived multi-tenant job service: it wraps the
// hadoop engine's single-job RunWithReport behind a daemon that accepts
// concurrent submissions, queues them fairly across tenants, and survives
// saturation and component failure — promoting the engine from "boot a
// jobtracker, run one job, exit" to the persistent-deployment shape the
// DataMPI follow-up work evaluates with mixed workloads.
//
// The service's contract has four parts:
//
//   - Admission control and backpressure: a bounded number of concurrent
//     job slots plus a bounded waiting queue. A submission past both is
//     rejected immediately with a typed *SaturatedError carrying the queue
//     depth and a retry-after hint derived from observed job latency, so
//     clients degrade gracefully instead of timing out.
//   - Fair scheduling: submissions are FIFO within a tenant and round-robin
//     across tenants, so one chatty tenant cannot starve the others however
//     deep its backlog gets.
//   - Per-job isolation: each job runs with its own child metrics registry
//     (updates propagate to the service-wide parent, so per-job counters
//     sum exactly to the fleet totals) and its own tracer (spans fold into
//     a capped service-wide collector after the job) — two concurrent jobs
//     never bleed counters or spans into each other's JobReport.
//   - Active liveness probing: every running job gets a Prober that paces
//     probe requests at its cluster's tasktrackers and feeds dead verdicts
//     into the engine's re-execution path via hadoop.ClusterControl, so
//     recovery starts on probe loss rather than heartbeat-timeout expiry.
//
// Drain implements graceful shutdown (cmd/mpid-serve wires it to SIGTERM):
// stop admitting, let queued and running jobs finish, and past the drain
// budget cancel the stragglers through their job contexts — which the
// engine threads down to the shuffle fetch loops, so cancellation is
// prompt, not backoff-schedule-eventual.
package serve

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/obs"
	"github.com/ict-repro/mpid/internal/trace"
)

// ErrSaturated is the admission-control sentinel: errors.Is(err,
// ErrSaturated) is true for every *SaturatedError, however it traveled.
var ErrSaturated = errors.New("serve: saturated")

// ErrDraining rejects submissions arriving after shutdown began.
var ErrDraining = errors.New("serve: draining, not admitting jobs")

// ErrUnknownJob reports a job id the service has no record of.
var ErrUnknownJob = errors.New("serve: unknown job")

// SaturatedError is the typed admission rejection: the service's slots and
// queue are full. It carries enough for a client to back off intelligently
// rather than retry-hammer.
type SaturatedError struct {
	// Queued is the number of jobs waiting or running at rejection time.
	Queued int
	// Depth is the configured capacity (slots + queue) the backlog hit.
	Depth int
	// RetryAfter estimates when a slot will free: the service's smoothed
	// job latency scaled by how many jobs are ahead of a resubmission.
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("serve: saturated: %d/%d jobs backlogged, retry after %v",
		e.Queued, e.Depth, e.RetryAfter.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrSaturated) match.
func (e *SaturatedError) Is(target error) bool { return target == ErrSaturated }

// Config sizes the service.
type Config struct {
	// Slots is the number of jobs allowed to run concurrently (default 4).
	// Each job is its own mini-cluster, so this bounds process-wide
	// goroutine and socket load.
	Slots int
	// QueueDepth bounds jobs waiting beyond the running ones (default 64).
	// A submission finding Slots running and QueueDepth queued is rejected
	// with *SaturatedError.
	QueueDepth int
	// RetainJobs bounds finished-job records kept for Lookup/stats
	// (default 4096); the oldest are forgotten first. Running and queued
	// jobs are never evicted.
	RetainJobs int
	// TraceCap bounds the service-wide span collector (default 16384
	// spans); a long-lived daemon would otherwise grow without limit.
	TraceCap int
	// Probe configures each running job's liveness prober. The zero value
	// probes with defaults; set Probe.Disable to rely on heartbeat
	// timeouts alone.
	Probe ProbeConfig
	// Cluster is the per-job engine template. The service overrides
	// Metrics, Tracer and Watch per job; everything else passes through.
	Cluster hadoop.Config
	// Metrics is the service-wide registry (default fresh). Per-job
	// registries are children of it, so its counters are fleet totals.
	Metrics *metrics.Registry
	// Events is the service-wide flight recorder (default a fresh
	// DefaultEventCap ring). Each job records into a child of it stamped
	// with the job's id and tenant, so the service ring interleaves every
	// job's admission, attempt, probe and fault events.
	Events *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 4096
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 16384
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Events == nil {
		c.Events = obs.NewRecorder(0)
	}
	return c
}

// JobState is a job's position in the service lifecycle.
type JobState int

// Job lifecycle states.
const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateFailed
)

// String names the state for stats output.
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state%d", int(s))
}

// Job is one submission's handle. Result, Report and Err are written
// exactly once, before Done() closes; read them only after <-Done().
type Job struct {
	ID     int64
	Tenant string
	Name   string

	job    mapred.Job
	splits []mapred.Split

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// Written once by runJob before done closes.
	Result *mapred.Result
	Report *hadoop.JobReport
	Err    error

	// Guarded by the service mutex.
	state    JobState
	enqueued time.Time
	started  time.Time
	finished time.Time
}

// Done closes when the job has finished (successfully or not).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx expires, then returns the
// job's error (nil on success, ctx.Err() on a wait timeout).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Latency is queue-to-finish wall time; zero until the job finishes.
func (j *Job) Latency() time.Duration {
	select {
	case <-j.done:
		return j.finished.Sub(j.enqueued)
	default:
		return 0
	}
}

// OutputDigest is a deterministic fingerprint of a completed job's output:
// SHA-256 over every reducer's framed pairs in reducer order. Two runs of
// the same deterministic job must produce equal digests — the byte-identical
// property the chaos tests assert over the wire.
func OutputDigest(res *mapred.Result) []byte {
	h := sha256.New()
	if res != nil {
		var buf [8]byte
		for r, pairs := range res.ByReducer {
			buf[0] = byte(r)
			h.Write(buf[:1])
			for _, p := range pairs {
				h.Write(p.Key)
				h.Write([]byte{0})
				h.Write(p.Value)
				h.Write([]byte{1})
			}
		}
	}
	return h.Sum(nil)
}

// tenantQueue is one tenant's FIFO plus its lifetime counters.
type tenantQueue struct {
	waiting  []*Job
	queued   int // len(waiting), tracked for stats symmetry
	running  int
	done     int
	failed   int
	rejected int
}

// Service is the job service. Construct with New; safe for concurrent use.
type Service struct {
	cfg Config
	met *metrics.Registry
	tr  *trace.Tracer
	ev  *obs.Recorder

	mu       sync.Mutex
	probers  map[int64]*Prober // running jobs' probers, for health
	tenants  map[string]*tenantQueue
	ring     []string // tenant round-robin order, append-only
	rr       int      // next ring slot to serve
	queued   int
	running  int
	draining bool
	drained  chan struct{} // closed once draining and quiesced
	jobs     map[int64]*Job
	order    []int64 // finished job ids, oldest first, for retention
	nextID   int64
	ewmaSec  float64 // smoothed job latency, drives RetryAfter
}

// New creates a service. It is idle until submissions arrive.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	tr := trace.New("serve")
	tr.SetCap(cfg.TraceCap)
	return &Service{
		cfg:     cfg,
		met:     cfg.Metrics,
		tr:      tr,
		ev:      cfg.Events,
		probers: make(map[int64]*Prober),
		tenants: make(map[string]*tenantQueue),
		drained: make(chan struct{}),
		jobs:    make(map[int64]*Job),
	}
}

// Metrics returns the service-wide registry (per-job registries are its
// children, so these counters are fleet totals).
func (s *Service) Metrics() *metrics.Registry { return s.met }

// Tracer returns the capped service-wide span collector every finished
// job's spans fold into.
func (s *Service) Tracer() *trace.Tracer { return s.tr }

// Events returns the service-wide flight recorder every job's events fold
// into.
func (s *Service) Events() *obs.Recorder { return s.ev }

// Submit queues a job for the tenant, subject to admission control. It
// returns immediately: a *Job handle on admission, ErrDraining after
// shutdown began, or a *SaturatedError when slots and queue are full.
func (s *Service) Submit(tenant, name string, job mapred.Job, splits []mapred.Split) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tq := s.tenantLocked(tenant)
	if s.draining {
		s.met.Counter("serve.rejected_draining").Inc()
		s.ev.Emit(obs.Event{Type: obs.EvJobRejected, Tenant: tenant, Detail: "draining"})
		return nil, ErrDraining
	}
	depth := s.cfg.Slots + s.cfg.QueueDepth
	if backlog := s.running + s.queued; backlog >= depth {
		tq.rejected++
		s.met.Counter("serve.rejected").Inc()
		s.ev.Emit(obs.Event{Type: obs.EvJobRejected, Tenant: tenant,
			Detail: fmt.Sprintf("saturated: %d/%d backlogged", backlog, depth)})
		return nil, &SaturatedError{
			Queued:     backlog,
			Depth:      depth,
			RetryAfter: s.retryAfterLocked(),
		}
	}
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:       s.nextID,
		Tenant:   tenant,
		Name:     name,
		job:      job,
		splits:   splits,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    StateQueued,
		enqueued: time.Now(),
	}
	s.jobs[j.ID] = j
	tq.waiting = append(tq.waiting, j)
	tq.queued++
	s.queued++
	s.met.Counter("serve.submitted").Inc()
	s.met.Gauge("serve.queued").Set(int64(s.queued))
	s.ev.Emit(obs.Event{Type: obs.EvJobAdmitted, Job: j.ID, Tenant: tenant, Detail: name})
	s.dispatchLocked()
	return j, nil
}

// Lookup returns the job with the given id, or ErrUnknownJob (the record
// may also have aged out of retention).
func (s *Service) Lookup(id int64) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return j, nil
}

// tenantLocked returns the tenant's queue, creating it (and its ring slot)
// on first sight.
func (s *Service) tenantLocked(tenant string) *tenantQueue {
	tq, ok := s.tenants[tenant]
	if !ok {
		tq = &tenantQueue{}
		s.tenants[tenant] = tq
		s.ring = append(s.ring, tenant)
	}
	return tq
}

// retryAfterLocked estimates how long until a resubmission would admit:
// the backlog ahead of it, spread over the slots, paced by the smoothed
// job latency. With no completed jobs yet, a small constant.
func (s *Service) retryAfterLocked() time.Duration {
	lat := time.Duration(s.ewmaSec * float64(time.Second))
	if lat <= 0 {
		lat = 50 * time.Millisecond
	}
	waves := (s.queued + s.cfg.Slots) / s.cfg.Slots
	return time.Duration(waves) * lat
}

// dispatchLocked launches queued jobs into free slots, round-robin across
// tenants, FIFO within each.
func (s *Service) dispatchLocked() {
	for s.running < s.cfg.Slots && s.queued > 0 {
		j := s.popLocked()
		if j == nil {
			return
		}
		tq := s.tenants[j.Tenant]
		tq.running++
		s.running++
		s.queued--
		j.state = StateRunning
		j.started = time.Now()
		s.met.Gauge("serve.queued").Set(int64(s.queued))
		s.met.Gauge("serve.running").Set(int64(s.running))
		go s.runJob(j)
	}
}

// popLocked takes the next job in round-robin tenant order.
func (s *Service) popLocked() *Job {
	for i := 0; i < len(s.ring); i++ {
		slot := (s.rr + i) % len(s.ring)
		tq := s.tenants[s.ring[slot]]
		if len(tq.waiting) == 0 {
			continue
		}
		j := tq.waiting[0]
		tq.waiting = tq.waiting[1:]
		tq.queued--
		s.rr = (slot + 1) % len(s.ring)
		return j
	}
	return nil
}

// runJob executes one admitted job on its own mini-cluster with isolated
// observability, then folds the results back into the service.
func (s *Service) runJob(j *Job) {
	cfg := s.cfg.Cluster
	// Isolation: a child registry (updates propagate to the service-wide
	// parent) and a private tracer. The JobReport snapshots the child, so
	// concurrent jobs never see each other's counters or spans.
	cfg.Metrics = s.met.NewChild()
	cfg.Tracer = trace.New("jobtracker")
	// The child recorder stamps this job's id and tenant on every engine
	// event and folds them into the service-wide ring.
	cfg.Events = s.ev.NewChild(j.ID, j.Tenant)
	var prober *Prober
	if !s.cfg.Probe.Disable {
		userWatch := cfg.Watch
		cfg.Watch = func(cc hadoop.ClusterControl) {
			prober = NewProber(s.cfg.Probe, cc, cfg.Metrics, cfg.Events)
			prober.Start()
			// Registered probers drive the /healthz probe check; the entry
			// lives exactly as long as the job runs.
			s.mu.Lock()
			s.probers[j.ID] = prober
			s.mu.Unlock()
			if userWatch != nil {
				userWatch(cc)
			}
		}
	}
	res, rep, err := hadoop.RunWithReportContext(j.ctx, j.job, j.splits, cfg)
	if prober != nil {
		prober.Stop()
	}
	j.cancel()
	// Fold the job's spans into the capped service-wide collector.
	s.tr.Add(cfg.Tracer.Drain()...)
	j.Result, j.Report, j.Err = res, rep, err

	if err == nil {
		cfg.Events.Emit(obs.Event{Type: obs.EvJobDone, Detail: j.Name})
	} else {
		cfg.Events.Emit(obs.Event{Type: obs.EvJobFailed,
			Detail: fmt.Sprintf("%s: %v", j.Name, err)})
	}

	now := time.Now()
	s.mu.Lock()
	delete(s.probers, j.ID)
	j.finished = now
	tq := s.tenants[j.Tenant]
	tq.running--
	s.running--
	if err == nil {
		j.state = StateDone
		tq.done++
		s.met.Counter("serve.done").Inc()
	} else {
		j.state = StateFailed
		tq.failed++
		s.met.Counter("serve.failed").Inc()
	}
	lat := now.Sub(j.enqueued)
	s.met.Timer("serve.job_latency").ObserveDuration(lat)
	// EWMA over running time (not queue wait): what RetryAfter needs is
	// how fast slots turn over.
	const alpha = 0.3
	runSec := now.Sub(j.started).Seconds()
	if s.ewmaSec == 0 {
		s.ewmaSec = runSec
	} else {
		s.ewmaSec = alpha*runSec + (1-alpha)*s.ewmaSec
	}
	s.forgetLocked(j.ID)
	s.met.Gauge("serve.running").Set(int64(s.running))
	s.dispatchLocked()
	if s.draining && s.running == 0 && s.queued == 0 {
		select {
		case <-s.drained:
		default:
			close(s.drained)
		}
	}
	s.mu.Unlock()
	close(j.done)
}

// forgetLocked records a finished job for retention and evicts the oldest
// beyond RetainJobs.
func (s *Service) forgetLocked(id int64) {
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.RetainJobs {
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

// Drain begins graceful shutdown: stop admitting, let queued and running
// jobs finish, and past the timeout cancel what remains through the job
// contexts (the engine threads cancellation down to the fetch loops, so
// stragglers stop promptly). It returns nil when everything finished
// within budget, or an error naming how many jobs were canceled.
func (s *Service) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.met.Counter("serve.drains").Inc()
		s.ev.Emit(obs.Event{Type: obs.EvServiceDrain,
			Detail: fmt.Sprintf("%d running, %d queued, budget %v", s.running, s.queued, timeout)})
		if s.running == 0 && s.queued == 0 {
			close(s.drained)
		}
	}
	ch := s.drained
	s.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-timer.C:
	}

	// Budget blown: cancel everything still alive. Queued jobs still pass
	// through a slot, but with a dead context they abort immediately.
	s.mu.Lock()
	canceled := 0
	for _, j := range s.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			j.cancel()
			canceled++
			s.ev.Emit(obs.Event{Type: obs.EvJobDrained, Job: j.ID, Tenant: j.Tenant,
				Detail: fmt.Sprintf("canceled %s after %v drain budget", j.state, timeout)})
		}
	}
	s.mu.Unlock()
	<-ch
	return fmt.Errorf("serve: drain timed out after %v, canceled %d jobs", timeout, canceled)
}

// DeadTrackers counts latched dead-tracker verdicts across all running
// jobs' probers — nonzero while a probe-detected death is still being
// recovered from (the verdict clears when the job finishes or the tracker
// answers again).
func (s *Service) DeadTrackers() int {
	s.mu.Lock()
	probers := make([]*Prober, 0, len(s.probers))
	for _, p := range s.probers {
		probers = append(probers, p)
	}
	s.mu.Unlock()
	n := 0
	for _, p := range probers {
		n += p.DeadCount()
	}
	return n
}

// Saturated reports whether admission control is at capacity: the next
// Submit would be rejected.
func (s *Service) Saturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running+s.queued >= s.cfg.Slots+s.cfg.QueueDepth
}

// Draining reports whether graceful shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Health builds the service's /healthz evaluator: "probe" fails while any
// running job's prober holds a latched dead-tracker verdict, "saturation"
// fails while admission control is rejecting, "draining" fails once
// shutdown has begun (so load balancers stop routing to a daemon on its
// way out).
func (s *Service) Health() *obs.Health {
	h := obs.NewHealth()
	h.Register("probe", func() obs.Status {
		if n := s.DeadTrackers(); n > 0 {
			return obs.Unhealthy("%d dead trackers under recovery", n)
		}
		return obs.Healthy("0 dead trackers")
	})
	h.Register("saturation", func() obs.Status {
		st := s.Stats()
		if s.Saturated() {
			return obs.Unhealthy("backlog %d/%d", st.Running+st.Queued, s.cfg.Slots+s.cfg.QueueDepth)
		}
		return obs.Healthy("backlog %d/%d", st.Running+st.Queued, s.cfg.Slots+s.cfg.QueueDepth)
	})
	h.Register("draining", func() obs.Status {
		if s.Draining() {
			return obs.Unhealthy("shutdown in progress")
		}
		return obs.Healthy("admitting")
	})
	return h
}

// DefaultSeries selects the service counters, gauges and timers worth a
// soak-length history: admission and completion rates, backlog levels,
// fault-recovery activity, and job/probe latency percentiles.
func DefaultSeries() obs.SeriesConfig {
	return obs.SeriesConfig{
		Counters: []string{
			"serve.submitted", "serve.done", "serve.failed", "serve.rejected",
			"probe.lost", "probe.verdicts", "rpc.retries",
			"hadoop.reexecutions", "shuffle.fetch_errors", "faults.injected",
		},
		Gauges: []string{"serve.running", "serve.queued"},
		Timers: []string{"serve.job_latency", "probe.rtt"},
	}
}

// TenantStats is one tenant's lifetime accounting.
type TenantStats struct {
	Tenant   string `json:"tenant"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Rejected int    `json:"rejected"`
}

// Stats is a consistent snapshot of the service's state.
type Stats struct {
	Queued   int           `json:"queued"`
	Running  int           `json:"running"`
	Done     int           `json:"done"`
	Failed   int           `json:"failed"`
	Rejected int           `json:"rejected"`
	Draining bool          `json:"draining"`
	Tenants  []TenantStats `json:"tenants"`
}

// JobInfo is one job's snapshot for listings (the admin /jobs page).
type JobInfo struct {
	ID       int64     `json:"id"`
	Tenant   string    `json:"tenant"`
	Name     string    `json:"name"`
	State    string    `json:"state"`
	Enqueued time.Time `json:"enqueued"`
	Latency  float64   `json:"latency_ms,omitempty"` // zero until finished
	Error    string    `json:"error,omitempty"`
}

// Jobs snapshots every retained job, oldest submission first.
func (s *Service) Jobs() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		info := JobInfo{
			ID:       j.ID,
			Tenant:   j.Tenant,
			Name:     j.Name,
			State:    j.state.String(),
			Enqueued: j.enqueued,
		}
		if j.state == StateDone || j.state == StateFailed {
			info.Latency = float64(j.finished.Sub(j.enqueued).Microseconds()) / 1000
			if j.Err != nil {
				info.Error = j.Err.Error()
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Stats snapshots the service, tenants sorted by name.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Queued: s.queued, Running: s.running, Draining: s.draining}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tq := s.tenants[name]
		st.Done += tq.done
		st.Failed += tq.failed
		st.Rejected += tq.rejected
		st.Tenants = append(st.Tenants, TenantStats{
			Tenant:   name,
			Queued:   tq.queued,
			Running:  tq.running,
			Done:     tq.done,
			Failed:   tq.failed,
			Rejected: tq.rejected,
		})
	}
	return st
}
