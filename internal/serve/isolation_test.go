package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
)

// Concurrent jobs must not bleed observability into each other: each job's
// report sees only its own counters and spans, while the service-wide
// registry totals across them.

// TestConcurrentJobMetricsIsolation runs three jobs with different map
// counts at the same time (gated so all three overlap), then checks each
// report counted exactly its own maps and the service counter is exactly
// the sum.
func TestConcurrentJobMetricsIsolation(t *testing.T) {
	release := make(chan struct{})
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	s := New(Config{Slots: 3, Cluster: testCluster()})

	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		select {
		case <-release:
		case <-stop:
		}
		return emit(line, kv.AppendVLong(nil, 1))
	})
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		return emit(key, kv.AppendVLong(nil, int64(len(values))))
	})

	splitCounts := []int{2, 3, 5}
	var jobs []*Job
	for i, n := range splitCounts {
		// n one-line splits -> n map tasks (splits break on line ends).
		var text []byte
		for k := 0; k < n; k++ {
			text = append(text, byte('a'+i), '\n')
		}
		job := mapred.Job{
			Name:        fmt.Sprintf("iso%d", i),
			Mapper:      mapper,
			Reducer:     reducer,
			NumReducers: 1,
		}
		j, err := s.Submit(fmt.Sprintf("tenant%d", i), job.Name, job, mapred.SplitText(text, 1))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// All three are admitted and running; un-gate them together.
	close(release)
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", j.Name, err)
		}
	}

	var sum int64
	for i, j := range jobs {
		got := j.Report.Metrics.Counter("hadoop.map_launches")
		if got != int64(splitCounts[i]) {
			t.Fatalf("job %s counted %d map launches, want its own %d — counters bled across jobs",
				j.Name, got, splitCounts[i])
		}
		sum += got
	}
	if got := s.Metrics().Counter("hadoop.map_launches").Value(); got != sum {
		t.Fatalf("service-wide map_launches = %d, want sum of jobs %d", got, sum)
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentJobTraceIsolation checks span sets of concurrent jobs are
// disjoint — no span (by id) appears in more than one job's report — and
// that the service collector received all of them after the jobs finished.
func TestConcurrentJobTraceIsolation(t *testing.T) {
	s := New(Config{Slots: 2, Cluster: testCluster()})
	job, splits, err := WordCount(map[string]int64{"bytes": 8 << 10, "split": 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(fmt.Sprintf("tenant%d", i), "wc", job, splits)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	seen := make(map[uint64]int) // span id -> job index
	for i, j := range jobs {
		if len(j.Report.Spans) == 0 {
			t.Fatalf("job %d report has no spans", i)
		}
		roots := 0
		for _, sp := range j.Report.Spans {
			if owner, dup := seen[sp.ID]; dup {
				t.Fatalf("span %d (%s) appears in jobs %d and %d — spans bled across jobs",
					sp.ID, sp.Name, owner, i)
			}
			seen[sp.ID] = i
			if sp.Parent == 0 {
				roots++
			}
		}
		if roots != 1 {
			t.Fatalf("job %d has %d root spans, want exactly its own 1", i, roots)
		}
	}
	// The jobs' spans were folded into the service-wide collector.
	if got := s.Tracer().Len(); got < len(seen) {
		t.Fatalf("service collector holds %d spans, want at least the %d from both jobs", got, len(seen))
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
