package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/admin"
	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/obs"
)

// httpGet fetches one admin page and returns status code and body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestChaosFlightRecorderAndHealth is the observability half of the
// probe-detected tracker-kill chaos scenario: the same jetty crash as
// TestChaosProbeDetectedTrackerKill, watched through the flight recorder
// and /healthz instead of counters. It asserts the recorded causal chain —
// probe verdict, then the attempts lost to it, then their re-execution —
// with every attempt event cross-linked to a real trace span, and that
// /healthz flips unhealthy while the dead tracker's verdict is latched and
// recovers once the job ends.
func TestChaosFlightRecorderAndHealth(t *testing.T) {
	want := cleanDigest(t)

	rec := obs.NewRecorder(0)
	inj := faults.New(7, faults.Rule{
		Component: "hadoop.tracker1.jetty",
		After:     8,
		Action:    faults.Crash,
	})
	s := New(Config{
		Cluster: chaosCluster(inj),
		Probe:   ProbeConfig{Interval: time.Millisecond, Timeout: 250 * time.Millisecond, DeadAfter: 3},
		Events:  rec,
	})
	adm, err := admin.New("127.0.0.1:0", s.Metrics(), s.Tracer(),
		admin.EventsPage(rec), admin.HealthPage(s.Health()))
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	base := "http://" + adm.Addr()

	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before chaos: %d\n%s", code, body)
	}

	job, splits := chaosWC(t)
	j, err := s.Submit("chaos", "wc", job, splits)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		j.Wait(context.Background())
	}()

	// Poll /healthz while the job runs. The verdict latches until the job
	// ends, so any poll that lands between the verdict and completion must
	// see 503 — and recovery takes many re-executed 2 ms map tasks, so
	// several polls land there.
	sawUnhealthy := false
	running := true
	for running {
		select {
		case <-done:
			running = false
		default:
			if len(rec.OfType(obs.EvProbeVerdict)) > 0 {
				if code, body := httpGet(t, base+"/healthz"); code == http.StatusServiceUnavailable {
					sawUnhealthy = true
					if !bytes.Contains([]byte(body), []byte("probe")) {
						t.Fatalf("unhealthy /healthz body names no probe check:\n%s", body)
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}
	if j.Err != nil {
		t.Fatalf("job under jetty kill: %v", j.Err)
	}
	if !inj.Crashed("hadoop.tracker1.jetty") {
		t.Fatal("tracker 1's jetty never crashed — injection point not reached")
	}
	if got := OutputDigest(j.Result); !bytes.Equal(got, want) {
		t.Fatal("output after probe-detected kill differs from fault-free run")
	}
	if !sawUnhealthy {
		t.Fatal("/healthz never flipped unhealthy while the dead verdict was latched")
	}
	// The verdict cleared with the job: /healthz recovers.
	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after job end: %d, want 200 (recovered)\n%s", code, body)
	}

	// The recorded causal chain: exactly one verdict, then attempts lost to
	// it, then re-scheduled attempts (execution >= 2) — strictly Seq-ordered.
	verdicts := rec.OfType(obs.EvProbeVerdict)
	if len(verdicts) != 1 {
		t.Fatalf("probe.verdict events = %d, want exactly 1\n%s", len(verdicts), obs.RenderEvents(rec.Events()))
	}
	lost := rec.OfType(obs.EvAttemptLost)
	if len(lost) == 0 {
		t.Fatalf("no attempt.lost events after the verdict\n%s", obs.RenderEvents(rec.Events()))
	}
	var resched []obs.Event
	for _, e := range rec.OfType(obs.EvAttemptScheduled) {
		if e.Attempt >= 2 {
			resched = append(resched, e)
		}
	}
	if len(resched) == 0 {
		t.Fatalf("no re-execution attempt.scheduled events\n%s", obs.RenderEvents(rec.Events()))
	}
	v := verdicts[0]
	for _, e := range lost {
		if e.Seq <= v.Seq {
			t.Fatalf("attempt.lost seq %d precedes verdict seq %d", e.Seq, v.Seq)
		}
	}
	minLost := lost[0].Seq
	rescheduledAfterLoss := false
	for _, e := range resched {
		if e.Seq > minLost {
			rescheduledAfterLoss = true
		}
	}
	if !rescheduledAfterLoss {
		t.Fatalf("no re-scheduled attempt after the first loss\n%s", obs.RenderEvents(rec.Events()))
	}

	// Cross-links: every attempt event's span id names a real finished span
	// in the service tracer, and every event carries the job identity the
	// child recorder stamped.
	spanIDs := make(map[uint64]bool)
	for _, sp := range s.Tracer().Spans() {
		spanIDs[sp.ID] = true
	}
	for _, e := range append(append([]obs.Event(nil), lost...), resched...) {
		if e.Span == 0 {
			t.Fatalf("attempt event without span id: %+v", e)
		}
		if !spanIDs[e.Span] {
			t.Fatalf("event span %d not found among %d trace spans: %+v", e.Span, len(spanIDs), e)
		}
		if e.Job != j.ID || e.Tenant != "chaos" {
			t.Fatalf("event missing job identity stamp: %+v", e)
		}
	}

	// The /events page shows the same chain.
	if code, body := httpGet(t, base+"/events"); code != http.StatusOK ||
		!bytes.Contains([]byte(body), []byte("probe.verdict")) ||
		!bytes.Contains([]byte(body), []byte("attempt.lost")) {
		t.Fatalf("/events page (%d) missing chaos chain:\n%s", code, body)
	}

	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
