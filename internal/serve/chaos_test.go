package serve

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/mapred"
)

// Chaos tests for the probe-driven recovery path. The heartbeat-timeout
// sweep is disabled throughout (TrackerTimeout < 0), so the active prober
// is the ONLY detector — if these pass, probe verdicts alone drive the
// engine's re-execution machinery, and drive it exactly once per real
// death.

// chaosWC is a WordCount big and slow enough to still be mid-map when the
// prober delivers its verdict: ~48 maps, 2 ms each.
func chaosWC(t *testing.T) (mapred.Job, []mapred.Split) {
	t.Helper()
	job, splits, err := WordCount(map[string]int64{"bytes": 96 << 10, "split": 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	inner := job.Mapper
	job.Mapper = mapred.MapperFunc(func(k, v []byte, emit mapred.Emit) error {
		time.Sleep(2 * time.Millisecond)
		return inner.Map(k, v, emit)
	})
	return job, splits
}

// chaosCluster is the engine template: three trackers, sweep disabled,
// retries sized for an in-test cluster.
func chaosCluster(inj *faults.Injector) hadoop.Config {
	return hadoop.Config{
		NumTrackers:    3,
		TrackerTimeout: -1, // probe or nothing
		Injector:       inj,
		RPC: hadooprpc.Options{
			MaxAttempts: 3,
			Backoff:     faults.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
		},
	}
}

// cleanDigest runs the job fault-free and returns the reference digest.
func cleanDigest(t *testing.T) []byte {
	t.Helper()
	s := New(Config{Cluster: chaosCluster(nil), Probe: ProbeConfig{Interval: time.Millisecond, Timeout: 250 * time.Millisecond, DeadAfter: 3}})
	job, splits := chaosWC(t)
	j, err := s.Submit("ref", "wc", job, splits)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j.Result.MaxTaskExecutions != 1 {
		t.Fatalf("fault-free MaxTaskExecutions = %d, want 1", j.Result.MaxTaskExecutions)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return OutputDigest(j.Result)
}

// TestChaosProbeDetectedTrackerKill crashes tracker 1's jetty (shuffle
// server and probe surface both — the data path is what dies) mid-map
// while the heartbeat path stays alive, so only the prober can see it. The
// job must finish with byte-identical output via exactly one probe
// verdict's worth of re-execution.
func TestChaosProbeDetectedTrackerKill(t *testing.T) {
	want := cleanDigest(t)

	inj := faults.New(7, faults.Rule{
		Component: "hadoop.tracker1.jetty",
		After:     8, // let a few maps publish and pings answer first
		Action:    faults.Crash,
	})
	s := New(Config{
		Cluster: chaosCluster(inj),
		Probe:   ProbeConfig{Interval: time.Millisecond, Timeout: 250 * time.Millisecond, DeadAfter: 3},
	})
	job, splits := chaosWC(t)
	j, err := s.Submit("chaos", "wc", job, splits)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatalf("job under jetty kill: %v", err)
	}
	if !inj.Crashed("hadoop.tracker1.jetty") {
		t.Fatal("tracker 1's jetty never crashed — injection point not reached")
	}

	if got := OutputDigest(j.Result); !bytes.Equal(got, want) {
		t.Fatal("output after probe-detected kill differs from fault-free run")
	}
	// The prober, not the (disabled) sweep, delivered the loss — once.
	if got := s.Metrics().Counter("hadoop.trackers_probe_lost").Value(); got != 1 {
		t.Fatalf("trackers_probe_lost = %d, want exactly 1", got)
	}
	if got := s.Metrics().Counter("probe.verdicts").Value(); got != 1 {
		t.Fatalf("probe.verdicts = %d, want exactly 1", got)
	}
	// Recovery re-executed the dead tracker's work, and within bounds: one
	// loss re-queues each affected task at most once.
	if j.Result.MaxTaskExecutions < 2 {
		t.Fatalf("MaxTaskExecutions = %d, want >= 2 (re-execution after verdict)", j.Result.MaxTaskExecutions)
	}
	if j.Result.MaxTaskExecutions > 3 {
		t.Fatalf("MaxTaskExecutions = %d — unbounded re-execution after a single loss", j.Result.MaxTaskExecutions)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestChaosProbeFlappingNoSpuriousReexecution drops every second probe to
// tracker 1 for the whole job: heavy flapping, but never DeadAfter losses
// in a row. A flapping network must cause zero verdicts, zero speculative
// re-execution, and identical output.
func TestChaosProbeFlappingNoSpuriousReexecution(t *testing.T) {
	want := cleanDigest(t)

	inj := faults.New(7, faults.Rule{
		Component: "hadoop.tracker1.jetty",
		Operation: "ping",
		Every:     2,
		Action:    faults.Fail,
	})
	s := New(Config{
		Cluster: chaosCluster(inj),
		Probe:   ProbeConfig{Interval: time.Millisecond, Timeout: 250 * time.Millisecond, DeadAfter: 3},
	})
	job, splits := chaosWC(t)
	j, err := s.Submit("flap", "wc", job, splits)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatalf("job under probe flapping: %v", err)
	}

	// The flapping was real...
	if inj.Count("hadoop.tracker1.jetty", "ping") == 0 {
		t.Fatal("no pings reached the flapping tracker")
	}
	if s.Metrics().Counter("probe.lost").Value() == 0 {
		t.Fatal("no probe losses recorded — the flap never happened")
	}
	// ...and changed nothing.
	if got := s.Metrics().Counter("probe.verdicts").Value(); got != 0 {
		t.Fatalf("probe.verdicts = %d, want 0 under sub-threshold flapping", got)
	}
	if got := s.Metrics().Counter("hadoop.trackers_probe_lost").Value(); got != 0 {
		t.Fatalf("trackers_probe_lost = %d, want 0", got)
	}
	if j.Result.MaxTaskExecutions != 1 {
		t.Fatalf("MaxTaskExecutions = %d, want 1 (no speculative re-execution)", j.Result.MaxTaskExecutions)
	}
	if got := OutputDigest(j.Result); !bytes.Equal(got, want) {
		t.Fatal("output under flapping differs from fault-free run")
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
