// Package hadooprpc is a from-scratch reimplementation of the Hadoop 0.20
// RPC mechanism the paper benchmarks against MPI (§II.B): versioned
// protocols registered on a TCP server, invoked by method name with
// Writable-serialized parameters, one response per call.
//
// The wire anatomy follows org.apache.hadoop.ipc in the essentials that
// determine its performance behaviour:
//
//   - a connection header ("hrpc" magic + version) on connect;
//   - a client-side GetProtocolVersion handshake before user calls
//     (VersionedProtocol semantics);
//   - each call framed as callID + length + UTF method name + parameter
//     count + per-parameter type-tagged Writable encoding — the payload is
//     serialized into the call frame rather than streamed, which is exactly
//     why the paper measures RPC bandwidth topping out ~100x below wire
//     speed: every "packet" is a fully-materialized, copied, type-tagged
//     call;
//   - responses framed as callID + status + value.
//
// Unlike HTTP shuffle, a call's parameters and return value transit the
// connection as single buffers; there is no streaming path. The package is
// used directly by the Figure 2/3 harness (echo protocol) and, as a cost
// model, by the Hadoop simulator's heartbeat traffic.
package hadooprpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Wire constants, mirroring Hadoop's ipc.Server.
const (
	headerMagic   = "hrpc"
	headerVersion = 3 // Hadoop 0.20.2's CURRENT_VERSION

	statusSuccess = 0
	statusError   = 1

	// maxFrame guards servers against absurd allocations; 128 MB covers
	// the paper's largest benchmark message (64 MB) with framing slack.
	maxFrame = 128 << 20
)

// getProtocolVersionMethod is the reserved VersionedProtocol handshake.
const getProtocolVersionMethod = "getProtocolVersion"

// Errors.
var (
	ErrBadHeader       = errors.New("hadooprpc: bad connection header")
	ErrUnknownMethod   = errors.New("hadooprpc: unknown method")
	ErrVersionMismatch = errors.New("hadooprpc: protocol version mismatch")

	// errRemote marks a per-call error reported by the server (the
	// connection stays usable), as opposed to a transport failure.
	errRemote = errors.New("hadooprpc: remote error")
)

// Handler is one RPC method: parameters in, value out. Parameters arrive
// fully materialized, as in Hadoop.
type Handler func(params [][]byte) ([]byte, error)

// TracedHandler is a handler that also receives the caller's encoded trace
// context (nil when the caller sent none). The context is opaque to this
// package; internal/trace decodes it.
type TracedHandler func(tctx []byte, params [][]byte) ([]byte, error)

// Protocol is a named, versioned set of methods — the analogue of a Java
// interface extending VersionedProtocol.
type Protocol struct {
	// Name identifies the protocol (Java would use the interface FQN).
	Name string
	// Version must match between client and server, as VersionedProtocol
	// demands.
	Version int64
	// Methods maps method name to handler.
	Methods map[string]Handler
	// Traced maps method name to context-aware handler; a method present
	// here takes precedence over Methods. Plain handlers interoperate with
	// traced callers regardless — the dispatcher strips the trace parameter
	// before they see the call.
	Traced map[string]TracedHandler
}

// Server serves registered protocols over TCP.
type Server struct {
	mu        sync.Mutex
	protocols map[string]*Protocol
	ln        net.Listener
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	closed    bool
}

// NewServer creates a server with no protocols registered.
func NewServer() *Server {
	return &Server{
		protocols: make(map[string]*Protocol),
		conns:     make(map[net.Conn]struct{}),
	}
}

// track registers a live connection; it reports false if the server is
// already closed (the caller must drop the connection).
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// Register adds a protocol. Registering a duplicate name panics: it is a
// wiring bug, not a runtime condition.
func (s *Server) Register(p *Protocol) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.protocols[p.Name]; dup {
		panic(fmt.Sprintf("hadooprpc: protocol %q registered twice", p.Name))
	}
	s.protocols[p.Name] = p
}

// Listen binds the server to addr ("127.0.0.1:0" for an ephemeral port) and
// starts serving. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			if err := s.serveConn(conn); err != nil && err != io.EOF {
				// Connection-level failures are the client's problem;
				// the server just drops the connection, as Hadoop does.
				_ = err
			}
		}()
	}
}

// Close stops the listener, terminates active connections and waits for
// their serving goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) lookup(name string) *Protocol {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.protocols[name]
}

// serveConn handles one client connection: header check, then a call loop.
func (s *Server) serveConn(conn net.Conn) error {
	r := bufio.NewReaderSize(conn, 64*1024)
	w := bufio.NewWriterSize(conn, 64*1024)

	// Connection header: "hrpc" + version byte.
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	if string(hdr[:4]) != headerMagic || hdr[4] != headerVersion {
		return ErrBadHeader
	}

	for {
		call, err := readCall(r)
		if err != nil {
			return err
		}
		value, callErr := s.dispatch(call)
		if err := writeResponse(w, call.id, value, callErr); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

func (s *Server) dispatch(c *call) ([]byte, error) {
	p := s.lookup(c.protocol)
	if p == nil {
		return nil, fmt.Errorf("hadooprpc: unknown protocol %q", c.protocol)
	}
	if c.method == getProtocolVersionMethod {
		// Handshake: parameter 0 is the client's expected version.
		if len(c.params) != 1 || len(c.params[0]) != 8 {
			return nil, fmt.Errorf("hadooprpc: malformed %s", getProtocolVersionMethod)
		}
		clientVer := int64(binary.BigEndian.Uint64(c.params[0]))
		if clientVer != p.Version {
			return nil, fmt.Errorf("%w: client %d, server %d", ErrVersionMismatch, clientVer, p.Version)
		}
		var out [8]byte
		binary.BigEndian.PutUint64(out[:], uint64(p.Version))
		return out[:], nil
	}
	if th, ok := p.Traced[c.method]; ok {
		return th(c.tctx, c.params)
	}
	h, ok := p.Methods[c.method]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrUnknownMethod, c.protocol, c.method)
	}
	return h(c.params)
}

// call is a decoded invocation frame.
type call struct {
	id       int32
	protocol string
	method   string
	params   [][]byte
	tctx     []byte // trace context carried by a traceParamTypeName param
}

// --------------------------------------------------------------------------
// Wire encoding. Strings are UTF-8 with uint16 length (Java DataOutput
// writeUTF); parameters are "ObjectWritable"-style: a type-name string then
// a uint32 length then the bytes. The copy-amplification of this format is
// the behaviour under test, so it is kept faithful rather than optimized.

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("hadooprpc: string too long (%d)", len(s))
	}
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	if _, err := w.Write(l[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var l [2]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", err
	}
	b := make([]byte, binary.BigEndian.Uint16(l[:]))
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// paramTypeName tags every parameter, as ObjectWritable writes the declared
// class name before the instance bytes.
const paramTypeName = "org.apache.hadoop.io.BytesWritable"

// traceParamTypeName tags the optional trailing trace-context parameter.
// The type tag is the wire discriminator: handlers never see the trace
// parameter (the dispatcher routes it separately), and parameters with a
// type tag this server does not understand are skipped rather than
// delivered — which is what lets traced and untraced peers interoperate.
const traceParamTypeName = "org.ict.mpid.TraceContext"

// encodeCall materializes the full call frame: callID, then frame length,
// then protocol, method, parameters and — when tctx is non-empty — the
// trailing trace-context parameter under its own type tag.
func encodeCall(id int32, protocol, method string, params [][]byte, tctx []byte) ([]byte, error) {
	// Body first (Hadoop writes length-prefixed frames).
	body := &lenBuffer{}
	if err := writeString(body, protocol); err != nil {
		return nil, err
	}
	if err := writeString(body, method); err != nil {
		return nil, err
	}
	n := len(params)
	if len(tctx) > 0 {
		n++
	}
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(n))
	body.Write(cnt[:])
	writeParam := func(typeName string, p []byte) error {
		if err := writeString(body, typeName); err != nil {
			return err
		}
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(p)))
		body.Write(l[:])
		body.Write(p) // the copy Hadoop pays serializing into the frame
		return nil
	}
	for _, p := range params {
		if err := writeParam(paramTypeName, p); err != nil {
			return nil, err
		}
	}
	if len(tctx) > 0 {
		if err := writeParam(traceParamTypeName, tctx); err != nil {
			return nil, err
		}
	}
	frame := make([]byte, 8+body.Len())
	binary.BigEndian.PutUint32(frame[0:4], uint32(id))
	binary.BigEndian.PutUint32(frame[4:8], uint32(body.Len()))
	copy(frame[8:], body.Bytes())
	return frame, nil
}

// lenBuffer is a minimal append-only buffer (bytes.Buffer without the
// reader half).
type lenBuffer struct{ b []byte }

func (lb *lenBuffer) Write(p []byte) (int, error) { lb.b = append(lb.b, p...); return len(p), nil }
func (lb *lenBuffer) Len() int                    { return len(lb.b) }
func (lb *lenBuffer) Bytes() []byte               { return lb.b }

var _ io.Writer = (*lenBuffer)(nil)

func readCall(r io.Reader) (*call, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	id := int32(binary.BigEndian.Uint32(hdr[0:4]))
	size := binary.BigEndian.Uint32(hdr[4:8])
	if size > maxFrame {
		return nil, fmt.Errorf("hadooprpc: frame of %d bytes exceeds limit", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	br := &sliceReader{b: body}
	protocol, err := readString(br)
	if err != nil {
		return nil, err
	}
	method, err := readString(br)
	if err != nil {
		return nil, err
	}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(cnt[:])
	if n > 1024 {
		return nil, fmt.Errorf("hadooprpc: %d parameters is implausible", n)
	}
	params := make([][]byte, 0, n)
	var tctx []byte
	for i := uint32(0); i < n; i++ {
		typeName, err := readString(br)
		if err != nil {
			return nil, err
		}
		var l [4]byte
		if _, err := io.ReadFull(br, l[:]); err != nil {
			return nil, err
		}
		plen := binary.BigEndian.Uint32(l[:])
		p := make([]byte, plen) // the copy Hadoop pays deserializing
		if _, err := io.ReadFull(br, p); err != nil {
			return nil, err
		}
		switch typeName {
		case paramTypeName:
			params = append(params, p)
		case traceParamTypeName:
			tctx = p
		default:
			// An unknown parameter type from a newer peer: skip it rather
			// than hand handlers a parameter they cannot interpret.
		}
	}
	return &call{id: id, protocol: protocol, method: method, params: params, tctx: tctx}, nil
}

type sliceReader struct {
	b   []byte
	pos int
}

func (sr *sliceReader) Read(p []byte) (int, error) {
	if sr.pos >= len(sr.b) {
		return 0, io.EOF
	}
	n := copy(p, sr.b[sr.pos:])
	sr.pos += n
	return n, nil
}

func writeResponse(w io.Writer, id int32, value []byte, callErr error) error {
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(id))
	if callErr != nil {
		hdr[4] = statusError
		msg := callErr.Error()
		binary.BigEndian.PutUint32(hdr[5:9], uint32(len(msg)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := io.WriteString(w, msg)
		return err
	}
	hdr[4] = statusSuccess
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(value)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(value)
	return err
}

func readResponse(r io.Reader) (int32, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	id := int32(binary.BigEndian.Uint32(hdr[0:4]))
	status := hdr[4]
	size := binary.BigEndian.Uint32(hdr[5:9])
	if size > maxFrame {
		return id, nil, fmt.Errorf("hadooprpc: response of %d bytes exceeds limit", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return id, nil, err
	}
	if status != statusSuccess {
		return id, nil, fmt.Errorf("%w: %s", errRemote, body)
	}
	return id, body, nil
}
