package hadooprpc

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/ict-repro/mpid/internal/trace"
)

// traceTestProtocol registers one plain handler and one traced handler on
// the same protocol — the mixed deployment the back-compat contract must
// survive: old-style handlers served by a trace-aware dispatcher, and
// trace-aware handlers called by clients that may or may not send context.
func traceTestProtocol(t *testing.T, gotCtx *[][]byte) *Protocol {
	return &Protocol{
		Name:    "org.ict.mpid.TraceTestProtocol",
		Version: 1,
		Methods: map[string]Handler{
			// A legacy handler with a strict parameter-count check. If the
			// dispatcher leaked the trailing trace param, this would fail.
			"legacy": func(params [][]byte) ([]byte, error) {
				if len(params) != 2 {
					return nil, fmt.Errorf("legacy wants 2 params, got %d", len(params))
				}
				return append(append([]byte{}, params[0]...), params[1]...), nil
			},
		},
		Traced: map[string]TracedHandler{
			"aware": func(tctx []byte, params [][]byte) ([]byte, error) {
				*gotCtx = append(*gotCtx, append([]byte(nil), tctx...))
				if len(params) != 1 {
					return nil, fmt.Errorf("aware wants 1 param, got %d", len(params))
				}
				return params[0], nil
			},
		},
	}
}

// TestTraceContextBackCompat proves the propagation contract on one server:
//   - a traced call to a legacy handler is served as if untraced (the
//     dispatcher strips the trailing context param);
//   - an untraced call to a traced handler delivers a nil context;
//   - a traced call to a traced handler delivers the exact encoded context;
//
// exercised over both client types (serialized Client and MuxClient).
func TestTraceContextBackCompat(t *testing.T) {
	var seen [][]byte
	s := NewServer()
	s.Register(traceTestProtocol(t, &seen))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := trace.Context{Trace: 77, Span: 13}
	tctx := trace.EncodeContext(ctx)

	runCalls := func(name string, call func(tctx []byte, method string, params ...[]byte) ([]byte, error)) {
		t.Helper()
		seen = seen[:0]

		// Traced call, legacy handler: strict param count must hold.
		got, err := call(tctx, "legacy", []byte("ab"), []byte("cd"))
		if err != nil {
			t.Fatalf("%s: traced call to legacy handler: %v", name, err)
		}
		if !bytes.Equal(got, []byte("abcd")) {
			t.Fatalf("%s: legacy handler returned %q", name, got)
		}

		// Untraced call, traced handler: context must arrive nil.
		if _, err := call(nil, "aware", []byte("x")); err != nil {
			t.Fatalf("%s: untraced call to traced handler: %v", name, err)
		}

		// Traced call, traced handler: context must round-trip exactly.
		if _, err := call(tctx, "aware", []byte("y")); err != nil {
			t.Fatalf("%s: traced call to traced handler: %v", name, err)
		}

		if len(seen) != 2 {
			t.Fatalf("%s: traced handler invoked %d times, want 2", name, len(seen))
		}
		if len(seen[0]) != 0 {
			t.Fatalf("%s: untraced call delivered context %x", name, seen[0])
		}
		dec, err := trace.DecodeContext(seen[1])
		if err != nil || dec != ctx {
			t.Fatalf("%s: context did not survive the wire: %v %v", name, dec, err)
		}
	}

	c, err := Dial(addr, "org.ict.mpid.TraceTestProtocol", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runCalls("client", c.CallTraced)

	mc, err := DialMux(addr, "org.ict.mpid.TraceTestProtocol", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	runCalls("mux", mc.CallTraced)
}

// TestTraceParamSkippedOnWire checks the framing directly: a traced frame
// decodes into the same params as an untraced one, with the context routed
// aside, and a frame carrying an unknown future type tag still decodes.
func TestTraceParamSkippedOnWire(t *testing.T) {
	params := [][]byte{[]byte("p0"), []byte("p1")}
	tctx := trace.EncodeContext(trace.Context{Trace: 1, Span: 2})

	plain, err := encodeCall(3, "proto", "m", params, nil)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := encodeCall(3, "proto", "m", params, tctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) <= len(plain) {
		t.Fatal("traced frame not larger than plain frame")
	}

	for name, frame := range map[string][]byte{"plain": plain, "traced": traced} {
		c, err := readCall(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(c.params) != 2 || !bytes.Equal(c.params[0], params[0]) || !bytes.Equal(c.params[1], params[1]) {
			t.Fatalf("%s: params corrupted: %q", name, c.params)
		}
		if name == "plain" && len(c.tctx) != 0 {
			t.Fatalf("plain frame produced context %x", c.tctx)
		}
		if name == "traced" && !bytes.Equal(c.tctx, tctx) {
			t.Fatalf("traced frame lost context: %x", c.tctx)
		}
	}
}
