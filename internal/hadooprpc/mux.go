package hadooprpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
)

// MuxClient is the multiplexing RPC client: many goroutines share one
// connection, calls are matched to responses by call id — the behaviour of
// Hadoop's ipc.Client, where all threads of a tasktracker funnel through
// one connection per (address, protocol) pair. Note what multiplexing does
// NOT buy: the server processes a connection's calls serially and responses
// return in submission order, so bulk-payload calls still queue behind each
// other. The bandwidth pathology of Figure 3 is unchanged; only small
// control calls benefit from sharing.
type MuxClient struct {
	protocol string
	conn     net.Conn
	w        *bufio.Writer

	mu      sync.Mutex // guards writes, id allocation, pending, closed
	nextID  int32
	pending map[int32]chan muxResult
	closed  bool
	readErr error
}

type muxResult struct {
	value []byte
	err   error
}

// DialMux connects, sends the connection header and performs the
// VersionedProtocol handshake, returning a client safe for concurrent use.
func DialMux(addr, protocol string, version int64) (*MuxClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &MuxClient{
		protocol: protocol,
		conn:     conn,
		w:        bufio.NewWriterSize(conn, 64*1024),
		pending:  make(map[int32]chan muxResult),
	}
	if _, err := c.w.WriteString(headerMagic); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.WriteByte(headerVersion); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()

	var ver [8]byte
	binary.BigEndian.PutUint64(ver[:], uint64(version))
	got, err := c.Call(getProtocolVersionMethod, ver[:])
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("hadooprpc: handshake: %w", err)
	}
	if len(got) != 8 || int64(binary.BigEndian.Uint64(got)) != version {
		c.Close()
		return nil, ErrVersionMismatch
	}
	return c, nil
}

// readLoop delivers responses to their waiting callers by call id.
func (c *MuxClient) readLoop() {
	r := bufio.NewReaderSize(c.conn, 64*1024)
	for {
		id, value, err := readResponse(r)
		if err != nil && !isRemoteError(err) {
			// Connection-level failure: fail every pending call.
			c.mu.Lock()
			c.readErr = err
			for cid, ch := range c.pending {
				ch <- muxResult{err: err}
				delete(c.pending, cid)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- muxResult{value: value, err: err}
		}
	}
}

// isRemoteError distinguishes a per-call remote error (connection remains
// usable) from a transport failure.
func isRemoteError(err error) bool {
	return err != nil && errors.Is(err, errRemote)
}

// Call invokes method with the given parameters; it is safe to call from
// many goroutines at once.
func (c *MuxClient) Call(method string, params ...[]byte) ([]byte, error) {
	ch := make(chan muxResult, 1)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("hadooprpc: client closed")
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	frame, err := encodeCall(id, c.protocol, method, params)
	if err == nil {
		_, err = c.w.Write(frame)
		if err == nil {
			err = c.w.Flush()
		}
	}
	if err != nil {
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()

	res := <-ch
	return res.value, res.err
}

// Close tears the connection down; pending calls fail.
func (c *MuxClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
