package hadooprpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
)

// MuxClient is the multiplexing RPC client: many goroutines share one
// connection, calls are matched to responses by call id — the behaviour of
// Hadoop's ipc.Client, where all threads of a tasktracker funnel through
// one connection per (address, protocol) pair. Note what multiplexing does
// NOT buy: the server processes a connection's calls serially and responses
// return in submission order, so bulk-payload calls still queue behind each
// other. The bandwidth pathology of Figure 3 is unchanged; only small
// control calls benefit from sharing.
//
// With Options.MaxAttempts > 1 the client is self-healing: a call that
// fails at the transport level (broken connection, timeout, injected
// fault) abandons the connection, redials and replays after an
// exponential backoff with jitter. Remote handler errors are returned
// immediately — the server answered; retrying cannot change its mind.
type MuxClient struct {
	addr     string
	protocol string
	version  int64
	opts     Options
	jit      *faults.Jitter

	mu     sync.Mutex
	cur    *muxConn // nil when disconnected
	closed bool
}

// muxConn is one generation of the underlying connection. Reconnecting
// replaces the whole struct, so stale callers fail cleanly instead of
// racing a half-reset state.
type muxConn struct {
	conn net.Conn
	w    *bufio.Writer

	mu      sync.Mutex // guards writes, id allocation, pending, readErr
	nextID  int32
	pending map[int32]chan muxResult
	readErr error
}

type muxResult struct {
	value []byte
	err   error
}

// errConnAbandoned marks a connection torn down locally (timeout or
// injected drop); pending calls fail with it.
var errConnAbandoned = errors.New("hadooprpc: connection abandoned")

// DialMux connects with default options (timeouts on, retries off) and
// performs the handshake, returning a client safe for concurrent use.
func DialMux(addr, protocol string, version int64) (*MuxClient, error) {
	return DialMuxOptions(addr, protocol, version, Options{})
}

// DialMuxOptions connects, sends the connection header and performs the
// VersionedProtocol handshake. The initial dial is fail-fast even with
// retries enabled; retries govern subsequent Calls.
func DialMuxOptions(addr, protocol string, version int64, opts Options) (*MuxClient, error) {
	c := &MuxClient{
		addr:     addr,
		protocol: protocol,
		version:  version,
		opts:     opts.withDefaults(),
	}
	c.jit = faults.NewJitter(c.opts.Seed)
	var deadline time.Time
	if c.opts.CallTimeout > 0 {
		deadline = time.Now().Add(c.opts.CallTimeout)
	}
	if _, err := c.ensureConn(deadline); err != nil {
		return nil, err
	}
	return c, nil
}

// ensureConn returns the live connection, dialing a fresh one if needed;
// the handshake on a fresh dial runs inside the caller's deadline.
func (c *MuxClient) ensureConn(deadline time.Time) (*muxConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("hadooprpc: client closed")
	}
	if c.cur != nil && c.cur.alive() {
		return c.cur, nil
	}
	mc, err := c.dialLocked(deadline)
	if err != nil {
		return nil, err
	}
	c.cur = mc
	return mc, nil
}

// dialLocked establishes one connection generation: TCP connect, header,
// read loop, handshake.
func (c *MuxClient) dialLocked(deadline time.Time) (*muxConn, error) {
	if err := c.opts.Injector.Check(c.opts.Component, "dial", c.addr); err != nil {
		return nil, err
	}
	d := net.Dialer{}
	if c.opts.DialTimeout > 0 {
		d.Timeout = c.opts.DialTimeout
	}
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn = faults.WrapConn(conn, c.opts.Injector, c.opts.Component, c.addr)
	mc := &muxConn{
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 64*1024),
		pending: make(map[int32]chan muxResult),
	}
	if _, err := mc.w.WriteString(headerMagic); err == nil {
		if err = mc.w.WriteByte(headerVersion); err == nil {
			err = mc.w.Flush()
		}
	}
	if err != nil {
		conn.Close()
		return nil, err
	}
	go mc.readLoop()

	var ver [8]byte
	binary.BigEndian.PutUint64(ver[:], uint64(c.version))
	got, err := c.callOn(mc, getProtocolVersionMethod, [][]byte{ver[:]}, nil, deadline)
	if err != nil {
		mc.kill(errConnAbandoned)
		return nil, fmt.Errorf("hadooprpc: handshake: %w", err)
	}
	if len(got) != 8 || int64(binary.BigEndian.Uint64(got)) != c.version {
		mc.kill(errConnAbandoned)
		return nil, ErrVersionMismatch
	}
	return mc, nil
}

// alive reports whether the connection generation can still carry calls.
func (mc *muxConn) alive() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.readErr == nil
}

// kill poisons the generation: the socket closes, the read loop exits and
// pending calls fail.
func (mc *muxConn) kill(err error) {
	mc.mu.Lock()
	if mc.readErr == nil {
		mc.readErr = err
	}
	for id, ch := range mc.pending {
		ch <- muxResult{err: err}
		delete(mc.pending, id)
	}
	mc.mu.Unlock()
	mc.conn.Close()
}

// readLoop delivers responses to their waiting callers by call id.
func (mc *muxConn) readLoop() {
	r := bufio.NewReaderSize(mc.conn, 64*1024)
	for {
		id, value, err := readResponse(r)
		if err != nil && !isRemoteError(err) {
			// Connection-level failure: fail every pending call.
			mc.kill(err)
			return
		}
		mc.mu.Lock()
		ch, ok := mc.pending[id]
		delete(mc.pending, id)
		mc.mu.Unlock()
		if ok {
			ch <- muxResult{value: value, err: err}
		}
	}
}

// isRemoteError distinguishes a per-call remote error (connection remains
// usable) from a transport failure.
func isRemoteError(err error) bool {
	return err != nil && errors.Is(err, errRemote)
}

// callOn performs one call/response exchange on a connection generation,
// bounded by the Call's remaining budget (a zero deadline waits forever). A
// timeout abandons the generation: once the response stream is out of sync
// with the caller's patience, the safe move is Hadoop's — reconnect.
func (c *MuxClient) callOn(mc *muxConn, method string, params [][]byte, tctx []byte, deadline time.Time) ([]byte, error) {
	ch := make(chan muxResult, 1)

	mc.mu.Lock()
	if mc.readErr != nil {
		err := mc.readErr
		mc.mu.Unlock()
		return nil, err
	}
	id := mc.nextID
	mc.nextID++
	mc.pending[id] = ch
	frame, err := encodeCall(id, c.protocol, method, params, tctx)
	if err == nil {
		_, err = mc.w.Write(frame)
		if err == nil {
			err = mc.w.Flush()
		}
	}
	if err != nil {
		delete(mc.pending, id)
		mc.mu.Unlock()
		return nil, err
	}
	mc.mu.Unlock()
	c.opts.Metrics.Counter("rpc.bytes_sent").Add(int64(len(frame)))

	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		select {
		case res := <-ch:
			c.opts.Metrics.Counter("rpc.bytes_recv").Add(int64(len(res.value)))
			return res.value, res.err
		case <-timer.C:
			mc.kill(errConnAbandoned)
			return nil, fmt.Errorf("hadooprpc: call %s timed out after %v", method, c.opts.CallTimeout)
		}
	}
	res := <-ch
	c.opts.Metrics.Counter("rpc.bytes_recv").Add(int64(len(res.value)))
	return res.value, res.err
}

// invalidate discards a dead generation so the next attempt redials.
func (c *MuxClient) invalidate(mc *muxConn) {
	c.mu.Lock()
	if c.cur == mc {
		c.cur = nil
	}
	c.mu.Unlock()
	mc.kill(errConnAbandoned)
}

// Call invokes method with the given parameters; it is safe to call from
// many goroutines at once. Transport failures are retried on a fresh
// connection up to Options.MaxAttempts total attempts.
func (c *MuxClient) Call(method string, params ...[]byte) ([]byte, error) {
	return c.CallTraced(nil, method, params...)
}

// CallTraced is Call with a propagated trace context: tctx (an encoded
// trace.Context) rides the call frame as a trailing type-tagged parameter
// that untraced handlers never see. A nil tctx is a plain Call.
func (c *MuxClient) CallTraced(tctx []byte, method string, params ...[]byte) ([]byte, error) {
	m := c.opts.Metrics
	m.Counter("rpc.calls").Inc()
	m.Counter("rpc.calls." + method).Inc()
	start := time.Now()
	defer func() { m.Timer("rpc.latency").ObserveDuration(time.Since(start)) }()
	// One total budget for the whole Call — attempts, redials and backoff
	// sleeps included — so a flapping peer cannot stretch a Call to
	// MaxAttempts fresh timeouts.
	var deadline time.Time
	if c.opts.CallTimeout > 0 {
		deadline = start.Add(c.opts.CallTimeout)
	}
	for attempt := 1; ; attempt++ {
		value, err := c.attempt(method, params, tctx, deadline)
		if err == nil || !retryable(err) {
			if err != nil {
				m.Counter("rpc.errors").Inc()
			}
			return value, err
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed || attempt >= c.opts.MaxAttempts {
			m.Counter("rpc.errors").Inc()
			return nil, err
		}
		delay := c.opts.Backoff.Delay(attempt, c.jit)
		if !deadline.IsZero() && !time.Now().Add(delay).Before(deadline) {
			m.Counter("rpc.errors").Inc()
			return nil, &DeadlineError{
				Method: method, Attempts: attempt,
				Elapsed: time.Since(start), Cause: err,
			}
		}
		m.Counter("rpc.retries").Inc()
		time.Sleep(delay)
	}
}

// attempt is one try of a Call: injection point, connection, exchange.
func (c *MuxClient) attempt(method string, params [][]byte, tctx []byte, deadline time.Time) ([]byte, error) {
	if err := c.opts.Injector.Check(c.opts.Component, "call", method); err != nil {
		if errors.Is(err, faults.ErrDropped) {
			c.mu.Lock()
			mc := c.cur
			c.mu.Unlock()
			if mc != nil {
				c.invalidate(mc)
			}
		}
		return nil, err
	}
	mc, err := c.ensureConn(deadline)
	if err != nil {
		return nil, err
	}
	value, err := c.callOn(mc, method, params, tctx, deadline)
	if err != nil && !isRemoteError(err) {
		c.invalidate(mc)
	}
	return value, err
}

// Close tears the connection down; pending calls fail.
func (c *MuxClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	mc := c.cur
	c.cur = nil
	c.mu.Unlock()
	if mc != nil {
		mc.kill(errors.New("hadooprpc: client closed"))
	}
	return nil
}
