package hadooprpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/obs"
)

// Client is an RPC proxy for one protocol on one server, the analogue of
// RPC.getProxy in Hadoop. As in Hadoop 0.20's ipc.Client with a single
// connection, calls on one Client are serialized: one call is in flight at
// a time. Concurrency requires multiple clients, which is exactly the
// behaviour that throttles shuffle-over-RPC.
//
// A Client dialed with retry options (Options.MaxAttempts > 1) survives
// transport failures: a failed call closes the connection, and the next
// attempt redials and replays the call after a backoff.
type Client struct {
	addr     string
	protocol string
	version  int64
	opts     Options
	jit      *faults.Jitter

	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	nextID int32
	closed bool
}

// Dial connects with default options (10 s dial timeout, 30 s call
// timeout, no retries): the fail-fast client the benchmarks use.
func Dial(addr, protocol string, version int64) (*Client, error) {
	return DialOptions(addr, protocol, version, Options{})
}

// DialOptions connects to the server, sends the connection header and
// performs the VersionedProtocol handshake for the named protocol.
func DialOptions(addr, protocol string, version int64, opts Options) (*Client, error) {
	c := &Client{
		addr:     addr,
		protocol: protocol,
		version:  version,
		opts:     opts.withDefaults(),
	}
	c.jit = faults.NewJitter(c.opts.Seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	var deadline time.Time
	if c.opts.CallTimeout > 0 {
		deadline = time.Now().Add(c.opts.CallTimeout)
	}
	if err := c.connectLocked(deadline); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked dials, sends the connection header and runs the handshake,
// all inside the caller's deadline. On any failure the half-open connection
// is torn down.
func (c *Client) connectLocked(deadline time.Time) error {
	if err := c.opts.Injector.Check(c.opts.Component, "dial", c.addr); err != nil {
		return err
	}
	d := net.Dialer{}
	if c.opts.DialTimeout > 0 {
		d.Timeout = c.opts.DialTimeout
	}
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn = faults.WrapConn(conn, c.opts.Injector, c.opts.Component, c.addr)
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 64*1024)
	c.w = bufio.NewWriterSize(conn, 64*1024)

	// Connection header.
	if _, err := c.w.WriteString(headerMagic); err == nil {
		if err = c.w.WriteByte(headerVersion); err == nil {
			err = c.w.Flush()
		}
	}
	if err != nil {
		c.dropLocked()
		return err
	}
	// VersionedProtocol handshake.
	var ver [8]byte
	binary.BigEndian.PutUint64(ver[:], uint64(c.version))
	got, err := c.callLocked(getProtocolVersionMethod, [][]byte{ver[:]}, nil, deadline)
	if err != nil {
		c.dropLocked()
		return fmt.Errorf("hadooprpc: handshake: %w", err)
	}
	if len(got) != 8 || int64(binary.BigEndian.Uint64(got)) != c.version {
		c.dropLocked()
		return ErrVersionMismatch
	}
	return nil
}

// dropLocked abandons the current connection.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn, c.r, c.w = nil, nil, nil
}

// Call invokes method with the given parameters and returns its value. The
// entire parameter set is serialized into one call frame before anything
// hits the wire — Hadoop's copy-then-send behaviour. With retries enabled,
// a transport failure reconnects and replays the call after a backoff, up
// to Options.MaxAttempts total attempts.
func (c *Client) Call(method string, params ...[]byte) ([]byte, error) {
	return c.CallTraced(nil, method, params...)
}

// CallTraced is Call with a propagated trace context: tctx (an encoded
// trace.Context) rides the call frame as a trailing type-tagged parameter.
// Handlers that do not understand tracing never see it; servers that do
// can parent their spans under the caller's. A nil tctx is a plain Call.
func (c *Client) CallTraced(tctx []byte, method string, params ...[]byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.opts.Metrics
	m.Counter("rpc.calls").Inc()
	m.Counter("rpc.calls." + method).Inc()
	start := time.Now()
	defer func() { m.Timer("rpc.latency").ObserveDuration(time.Since(start)) }()
	// CallTimeout is the whole Call's budget: attempts, reconnects and
	// backoff sleeps all draw from one deadline, so a flapping peer cannot
	// stretch the Call to MaxAttempts fresh timeouts.
	var deadline time.Time
	if c.opts.CallTimeout > 0 {
		deadline = start.Add(c.opts.CallTimeout)
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if c.closed {
			return nil, errors.New("hadooprpc: client closed")
		}
		value, err := c.attemptLocked(method, params, tctx, deadline)
		if err == nil || !retryable(err) {
			if err != nil {
				m.Counter("rpc.errors").Inc()
			}
			return value, err
		}
		lastErr = err
		if attempt >= c.opts.MaxAttempts {
			m.Counter("rpc.errors").Inc()
			return nil, lastErr
		}
		delay := c.opts.Backoff.Delay(attempt, c.jit)
		if !deadline.IsZero() && !time.Now().Add(delay).Before(deadline) {
			m.Counter("rpc.errors").Inc()
			de := &DeadlineError{
				Method: method, Attempts: attempt,
				Elapsed: time.Since(start), Cause: lastErr,
			}
			c.opts.Events.Emit(obs.Event{Type: obs.EvRPCDeadline, Detail: de.Error()})
			return nil, de
		}
		m.Counter("rpc.retries").Inc()
		c.opts.Events.Emit(obs.Event{Type: obs.EvRPCRetry,
			Detail: fmt.Sprintf("%s attempt %d: %v", method, attempt, lastErr)})
		// Sleeping under the lock is deliberate: one call in flight at a
		// time is this client's contract.
		time.Sleep(delay)
	}
}

// attemptLocked is one try: ensure a connection, run the injection point,
// send and await the response. Transport failures poison the connection.
// deadline, when non-zero, is the whole Call's budget expiry.
func (c *Client) attemptLocked(method string, params [][]byte, tctx []byte, deadline time.Time) ([]byte, error) {
	if c.conn == nil {
		if err := c.connectLocked(deadline); err != nil {
			return nil, err
		}
	}
	if err := c.opts.Injector.Check(c.opts.Component, "call", method); err != nil {
		if errors.Is(err, faults.ErrDropped) || faults.IsCrash(err) {
			c.dropLocked()
		}
		return nil, err
	}
	value, err := c.callLocked(method, params, tctx, deadline)
	if err != nil && !errors.Is(err, errRemote) {
		c.dropLocked()
	}
	return value, err
}

// callLocked performs one framed call/response exchange on the live
// connection, bounded by the Call's remaining budget.
func (c *Client) callLocked(method string, params [][]byte, tctx []byte, deadline time.Time) ([]byte, error) {
	id := c.nextID
	c.nextID++
	frame, err := encodeCall(id, c.protocol, method, params, tctx)
	if err != nil {
		return nil, err
	}
	if !deadline.IsZero() {
		c.conn.SetDeadline(deadline)
		defer c.conn.SetDeadline(time.Time{})
	}
	if _, err := c.w.Write(frame); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	c.opts.Metrics.Counter("rpc.bytes_sent").Add(int64(len(frame)))
	gotID, value, err := readResponse(c.r)
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return nil, fmt.Errorf("hadooprpc: response id %d for call %d", gotID, id)
	}
	c.opts.Metrics.Counter("rpc.bytes_recv").Add(int64(len(value)))
	return value, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.r, c.w = nil, nil, nil
	return err
}

// --------------------------------------------------------------------------
// Echo protocol: the benchmark protocol from §II.B. The paper implements "a
// basic class extending from VersionedProtocol ... with a simple recv
// method, which only checks the received data size" and echoes it back for
// ping-pong timing.

// EchoProtocolName is the registered name of the benchmark protocol.
const EchoProtocolName = "org.ict.mpid.EchoProtocol"

// EchoProtocolVersion is its VersionedProtocol version.
const EchoProtocolVersion int64 = 1

// NewEchoProtocol builds the benchmark protocol: recv(data) checks the size
// and returns the data to the invoker.
func NewEchoProtocol() *Protocol {
	return &Protocol{
		Name:    EchoProtocolName,
		Version: EchoProtocolVersion,
		Methods: map[string]Handler{
			"recv": func(params [][]byte) ([]byte, error) {
				if len(params) != 1 {
					return nil, fmt.Errorf("recv wants 1 parameter, got %d", len(params))
				}
				// "only checks the received data size":
				if params[0] == nil {
					return []byte{}, nil
				}
				return params[0], nil
			},
		},
	}
}
