package hadooprpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
)

// Client is an RPC proxy for one protocol on one server, the analogue of
// RPC.getProxy in Hadoop. As in Hadoop 0.20's ipc.Client with a single
// connection, calls on one Client are serialized: one call is in flight at
// a time. Concurrency requires multiple clients, which is exactly the
// behaviour that throttles shuffle-over-RPC.
type Client struct {
	protocol string

	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	nextID int32
	closed bool
}

// Dial connects to the server, sends the connection header and performs the
// VersionedProtocol handshake for the named protocol.
func Dial(addr, protocol string, version int64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{
		protocol: protocol,
		conn:     conn,
		r:        bufio.NewReaderSize(conn, 64*1024),
		w:        bufio.NewWriterSize(conn, 64*1024),
	}
	// Connection header.
	if _, err := c.w.WriteString(headerMagic); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.WriteByte(headerVersion); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	// VersionedProtocol handshake.
	var ver [8]byte
	binary.BigEndian.PutUint64(ver[:], uint64(version))
	got, err := c.Call(getProtocolVersionMethod, ver[:])
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("hadooprpc: handshake: %w", err)
	}
	if len(got) != 8 || int64(binary.BigEndian.Uint64(got)) != version {
		conn.Close()
		return nil, ErrVersionMismatch
	}
	return c, nil
}

// Call invokes method with the given parameters and returns its value. The
// entire parameter set is serialized into one call frame before anything
// hits the wire — Hadoop's copy-then-send behaviour.
func (c *Client) Call(method string, params ...[]byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("hadooprpc: client closed")
	}
	id := c.nextID
	c.nextID++
	frame, err := encodeCall(id, c.protocol, method, params)
	if err != nil {
		return nil, err
	}
	if _, err := c.w.Write(frame); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	gotID, value, err := readResponse(c.r)
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return nil, fmt.Errorf("hadooprpc: response id %d for call %d", gotID, id)
	}
	return value, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// --------------------------------------------------------------------------
// Echo protocol: the benchmark protocol from §II.B. The paper implements "a
// basic class extending from VersionedProtocol ... with a simple recv
// method, which only checks the received data size" and echoes it back for
// ping-pong timing.

// EchoProtocolName is the registered name of the benchmark protocol.
const EchoProtocolName = "org.ict.mpid.EchoProtocol"

// EchoProtocolVersion is its VersionedProtocol version.
const EchoProtocolVersion int64 = 1

// NewEchoProtocol builds the benchmark protocol: recv(data) checks the size
// and returns the data to the invoker.
func NewEchoProtocol() *Protocol {
	return &Protocol{
		Name:    EchoProtocolName,
		Version: EchoProtocolVersion,
		Methods: map[string]Handler{
			"recv": func(params [][]byte) ([]byte, error) {
				if len(params) != 1 {
					return nil, fmt.Errorf("recv wants 1 parameter, got %d", len(params))
				}
				// "only checks the received data size":
				if params[0] == nil {
					return []byte{}, nil
				}
				return params[0], nil
			},
		},
	}
}
