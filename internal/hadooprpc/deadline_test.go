package hadooprpc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
)

// The CallTimeout is a total per-call budget: attempts, reconnects and
// backoff sleeps all draw from it, and expiry surfaces as a *DeadlineError
// wrapping the last attempt's failure. Before this, each attempt got the
// full timeout, so a generous retry budget could multiply the configured
// deadline many times over.

// TestMuxCallTimeoutIsTotalBudget drives a mux client against a permanent
// injected fault with a retry budget far larger than the deadline allows.
// The call must give up when the budget expires — not after MaxAttempts —
// and report the expiry as a typed DeadlineError.
func TestMuxCallTimeoutIsTotalBudget(t *testing.T) {
	addr := startEchoServer(t)
	inj := faults.New(1, faults.Rule{Operation: "call", Action: faults.Fail})
	c, err := DialMuxOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{
		CallTimeout: 100 * time.Millisecond,
		MaxAttempts: 1000,
		Backoff:     faults.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		Injector:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Call("recv", []byte("doomed"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call under permanent fault returned nil error")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v (%T), want *DeadlineError", err, err)
	}
	if !IsDeadline(err) {
		t.Fatalf("IsDeadline(%v) = false", err)
	}
	if de.Method != "recv" {
		t.Fatalf("DeadlineError.Method = %q, want recv", de.Method)
	}
	if de.Attempts < 1 || de.Attempts >= 1000 {
		t.Fatalf("DeadlineError.Attempts = %d, want a few (budget, not MaxAttempts, must stop the call)", de.Attempts)
	}
	// The typed wrapper must expose the last attempt's real failure.
	if !faults.IsInjected(de.Cause) {
		t.Fatalf("DeadlineError.Cause = %v, want the injected fault", de.Cause)
	}
	if !faults.IsInjected(err) {
		t.Fatalf("errors.Is through DeadlineError lost the cause: %v", err)
	}
	// One total budget, not per-attempt: with 1000 attempts the old
	// semantics would run for ~100 s. Allow slack for one in-flight
	// attempt plus scheduling noise.
	if elapsed > 2*time.Second {
		t.Fatalf("call consumed %v, want about the 100 ms budget", elapsed)
	}
}

// TestClientCallTimeoutIsTotalBudget is the same property on the plain
// (non-mux) client.
func TestClientCallTimeoutIsTotalBudget(t *testing.T) {
	addr := startEchoServer(t)
	inj := faults.New(1, faults.Rule{Operation: "call", Action: faults.Fail})
	c, err := DialOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{
		CallTimeout: 100 * time.Millisecond,
		MaxAttempts: 1000,
		Backoff:     faults.Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		Injector:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Call("recv", []byte("doomed"))
	if err == nil {
		t.Fatal("call under permanent fault returned nil error")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v (%T), want *DeadlineError", err, err)
	}
	if de.Attempts >= 1000 {
		t.Fatalf("DeadlineError.Attempts = %d, want far fewer than MaxAttempts", de.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call consumed %v, want about the 100 ms budget", elapsed)
	}
}

// TestDeadlineCoversReconnects drops the connection on every attempt, so
// each retry pays a reconnect: the budget must bound the whole
// dial-call-drop cycle, not just the in-flight calls.
func TestDeadlineCoversReconnects(t *testing.T) {
	addr := startEchoServer(t)
	inj := faults.New(1, faults.Rule{Operation: "call", Action: faults.Drop})
	c, err := DialMuxOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{
		CallTimeout: 100 * time.Millisecond,
		MaxAttempts: 1000,
		Backoff:     faults.Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond},
		Injector:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if _, err := c.Call("recv", []byte("doomed")); !IsDeadline(err) {
		t.Fatalf("err = %v, want deadline expiry", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("reconnect loop consumed %v, want about the 100 ms budget", elapsed)
	}
}

// TestDeadlineErrorMessage pins the rendered form other layers grep for.
func TestDeadlineErrorMessage(t *testing.T) {
	de := &DeadlineError{Method: "heartbeat", Attempts: 4, Elapsed: 120 * time.Millisecond, Cause: errors.New("boom")}
	msg := de.Error()
	for _, want := range []string{"heartbeat", "timed out", "4 attempts", "boom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("DeadlineError message %q missing %q", msg, want)
		}
	}
}
