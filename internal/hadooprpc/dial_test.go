package hadooprpc

import "net"

// rawDial is a test helper giving access to a raw connection.
func rawDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
