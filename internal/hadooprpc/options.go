package hadooprpc

import (
	"errors"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/metrics"
)

// Options configures a client's fault-tolerance behaviour: connect and
// per-call deadlines, a bounded retry budget with exponential backoff and
// jitter, and an optional fault injector for chaos testing. The zero value
// gives sane production defaults with retries disabled, preserving the
// fail-fast semantics the benchmarks rely on.
type Options struct {
	// DialTimeout bounds the TCP connect (default 10 s; negative
	// disables). Without it a dead address blocks on OS defaults —
	// minutes on most systems.
	DialTimeout time.Duration
	// CallTimeout bounds one call round trip (default 30 s; negative
	// disables). A timed-out call abandons the connection: responses on
	// it can no longer be trusted to arrive.
	CallTimeout time.Duration
	// MaxAttempts is the total tries per Call, counting the first
	// (default 1 — no retries). Transport-level failures are retried
	// after reconnecting; remote handler errors are never retried.
	MaxAttempts int
	// Backoff shapes the delay between retries.
	Backoff faults.Backoff
	// Seed drives retry jitter, keeping schedules reproducible.
	Seed int64
	// Injector, when set, receives injection points: "dial" and "call"
	// operations on Component, plus "read"/"write" through the wrapped
	// connection.
	Injector *faults.Injector
	// Component names this client to the injector (default
	// "hadooprpc.client").
	Component string
	// Metrics, when set, receives per-call observability: "rpc.calls" and
	// "rpc.calls.<method>" counters, an "rpc.latency" timer over whole
	// Calls (retries included), "rpc.retries" and "rpc.errors" counters,
	// and "rpc.bytes_sent"/"rpc.bytes_recv" for framed wire bytes. A nil
	// registry records nothing.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 1
	}
	if o.Component == "" {
		o.Component = "hadooprpc.client"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// IsRemote reports whether err is a per-call error returned by the server's
// handler (the connection stays usable, and retrying cannot help).
func IsRemote(err error) bool { return errors.Is(err, errRemote) }

// retryable reports whether a failed call may succeed on a fresh attempt:
// transport failures and injected transient faults are; remote handler
// errors and component crashes are not.
func retryable(err error) bool {
	return err != nil && !errors.Is(err, errRemote) && !faults.IsCrash(err)
}
