package hadooprpc

import (
	"errors"
	"fmt"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/obs"
)

// Options configures a client's fault-tolerance behaviour: connect and
// per-call deadlines, a bounded retry budget with exponential backoff and
// jitter, and an optional fault injector for chaos testing. The zero value
// gives sane production defaults with retries disabled, preserving the
// fail-fast semantics the benchmarks rely on.
type Options struct {
	// DialTimeout bounds the TCP connect (default 10 s; negative
	// disables). Without it a dead address blocks on OS defaults —
	// minutes on most systems.
	DialTimeout time.Duration
	// CallTimeout bounds one whole Call — every attempt, reconnect and
	// backoff sleep included — at 30 s by default (negative disables).
	// It is a total budget, not a per-attempt one: a flapping peer that
	// keeps half-answering cannot stretch a single Call to MaxAttempts ×
	// CallTimeout. When the budget expires before an attempt succeeds,
	// the Call returns a *DeadlineError wrapping the last attempt's
	// failure. A timed-out attempt abandons its connection: responses on
	// it can no longer be trusted to arrive.
	CallTimeout time.Duration
	// MaxAttempts is the total tries per Call, counting the first
	// (default 1 — no retries). Transport-level failures are retried
	// after reconnecting; remote handler errors are never retried.
	MaxAttempts int
	// Backoff shapes the delay between retries.
	Backoff faults.Backoff
	// Seed drives retry jitter, keeping schedules reproducible.
	Seed int64
	// Injector, when set, receives injection points: "dial" and "call"
	// operations on Component, plus "read"/"write" through the wrapped
	// connection.
	Injector *faults.Injector
	// Component names this client to the injector (default
	// "hadooprpc.client").
	Component string
	// Metrics, when set, receives per-call observability: "rpc.calls" and
	// "rpc.calls.<method>" counters, an "rpc.latency" timer over whole
	// Calls (retries included), "rpc.retries" and "rpc.errors" counters,
	// and "rpc.bytes_sent"/"rpc.bytes_recv" for framed wire bytes. A nil
	// registry records nothing.
	Metrics *metrics.Registry
	// Events, when set, receives flight-recorder events for the
	// fault-tolerance edges: obs.EvRPCRetry on every retried attempt and
	// obs.EvRPCDeadline when a Call's total budget expires. A nil recorder
	// records nothing.
	Events *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 1
	}
	if o.Component == "" {
		o.Component = "hadooprpc.client"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// IsRemote reports whether err is a per-call error returned by the server's
// handler (the connection stays usable, and retrying cannot help).
func IsRemote(err error) bool { return errors.Is(err, errRemote) }

// DeadlineError reports that a Call's total time budget
// (Options.CallTimeout) expired across its attempts before one succeeded.
// It wraps the last attempt's failure, so errors.Is/As see through to the
// underlying cause (an injected fault, an i/o timeout, a refused dial).
type DeadlineError struct {
	// Method is the RPC method the call was for.
	Method string
	// Attempts is how many attempts ran before the budget expired.
	Attempts int
	// Elapsed is the wall time the whole Call consumed.
	Elapsed time.Duration
	// Cause is the last attempt's failure.
	Cause error
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("hadooprpc: call %s timed out after %v (%d attempts): %v",
		e.Method, e.Elapsed.Round(time.Millisecond), e.Attempts, e.Cause)
}

// Unwrap exposes the last attempt's cause.
func (e *DeadlineError) Unwrap() error { return e.Cause }

// IsDeadline reports whether err is a total-budget expiry (*DeadlineError).
func IsDeadline(err error) bool {
	var de *DeadlineError
	return errors.As(err, &de)
}

// retryable reports whether a failed call may succeed on a fresh attempt:
// transport failures and injected transient faults are; remote handler
// errors and component crashes are not.
func retryable(err error) bool {
	return err != nil && !errors.Is(err, errRemote) && !faults.IsCrash(err)
}
