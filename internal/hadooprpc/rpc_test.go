package hadooprpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// startEchoServer returns a running server with the echo protocol and its
// address; cleanup is registered on t.
func startEchoServer(t *testing.T) string {
	t.Helper()
	s := NewServer()
	s.Register(NewEchoProtocol())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr
}

func dialEcho(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, EchoProtocolName, EchoProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEchoRoundTrip(t *testing.T) {
	addr := startEchoServer(t)
	c := dialEcho(t, addr)
	for _, size := range []int{0, 1, 16, 1024, 64 * 1024, 1 << 20} {
		payload := bytes.Repeat([]byte{0x5A}, size)
		got, err := c.Call("recv", payload)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: echo corrupted (%d bytes back)", size, len(got))
		}
	}
}

func TestManySequentialCalls(t *testing.T) {
	addr := startEchoServer(t)
	c := dialEcho(t, addr)
	for i := 0; i < 200; i++ {
		payload := []byte(fmt.Sprintf("call-%d", i))
		got, err := c.Call("recv", payload)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("call %d corrupted: %q", i, got)
		}
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	addr := startEchoServer(t)
	if _, err := Dial(addr, EchoProtocolName, 999); err == nil {
		t.Fatal("handshake with wrong version succeeded")
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	addr := startEchoServer(t)
	if _, err := Dial(addr, "no.such.Protocol", 1); err == nil {
		t.Fatal("handshake with unknown protocol succeeded")
	}
}

func TestUnknownMethodError(t *testing.T) {
	addr := startEchoServer(t)
	c := dialEcho(t, addr)
	if _, err := c.Call("nope"); err == nil {
		t.Fatal("unknown method succeeded")
	} else if !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The connection survives a method error.
	if _, err := c.Call("recv", []byte("still alive")); err != nil {
		t.Fatalf("connection died after method error: %v", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	s := NewServer()
	sentinel := errors.New("deliberate failure")
	s.Register(&Protocol{
		Name:    "p",
		Version: 1,
		Methods: map[string]Handler{
			"fail": func([][]byte) ([]byte, error) { return nil, sentinel },
		},
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr, "p", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("fail"); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("handler error lost: %v", err)
	}
}

func TestMultipleParams(t *testing.T) {
	s := NewServer()
	s.Register(&Protocol{
		Name:    "concat",
		Version: 2,
		Methods: map[string]Handler{
			"join": func(params [][]byte) ([]byte, error) {
				var out []byte
				for _, p := range params {
					out = append(out, p...)
				}
				return out, nil
			},
		},
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr, "concat", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("join", []byte("a"), []byte("bb"), []byte("ccc"))
	if err != nil || string(got) != "abbccc" {
		t.Fatalf("join = %q, %v", got, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startEchoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr, EchoProtocolName, EchoProtocolVersion)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				payload := []byte(fmt.Sprintf("%d-%d", id, j))
				got, err := c.Call("recv", payload)
				if err != nil || !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("client %d call %d: %q %v", id, j, got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCallOnClosedClient(t *testing.T) {
	addr := startEchoServer(t)
	c := dialEcho(t, addr)
	c.Close()
	if _, err := c.Call("recv", []byte("x")); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := NewServer()
	s.Register(NewEchoProtocol())
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	s := NewServer()
	s.Register(NewEchoProtocol())
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	s.Register(NewEchoProtocol())
}

func TestEncodeCallFrameOverhead(t *testing.T) {
	// The serialized call must carry the protocol name, method, type tag
	// and the payload — the copy amplification the paper attributes RPC
	// slowness to. Verify framing size accounting.
	payload := bytes.Repeat([]byte{1}, 1000)
	frame, err := encodeCall(7, EchoProtocolName, "recv", [][]byte{payload}, nil)
	if err != nil {
		t.Fatal(err)
	}
	overhead := len(frame) - len(payload)
	wantMin := 8 + /* id+len */ 2 + len(EchoProtocolName) + 2 + len("recv") + 4 + 2 + len(paramTypeName) + 4
	if overhead != wantMin {
		t.Errorf("frame overhead = %d, want %d", overhead, wantMin)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	s := NewServer()
	s.Register(NewEchoProtocol())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Speak garbage; server should just drop us, and a follow-up good
	// client must still work.
	conn, err := netDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.0\r\n\r\n"))
	conn.Close()

	c := dialEcho(t, addr)
	if _, err := c.Call("recv", []byte("ok")); err != nil {
		t.Fatalf("server wedged by bad header: %v", err)
	}
}

// netDial avoids importing net at every call site above.
func netDial(addr string) (interface {
	Write([]byte) (int, error)
	Close() error
}, error) {
	return rawDial(addr)
}

func TestMuxClientConcurrentCalls(t *testing.T) {
	addr := startEchoServer(t)
	c, err := DialMux(addr, EchoProtocolName, EchoProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				payload := []byte(fmt.Sprintf("goroutine-%d-call-%d", g, i))
				got, err := c.Call("recv", payload)
				if err != nil || !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("g%d i%d: %q %v", g, i, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMuxClientRemoteErrorDoesNotKillConnection(t *testing.T) {
	addr := startEchoServer(t)
	c, err := DialMux(addr, EchoProtocolName, EchoProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("nope"); err == nil {
		t.Fatal("unknown method succeeded")
	}
	got, err := c.Call("recv", []byte("alive"))
	if err != nil || string(got) != "alive" {
		t.Fatalf("connection dead after remote error: %q %v", got, err)
	}
}

func TestMuxClientHandshakeRejectsWrongVersion(t *testing.T) {
	addr := startEchoServer(t)
	if _, err := DialMux(addr, EchoProtocolName, 404); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestMuxClientFailsPendingOnServerClose(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Register(&Protocol{
		Name:    "slow",
		Version: 1,
		Methods: map[string]Handler{
			"wait": func([][]byte) ([]byte, error) {
				<-block
				return nil, nil
			},
		},
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialMux(addr, "slow", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call("wait")
		done <- err
	}()
	// Give the call time to reach the server, then kill the server.
	time.Sleep(50 * time.Millisecond)
	close(block)
	s.Close()
	select {
	case err := <-done:
		_ = err // nil (response raced shutdown) or transport error: both fine
	case <-time.After(5 * time.Second):
		t.Fatal("pending call never completed after server close")
	}
	// Subsequent calls must fail fast rather than hang.
	errc := make(chan error, 1)
	go func() {
		_, err := c.Call("wait")
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("call on dead connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call on dead connection hung")
	}
}

func TestMuxClientCloseIdempotent(t *testing.T) {
	addr := startEchoServer(t)
	c, err := DialMux(addr, EchoProtocolName, EchoProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("recv", []byte("x")); err == nil {
		t.Fatal("call after close succeeded")
	}
}
