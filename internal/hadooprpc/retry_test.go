package hadooprpc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
)

// startSlowServer serves a "wait" method that blocks until the returned
// channel is closed, plus an "echo" passthrough.
func startSlowServer(t *testing.T) (string, chan struct{}) {
	t.Helper()
	block := make(chan struct{})
	s := NewServer()
	s.Register(&Protocol{
		Name:    "slow",
		Version: 1,
		Methods: map[string]Handler{
			"wait": func([][]byte) ([]byte, error) {
				<-block
				return []byte("late"), nil
			},
			"echo": func(p [][]byte) ([]byte, error) { return p[0], nil },
		},
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr, block
}

func TestMuxClientCallTimeout(t *testing.T) {
	addr, block := startSlowServer(t)
	defer close(block)
	c, err := DialMuxOptions(addr, "slow", 1, Options{CallTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Call("wait"); err == nil {
		t.Fatal("blocked call returned without error")
	} else if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v", d)
	}
	// The abandoned connection is replaced transparently on the next call
	// when retries are off but the client is not closed.
	if _, err := c.Call("echo", []byte("back")); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
}

func TestClientCallTimeout(t *testing.T) {
	addr, block := startSlowServer(t)
	defer close(block)
	c, err := DialOptions(addr, "slow", 1, Options{CallTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("wait"); err == nil {
		t.Fatal("blocked call returned without error")
	}
	if _, err := c.Call("echo", []byte("back")); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
}

func TestMuxClientRetriesTransientInjectedFaults(t *testing.T) {
	addr := startEchoServer(t)
	inj := faults.New(1, faults.Rule{Operation: "call", Until: 2, Action: faults.Fail})
	c, err := DialMuxOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{
		MaxAttempts: 5,
		Backoff:     faults.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Injector:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("recv", []byte("through the storm"))
	if err != nil || string(got) != "through the storm" {
		t.Fatalf("call = %q, %v", got, err)
	}
	if n := inj.Count("hadooprpc.client", "call"); n != 3 {
		t.Fatalf("attempts = %d, want 3 (2 injected failures + 1 success)", n)
	}
}

func TestMuxClientReconnectsAfterDroppedConnection(t *testing.T) {
	addr := startEchoServer(t)
	inj := faults.New(1, faults.Rule{Operation: "call", After: 1, Until: 2, Action: faults.Drop})
	c, err := DialMuxOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{
		MaxAttempts: 4,
		Backoff:     faults.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Injector:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, err := c.Call("recv", []byte("one")); err != nil || string(got) != "one" {
		t.Fatalf("first call: %q, %v", got, err)
	}
	// Second call's connection is torn down mid-flight; the retry must
	// transparently reconnect and succeed.
	if got, err := c.Call("recv", []byte("two")); err != nil || string(got) != "two" {
		t.Fatalf("post-drop call: %q, %v", got, err)
	}
}

func TestMuxClientRetryBudgetExhausted(t *testing.T) {
	addr := startEchoServer(t)
	inj := faults.New(1, faults.Rule{Operation: "call", Action: faults.Fail})
	c, err := DialMuxOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{
		MaxAttempts: 3,
		Backoff:     faults.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Injector:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("recv", []byte("doomed")); !faults.IsInjected(err) {
		t.Fatalf("err = %v, want injected", err)
	}
	if n := inj.Count("hadooprpc.client", "call"); n != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts = 3", n)
	}
}

func TestMuxClientRemoteErrorsNotRetried(t *testing.T) {
	addr := startEchoServer(t)
	// The injector has no rules; it only counts "call" attempts.
	inj := faults.New(1)
	c, err := DialMuxOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{
		MaxAttempts: 5,
		Injector:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, callErr := c.Call("no-such-method")
	if callErr == nil || !IsRemote(callErr) {
		t.Fatalf("err = %v, want remote", callErr)
	}
	if n := inj.Count("hadooprpc.client", "call"); n != 1 {
		t.Fatalf("remote error retried: %d attempts", n)
	}
}

func TestClientReconnectsWithRetries(t *testing.T) {
	addr := startEchoServer(t)
	inj := faults.New(1, faults.Rule{Operation: "call", After: 1, Until: 2, Action: faults.Drop})
	c, err := DialOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{
		MaxAttempts: 4,
		Backoff:     faults.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Injector:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, err := c.Call("recv", []byte("a")); err != nil || string(got) != "a" {
		t.Fatalf("first call: %q, %v", got, err)
	}
	if got, err := c.Call("recv", []byte("b")); err != nil || string(got) != "b" {
		t.Fatalf("post-drop call: %q, %v", got, err)
	}
}

func TestDialInjectedFaultSurfaces(t *testing.T) {
	addr := startEchoServer(t)
	inj := faults.New(1, faults.Rule{Operation: "dial", Action: faults.Fail})
	if _, err := DialMuxOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{Injector: inj}); !faults.IsInjected(err) {
		t.Fatalf("DialMux err = %v, want injected", err)
	}
	if _, err := DialOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{Injector: inj}); !faults.IsInjected(err) {
		t.Fatalf("Dial err = %v, want injected", err)
	}
}

func TestCrashedComponentNotRetried(t *testing.T) {
	addr := startEchoServer(t)
	inj := faults.New(1, faults.Rule{Operation: "call", After: 1, Action: faults.Crash})
	c, err := DialMuxOptions(addr, EchoProtocolName, EchoProtocolVersion, Options{
		MaxAttempts: 10,
		Injector:    inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("recv", []byte("ok")); err != nil {
		t.Fatalf("pre-crash call: %v", err)
	}
	if _, err := c.Call("recv", []byte("dead")); !faults.IsCrash(err) {
		t.Fatalf("err = %v, want crash", err)
	}
	// Crash is permanent: only 2 "call" checks, no retry burn.
	if n := inj.Count("hadooprpc.client", "call"); n != 2 {
		t.Fatalf("crash retried: %d attempts", n)
	}
	if !errors.Is(inj.Check("hadooprpc.client", "call", ""), faults.ErrCrashed) {
		t.Fatal("component not poisoned")
	}
}
