// Package bufpool is the shared size-classed byte-buffer pool behind every
// hot data path in the repository: MPI-D spill realignment (internal/core),
// the pipelined shuffle/merge engine (internal/shuffle), the jetty shuffle
// wire (internal/jetty) and the TCP MPI transport's frame reader
// (internal/mpi).
//
// It grew out of internal/shuffle's BufferPool (PR 4), promoted to its own
// package once the MPI-D fast path needed the same recycling on both sides
// of the exchange: a spill serializes realigned partitions into pooled
// buffers, the transport reads frames into pooled buffers, and the
// receive-side merge returns consumed run buffers to the pool — so a
// steady-state WordCount stops allocating per spill, per frame and per
// merge pass.
//
// Buffers are grouped into power-of-two size classes so a Get never reuses
// a buffer more than 2x larger than requested (which would strand memory),
// and a slightly larger request later still hits the pool. Each class is a
// sync.Pool, so idle buffers are released under GC pressure rather than
// pinned forever. Hit/miss counts are kept with atomics and exported via
// Stats for the mpid.pool.* metrics.
//
// A nil *Pool is valid everywhere and simply allocates, matching the
// nil-registry contract of internal/metrics and internal/faults.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Size-class bounds. Requests below minClassBytes share the smallest class
// (a 4 KiB buffer is cheap enough that finer classes just fragment the
// pool); requests above maxClassBytes are allocated exactly and recycled
// into the largest class only if they fit it.
const (
	minClassShift = 12 // 4 KiB
	maxClassShift = 24 // 16 MiB
	numClasses    = maxClassShift - minClassShift + 1
)

// Pool recycles byte buffers across spills, fetches, frame reads and merge
// passes. Methods are safe for concurrent use. The zero value is ready.
type Pool struct {
	classes [numClasses]sync.Pool
	// hdrs recycles the *[]byte boxes the class pools store. Without it
	// every Put heap-allocates a fresh slice header to take the address of,
	// which was the last per-message allocation on the transport fast
	// paths (one Put per consumed frame). A header checked out of hdrs is
	// owned exclusively until it is filed back, so the box cycle is
	// race-free and steady-state Get/Put allocates nothing.
	hdrs sync.Pool
	gets atomic.Int64
	hits atomic.Int64
	puts atomic.Int64
}

// Stats is a snapshot of a pool's traffic: Gets counts Get calls, Hits the
// Gets served from a recycled buffer, Puts the buffers returned.
type Stats struct {
	Gets int64
	Hits int64
	Puts int64
}

// New creates an empty pool.
func New() *Pool { return &Pool{} }

// classFor returns the smallest size class holding n bytes, or -1 when n
// exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassShift {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassShift
	if c >= numClasses {
		return -1
	}
	return c
}

// Get returns a length-n buffer, reusing a pooled one when its size class
// has a free buffer. Use b[:0] to append.
func (p *Pool) Get(n int) []byte {
	if p == nil {
		return make([]byte, n)
	}
	p.gets.Add(1)
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := p.classes[c].Get(); v != nil {
		// Native buffers (capacity exactly the class size) are stored as a
		// raw array pointer — pointer-shaped, so the interface carries it
		// without boxing — and the slice is rebuilt here from the known
		// class capacity. Foreign capacities ride in recycled *[]byte boxes.
		if ptr, ok := v.(unsafe.Pointer); ok {
			p.hits.Add(1)
			return unsafe.Slice((*byte)(ptr), 1<<(minClassShift+c))[:n]
		}
		h := v.(*[]byte)
		b := *h
		*h = nil
		p.hdrs.Put(h)
		if cap(b) >= n {
			p.hits.Add(1)
			return b[:n]
		}
	}
	return make([]byte, n, 1<<(minClassShift+c))
}

// Put returns a buffer to its size class. The caller must not use b
// afterwards. Buffers larger than the largest class are dropped.
func (p *Pool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	c := classFor(cap(b))
	if c < 0 {
		return
	}
	// A buffer is filed under the largest class it fully covers, so a Get
	// of that class never receives a too-small buffer.
	if cap(b) < 1<<(minClassShift+c) && c > 0 {
		c--
	}
	p.puts.Add(1)
	if cap(b) == 1<<(minClassShift+c) {
		// Native buffer: file the bare array pointer (see Get).
		p.classes[c].Put(unsafe.Pointer(unsafe.SliceData(b[:1])))
		return
	}
	h, _ := p.hdrs.Get().(*[]byte)
	if h == nil {
		h = new([]byte)
	}
	*h = b[:0]
	p.classes[c].Put(h)
}

// Stats returns the pool's traffic counters.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{Gets: p.gets.Load(), Hits: p.hits.Load(), Puts: p.puts.Load()}
}
