package bufpool

import (
	"sync"
	"testing"
)

func TestNilPoolAllocates(t *testing.T) {
	var p *Pool
	b := p.Get(100)
	if len(b) != 100 {
		t.Fatalf("nil pool Get(100) = len %d", len(b))
	}
	p.Put(b) // must not panic
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("nil pool stats = %+v", s)
	}
}

func TestGetLengthAndReuse(t *testing.T) {
	p := New()
	b := p.Get(1000)
	if len(b) != 1000 {
		t.Fatalf("Get(1000) = len %d", len(b))
	}
	if cap(b) != 4<<10 {
		t.Fatalf("Get(1000) cap = %d, want smallest class %d", cap(b), 4<<10)
	}
	// Under the race detector sync.Pool intentionally drops a fraction of
	// Puts, so a single Put→Get round is not guaranteed to hit. Cycle
	// until one sticks; one round is all it takes in a normal build.
	hit := false
	for i := 0; i < 64 && !hit; i++ {
		p.Put(b)
		b2 := p.Get(2000)
		if len(b2) != 2000 {
			t.Fatalf("Get(2000) = len %d", len(b2))
		}
		before := p.Stats().Hits
		b = b2
		hit = before > 0
	}
	s := p.Stats()
	if !hit || s.Puts == 0 || s.Gets < 2 {
		t.Fatalf("stats = %+v, want at least one hit and one put", s)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {4 << 10, 0}, {4<<10 + 1, 1}, {8 << 10, 1},
		{64 << 10, 4}, {1 << 20, 8}, {16 << 20, 12}, {16<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	p := New()
	b := p.Get(32 << 20)
	if len(b) != 32<<20 {
		t.Fatalf("oversize Get = len %d", len(b))
	}
	p.Put(b) // dropped, not filed
	if s := p.Stats(); s.Puts != 0 {
		t.Fatalf("oversize Put was filed: %+v", s)
	}
}

func TestPutSubClassCapacityNeverServedShort(t *testing.T) {
	// A buffer whose capacity is inside a class but below the class size
	// must be filed one class down, so a Get of the larger class cannot
	// receive an undersized buffer.
	p := New()
	b := make([]byte, 0, 6<<10) // between the 4K and 8K classes
	p.Put(b)
	got := p.Get(8 << 10)
	if len(got) != 8<<10 {
		t.Fatalf("Get(8K) = len %d", len(got))
	}
	if cap(got) < 8<<10 {
		t.Fatalf("Get(8K) got undersized cap %d from pool", cap(got))
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := p.Get(1 << uint(10+i%8))
				for j := range b {
					b[j] = byte(j)
				}
				p.Put(b)
			}
		}()
	}
	wg.Wait()
	if s := p.Stats(); s.Gets != 4000 || s.Puts != 4000 {
		t.Fatalf("stats = %+v, want 4000 gets/puts", s)
	}
}

// TestGetPutCycleAllocFree pins the property the transport fast paths
// depend on: once warm, recycling a buffer through the pool allocates
// nothing — neither for the buffer nor for the *[]byte box the class
// pools store (headers are recycled through an internal pool).
func TestGetPutCycleAllocFree(t *testing.T) {
	p := New()
	for i := 0; i < 100; i++ {
		p.Put(p.Get(1024))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p.Put(p.Get(1024))
	})
	if allocs > 0 {
		t.Fatalf("warm Get/Put cycle allocates %.2f/op, want 0", allocs)
	}
}
