package mpidsim

import (
	"testing"

	"github.com/ict-repro/mpid/internal/hadoopsim"
	"github.com/ict-repro/mpid/internal/netmodel"
)

func TestWordCountConsistency(t *testing.T) {
	r := Run(WordCount(1 * netmodel.GB))
	if len(r.Mappers) != 49 {
		t.Fatalf("mappers = %d, want 49", len(r.Mappers))
	}
	if r.JobTime <= 0 || r.MapEnd <= 0 || r.MapEnd > r.JobTime {
		t.Fatalf("JobTime=%v MapEnd=%v", r.JobTime, r.MapEnd)
	}
	var read int64
	for _, m := range r.Mappers {
		if m.End <= m.Start {
			t.Fatalf("mapper %d non-positive duration", m.Rank)
		}
		read += m.BytesRead
	}
	if read != 1*netmodel.GB {
		t.Fatalf("mappers read %d bytes, want %d", read, 1*netmodel.GB)
	}
	if r.BytesShuffle <= 0 || r.BytesShuffle >= 1*netmodel.GB {
		t.Fatalf("BytesShuffle = %d, want in (0, input)", r.BytesShuffle)
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(WordCount(1 * netmodel.GB))
	b := Run(WordCount(1 * netmodel.GB))
	if a.JobTime != b.JobTime {
		t.Fatalf("nondeterministic: %v vs %v", a.JobTime, b.JobTime)
	}
}

func TestScalesWithInput(t *testing.T) {
	t1 := Run(WordCount(1 * netmodel.GB)).JobTime.Seconds()
	t4 := Run(WordCount(4 * netmodel.GB)).JobTime.Seconds()
	if t4 <= t1 {
		t.Fatalf("T(4GB)=%g <= T(1GB)=%g", t4, t1)
	}
	// Pre-spawned processes: far less fixed overhead than Hadoop, so
	// scaling should be closer to linear than Hadoop's.
	if t4 > 6*t1 {
		t.Fatalf("superlinear scaling: %g vs %g", t4, t1)
	}
}

func TestFasterThanHadoopAtAllScales(t *testing.T) {
	// Figure 6's headline: the MPI-D simulation beats Hadoop, dramatically
	// at 1 GB (paper: 8%) and moderately at larger scale (48-56%).
	for _, gb := range []int64{1, 4, 10} {
		h := hadoopsim.Run(hadoopsim.WordCount(gb * netmodel.GB)).JobTime.Seconds()
		m := Run(WordCount(gb * netmodel.GB)).JobTime.Seconds()
		if m >= h {
			t.Errorf("%dGB: MPI-D (%gs) not faster than Hadoop (%gs)", gb, m, h)
		}
	}
}

func TestSpeedupRatioGrowsWithScale(t *testing.T) {
	// Paper: ratio MPI-D/Hadoop rises 8% -> 48% -> 56% from 1 to 100 GB
	// (the advantage is largest on small jobs, where Hadoop's fixed
	// overheads dominate).
	ratio := func(gb int64) float64 {
		h := hadoopsim.Run(hadoopsim.WordCount(gb * netmodel.GB)).JobTime.Seconds()
		m := Run(WordCount(gb * netmodel.GB)).JobTime.Seconds()
		return m / h
	}
	r1, r10 := ratio(1), ratio(10)
	if r1 >= r10 {
		t.Fatalf("ratio did not grow with scale: %g (1GB) vs %g (10GB)", r1, r10)
	}
	if r1 > 0.5 {
		t.Errorf("1GB ratio = %g, want well under 0.5 (paper: 0.08)", r1)
	}
	if r10 < 0.2 || r10 > 0.9 {
		t.Errorf("10GB ratio = %g, want in [0.2,0.9] (paper: 0.48)", r10)
	}
}

func TestAsyncOverlapNotSlower(t *testing.T) {
	sync := WordCount(4 * netmodel.GB)
	async := WordCount(4 * netmodel.GB)
	async.Async = true
	ts := Run(sync).JobTime
	ta := Run(async).JobTime
	if ta > ts {
		t.Fatalf("async (%v) slower than sync (%v)", ta, ts)
	}
}

func TestMultipleReducersRelieveBottleneck(t *testing.T) {
	one := WordCount(8 * netmodel.GB)
	seven := WordCount(8 * netmodel.GB)
	seven.NumReducers = 7
	t1 := Run(one).JobTime
	t7 := Run(seven).JobTime
	if t7 > t1 {
		t.Fatalf("7 reducers (%v) slower than 1 (%v)", t7, t1)
	}
}

func TestInvalidInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero input")
		}
	}()
	Run(Params{})
}

func TestUnevenShareDistribution(t *testing.T) {
	// Input not divisible by mapper count: every byte still processed.
	p := WordCount(netmodel.GB + 17)
	r := Run(p)
	var read int64
	for _, m := range r.Mappers {
		read += m.BytesRead
	}
	if read != netmodel.GB+17 {
		t.Fatalf("read %d, want %d", read, netmodel.GB+17)
	}
}

func TestPipelinedReducerNotSlower(t *testing.T) {
	p := WordCount(1 << 30)
	sync := Run(p).JobTime
	p.Pipelined = true
	pipe := Run(p).JobTime
	if pipe > sync {
		t.Fatalf("pipelined reducer slower: %v > %v", pipe, sync)
	}
}

func TestCodedReplicationTradesComputeForBytes(t *testing.T) {
	base := Run(WordCount(4 * netmodel.GB))
	p := WordCount(4 * netmodel.GB)
	p.CodedReplication = 2
	coded := Run(p)
	// Shipped bytes halve: each multicast serves r destinations.
	if got, want := coded.BytesShuffle, base.BytesShuffle/2; got > want+int64(len(coded.Mappers)) {
		t.Fatalf("r=2 shipped %d bytes, want ~%d (half of %d)", got, want, base.BytesShuffle)
	}
	if coded.BytesShuffle >= base.BytesShuffle {
		t.Fatalf("r=2 did not reduce shipped bytes: %d >= %d", coded.BytesShuffle, base.BytesShuffle)
	}
	// Redundant compute is paid: every mapper reads its share twice.
	var baseRead, codedRead int64
	for _, m := range base.Mappers {
		baseRead += m.BytesRead
	}
	for _, m := range coded.Mappers {
		codedRead += m.BytesRead
	}
	if codedRead != 2*baseRead {
		t.Fatalf("r=2 read %d bytes, want 2x %d", codedRead, baseRead)
	}
	// WordCount is map-CPU-bound on the paper's cluster, so doubling map
	// work costs wall time even as the shuffle shrinks — the tradeoff the
	// coded extension reports honestly.
	if coded.JobTime <= 0 {
		t.Fatal("non-positive job time")
	}
}
