// Package mpidsim simulates the paper's §IV MPI-D system — the simulation
// counterpart of the real library in internal/core — at cluster scale, for
// the Figure 6 comparison against Hadoop.
//
// The modelled differences against hadoopsim are exactly the paper's design
// points:
//
//   - processes are pre-spawned by mpiexec once (one Init cost), so there
//     is no per-task JVM start, no heartbeat scheduling wait and no task
//     waves: "the mapper processes will scan input data records
//     continuously";
//   - input is distributed across nodes and read locally, as the paper
//     arranges ("we distribute all input data across all nodes to
//     guarantee the data accessing locally as in Hadoop");
//   - the map side buffers pairs in a hash table, combines locally, spills
//     realigned contiguous partitions and ships them with plain MPI sends;
//     with Async on, sends overlap the next chunk's compute;
//   - reducers receive with wildcard MPI_Recv; their inbound NIC is the
//     natural large-scale bottleneck when few reducers serve many mappers
//     (the paper runs 49 mappers against a single reducer).
package mpidsim

import (
	"fmt"

	"github.com/ict-repro/mpid/internal/cluster"
	"github.com/ict-repro/mpid/internal/des"
	"github.com/ict-repro/mpid/internal/netmodel"
)

// Params configures one simulated MPI-D job.
type Params struct {
	// Cluster is the hardware model; Default() matches the paper.
	Cluster cluster.Config
	// InputBytes is the job input size, spread evenly over the mappers.
	InputBytes int64
	// NumMappers is the mapper process count (the paper uses 49 over 7
	// worker nodes); NumReducers the reducer count (the paper uses 1).
	NumMappers, NumReducers int
	// MapCPUBytesPerSec is per-core map throughput including the MPI-D
	// library work (hashing, combining, realignment).
	MapCPUBytesPerSec float64
	// ReduceCPUBytesPerSec is per-core reduce/merge throughput.
	ReduceCPUBytesPerSec float64
	// CombinedSelectivity is intermediate bytes per input byte after the
	// local combiner.
	CombinedSelectivity float64
	// SpillBuffer is the input bytes consumed per spill round (the hash
	// table threshold translated to input terms).
	SpillBuffer int64
	// InitTime is the one-time mpiexec launch + MPI_D_Init cost.
	InitTime des.Time
	// Async overlaps a spill's sends with the next chunk's compute
	// (MPI_Isend adoption, §IV.A future work). The paper's prototype is
	// synchronous; the ablation bench flips this.
	Async bool
	// CodedReplication models the coded-shuffle prototype (internal/coded)
	// at cluster scale: every split is mapped by r nodes, so each mapper
	// pays r× the input read and map CPU, and every coded multicast
	// serves r destinations per transmission, so the bytes a mapper ships
	// divide by r. The reducers merge the same logical intermediate data
	// either way. 0 or 1 means plain (uncoded) shuffle.
	CodedReplication int
	// Pipelined overlaps the reducer's merge with the map phase: each
	// mapper's share of the intermediate data is merged as that mapper
	// completes, instead of waiting for every mapper before touching any
	// data — the simulation mirror of the live engine's pipelined shuffle
	// (internal/shuffle), where background merge passes run while copies
	// are in flight. Only the final merge tail remains after the last
	// mapper finishes.
	Pipelined bool
}

// withDefaults fills zero fields.
func (p Params) withDefaults() Params {
	if p.Cluster.Nodes == 0 {
		p.Cluster = cluster.Default()
	}
	if p.NumMappers == 0 {
		p.NumMappers = 49
	}
	if p.NumReducers == 0 {
		p.NumReducers = 1
	}
	if p.MapCPUBytesPerSec == 0 {
		p.MapCPUBytesPerSec = 3.5e6
	}
	if p.ReduceCPUBytesPerSec == 0 {
		p.ReduceCPUBytesPerSec = 30e6
	}
	if p.CombinedSelectivity == 0 {
		p.CombinedSelectivity = 0.05
	}
	if p.SpillBuffer == 0 {
		p.SpillBuffer = 100 * netmodel.MB
	}
	if p.InitTime == 0 {
		p.InitTime = des.FromSeconds(0.4)
	}
	return p
}

// WordCount returns the §IV.C MPI-D WordCount configuration: 49 mapper
// processes and 1 reducer process over 7 worker nodes, plus the rank-0
// master. Map throughput is higher than Hadoop's because the MPI-D runner
// has no per-record Writable object churn and no spill-sort machinery, but
// it still pays the library's hash/combine/realign work.
func WordCount(inputBytes int64) Params {
	return Params{
		InputBytes:           inputBytes,
		NumMappers:           49,
		NumReducers:          1,
		MapCPUBytesPerSec:    3.5e6,
		ReduceCPUBytesPerSec: 20e6,
		CombinedSelectivity:  0.05,
	}.withDefaults()
}

// ProcStat records one process's activity.
type ProcStat struct {
	Rank       int
	Node       int
	Start, End des.Time
	BytesRead  int64
	BytesSent  int64
}

// Report is the outcome of one simulated MPI-D job.
type Report struct {
	Params       Params
	JobTime      des.Time
	MapEnd       des.Time
	Mappers      []ProcStat
	BytesShuffle int64
}

// Run simulates the job and returns the report.
func Run(p Params) *Report {
	p = p.withDefaults()
	if p.InputBytes <= 0 {
		panic(fmt.Sprintf("mpidsim: InputBytes must be positive, got %d", p.InputBytes))
	}
	rep := int64(p.CodedReplication)
	if rep < 1 {
		rep = 1
	}
	eng := des.New()
	cl := cluster.New(eng, p.Cluster)
	workers := cl.Nodes[1:] // rank 0's node is the master, as in the paper

	report := &Report{Params: p, Mappers: make([]ProcStat, 0, p.NumMappers)}

	// Reducers are placed round-robin from the last worker backwards so a
	// single reducer does not share its node's NIC with mapper locality
	// hot spots more than necessary.
	reducerNode := func(r int) *cluster.Node {
		return workers[(len(workers)-1-r%len(workers)+len(workers))%len(workers)]
	}

	share := p.InputBytes / int64(p.NumMappers)
	extra := p.InputBytes % int64(p.NumMappers)

	// Per-reducer completion latches: reducers finish when every mapper
	// signalled completion and all inbound bytes arrived (transfers hold
	// the reducer NIC, so arrival time is modelled by the Transfer calls).
	mapperDone := make([]*des.Done, p.NumMappers)
	for i := range mapperDone {
		mapperDone[i] = des.NewDone(eng)
	}

	var mapEnd des.Time
	var shuffleTotal int64

	for m := 0; m < p.NumMappers; m++ {
		m := m
		node := workers[m%len(workers)]
		myShare := share
		if int64(m) < extra {
			myShare++
		}
		eng.Go(fmt.Sprintf("mapper-%d", m), func(pr *des.Proc) {
			pr.Sleep(p.InitTime)
			stat := ProcStat{Rank: m + 1, Node: node.ID, Start: pr.Now()}
			var pendingOut, pendingIn *des.Done
			remaining := myShare
			for remaining > 0 {
				chunk := p.SpillBuffer
				if chunk > remaining {
					chunk = remaining
				}
				remaining -= chunk
				// Coded replication: the same input range is read and
				// mapped on r nodes, so each mapper's share costs r× in
				// read and CPU...
				node.ReadStream(pr, chunk*rep)
				node.Compute(pr, chunk*rep, p.MapCPUBytesPerSec)
				// ...and buys an r× reduction in shipped bytes: each
				// coded multicast crosses the sender's link once but
				// serves r destinations.
				out := int64(float64(chunk) * p.CombinedSelectivity / float64(rep))
				stat.BytesRead += chunk * rep
				stat.BytesSent += out
				// Realigned partitions ship to each reducer; even split.
				per := out / int64(p.NumReducers)
				if per < 1 && out > 0 {
					per = 1
				}
				for r := 0; r < p.NumReducers; r++ {
					dst := reducerNode(r)
					if dst == node || per == 0 {
						continue
					}
					if p.Async {
						// Overlap: wait for the previous spill's send,
						// then launch this one and keep computing.
						if pendingOut != nil {
							des.WaitAll(pr, pendingOut, pendingIn)
						}
						pendingOut, pendingIn = cl.TransferStart(node, dst, per)
					} else {
						cl.Transfer(pr, node, dst, per)
					}
				}
			}
			if pendingOut != nil {
				des.WaitAll(pr, pendingOut, pendingIn)
			}
			stat.End = pr.Now()
			if stat.End > mapEnd {
				mapEnd = stat.End
			}
			shuffleTotal += stat.BytesSent
			report.Mappers = append(report.Mappers, stat)
			mapperDone[m].Complete()
		})
	}

	// Reducer processes: merge + reduce their share of the intermediate
	// data. Synchronous reducers wait for every mapper before touching any
	// data; pipelined reducers consume each mapper's share as its
	// completion latch fires, so merge CPU overlaps the mapper tail and
	// only the last share is paid after MapEnd.
	totalIntermediate := int64(float64(p.InputBytes) * p.CombinedSelectivity)
	perReducer := totalIntermediate / int64(p.NumReducers)
	for r := 0; r < p.NumReducers; r++ {
		r := r
		node := reducerNode(r)
		eng.Go(fmt.Sprintf("reducer-%d", r), func(pr *des.Proc) {
			pr.Sleep(p.InitTime)
			if p.Pipelined {
				perMapper := perReducer / int64(p.NumMappers)
				rem := perReducer - perMapper*int64(p.NumMappers)
				for m := 0; m < p.NumMappers; m++ {
					des.WaitAll(pr, mapperDone[m])
					chunk := perMapper
					if m == 0 {
						chunk += rem
					}
					node.Compute(pr, chunk, p.ReduceCPUBytesPerSec)
				}
			} else {
				des.WaitAll(pr, mapperDone...)
				// Reverse realignment + merge + user reduce.
				node.Compute(pr, perReducer, p.ReduceCPUBytesPerSec)
			}
			node.WriteStream(pr, perReducer)
		})
	}

	eng.Run()
	report.JobTime = eng.Now()
	report.MapEnd = mapEnd
	report.BytesShuffle = shuffleTotal
	return report
}
