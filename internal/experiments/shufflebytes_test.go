package experiments

import (
	"testing"

	"github.com/ict-repro/mpid/internal/coded"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

// TestShuffleByteReductionThreeEngineEquality is the byte-reduction
// equality gate, run under -race in CI: for every combiner-bearing suite
// workload, each byte-reduction mode — the hadoop engine with NodeCombine
// on and off, the MPI-D core with the shared NodeArena on and off, and
// the coded-shuffle prototype at r ∈ {1,2,3} — must produce canonical
// output byte-identical to the fast MPI-D reference. A chaos leg loses a
// coded multicaster mid-schedule and must still match via the unicast
// re-fetch fallback.
func TestShuffleByteReductionThreeEngineEquality(t *testing.T) {
	cfg := SmokeShuffleBytesBench()
	cfg.Replications = []int{1, 2, 3}
	for _, name := range shuffleBytesWorkloads {
		name := name
		t.Run(name, func(t *testing.T) {
			suite := workload.Suite()
			var spec *workload.Spec
			for i := range suite {
				if suite[i].Name == name {
					spec = &suite[i]
					break
				}
			}
			if spec == nil {
				t.Fatalf("no suite spec %q", name)
			}
			job, splits, err := spec.Build(cfg.Params[name])
			if err != nil {
				t.Fatal(err)
			}
			ref, err := mapred.Run(job, splits, cfg.Mappers)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Pairs()
			if len(want) == 0 {
				t.Fatal("reference run produced no output")
			}
			for _, m := range shuffleBytesModes(job, splits, cfg) {
				pairs, bytes, err := m.run()
				if err != nil {
					t.Fatalf("%s: %v", m.name, err)
				}
				if !pairsEqual(want, pairs) {
					t.Errorf("%s: output differs from MPI-D reference (%d vs %d pairs)",
						m.name, len(pairs), len(want))
				}
				if bytes <= 0 {
					t.Errorf("%s: no shipped bytes recorded", m.name)
				}
			}
			// Chaos: a node going multicast-silent mid-schedule must not
			// change output — starved reducers unicast-re-fetch the raw
			// parts from surviving replicas.
			lossy, st, err := coded.Run(job, splits, coded.Options{
				Nodes: cfg.Mappers, Replication: 2,
				Loss: &coded.NodeLoss{Node: 1, AfterPackets: 1},
			})
			if err != nil {
				t.Fatalf("coded with lost node: %v", err)
			}
			if !pairsEqual(want, lossy.Pairs()) {
				t.Error("lost multicaster changed coded output")
			}
			if st.UnicastBytes == 0 {
				t.Error("lost multicaster triggered no unicast fallback")
			}
		})
	}
}
