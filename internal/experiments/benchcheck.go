package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Bench regression gate: re-run each suite's smoke configuration and
// compare its headline ratios against the committed BENCH_*.json
// baselines. Only scale-free metrics are compared — speedups and the
// fairness ratio — because the smoke configs are deliberately smaller
// than the committed full-scale runs, so absolute milliseconds are not
// comparable but the A/B ratios they summarize largely are. The default
// tolerance is wide (50%) for the same reason: a smoke run on loaded CI
// hardware is a smoke detector for "the optimization stopped working",
// not a precision benchmark.

// DefaultBenchTolerance is the relative slack applied to every baseline
// comparison when the caller does not pick one.
const DefaultBenchTolerance = 0.5

// benchMetric is one headline number extracted from a baseline file.
type benchMetric struct {
	name        string
	value       float64
	lowerBetter bool
	// absolute gates current <= value directly with no tolerance scaling,
	// for invariants ("still below 1.0") rather than magnitudes.
	absolute bool
}

// BenchCheckRow is one metric's verdict.
type BenchCheckRow struct {
	Suite       string  `json:"suite"`
	Metric      string  `json:"metric"`
	Baseline    float64 `json:"baseline"`
	Current     float64 `json:"current"`
	LowerBetter bool    `json:"lower_better,omitempty"`
	OK          bool    `json:"ok"`
}

// BenchCheckResult is the whole gate's outcome.
type BenchCheckResult struct {
	Tolerance float64         `json:"tolerance"`
	Rows      []BenchCheckRow `json:"rows"`
	Skipped   []string        `json:"skipped,omitempty"` // suites with no committed baseline
	OK        bool            `json:"ok"`
}

// benchSuites orders the gate's suites; each maps to BENCH_<suite>.json.
var benchSuites = []string{"shuffle", "mpid", "serve", "workloads", "shufflebytes", "transport"}

// shuffleBytesBaselines are the shufflebytes modes whose bytes_ratio is
// 1.0 by construction; the gate compares only the reduction modes.
var shuffleBytesBaselines = map[string]bool{"hadoop": true, "mpid": true, "coded-r1": true}

// RunBenchCheck loads the committed baselines from dir, re-runs the smoke
// configuration of every suite that has one, and compares the headline
// ratios under the given relative tolerance (<= 0 means
// DefaultBenchTolerance). Suites whose baseline file is absent are
// skipped, not failed — a fresh checkout without committed baselines
// still passes.
func RunBenchCheck(dir string, tol float64) (*BenchCheckResult, error) {
	base, skipped, err := loadBenchBaselines(dir)
	if err != nil {
		return nil, err
	}
	current := make(map[string]map[string]float64)
	for _, suite := range benchSuites {
		if len(base[suite]) == 0 {
			continue
		}
		cur, err := runBenchSmoke(suite)
		if err != nil {
			return nil, fmt.Errorf("bench-check: %s smoke run: %w", suite, err)
		}
		current[suite] = cur
	}
	res := compareBench(base, current, tol)
	res.Skipped = skipped
	return res, nil
}

// compareBench evaluates current metrics against baselines: a
// higher-is-better metric passes while current >= baseline*(1-tol), a
// lower-is-better one while current <= baseline*(1+tol). Baseline
// metrics with no current counterpart (e.g. a workload row the smoke
// config does not run) are ignored rather than failed.
func compareBench(base map[string][]benchMetric, current map[string]map[string]float64, tol float64) *BenchCheckResult {
	if tol <= 0 {
		tol = DefaultBenchTolerance
	}
	res := &BenchCheckResult{Tolerance: tol, OK: true}
	for _, suite := range benchSuites {
		cur := current[suite]
		if cur == nil {
			continue
		}
		for _, m := range base[suite] {
			c, ok := cur[m.name]
			if !ok {
				continue
			}
			row := BenchCheckRow{
				Suite: suite, Metric: m.name,
				Baseline: m.value, Current: c, LowerBetter: m.lowerBetter,
			}
			if m.absolute {
				row.OK = c <= m.value
			} else if m.lowerBetter {
				row.OK = c <= m.value*(1+tol)
			} else {
				row.OK = c >= m.value*(1-tol)
			}
			if !row.OK {
				res.OK = false
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// loadBenchBaselines reads every committed BENCH_<suite>.json under dir
// and extracts its headline metrics. Missing files are reported in the
// second return value; malformed ones are errors.
func loadBenchBaselines(dir string) (map[string][]benchMetric, []string, error) {
	out := make(map[string][]benchMetric)
	var skipped []string
	for _, suite := range benchSuites {
		path := filepath.Join(dir, "BENCH_"+suite+".json")
		data, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			skipped = append(skipped, suite)
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("bench-check: %w", err)
		}
		metrics, err := extractBenchMetrics(suite, data)
		if err != nil {
			return nil, nil, fmt.Errorf("bench-check: %s: %w", path, err)
		}
		out[suite] = metrics
	}
	return out, skipped, nil
}

// extractBenchMetrics pulls a suite's scale-free headline metrics out of
// one baseline document.
func extractBenchMetrics(suite string, data []byte) ([]benchMetric, error) {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	num := func(m map[string]any, key string) (float64, error) {
		v, ok := m[key].(float64)
		if !ok {
			return 0, fmt.Errorf("missing or non-numeric %q", key)
		}
		return v, nil
	}
	switch suite {
	case "shuffle":
		v, err := num(doc, "speedup")
		if err != nil {
			return nil, err
		}
		return []benchMetric{{name: "speedup", value: v}}, nil
	case "mpid":
		var out []benchMetric
		for _, key := range []string{"speedup_vs_legacy", "speedup_vs_hadoop"} {
			v, err := num(doc, key)
			if err != nil {
				return nil, err
			}
			out = append(out, benchMetric{name: key, value: v})
		}
		return out, nil
	case "serve":
		v, err := num(doc, "fairness_ratio")
		if err != nil {
			return nil, err
		}
		return []benchMetric{{name: "fairness_ratio", value: v, lowerBetter: true}}, nil
	case "workloads":
		rows, ok := doc["workloads"].([]any)
		if !ok {
			return nil, fmt.Errorf("missing %q array", "workloads")
		}
		var out []benchMetric
		for i, raw := range rows {
			row, ok := raw.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("workloads[%d]: not an object", i)
			}
			name, ok := row["name"].(string)
			if !ok {
				return nil, fmt.Errorf("workloads[%d]: missing name", i)
			}
			v, err := num(row, "speedup_vs_hadoop")
			if err != nil {
				return nil, fmt.Errorf("workloads[%d] (%s): %w", i, name, err)
			}
			out = append(out, benchMetric{name: name + ".speedup_vs_hadoop", value: v})
		}
		return out, nil
	case "shufflebytes":
		rows, ok := doc["rows"].([]any)
		if !ok {
			return nil, fmt.Errorf("missing %q array", "rows")
		}
		var out []benchMetric
		for i, raw := range rows {
			row, ok := raw.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("rows[%d]: not an object", i)
			}
			wl, _ := row["workload"].(string)
			mode, _ := row["mode"].(string)
			if wl == "" || mode == "" {
				return nil, fmt.Errorf("rows[%d]: missing workload or mode", i)
			}
			if shuffleBytesBaselines[mode] {
				continue
			}
			v, err := num(row, "bytes_ratio")
			if err != nil {
				return nil, fmt.Errorf("rows[%d] (%s/%s): %w", i, wl, mode, err)
			}
			// The committed magnitude is scale-dependent — smoke inputs
			// duplicate keys less than the full-scale run, and hadoop
			// group formation varies with heartbeat timing — so the gate
			// checks the scale-free invariant instead: the mode still
			// ships fewer bytes than its in-family baseline. A ratio at
			// or above 1.0 means the byte reduction stopped working.
			_ = v
			out = append(out, benchMetric{name: wl + "." + mode + ".bytes_ratio", value: 1.0, lowerBetter: true, absolute: true})
		}
		return out, nil
	case "transport":
		for _, key := range []string{"ring_vs_chan_small_p50", "max_allocs_per_op"} {
			if _, err := num(doc, key); err != nil {
				return nil, err
			}
		}
		// Both headline metrics are absolute invariants, independent of
		// the committed magnitudes: the ring transport must still beat
		// the chan transport's small-message p50 (ratio below 1.0), and
		// the steady-state send→recv path must still be allocation-free
		// on every transport at every size.
		return []benchMetric{
			{name: "ring_vs_chan_small_p50", value: 1.0, lowerBetter: true, absolute: true},
			{name: "max_allocs_per_op", value: 0.0, lowerBetter: true, absolute: true},
		}, nil
	}
	return nil, fmt.Errorf("unknown suite %q", suite)
}

// runBenchSmoke runs one suite's smoke configuration and returns its
// headline metrics under the same names extractBenchMetrics produces.
func runBenchSmoke(suite string) (map[string]float64, error) {
	switch suite {
	case "shuffle":
		r, err := RunShuffleBench(SmokeShuffleBench())
		if err != nil {
			return nil, err
		}
		return map[string]float64{"speedup": r.Speedup}, nil
	case "mpid":
		r, err := RunMPIDBench(SmokeMPIDBench())
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"speedup_vs_legacy": r.SpeedupVsLegacy,
			"speedup_vs_hadoop": r.SpeedupVsHadoop,
		}, nil
	case "serve":
		r, err := RunServeBench(SmokeServeBench())
		if err != nil {
			return nil, err
		}
		return map[string]float64{"fairness_ratio": r.FairnessRatio}, nil
	case "workloads":
		r, err := RunWorkloadBench(SmokeWorkloadBench())
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64, len(r.Workloads))
		for _, row := range r.Workloads {
			out[row.Name+".speedup_vs_hadoop"] = row.SpeedupVsHadoop
		}
		return out, nil
	case "shufflebytes":
		r, err := RunShuffleBytesBench(SmokeShuffleBytesBench())
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64, len(r.Rows))
		for _, row := range r.Rows {
			if shuffleBytesBaselines[row.Mode] {
				continue
			}
			out[row.Workload+"."+row.Mode+".bytes_ratio"] = row.BytesRatio
		}
		return out, nil
	case "transport":
		r, err := RunTransportBench(SmokeTransportBench())
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"ring_vs_chan_small_p50": r.RingVsChanSmallP50,
			"max_allocs_per_op":      r.MaxAllocsPerOp,
		}, nil
	}
	return nil, fmt.Errorf("unknown suite %q", suite)
}

// RenderBenchCheck prints the gate verdict table.
func RenderBenchCheck(r *BenchCheckResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench regression gate (tolerance %.0f%%)\n", r.Tolerance*100)
	fmt.Fprintf(&b, "  %-10s %-30s %10s %10s  %s\n", "SUITE", "METRIC", "BASELINE", "CURRENT", "VERDICT")
	for _, row := range r.Rows {
		verdict := "ok"
		if !row.OK {
			verdict = "REGRESSED"
		}
		dir := ""
		if row.LowerBetter {
			dir = " (lower better)"
		}
		fmt.Fprintf(&b, "  %-10s %-30s %10.3f %10.3f  %s%s\n",
			row.Suite, row.Metric, row.Baseline, row.Current, verdict, dir)
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "  %-10s no committed baseline, skipped\n", s)
	}
	if r.OK {
		b.WriteString("  PASS\n")
	} else {
		b.WriteString("  FAIL: at least one metric regressed beyond tolerance\n")
	}
	return b.String()
}
