package experiments

import (
	"strings"
	"testing"

	"github.com/ict-repro/mpid/internal/netmodel"
)

func TestSizeRanges(t *testing.T) {
	small := Small.Sizes()
	if small[0] != 1 || small[len(small)-1] != 1024 {
		t.Fatalf("small range = %v", small)
	}
	medium := Medium.Sizes()
	if medium[0] != 1024 || medium[len(medium)-1] != 1<<20 {
		t.Fatalf("medium range = %v", medium)
	}
	large := Large.Sizes()
	if large[0] != 1<<20 || large[len(large)-1] != 64<<20 {
		t.Fatalf("large range = %v", large)
	}
}

func TestSizeRangeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SizeRange("bogus").Sizes()
}

func TestFigure2ModelReproducesPaperRatios(t *testing.T) {
	rows, err := Figure2(Small, Model)
	if err != nil {
		t.Fatal(err)
	}
	// 1 B ratio ~2.49x, growing with size (paper: smallest gap at 1 B).
	if r := rows[0].Ratio(); r < 2 || r > 3 {
		t.Errorf("1B ratio = %g, want ~2.49", r)
	}
	last := rows[len(rows)-1] // 1 KB
	if r := last.Ratio(); r < 12 || r > 18 {
		t.Errorf("1KB ratio = %g, want ~15.1", r)
	}
	if rows[0].PaperMPI == 0 || last.PaperRPC == 0 {
		t.Error("paper anchors not attached at 1B / 1KB")
	}

	med, err := Figure2(Medium, Model)
	if err != nil {
		t.Fatal(err)
	}
	oneMB := med[len(med)-1]
	if r := oneMB.Ratio(); r < 100 || r > 140 {
		t.Errorf("1MB ratio = %g, want ~123", r)
	}
}

func TestFigure2RowsCoverEverySize(t *testing.T) {
	for _, panel := range []SizeRange{Small, Medium, Large} {
		rows, err := Figure2(panel, Model)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(panel.Sizes()) {
			t.Errorf("%s: %d rows, want %d", panel, len(rows), len(panel.Sizes()))
		}
		for _, r := range rows {
			if r.MPI <= 0 || r.RPC <= 0 {
				t.Errorf("%s size %d: non-positive latency", panel, r.Size)
			}
		}
	}
}

func TestRenderFigure2(t *testing.T) {
	rows, err := Figure2(Small, Model)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFigure2(Small, Model, rows)
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "HadoopRPC") {
		t.Errorf("render missing headers:\n%s", out)
	}
}

func TestFigure3ModelShape(t *testing.T) {
	rows, err := Figure3(Model)
	if err != nil {
		t.Fatal(err)
	}
	rpc, jetty, mpiPeak, raw := PeakBandwidths(rows)
	if rpc/1e6 < 0.8 || rpc/1e6 > 1.6 {
		t.Errorf("RPC peak = %g MB/s, want ~1.4", rpc/1e6)
	}
	if mpiPeak <= jetty {
		t.Error("MPI peak should beat Jetty by 2-3%")
	}
	if (mpiPeak-jetty)/jetty > 0.06 {
		t.Errorf("MPI-Jetty gap = %g, want small", (mpiPeak-jetty)/jetty)
	}
	if mpiPeak/rpc < 60 {
		t.Errorf("MPI/RPC peak ratio = %g, want ~100x", mpiPeak/rpc)
	}
	if raw <= 0 {
		t.Error("RawTCP series empty")
	}
	out := RenderFigure3(Model, rows)
	if !strings.Contains(out, "peaks:") {
		t.Errorf("render missing peaks:\n%s", out)
	}
}

func TestFigure1SmallScale(t *testing.T) {
	r := Figure1(2 * netmodel.GB)
	if r.NumMaps != 32 {
		t.Fatalf("NumMaps = %d", r.NumMaps)
	}
	out := RenderFigure1(r)
	for _, want := range []string{"Figure 1", "copy", "sort", "reduce", "stragglers"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1PaperScaleUsesPaperReduceCount(t *testing.T) {
	p := Figure1Params(150 * netmodel.GB)
	if p.NumReduceTasks != 2345 {
		t.Fatalf("NumReduceTasks = %d, want 2345", p.NumReduceTasks)
	}
}

func TestTable1SweepSmall(t *testing.T) {
	cells := Table1(3)
	if len(cells) != 8 { // 2 sizes x 4 configs
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	for _, c := range cells {
		if c.CopyPct <= 0 || c.CopyPct >= 100 {
			t.Errorf("%dGB %s: copy%% = %g", c.SizeGB, c.Config(), c.CopyPct)
		}
		if c.PaperPct == 0 {
			t.Errorf("%dGB %s: paper value missing", c.SizeGB, c.Config())
		}
	}
	out := RenderTable1(cells)
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "1GB") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure6SweepSmall(t *testing.T) {
	rows := Figure6(5)
	if len(rows) != 3 { // 1, 2, 5 GB
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.MPID >= r.Hadoop {
			t.Errorf("%dGB: MPI-D %g not faster than Hadoop %g", r.SizeGB, r.MPID, r.Hadoop)
		}
	}
	// The 1 GB row carries the paper anchors.
	if rows[0].PaperHadoop != 49 || rows[0].PaperMPID != 3.9 {
		t.Errorf("1GB paper anchors = %g/%g", rows[0].PaperHadoop, rows[0].PaperMPID)
	}
	out := RenderFigure6(rows)
	if !strings.Contains(out, "Figure 6") {
		t.Errorf("render:\n%s", out)
	}
}

func TestPaperReferenceTables(t *testing.T) {
	if _, _, ok := PaperLatency(1); !ok {
		t.Error("1B paper latency missing")
	}
	if _, _, ok := PaperLatency(3); ok {
		t.Error("3B paper latency should be absent")
	}
	if PaperTable1[150]["8/8"] != 82.7 {
		t.Errorf("Table I anchor wrong: %g", PaperTable1[150]["8/8"])
	}
	if _, _, r, ok := PaperFigure6(10); !ok || r != 0.48 {
		t.Errorf("Fig6 10GB ratio = %g, %v", r, ok)
	}
	if _, _, _, ok := PaperFigure6(7); ok {
		t.Error("Fig6 7GB should be absent")
	}
	if Mode(0).String() != "model" || Live.String() != "live" {
		t.Error("mode names wrong")
	}
}

func TestFigure2LiveOrdering(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("live timing assertion; skipped in -short and race builds")
	}
	// Live on loopback: for bulk messages, RPC's serialize-into-the-frame
	// copy amplification must cost real time against MPI's framed stream
	// (at tiny sizes Go's loopback costs swamp the difference, unlike the
	// paper's JVM, where RPC loses at every size).
	rows, err := Figure2(Medium, Live)
	if err != nil {
		t.Fatal(err)
	}
	slower, bulk := 0, 0
	for _, r := range rows {
		if r.Size < 64<<10 {
			continue
		}
		bulk++
		if r.RPC > r.MPI {
			slower++
		}
	}
	if bulk == 0 || slower < bulk*2/3 {
		t.Errorf("RPC slower in only %d/%d bulk sizes", slower, bulk)
	}
}

func TestFigure3LiveRPCCollapse(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("live timing assertion; skipped in -short and race builds")
	}
	bench, err := newLiveBandwidthBench("")
	if err != nil {
		t.Fatal(err)
	}
	defer bench.Close()
	// At a small packet size, call-per-packet RPC bandwidth must collapse
	// against the streaming MPI framing — the paper's Figure 3 mechanism.
	// (RPC vs Go's net/http at tiny packets is load-sensitive noise, so
	// the Jetty comparison runs at a bulk packet size instead.) One
	// measurement on a loaded machine can catch a scheduling stall on
	// either side, so a failed comparison re-measures before failing.
	const retries = 3
	for attempt := 1; ; attempt++ {
		row, err := bench.measure(1024)
		if err != nil {
			t.Fatal(err)
		}
		if row.RPC < row.MPI {
			break
		}
		if attempt == retries {
			t.Errorf("live RPC bandwidth %g >= MPI %g at 1KB packets (%d attempts)", row.RPC, row.MPI, attempt)
			break
		}
	}
	for attempt := 1; ; attempt++ {
		bulk, err := bench.measure(64 << 10)
		if err != nil {
			t.Fatal(err)
		}
		if bulk.RPC < bulk.Jetty {
			break
		}
		if attempt == retries {
			t.Errorf("live RPC bandwidth %g >= Jetty %g at 64KB packets (%d attempts)", bulk.RPC, bulk.Jetty, attempt)
			break
		}
	}
}

func TestExtensionInterconnects(t *testing.T) {
	rows := ExtensionInterconnects(4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if err := interconnectSanity(rows); err != nil {
		t.Fatal(err)
	}
	if rows[0].Name != "MPICH2" || rows[2].Name != "MPI-InfiniBand" {
		t.Fatalf("fabric order: %q, %q, %q", rows[0].Name, rows[1].Name, rows[2].Name)
	}
	out := RenderInterconnects(rows)
	if !strings.Contains(out, "InfiniBand") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure6LiveEnginesAgreeAndMPIDWins(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("live timing assertion; skipped in -short and race builds")
	}
	rows, err := Figure6Live([]int64{256 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Hadoop <= 0 || r.MPID <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
		// The live analogue of the paper's claim: the MPI-D path beats the
		// Hadoop path on the identical job.
		if r.MPID >= r.Hadoop {
			t.Errorf("%dKB: MPI-D %v not faster than Hadoop %v",
				r.SizeBytes>>10, r.MPID, r.Hadoop)
		}
	}
	out := RenderFigure6Live(rows)
	if !strings.Contains(out, "live") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure6CodedSweep(t *testing.T) {
	rows := Figure6Coded(2, []int{1, 2})
	if len(rows) != 4 { // sizes {1,2} x r {1,2}
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byKey := map[[2]int64]Figure6CodedRow{}
	for _, r := range rows {
		byKey[[2]int64{r.SizeGB, int64(r.Replication)}] = r
	}
	for _, gb := range []int64{1, 2} {
		r1, r2 := byKey[[2]int64{gb, 1}], byKey[[2]int64{gb, 2}]
		if r2.ShuffleGB >= r1.ShuffleGB {
			t.Errorf("%dGB: r=2 shipped %.3fGB, not below r=1's %.3fGB", gb, r2.ShuffleGB, r1.ShuffleGB)
		}
	}
	out := RenderFigure6Coded(rows)
	if !strings.Contains(out, "coded") || !strings.Contains(out, "shipped(GB)") {
		t.Errorf("render:\n%s", out)
	}
}

func TestShuffleBytesBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is seconds-scale")
	}
	cfg := SmokeShuffleBytesBench()
	cfg.Reps = 1
	res, err := RunShuffleBytesBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*6 { // 2 workloads x (hadoop, hadoop-nc, mpid, mpid-na, coded-r1, coded-r2)
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	byMode := map[string]map[string]ShuffleBytesRow{}
	for _, r := range res.Rows {
		if byMode[r.Workload] == nil {
			byMode[r.Workload] = map[string]ShuffleBytesRow{}
		}
		byMode[r.Workload][r.Mode] = r
	}
	for wl, rows := range byMode {
		for _, pair := range [][2]string{
			{"hadoop-nodecombine", "hadoop"},
			{"mpid-nodearena", "mpid"},
			{"coded-r2", "coded-r1"},
		} {
			reduced, base := rows[pair[0]], rows[pair[1]]
			// mpid-nodearena's reduction depends on dynamic scheduling: on a
			// loaded machine one mapper rank can grab every split, leaving
			// the shared arena nothing cross-rank to fold and the ratio at
			// exactly 1.0. Require "never worse" there and strict reduction
			// from the deterministic modes.
			if pair[0] == "mpid-nodearena" {
				if reduced.Bytes > base.Bytes {
					t.Errorf("%s: %s shipped %d bytes, above %s's %d",
						wl, pair[0], reduced.Bytes, pair[1], base.Bytes)
				}
				if reduced.BytesRatio > 1 || reduced.BytesRatio <= 0 {
					t.Errorf("%s: %s bytes_ratio = %g, want in (0, 1]", wl, pair[0], reduced.BytesRatio)
				}
				continue
			}
			if reduced.Bytes >= base.Bytes {
				t.Errorf("%s: %s shipped %d bytes, not below %s's %d",
					wl, pair[0], reduced.Bytes, pair[1], base.Bytes)
			}
			if reduced.BytesRatio >= 1 || reduced.BytesRatio <= 0 {
				t.Errorf("%s: %s bytes_ratio = %g, want in (0, 1)", wl, pair[0], reduced.BytesRatio)
			}
		}
	}
	out := RenderShuffleBytesBench(res)
	if !strings.Contains(out, "shuffle-byte reduction") || !strings.Contains(out, "coded-r2") {
		t.Errorf("render:\n%s", out)
	}
}
