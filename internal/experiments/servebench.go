package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/serve"
)

// ServeBench is the job-service benchmark behind BENCH_serve.json: a
// full-stack soak of cmd/mpid-serve's machinery — an in-process service
// behind its real RPC front-end, a swarm of concurrent tenant clients each
// submitting small WordCount jobs over the wire, admission control pushing
// back when slots and queue fill, and the per-tenant round-robin scheduler
// deciding who runs next. It reports client-observed job latency (p50/p99),
// throughput, how much backpressure the swarm absorbed (rejections and
// retries), and a cross-tenant fairness ratio.

// ServeBenchConfig shapes one service soak.
type ServeBenchConfig struct {
	// Tenants is the number of distinct tenants submitting.
	Tenants int `json:"tenants"`
	// JobsPerTenant is how many jobs each tenant submits; every job gets
	// its own client connection and goroutine, so Tenants*JobsPerTenant
	// submissions are in flight at once.
	JobsPerTenant int `json:"jobs_per_tenant"`
	// Slots is the service's concurrent-job limit.
	Slots int `json:"slots"`
	// QueueDepth is the service's waiting-queue bound. Sized below the
	// submission swarm, it forces rejections — the benchmark exercises
	// backpressure, not just throughput.
	QueueDepth int `json:"queue_depth"`
	// JobBytes is each WordCount job's input size.
	JobBytes int64 `json:"job_bytes"`
	// SplitBytes is the per-job input split size.
	SplitBytes int64 `json:"split_bytes"`
	// Reducers is the per-job reduce count.
	Reducers int64 `json:"reducers"`
	// Trackers is the per-job tasktracker count.
	Trackers int `json:"trackers"`
	// Seed fixes every job's generated input (identical inputs make the
	// cross-job digest equality check meaningful).
	Seed int64 `json:"seed"`
}

// DefaultServeBench is the committed-baseline configuration: 120 concurrent
// submissions from 4 tenants against 8 slots + a 24-deep queue, so roughly
// three quarters of the swarm meets admission control at least once.
func DefaultServeBench() ServeBenchConfig {
	return ServeBenchConfig{
		Tenants: 4, JobsPerTenant: 30, Slots: 8, QueueDepth: 24,
		JobBytes: 64 << 10, SplitBytes: 16 << 10, Reducers: 2, Trackers: 2,
		Seed: 1,
	}
}

// SmokeServeBench is a seconds-scale configuration for CI smoke runs.
func SmokeServeBench() ServeBenchConfig {
	return ServeBenchConfig{
		Tenants: 3, JobsPerTenant: 4, Slots: 4, QueueDepth: 4,
		JobBytes: 16 << 10, SplitBytes: 8 << 10, Reducers: 2, Trackers: 2,
		Seed: 1,
	}
}

// ServeTenantRow is one tenant's share of the soak.
type ServeTenantRow struct {
	Tenant  string  `json:"tenant"`
	Jobs    int     `json:"jobs"`
	MeanMs  float64 `json:"mean_ms"`
	P99Ms   float64 `json:"p99_ms"`
	Retries int     `json:"retries"`
}

// ServeBenchResult is the schema of BENCH_serve.json.
type ServeBenchResult struct {
	Config        ServeBenchConfig `json:"config"`
	Jobs          int              `json:"jobs"`
	WallMs        float64          `json:"wall_ms"`
	Throughput    float64          `json:"throughput_jobs_per_s"`
	P50Ms         float64          `json:"p50_ms"`
	P99Ms         float64          `json:"p99_ms"`
	MeanMs        float64          `json:"mean_ms"`
	Rejected      int              `json:"rejected"`       // saturated submissions (later retried)
	Retries       int              `json:"retries"`        // resubmissions after backoff
	FairnessRatio float64          `json:"fairness_ratio"` // max/min cross-tenant mean latency; 1.0 is perfectly fair
	Tenants       []ServeTenantRow `json:"tenants"`
	Timestamp     string           `json:"timestamp,omitempty"`
}

// serveBenchJob is one client's observation of one job.
type serveBenchJob struct {
	tenant  string
	latency time.Duration
	retries int
	digest  []byte
}

// RunServeBench boots the service with its RPC front-end, releases the
// submission swarm, and gathers client-observed results. Every job runs
// the identical deterministic WordCount, so the run fails if any two
// output digests differ — correctness gates the timing, as in the other
// suites.
func RunServeBench(cfg ServeBenchConfig) (*ServeBenchResult, error) {
	svc := serve.New(serve.Config{
		Slots:      cfg.Slots,
		QueueDepth: cfg.QueueDepth,
		Cluster: hadoop.Config{
			NumTrackers: cfg.Trackers,
		},
	})
	srv := hadooprpc.NewServer()
	srv.Register(serve.NewProtocol(svc, serve.NewWorkloads()))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("servebench: listen: %w", err)
	}
	defer srv.Close()

	params := map[string]int64{
		"bytes": cfg.JobBytes, "split": cfg.SplitBytes,
		"reducers": cfg.Reducers, "seed": cfg.Seed,
	}
	// Waits block server-side until the job finishes; give the whole soak
	// one generous call budget rather than the 30 s default.
	opts := hadooprpc.Options{CallTimeout: 15 * time.Minute}

	total := cfg.Tenants * cfg.JobsPerTenant
	results := make([]serveBenchJob, total)
	errs := make([]error, total)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		tenant := fmt.Sprintf("tenant%d", t)
		for i := 0; i < cfg.JobsPerTenant; i++ {
			idx := t*cfg.JobsPerTenant + i
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				results[idx], errs[idx] = submitOne(addr, opts, tenant, params)
			}()
		}
	}
	wallStart := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(wallStart)
	if err := svc.Drain(time.Minute); err != nil {
		return nil, fmt.Errorf("servebench: %w", err)
	}

	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("servebench: %w", err)
		}
	}
	// Byte-identical gate: every job ran the same deterministic input.
	for i := 1; i < total; i++ {
		if !bytes.Equal(results[i].digest, results[0].digest) {
			return nil, fmt.Errorf("servebench: job %d output digest differs", i)
		}
	}

	res := &ServeBenchResult{Config: cfg, Jobs: total}
	res.WallMs = float64(wall.Microseconds()) / 1000
	if wall > 0 {
		res.Throughput = float64(total) / wall.Seconds()
	}
	// metrics.Timer holds exactly the percentile machinery this summary
	// needs (interpolated p50/p99 over the observations, exact at this
	// scale), so observe latencies in milliseconds instead of hand-sorting.
	var allT metrics.Timer
	perTenant := make(map[string]*metrics.Timer)
	for _, r := range results {
		ms := float64(r.latency.Microseconds()) / 1000
		allT.Observe(ms)
		t := perTenant[r.tenant]
		if t == nil {
			t = &metrics.Timer{}
			perTenant[r.tenant] = t
		}
		t.Observe(ms)
		res.Retries += r.retries
	}
	allStats := allT.Stats()
	res.P50Ms = allStats.P50
	res.P99Ms = allStats.P99
	res.MeanMs = allStats.Mean

	names := make([]string, 0, len(perTenant))
	for name := range perTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	minMean, maxMean := 0.0, 0.0
	for _, name := range names {
		st := perTenant[name].Stats()
		if minMean == 0 || st.Mean < minMean {
			minMean = st.Mean
		}
		if st.Mean > maxMean {
			maxMean = st.Mean
		}
		row := ServeTenantRow{Tenant: name, Jobs: int(st.Count), MeanMs: st.Mean, P99Ms: st.P99}
		for _, r := range results {
			if r.tenant == name {
				row.Retries += r.retries
			}
		}
		res.Tenants = append(res.Tenants, row)
	}
	if minMean > 0 {
		res.FairnessRatio = maxMean / minMean
	}
	res.Rejected = svc.Stats().Rejected
	return res, nil
}

// submitOne is one swarm member: dial, submit (retrying saturation after
// the service's own hint), wait, and report the client-observed latency
// from first submission attempt to completed wait.
func submitOne(addr string, opts hadooprpc.Options, tenant string, params map[string]int64) (serveBenchJob, error) {
	c, err := serve.DialService(addr, opts)
	if err != nil {
		return serveBenchJob{}, err
	}
	defer c.Close()
	out := serveBenchJob{tenant: tenant}
	start := time.Now()
	var id int64
	for {
		id, err = c.Submit(tenant, "wordcount", params)
		if err == nil {
			break
		}
		var sat *serve.SaturatedError
		if !errors.As(err, &sat) {
			return out, fmt.Errorf("submit (%s): %w", tenant, err)
		}
		// Backpressure working as designed: honor the hint and resubmit.
		out.retries++
		time.Sleep(sat.RetryAfter)
	}
	r, err := c.Wait(id)
	if err != nil {
		return out, fmt.Errorf("wait (%s job %d): %w", tenant, id, err)
	}
	if !r.OK {
		return out, fmt.Errorf("job %d (%s) failed: %s", id, tenant, r.ErrMsg)
	}
	out.latency = time.Since(start)
	out.digest = r.Digest
	return out, nil
}

// MarshalServeBench renders the result as the BENCH_serve.json body.
func MarshalServeBench(r *ServeBenchResult) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RenderServeBench prints the soak summary table.
func RenderServeBench(r *ServeBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "job service soak (%d tenants x %d jobs, %d slots + %d queue)\n",
		r.Config.Tenants, r.Config.JobsPerTenant, r.Config.Slots, r.Config.QueueDepth)
	fmt.Fprintf(&b, "  jobs: %d in %.1f ms (%.1f jobs/s)\n", r.Jobs, r.WallMs, r.Throughput)
	fmt.Fprintf(&b, "  latency p50 %.1f ms  p99 %.1f ms  mean %.1f ms\n", r.P50Ms, r.P99Ms, r.MeanMs)
	fmt.Fprintf(&b, "  backpressure: %d rejections, %d retries\n", r.Rejected, r.Retries)
	fmt.Fprintf(&b, "  fairness ratio (max/min tenant mean latency): %.2f\n", r.FairnessRatio)
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "    %-10s %3d jobs  mean %8.1f ms  p99 %8.1f ms  retries %d\n",
			t.Tenant, t.Jobs, t.MeanMs, t.P99Ms, t.Retries)
	}
	return b.String()
}
