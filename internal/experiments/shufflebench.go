package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/shuffle"
)

// ShuffleBench is the reduce-side shuffle A/B benchmark behind
// BENCH_shuffle.json: the same multi-reducer merge workload driven through
// the legacy engine (buffer every segment into one hash map under a single
// lock, then sort the whole key space) and the pipelined engine (sorted
// runs into a concurrent k-way shuffle.Merger with merge-time combining).
// It isolates exactly the code the pipelined shuffle replaced — everything
// upstream of the reduce side (map execution, HTTP fetches, scheduling) is
// identical between the two paths in the live engine, so it is factored
// out here; the engine-level equivalence is covered by the pipeline tests
// and the live trace shows the copy/merge overlap.

// ShuffleBenchConfig shapes one benchmark run.
type ShuffleBenchConfig struct {
	// Maps is the number of map-output segments per reducer.
	Maps int `json:"maps"`
	// Reducers run concurrently, each merging its own Maps segments — the
	// multi-reducer shape of a real job's reduce wave.
	Reducers int `json:"reducers"`
	// KeysPerMap is the distinct keys in each segment, drawn from Vocab,
	// so keys overlap heavily across segments (what combining exploits).
	KeysPerMap int `json:"keys_per_map"`
	// Vocab is the distinct-key universe per reducer.
	Vocab int `json:"vocab"`
	// Copiers is the parallel feeders per reducer
	// (mapred.reduce.parallel.copies).
	Copiers int `json:"copiers"`
	// MergeFactor is the pipelined engine's fan-in (io.sort.factor).
	MergeFactor int `json:"merge_factor"`
	// Reps is how many times each engine runs; the best time is kept, as
	// the paper keeps averaged repetitions after warmup.
	Reps int `json:"reps"`
	// Seed fixes the workload.
	Seed int64 `json:"seed"`
}

// DefaultShuffleBench is the committed-baseline configuration: 32 maps
// feeding 4 concurrent reducers, heavy key overlap, fan-in 8.
func DefaultShuffleBench() ShuffleBenchConfig {
	return ShuffleBenchConfig{
		Maps: 32, Reducers: 4, KeysPerMap: 6000, Vocab: 20000,
		Copiers: 5, MergeFactor: 8, Reps: 5, Seed: 1,
	}
}

// SmokeShuffleBench is a seconds-scale configuration for CI smoke runs.
func SmokeShuffleBench() ShuffleBenchConfig {
	return ShuffleBenchConfig{
		Maps: 12, Reducers: 2, KeysPerMap: 1500, Vocab: 5000,
		Copiers: 4, MergeFactor: 4, Reps: 2, Seed: 1,
	}
}

// ShuffleBenchResult is one A/B measurement, the schema of
// BENCH_shuffle.json.
type ShuffleBenchResult struct {
	Config      ShuffleBenchConfig `json:"config"`
	SegmentMB   float64            `json:"segment_mb_total"` // input bytes across all segments
	LegacyMs    float64            `json:"legacy_ms"`        // best-of-reps wall time, legacy engine
	PipelinedMs float64            `json:"pipelined_ms"`     // best-of-reps wall time, pipelined engine
	Speedup     float64            `json:"speedup"`          // LegacyMs / PipelinedMs
	MergePasses int                `json:"merge_passes"`     // background passes per pipelined rep
	Timestamp   string             `json:"timestamp,omitempty"`
}

// segment is one reducer's pre-generated map output: a sorted run of
// framed KeyLists whose values are VLong counts, the WordCount shape
// (associative, commutative — combinable).
func genSegment(rng *rand.Rand, cfg ShuffleBenchConfig) []byte {
	keys := make(map[int]int64, cfg.KeysPerMap)
	for len(keys) < cfg.KeysPerMap {
		keys[rng.Intn(cfg.Vocab)] += int64(rng.Intn(40) + 1)
	}
	ids := make([]int, 0, len(keys))
	for id := range keys {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var buf []byte
	for _, id := range ids {
		buf = kv.AppendKeyList(buf, kv.KeyList{
			Key:    []byte(fmt.Sprintf("key-%08d", id)),
			Values: [][]byte{kv.AppendVLong(nil, keys[id])},
		})
	}
	return buf
}

// sumCombine is the WordCount combiner: fold counts into one value.
func sumCombine(_ []byte, values [][]byte) [][]byte {
	var total int64
	for _, v := range values {
		n, _, err := kv.ReadVLong(v)
		if err != nil {
			return values // malformed: leave for the reducer to fail on
		}
		total += n
	}
	return [][]byte{kv.AppendVLong(nil, total)}
}

// reduceEmit sums a key's values and frames the result — the reduce
// function both engines run.
func reduceEmit(out []byte, key []byte, values [][]byte) ([]byte, error) {
	var total int64
	for _, v := range values {
		n, _, err := kv.ReadVLong(v)
		if err != nil {
			return nil, err
		}
		total += n
	}
	return kv.AppendPair(out, kv.Pair{Key: key, Value: kv.AppendVLong(nil, total)}), nil
}

// legacyReduce is the pre-pipeline reduce side, as tasktracker.go ran it:
// parallel feeders parse each segment and merge it into one hash map under
// a single lock, then the whole key space is sorted and reduced.
func legacyReduce(segs [][]byte, copiers int) ([]byte, error) {
	merged := make(map[string][][]byte)
	var mu sync.Mutex
	sem := make(chan struct{}, copiers)
	var wg sync.WaitGroup
	errCh := make(chan error, len(segs))
	for _, seg := range segs {
		seg := seg
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var lists []kv.KeyList
			data := seg
			for len(data) > 0 {
				klist, n, err := kv.ReadKeyList(data)
				if err != nil {
					errCh <- err
					return
				}
				lists = append(lists, klist)
				data = data[n:]
			}
			mu.Lock()
			for _, kl := range lists {
				merged[string(kl.Key)] = append(merged[string(kl.Key)], kl.Values...)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	var err error
	for _, k := range keys {
		if out, err = reduceEmit(out, []byte(k), merged[k]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// pipelinedReduce is the new reduce side: parallel feeders validate each
// run and hand it to a concurrent Merger whose background passes combine
// while other segments are still being fed; the final merge streams key
// groups straight into the reduce function.
func pipelinedReduce(segs [][]byte, copiers, factor int, passes *int) ([]byte, error) {
	merger := shuffle.NewMerger(shuffle.Config{
		Expected: len(segs),
		Factor:   factor,
		Combine:  sumCombine,
		Pool:     shuffle.NewBufferPool(),
		OnPass:   func(shuffle.PassInfo) { *passes++ },
	})
	sem := make(chan struct{}, copiers)
	var wg sync.WaitGroup
	errCh := make(chan error, len(segs))
	for i, seg := range segs {
		i, seg := i, seg
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := shuffle.ValidateRun(seg); err != nil {
				errCh <- err
				return
			}
			// The merger may recycle consumed buffers; segments are reused
			// across reps, so hand it a copy, charging the pipelined path
			// the same body-read cost the legacy parse pays.
			merger.Add(i, append([]byte(nil), seg...))
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	var out []byte
	err := merger.Merge(func(kl kv.KeyList) error {
		var e error
		out, e = reduceEmit(out, kl.Key, kl.Values)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GenShuffleWorkload pre-generates the benchmark workload: one sorted-run
// segment set per reducer, deterministic in cfg.Seed.
func GenShuffleWorkload(cfg ShuffleBenchConfig) [][][]byte {
	rng := rand.New(rand.NewSource(cfg.Seed))
	perReducer := make([][][]byte, cfg.Reducers)
	for r := range perReducer {
		perReducer[r] = make([][]byte, cfg.Maps)
		for m := range perReducer[r] {
			perReducer[r][m] = genSegment(rng, cfg)
		}
	}
	return perReducer
}

// runWave runs one engine invocation per reducer concurrently — one reduce
// wave — and returns its wall time.
func runWave(reducers int, engine func(r int) error) (time.Duration, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, reducers)
	start := time.Now()
	for r := 0; r < reducers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := engine(r); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	d := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
		return d, nil
	}
}

// LegacyShuffleWave drives one reduce wave of the workload through the
// legacy engine. Exported for bench_test.go's BenchmarkShuffleLegacy.
func LegacyShuffleWave(perReducer [][][]byte, cfg ShuffleBenchConfig) error {
	_, err := runWave(len(perReducer), func(r int) error {
		_, err := legacyReduce(perReducer[r], cfg.Copiers)
		return err
	})
	return err
}

// PipelinedShuffleWave drives one reduce wave through the pipelined engine
// and returns the background merge passes run across all reducers.
// Exported for bench_test.go's BenchmarkShufflePipelined.
func PipelinedShuffleWave(perReducer [][][]byte, cfg ShuffleBenchConfig) (int, error) {
	var passes int
	var mu sync.Mutex
	_, err := runWave(len(perReducer), func(r int) error {
		var p int
		_, err := pipelinedReduce(perReducer[r], cfg.Copiers, cfg.MergeFactor, &p)
		mu.Lock()
		passes += p
		mu.Unlock()
		return err
	})
	return passes, err
}

// RunShuffleBench generates the workload once, validates that both engines
// produce byte-identical output, then times Reps runs of each (all
// Reducers merging concurrently, as in a real reduce wave) and reports the
// best wall time per engine.
func RunShuffleBench(cfg ShuffleBenchConfig) (*ShuffleBenchResult, error) {
	perReducer := GenShuffleWorkload(cfg)
	var totalBytes int64
	for r := range perReducer {
		for m := range perReducer[r] {
			totalBytes += int64(len(perReducer[r][m]))
		}
	}

	// Correctness gate before timing anything.
	for r := range perReducer {
		want, err := legacyReduce(perReducer[r], cfg.Copiers)
		if err != nil {
			return nil, fmt.Errorf("shufflebench: legacy reducer %d: %w", r, err)
		}
		var passes int
		got, err := pipelinedReduce(perReducer[r], cfg.Copiers, cfg.MergeFactor, &passes)
		if err != nil {
			return nil, fmt.Errorf("shufflebench: pipelined reducer %d: %w", r, err)
		}
		if !bytes.Equal(got, want) {
			return nil, fmt.Errorf("shufflebench: reducer %d outputs differ (%d vs %d bytes)", r, len(got), len(want))
		}
	}

	res := &ShuffleBenchResult{Config: cfg, SegmentMB: float64(totalBytes) / (1 << 20)}
	best := func(engine func(r int) error) (time.Duration, error) {
		var b time.Duration
		for i := 0; i < cfg.Reps; i++ {
			d, err := runWave(cfg.Reducers, engine)
			if err != nil {
				return 0, err
			}
			if b == 0 || d < b {
				b = d
			}
		}
		return b, nil
	}

	legacyBest, err := best(func(r int) error {
		_, err := legacyReduce(perReducer[r], cfg.Copiers)
		return err
	})
	if err != nil {
		return nil, err
	}
	var passes int
	var passMu sync.Mutex
	pipeBest, err := best(func(r int) error {
		var p int
		_, err := pipelinedReduce(perReducer[r], cfg.Copiers, cfg.MergeFactor, &p)
		passMu.Lock()
		passes += p
		passMu.Unlock()
		return err
	})
	if err != nil {
		return nil, err
	}

	res.LegacyMs = float64(legacyBest.Microseconds()) / 1000
	res.PipelinedMs = float64(pipeBest.Microseconds()) / 1000
	if res.PipelinedMs > 0 {
		res.Speedup = res.LegacyMs / res.PipelinedMs
	}
	res.MergePasses = passes / (cfg.Reps * cfg.Reducers)
	return res, nil
}

// MarshalShuffleBench renders the result as the BENCH_shuffle.json body.
func MarshalShuffleBench(r *ShuffleBenchResult) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RenderShuffleBench prints the A/B table.
func RenderShuffleBench(r *ShuffleBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shuffle engine A/B: %d reducers x %d segments, %d keys/segment over %d-key vocab (%.1f MB total)\n",
		r.Config.Reducers, r.Config.Maps, r.Config.KeysPerMap, r.Config.Vocab, r.SegmentMB)
	fmt.Fprintf(&b, "  legacy    (buffer + sort.Strings): %8.1f ms\n", r.LegacyMs)
	fmt.Fprintf(&b, "  pipelined (runs + k-way merge):    %8.1f ms   (%d background passes/reducer, fan-in %d)\n",
		r.PipelinedMs, r.MergePasses, r.Config.MergeFactor)
	fmt.Fprintf(&b, "  speedup: %.2fx\n", r.Speedup)
	return b.String()
}
