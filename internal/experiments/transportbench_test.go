package experiments

import (
	"testing"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/mpi"
	"github.com/ict-repro/mpid/internal/workload"
)

// TestTransportWordCountByteIdentical is the transport suite's equality
// gate as a standalone test: the same deterministic WordCount over every
// transport (plus the ring's copying device emulation, which the bench
// table doesn't sweep) must produce byte-identical canonical output.
// CI runs this under -race: the ring's slot publication and the vectored
// TCP writer are exactly the code a data race would corrupt.
func TestTransportWordCountByteIdentical(t *testing.T) {
	cfg := SmokeTransportBench()
	if err := transportEqualityGate(cfg); err != nil {
		t.Fatal(err)
	}

	// ring+copy against the chan reference, same workload.
	vocab := workload.NewVocabulary(500, 33)
	text := workload.NewTextGenerator(vocab, 1.15, cfg.Seed).BytesOfText(int(cfg.WCBytes))
	splits := mapred.SplitText(text, int(cfg.WCSplit))
	job := liveWordCountJob()
	job.NumReducers = cfg.WCReducers

	outputs := map[string][]kv.Pair{}
	for _, name := range []string{"chan", "ring+copy"} {
		tname := name
		result, err := mapred.RunOnWorld(job, splits, cfg.WCMappers, func(n int) (*mpi.World, error) {
			return NewTransportWorld(tname, n)
		})
		if err != nil {
			t.Fatalf("wordcount over %s: %v", name, err)
		}
		outputs[name] = canonicalPairs(result)
	}
	if !pairsEqual(outputs["chan"], outputs["ring+copy"]) {
		t.Fatal("ring+copy wordcount output differs from chan")
	}
}

// TestNewTransportWorldRejectsUnknown pins the error path every
// -transport flag shares.
func TestNewTransportWorldRejectsUnknown(t *testing.T) {
	if _, err := NewTransportWorld("carrier-pigeon", 2); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
