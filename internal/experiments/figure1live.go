package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/hadoopsim"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

// Figure1LiveResult pairs a live WordCount run's jobtracker report with
// the simulator's copy-share prediction at the same input size, so the
// measured per-reducer copy/sort/reduce breakdown (Figure 1) and
// copy-share of total task time (Table I) can be read next to the
// modelled ones.
type Figure1LiveResult struct {
	SizeBytes int64
	Report    *hadoop.JobReport
	// SimCopyPercent is hadoopsim's Table I metric for WordCount at the
	// same input size.
	SimCopyPercent float64
}

// Figure1Live runs the live WordCount on the mini-Hadoop engine (RPC
// heartbeats, HTTP shuffle, slot scheduling) and collects the
// jobtracker's per-task phase report — the measured counterpart of the
// Figure 1 the simulator reproduces at paper scale. The input is small
// enough for one machine, so the absolute times are milliseconds, not the
// paper's thousands of seconds; the structure (per-reducer copy/sort/
// reduce split, copy share) is what carries over.
func Figure1Live(sizeBytes int64) (*Figure1LiveResult, error) {
	return Figure1LiveAt(sizeBytes, "")
}

// Figure1LiveAt is Figure1Live with a live admin endpoint (metrics, trace,
// timeline, pprof) bound at adminAddr for the duration of the run; ""
// disables it. The returned report carries the job's full span trace
// either way, so a post-run Chrome export never needs the endpoint.
func Figure1LiveAt(sizeBytes int64, adminAddr string) (*Figure1LiveResult, error) {
	vocab := workload.NewVocabulary(2_000, 33)
	text := workload.NewTextGenerator(vocab, 1.15, sizeBytes).BytesOfText(int(sizeBytes))
	splits := mapred.SplitText(text, 64<<10)

	// Same cluster shape and heartbeat scaling as Figure6Live: 64 KB tasks
	// get a 25 ms heartbeat where the paper pairs 64 MB tasks with 3 s.
	_, report, err := hadoop.RunWithReport(liveWordCountJob(), splits, hadoop.Config{
		NumTrackers: 4, MapSlots: 1, ReduceSlots: 1,
		Heartbeat: 25 * time.Millisecond,
		AdminAddr: adminAddr,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: live figure 1 at %d bytes: %w", sizeBytes, err)
	}
	sim := hadoopsim.Run(hadoopsim.WordCount(sizeBytes))
	return &Figure1LiveResult{
		SizeBytes:      sizeBytes,
		Report:         report,
		SimCopyPercent: sim.CopyPercent(),
	}, nil
}

// RenderFigure1Live prints the live report and the live-vs-simulated
// copy-share comparison.
func RenderFigure1Live(r *Figure1LiveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 (live): WordCount %dKB on the real mini-Hadoop engine\n\n", r.SizeBytes>>10)
	b.WriteString(r.Report.String())
	fmt.Fprintf(&b, "\ncopy share of all task time: %.1f%% live vs %.1f%% simulated (hadoopsim WordCount, same input)\n",
		r.Report.CopyShareOfTotal(), r.SimCopyPercent)
	b.WriteString("(the live copy share includes real heartbeat-paced mapLocations polling and HTTP\n fetches; the simulator models the paper's cluster, so agreement is structural, not exact)\n")
	return b.String()
}
