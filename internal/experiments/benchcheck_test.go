package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// writeBench drops one baseline file into dir.
func writeBench(t *testing.T, dir, suite, body string) {
	t.Helper()
	path := filepath.Join(dir, "BENCH_"+suite+".json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBenchBaselines(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, "shuffle", `{"speedup": 1.9}`)
	writeBench(t, dir, "mpid", `{"speedup_vs_legacy": 2.0, "speedup_vs_hadoop": 3.5}`)
	writeBench(t, dir, "serve", `{"fairness_ratio": 1.8}`)
	writeBench(t, dir, "workloads", `{"workloads": [
		{"name": "wordcount", "speedup_vs_hadoop": 3.3},
		{"name": "terasort", "speedup_vs_hadoop": 2.1}
	]}`)
	writeBench(t, dir, "shufflebytes", `{"rows": [
		{"workload": "wordcount", "mode": "hadoop", "bytes_ratio": 1.0},
		{"workload": "wordcount", "mode": "hadoop-nodecombine", "bytes_ratio": 0.14},
		{"workload": "wordcount", "mode": "coded-r1", "bytes_ratio": 1.0},
		{"workload": "wordcount", "mode": "coded-r2", "bytes_ratio": 0.84}
	]}`)
	writeBench(t, dir, "transport", `{"ring_vs_chan_small_p50": 0.95, "max_allocs_per_op": 0}`)

	base, skipped, err := loadBenchBaselines(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v, want none", skipped)
	}
	if got := len(base["shuffle"]); got != 1 {
		t.Fatalf("shuffle metrics = %d, want 1", got)
	}
	if m := base["shuffle"][0]; m.name != "speedup" || m.value != 1.9 || m.lowerBetter {
		t.Fatalf("shuffle metric = %+v", m)
	}
	if got := len(base["mpid"]); got != 2 {
		t.Fatalf("mpid metrics = %d, want 2", got)
	}
	if m := base["serve"][0]; m.name != "fairness_ratio" || !m.lowerBetter {
		t.Fatalf("serve metric = %+v, want lower-better fairness_ratio", m)
	}
	wantWork := map[string]float64{
		"wordcount.speedup_vs_hadoop": 3.3,
		"terasort.speedup_vs_hadoop":  2.1,
	}
	if got := len(base["workloads"]); got != len(wantWork) {
		t.Fatalf("workloads metrics = %d, want %d", got, len(wantWork))
	}
	for _, m := range base["workloads"] {
		if wantWork[m.name] != m.value {
			t.Fatalf("workloads metric %s = %v, want %v", m.name, m.value, wantWork[m.name])
		}
	}
	// Baseline modes (ratio 1.0 by construction) are excluded; reduction
	// modes gate on the absolute invariant "still below 1.0", not on the
	// committed magnitude, which is input-scale-dependent.
	if got := len(base["shufflebytes"]); got != 2 {
		t.Fatalf("shufflebytes metrics = %d, want 2", got)
	}
	for _, m := range base["shufflebytes"] {
		if !m.lowerBetter || !m.absolute || m.value != 1.0 {
			t.Fatalf("shufflebytes metric = %+v, want absolute lower-better 1.0", m)
		}
	}
	// Transport gates are absolute invariants regardless of the committed
	// magnitudes: ring still below chan (1.0), allocs still zero.
	wantTransport := map[string]float64{"ring_vs_chan_small_p50": 1.0, "max_allocs_per_op": 0.0}
	if got := len(base["transport"]); got != len(wantTransport) {
		t.Fatalf("transport metrics = %d, want %d", got, len(wantTransport))
	}
	for _, m := range base["transport"] {
		if want, ok := wantTransport[m.name]; !ok || !m.lowerBetter || !m.absolute || m.value != want {
			t.Fatalf("transport metric = %+v, want absolute lower-better %v", m, wantTransport)
		}
	}
}

func TestLoadBenchBaselinesMissingFilesSkipped(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, "shuffle", `{"speedup": 1.9}`)
	base, skipped, err := loadBenchBaselines(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 || len(base["shuffle"]) != 1 {
		t.Fatalf("base = %v, want only shuffle", base)
	}
	want := map[string]bool{"mpid": true, "serve": true, "workloads": true, "shufflebytes": true, "transport": true}
	if len(skipped) != len(want) {
		t.Fatalf("skipped = %v, want %v", skipped, want)
	}
	for _, s := range skipped {
		if !want[s] {
			t.Fatalf("unexpected skipped suite %q", s)
		}
	}
}

func TestLoadBenchBaselinesMalformed(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, "shuffle", `{"no_speedup_here": true}`)
	if _, _, err := loadBenchBaselines(dir); err == nil {
		t.Fatal("want error for baseline without speedup")
	}
	dir2 := t.TempDir()
	writeBench(t, dir2, "workloads", `{"workloads": "not an array"}`)
	if _, _, err := loadBenchBaselines(dir2); err == nil {
		t.Fatal("want error for non-array workloads")
	}
}

func TestCompareBenchTolerance(t *testing.T) {
	base := map[string][]benchMetric{
		"shuffle": {{name: "speedup", value: 2.0}},
		"serve":   {{name: "fairness_ratio", value: 2.0, lowerBetter: true}},
	}
	cases := []struct {
		name    string
		current map[string]map[string]float64
		wantOK  bool
	}{
		{"within", map[string]map[string]float64{
			"shuffle": {"speedup": 1.5},
			"serve":   {"fairness_ratio": 2.5},
		}, true},
		{"at-boundary", map[string]map[string]float64{
			"shuffle": {"speedup": 1.0}, // exactly baseline*(1-0.5)
			"serve":   {"fairness_ratio": 3.0},
		}, true},
		{"speedup-regressed", map[string]map[string]float64{
			"shuffle": {"speedup": 0.9},
			"serve":   {"fairness_ratio": 2.0},
		}, false},
		{"fairness-regressed", map[string]map[string]float64{
			"shuffle": {"speedup": 2.0},
			"serve":   {"fairness_ratio": 3.1}, // lower-better metric got worse
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := compareBench(base, tc.current, 0.5)
			if res.OK != tc.wantOK {
				t.Fatalf("OK = %v, want %v\n%s", res.OK, tc.wantOK, RenderBenchCheck(res))
			}
			if len(res.Rows) != 2 {
				t.Fatalf("rows = %d, want 2", len(res.Rows))
			}
		})
	}
}

func TestCompareBenchIgnoresMetricsMissingFromCurrent(t *testing.T) {
	base := map[string][]benchMetric{
		"workloads": {
			{name: "wordcount.speedup_vs_hadoop", value: 3.3},
			{name: "exotic.speedup_vs_hadoop", value: 9.9},
		},
	}
	current := map[string]map[string]float64{
		"workloads": {"wordcount.speedup_vs_hadoop": 3.0},
	}
	res := compareBench(base, current, 0.5)
	if !res.OK || len(res.Rows) != 1 {
		t.Fatalf("OK=%v rows=%d, want OK with 1 row", res.OK, len(res.Rows))
	}
}

// TestCommittedBaselinesParse guards the gate against schema drift: the
// real committed BENCH_*.json files at the repo root must keep yielding
// the headline metrics the gate compares.
func TestCommittedBaselinesParse(t *testing.T) {
	base, skipped, err := loadBenchBaselines(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range skipped {
		t.Logf("suite %s has no committed baseline", s)
	}
	for suite, metrics := range base {
		if len(metrics) == 0 {
			t.Errorf("suite %s: baseline present but no metrics extracted", suite)
		}
		for _, m := range metrics {
			// Absolute invariants pin their own threshold (0 is a valid
			// one — "never allocates"); parsed magnitudes must be positive.
			if m.value <= 0 && !m.absolute {
				t.Errorf("suite %s metric %s: non-positive baseline %v", suite, m.name, m.value)
			}
		}
	}
}
