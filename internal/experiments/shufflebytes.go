package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/coded"
	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/workload"
)

// ShuffleBytesBench is the shuffle-byte-reduction benchmark behind
// BENCH_shufflebytes.json: for combiner-friendly suite workloads it
// measures how many bytes each engine actually ships map-to-reduce, under
// three byte-reduction mechanisms, each against its own in-family
// baseline:
//
//   - hadoop vs hadoop-nodecombine: the per-tracker combine stage
//     (hadoop.Config.NodeCombine); bytes are the job registry's
//     shuffle.fetch_bytes, what the reducers pulled over HTTP.
//   - mpid vs mpid-nodearena: the shared per-node arena
//     (mapred.Job.NodeCombine); bytes are the MPI-D send counters.
//   - coded-r1 vs coded-r2/r3: the coded-shuffle prototype
//     (internal/coded); bytes are Stats.ShippedBytes, multicast packets
//     counted once per transmission.
//
// Every mode is gated on byte-identical canonical output against the fast
// MPI-D core before anything is timed, the same rule as the workload
// bench: a byte reduction that changes job output is a bug, not a win.

// ShuffleBytesConfig shapes one bench run.
type ShuffleBytesConfig struct {
	// Mappers is the MPI-D mapper rank count, the Hadoop tracker count and
	// the coded node count (so coded replication r needs r+1 <= Mappers).
	Mappers int `json:"mappers"`
	// HeartbeatMs is the Hadoop engine's scaled heartbeat.
	HeartbeatMs int `json:"heartbeat_ms"`
	// Reps is how many timed runs each mode gets; p50 is reported.
	Reps int `json:"reps"`
	// Replications are the coded-shuffle factors to sweep; 1 is the
	// in-family baseline and is always included.
	Replications []int `json:"replications"`
	// Params holds per-workload parameter overrides, keyed by suite name.
	Params map[string]map[string]int64 `json:"params,omitempty"`
}

// DefaultShuffleBytesBench is the committed-baseline configuration: the
// two suite workloads with the heaviest key duplication (WordCount and the
// inverted index), inputs sized so the shuffle dominates.
func DefaultShuffleBytesBench() ShuffleBytesConfig {
	return ShuffleBytesConfig{
		Mappers: 4, HeartbeatMs: 25, Reps: 5, Replications: []int{1, 2, 3},
		Params: map[string]map[string]int64{
			"wordcount": {"bytes": 2 << 20, "split": 64 << 10},
			"invindex":  {"docs": 200, "lines": 60, "split": 16 << 10},
		},
	}
}

// SmokeShuffleBytesBench is a seconds-scale configuration for CI smoke
// runs: two reps, r up to 2, inputs shrunk but still split finely enough
// that every mapper rank works — node-level combining needs co-located
// tasks to merge.
func SmokeShuffleBytesBench() ShuffleBytesConfig {
	return ShuffleBytesConfig{
		Mappers: 4, HeartbeatMs: 25, Reps: 2, Replications: []int{1, 2},
		Params: map[string]map[string]int64{
			"wordcount": {"bytes": 256 << 10, "split": 8 << 10},
			"invindex":  {"docs": 80, "lines": 20, "split": 4 << 10},
		},
	}
}

// shuffleBytesWorkloads are the suite specs the bench runs: the ones whose
// reducers derive sound combiners, so node-level combining has duplicate
// keys to fold. TeraSort/join/pagerank ship combiner-free and would only
// measure noise.
var shuffleBytesWorkloads = []string{"wordcount", "invindex"}

// ShuffleBytesRow is one (workload, mode) measurement.
type ShuffleBytesRow struct {
	Workload string `json:"workload"`
	// Mode is one of hadoop, hadoop-nodecombine, mpid, mpid-nodearena, or
	// coded-rN.
	Mode string `json:"mode"`
	// Bytes is the shipped shuffle bytes of one run (the gate run).
	Bytes int64 `json:"bytes"`
	// P50Ms is the median end-to-end job time over Reps runs.
	P50Ms float64 `json:"p50_ms"`
	// BytesRatio is Bytes over the mode family's baseline bytes (hadoop,
	// mpid, coded-r1 respectively); lower is better, 1.0 for baselines.
	BytesRatio float64 `json:"bytes_ratio"`
}

// ShuffleBytesResult is the full measurement, the schema of
// BENCH_shufflebytes.json.
type ShuffleBytesResult struct {
	Config    ShuffleBytesConfig `json:"config"`
	Rows      []ShuffleBytesRow  `json:"rows"`
	Timestamp string             `json:"timestamp,omitempty"`
}

// shuffleBytesMode is one engine configuration: a runner returning the
// canonical output and the shipped bytes, plus the in-family baseline mode
// its ratio is computed against ("" for baselines themselves).
type shuffleBytesMode struct {
	name     string
	baseline string
	run      func() ([]kv.Pair, int64, error)
}

// shuffleBytesModes builds the mode list for one workload case.
func shuffleBytesModes(job mapred.Job, splits []mapred.Split, cfg ShuffleBytesConfig) []shuffleBytesMode {
	hadoopRun := func(nodeCombine bool) func() ([]kv.Pair, int64, error) {
		return func() ([]kv.Pair, int64, error) {
			reg := metrics.NewRegistry()
			res, err := hadoop.Run(job, splits, hadoop.Config{
				NumTrackers: cfg.Mappers, MapSlots: 1, ReduceSlots: 1,
				Heartbeat:   time.Duration(cfg.HeartbeatMs) * time.Millisecond,
				NodeCombine: nodeCombine,
				Metrics:     reg,
			})
			if err != nil {
				return nil, 0, err
			}
			return res.Pairs(), reg.Snapshot().Counter("shuffle.fetch_bytes"), nil
		}
	}
	mpidRun := func(nodeCombine bool) func() ([]kv.Pair, int64, error) {
		return func() ([]kv.Pair, int64, error) {
			j := job
			j.NodeCombine = nodeCombine
			res, err := mapred.Run(j, splits, cfg.Mappers)
			if err != nil {
				return nil, 0, err
			}
			return res.Pairs(), res.MapCounters.BytesSent, nil
		}
	}
	codedRun := func(r int) func() ([]kv.Pair, int64, error) {
		return func() ([]kv.Pair, int64, error) {
			res, st, err := coded.Run(job, splits, coded.Options{Nodes: cfg.Mappers, Replication: r})
			if err != nil {
				return nil, 0, err
			}
			return res.Pairs(), st.ShippedBytes, nil
		}
	}
	modes := []shuffleBytesMode{
		{name: "hadoop", run: hadoopRun(false)},
		{name: "hadoop-nodecombine", baseline: "hadoop", run: hadoopRun(true)},
		{name: "mpid", run: mpidRun(false)},
		{name: "mpid-nodearena", baseline: "mpid", run: mpidRun(true)},
	}
	rs := cfg.Replications
	if len(rs) == 0 {
		rs = []int{1, 2}
	}
	for _, r := range rs {
		m := shuffleBytesMode{name: fmt.Sprintf("coded-r%d", r), run: codedRun(r)}
		if r != 1 {
			m.baseline = "coded-r1"
		}
		modes = append(modes, m)
	}
	return modes
}

// RunShuffleBytesBench runs every (workload, mode) cell: gate on
// byte-identical output against the fast MPI-D core, record the gate run's
// shipped bytes, then time Reps runs and report the p50.
func RunShuffleBytesBench(cfg ShuffleBytesConfig) (*ShuffleBytesResult, error) {
	result := &ShuffleBytesResult{Config: cfg}
	suite := workload.Suite()
	for _, name := range shuffleBytesWorkloads {
		var spec *workload.Spec
		for i := range suite {
			if suite[i].Name == name {
				spec = &suite[i]
				break
			}
		}
		if spec == nil {
			return nil, fmt.Errorf("shufflebytes: no suite spec %q", name)
		}
		job, splits, err := spec.Build(cfg.Params[name])
		if err != nil {
			return nil, fmt.Errorf("shufflebytes: build %s: %w", name, err)
		}
		want, err := func() ([]kv.Pair, error) {
			res, err := mapred.Run(job, splits, cfg.Mappers)
			if err != nil {
				return nil, err
			}
			return res.Pairs(), nil
		}()
		if err != nil {
			return nil, fmt.Errorf("shufflebytes: %s: reference run: %w", name, err)
		}
		if len(want) == 0 {
			return nil, fmt.Errorf("shufflebytes: %s: reference run produced no output", name)
		}

		baselineBytes := map[string]int64{}
		for _, m := range shuffleBytesModes(job, splits, cfg) {
			pairs, bytes, err := m.run()
			if err != nil {
				return nil, fmt.Errorf("shufflebytes: %s/%s: %w", name, m.name, err)
			}
			if !pairsEqual(want, pairs) {
				return nil, fmt.Errorf("shufflebytes: %s/%s: output differs from the MPI-D reference (%d vs %d pairs)",
					name, m.name, len(pairs), len(want))
			}
			if bytes <= 0 {
				return nil, fmt.Errorf("shufflebytes: %s/%s: no shipped bytes recorded", name, m.name)
			}
			var t metrics.Timer
			for i := 0; i < cfg.Reps; i++ {
				start := time.Now()
				if _, _, err := m.run(); err != nil {
					return nil, fmt.Errorf("shufflebytes: %s/%s rep %d: %w", name, m.name, i, err)
				}
				t.Observe(float64(time.Since(start).Microseconds()) / 1000)
			}
			row := ShuffleBytesRow{Workload: name, Mode: m.name, Bytes: bytes, P50Ms: t.Stats().P50}
			if m.baseline == "" {
				baselineBytes[m.name] = bytes
				row.BytesRatio = 1
			} else {
				base, ok := baselineBytes[m.baseline]
				if !ok || base == 0 {
					return nil, fmt.Errorf("shufflebytes: %s/%s: baseline %s missing", name, m.name, m.baseline)
				}
				row.BytesRatio = float64(bytes) / float64(base)
			}
			result.Rows = append(result.Rows, row)
		}
	}
	return result, nil
}

// MarshalShuffleBytesBench renders the result as the
// BENCH_shufflebytes.json body.
func MarshalShuffleBytesBench(r *ShuffleBytesResult) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RenderShuffleBytesBench prints the per-cell table.
func RenderShuffleBytesBench(r *ShuffleBytesResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "shuffle-byte reduction (%d mappers/nodes, %d reps, p50 ms; gated on byte-identical output)\n",
		r.Config.Mappers, r.Config.Reps)
	fmt.Fprintf(&b, "  %-11s %-20s %12s %8s %10s\n", "workload", "mode", "bytes", "ratio", "p50 ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-11s %-20s %12d %7.2fx %10.1f\n",
			row.Workload, row.Mode, row.Bytes, row.BytesRatio, row.P50Ms)
	}
	return b.String()
}
