package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/bufpool"
	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

// MPIDBench is the MPI-D core A/B benchmark behind BENCH_mpid.json: the
// same live WordCount job run three ways — through the optimized MPI-D
// core (arena send buffer, pooled partition buffers, streaming receive
// merge), through the legacy core (per-pair map buffering, buffer-all
// grouped drain; Job.LegacySend + Job.LegacyGroup), and through the real
// mini-Hadoop engine (RPC heartbeats + HTTP shuffle). All three run the
// identical job on identical splits, and their outputs are checked for
// equality before anything is timed — the live analogue of the paper's
// Figure 6 with the fast path's A/B switch exposed.

// MPIDBenchConfig shapes one benchmark run.
type MPIDBenchConfig struct {
	// SizeBytes is the generated WordCount input size.
	SizeBytes int64 `json:"size_bytes"`
	// Vocab is the distinct-word universe of the generated text.
	Vocab int `json:"vocab"`
	// SplitBytes is the input split size handed to both engines.
	SplitBytes int `json:"split_bytes"`
	// Mappers is the MPI-D mapper rank count (and Hadoop tracker count).
	Mappers int `json:"mappers"`
	// Reducers is the reducer count for both engines.
	Reducers int `json:"reducers"`
	// HeartbeatMs is the Hadoop engine's scaled heartbeat (see Figure6Live:
	// 25 ms per 64 KB task keeps the scheduling-to-work ratio of the
	// paper's 3 s / 64 MB cluster).
	HeartbeatMs int `json:"heartbeat_ms"`
	// Reps is how many times each path runs; the best time is kept.
	Reps int `json:"reps"`
	// Seed fixes the generated text.
	Seed int64 `json:"seed"`
}

// DefaultMPIDBench is the committed-baseline configuration. The 50k-word
// vocabulary keeps the intermediate data wide enough that combining does
// not collapse it — buffering, realignment and the grouped drain stay on
// the measured path instead of washing out against map time.
func DefaultMPIDBench() MPIDBenchConfig {
	return MPIDBenchConfig{
		SizeBytes: 8 << 20, Vocab: 50000, SplitBytes: 64 << 10,
		Mappers: 4, Reducers: 2, HeartbeatMs: 25, Reps: 5, Seed: 1,
	}
}

// SmokeMPIDBench is a seconds-scale configuration for CI smoke runs.
func SmokeMPIDBench() MPIDBenchConfig {
	return MPIDBenchConfig{
		SizeBytes: 1 << 20, Vocab: 10000, SplitBytes: 64 << 10,
		Mappers: 4, Reducers: 2, HeartbeatMs: 25, Reps: 2, Seed: 1,
	}
}

// MPIDBenchResult is one A/B/C measurement, the schema of BENCH_mpid.json.
type MPIDBenchResult struct {
	Config          MPIDBenchConfig `json:"config"`
	InputMB         float64         `json:"input_mb"`
	HadoopMs        float64         `json:"hadoop_ms"`            // best-of-reps, mini-Hadoop engine
	LegacyCoreMs    float64         `json:"legacy_core_ms"`       // best-of-reps, MPI-D legacy send+group
	FastCoreMs      float64         `json:"fast_core_ms"`         // best-of-reps, optimized MPI-D core
	SpeedupVsLegacy float64         `json:"speedup_vs_legacy"`    // LegacyCoreMs / FastCoreMs
	SpeedupVsHadoop float64         `json:"speedup_vs_hadoop"`    // HadoopMs / FastCoreMs
	Timestamp       string          `json:"timestamp,omitempty"`
}

// canonicalPairs sorts a result's pairs by key then value so outputs can
// be compared across engines that emit in different orders.
func canonicalPairs(res *mapred.Result) []kv.Pair {
	pairs := append([]kv.Pair(nil), res.Pairs()...)
	sort.Slice(pairs, func(i, j int) bool {
		if c := bytes.Compare(pairs[i].Key, pairs[j].Key); c != 0 {
			return c < 0
		}
		return bytes.Compare(pairs[i].Value, pairs[j].Value) < 0
	})
	return pairs
}

func pairsEqual(a, b []kv.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// mpidJob builds the MPI-D job for one path of the A/B.
func mpidJob(legacy bool, pool *bufpool.Pool) mapred.Job {
	job := liveWordCountJob()
	job.LegacySend = legacy
	job.LegacyGroup = legacy
	job.Pool = pool
	return job
}

// RunMPIDBench generates the input once, validates that all three paths
// produce the same reduced output, then times Reps runs of each and
// reports the best wall time per path.
func RunMPIDBench(cfg MPIDBenchConfig) (*MPIDBenchResult, error) {
	vocab := workload.NewVocabulary(cfg.Vocab, 33)
	text := workload.NewTextGenerator(vocab, 1.15, cfg.Seed).BytesOfText(int(cfg.SizeBytes))
	splits := mapred.SplitText(text, cfg.SplitBytes)
	job := liveWordCountJob()
	job.NumReducers = cfg.Reducers
	hcfg := hadoop.Config{
		NumTrackers: cfg.Mappers, MapSlots: 1, ReduceSlots: 1,
		Heartbeat: time.Duration(cfg.HeartbeatMs) * time.Millisecond,
	}
	pool := bufpool.New()

	runFast := func() (*mapred.Result, error) {
		j := mpidJob(false, pool)
		j.NumReducers = cfg.Reducers
		return mapred.Run(j, splits, cfg.Mappers)
	}
	runLegacy := func() (*mapred.Result, error) {
		j := mpidJob(true, nil)
		j.NumReducers = cfg.Reducers
		return mapred.Run(j, splits, cfg.Mappers)
	}
	runHadoop := func() (*mapred.Result, error) {
		return hadoop.Run(job, splits, hcfg)
	}

	// Correctness gate before timing anything: all three paths must reduce
	// to the same key/value set.
	fastRes, err := runFast()
	if err != nil {
		return nil, fmt.Errorf("mpidbench: fast core: %w", err)
	}
	legacyRes, err := runLegacy()
	if err != nil {
		return nil, fmt.Errorf("mpidbench: legacy core: %w", err)
	}
	hadoopRes, err := runHadoop()
	if err != nil {
		return nil, fmt.Errorf("mpidbench: hadoop engine: %w", err)
	}
	want := canonicalPairs(fastRes)
	if got := canonicalPairs(legacyRes); !pairsEqual(want, got) {
		return nil, fmt.Errorf("mpidbench: legacy core output differs from fast core (%d vs %d pairs)", len(got), len(want))
	}
	if got := canonicalPairs(hadoopRes); !pairsEqual(want, got) {
		return nil, fmt.Errorf("mpidbench: hadoop output differs from fast core (%d vs %d pairs)", len(got), len(want))
	}

	best := func(run func() (*mapred.Result, error)) (time.Duration, error) {
		var b time.Duration
		for i := 0; i < cfg.Reps; i++ {
			start := time.Now()
			if _, err := run(); err != nil {
				return 0, err
			}
			if d := time.Since(start); b == 0 || d < b {
				b = d
			}
		}
		return b, nil
	}

	res := &MPIDBenchResult{Config: cfg, InputMB: float64(len(text)) / (1 << 20)}
	fastBest, err := best(runFast)
	if err != nil {
		return nil, fmt.Errorf("mpidbench: fast core: %w", err)
	}
	legacyBest, err := best(runLegacy)
	if err != nil {
		return nil, fmt.Errorf("mpidbench: legacy core: %w", err)
	}
	hadoopBest, err := best(runHadoop)
	if err != nil {
		return nil, fmt.Errorf("mpidbench: hadoop engine: %w", err)
	}

	res.FastCoreMs = float64(fastBest.Microseconds()) / 1000
	res.LegacyCoreMs = float64(legacyBest.Microseconds()) / 1000
	res.HadoopMs = float64(hadoopBest.Microseconds()) / 1000
	if res.FastCoreMs > 0 {
		res.SpeedupVsLegacy = res.LegacyCoreMs / res.FastCoreMs
		res.SpeedupVsHadoop = res.HadoopMs / res.FastCoreMs
	}
	return res, nil
}

// MarshalMPIDBench renders the result as the BENCH_mpid.json body.
func MarshalMPIDBench(r *MPIDBenchResult) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RenderMPIDBench prints the A/B/C table.
func RenderMPIDBench(r *MPIDBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MPI-D core A/B (live WordCount, %.1f MB input, %d mappers -> %d reducers)\n",
		r.InputMB, r.Config.Mappers, r.Config.Reducers)
	fmt.Fprintf(&b, "  hadoop engine (RPC + HTTP shuffle):      %8.1f ms\n", r.HadoopMs)
	fmt.Fprintf(&b, "  mpi-d legacy core (map buffer + drain):  %8.1f ms\n", r.LegacyCoreMs)
	fmt.Fprintf(&b, "  mpi-d fast core (arena + stream merge):  %8.1f ms\n", r.FastCoreMs)
	fmt.Fprintf(&b, "  speedup vs legacy core: %.2fx   vs hadoop: %.2fx\n", r.SpeedupVsLegacy, r.SpeedupVsHadoop)
	return b.String()
}
