package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/bufpool"
	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/workload"
)

// WorkloadBench is the workload-suite benchmark behind BENCH_workloads.json:
// every workload in workload.Suite — WordCount, sampled-range-partitioner
// TeraSort (uniform and Zipf-skewed), inverted index, grep, the two-table
// join, and a chained multi-round PageRank — run on all three engines (fast
// MPI-D core, legacy MPI-D core, mini-Hadoop). Each workload is gated on
// byte-identical canonical output across the engines before a single timing
// rep runs; a workload whose engines disagree fails the whole bench. The
// timings are per-workload p50s, so the committed JSON is comparable across
// machines with different tail noise.

// WorkloadBenchConfig shapes one suite run.
type WorkloadBenchConfig struct {
	// Mappers is the MPI-D mapper rank count (and Hadoop tracker count).
	Mappers int `json:"mappers"`
	// HeartbeatMs is the Hadoop engine's scaled heartbeat.
	HeartbeatMs int `json:"heartbeat_ms"`
	// Reps is how many timed runs each engine gets; p50 is reported.
	Reps int `json:"reps"`
	// PageRankRounds is how many rounds the chained PageRank case runs;
	// each round's output becomes the next round's input in memory.
	PageRankRounds int `json:"pagerank_rounds"`
	// Params holds per-workload parameter overrides, keyed by suite name.
	// Missing workloads (and missing keys) use the suite defaults.
	Params map[string]map[string]int64 `json:"params,omitempty"`
}

// DefaultWorkloadBench is the committed-baseline configuration: inputs
// sized so shuffle and reduce are on the measured path, not just startup.
func DefaultWorkloadBench() WorkloadBenchConfig {
	return WorkloadBenchConfig{
		Mappers: 4, HeartbeatMs: 25, Reps: 5, PageRankRounds: 5,
		Params: map[string]map[string]int64{
			"wordcount": {"bytes": 2 << 20, "split": 64 << 10},
			"terasort":  {"records": 100_000, "splits": 16},
			"invindex":  {"docs": 200, "lines": 60, "split": 16 << 10},
			"grep":      {"bytes": 2 << 20, "split": 64 << 10},
			"join":      {"users": 2_000, "orders": 20_000, "split": 16 << 10},
			"pagerank":  {"vertices": 2_000, "degree": 8, "split": 16 << 10},
		},
	}
}

// SmokeWorkloadBench is a seconds-scale configuration for CI smoke runs:
// suite-default input sizes, two reps, three PageRank rounds.
func SmokeWorkloadBench() WorkloadBenchConfig {
	return WorkloadBenchConfig{Mappers: 4, HeartbeatMs: 25, Reps: 2, PageRankRounds: 3}
}

// WorkloadBenchRow is one workload's measurement.
type WorkloadBenchRow struct {
	// Name is the bench-row name; "terasort-skew" is the terasort spec with
	// Zipf(1.5) keys, every other row matches its suite spec name.
	Name string `json:"name"`
	// OutputPairs is the canonical output size all three engines agreed on.
	OutputPairs int `json:"output_pairs"`
	// ShuffleBytes is the map-to-reduce traffic of the fast core's gate run
	// (summed over rounds for chained PageRank).
	ShuffleBytes int64   `json:"shuffle_bytes"`
	FastP50Ms    float64 `json:"fast_p50_ms"`
	LegacyP50Ms  float64 `json:"legacy_p50_ms"`
	HadoopP50Ms  float64 `json:"hadoop_p50_ms"`
	// SpeedupVsHadoop is HadoopP50Ms / FastP50Ms.
	SpeedupVsHadoop float64 `json:"speedup_vs_hadoop"`
}

// WorkloadBenchResult is the full suite measurement, the schema of
// BENCH_workloads.json.
type WorkloadBenchResult struct {
	Config    WorkloadBenchConfig `json:"config"`
	Workloads []WorkloadBenchRow  `json:"workloads"`
	Timestamp string              `json:"timestamp,omitempty"`
}

// benchCase is one bench row: a suite spec plus parameter overrides.
type benchCase struct {
	name   string
	spec   string
	params map[string]int64
}

// benchCases expands the suite into bench rows, adding the skewed-key
// TeraSort row (the configuration that motivated the sampled range
// partitioner and the stable Pairs sort) and applying config overrides.
func benchCases(cfg WorkloadBenchConfig) []benchCase {
	var cases []benchCase
	for _, spec := range workload.Suite() {
		cases = append(cases, benchCase{name: spec.Name, spec: spec.Name, params: cfg.Params[spec.Name]})
		if spec.Name == "terasort" {
			skewed := map[string]int64{"skew": 150}
			for k, v := range cfg.Params[spec.Name] {
				skewed[k] = v
			}
			cases = append(cases, benchCase{name: "terasort-skew", spec: spec.Name, params: skewed})
		}
	}
	return cases
}

// engineRunner runs one workload case end to end on one engine and returns
// its canonical output plus the shuffle bytes it moved.
type engineRunner func() ([]kv.Pair, int64, error)

// caseRunners builds the three engine runners for a case. PageRank is the
// chained case: every engine runs cfg.PageRankRounds rounds, each round's
// canonical output feeding the next round's splits in memory — the input is
// read exactly once, which is the MPI-D iterative advantage the paper's
// Hadoop baseline cannot express without re-materializing to the DFS.
func caseRunners(c benchCase, cfg WorkloadBenchConfig) (fast, legacy, had engineRunner, err error) {
	var spec *workload.Spec
	suite := workload.Suite()
	for i := range suite {
		if suite[i].Name == c.spec {
			spec = &suite[i]
			break
		}
	}
	if spec == nil {
		return nil, nil, nil, fmt.Errorf("workloadbench: no suite spec %q", c.spec)
	}
	job, splits, err := spec.Build(c.params)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("workloadbench: build %s: %w", c.name, err)
	}
	hcfg := hadoop.Config{
		NumTrackers: cfg.Mappers, MapSlots: 1, ReduceSlots: 1,
		Heartbeat: time.Duration(cfg.HeartbeatMs) * time.Millisecond,
	}
	pool := bufpool.New()

	single := func(run func(mapred.Job, []mapred.Split) (*mapred.Result, error), j mapred.Job) engineRunner {
		return func() ([]kv.Pair, int64, error) {
			res, err := run(j, splits)
			if err != nil {
				return nil, 0, err
			}
			return res.Pairs(), res.MapCounters.BytesSent, nil
		}
	}
	// Chained PageRank: same job every round, splits rebuilt from the
	// previous round's canonical output.
	chained := func(run func(mapred.Job, []mapred.Split) (*mapred.Result, error), j mapred.Job) engineRunner {
		splitBytes := int(workload.Param(c.params, "split", 4<<10))
		return func() ([]kv.Pair, int64, error) {
			cur := splits
			var pairs []kv.Pair
			var shuffled int64
			for round := 0; round < cfg.PageRankRounds; round++ {
				res, err := run(j, cur)
				if err != nil {
					return nil, 0, fmt.Errorf("round %d: %w", round, err)
				}
				pairs = res.Pairs()
				shuffled += res.MapCounters.BytesSent
				cur = workload.PageRankNextSplits(pairs, splitBytes)
			}
			return pairs, shuffled, nil
		}
	}

	fastJob, legacyJob := job, job
	fastJob.Pool = pool
	legacyJob.LegacySend = true
	legacyJob.LegacyGroup = true

	runMPID := func(j mapred.Job, s []mapred.Split) (*mapred.Result, error) {
		return mapred.Run(j, s, cfg.Mappers)
	}
	runHadoop := func(j mapred.Job, s []mapred.Split) (*mapred.Result, error) {
		return hadoop.Run(j, s, hcfg)
	}

	build := single
	if c.spec == "pagerank" {
		build = chained
	}
	return build(runMPID, fastJob), build(runMPID, legacyJob), build(runHadoop, job), nil
}

// RunWorkloadBench runs the full suite: for every case, gate all three
// engines on byte-identical canonical output, then time Reps runs per
// engine and report p50s.
func RunWorkloadBench(cfg WorkloadBenchConfig) (*WorkloadBenchResult, error) {
	result := &WorkloadBenchResult{Config: cfg}
	for _, c := range benchCases(cfg) {
		fast, legacy, had, err := caseRunners(c, cfg)
		if err != nil {
			return nil, err
		}

		// Equality gate: nothing is timed until the three engines agree
		// byte for byte on the canonical output.
		want, shuffleBytes, err := fast()
		if err != nil {
			return nil, fmt.Errorf("workloadbench: %s: fast core: %w", c.name, err)
		}
		if len(want) == 0 {
			return nil, fmt.Errorf("workloadbench: %s: fast core produced no output", c.name)
		}
		legacyOut, _, err := legacy()
		if err != nil {
			return nil, fmt.Errorf("workloadbench: %s: legacy core: %w", c.name, err)
		}
		if !pairsEqual(want, legacyOut) {
			return nil, fmt.Errorf("workloadbench: %s: legacy core output differs from fast core (%d vs %d pairs)", c.name, len(legacyOut), len(want))
		}
		hadoopOut, _, err := had()
		if err != nil {
			return nil, fmt.Errorf("workloadbench: %s: hadoop engine: %w", c.name, err)
		}
		if !pairsEqual(want, hadoopOut) {
			return nil, fmt.Errorf("workloadbench: %s: hadoop output differs from fast core (%d vs %d pairs)", c.name, len(hadoopOut), len(want))
		}

		p50 := func(run engineRunner) (float64, error) {
			var t metrics.Timer
			for i := 0; i < cfg.Reps; i++ {
				start := time.Now()
				if _, _, err := run(); err != nil {
					return 0, err
				}
				t.Observe(float64(time.Since(start).Microseconds()) / 1000)
			}
			return t.Stats().P50, nil
		}
		row := WorkloadBenchRow{Name: c.name, OutputPairs: len(want), ShuffleBytes: shuffleBytes}
		if row.FastP50Ms, err = p50(fast); err != nil {
			return nil, fmt.Errorf("workloadbench: %s: fast core: %w", c.name, err)
		}
		if row.LegacyP50Ms, err = p50(legacy); err != nil {
			return nil, fmt.Errorf("workloadbench: %s: legacy core: %w", c.name, err)
		}
		if row.HadoopP50Ms, err = p50(had); err != nil {
			return nil, fmt.Errorf("workloadbench: %s: hadoop engine: %w", c.name, err)
		}
		if row.FastP50Ms > 0 {
			row.SpeedupVsHadoop = row.HadoopP50Ms / row.FastP50Ms
		}
		result.Workloads = append(result.Workloads, row)
	}
	return result, nil
}

// MarshalWorkloadBench renders the result as the BENCH_workloads.json body.
func MarshalWorkloadBench(r *WorkloadBenchResult) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RenderWorkloadBench prints the per-workload table.
func RenderWorkloadBench(r *WorkloadBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload suite (%d mappers, %d reps, p50 ms; gated on byte-identical 3-engine output)\n",
		r.Config.Mappers, r.Config.Reps)
	fmt.Fprintf(&b, "  %-14s %10s %12s %10s %10s %10s %8s\n",
		"workload", "pairs", "shuffle B", "fast", "legacy", "hadoop", "vs had")
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "  %-14s %10d %12d %10.1f %10.1f %10.1f %7.2fx\n",
			w.Name, w.OutputPairs, w.ShuffleBytes, w.FastP50Ms, w.LegacyP50Ms, w.HadoopP50Ms, w.SpeedupVsHadoop)
	}
	return b.String()
}
