// Package experiments contains one driver per table and figure in the
// paper's evaluation. Each driver returns typed rows and can render the
// same series the paper reports, with the paper's published values printed
// alongside for comparison (EXPERIMENTS.md is generated from these).
//
// Communication experiments (Figures 2 and 3) run in two modes:
//
//   - Model: the calibrated netmodel cost models reproduce the paper's
//     cluster-scale numbers (a GigE testbed this machine does not have);
//   - Live: the real Go substrates — internal/mpi over TCP,
//     internal/hadooprpc, internal/jetty — are measured on loopback. The
//     absolute numbers differ from the paper's (different hardware, no
//     JVM), but the orderings under test (RPC's call-per-packet collapse
//     vs streaming substrates) reproduce live.
//
// Cluster-scale experiments (Figure 1, Table I, Figure 6) run on the DES
// simulators.
package experiments

import (
	"time"

	"github.com/ict-repro/mpid/internal/netmodel"
)

// Mode selects how communication experiments obtain their numbers.
type Mode int

const (
	// Model uses the calibrated cost models (paper-scale reproduction).
	Model Mode = iota
	// Live measures the real Go implementations on loopback.
	Live
)

// String names the mode.
func (m Mode) String() string {
	if m == Live {
		return "live"
	}
	return "model"
}

// SizeRange identifies one panel of Figure 2.
type SizeRange string

// The three panels of Figure 2.
const (
	Small  SizeRange = "small"  // 1 B .. 1 KB   (Figure 2a)
	Medium SizeRange = "medium" // 1 KB .. 1 MB  (Figure 2b)
	Large  SizeRange = "large"  // 1 MB .. 64 MB (Figure 2c)
)

// Sizes returns the panel's message sizes (powers of two, inclusive).
func (r SizeRange) Sizes() []int64 {
	var lo, hi int64
	switch r {
	case Small:
		lo, hi = 1, 1*netmodel.KB
	case Medium:
		lo, hi = 1*netmodel.KB, 1*netmodel.MB
	case Large:
		lo, hi = 1*netmodel.MB, 64*netmodel.MB
	default:
		panic("experiments: unknown size range " + string(r))
	}
	var sizes []int64
	for s := lo; s <= hi; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// paperLatency holds the latencies the paper reports (or implies via the
// ratios it quotes) for Figure 2 anchors. Zero means "not reported".
var paperLatency = map[int64]struct{ mpi, rpc time.Duration }{
	1:                {522 * time.Microsecond, 1300 * time.Microsecond},
	16:               {525 * time.Microsecond, 1300 * time.Microsecond},
	1 * netmodel.KB:  {600 * time.Microsecond, 8900 * time.Microsecond},
	1 * netmodel.MB:  {10300 * time.Microsecond, 1259 * time.Millisecond},
	64 * netmodel.MB: {572 * time.Millisecond, 56827 * time.Millisecond},
}

// PaperLatency returns the paper's reported (MPI, RPC) latency for a
// message size, with ok=false when the paper gives no number.
func PaperLatency(size int64) (mpi, rpc time.Duration, ok bool) {
	v, ok := paperLatency[size]
	return v.mpi, v.rpc, ok
}

// Paper Figure 3 summary values (peak bandwidths, MB/s).
const (
	PaperPeakMPIMBps   = 111.0
	PaperPeakJettyMBps = 108.0
	PaperPeakRPCMBps   = 1.4
)

// PaperTable1 is Table I as published: copy-stage share (%) by input size
// and maxMap/maxReduce configuration.
var PaperTable1 = map[int64]map[string]float64{
	1:   {"4/2": 43.1, "4/4": 43.0, "8/8": 38.5, "16/16": 35.7},
	3:   {"4/2": 35.0, "4/4": 33.9, "8/8": 35.9, "16/16": 46.3},
	9:   {"4/2": 43.1, "4/4": 42.9, "8/8": 42.8, "16/16": 39.7},
	27:  {"4/2": 44.3, "4/4": 47.9, "8/8": 43.18, "16/16": 36.4},
	81:  {"4/2": 60.0, "4/4": 71.0, "8/8": 74.6, "16/16": 73.9},
	150: {"4/2": 69.6, "4/4": 82.0, "8/8": 82.7, "16/16": 80.6},
}

// Table1Configs are the slot configurations of Table I, in column order.
var Table1Configs = [][2]int{{4, 2}, {4, 4}, {8, 8}, {16, 16}}

// Table1Sizes are the input sizes of Table I in GB, in row order.
var Table1Sizes = []int64{1, 3, 9, 27, 81, 150}

// Paper Figure 1 summary values (150 GB JavaSort, 7 workers, 8/8).
const (
	PaperFig1CopyMinSec  = 48.0
	PaperFig1CopyMaxSec  = 178.0
	PaperFig1CopyMeanSec = 128.5
	PaperFig1SortMeanSec = 0.0102
	PaperFig1RedMinSec   = 2.0
	PaperFig1RedMaxSec   = 58.0
	PaperFig1RedMeanSec  = 6.7995
	PaperFig1Stragglers  = 56
)

// PaperFigure6 returns the paper's (Hadoop, MPI-D) seconds for the sizes it
// reports, ok=false otherwise. The 10 GB Hadoop value is not printed in the
// paper; it is implied by the 48% ratio and the figure, so only the ratio
// is published for it.
func PaperFigure6(gb int64) (hadoop, mpid, ratio float64, ok bool) {
	switch gb {
	case 1:
		return 49, 3.9, 0.08, true
	case 10:
		return 0, 0, 0.48, true
	case 100:
		return 2001, 1129, 0.56, true
	}
	return 0, 0, 0, false
}

// Figure6Sizes are the input sizes (GB) the Figure 6 sweep runs.
var Figure6Sizes = []int64{1, 2, 5, 10, 25, 50, 75, 100}
