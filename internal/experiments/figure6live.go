package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/hadoop"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/workload"
)

// Figure6LiveRow is one input size of the live engine comparison: the same
// WordCount job on the real mini-Hadoop engine (RPC heartbeats + HTTP
// shuffle) and on the real MPI-D runtime.
type Figure6LiveRow struct {
	SizeBytes int64
	Hadoop    time.Duration
	MPID      time.Duration
}

// Ratio returns MPI-D time over Hadoop time.
func (r Figure6LiveRow) Ratio() float64 {
	if r.Hadoop == 0 {
		return 0
	}
	return float64(r.MPID) / float64(r.Hadoop)
}

// liveWordCountJob builds the WordCount job both engines run.
func liveWordCountJob() mapred.Job {
	mapper := mapred.MapperFunc(func(_, line []byte, emit mapred.Emit) error {
		for _, w := range bytes.Fields(line) {
			if err := emit(w, kv.AppendVLong(nil, 1)); err != nil {
				return err
			}
		}
		return nil
	})
	reducer := mapred.ReducerFunc(func(key []byte, values [][]byte, emit mapred.Emit) error {
		var total int64
		for _, v := range values {
			n, _, err := kv.ReadVLong(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit(key, kv.AppendVLong(nil, total))
	})
	return mapred.Job{
		Name:        "live-wordcount",
		Mapper:      mapper,
		Reducer:     reducer,
		Combiner:    mapred.CombinerFromReducer(reducer),
		NumReducers: 2,
	}
}

// Figure6Live runs the engine comparison at the given input sizes (bytes).
// This is the live analogue of Figure 6 scaled to one machine: both data
// paths are real — the Hadoop engine pays RPC heartbeat scheduling, map
// output materialization and HTTP shuffle fetches; the MPI-D engine ships
// combined, realigned buffers between pre-spawned ranks.
func Figure6Live(sizes []int64) ([]Figure6LiveRow, error) {
	vocab := workload.NewVocabulary(2_000, 33)
	job := liveWordCountJob()
	var rows []Figure6LiveRow
	for _, size := range sizes {
		text := workload.NewTextGenerator(vocab, 1.15, size).BytesOfText(int(size))
		splits := mapred.SplitText(text, 64<<10)

		start := time.Now()
		// The heartbeat is scaled with the workload: the paper's cluster
		// pairs a 3 s heartbeat with 64 MB tasks; these 64 KB tasks get
		// 25 ms, keeping the scheduling-to-work ratio comparable rather
		// than hiding the cost the paper measures.
		hres, err := hadoop.Run(job, splits, hadoop.Config{
			NumTrackers: 4, MapSlots: 1, ReduceSlots: 1,
			Heartbeat: 25 * time.Millisecond,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: live hadoop at %d bytes: %w", size, err)
		}
		hTime := time.Since(start)

		start = time.Now()
		mres, err := mapred.Run(job, splits, 4)
		if err != nil {
			return nil, fmt.Errorf("experiments: live mpid at %d bytes: %w", size, err)
		}
		mTime := time.Since(start)

		// Guard: identical output, or the timing comparison is void.
		if len(hres.Pairs()) != len(mres.Pairs()) {
			return nil, fmt.Errorf("experiments: engines disagree at %d bytes: %d vs %d keys",
				size, len(hres.Pairs()), len(mres.Pairs()))
		}
		rows = append(rows, Figure6LiveRow{SizeBytes: size, Hadoop: hTime, MPID: mTime})
	}
	return rows, nil
}

// RenderFigure6Live prints the comparison.
func RenderFigure6Live(rows []Figure6LiveRow) string {
	var b strings.Builder
	b.WriteString("Figure 6 (live): the same WordCount on the real mini-Hadoop engine vs the real MPI-D runtime\n")
	b.WriteString(fmt.Sprintf("%-9s %14s %14s %8s\n", "input", "Hadoop path", "MPI-D path", "ratio"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-9s %14v %14v %7.0f%%\n",
			fmt.Sprintf("%dKB", r.SizeBytes>>10),
			r.Hadoop.Round(time.Millisecond), r.MPID.Round(time.Millisecond),
			100*r.Ratio()))
	}
	b.WriteString("(both engines run the identical job on identical splits; the Hadoop path pays\n heartbeat scheduling, output materialization and HTTP shuffle, as the paper's does)\n")
	return b.String()
}
