package experiments

import (
	"fmt"
	"time"

	"github.com/ict-repro/mpid/internal/netmodel"
	"github.com/ict-repro/mpid/internal/stats"
)

// Figure2Row is one message size of the latency comparison.
type Figure2Row struct {
	Size int64
	MPI  time.Duration
	RPC  time.Duration
	// PaperMPI/PaperRPC are the published values where the paper gives
	// them (zero otherwise).
	PaperMPI, PaperRPC time.Duration
}

// Ratio returns RPC latency over MPI latency, the multiple the paper
// quotes (2.49x at 1 B up to 123x at 1 MB).
func (r Figure2Row) Ratio() float64 {
	if r.MPI == 0 {
		return 0
	}
	return float64(r.RPC) / float64(r.MPI)
}

// Figure2 produces one panel of the Figure 2 latency comparison over the
// default live transport (vectored TCP).
func Figure2(panel SizeRange, mode Mode) ([]Figure2Row, error) {
	return Figure2Transport(panel, mode, "")
}

// Figure2Transport is Figure2 with the live MPI side measured over the
// named transport (see NewTransportWorld; "" means the default vectored
// TCP). Model mode ignores the transport.
func Figure2Transport(panel SizeRange, mode Mode, transport string) ([]Figure2Row, error) {
	sizes := panel.Sizes()
	rows := make([]Figure2Row, 0, len(sizes))

	var measure func(size int64) (mpi, rpc time.Duration, err error)
	switch mode {
	case Model:
		mpiModel, rpcModel := netmodel.MPI(), netmodel.HadoopRPC()
		measure = func(size int64) (time.Duration, time.Duration, error) {
			return mpiModel.Latency(size), rpcModel.Latency(size), nil
		}
	case Live:
		bench, err := newLiveLatencyBench(transport)
		if err != nil {
			return nil, err
		}
		defer bench.Close()
		measure = bench.measure
	}

	for _, size := range sizes {
		mpiLat, rpcLat, err := measure(size)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 2 at %d bytes: %w", size, err)
		}
		row := Figure2Row{Size: size, MPI: mpiLat, RPC: rpcLat}
		if pm, pr, ok := PaperLatency(size); ok {
			row.PaperMPI, row.PaperRPC = pm, pr
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure2 prints the panel as the harness table.
func RenderFigure2(panel SizeRange, mode Mode, rows []Figure2Row) string {
	tb := stats.NewTable("size", "MPI", "HadoopRPC", "ratio", "paper MPI", "paper RPC")
	for _, r := range rows {
		paperMPI, paperRPC := "-", "-"
		if r.PaperMPI != 0 {
			paperMPI = stats.FormatDuration(r.PaperMPI)
			paperRPC = stats.FormatDuration(r.PaperRPC)
		}
		tb.AddRow(stats.FormatBytes(r.Size), r.MPI, r.RPC,
			fmt.Sprintf("%.1fx", r.Ratio()), paperMPI, paperRPC)
	}
	return fmt.Sprintf("Figure 2 (%s, %s): point-to-point latency, Hadoop RPC vs MPI\n%s",
		panel, mode, tb.String())
}
