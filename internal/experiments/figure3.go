package experiments

import (
	"fmt"

	"github.com/ict-repro/mpid/internal/netmodel"
	"github.com/ict-repro/mpid/internal/stats"
)

// Figure3TotalBytes is the fixed transfer the paper's bandwidth test moves
// (128 MB) while sweeping the packet size.
const Figure3TotalBytes = 128 * netmodel.MB

// Figure3Row is one packet size of the bandwidth comparison. Values are
// bytes/second.
type Figure3Row struct {
	Packet int64
	RPC    float64
	Jetty  float64
	MPI    float64
	// RawTCP is the §VI(1) future-work series (Socket over NIO analogue).
	RawTCP float64
}

// Figure3PacketSizes returns the swept packet sizes: 1 B to 64 MB.
func Figure3PacketSizes() []int64 {
	var sizes []int64
	for s := int64(1); s <= 64*netmodel.MB; s *= 4 {
		sizes = append(sizes, s)
	}
	return sizes
}

// Figure3 produces the bandwidth comparison. In Live mode the total
// transfer is scaled down for small packets so the experiment finishes in
// reasonable wall time; bandwidth is a rate, so the series is comparable.
func Figure3(mode Mode) ([]Figure3Row, error) {
	return Figure3Transport(mode, "")
}

// Figure3Transport is Figure3 with the live MPI series measured over the
// named transport (see NewTransportWorld; "" means the default vectored
// TCP). Model mode ignores the transport.
func Figure3Transport(mode Mode, transport string) ([]Figure3Row, error) {
	sizes := Figure3PacketSizes()
	rows := make([]Figure3Row, 0, len(sizes))
	switch mode {
	case Model:
		rpc, jetty, mpi, raw := netmodel.HadoopRPC(), netmodel.Jetty(), netmodel.MPI(), netmodel.RawTCP()
		for _, p := range sizes {
			rows = append(rows, Figure3Row{
				Packet: p,
				RPC:    netmodel.Bandwidth(rpc, Figure3TotalBytes, p),
				Jetty:  netmodel.Bandwidth(jetty, Figure3TotalBytes, p),
				MPI:    netmodel.Bandwidth(mpi, Figure3TotalBytes, p),
				RawTCP: netmodel.Bandwidth(raw, Figure3TotalBytes, p),
			})
		}
	case Live:
		bench, err := newLiveBandwidthBench(transport)
		if err != nil {
			return nil, err
		}
		defer bench.Close()
		for _, p := range sizes {
			row, err := bench.measure(p)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure 3 at packet %d: %w", p, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PeakBandwidths returns the per-substrate maxima over the series, the
// numbers the paper's summary quotes (MPI ~111, Jetty ~108, RPC ~1.4 MB/s).
func PeakBandwidths(rows []Figure3Row) (rpc, jetty, mpi, raw float64) {
	for _, r := range rows {
		if r.RPC > rpc {
			rpc = r.RPC
		}
		if r.Jetty > jetty {
			jetty = r.Jetty
		}
		if r.MPI > mpi {
			mpi = r.MPI
		}
		if r.RawTCP > raw {
			raw = r.RawTCP
		}
	}
	return rpc, jetty, mpi, raw
}

// RenderFigure3 prints the series plus the peak summary.
func RenderFigure3(mode Mode, rows []Figure3Row) string {
	tb := stats.NewTable("packet", "HadoopRPC", "Jetty", "MPI", "RawTCP")
	for _, r := range rows {
		tb.AddRow(stats.FormatBytes(r.Packet),
			stats.FormatRate(r.RPC), stats.FormatRate(r.Jetty),
			stats.FormatRate(r.MPI), stats.FormatRate(r.RawTCP))
	}
	rpc, jetty, mpi, raw := PeakBandwidths(rows)
	return fmt.Sprintf(
		"Figure 3 (%s): bandwidth moving %s, packet size swept\n%s\npeaks: RPC %s, Jetty %s, MPI %s, RawTCP %s (paper: %.1f / %.0f / %.0f MB/s)\n",
		mode, stats.FormatBytes(Figure3TotalBytes), tb.String(),
		stats.FormatRate(rpc), stats.FormatRate(jetty), stats.FormatRate(mpi), stats.FormatRate(raw),
		PaperPeakRPCMBps, PaperPeakJettyMBps, PaperPeakMPIMBps)
}
