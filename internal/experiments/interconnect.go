package experiments

import (
	"fmt"
	"strings"

	"github.com/ict-repro/mpid/internal/cluster"
	"github.com/ict-repro/mpid/internal/mpidsim"
	"github.com/ict-repro/mpid/internal/netmodel"
	"github.com/ict-repro/mpid/internal/stats"
)

// InterconnectRow projects one interconnect, the paper's §VI(4) future-work
// direction ("to utilize high performance interconnects such as the
// Infiniband"), in the spirit of Sur et al. (the paper's ref. 17).
type InterconnectRow struct {
	Name string
	// Latency1B and PeakBW characterize the fabric.
	Latency1B float64 // microseconds
	PeakMBps  float64
	// WordCountSec is the simulated MPI-D WordCount job time at SizeGB
	// with the cluster's NICs swapped for this fabric.
	WordCountSec float64
	SizeGB       int64
}

// ExtensionInterconnects projects the MPI-D WordCount of Figure 6 onto
// faster fabrics: GigE (the paper's testbed), 10 GigE and QDR InfiniBand.
// It answers the question §VI leaves open: how much of MPI-D's remaining
// runtime is network?
func ExtensionInterconnects(sizeGB int64) []InterconnectRow {
	fabrics := []netmodel.Model{netmodel.MPI(), netmodel.TenGigE(), netmodel.InfiniBand()}
	var rows []InterconnectRow
	for _, f := range fabrics {
		cfg := cluster.Default()
		cfg.NICBandwidth = f.PeakBandwidth()
		cfg.NetLatency = f.Latency(0)
		p := mpidsim.WordCount(sizeGB * netmodel.GB)
		p.Cluster = cfg
		r := mpidsim.Run(p)
		rows = append(rows, InterconnectRow{
			Name:         f.Name(),
			Latency1B:    float64(f.Latency(1)) / 1e3, // ns -> µs
			PeakMBps:     f.PeakBandwidth() / 1e6,
			WordCountSec: r.JobTime.Seconds(),
			SizeGB:       sizeGB,
		})
	}
	return rows
}

// RenderInterconnects prints the projection.
func RenderInterconnects(rows []InterconnectRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (§VI(4)): MPI-D WordCount at %dGB on faster interconnects\n", rows[0].SizeGB)
	tb := stats.NewTable("fabric", "1B latency", "peak BW", "job time", "vs GigE")
	base := rows[0].WordCountSec
	for _, r := range rows {
		tb.AddRow(r.Name,
			fmt.Sprintf("%.1fµs", r.Latency1B),
			fmt.Sprintf("%.0fMB/s", r.PeakMBps),
			fmt.Sprintf("%.1fs", r.WordCountSec),
			fmt.Sprintf("%.2fx", base/r.WordCountSec))
	}
	b.WriteString(tb.String())
	b.WriteString("(job time is compute+disk bound once the fabric stops being the bottleneck,\n which is the Sur-et-al-style observation the paper cites as motivation)\n")
	return b.String()
}

// interconnectSanity guards the projection's invariant in tests.
func interconnectSanity(rows []InterconnectRow) error {
	for i := 1; i < len(rows); i++ {
		if rows[i].WordCountSec > rows[i-1].WordCountSec+1e-9 {
			return fmt.Errorf("faster fabric %q slower than %q: %g > %g",
				rows[i].Name, rows[i-1].Name, rows[i].WordCountSec, rows[i-1].WordCountSec)
		}
	}
	return nil
}
