package experiments

import (
	"fmt"
	"strings"

	"github.com/ict-repro/mpid/internal/hadoopsim"
	"github.com/ict-repro/mpid/internal/netmodel"
	"github.com/ict-repro/mpid/internal/stats"
)

// Figure1Params returns the §II.A configuration behind Figure 1: the
// GridMix JavaSort benchmark over 150 GB, 64 MB blocks, 8/8 slots on 7
// worker nodes, 2345 reduce tasks.
func Figure1Params(inputBytes int64) hadoopsim.Params {
	p := hadoopsim.JavaSort(inputBytes, 8, 8)
	if inputBytes == 150*netmodel.GB {
		p.NumReduceTasks = 2345 // the paper's reducer ids run 0..2344
	}
	return p
}

// Figure1 runs the shuffle-overhead experiment and returns the report with
// per-reducer copy/sort/reduce times.
func Figure1(inputBytes int64) *hadoopsim.Report {
	return hadoopsim.Run(Figure1Params(inputBytes))
}

// RenderFigure1 prints the distribution summary next to the paper's, plus
// a copy-time histogram standing in for the scatter plot.
func RenderFigure1(r *hadoopsim.Report) string {
	var b strings.Builder
	copySum := r.CopySummary()
	redSum := r.ReduceSummary()
	sortSum := r.SortSummary()

	fmt.Fprintf(&b, "Figure 1: shuffle overhead, JavaSort %s, %d maps, %d reduces\n",
		stats.FormatBytes(r.Params.InputBytes), r.NumMaps, r.NumReduces)
	tb := stats.NewTable("stage", "min", "mean", "max", "paper min", "paper mean", "paper max")
	tb.AddRow("copy",
		fmt.Sprintf("%.1fs", copySum.Min()), fmt.Sprintf("%.1fs", copySum.Mean()), fmt.Sprintf("%.1fs", copySum.Max()),
		fmt.Sprintf("%.0fs", PaperFig1CopyMinSec), fmt.Sprintf("%.1fs", PaperFig1CopyMeanSec), fmt.Sprintf("%.0fs", PaperFig1CopyMaxSec))
	tb.AddRow("sort",
		fmt.Sprintf("%.4fs", sortSum.Min()), fmt.Sprintf("%.4fs", sortSum.Mean()), fmt.Sprintf("%.4fs", sortSum.Max()),
		"-", fmt.Sprintf("%.4fs", PaperFig1SortMeanSec), "-")
	tb.AddRow("reduce",
		fmt.Sprintf("%.1fs", redSum.Min()), fmt.Sprintf("%.1fs", redSum.Mean()), fmt.Sprintf("%.1fs", redSum.Max()),
		fmt.Sprintf("%.0fs", PaperFig1RedMinSec), fmt.Sprintf("%.1fs", PaperFig1RedMeanSec), fmt.Sprintf("%.0fs", PaperFig1RedMaxSec))
	b.WriteString(tb.String())

	fmt.Fprintf(&b, "first-wave stragglers excluded from the plot: %d (paper deletes %d at ~4000s; map phase here ends at %.0fs)\n",
		r.FirstWaveCount(), PaperFig1Stragglers, r.MapPhaseEnd.Seconds())
	copyShare := copyShareOfReducerLifecycle(r)
	fmt.Fprintf(&b, "copy share of reducer lifecycles: %.1f%% (paper: ~95%%)\n\n", copyShare)

	if copySum.Count() > 0 {
		hi := copySum.Max() * 1.01
		h := stats.NewHistogram(0, hi, 12)
		for _, v := range copySum.Values() {
			h.Add(v)
		}
		fmt.Fprintf(&b, "copy-time distribution (s):\n%s", h.String())
	}
	return b.String()
}

// copyShareOfReducerLifecycle computes the paper's "95%" statistic: total
// copy time over total reducer lifecycle time.
func copyShareOfReducerLifecycle(r *hadoopsim.Report) float64 {
	var copySum, life float64
	for _, rd := range r.Reduces {
		copySum += rd.Copy.Seconds()
		life += rd.Duration().Seconds()
	}
	if life == 0 {
		return 0
	}
	return 100 * copySum / life
}
