//go:build race

package experiments

// raceEnabled reports that the race detector is instrumenting this build;
// performance-sensitive live assertions are skipped because instrumentation
// skews the machinery under test (goroutine hand-offs far more than inline
// socket reads).
const raceEnabled = true
