package experiments

// Transport raw-speed benchmark: the live Figure 2/3 curves measured over
// the repository's own MPI transports instead of the paper's cluster. For
// every transport — the in-process chan baseline, the shared-memory-style
// ring, the legacy-framed TCP path and the vectored (writev) TCP path —
// the suite sweeps message sizes and reports one-way latency percentiles,
// streaming bandwidth, and heap allocations per round trip through the
// full send→recv path.
//
// Correctness gates timing, as in every other suite: before a single
// sample is taken, the identical deterministic WordCount job runs over
// each transport via mapred.RunOnWorld, and the canonical outputs must be
// byte-identical across all of them.
//
// The headline scale-free metrics feed the bench-check gate:
//
//   - ring_vs_chan_small_p50: ring's small-message p50 divided by chan's.
//     The ring exists to beat the chan transport's mutex/cond rendezvous,
//     so the gate pins this below 1.0 as an absolute invariant.
//   - max_allocs_per_op: the worst allocs-per-round-trip across every
//     transport and size; pinned at 0.0 absolute — the transports'
//     steady-state exchange must not allocate at all.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/ict-repro/mpid/internal/mapred"
	"github.com/ict-repro/mpid/internal/mpi"
	"github.com/ict-repro/mpid/internal/workload"
)

// TransportNames lists the swept transports in report order.
var TransportNames = []string{"chan", "ring", "tcp", "tcp+writev"}

// NewTransportWorld builds an n-rank world over the named transport:
// "chan" (in-process reference), "ring" (shared-memory-style rings,
// zero-copy hand-off), "ring+copy" (ring with the copying device
// emulation), "tcp" (loopback TCP, legacy bufio framing) or "tcp+writev"
// (loopback TCP, vectored framing). The extra ring+copy name is accepted
// everywhere a -transport flag is, though the committed sweep covers the
// four report rows.
func NewTransportWorld(name string, n int) (*mpi.World, error) {
	switch name {
	case "chan":
		return mpi.NewWorld(n), nil
	case "ring":
		return mpi.NewRingWorld(n), nil
	case "ring+copy":
		return mpi.NewRingWorldConfig(n, mpi.RingConfig{CopyPayloads: true}), nil
	case "tcp":
		return mpi.NewTCPWorldOptions(n, mpi.TCPOptions{LegacyFraming: true})
	case "tcp+writev":
		return mpi.NewTCPWorldOptions(n, mpi.TCPOptions{})
	}
	return nil, fmt.Errorf("unknown transport %q (want chan, ring, ring+copy, tcp or tcp+writev)", name)
}

// TransportBenchConfig shapes one transport sweep.
type TransportBenchConfig struct {
	// Sizes are the swept message sizes in bytes; Sizes[0] is the
	// "small message" the ring-vs-chan p50 gate reads.
	Sizes []int `json:"sizes"`
	// Reps is the number of round trips sampled per (transport, size)
	// for the latency percentiles.
	Reps int `json:"reps"`
	// BandwidthBytes is the total byte volume streamed per bandwidth
	// trial; the message count at each size follows from it.
	BandwidthBytes int64 `json:"bandwidth_bytes"`
	// WCBytes/WCSplit/WCMappers/WCReducers/Seed shape the WordCount
	// equality gate that runs over every transport before timing.
	WCBytes    int64 `json:"wc_bytes"`
	WCSplit    int64 `json:"wc_split"`
	WCMappers  int   `json:"wc_mappers"`
	WCReducers int   `json:"wc_reducers"`
	Seed       int64 `json:"seed"`
}

// DefaultTransportBench is the committed-baseline configuration.
func DefaultTransportBench() TransportBenchConfig {
	return TransportBenchConfig{
		Sizes:          []int{16, 1 << 10, 32 << 10, 256 << 10, 1 << 20},
		Reps:           3000,
		BandwidthBytes: 64 << 20,
		WCBytes:        256 << 10, WCSplit: 32 << 10, WCMappers: 3, WCReducers: 2,
		Seed: 1,
	}
}

// SmokeTransportBench is the seconds-scale CI configuration.
func SmokeTransportBench() TransportBenchConfig {
	return TransportBenchConfig{
		Sizes:          []int{16, 4 << 10, 64 << 10},
		Reps:           400,
		BandwidthBytes: 4 << 20,
		WCBytes:        64 << 10, WCSplit: 16 << 10, WCMappers: 2, WCReducers: 2,
		Seed: 1,
	}
}

// TransportSizeRow is one (transport, size) sample set.
type TransportSizeRow struct {
	SizeBytes   int     `json:"size_bytes"`
	P50Us       float64 `json:"p50_us"`  // one-way latency (round trip / 2)
	P90Us       float64 `json:"p90_us"`
	MeanUs      float64 `json:"mean_us"`
	BandwidthMB float64 `json:"bandwidth_mb_s"` // one-way streaming MB/s
	AllocsPerOp float64 `json:"allocs_per_op"`  // heap allocs per round trip, both ranks
}

// TransportCurve is one transport's full sweep — a live Figure 2/3 curve.
type TransportCurve struct {
	Transport string             `json:"transport"`
	Rows      []TransportSizeRow `json:"rows"`
}

// TransportBenchResult is the schema of BENCH_transport.json.
type TransportBenchResult struct {
	Config TransportBenchConfig `json:"config"`
	// WordCountIdentical records that every transport produced
	// byte-identical canonical WordCount output before timing began.
	WordCountIdentical bool             `json:"wordcount_identical"`
	Transports         []TransportCurve `json:"transports"`
	// RingVsChanSmallP50 is ring p50 / chan p50 at Sizes[0]; below 1.0
	// means the ring beats the chan transport on small messages. It is
	// measured from interleaved back-to-back chan/ring trial pairs (the
	// median of the per-pair ratios), not from the sweep rows above:
	// the sweep runs each transport's cells seconds apart, and slow
	// machine-level drift across that gap is larger than the ring's
	// edge, so a ratio of two distant p50s is mostly noise.
	RingVsChanSmallP50 float64 `json:"ring_vs_chan_small_p50"`
	// MaxAllocsPerOp is the worst allocs/round-trip across the sweep.
	MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
	Timestamp      string  `json:"timestamp,omitempty"`
}

// RunTransportBench gates on WordCount equivalence across all transports,
// then sweeps latency, bandwidth and allocations per transport and size.
func RunTransportBench(cfg TransportBenchConfig) (*TransportBenchResult, error) {
	res := &TransportBenchResult{Config: cfg}
	if err := transportEqualityGate(cfg); err != nil {
		return nil, err
	}
	res.WordCountIdentical = true

	for _, name := range TransportNames {
		curve := TransportCurve{Transport: name}
		for _, size := range cfg.Sizes {
			row, err := sweepTransportSize(name, size, cfg)
			if err != nil {
				return nil, fmt.Errorf("transportbench: %s/%dB: %w", name, size, err)
			}
			curve.Rows = append(curve.Rows, row)
			if row.AllocsPerOp > res.MaxAllocsPerOp {
				res.MaxAllocsPerOp = row.AllocsPerOp
			}
		}
		res.Transports = append(res.Transports, curve)
	}

	ratio, err := pairedSmallRatio(cfg)
	if err != nil {
		return nil, err
	}
	res.RingVsChanSmallP50 = ratio
	return res, nil
}

// pairedSmallRatio measures the headline ring-vs-chan small-message ratio
// from interleaved trial pairs: each pair runs a chan latency trial and a
// ring latency trial back to back, so both sides of the ratio see the
// same machine conditions, and the median of the per-pair ratios discards
// the pairs a background hiccup landed in.
func pairedSmallRatio(cfg TransportBenchConfig) (float64, error) {
	const pairs = 7
	size := cfg.Sizes[0]
	reps := cfg.Reps / 2
	if reps < 200 {
		reps = 200
	}
	ratios := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		chanP50, err := latencyP50("chan", size, reps)
		if err != nil {
			return 0, err
		}
		ringP50, err := latencyP50("ring", size, reps)
		if err != nil {
			return 0, err
		}
		ratios = append(ratios, ringP50/chanP50)
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2], nil
}

// latencyP50 runs one lean ping-pong latency trial over the named
// transport and returns the median round-trip time in nanoseconds.
func latencyP50(name string, size, reps int) (float64, error) {
	w, err := NewTransportWorld(name, 2)
	if err != nil {
		return 0, err
	}
	defer w.Close()

	echoDone := make(chan struct{})
	go func() {
		defer close(echoDone)
		c := w.Comm(1)
		pool := c.RecvBufferPool()
		echo := make([]byte, size)
		for {
			data, st, err := c.Recv(0, mpi.AnyTag)
			if err != nil {
				return
			}
			stop := st.Tag == 1
			pool.Put(data)
			if stop {
				return
			}
			if c.Send(0, 0, echo) != nil {
				return
			}
		}
	}()

	c := w.Comm(0)
	pool := c.RecvBufferPool()
	payload := make([]byte, size)
	rtt := func() error {
		if err := c.Send(1, 0, payload); err != nil {
			return err
		}
		data, _, err := c.Recv(1, 0)
		if err != nil {
			return err
		}
		pool.Put(data)
		return nil
	}
	warm := reps / 10
	if warm < 50 {
		warm = 50
	}
	for i := 0; i < warm; i++ {
		if err := rtt(); err != nil {
			return 0, err
		}
	}
	samples := make([]float64, reps)
	for i := range samples {
		start := time.Now()
		if err := rtt(); err != nil {
			return 0, err
		}
		samples[i] = float64(time.Since(start).Nanoseconds())
	}
	if err := c.Send(1, 1, payload); err != nil {
		return 0, err
	}
	<-echoDone
	sort.Float64s(samples)
	return samples[len(samples)/2], nil
}

// transportEqualityGate runs the identical deterministic WordCount over
// every transport and fails unless all canonical outputs are
// byte-identical. Correctness gates timing.
func transportEqualityGate(cfg TransportBenchConfig) error {
	vocab := workload.NewVocabulary(500, 33)
	text := workload.NewTextGenerator(vocab, 1.15, cfg.Seed).BytesOfText(int(cfg.WCBytes))
	splits := mapred.SplitText(text, int(cfg.WCSplit))
	job := liveWordCountJob()
	job.NumReducers = cfg.WCReducers

	var ref []byte
	var refName string
	for _, name := range TransportNames {
		tname := name
		result, err := mapred.RunOnWorld(job, splits, cfg.WCMappers, func(n int) (*mpi.World, error) {
			return NewTransportWorld(tname, n)
		})
		if err != nil {
			return fmt.Errorf("transportbench: wordcount over %s: %w", name, err)
		}
		canon := canonicalPairs(result)
		var buf []byte
		for _, p := range canon {
			buf = append(buf, p.Key...)
			buf = append(buf, 0)
			buf = append(buf, p.Value...)
			buf = append(buf, 1)
		}
		if ref == nil {
			ref, refName = buf, name
			continue
		}
		if string(ref) != string(buf) {
			return fmt.Errorf("transportbench: wordcount output over %s differs from %s (%d vs %d canonical bytes)",
				name, refName, len(buf), len(ref))
		}
	}
	return nil
}

// sweepTransportSize measures one (transport, size) cell: Reps individual
// round trips for the latency percentiles, a heap-allocation count across
// the same loop, and a one-way streaming trial for bandwidth.
func sweepTransportSize(name string, size int, cfg TransportBenchConfig) (TransportSizeRow, error) {
	row := TransportSizeRow{SizeBytes: size}

	w, err := NewTransportWorld(name, 2)
	if err != nil {
		return row, err
	}
	defer w.Close()

	// Echo loop on rank 1: tag 0 is echoed, tag 2 (the bandwidth stream)
	// is sunk without a reply — replying to a bounded-ring stream would
	// fill the reverse ring and deadlock both sides — and tag 1 shuts
	// the loop down.
	echoErr := make(chan error, 1)
	go func() {
		c := w.Comm(1)
		pool := c.RecvBufferPool()
		echo := make([]byte, size)
		for {
			data, st, err := c.Recv(0, mpi.AnyTag)
			if err != nil {
				echoErr <- nil
				return
			}
			tag := st.Tag
			pool.Put(data)
			switch tag {
			case 1:
				echoErr <- nil
				return
			case 2:
				continue
			}
			if err := c.Send(0, 0, echo); err != nil {
				echoErr <- err
				return
			}
		}
	}()

	c := w.Comm(0)
	pool := c.RecvBufferPool()
	payload := make([]byte, size)
	rtt := func() error {
		if err := c.Send(1, 0, payload); err != nil {
			return err
		}
		data, _, err := c.Recv(1, 0)
		if err != nil {
			return err
		}
		pool.Put(data)
		return nil
	}

	// Warm pools and connections before any counting.
	warm := cfg.Reps / 10
	if warm < 50 {
		warm = 50
	}
	for i := 0; i < warm; i++ {
		if err := rtt(); err != nil {
			return row, err
		}
	}

	samples := make([]float64, cfg.Reps)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := range samples {
		start := time.Now()
		if err := rtt(); err != nil {
			return row, err
		}
		samples[i] = float64(time.Since(start).Nanoseconds())
	}
	runtime.ReadMemStats(&ms1)
	// Integer allocs per op, truncated exactly as testing.B reports it:
	// the Mallocs delta is process-wide, so runtime background work (GC
	// bookkeeping, goroutine stack growth) contributes a sub-one-per-op
	// remainder that is not the send path's doing. A real per-op
	// allocation still registers as >= 1.
	row.AllocsPerOp = float64((ms1.Mallocs - ms0.Mallocs) / uint64(cfg.Reps))
	sort.Float64s(samples)
	// One-way figures: half the round trip, in microseconds.
	row.P50Us = samples[len(samples)/2] / 2000
	row.P90Us = samples[len(samples)*9/10] / 2000
	var sum float64
	for _, s := range samples {
		sum += s
	}
	row.MeanUs = sum / float64(len(samples)) / 2000

	// Bandwidth: stream messages one way, then one ack round trip via the
	// echo (header-only message) to bound the drain.
	msgs := int(cfg.BandwidthBytes / int64(size))
	if msgs < 8 {
		msgs = 8
	}
	if msgs > 4096 {
		msgs = 4096
	}
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := c.Send(1, 2, payload); err != nil {
			return row, err
		}
	}
	if err := rtt(); err != nil { // flush marker: echoed after the stream drains
		return row, err
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		row.BandwidthMB = float64(int64(msgs+1)*int64(size)) / elapsed / (1 << 20)
	}

	// Shut the echo down and surface any error it saw.
	if err := c.Send(1, 1, payload); err != nil {
		return row, err
	}
	if err := <-echoErr; err != nil {
		return row, err
	}
	return row, nil
}

// MarshalTransportBench renders the committed BENCH_transport.json.
func MarshalTransportBench(r *TransportBenchResult) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RenderTransportBench prints the sweep as the live Figure 2/3 tables.
func RenderTransportBench(r *TransportBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "transport raw speed (wordcount identical across transports: %v)\n", r.WordCountIdentical)
	fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s %12s %8s\n",
		"TRANSPORT", "SIZE", "P50 µs", "P90 µs", "MEAN µs", "BW MB/s", "ALLOCS")
	for _, c := range r.Transports {
		for _, row := range c.Rows {
			fmt.Fprintf(&b, "  %-12s %10s %10.2f %10.2f %10.2f %12.1f %8.2f\n",
				c.Transport, fmtSize(row.SizeBytes), row.P50Us, row.P90Us, row.MeanUs, row.BandwidthMB, row.AllocsPerOp)
		}
	}
	fmt.Fprintf(&b, "  ring vs chan small-message p50: %.3f (below 1.0 means the ring wins)\n", r.RingVsChanSmallP50)
	fmt.Fprintf(&b, "  max allocs per round trip anywhere in the sweep: %.2f\n", r.MaxAllocsPerOp)
	return b.String()
}

// fmtSize prints a byte count compactly (16B, 1KB, 1MB).
func fmtSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
