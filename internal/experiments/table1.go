package experiments

import (
	"fmt"
	"strings"

	"github.com/ict-repro/mpid/internal/hadoopsim"
	"github.com/ict-repro/mpid/internal/netmodel"
)

// Table1Cell is one (input size, slot config) measurement.
type Table1Cell struct {
	SizeGB    int64
	MaxMap    int
	MaxReduce int
	CopyPct   float64
	PaperPct  float64 // 0 when the paper gives no value
}

// Config renders the "4/2"-style configuration label.
func (c Table1Cell) Config() string { return fmt.Sprintf("%d/%d", c.MaxMap, c.MaxReduce) }

// Table1 runs the full sweep: every input size against every slot
// configuration. maxSizeGB caps the sweep (the full 150 GB matrix takes
// minutes of wall time; tests use a smaller cap).
func Table1(maxSizeGB int64) []Table1Cell {
	var cells []Table1Cell
	for _, gb := range Table1Sizes {
		if gb > maxSizeGB {
			continue
		}
		for _, cfg := range Table1Configs {
			r := hadoopsim.Run(hadoopsim.JavaSort(gb*netmodel.GB, cfg[0], cfg[1]))
			cell := Table1Cell{
				SizeGB: gb, MaxMap: cfg[0], MaxReduce: cfg[1],
				CopyPct: r.CopyPercent(),
			}
			if row, ok := PaperTable1[gb]; ok {
				cell.PaperPct = row[cell.Config()]
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// RenderTable1 prints the matrix in the paper's layout, measured value
// first with the published value in parentheses.
func RenderTable1(cells []Table1Cell) string {
	var b strings.Builder
	b.WriteString("Table I: copy-stage share of total mapper+reducer execution time\n")
	b.WriteString(fmt.Sprintf("%-8s", "input"))
	for _, cfg := range Table1Configs {
		b.WriteString(fmt.Sprintf("  %-18s", fmt.Sprintf("%d/%d", cfg[0], cfg[1])))
	}
	b.WriteString("\n")
	bySize := make(map[int64][]Table1Cell)
	var order []int64
	for _, c := range cells {
		if _, seen := bySize[c.SizeGB]; !seen {
			order = append(order, c.SizeGB)
		}
		bySize[c.SizeGB] = append(bySize[c.SizeGB], c)
	}
	for _, gb := range order {
		b.WriteString(fmt.Sprintf("%-8s", fmt.Sprintf("%dGB", gb)))
		for _, c := range bySize[gb] {
			b.WriteString(fmt.Sprintf("  %-18s", fmt.Sprintf("%5.1f%% (%.1f%%)", c.CopyPct, c.PaperPct)))
		}
		b.WriteString("\n")
	}
	b.WriteString("(measured first, paper's published value in parentheses)\n")
	return b.String()
}
