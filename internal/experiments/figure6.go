package experiments

import (
	"fmt"
	"strings"

	"github.com/ict-repro/mpid/internal/hadoopsim"
	"github.com/ict-repro/mpid/internal/mpidsim"
	"github.com/ict-repro/mpid/internal/netmodel"
)

// Figure6Row compares one input size: WordCount on simulated Hadoop vs the
// simulated MPI-D system.
type Figure6Row struct {
	SizeGB int64
	Hadoop float64 // seconds
	MPID   float64 // seconds
	// Paper values; zero when not published (ratio is published for all
	// three anchor sizes).
	PaperHadoop, PaperMPID, PaperRatio float64
}

// Ratio returns MPI-D time over Hadoop time (the paper reports 8%, 48%,
// 56% at 1/10/100 GB).
func (r Figure6Row) Ratio() float64 {
	if r.Hadoop == 0 {
		return 0
	}
	return r.MPID / r.Hadoop
}

// Figure6 sweeps input sizes up to maxSizeGB and returns the comparison.
func Figure6(maxSizeGB int64) []Figure6Row {
	var rows []Figure6Row
	for _, gb := range Figure6Sizes {
		if gb > maxSizeGB {
			continue
		}
		h := hadoopsim.Run(hadoopsim.WordCount(gb * netmodel.GB))
		m := mpidsim.Run(mpidsim.WordCount(gb * netmodel.GB))
		row := Figure6Row{
			SizeGB: gb,
			Hadoop: h.JobTime.Seconds(),
			MPID:   m.JobTime.Seconds(),
		}
		if ph, pm, pr, ok := PaperFigure6(gb); ok {
			row.PaperHadoop, row.PaperMPID, row.PaperRatio = ph, pm, pr
		}
		rows = append(rows, row)
	}
	return rows
}

// Figure6CodedRow is one point of the coded-shuffle extension to Figure 6:
// MPI-D WordCount at one input size and map-replication factor r.
type Figure6CodedRow struct {
	SizeGB      int64
	Replication int
	MPID        float64 // seconds
	ShuffleGB   float64 // shipped shuffle bytes (sender-link accounting)
}

// Figure6Coded sweeps the MPI-D simulation with coded-shuffle replication
// r ∈ rs at each Figure 6 input size up to maxSizeGB — the shipped-bytes
// counterpart of the time-based sweep. r = 1 is the uncoded baseline;
// higher r trades r× redundant map work for an r× reduction in shipped
// shuffle bytes (internal/coded is the live prototype of the same trade).
func Figure6Coded(maxSizeGB int64, rs []int) []Figure6CodedRow {
	var rows []Figure6CodedRow
	for _, gb := range Figure6Sizes {
		if gb > maxSizeGB {
			continue
		}
		for _, r := range rs {
			p := mpidsim.WordCount(gb * netmodel.GB)
			p.CodedReplication = r
			rep := mpidsim.Run(p)
			rows = append(rows, Figure6CodedRow{
				SizeGB:      gb,
				Replication: r,
				MPID:        rep.JobTime.Seconds(),
				ShuffleGB:   float64(rep.BytesShuffle) / float64(netmodel.GB),
			})
		}
	}
	return rows
}

// RenderFigure6Coded prints the coded sweep, one line per (size, r).
func RenderFigure6Coded(rows []Figure6CodedRow) string {
	var b strings.Builder
	b.WriteString("Figure 6 (coded): MPI-D WordCount with coded-shuffle map replication r\n")
	b.WriteString(fmt.Sprintf("%-7s %3s %12s %14s\n", "input", "r", "MPI-D(s)", "shipped(GB)"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-7s %3d %12.1f %14.3f\n",
			fmt.Sprintf("%dGB", r.SizeGB), r.Replication, r.MPID, r.ShuffleGB))
	}
	return b.String()
}

// RenderFigure6 prints the sweep in the paper's terms.
func RenderFigure6(rows []Figure6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6: WordCount, Hadoop vs the MPI-D simulation system (7 workers, 49 mappers, 1 reducer)\n")
	b.WriteString(fmt.Sprintf("%-7s %12s %12s %8s %14s %12s %12s\n",
		"input", "Hadoop(s)", "MPI-D(s)", "ratio", "paper Hadoop", "paper MPI-D", "paper ratio"))
	for _, r := range rows {
		ph, pm, pr := "-", "-", "-"
		if r.PaperRatio != 0 {
			pr = fmt.Sprintf("%.0f%%", 100*r.PaperRatio)
		}
		if r.PaperHadoop != 0 {
			ph = fmt.Sprintf("%.0fs", r.PaperHadoop)
			pm = fmt.Sprintf("%.1fs", r.PaperMPID)
		}
		b.WriteString(fmt.Sprintf("%-7s %12.1f %12.1f %7.0f%% %14s %12s %12s\n",
			fmt.Sprintf("%dGB", r.SizeGB), r.Hadoop, r.MPID, 100*r.Ratio(), ph, pm, pr))
	}
	return b.String()
}
