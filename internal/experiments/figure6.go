package experiments

import (
	"fmt"
	"strings"

	"github.com/ict-repro/mpid/internal/hadoopsim"
	"github.com/ict-repro/mpid/internal/mpidsim"
	"github.com/ict-repro/mpid/internal/netmodel"
)

// Figure6Row compares one input size: WordCount on simulated Hadoop vs the
// simulated MPI-D system.
type Figure6Row struct {
	SizeGB int64
	Hadoop float64 // seconds
	MPID   float64 // seconds
	// Paper values; zero when not published (ratio is published for all
	// three anchor sizes).
	PaperHadoop, PaperMPID, PaperRatio float64
}

// Ratio returns MPI-D time over Hadoop time (the paper reports 8%, 48%,
// 56% at 1/10/100 GB).
func (r Figure6Row) Ratio() float64 {
	if r.Hadoop == 0 {
		return 0
	}
	return r.MPID / r.Hadoop
}

// Figure6 sweeps input sizes up to maxSizeGB and returns the comparison.
func Figure6(maxSizeGB int64) []Figure6Row {
	var rows []Figure6Row
	for _, gb := range Figure6Sizes {
		if gb > maxSizeGB {
			continue
		}
		h := hadoopsim.Run(hadoopsim.WordCount(gb * netmodel.GB))
		m := mpidsim.Run(mpidsim.WordCount(gb * netmodel.GB))
		row := Figure6Row{
			SizeGB: gb,
			Hadoop: h.JobTime.Seconds(),
			MPID:   m.JobTime.Seconds(),
		}
		if ph, pm, pr, ok := PaperFigure6(gb); ok {
			row.PaperHadoop, row.PaperMPID, row.PaperRatio = ph, pm, pr
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFigure6 prints the sweep in the paper's terms.
func RenderFigure6(rows []Figure6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6: WordCount, Hadoop vs the MPI-D simulation system (7 workers, 49 mappers, 1 reducer)\n")
	b.WriteString(fmt.Sprintf("%-7s %12s %12s %8s %14s %12s %12s\n",
		"input", "Hadoop(s)", "MPI-D(s)", "ratio", "paper Hadoop", "paper MPI-D", "paper ratio"))
	for _, r := range rows {
		ph, pm, pr := "-", "-", "-"
		if r.PaperRatio != 0 {
			pr = fmt.Sprintf("%.0f%%", 100*r.PaperRatio)
		}
		if r.PaperHadoop != 0 {
			ph = fmt.Sprintf("%.0fs", r.PaperHadoop)
			pm = fmt.Sprintf("%.1fs", r.PaperMPID)
		}
		b.WriteString(fmt.Sprintf("%-7s %12.1f %12.1f %7.0f%% %14s %12s %12s\n",
			fmt.Sprintf("%dGB", r.SizeGB), r.Hadoop, r.MPID, 100*r.Ratio(), ph, pm, pr))
	}
	return b.String()
}
