package experiments

import (
	"math"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/trace"
)

// TestTraceCriticalPathMatchesTimers cross-checks the two independent
// instrumentation paths the live engine now carries: the phase *timers*
// tasktrackers ship on completion RPCs (PR 2's Figure 1 / Table I live
// numbers) and the *spans* the tracing layer ships on the same RPCs. Both
// measure the same intervals, so the copy-stage share of total task time
// computed from reduce.copy spans must agree with the report's
// CopyShareOfTotal — if the trace disagreed with the timers, one of them
// would be lying about the critical path.
func TestTraceCriticalPathMatchesTimers(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("live timing assertion; skipped in -short and race builds")
	}
	r, err := Figure1LiveAt(256<<10, "")
	if err != nil {
		t.Fatal(err)
	}
	var copySpans, taskSpans time.Duration
	for _, s := range r.Report.Spans {
		d := s.Finish.Sub(s.Start)
		switch {
		case s.Kind == trace.KindPhase && s.Name == "reduce.copy":
			copySpans += d
		case s.Kind == trace.KindTask:
			taskSpans += d
		}
	}
	if copySpans <= 0 || taskSpans <= 0 {
		t.Fatalf("degenerate span sums: copy %v, tasks %v", copySpans, taskSpans)
	}
	traceShare := 100 * float64(copySpans) / float64(taskSpans)
	timerShare := r.Report.CopyShareOfTotal()
	t.Logf("copy share of total task time: %.1f%% from spans, %.1f%% from phase timers", traceShare, timerShare)

	// Task spans wrap their phase spans plus per-task overhead (RPC
	// serialization, scheduling hand-off), so the span-derived share reads
	// slightly lower; more than 10 percentage points apart means one
	// instrumentation path is broken.
	if math.Abs(traceShare-timerShare) > 10 {
		t.Errorf("span-derived copy share %.1f%% disagrees with timer-derived %.1f%%", traceShare, timerShare)
	}
}
