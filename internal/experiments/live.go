package experiments

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/ict-repro/mpid/internal/hadooprpc"
	"github.com/ict-repro/mpid/internal/jetty"
	"github.com/ict-repro/mpid/internal/mpi"
)

// Live-mode measurement of the real Go substrates on loopback. The paper's
// method is followed: ping-pong time divided by two for latency, a fixed
// total moved in fixed-size packets for bandwidth, first iterations
// dropped as warmup, results averaged over repetitions.

// liveReps returns iteration counts scaled by message size so large sizes
// stay affordable.
func liveReps(size int64) int {
	switch {
	case size <= 4<<10:
		return 200
	case size <= 1<<20:
		return 50
	case size <= 16<<20:
		return 10
	default:
		return 4
	}
}

const liveWarmup = 5 // dropped iterations, as the paper drops its first 5

// --------------------------------------------------------------------------
// Latency (Figure 2)

type liveLatencyBench struct {
	world   *mpi.World
	c0      *mpi.Comm
	rpcSrv  *hadooprpc.Server
	rpcCli  *hadooprpc.Client
	echoErr chan error
}

// newLiveLatencyBench stands up a 2-rank MPI world over the named
// transport (see NewTransportWorld; "" means the default vectored TCP)
// with an echo loop on rank 1, and a Hadoop RPC echo server with a
// connected client.
func newLiveLatencyBench(transport string) (*liveLatencyBench, error) {
	if transport == "" {
		transport = "tcp+writev"
	}
	w, err := NewTransportWorld(transport, 2)
	if err != nil {
		return nil, err
	}
	b := &liveLatencyBench{world: w, c0: w.Comm(0), echoErr: make(chan error, 1)}
	go func() {
		c1 := w.Comm(1)
		for {
			data, st, err := c1.Recv(0, mpi.AnyTag)
			if err != nil {
				b.echoErr <- err
				return
			}
			if st.Tag == 1 { // shutdown
				b.echoErr <- nil
				return
			}
			if err := c1.Send(0, 0, data); err != nil {
				b.echoErr <- err
				return
			}
		}
	}()

	b.rpcSrv = hadooprpc.NewServer()
	b.rpcSrv.Register(hadooprpc.NewEchoProtocol())
	addr, err := b.rpcSrv.Listen("127.0.0.1:0")
	if err != nil {
		b.Close()
		return nil, err
	}
	b.rpcCli, err = hadooprpc.Dial(addr, hadooprpc.EchoProtocolName, hadooprpc.EchoProtocolVersion)
	if err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// measure returns the one-way latency (ping-pong / 2) of both substrates
// for one message size.
func (b *liveLatencyBench) measure(size int64) (mpiLat, rpcLat time.Duration, err error) {
	payload := make([]byte, size)
	reps := liveReps(size)

	// MPI ping-pong.
	var mpiTotal time.Duration
	for i := 0; i < reps+liveWarmup; i++ {
		start := time.Now()
		if err := b.c0.Send(1, 0, payload); err != nil {
			return 0, 0, err
		}
		if _, _, err := b.c0.Recv(1, 0); err != nil {
			return 0, 0, err
		}
		if i >= liveWarmup {
			mpiTotal += time.Since(start)
		}
	}
	mpiLat = mpiTotal / time.Duration(2*reps)

	// RPC ping-pong: one Call is a full round trip.
	var rpcTotal time.Duration
	for i := 0; i < reps+liveWarmup; i++ {
		start := time.Now()
		if _, err := b.rpcCli.Call("recv", payload); err != nil {
			return 0, 0, err
		}
		if i >= liveWarmup {
			rpcTotal += time.Since(start)
		}
	}
	rpcLat = rpcTotal / time.Duration(2*reps)
	return mpiLat, rpcLat, nil
}

// Close tears the substrates down.
func (b *liveLatencyBench) Close() {
	if b.c0 != nil {
		b.c0.Send(1, 1, nil) // stop echo loop; error irrelevant on teardown
	}
	if b.world != nil {
		b.world.Close()
	}
	if b.rpcCli != nil {
		b.rpcCli.Close()
	}
	if b.rpcSrv != nil {
		b.rpcSrv.Close()
	}
}

// --------------------------------------------------------------------------
// Bandwidth (Figure 3)

// pushProtocol is the RPC bandwidth protocol: the payload travels as the
// call parameter (the paper "transfer[s] the data through the parameter in
// the RPC method"); the response is a one-byte ack.
func pushProtocol() *hadooprpc.Protocol {
	return &hadooprpc.Protocol{
		Name:    "org.ict.mpid.PushProtocol",
		Version: 1,
		Methods: map[string]hadooprpc.Handler{
			"push": func(params [][]byte) ([]byte, error) {
				if len(params) != 1 {
					return nil, fmt.Errorf("push wants 1 parameter, got %d", len(params))
				}
				return []byte{1}, nil
			},
		},
	}
}

type liveBandwidthBench struct {
	world *mpi.World
	c0    *mpi.Comm

	rpcSrv *hadooprpc.Server
	rpcCli *hadooprpc.Client

	jettySrv  *jetty.Server
	jettyCli  *jetty.Client
	jettyAddr string

	rawLn   net.Listener
	rawConn net.Conn

	sinkErr chan error
}

func newLiveBandwidthBench(transport string) (*liveBandwidthBench, error) {
	if transport == "" {
		transport = "tcp+writev"
	}
	b := &liveBandwidthBench{sinkErr: make(chan error, 4)}
	ok := false
	defer func() {
		if !ok {
			b.Close()
		}
	}()

	// MPI: rank 1 sinks data packets (tag 0) and acks batch ends (tag 2).
	w, err := NewTransportWorld(transport, 2)
	if err != nil {
		return nil, err
	}
	b.world, b.c0 = w, w.Comm(0)
	go func() {
		c1 := w.Comm(1)
		for {
			_, st, err := c1.Recv(0, mpi.AnyTag)
			if err != nil {
				b.sinkErr <- err
				return
			}
			switch st.Tag {
			case 1: // shutdown
				b.sinkErr <- nil
				return
			case 2: // batch end: ack
				if err := c1.Send(0, 2, nil); err != nil {
					b.sinkErr <- err
					return
				}
			}
		}
	}()

	// Hadoop RPC push server.
	b.rpcSrv = hadooprpc.NewServer()
	b.rpcSrv.Register(pushProtocol())
	rpcAddr, err := b.rpcSrv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if b.rpcCli, err = hadooprpc.Dial(rpcAddr, "org.ict.mpid.PushProtocol", 1); err != nil {
		return nil, err
	}

	// Jetty stream server.
	b.jettySrv = jetty.NewServer(jetty.NewStore())
	if b.jettyAddr, err = b.jettySrv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	b.jettyCli = jetty.NewClient()

	// Raw TCP sink.
	if b.rawLn, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
		return nil, err
	}
	go func() {
		conn, err := b.rawLn.Accept()
		if err != nil {
			return
		}
		// Discard everything; reply one byte per 'A' ack request is not
		// needed — sender measures by write completion + final ack byte.
		buf := make([]byte, 1<<20)
		r := bufio.NewReaderSize(conn, 1<<20)
		for {
			if _, err := r.Read(buf); err != nil {
				conn.Close()
				return
			}
		}
	}()
	if b.rawConn, err = net.Dial("tcp", b.rawLn.Addr().String()); err != nil {
		return nil, err
	}
	ok = true
	return b, nil
}

// liveTotal returns the bytes moved per series point, scaled down from the
// paper's 128 MB so small-packet points finish in reasonable wall time.
func liveTotal(packet int64) int64 {
	switch {
	case packet < 256:
		return 1 << 20 // 1 MB in tiny packets is already thousands of ops
	case packet < 64<<10:
		return 16 << 20
	default:
		return 128 << 20
	}
}

// measure produces one Figure 3 row live.
func (b *liveBandwidthBench) measure(packet int64) (Figure3Row, error) {
	row := Figure3Row{Packet: packet}
	payload := make([]byte, packet)
	total := liveTotal(packet)
	n := total / packet
	if n < 1 {
		n = 1
	}

	// Hadoop RPC: one call per packet, serialized — cap the op count so
	// tiny packets finish; bandwidth is a rate so the series stands.
	calls := n
	if calls > 512 {
		calls = 512
	}
	start := time.Now()
	for i := int64(0); i < calls; i++ {
		if _, err := b.rpcCli.Call("push", payload); err != nil {
			return row, fmt.Errorf("rpc push: %w", err)
		}
	}
	row.RPC = float64(calls*packet) / time.Since(start).Seconds()

	// MPI: stream packets, then one acked batch-end marker.
	start = time.Now()
	for i := int64(0); i < n; i++ {
		if err := b.c0.Send(1, 0, payload); err != nil {
			return row, fmt.Errorf("mpi send: %w", err)
		}
	}
	if err := b.c0.Send(1, 2, nil); err != nil {
		return row, err
	}
	if _, _, err := b.c0.Recv(1, 2); err != nil {
		return row, err
	}
	row.MPI = float64(n*packet) / time.Since(start).Seconds()

	// Jetty: stream `total` bytes written server-side in `packet` chunks.
	b.jettyCli.ReadChunk = int(packet)
	if b.jettyCli.ReadChunk < 1 {
		b.jettyCli.ReadChunk = 1
	}
	start = time.Now()
	got, err := b.jettyCli.FetchStream(b.jettyAddr, total, int(packet))
	if err != nil {
		return row, fmt.Errorf("jetty stream: %w", err)
	}
	row.Jetty = float64(got) / time.Since(start).Seconds()

	// Raw TCP: plain writes of packet size.
	start = time.Now()
	for i := int64(0); i < n; i++ {
		if _, err := b.rawConn.Write(payload); err != nil {
			return row, fmt.Errorf("raw tcp: %w", err)
		}
	}
	row.RawTCP = float64(n*packet) / time.Since(start).Seconds()
	return row, nil
}

// Close tears everything down.
func (b *liveBandwidthBench) Close() {
	if b.c0 != nil {
		b.c0.Send(1, 1, nil)
	}
	if b.world != nil {
		b.world.Close()
	}
	if b.rpcCli != nil {
		b.rpcCli.Close()
	}
	if b.rpcSrv != nil {
		b.rpcSrv.Close()
	}
	if b.jettyCli != nil {
		b.jettyCli.Close()
	}
	if b.jettySrv != nil {
		b.jettySrv.Close()
	}
	if b.rawConn != nil {
		b.rawConn.Close()
	}
	if b.rawLn != nil {
		b.rawLn.Close()
	}
}

var _ io.Reader = (*bufio.Reader)(nil) // keep imports honest
