package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/ict-repro/mpid/internal/kv"
)

// TestWorkloadSuiteThreeEngineEquality is the equality gate as a test: every
// bench case — including the Zipf(1.5) skewed-key TeraSort, whose duplicate
// keys used to flip Pairs() ordering between runs — must produce
// byte-identical canonical output on the fast MPI-D core, the legacy core,
// and the mini-Hadoop engine. CI runs this under -race alongside the core
// equivalence suite.
func TestWorkloadSuiteThreeEngineEquality(t *testing.T) {
	cfg := SmokeWorkloadBench()
	for _, c := range benchCases(cfg) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fast, legacy, had, err := caseRunners(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, shuffled, err := fast()
			if err != nil {
				t.Fatalf("fast core: %v", err)
			}
			if len(want) == 0 {
				t.Fatal("fast core produced no output")
			}
			if shuffled == 0 {
				t.Fatal("fast core reported zero shuffle bytes")
			}
			legacyOut, _, err := legacy()
			if err != nil {
				t.Fatalf("legacy core: %v", err)
			}
			if !pairsEqual(want, legacyOut) {
				t.Fatalf("legacy core output differs (%d vs %d pairs)", len(legacyOut), len(want))
			}
			hadoopOut, _, err := had()
			if err != nil {
				t.Fatalf("hadoop engine: %v", err)
			}
			if !pairsEqual(want, hadoopOut) {
				t.Fatalf("hadoop output differs (%d vs %d pairs)", len(hadoopOut), len(want))
			}
		})
	}
}

// TestSkewedTeraSortStressesDuplicates pins the property that makes the
// skewed case a regression test at all: Zipf(1.5) keys must actually
// produce a duplicate-dominated output, or the equality gate above would
// pass vacuously on unique keys.
func TestSkewedTeraSortStressesDuplicates(t *testing.T) {
	cfg := SmokeWorkloadBench()
	for _, c := range benchCases(cfg) {
		if c.name != "terasort-skew" {
			continue
		}
		fast, _, _, err := caseRunners(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pairs, _, err := fast()
		if err != nil {
			t.Fatal(err)
		}
		dups := 0
		for i := 1; i < len(pairs); i++ {
			if c := kv.Compare(pairs[i-1].Key, pairs[i].Key); c > 0 {
				t.Fatalf("pair %d out of order", i)
			} else if c == 0 {
				dups++
			}
		}
		if dups*5 < len(pairs) {
			t.Fatalf("only %d/%d duplicate-key adjacencies; skew too weak to stress canonicalization", dups, len(pairs))
		}
		return
	}
	t.Fatal("no terasort-skew case in the bench")
}

// TestPageRankChainedFixedPointAcrossEngines chains enough PageRank rounds
// to converge, on each engine independently, and asserts (a) every engine
// lands on byte-identical final state and (b) that state is a fixed point:
// rank mass 1 and a vanishing final-round delta.
func TestPageRankChainedFixedPointAcrossEngines(t *testing.T) {
	cfg := SmokeWorkloadBench()
	cfg.PageRankRounds = 14
	var c *benchCase
	for _, bc := range benchCases(cfg) {
		if bc.spec == "pagerank" {
			bc := bc
			c = &bc
			break
		}
	}
	if c == nil {
		t.Fatal("no pagerank case in the bench")
	}

	ranks := func(pairs []kv.Pair) map[string]float64 {
		out := make(map[string]float64, len(pairs))
		for _, p := range pairs {
			fields := strings.Fields(string(p.Value))
			r, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("bad rank in %q: %v", p.Value, err)
			}
			out[fields[0]] = r
		}
		return out
	}

	fast, legacy, had, err := caseRunners(*c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	atN, _, err := fast()
	if err != nil {
		t.Fatal(err)
	}
	legacyOut, _, err := legacy()
	if err != nil {
		t.Fatal(err)
	}
	hadoopOut, _, err := had()
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(atN, legacyOut) || !pairsEqual(atN, hadoopOut) {
		t.Fatal("engines disagree on the chained PageRank state")
	}

	var mass float64
	for _, r := range ranks(atN) {
		mass += r
	}
	if math.Abs(mass-1) > 0.02 {
		t.Fatalf("rank mass %f diverged from 1", mass)
	}

	// One more round must move no vertex by more than 1e-6.
	cfg.PageRankRounds++
	fast1, _, _, err := caseRunners(*c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	atN1, _, err := fast1()
	if err != nil {
		t.Fatal(err)
	}
	prev, next := ranks(atN), ranks(atN1)
	var delta float64
	for v, r := range next {
		if d := math.Abs(r - prev[v]); d > delta {
			delta = d
		}
	}
	if delta > 1e-6 {
		t.Fatalf("not at fixed point: max per-vertex delta %g after %d rounds", delta, cfg.PageRankRounds-1)
	}
}
