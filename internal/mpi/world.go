package mpi

import (
	"errors"
	"fmt"
	"sync"

	"github.com/ict-repro/mpid/internal/bufpool"
)

// World is a set of communicating ranks sharing one transport. Create one
// with NewWorld (in-process) or NewTCPWorld (sockets), obtain per-rank
// communicators with Comm, and Close it when done.
type World struct {
	size int
	eps  []*endpoint
	tr   transport

	mu     sync.Mutex
	closed bool
}

// NewWorld creates an in-process world of n ranks. Ranks are goroutines;
// message hand-off is zero-copy.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", n))
	}
	eps := make([]*endpoint, n)
	for i := range eps {
		eps[i] = newEndpoint()
	}
	return &World{size: n, eps: eps, tr: &procTransport{eps: eps}}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the communicator for the given rank. Each rank must use its
// own communicator from its own goroutine.
func (w *World) Comm(rank int) *Comm {
	if err := validateRank(rank, w.size); err != nil {
		panic(err)
	}
	return &Comm{world: w, worldRank: rank, rank: rank, ep: w.eps[rank]}
}

// Close shuts the world down: blocked receives return ErrWorldClosed.
// Close is idempotent.
func (w *World) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	for _, ep := range w.eps {
		ep.close()
	}
	return w.tr.close()
}

// procTransport delivers directly into the destination endpoint queue.
type procTransport struct {
	eps []*endpoint
}

func (t *procTransport) send(to int, m Message) error {
	return t.eps[to].deliver(m)
}

func (t *procTransport) close() error { return nil }

func (t *procTransport) copies() bool { return false }

func (t *procTransport) recvPool() *bufpool.Pool { return nil }

// Run executes body once per rank, each in its own goroutine, over a fresh
// in-process world, and waits for all of them. It returns the first non-nil
// error (other ranks may then unblock with ErrWorldClosed as the world is
// torn down). This is the moral equivalent of mpirun -np n.
func Run(n int, body func(*Comm) error) error {
	w := NewWorld(n)
	defer w.Close()
	return RunOn(w, body)
}

// RunOn executes body once per rank of an existing world and waits.
func RunOn(w *World, body func(*Comm) error) error {
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					w.Close() // unblock peers
				}
			}()
			if err := body(w.Comm(rank)); err != nil {
				errs[rank] = err
				w.Close() // unblock peers waiting on this rank
			}
		}(r)
	}
	wg.Wait()
	// Prefer a root-cause error over the ErrWorldClosed noise peers report
	// when the world is torn down under them.
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrWorldClosed) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// Comm is a rank's handle on a communicator: all point-to-point and
// collective operations go through it. The world communicator comes from
// World.Comm; sub-communicators from Split and Dup. A Comm is confined to
// its rank's goroutine, except that Isend/Irecv requests may be waited on
// from anywhere.
type Comm struct {
	world     *World
	worldRank int // this process's rank in the world
	rank      int // this process's rank within this communicator
	ep        *endpoint

	id    int   // communicator id; 0 is the world communicator
	group []int // group[i] = world rank of comm rank i; nil = identity

	collSeq  int // collective sequence number; aligned across ranks by call order
	splitSeq int // split/dup sequence number; aligned across ranks by call order
}

// Rank returns this process's rank within the communicator, in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// SendCopies reports whether Send copies the payload before returning. When
// true (TCP transport) the caller may reuse its buffer immediately after
// Send; when false (in-process transport) ownership transfers with the
// message, as Send documents. MPI-D's spill path uses this to recycle
// realigned partition buffers across spills where it is safe.
func (c *Comm) SendCopies() bool { return c.world.tr.copies() }

// RecvBufferPool returns the pool the transport draws received frame
// payloads from, or nil (in-process transport). A receiver that has fully
// consumed a payload — and holds no aliases into it — may Put it back so
// steady-state frame reads stop allocating; returning foreign buffers is
// harmless.
func (c *Comm) RecvBufferPool() *bufpool.Pool { return c.world.tr.recvPool() }

// Size returns the communicator size.
func (c *Comm) Size() int {
	if c.group == nil {
		return c.world.size
	}
	return len(c.group)
}

// WorldRank returns this process's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.worldRank }

// toWorld translates a communicator rank to a world rank.
func (c *Comm) toWorld(rank int) int {
	if c.group == nil {
		return rank
	}
	return c.group[rank]
}

// toSub translates a world rank back to this communicator's rank. It
// panics on a rank outside the group: the transport only delivers messages
// tagged with this communicator's id, which members alone can send.
func (c *Comm) toSub(worldRank int) int {
	if c.group == nil {
		return worldRank
	}
	for i, w := range c.group {
		if w == worldRank {
			return i
		}
	}
	panic(fmt.Sprintf("mpi: world rank %d is not in communicator %d", worldRank, c.id))
}

// Send transmits data to rank `to` with the given tag. It is a buffered
// (eager) send: it returns once the message is handed to the transport.
// Ownership of data transfers with the message — the caller must not modify
// the slice afterwards (the in-process transport is zero-copy).
func (c *Comm) Send(to, tag int, data []byte) error {
	if err := validateRank(to, c.Size()); err != nil {
		return err
	}
	if err := validateTag(tag); err != nil {
		return err
	}
	return c.send(to, tag, data)
}

// send skips user-tag validation so collectives can use reserved tags. The
// destination is a communicator rank; the envelope carries world ranks and
// the communicator id.
func (c *Comm) send(to, tag int, data []byte) error {
	return c.world.tr.send(c.toWorld(to), Message{Source: c.worldRank, Tag: tag, Comm: c.id, Data: data})
}

// Recv blocks until a message matching (source, tag) arrives and returns
// its payload. source may be AnySource and tag may be AnyTag; the returned
// Status carries the actual envelope.
func (c *Comm) Recv(source, tag int) ([]byte, Status, error) {
	if source != AnySource {
		if err := validateRank(source, c.Size()); err != nil {
			return nil, Status{}, err
		}
	}
	if tag != AnyTag {
		if err := validateTag(tag); err != nil {
			return nil, Status{}, err
		}
	}
	return c.recv(source, tag)
}

func (c *Comm) recv(source, tag int) ([]byte, Status, error) {
	worldSource := source
	if source != AnySource {
		worldSource = c.toWorld(source)
	}
	m, err := c.ep.recv(c.id, worldSource, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return m.Data, Status{Source: c.toSub(m.Source), Tag: m.Tag, Size: len(m.Data)}, nil
}

// crecv is the collective-internal receive: from is a communicator rank,
// the payload alone is returned.
func (c *Comm) crecv(from, tag int) ([]byte, error) {
	m, err := c.ep.recv(c.id, c.toWorld(from), tag)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Probe blocks until a message matching (source, tag) is available and
// returns its status without receiving it.
func (c *Comm) Probe(source, tag int) (Status, error) {
	worldSource := source
	if source != AnySource {
		worldSource = c.toWorld(source)
	}
	st, err := c.ep.probe(c.id, worldSource, tag)
	if err != nil {
		return st, err
	}
	st.Source = c.toSub(st.Source)
	return st, nil
}

// Iprobe reports whether a matching message is available, without blocking.
func (c *Comm) Iprobe(source, tag int) (Status, bool, error) {
	worldSource := source
	if source != AnySource {
		worldSource = c.toWorld(source)
	}
	st, ok, err := c.ep.iprobe(c.id, worldSource, tag)
	if err != nil || !ok {
		return st, ok, err
	}
	st.Source = c.toSub(st.Source)
	return st, ok, nil
}

// Request is a handle on a non-blocking operation. Wait blocks until it
// completes; Test polls.
type Request struct {
	once sync.Once
	done chan struct{}
	data []byte
	st   Status
	err  error
}

func newRequest() *Request { return &Request{done: make(chan struct{})} }

func (r *Request) complete(data []byte, st Status, err error) {
	r.once.Do(func() {
		r.data, r.st, r.err = data, st, err
		close(r.done)
	})
}

// Wait blocks until the operation completes. For receives, the payload is
// returned; for sends the payload is nil.
func (r *Request) Wait() ([]byte, Status, error) {
	<-r.done
	return r.data, r.st, r.err
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a non-blocking send and returns immediately. The same
// ownership rule as Send applies from the moment Isend is called.
func (c *Comm) Isend(to, tag int, data []byte) *Request {
	req := newRequest()
	if err := validateRank(to, c.Size()); err != nil {
		req.complete(nil, Status{}, err)
		return req
	}
	if err := validateTag(tag); err != nil {
		req.complete(nil, Status{}, err)
		return req
	}
	go func() {
		err := c.send(to, tag, data)
		req.complete(nil, Status{}, err)
	}()
	return req
}

// Irecv starts a non-blocking receive for (source, tag).
func (c *Comm) Irecv(source, tag int) *Request {
	req := newRequest()
	if source != AnySource {
		if err := validateRank(source, c.Size()); err != nil {
			req.complete(nil, Status{}, err)
			return req
		}
	}
	if tag != AnyTag {
		if err := validateTag(tag); err != nil {
			req.complete(nil, Status{}, err)
			return req
		}
	}
	go func() {
		data, st, err := c.recv(source, tag)
		req.complete(data, st, err)
	}()
	return req
}

// WaitAll waits for every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
