package mpi

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
)

// TestTCPConnRefusedAtConnFor kills a rank's listener before any connection
// to it exists: the lazy dial in connFor must surface the refusal as a send
// error without disturbing the rest of the mesh.
func TestTCPConnRefusedAtConnFor(t *testing.T) {
	w, err := NewTCPWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tr := w.tr.(*tcpTransport)
	tr.listeners[1].Close()

	if err := w.Comm(0).Send(1, 1, []byte("into the void")); err == nil {
		t.Fatal("send to dead rank succeeded")
	}
	// Other pairs are unaffected.
	if err := w.Comm(0).Send(2, 1, []byte("alive")); err != nil {
		t.Fatalf("send to live rank: %v", err)
	}
	if data, _, err := w.Comm(2).Recv(0, 1); err != nil || string(data) != "alive" {
		t.Fatalf("recv on live rank: %q, %v", data, err)
	}
}

// TestTCPMidMessageCloseDoesNotPoisonRank feeds rank 1's listener a
// truncated frame (header promising more bytes than arrive) on a raw
// connection that then dies. The read loop for that connection must exit
// quietly; the rank keeps receiving on other connections.
func TestTCPMidMessageCloseDoesNotPoisonRank(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tr := w.tr.(*tcpTransport)

	raw, err := net.Dial("tcp", tr.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], 0)    // src
	binary.BigEndian.PutUint32(hdr[4:8], 7)    // tag
	binary.BigEndian.PutUint64(hdr[8:16], 0)   // comm
	binary.BigEndian.PutUint32(hdr[16:20], 99) // promises 99 bytes...
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("only ten b")); err != nil { // ...delivers 10
		t.Fatal(err)
	}
	raw.Close()

	// The complete message on a healthy connection must still arrive, and
	// the torn frame must never be delivered.
	if err := w.Comm(0).Send(1, 7, []byte("whole")); err != nil {
		t.Fatal(err)
	}
	data, st, err := w.Comm(1).Recv(0, 7)
	if err != nil || string(data) != "whole" {
		t.Fatalf("recv = %q, %+v, %v", data, st, err)
	}
	if _, ok, _ := w.Comm(1).Iprobe(AnySource, AnyTag); ok {
		t.Fatal("truncated frame was delivered")
	}
}

// TestTCPAnySourceReceiveWhileSenderDies has two senders racing to an
// ANY_SOURCE receiver while one of them is killed by an injected fault: the
// receiver must still complete with the surviving sender's message.
func TestTCPAnySourceReceiveWhileSenderDies(t *testing.T) {
	inj := faults.New(1, faults.Rule{Component: "mpi.rank1", Operation: "send", Action: faults.Drop})
	w, err := NewTCPWorldWithFaults(3, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	recvd := make(chan error, 1)
	go func() {
		data, st, err := w.Comm(0).Recv(AnySource, 9)
		if err == nil && (st.Source != 2 || string(data) != "survivor") {
			t.Errorf("recv = %q from rank %d", data, st.Source)
		}
		recvd <- err
	}()
	// Rank 1 dies on its send; deterministic under the rule above.
	if err := w.Comm(1).Send(0, 9, []byte("casualty")); !faults.IsInjected(err) {
		t.Fatalf("dead sender's send: %v, want injected", err)
	}
	if err := w.Comm(2).Send(0, 9, []byte("survivor")); err != nil {
		t.Fatalf("surviving sender: %v", err)
	}
	select {
	case err := <-recvd:
		if err != nil {
			t.Fatalf("receiver: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ANY_SOURCE receive hung after sender death")
	}
}

// TestTCPSendRetriesAfterInjectedDrop verifies the transport forgets a
// dropped connection: the send after the fault redials and succeeds.
func TestTCPSendRetriesAfterInjectedDrop(t *testing.T) {
	inj := faults.New(1, faults.Rule{Component: "mpi.rank0", Operation: "write", Until: 1, Action: faults.Drop})
	w, err := NewTCPWorldWithFaults(2, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// First send dies on the wrapped conn's write fault.
	if err := w.Comm(0).Send(1, 3, []byte("lost")); !faults.IsInjected(err) {
		t.Fatalf("first send: %v, want injected", err)
	}
	// Second send must redial rather than reuse the closed socket.
	if err := w.Comm(0).Send(1, 3, []byte("after redial")); err != nil {
		t.Fatalf("second send: %v", err)
	}
	if data, _, err := w.Comm(1).Recv(0, 3); err != nil || string(data) != "after redial" {
		t.Fatalf("recv = %q, %v", data, err)
	}
}
