package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSplitEvenOdd(t *testing.T) {
	// Classic even/odd split: two sub-communicators, ranks ordered by key
	// (= old rank here), collectives confined to each half.
	err := Run(6, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d, want 3", sub.Size())
		}
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("world rank %d got sub rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Sum world ranks within the sub-communicator: evens 0+2+4=6,
		// odds 1+3+5=9.
		out, err := sub.Allreduce(EncodeInt64(int64(c.Rank())), SumInt64)
		if err != nil {
			return err
		}
		want := int64(6)
		if c.Rank()%2 == 1 {
			want = 9
		}
		if got := DecodeInt64(out); got != want {
			return fmt.Errorf("sub allreduce = %d, want %d", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	// Reverse keys: new ranks are the reverse of old ranks.
	err := Run(4, func(c *Comm) error {
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		want := 3 - c.Rank()
		if sub.Rank() != want {
			return fmt.Errorf("world %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedOptsOut(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		color := 0
		if c.Rank() == 2 {
			color = Undefined
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			if sub != nil {
				return fmt.Errorf("opted-out rank got a communicator")
			}
			return nil
		}
		if sub.Size() != 4 {
			return fmt.Errorf("sub size = %d, want 4", sub.Size())
		}
		return sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitTrafficIsolation(t *testing.T) {
	// A message sent on the parent must not match a receive on the child
	// with the same tag, and vice versa.
	err := Run(2, func(c *Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("parent")); err != nil {
				return err
			}
			return sub.Send(1, 7, []byte("child"))
		}
		// Receive on the child first: must get the child message even
		// though the parent's arrived earlier.
		data, _, err := sub.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "child" {
			return fmt.Errorf("child recv got %q", data)
		}
		data, _, err = c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "parent" {
			return fmt.Errorf("parent recv got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitSiblingIsolation(t *testing.T) {
	// Sibling communicators from one Split call must have distinct ids.
	err := Run(4, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			return err
		}
		// Exchange sub ids through the parent and check evens != odds.
		ids, err := c.Allgather(EncodeInt64(int64(sub.id)))
		if err != nil {
			return err
		}
		if DecodeInt64(ids[0]) == DecodeInt64(ids[1]) {
			return fmt.Errorf("sibling communicators share id %d", DecodeInt64(ids[0]))
		}
		if DecodeInt64(ids[0]) != DecodeInt64(ids[2]) {
			return fmt.Errorf("same-color members disagree on id")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitStatusSourceIsSubRank(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		sub, err := c.Split(0, -c.Rank()) // reversed ranks
		if err != nil {
			return err
		}
		// Sub rank 0 is world rank 3.
		if sub.Rank() == 0 {
			data, st, err := sub.Recv(AnySource, 1)
			if err != nil {
				return err
			}
			if st.Source != 3 { // world rank 0 has sub rank 3
				return fmt.Errorf("status source = %d, want sub rank 3", st.Source)
			}
			if string(data) != "hi" {
				return fmt.Errorf("payload %q", data)
			}
			// Probe path too.
			st2, err := sub.Probe(AnySource, 2)
			if err != nil {
				return err
			}
			if st2.Source != 2 { // world rank 1 has sub rank 2
				return fmt.Errorf("probe source = %d, want 2", st2.Source)
			}
			if _, _, err := sub.Recv(st2.Source, 2); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			return sub.Send(0, 1, []byte("hi"))
		}
		if c.Rank() == 1 {
			return sub.Send(0, 2, []byte("yo"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	// Split a split: 8 -> two 4s -> four 2s, with working collectives at
	// the innermost level.
	err := Run(8, func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size = %d", quarter.Size())
		}
		out, err := quarter.Allreduce(EncodeInt64(1), SumInt64)
		if err != nil {
			return err
		}
		if DecodeInt64(out) != 2 {
			return fmt.Errorf("quarter allreduce = %d", DecodeInt64(out))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupIsolatesTraffic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if dup.Rank() != c.Rank() || dup.Size() != c.Size() {
			return fmt.Errorf("dup rank/size mismatch")
		}
		if c.Rank() == 0 {
			if err := dup.Send(1, 3, []byte("on-dup")); err != nil {
				return err
			}
			return c.Send(1, 3, []byte("on-world"))
		}
		data, _, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		if string(data) != "on-world" {
			return fmt.Errorf("world recv got %q", data)
		}
		data, _, err = dup.Recv(0, 3)
		if err != nil {
			return err
		}
		if string(data) != "on-dup" {
			return fmt.Errorf("dup recv got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitInvalidColor(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if _, err := c.Split(-5, 0); err == nil {
			return fmt.Errorf("color -5 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitOverTCP(t *testing.T) {
	w, err := NewTCPWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = RunOn(w, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		out, err := sub.Allreduce(EncodeInt64(int64(c.Rank())), SumInt64)
		if err != nil {
			return err
		}
		want := int64(2) // 0+2
		if c.Rank()%2 == 1 {
			want = 4 // 1+3
		}
		if DecodeInt64(out) != want {
			return fmt.Errorf("tcp sub allreduce = %d, want %d", DecodeInt64(out), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldRankExposed(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		if sub.WorldRank() != c.Rank() {
			return fmt.Errorf("WorldRank = %d, want %d", sub.WorldRank(), c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	// Classic ring shift: everyone sends right, receives from left,
	// simultaneously — deadlocks if Sendrecv is not eager-safe.
	const n = 5
	err := Run(n, func(c *Comm) error {
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		data, st, err := c.Sendrecv(right, []byte{byte(c.Rank())}, left, 4)
		if err != nil {
			return err
		}
		if st.Source != left || data[0] != byte(left) {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), data, st.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, _, err := c.Sendrecv(9, nil, 1, 1); err == nil {
			return fmt.Errorf("bad destination accepted")
		}
		if _, _, err := c.Sendrecv(1, nil, 9, 1); err == nil {
			return fmt.Errorf("bad source accepted")
		}
		if _, _, err := c.Sendrecv(1, nil, 1, -9); err == nil {
			return fmt.Errorf("bad tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvVariableSizes(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		parts := make([][]byte, n)
		for j := range parts {
			// Rank i sends j bytes of value i to rank j (possibly zero).
			parts[j] = bytes.Repeat([]byte{byte(c.Rank())}, j)
		}
		got, err := c.Alltoallv(parts)
		if err != nil {
			return err
		}
		for i, g := range got {
			if len(g) != c.Rank() {
				return fmt.Errorf("rank %d: from %d got %d bytes, want %d", c.Rank(), i, len(g), c.Rank())
			}
			for _, b := range g {
				if b != byte(i) {
					return fmt.Errorf("rank %d: payload from %d corrupted", c.Rank(), i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
