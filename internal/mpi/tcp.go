package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/ict-repro/mpid/internal/bufpool"
	"github.com/ict-repro/mpid/internal/faults"
)

// NewTCPWorld creates a world of n ranks whose messages travel over real TCP
// sockets on the loopback interface. Rank goroutines still live in this
// process (Go cannot fork MPI-style), but every byte crosses the kernel
// socket path, which is what the latency/bandwidth harness measures.
func NewTCPWorld(n int) (*World, error) {
	return NewTCPWorldWithFaults(n, nil)
}

// rankComponent is how TCP world ranks are named to a fault injector.
func rankComponent(rank int) string { return fmt.Sprintf("mpi.rank%d", rank) }

// NewTCPWorldWithFaults creates a TCP world whose transport consults a fault
// injector. Rank r is the component "mpi.rank<r>"; injection points are
// "dial" and "send" on the sending rank (peer = destination component), plus
// "read"/"write" through the wrapped per-pair connections. A nil injector
// yields a plain TCP world.
func NewTCPWorldWithFaults(n int, inj *faults.Injector) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", n)
	}
	eps := make([]*endpoint, n)
	for i := range eps {
		eps[i] = newEndpoint()
	}
	tr := &tcpTransport{
		eps:       eps,
		addrs:     make([]string, n),
		listeners: make([]net.Listener, n),
		conns:     make(map[connKey]*tcpConn),
		inj:       inj,
		pool:      bufpool.New(),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("mpi: listen for rank %d: %w", i, err)
		}
		tr.listeners[i] = ln
		tr.addrs[i] = ln.Addr().String()
		tr.wg.Add(1)
		go tr.acceptLoop(i, ln)
	}
	return &World{size: n, eps: eps, tr: tr}, nil
}

// connKey identifies a directed (source, destination) connection.
type connKey struct{ src, dst int }

// tcpConn serializes writes from concurrent senders on one connection.
// waiters counts senders inside send() for this connection; the last one
// out flushes, so back-to-back small sends (an Async spill's Isends, the
// Done fan-out at CloseSend) coalesce into one syscall instead of one
// flush per frame.
type tcpConn struct {
	mu      sync.Mutex
	c       net.Conn
	w       *bufio.Writer
	waiters atomic.Int32
}

// tcpTransport maintains a lazy full mesh of connections. One connection per
// directed pair keeps per-pair FIFO ordering, which the matching semantics
// rely on.
type tcpTransport struct {
	eps       []*endpoint
	addrs     []string
	listeners []net.Listener
	inj       *faults.Injector // nil injects nothing
	pool      *bufpool.Pool    // frame payload buffers, shared with receivers

	mu     sync.Mutex
	conns  map[connKey]*tcpConn
	closed bool
	wg     sync.WaitGroup
}

// frameHeader is src(int32) tag(int32) comm(uint64) length(uint32).
const frameHeaderSize = 20

// eagerThreshold is the eager/rendezvous split point. Messages below it are
// copied into the connection's buffered writer (eager: the sender's buffer
// is free on return, flushes batch across back-to-back sends); messages at
// or above it flush the writer and then stream straight from the caller's
// buffer into the socket, skipping the intermediate bufio copy — the moral
// equivalent of MPI's rendezvous protocol for large realigned partitions.
const eagerThreshold = 64 << 10

func (t *tcpTransport) acceptLoop(rank int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(rank, conn)
	}
}

func (t *tcpTransport) readLoop(rank int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 256*1024)
	var hdr [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		src := int(int32(binary.BigEndian.Uint32(hdr[0:4])))
		tag := int(int32(binary.BigEndian.Uint32(hdr[4:8])))
		comm := int(binary.BigEndian.Uint64(hdr[8:16]))
		size := binary.BigEndian.Uint32(hdr[16:20])
		var data []byte
		if size > 0 {
			data = t.pool.Get(int(size))
			if _, err := io.ReadFull(r, data); err != nil {
				return
			}
		}
		if err := t.eps[rank].deliver(Message{Source: src, Tag: tag, Comm: comm, Data: data}); err != nil {
			return
		}
	}
}

func (t *tcpTransport) connFor(src, dst int) (*tcpConn, error) {
	key := connKey{src, dst}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrWorldClosed
	}
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	if err := t.inj.Check(rankComponent(src), "dial", rankComponent(dst)); err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", t.addrs[dst])
	if err != nil {
		return nil, fmt.Errorf("mpi: dial rank %d: %w", dst, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency benchmark sends tiny frames
	}
	wrapped := faults.WrapConn(conn, t.inj, rankComponent(src), rankComponent(dst))
	c := &tcpConn{c: wrapped, w: bufio.NewWriterSize(wrapped, 256*1024)}
	t.conns[key] = c
	return c, nil
}

// dropConn forgets a connection whose injected fault closed it, so a later
// send to the same pair redials instead of writing into a dead socket.
func (t *tcpTransport) dropConn(src, dst int, c *tcpConn) {
	t.mu.Lock()
	if t.conns != nil && t.conns[connKey{src, dst}] == c {
		delete(t.conns, connKey{src, dst})
	}
	t.mu.Unlock()
	c.c.Close()
}

func (t *tcpTransport) send(to int, m Message) error {
	if m.Tag > (1<<31-1) || m.Tag < -(1<<31) {
		return fmt.Errorf("mpi: tag %d does not fit the TCP frame", m.Tag)
	}
	if int64(len(m.Data)) > (1<<32 - 1) {
		return errors.New("mpi: message over 4 GiB cannot be framed")
	}
	if err := t.inj.Check(rankComponent(m.Source), "send", rankComponent(to)); err != nil {
		return err
	}
	c, err := t.connFor(m.Source, to)
	if err != nil {
		return err
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(int32(m.Source)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(m.Tag)))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(m.Comm))
	binary.BigEndian.PutUint32(hdr[16:20], uint32(len(m.Data)))
	c.waiters.Add(1)
	c.mu.Lock()
	_, err = c.w.Write(hdr[:])
	if len(m.Data) >= eagerThreshold {
		// Rendezvous: push the header (and any batched eager frames) out,
		// then stream the payload straight from the caller's buffer. The
		// waiter count is irrelevant here — the direct write leaves nothing
		// buffered behind it.
		if err == nil {
			err = c.w.Flush()
		}
		if err == nil {
			_, err = c.c.Write(m.Data)
		}
		c.waiters.Add(-1)
	} else {
		if err == nil && len(m.Data) > 0 {
			_, err = c.w.Write(m.Data)
		}
		// Last writer out flushes. A sender that leaves others queued on
		// c.mu skips the flush: one of them will carry this frame out, or
		// fail and drop the connection for everyone. Sequential sends always
		// see waiters==0 and flush immediately, preserving per-message
		// latency and error reporting.
		if last := c.waiters.Add(-1) == 0; err == nil && last {
			err = c.w.Flush()
		}
	}
	c.mu.Unlock()
	if err != nil {
		// The frame may be half-written; the connection cannot carry
		// another message. Forget it so a retry redials.
		t.dropConn(m.Source, to, c)
	}
	return err
}

// copies reports that the TCP transport serializes payloads into the socket
// before send returns, so callers may reuse their buffers.
func (t *tcpTransport) copies() bool { return true }

// recvPool exposes the pool readLoop draws frame payloads from. Receivers
// that return consumed payloads close the allocation loop: steady-state
// frame reads become pool hits.
func (t *tcpTransport) recvPool() *bufpool.Pool { return t.pool }

func (t *tcpTransport) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	for _, ln := range t.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for _, c := range conns {
		c.c.Close()
	}
	t.wg.Wait()
	return nil
}
