package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/ict-repro/mpid/internal/bufpool"
	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/metrics"
)

// NewTCPWorld creates a world of n ranks whose messages travel over real TCP
// sockets on the loopback interface. Rank goroutines still live in this
// process (Go cannot fork MPI-style), but every byte crosses the kernel
// socket path, which is what the latency/bandwidth harness measures.
func NewTCPWorld(n int) (*World, error) {
	return NewTCPWorldOptions(n, TCPOptions{})
}

// rankComponent is how TCP world ranks are named to a fault injector.
func rankComponent(rank int) string { return fmt.Sprintf("mpi.rank%d", rank) }

// rankComponents precomputes every rank's component name; formatting them
// per send was the transport's last steady-state allocation.
func rankComponents(n int) []string {
	comps := make([]string, n)
	for i := range comps {
		comps[i] = rankComponent(i)
	}
	return comps
}

// TCPOptions configures a TCP world beyond the defaults.
type TCPOptions struct {
	// Injector, when set, gates the transport: "dial" and "send" on the
	// sending rank (peer = destination component), plus "read"/"write"
	// through the wrapped per-pair connections.
	Injector *faults.Injector
	// LegacyFraming selects the pre-writev framing path: eager frames
	// copy into a per-connection bufio.Writer and rendezvous payloads
	// take a separate syscall after the header flush. It is kept as the
	// equivalence-tested A/B baseline for the vectored framing
	// (BENCH_transport.json's "tcp" rows; default framing is "tcp+writev").
	LegacyFraming bool
	// Metrics, when set, counts framing traffic: mpi.tcp.vectored_writes
	// (writev flushes) and mpi.tcp.vectored_frames (frames they carried).
	Metrics *metrics.Registry
}

// NewTCPWorldWithFaults creates a TCP world whose transport consults a fault
// injector; see TCPOptions.Injector for the injection points. A nil
// injector yields a plain TCP world.
func NewTCPWorldWithFaults(n int, inj *faults.Injector) (*World, error) {
	return NewTCPWorldOptions(n, TCPOptions{Injector: inj})
}

// NewTCPWorldOptions creates a TCP world with explicit options.
func NewTCPWorldOptions(n int, opts TCPOptions) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", n)
	}
	eps := make([]*endpoint, n)
	for i := range eps {
		eps[i] = newEndpoint()
	}
	tr := &tcpTransport{
		eps:       eps,
		addrs:     make([]string, n),
		listeners: make([]net.Listener, n),
		conns:     make(map[connKey]*tcpConn),
		inj:       opts.Injector,
		legacy:    opts.LegacyFraming,
		metrics:   opts.Metrics,
		comps:     rankComponents(n),
		pool:      bufpool.New(),
	}
	tr.cVecWrites = opts.Metrics.Counter("mpi.tcp.vectored_writes")
	tr.cVecFrames = opts.Metrics.Counter("mpi.tcp.vectored_frames")
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("mpi: listen for rank %d: %w", i, err)
		}
		tr.listeners[i] = ln
		tr.addrs[i] = ln.Addr().String()
		tr.wg.Add(1)
		go tr.acceptLoop(i, ln)
	}
	return &World{size: n, eps: eps, tr: tr}, nil
}

// connKey identifies a directed (source, destination) connection.
type connKey struct{ src, dst int }

// tcpConn serializes writes from concurrent senders on one connection.
// waiters counts senders inside send() for this connection; the last one
// out flushes, so back-to-back small sends (an Async spill's Isends, the
// Done fan-out at CloseSend) coalesce into one syscall instead of one
// flush per frame.
//
// In the default vectored framing mode, queued eager frames accumulate as
// pooled contiguous header+payload buffers in pend, and a flush ships the
// whole batch through net.Buffers — one writev syscall, no intermediate
// bufio copy. A rendezvous send joins the same writev: pending eager
// frames, its header (the persistent rhdr scratch) and the caller's
// payload go out as one vector, where the legacy path paid a flush plus a
// separate payload write. In legacy mode w is the bufio.Writer and
// pend/vec stay nil.
type tcpConn struct {
	mu        sync.Mutex
	c         net.Conn
	w         *bufio.Writer // legacy framing only
	pend      net.Buffers   // queued eager frames (pooled hdr+payload buffers)
	pendBytes int
	vec       net.Buffers // writev scratch, rebuilt per flush, capacity reused
	rhdr      [frameHeaderSize]byte
	waiters   atomic.Int32
}

// tcpTransport maintains a lazy full mesh of connections. One connection per
// directed pair keeps per-pair FIFO ordering, which the matching semantics
// rely on.
type tcpTransport struct {
	eps       []*endpoint
	addrs     []string
	listeners []net.Listener
	inj       *faults.Injector // nil injects nothing
	pool      *bufpool.Pool    // frame payload buffers, shared with receivers
	comps     []string         // precomputed "mpi.rank<r>" injector names
	legacy    bool             // bufio copy-then-flush framing instead of writev
	metrics   *metrics.Registry
	// Pre-resolved counters: Registry.Counter is a lock+map lookup, too
	// heavy per flush. Both are nil-safe without a registry.
	cVecWrites, cVecFrames *metrics.Counter

	mu     sync.Mutex
	conns  map[connKey]*tcpConn
	closed bool
	wg     sync.WaitGroup
}

// frameHeader is src(int32) tag(int32) comm(uint64) length(uint32).
const frameHeaderSize = 20

// eagerThreshold is the eager/rendezvous split point. Messages below it are
// copied into the connection's buffered writer (eager: the sender's buffer
// is free on return, flushes batch across back-to-back sends); messages at
// or above it flush the writer and then stream straight from the caller's
// buffer into the socket, skipping the intermediate bufio copy — the moral
// equivalent of MPI's rendezvous protocol for large realigned partitions.
const eagerThreshold = 64 << 10

// tcpFlushBytes caps how many eager bytes queue on a connection before a
// sender flushes even with other senders still waiting, bounding the
// batch the last-writer-out heuristic can accumulate. It matches the
// legacy bufio.Writer's capacity, which auto-flushed at the same point.
const tcpFlushBytes = 256 << 10

func (t *tcpTransport) acceptLoop(rank int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(rank, conn)
	}
}

func (t *tcpTransport) readLoop(rank int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 256*1024)
	var hdr [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		src := int(int32(binary.BigEndian.Uint32(hdr[0:4])))
		tag := int(int32(binary.BigEndian.Uint32(hdr[4:8])))
		comm := int(binary.BigEndian.Uint64(hdr[8:16]))
		size := binary.BigEndian.Uint32(hdr[16:20])
		var data []byte
		if size > 0 {
			data = t.pool.Get(int(size))
			if _, err := io.ReadFull(r, data); err != nil {
				return
			}
		}
		if err := t.eps[rank].deliver(Message{Source: src, Tag: tag, Comm: comm, Data: data}); err != nil {
			return
		}
	}
}

func (t *tcpTransport) connFor(src, dst int) (*tcpConn, error) {
	key := connKey{src, dst}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrWorldClosed
	}
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	if err := t.inj.Check(t.comps[src], "dial", t.comps[dst]); err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", t.addrs[dst])
	if err != nil {
		return nil, fmt.Errorf("mpi: dial rank %d: %w", dst, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency benchmark sends tiny frames
	}
	wrapped := faults.WrapConn(conn, t.inj, t.comps[src], t.comps[dst])
	c := &tcpConn{c: wrapped}
	if t.legacy {
		c.w = bufio.NewWriterSize(wrapped, tcpFlushBytes)
	}
	t.conns[key] = c
	return c, nil
}

// dropConn forgets a connection whose injected fault closed it, so a later
// send to the same pair redials instead of writing into a dead socket.
func (t *tcpTransport) dropConn(src, dst int, c *tcpConn) {
	t.mu.Lock()
	if t.conns != nil && t.conns[connKey{src, dst}] == c {
		delete(t.conns, connKey{src, dst})
	}
	t.mu.Unlock()
	c.c.Close()
}

// putFrameHeader encodes m's envelope into b[:frameHeaderSize].
func putFrameHeader(b []byte, m Message) {
	binary.BigEndian.PutUint32(b[0:4], uint32(int32(m.Source)))
	binary.BigEndian.PutUint32(b[4:8], uint32(int32(m.Tag)))
	binary.BigEndian.PutUint64(b[8:16], uint64(m.Comm))
	binary.BigEndian.PutUint32(b[16:20], uint32(len(m.Data)))
}

func (t *tcpTransport) send(to int, m Message) error {
	if m.Tag > (1<<31-1) || m.Tag < -(1<<31) {
		return fmt.Errorf("mpi: tag %d does not fit the TCP frame", m.Tag)
	}
	if int64(len(m.Data)) > (1<<32 - 1) {
		return errors.New("mpi: message over 4 GiB cannot be framed")
	}
	if t.inj != nil {
		if err := t.inj.Check(t.comps[m.Source], "send", t.comps[to]); err != nil {
			return err
		}
	}
	c, err := t.connFor(m.Source, to)
	if err != nil {
		return err
	}
	if t.legacy {
		err = t.sendLegacy(c, m)
	} else {
		err = t.sendVectored(c, m)
	}
	if err != nil {
		// The frame may be half-written; the connection cannot carry
		// another message. Forget it so a retry redials.
		t.dropConn(m.Source, to, c)
	}
	return err
}

// sendVectored frames m through writev. Eager frames queue as pooled
// contiguous hdr+payload buffers and the last writer out (or a batch
// crossing tcpFlushBytes) ships them all in one vectored write; a
// rendezvous send joins the pending batch, its header and the caller's
// payload into a single writev — one syscall, zero intermediate copies of
// the large payload.
func (t *tcpTransport) sendVectored(c *tcpConn, m Message) error {
	n := len(m.Data)
	c.waiters.Add(1)
	c.mu.Lock()
	var err error
	if n >= eagerThreshold {
		putFrameHeader(c.rhdr[:], m)
		c.vec = append(append(c.vec[:0], c.pend...), c.rhdr[:], m.Data)
		err = t.flushVecLocked(c, len(c.pend)+1)
		c.waiters.Add(-1)
	} else {
		buf := t.pool.Get(frameHeaderSize + n)
		putFrameHeader(buf, m)
		copy(buf[frameHeaderSize:], m.Data)
		c.pend = append(c.pend, buf)
		c.pendBytes += len(buf)
		// Last writer out flushes (see tcpConn); a sender that leaves
		// others queued on c.mu skips it — one of them will carry this
		// frame out, or fail and drop the connection for everyone.
		if last := c.waiters.Add(-1) == 0; last || c.pendBytes >= tcpFlushBytes {
			c.vec = append(c.vec[:0], c.pend...)
			err = t.flushVecLocked(c, len(c.pend))
		}
	}
	c.mu.Unlock()
	return err
}

// flushVecLocked ships c.vec in one vectored write (writev on an unwrapped
// *net.TCPConn; a fault-wrapped connection degrades to one Write per
// buffer, keeping every injection point) and recycles the pooled eager
// frame buffers. Caller holds c.mu and has built c.vec from c.pend plus
// any rendezvous tail.
func (t *tcpTransport) flushVecLocked(c *tcpConn, frames int) error {
	if len(c.vec) == 0 {
		return nil
	}
	// WriteTo consumes the Buffers it is invoked on (nils entries,
	// advances the header). Calling through the persistent c.vec field
	// keeps the receiver heap-resident (a local Buffers variable would
	// escape and cost an allocation per flush); base preserves the
	// pre-advance header so the backing array is reused next flush.
	base := c.vec
	_, err := c.vec.WriteTo(c.c)
	for _, b := range c.pend {
		t.pool.Put(b)
	}
	c.pend = c.pend[:0]
	c.pendBytes = 0
	c.vec = base[:0]
	t.cVecWrites.Inc()
	t.cVecFrames.Add(int64(frames))
	return err
}

// sendLegacy is the pre-writev framing: eager frames copy into the
// connection's bufio.Writer, rendezvous payloads stream directly after a
// header flush. Kept as the selectable A/B baseline (TCPOptions
// .LegacyFraming) the transport bench compares writev against.
func (t *tcpTransport) sendLegacy(c *tcpConn, m Message) error {
	c.waiters.Add(1)
	c.mu.Lock()
	// The persistent header scratch (guarded by mu, like the vectored
	// path) keeps the header off the heap — a stack array escapes through
	// bufio's underlying-writer interface and costs an allocation per send.
	putFrameHeader(c.rhdr[:], m)
	_, err := c.w.Write(c.rhdr[:])
	if len(m.Data) >= eagerThreshold {
		// Rendezvous: push the header (and any batched eager frames) out,
		// then stream the payload straight from the caller's buffer. The
		// waiter count is irrelevant here — the direct write leaves nothing
		// buffered behind it.
		if err == nil {
			err = c.w.Flush()
		}
		if err == nil {
			_, err = c.c.Write(m.Data)
		}
		c.waiters.Add(-1)
	} else {
		if err == nil && len(m.Data) > 0 {
			_, err = c.w.Write(m.Data)
		}
		// Last writer out flushes. Sequential sends always see waiters==0
		// and flush immediately, preserving per-message latency and error
		// reporting.
		if last := c.waiters.Add(-1) == 0; err == nil && last {
			err = c.w.Flush()
		}
	}
	c.mu.Unlock()
	return err
}

// copies reports that the TCP transport serializes payloads into the socket
// before send returns, so callers may reuse their buffers.
func (t *tcpTransport) copies() bool { return true }

// recvPool exposes the pool readLoop draws frame payloads from. Receivers
// that return consumed payloads close the allocation loop: steady-state
// frame reads become pool hits.
func (t *tcpTransport) recvPool() *bufpool.Pool { return t.pool }

func (t *tcpTransport) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	for _, ln := range t.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for _, c := range conns {
		c.c.Close()
	}
	t.wg.Wait()
	return nil
}
