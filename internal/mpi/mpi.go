// Package mpi is a from-scratch message-passing runtime in Go with MPI
// semantics: a world of ranks, point-to-point Send/Recv with (source, tag)
// envelope matching including wildcards, non-blocking Isend/Irecv with
// Wait/Test, Probe, and tree-based collectives.
//
// Go has no mature MPI bindings, so this package substitutes for MPICH2 as
// the substrate MPI-D (internal/core) builds on, per the paper's design:
// "MPI-D is built on the basic point-to-point primitives in MPI" (§IV.A).
// Two transports are provided:
//
//   - in-process: ranks are goroutines exchanging messages through matched
//     queues — zero-copy hand-off, used by the examples and most tests;
//   - TCP: ranks exchange length-prefixed frames over real sockets
//     (loopback or a cluster), used by the latency/bandwidth harness.
//
// Semantics follow the MPI standard where it matters for correctness:
// messages between a pair of ranks with matching envelopes are
// non-overtaking; Recv with AnySource/AnyTag matches the earliest queued
// message; collectives must be called by every rank of the communicator in
// the same order.
package mpi

import (
	"errors"
	"fmt"

	"github.com/ict-repro/mpid/internal/bufpool"
)

// Wildcards for Recv/Probe envelope matching.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any user tag.
	AnyTag = -2
)

// Tag space: user tags must be small non-negative integers; the collective
// implementation reserves tags at collTagBase and above.
const (
	// MaxUserTag is the largest tag user code may pass to Send/Recv.
	MaxUserTag = 1<<28 - 1
	// collTagBase is the start of the internal collective tag space.
	collTagBase = 1 << 28
)

// Status describes a received or probed message.
type Status struct {
	// Source is the sending rank.
	Source int
	// Tag is the message tag.
	Tag int
	// Size is the payload length in bytes.
	Size int
}

// Message is an envelope plus payload moving through a transport. Source
// is always a world rank; Comm identifies the communicator the message was
// sent on (0 is the world communicator), so traffic on split
// sub-communicators cannot match receives on other communicators.
type Message struct {
	Source int
	Tag    int
	Comm   int
	Data   []byte
}

// ErrWorldClosed is returned by operations on a world that has shut down.
var ErrWorldClosed = errors.New("mpi: world closed")

// validateRank reports an error for an out-of-range peer rank.
func validateRank(rank, size int) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, size)
	}
	return nil
}

// validateTag reports an error for a tag outside the user tag space.
func validateTag(tag int) error {
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("mpi: tag %d outside user tag range [0,%d]", tag, MaxUserTag)
	}
	return nil
}

// transport moves a message to a destination rank's endpoint. Implementations
// must deliver messages from the same source in send order (non-overtaking).
type transport interface {
	send(to int, m Message) error
	close() error
	// copies reports whether send copies the payload before returning, so
	// the caller may immediately reuse the slice (true for the TCP
	// transport, which serializes into the socket; false for the
	// in-process transport, whose hand-off is zero-copy).
	copies() bool
	// recvPool returns the pool frame payloads are drawn from, or nil.
	// A receiver that has fully consumed a payload may Put it back so
	// subsequent frame reads stop allocating.
	recvPool() *bufpool.Pool
}
