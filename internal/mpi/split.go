package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Undefined is the Split color for ranks that opt out of every
// sub-communicator (MPI_UNDEFINED). Split returns a nil communicator for
// them.
const Undefined = -1

// Split partitions the communicator: ranks passing the same non-negative
// color form a new communicator, ordered by (key, old rank); ranks passing
// Undefined get nil. Split is collective — every rank of the communicator
// must call it, in the same program order relative to other collectives.
//
// This is MPI_Comm_split. Sub-communicator traffic is isolated from the
// parent's and from sibling communicators' by a communicator id carried in
// every message envelope.
func (c *Comm) Split(color, key int) (*Comm, error) {
	if color < Undefined {
		return nil, fmt.Errorf("mpi: split color %d invalid (use Undefined to opt out)", color)
	}
	seq := c.splitSeq
	c.splitSeq++

	// Exchange (color, key) among all members.
	mine := make([]byte, 16)
	binary.BigEndian.PutUint64(mine[0:8], uint64(int64(color)))
	binary.BigEndian.PutUint64(mine[8:16], uint64(int64(key)))
	all, err := c.Allgather(mine)
	if err != nil {
		return nil, err
	}

	if color == Undefined {
		return nil, nil
	}

	// Collect members of my color, ordered by (key, old rank).
	type member struct{ key, oldRank int }
	var members []member
	for r, enc := range all {
		if len(enc) != 16 {
			return nil, fmt.Errorf("mpi: malformed split exchange from rank %d", r)
		}
		col := int(int64(binary.BigEndian.Uint64(enc[0:8])))
		k := int(int64(binary.BigEndian.Uint64(enc[8:16])))
		if col == color {
			members = append(members, member{key: k, oldRank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].oldRank < members[j].oldRank
	})

	group := make([]int, len(members))
	myRank := -1
	for i, m := range members {
		group[i] = c.toWorld(m.oldRank)
		if m.oldRank == c.rank {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("mpi: rank %d missing from its own split group", c.rank)
	}

	return &Comm{
		world:     c.world,
		worldRank: c.worldRank,
		rank:      myRank,
		ep:        c.ep,
		id:        deriveCommID(c.id, seq, color),
		group:     group,
	}, nil
}

// Dup clones the communicator: same group and ranks, isolated traffic.
// Like Split, it is collective.
func (c *Comm) Dup() (*Comm, error) {
	seq := c.splitSeq
	c.splitSeq++
	// Synchronize so every member has entered before traffic can flow on
	// the new id (and so call order is verified early in testing).
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	group := c.group
	if group == nil {
		group = make([]int, c.world.size)
		for i := range group {
			group[i] = i
		}
	}
	return &Comm{
		world:     c.world,
		worldRank: c.worldRank,
		rank:      c.rank,
		ep:        c.ep,
		id:        deriveCommID(c.id, seq, -2), // -2: never a Split color
		group:     group,
	}, nil
}

// deriveCommID computes the new communicator's id. Every member computes
// the same inputs (parent id, the parent's split sequence number aligned by
// call order, and the color), so members agree without coordination;
// different colors and different split calls hash apart. FNV-1a over the
// three values keeps collision odds negligible in a 63-bit space.
func deriveCommID(parent, seq, color int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [3]uint64{uint64(int64(parent)), uint64(int64(seq)), uint64(int64(color))} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * uint(i))) & 0xFF
			h *= prime64
		}
	}
	id := int(h & 0x7FFFFFFFFFFFFFFF)
	if id == 0 {
		id = 1 // 0 is the world communicator
	}
	return id
}
