package mpi

import (
	"fmt"
	"testing"
)

// BenchmarkTCPRoundtrip ping-pongs one message over the loopback TCP
// transport, crossing the eager/rendezvous threshold as the size sweeps.
// allocs/op is the number to watch: pooled frame reads mean the receive
// side should not allocate per message once the pool is warm (the payload
// is Put back after each hop, as MPI-D's merge receiver does).
func BenchmarkTCPRoundtrip(b *testing.B) {
	for _, size := range []int{1 << 10, 32 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			w, err := NewTCPWorld(2)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			c0, c1 := w.Comm(0), w.Comm(1)
			pool := c0.RecvBufferPool()
			done := make(chan error, 1)
			go func() {
				for {
					data, _, err := c1.Recv(0, AnyTag)
					if err != nil {
						done <- nil // world closed: benchmark over
						return
					}
					stop := data[0] == 1
					err = c1.Send(0, 1, data[:1])
					pool.Put(data)
					if err != nil || stop {
						done <- err
						return
					}
				}
			}()
			payload := make([]byte, size)
			b.ReportAllocs()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i == b.N-1 {
					payload[0] = 1 // tell the echo goroutine to stop
				}
				if err := c0.Send(1, 1, payload); err != nil {
					b.Fatal(err)
				}
				ack, _, err := c0.Recv(1, 1)
				if err != nil {
					b.Fatal(err)
				}
				pool.Put(ack)
			}
			b.StopTimer()
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		})
	}
}
