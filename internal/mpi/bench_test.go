package mpi

import (
	"fmt"
	"testing"
)

// benchPingPong drives a 2-rank ping-pong of size-byte messages over w and
// reports ns/op and allocs/op for the full send→recv path. Received
// buffers are returned to the transport's receive pool when it has one
// (TCP, ring copy mode), matching what MPI-D's merge receiver does — the
// 0 allocs/op target only holds when consumers recycle.
func benchPingPong(b *testing.B, w *World, size int) {
	payload := make([]byte, size)
	done := make(chan error, 1)
	go func() {
		c := w.Comm(1)
		pool := c.RecvBufferPool()
		echo := make([]byte, size)
		for {
			data, _, err := c.Recv(0, AnyTag)
			if err != nil {
				done <- nil // world closed: benchmark over
				return
			}
			stop := data[0] == 1
			pool.Put(data)
			if stop {
				done <- nil
				return
			}
			if err := c.Send(0, 0, echo); err != nil {
				done <- err
				return
			}
		}
	}()
	c := w.Comm(0)
	pool := c.RecvBufferPool()
	b.ReportAllocs()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(1, 0, payload); err != nil {
			b.Fatal(err)
		}
		data, _, err := c.Recv(1, AnyTag)
		if err != nil {
			b.Fatal(err)
		}
		pool.Put(data)
	}
	b.StopTimer()
	stop := make([]byte, size)
	stop[0] = 1
	if err := c.Send(1, 0, stop); err != nil {
		b.Fatal(err)
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRingRoundtrip ping-pongs over the shared-memory-style ring
// transport in both payload modes: the default zero-copy hand-off and the
// CopyPayloads device emulation (inline slot copy for eager sizes, pooled
// arena for rendezvous sizes). Both must stay at 0 allocs/op.
func BenchmarkRingRoundtrip(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  RingConfig
	}{
		{"zerocopy", RingConfig{}},
		{"copy", RingConfig{CopyPayloads: true}},
	} {
		for _, size := range []int{16, 1 << 10, 32 << 10} {
			b.Run(fmt.Sprintf("%s/%dB", mode.name, size), func(b *testing.B) {
				w := NewRingWorldConfig(2, mode.cfg)
				defer w.Close()
				benchPingPong(b, w, size)
			})
		}
	}
}

// BenchmarkChanRoundtrip is the in-process chan-transport baseline the
// ring is gated against (bench-check: ring p50 ≤ chan p50 at small sizes).
func BenchmarkChanRoundtrip(b *testing.B) {
	for _, size := range []int{16, 1 << 10, 32 << 10} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			w := NewWorld(2)
			defer w.Close()
			benchPingPong(b, w, size)
		})
	}
}

// BenchmarkTCPVectoredSend compares the vectored (writev) TCP framing
// against the legacy bufio copy-then-flush path at an eager and a
// rendezvous size. Rendezvous is where writev pays most visibly: header
// and payload leave in one syscall instead of a flush plus a write.
func BenchmarkTCPVectoredSend(b *testing.B) {
	for _, framing := range []struct {
		name   string
		legacy bool
	}{
		{"vectored", false},
		{"legacy", true},
	} {
		for _, size := range []int{1 << 10, 256 << 10} {
			b.Run(fmt.Sprintf("%s/%dKB", framing.name, size>>10), func(b *testing.B) {
				w, err := NewTCPWorldOptions(2, TCPOptions{LegacyFraming: framing.legacy})
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				benchPingPong(b, w, size)
			})
		}
	}
}

// BenchmarkTCPRoundtrip ping-pongs one message over the loopback TCP
// transport, crossing the eager/rendezvous threshold as the size sweeps.
// allocs/op is the number to watch: pooled frame reads mean the receive
// side should not allocate per message once the pool is warm (the payload
// is Put back after each hop, as MPI-D's merge receiver does).
func BenchmarkTCPRoundtrip(b *testing.B) {
	for _, size := range []int{1 << 10, 32 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			w, err := NewTCPWorld(2)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			c0, c1 := w.Comm(0), w.Comm(1)
			pool := c0.RecvBufferPool()
			done := make(chan error, 1)
			go func() {
				for {
					data, _, err := c1.Recv(0, AnyTag)
					if err != nil {
						done <- nil // world closed: benchmark over
						return
					}
					stop := data[0] == 1
					err = c1.Send(0, 1, data[:1])
					pool.Put(data)
					if err != nil || stop {
						done <- err
						return
					}
				}
			}()
			payload := make([]byte, size)
			b.ReportAllocs()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i == b.N-1 {
					payload[0] = 1 // tell the echo goroutine to stop
				}
				if err := c0.Send(1, 1, payload); err != nil {
					b.Fatal(err)
				}
				ack, _, err := c0.Recv(1, 1)
				if err != nil {
					b.Fatal(err)
				}
				pool.Put(ack)
			}
			b.StopTimer()
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		})
	}
}
