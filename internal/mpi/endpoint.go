package mpi

import (
	"sync"
)

// endpoint is one rank's receive side: an unexpected-message queue plus the
// blocking matched-receive machinery. Both the in-process and TCP transports
// deliver into an endpoint; receive semantics are therefore identical across
// transports.
type endpoint struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message // arrival order preserved; scanned for envelope match
	closed bool
}

func newEndpoint() *endpoint {
	ep := &endpoint{}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

// deliver appends an arrived message and wakes matchers.
func (ep *endpoint) deliver(m Message) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return ErrWorldClosed
	}
	ep.queue = append(ep.queue, m)
	ep.cond.Broadcast()
	return nil
}

// matches reports whether message m satisfies the (comm, source, tag)
// envelope. source is a world rank or AnySource; comm never has a wildcard.
func matches(m Message, comm, source, tag int) bool {
	if m.Comm != comm {
		return false
	}
	if source != AnySource && m.Source != source {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// findLocked returns the index of the earliest queued match, or -1.
// Scanning in arrival order preserves non-overtaking for matching envelopes.
func (ep *endpoint) findLocked(comm, source, tag int) int {
	for i, m := range ep.queue {
		if matches(m, comm, source, tag) {
			return i
		}
	}
	return -1
}

// removeLocked removes and returns queue[i].
func (ep *endpoint) removeLocked(i int) Message {
	m := ep.queue[i]
	copy(ep.queue[i:], ep.queue[i+1:])
	ep.queue[len(ep.queue)-1] = Message{} // drop payload reference
	ep.queue = ep.queue[:len(ep.queue)-1]
	return m
}

// recv blocks until a message matching (source, tag) arrives and returns it.
func (ep *endpoint) recv(comm, source, tag int) (Message, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		if i := ep.findLocked(comm, source, tag); i >= 0 {
			return ep.removeLocked(i), nil
		}
		if ep.closed {
			return Message{}, ErrWorldClosed
		}
		ep.cond.Wait()
	}
}

// tryRecv returns a matching message if one is queued, without blocking.
func (ep *endpoint) tryRecv(comm, source, tag int) (Message, bool, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if i := ep.findLocked(comm, source, tag); i >= 0 {
		return ep.removeLocked(i), true, nil
	}
	if ep.closed {
		return Message{}, false, ErrWorldClosed
	}
	return Message{}, false, nil
}

// probe blocks until a matching message is queued and returns its status
// without consuming it.
func (ep *endpoint) probe(comm, source, tag int) (Status, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		if i := ep.findLocked(comm, source, tag); i >= 0 {
			m := ep.queue[i]
			return Status{Source: m.Source, Tag: m.Tag, Size: len(m.Data)}, nil
		}
		if ep.closed {
			return Status{}, ErrWorldClosed
		}
		ep.cond.Wait()
	}
}

// iprobe is the non-blocking probe.
func (ep *endpoint) iprobe(comm, source, tag int) (Status, bool, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if i := ep.findLocked(comm, source, tag); i >= 0 {
		m := ep.queue[i]
		return Status{Source: m.Source, Tag: m.Tag, Size: len(m.Data)}, true, nil
	}
	if ep.closed {
		return Status{}, false, ErrWorldClosed
	}
	return Status{}, false, nil
}

// close marks the endpoint dead and wakes all blocked receivers.
func (ep *endpoint) close() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.closed = true
	ep.cond.Broadcast()
}

// pendingCount returns the number of undelivered messages (for tests).
func (ep *endpoint) pendingCount() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.queue)
}
