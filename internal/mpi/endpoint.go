package mpi

import (
	"sync"
)

// endpoint is one rank's receive side: an unexpected-message queue plus the
// blocking matched-receive machinery. The in-process and TCP transports
// deliver into an endpoint via deliver; the ring transport instead attaches
// a pump and lets the receiving rank drive its own progress. Receive
// semantics are identical across transports either way.
type endpoint struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message // arrival order preserved; scanned for envelope match
	closed bool

	// pump, when set, is the transport's receiver-driven progress engine
	// (the ring transport): instead of a delivery goroutine pushing into
	// the queue, whichever receiver is blocked takes the pump role, drains
	// the transport and matches in place. pumping marks the role taken;
	// both fields are guarded by mu, and pump methods are only ever called
	// by the role holder (or by a mu holder for the non-blocking tryPop),
	// so the transport side needs no extra synchronization.
	pump    pump
	pumping bool
	nwait   int // receivers blocked in cond.Wait; broadcasts skip when zero
}

// pump is the receiver-driven progress interface a transport may attach to
// an endpoint. tryPop never blocks; waitNext blocks until a message is
// available or the transport shuts down (second result false).
type pump interface {
	tryPop() (Message, bool)
	waitNext() (Message, bool)
}

// pumpDrainLimit bounds how many messages a non-blocking tryRecv/iprobe
// pulls from the pump in one call, so a firehose sender cannot pin a
// non-blocking caller inside the drain loop.
const pumpDrainLimit = 1024

func newEndpoint() *endpoint {
	ep := &endpoint{}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

// deliver appends an arrived message and wakes matchers.
func (ep *endpoint) deliver(m Message) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return ErrWorldClosed
	}
	ep.queue = append(ep.queue, m)
	ep.wakeLocked()
	return nil
}

// wakeLocked broadcasts to blocked receivers, skipping the (cheap but not
// free) notify when nobody waits — the common case on the ping-pong fast
// path, where the sole receiver holds the pump role instead of a cond slot.
func (ep *endpoint) wakeLocked() {
	if ep.nwait > 0 {
		ep.cond.Broadcast()
	}
}

// waitLocked blocks on the cond, keeping the waiter count that wakeLocked
// consults.
func (ep *endpoint) waitLocked() {
	ep.nwait++
	ep.cond.Wait()
	ep.nwait--
}

// matches reports whether message m satisfies the (comm, source, tag)
// envelope. source is a world rank or AnySource; comm never has a wildcard.
func matches(m Message, comm, source, tag int) bool {
	if m.Comm != comm {
		return false
	}
	if source != AnySource && m.Source != source {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// findLocked returns the index of the earliest queued match, or -1.
// Scanning in arrival order preserves non-overtaking for matching envelopes.
func (ep *endpoint) findLocked(comm, source, tag int) int {
	for i, m := range ep.queue {
		if matches(m, comm, source, tag) {
			return i
		}
	}
	return -1
}

// removeLocked removes and returns queue[i].
func (ep *endpoint) removeLocked(i int) Message {
	m := ep.queue[i]
	copy(ep.queue[i:], ep.queue[i+1:])
	ep.queue[len(ep.queue)-1] = Message{} // drop payload reference
	ep.queue = ep.queue[:len(ep.queue)-1]
	return m
}

// drainPumpLocked pulls already-published messages from the pump into the
// queue without blocking. Called with mu held; holding mu while the pump
// role is free makes the caller the de-facto role holder, so tryPop is
// safe. Wakes matchers when anything arrived.
func (ep *endpoint) drainPumpLocked() {
	if ep.pump == nil || ep.pumping {
		return
	}
	n := 0
	for n < pumpDrainLimit {
		m, ok := ep.pump.tryPop()
		if !ok {
			break
		}
		ep.queue = append(ep.queue, m)
		n++
	}
	if n > 0 {
		ep.wakeLocked()
	}
}

// recv blocks until a message matching (source, tag) arrives and returns it.
//
// With a pump attached, the first blocked receiver takes the pump role and
// drives transport progress itself: it drains published messages, returns
// its own match directly (skipping the queue — safe, because the loop top
// already proved no earlier queued match exists, and per-source FIFO pop
// order preserves non-overtaking), queues everything else for the other
// waiters, and hands the role over when it leaves.
func (ep *endpoint) recv(comm, source, tag int) (Message, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		if i := ep.findLocked(comm, source, tag); i >= 0 {
			return ep.removeLocked(i), nil
		}
		if ep.closed {
			return Message{}, ErrWorldClosed
		}
		if ep.pump != nil && !ep.pumping {
			ep.pumping = true
			ep.mu.Unlock()
			m, ok := ep.pump.waitNext()
			ep.mu.Lock()
			ep.pumping = false
			if !ok {
				// Transport shut down under us; nothing matched before we
				// took the role and only the role holder appends, so there
				// is no match to salvage.
				ep.wakeLocked()
				return Message{}, ErrWorldClosed
			}
			if matches(m, comm, source, tag) {
				ep.wakeLocked() // hand the pump role to a waiter
				return m, nil
			}
			ep.queue = append(ep.queue, m)
			ep.wakeLocked()
			continue
		}
		ep.waitLocked()
	}
}

// tryRecv returns a matching message if one is queued, without blocking.
func (ep *endpoint) tryRecv(comm, source, tag int) (Message, bool, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if i := ep.findLocked(comm, source, tag); i >= 0 {
		return ep.removeLocked(i), true, nil
	}
	ep.drainPumpLocked()
	if i := ep.findLocked(comm, source, tag); i >= 0 {
		return ep.removeLocked(i), true, nil
	}
	if ep.closed {
		return Message{}, false, ErrWorldClosed
	}
	return Message{}, false, nil
}

// probe blocks until a matching message is queued and returns its status
// without consuming it. A probing pump-role holder always queues what it
// pops — probe must never consume.
func (ep *endpoint) probe(comm, source, tag int) (Status, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		if i := ep.findLocked(comm, source, tag); i >= 0 {
			m := ep.queue[i]
			return Status{Source: m.Source, Tag: m.Tag, Size: len(m.Data)}, nil
		}
		if ep.closed {
			return Status{}, ErrWorldClosed
		}
		if ep.pump != nil && !ep.pumping {
			ep.pumping = true
			ep.mu.Unlock()
			m, ok := ep.pump.waitNext()
			ep.mu.Lock()
			ep.pumping = false
			ep.wakeLocked()
			if !ok {
				return Status{}, ErrWorldClosed
			}
			ep.queue = append(ep.queue, m)
			continue
		}
		ep.waitLocked()
	}
}

// iprobe is the non-blocking probe.
func (ep *endpoint) iprobe(comm, source, tag int) (Status, bool, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if i := ep.findLocked(comm, source, tag); i >= 0 {
		m := ep.queue[i]
		return Status{Source: m.Source, Tag: m.Tag, Size: len(m.Data)}, true, nil
	}
	ep.drainPumpLocked()
	if i := ep.findLocked(comm, source, tag); i >= 0 {
		m := ep.queue[i]
		return Status{Source: m.Source, Tag: m.Tag, Size: len(m.Data)}, true, nil
	}
	if ep.closed {
		return Status{}, false, ErrWorldClosed
	}
	return Status{}, false, nil
}

// close marks the endpoint dead and wakes all blocked receivers.
func (ep *endpoint) close() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.closed = true
	ep.cond.Broadcast()
}

// pendingCount returns the number of undelivered messages (for tests).
func (ep *endpoint) pendingCount() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.queue)
}
