package mpi

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ict-repro/mpid/internal/bufpool"
	"github.com/ict-repro/mpid/internal/faults"
	"github.com/ict-repro/mpid/internal/metrics"
)

// The ring transport is the shared-memory fast path for co-located ranks:
// every directed (source, destination) pair owns one bounded ring of
// fixed-size slots, published by sequence number exactly as a shared-memory
// MPI device publishes eager fragments. It exists because the in-process
// chan transport, while zero-copy, pays a mutex + condition-variable wakeup
// per message: the sender locks the receiver's endpoint, appends, and
// broadcasts, which parks and unparks goroutines through the runtime
// semaphore on every ping-pong. The ring replaces that rendezvous with
// single-writer slot publication and a spin-then-park consumer, so a
// small-message round trip in the common case is two atomic stores and a
// few dozen spins — no lock, no futex, no goroutine switch.
//
// Layout and protocol (per ring):
//
//   - slots[i].seq carries the Vyukov sequence: a slot is free for the
//     producer claiming position pos when seq == pos, published to the
//     consumer when seq == pos+1, and recycled for the next lap when the
//     consumer stores seq = pos + len(slots). Producers claim positions
//     with a CAS on enq; the single consumer (the destination rank's
//     receive path) walks deq without contention. Payload and envelope
//     fields are plain memory — the seq atomics order them.
//
//   - in the default zero-copy mode the payload reference rides in the
//     slot and ownership transfers with the message, exactly the chan
//     transport's contract — the ring only replaces that transport's
//     mutex/cond rendezvous with slot publication. In the CopyPayloads
//     device-emulation mode (what a real shared-memory MPI device must
//     do across address spaces), payloads at or below the inline
//     threshold are copied into the slot's inline region (eager) and
//     larger ones into a pooled out-of-line buffer whose in-flight bytes
//     are bounded by the ring's arena budget (rendezvous); the consumer
//     hands the out-of-line buffer straight to the application — one
//     copy end to end — and returns inline payloads through the
//     transport's receive pool, so Send leaves the caller's buffer free
//     for reuse (SendCopies) and a steady exchange still allocates
//     nothing in either direction.
//
//   - wakeups batch through a generation gate per destination rank: a
//     publish bumps the generation and posts the gate's token only when
//     the consumer has declared itself parked, extending the TCP
//     transport's last-writer-flush idea to consumer wakeups — a burst of
//     back-to-back sends costs one wakeup, not one per message.
//
// The consumer side is driven by the receiving rank itself: whichever
// goroutine is blocked in Recv/Probe takes the endpoint's pump role,
// drains published slots into the shared matching queue, and hands the
// role over when it leaves (see endpoint.recvPumped). A torn slot — a
// producer that claimed a position and died before publishing — stalls
// only its own ring, exactly as a torn TCP frame kills only its own
// connection; other sources keep delivering.

// Ring geometry defaults; see RingConfig to override.
const (
	defaultRingSlots  = 256
	defaultRingInline = 1 << 10 // 1 KiB eager/inline split
	defaultRingArena  = 4 << 20 // 4 MiB in-flight rendezvous bytes per pair

)

// Spin policy: how many failed polls a consumer (or a producer facing a
// full ring / empty arena) burns before parking, and how often a spin
// yields the processor. On a multi-core box the peer runs concurrently, so
// polling tightly between occasional yields wins; on a single-core box
// every spin steals the only processor from the peer, so the right move is
// to yield immediately and park soon. Initialized from GOMAXPROCS at
// startup.
var ringSpinBudget, ringSpinYield = func() (int, int) {
	if runtime.GOMAXPROCS(0) > 1 {
		return 256, 16
	}
	return 8, 1
}()

// RingConfig shapes a ring-transport world. The zero value selects the
// defaults above.
type RingConfig struct {
	// Slots is the per-pair ring capacity in messages; rounded up to a
	// power of two. A full ring backpressures the sender (spin, then
	// park) exactly as a full TCP socket buffer would.
	Slots int
	// InlineBytes is the eager/rendezvous split: payloads at or below it
	// travel inline in the slot, larger ones through the out-of-line
	// arena.
	InlineBytes int
	// ArenaBytes bounds the in-flight out-of-line payload bytes per pair
	// (the shared-memory arena analogue). A single message larger than
	// the whole budget is still accepted — it borrows the entire arena —
	// so oversized rendezvous messages cannot deadlock.
	ArenaBytes int
	// CopyPayloads selects the copying device emulation: eager payloads
	// travel inline in the slot, rendezvous payloads through the pooled
	// arena, and Send returns with the caller's buffer free to reuse
	// (SendCopies() == true, the TCP transport's contract). The default
	// zero-copy mode hands the payload reference through the slot with
	// the chan transport's ownership-transfer semantics. InlineBytes and
	// ArenaBytes only apply in copying mode.
	CopyPayloads bool
	// Injector, when set, gates sends ("send" operation on component
	// "mpi.rank<r>", peer the destination component), mirroring the TCP
	// transport's injection points.
	Injector *faults.Injector
	// Metrics, when set, counts ring traffic: mpi.ring.sends,
	// mpi.ring.extern_sends (out-of-line payloads), mpi.ring.parks
	// (consumer gate parks) and mpi.ring.wakeups (producer-posted
	// tokens). A nil registry records nothing.
	Metrics *metrics.Registry
}

func (cfg RingConfig) withDefaults() RingConfig {
	if cfg.Slots <= 0 {
		cfg.Slots = defaultRingSlots
	}
	// Round up to a power of two for mask arithmetic.
	n := 1
	for n < cfg.Slots {
		n <<= 1
	}
	cfg.Slots = n
	if cfg.InlineBytes <= 0 {
		cfg.InlineBytes = defaultRingInline
	}
	if cfg.ArenaBytes <= 0 {
		cfg.ArenaBytes = defaultRingArena
	}
	return cfg
}

// NewRingWorld creates a world of n ranks over the shared-memory-style
// ring transport with default geometry (zero-copy hand-off).
func NewRingWorld(n int) *World {
	return NewRingWorldConfig(n, RingConfig{})
}

// NewRingWorldWithFaults is NewRingWorld with a fault injector gating
// sends, mirroring NewTCPWorldWithFaults.
func NewRingWorldWithFaults(n int, inj *faults.Injector) *World {
	return NewRingWorldConfig(n, RingConfig{Injector: inj})
}

// NewRingWorldConfig creates a ring world with explicit geometry.
func NewRingWorldConfig(n int, cfg RingConfig) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", n))
	}
	cfg = cfg.withDefaults()
	eps := make([]*endpoint, n)
	for i := range eps {
		eps[i] = newEndpoint()
	}
	t := &ringTransport{
		eps:   eps,
		cfg:   cfg,
		pool:  bufpool.New(),
		rings: make([][]*ring, n),
		gates: make([]*gate, n),
		comps: rankComponents(n),
	}
	t.cSends = cfg.Metrics.Counter("mpi.ring.sends")
	t.cExtern = cfg.Metrics.Counter("mpi.ring.extern_sends")
	t.cParks = cfg.Metrics.Counter("mpi.ring.parks")
	t.cWakeups = cfg.Metrics.Counter("mpi.ring.wakeups")
	for dst := 0; dst < n; dst++ {
		t.gates[dst] = newGate()
		t.rings[dst] = make([]*ring, n)
		for src := 0; src < n; src++ {
			t.rings[dst][src] = newRing(cfg, t.gates[dst], t.pool, &t.shut)
		}
		eps[dst].pump = &ringPump{t: t, dst: dst}
	}
	return &World{size: n, eps: eps, tr: t}
}

// --------------------------------------------------------------------------
// Gate: batched consumer wakeups.

// gate is the publication gate for one destination rank: a parked flag
// plus a one-token wake channel. A publish signals the gate only when the
// consumer has declared itself parked, so a running consumer costs
// producers a single atomic load per message — the batching that keeps a
// burst of back-to-back sends at one wakeup.
//
// The no-lost-wakeup argument: the consumer sets parked BEFORE its final
// poll of the rings, and a producer publishes (seq store) BEFORE loading
// parked. Both are sequentially consistent atomics, so either the
// consumer's final poll observes the publication, or the producer's load
// observes the parked flag and posts the token. A stale token (consumer
// found the message in the final poll while the producer also signalled)
// only costs one spurious wake next time.
type gate struct {
	parked atomic.Uint32
	ch     chan struct{}
}

func newGate() *gate { return &gate{ch: make(chan struct{}, 1)} }

// signal wakes a parked consumer, if any. Returns whether a token was
// posted (for metrics).
func (g *gate) signal() bool {
	if g.parked.Load() != 0 && g.parked.Swap(0) != 0 {
		select {
		case g.ch <- struct{}{}:
		default:
		}
		return true
	}
	return false
}

// arm declares the consumer parked. The caller must re-poll its rings
// after arming and only then block on wait; see the ordering argument on
// gate.
func (g *gate) arm() { g.parked.Store(1) }

// disarm retracts an arm after the re-poll found a message.
func (g *gate) disarm() { g.parked.Store(0) }

// wait blocks until a producer posts the wake token.
func (g *gate) wait() { <-g.ch }

// --------------------------------------------------------------------------
// Ring: one directed pair.

// ringSlot is one message cell. seq orders every other field; inline is a
// fixed-capacity window into the ring's backing array.
type ringSlot struct {
	seq    atomic.Uint64
	src    int32
	size   int32
	tag    int64
	comm   int64
	ext    []byte // out-of-line payload (nil for inline)
	inline []byte // slot-owned inline window, cap = InlineBytes
}

// ring is the bounded SPSC-consumer / multi-claimer-producer queue for one
// (source, destination) pair.
type ring struct {
	slots []ringSlot
	mask  uint64
	_     [56]byte // keep enq and deq off each other's cache line
	enq   atomic.Uint64
	_     [56]byte
	// deq is plain, not atomic: only the consumer (the endpoint's pump
	// role holder) touches it, and role transfer is ordered by the
	// endpoint mutex.
	deq uint64
	_   [56]byte

	// Out-of-line arena accounting: extBytes tracks in-flight rendezvous
	// payload bytes, bounded by arenaMax.
	extBytes atomic.Int64
	arenaMax int64
	inline   int

	// Producer-side slow path: senders blocked on a full ring or an
	// exhausted arena park here; the consumer broadcasts when it frees a
	// slot or returns credit, but only when waiters says someone is
	// actually parked.
	waiters atomic.Int32
	wmu     sync.Mutex
	wcond   *sync.Cond

	copyMode bool

	gate *gate
	pool *bufpool.Pool
	shut *atomic.Bool
}

func newRing(cfg RingConfig, g *gate, pool *bufpool.Pool, shut *atomic.Bool) *ring {
	r := &ring{
		slots:    make([]ringSlot, cfg.Slots),
		mask:     uint64(cfg.Slots - 1),
		arenaMax: int64(cfg.ArenaBytes),
		inline:   cfg.InlineBytes,
		copyMode: cfg.CopyPayloads,
		gate:     g,
		pool:     pool,
		shut:     shut,
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	if r.copyMode {
		backing := make([]byte, cfg.Slots*cfg.InlineBytes)
		for i := range r.slots {
			r.slots[i].inline = backing[i*cfg.InlineBytes : (i+1)*cfg.InlineBytes : (i+1)*cfg.InlineBytes]
		}
	}
	r.wcond = sync.NewCond(&r.wmu)
	return r
}

// wake unparks producers blocked on space or arena credit. Cheap when
// nobody waits: one atomic load.
func (r *ring) wake() {
	if r.waiters.Load() > 0 {
		r.wmu.Lock()
		r.wcond.Broadcast()
		r.wmu.Unlock()
	}
}

// acquireCredit reserves n in-flight out-of-line bytes, blocking while the
// arena is exhausted. A message larger than the whole arena is admitted
// once the arena is empty (it borrows the full budget), so oversized
// sends make progress instead of deadlocking.
func (r *ring) acquireCredit(n int64) error {
	try := func() bool {
		for {
			cur := r.extBytes.Load()
			if cur != 0 && cur+n > r.arenaMax {
				return false
			}
			if r.extBytes.CompareAndSwap(cur, cur+n) {
				return true
			}
		}
	}
	for i := 0; i < ringSpinBudget; i++ {
		if try() {
			return nil
		}
		if r.shut.Load() {
			return ErrWorldClosed
		}
		if i%ringSpinYield == ringSpinYield-1 {
			runtime.Gosched()
		}
	}
	r.wmu.Lock()
	defer r.wmu.Unlock()
	r.waiters.Add(1)
	defer r.waiters.Add(-1)
	for {
		if r.shut.Load() {
			return ErrWorldClosed
		}
		if try() {
			return nil
		}
		r.wcond.Wait()
	}
}

// releaseCredit returns out-of-line bytes to the arena.
func (r *ring) releaseCredit(n int64) { r.extBytes.Add(-n) }

// push claims a slot, fills it and publishes. Blocks while the ring is
// full (spin, then park on the producer cond). Payload bytes are copied
// before return — inline into the slot, out-of-line into a pooled buffer
// — so the caller may reuse its slice immediately (copies() == true).
func (r *ring) push(m Message) error {
	n := len(m.Data)
	var ext []byte
	inline := false
	switch {
	case !r.copyMode:
		ext = m.Data // zero-copy: ownership rides with the slot
	case n <= r.inline:
		inline = true
	default:
		if err := r.acquireCredit(int64(n)); err != nil {
			return err
		}
		ext = r.pool.Get(n)
		copy(ext, m.Data)
	}
	abort := func(err error) error {
		if r.copyMode && !inline {
			r.releaseCredit(int64(n))
			r.pool.Put(ext)
		}
		return err
	}
	spins := 0
	for {
		if r.shut.Load() {
			return abort(ErrWorldClosed)
		}
		pos := r.enq.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if !r.enq.CompareAndSwap(pos, pos+1) {
				continue // lost the claim race; re-read enq
			}
			slot.src = int32(m.Source)
			slot.tag = int64(m.Tag)
			slot.comm = int64(m.Comm)
			slot.size = int32(n)
			if inline {
				if n > 0 {
					copy(slot.inline[:n], m.Data)
				}
			} else {
				slot.ext = ext
			}
			slot.seq.Store(pos + 1) // publish
			r.gate.signal()
			return nil
		case seq < pos:
			// Full: the slot has not been recycled from the previous lap.
			if err := r.waitSpace(pos, slot, &spins); err != nil {
				return abort(err)
			}
		default:
			// Another producer claimed pos and published already; retry.
		}
	}
}

// waitSpace blocks until slot (the cell for position pos) is recycled, or
// the world shuts down. Spin first; park on the producer cond after the
// budget.
func (r *ring) waitSpace(pos uint64, slot *ringSlot, spins *int) error {
	if *spins < ringSpinBudget {
		*spins++
		if *spins%ringSpinYield == 0 {
			runtime.Gosched()
		}
		return nil
	}
	*spins = 0
	r.wmu.Lock()
	defer r.wmu.Unlock()
	r.waiters.Add(1)
	defer r.waiters.Add(-1)
	for slot.seq.Load() < pos {
		if r.shut.Load() {
			return ErrWorldClosed
		}
		r.wcond.Wait()
	}
	return nil
}

// pop consumes the next published message, if any. Single-consumer: only
// the destination endpoint's pump role calls it. Inline payloads are
// copied out into a pooled buffer; out-of-line payloads transfer
// ownership of their pooled buffer directly.
func (r *ring) pop() (Message, bool) {
	pos := r.deq
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return Message{}, false
	}
	m := Message{Source: int(slot.src), Tag: int(slot.tag), Comm: int(slot.comm)}
	n := int(slot.size)
	if slot.ext != nil {
		m.Data = slot.ext[:n]
		slot.ext = nil
		if r.copyMode {
			r.releaseCredit(int64(n))
		}
	} else if slot.inline != nil && n > 0 {
		buf := r.pool.Get(n)
		copy(buf, slot.inline[:n])
		m.Data = buf
	}
	slot.seq.Store(pos + uint64(len(r.slots))) // recycle for the next lap
	r.deq = pos + 1
	r.wake()
	return m, true
}

// --------------------------------------------------------------------------
// Transport.

// ringTransport is the world-wide ring mesh: rings[dst][src] plus one
// wakeup gate per destination.
type ringTransport struct {
	eps   []*endpoint
	rings [][]*ring
	gates []*gate
	pool  *bufpool.Pool
	comps []string // precomputed "mpi.rank<r>" names; formatting them per send allocates
	cfg   RingConfig
	shut  atomic.Bool

	// Counters are resolved once here: Registry.Counter is a lock+map
	// lookup, far too heavy for the per-message path. All four are
	// nil-safe when no registry is attached.
	cSends, cExtern, cParks, cWakeups *metrics.Counter
}

func (t *ringTransport) send(to int, m Message) error {
	if t.shut.Load() {
		return ErrWorldClosed
	}
	if inj := t.cfg.Injector; inj != nil {
		if err := inj.Check(t.comps[m.Source], "send", t.comps[to]); err != nil {
			return err
		}
	}
	if err := t.rings[to][m.Source].push(m); err != nil {
		return err
	}
	t.cSends.Inc()
	if t.cfg.CopyPayloads && len(m.Data) > t.cfg.InlineBytes {
		t.cExtern.Inc()
	}
	return nil
}

// copies reports whether send copies payloads before returning: true in
// the CopyPayloads device emulation (inline or arena copy), false in the
// default zero-copy hand-off.
func (t *ringTransport) copies() bool { return t.cfg.CopyPayloads }

// recvPool exposes the pool inline copies and out-of-line payloads are
// drawn from in copying mode; receivers that Put consumed payloads back
// make the steady-state exchange allocation-free end to end. Nil in
// zero-copy mode, where delivered buffers belong to the application.
func (t *ringTransport) recvPool() *bufpool.Pool {
	if !t.cfg.CopyPayloads {
		return nil
	}
	return t.pool
}

func (t *ringTransport) close() error {
	if t.shut.Swap(true) {
		return nil
	}
	// Wake parked consumers (gates) and parked producers (ring conds) so
	// everyone observes the shutdown.
	for _, g := range t.gates {
		select {
		case g.ch <- struct{}{}:
		default:
		}
	}
	for _, row := range t.rings {
		for _, r := range row {
			r.wmu.Lock()
			r.wcond.Broadcast()
			r.wmu.Unlock()
		}
	}
	return nil
}

// --------------------------------------------------------------------------
// Pump: the consumer side, driven by the receiving rank.

// ringPump adapts a destination's incoming rings to the endpoint's pump
// interface. All methods are called only by the current holder of the
// endpoint's pump role, so next needs no synchronization beyond the
// endpoint mutex that serializes role transfer.
type ringPump struct {
	t      *ringTransport
	dst    int
	next   int // scan start: sticky to the last productive ring
	streak int // consecutive pops from that ring; capped for fairness
}

// pumpStreakLimit caps how many consecutive messages tryPop drains from
// one source ring before rotating the scan start, so a firehose sender
// cannot starve the other sources indefinitely.
const pumpStreakLimit = 64

// tryPop returns the next published message from any incoming ring. The
// scan starts at the ring that last produced a message — a conversation
// with one peer then checks exactly one ring instead of sweeping every
// (mostly idle) source each poll — and rotates away after
// pumpStreakLimit consecutive hits to keep the scan fair.
func (p *ringPump) tryPop() (Message, bool) {
	rings := p.t.rings[p.dst]
	n := len(rings)
	for i := 0; i < n; i++ {
		idx := p.next + i
		if idx >= n {
			idx -= n
		}
		if m, ok := rings[idx].pop(); ok {
			if i == 0 {
				p.streak++
			} else {
				p.streak = 1
			}
			p.next = idx
			if p.streak >= pumpStreakLimit {
				p.streak = 0
				if p.next++; p.next >= n {
					p.next = 0
				}
			}
			return m, true
		}
	}
	return Message{}, false
}

// waitNext blocks until a message is available (returning it) or the
// world shuts down (returning false). Spin-then-park: the gate is armed
// before the last poll, so a publication between poll and park cannot be
// missed (see gate).
func (p *ringPump) waitNext() (Message, bool) {
	g := p.t.gates[p.dst]
	spins := 0
	for {
		if m, ok := p.tryPop(); ok {
			return m, true
		}
		if p.t.shut.Load() {
			return Message{}, false
		}
		spins++
		if spins < ringSpinBudget {
			if spins%ringSpinYield == 0 {
				runtime.Gosched()
			}
			continue
		}
		spins = 0
		g.arm()
		if m, ok := p.tryPop(); ok {
			g.disarm()
			return m, true
		}
		if p.t.shut.Load() {
			g.disarm()
			return Message{}, false
		}
		p.t.cParks.Inc()
		g.wait()
		p.t.cWakeups.Inc()
	}
}
