package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(1, 7, []byte("hello"))
		case 1:
			data, st, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(data) != "hello" || st.Source != 0 || st.Tag != 7 || st.Size != 5 {
				return fmt.Errorf("got %q %+v", data, st)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOrderingSamePair(t *testing.T) {
	// Non-overtaking: messages with matching envelopes arrive in send order.
	const n = 100
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, _, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order: %d", i, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvByTagSelectsAcrossQueue(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("first")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("second"))
		}
		// Receive tag 2 first even though tag 1 arrived earlier.
		data, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if string(data) != "second" {
			return fmt.Errorf("tag-2 recv got %q", data)
		}
		data, _, err = c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(data) != "first" {
			return fmt.Errorf("tag-1 recv got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceWildcard(t *testing.T) {
	// The reducer-side pattern from the paper: wildcard reception from any
	// mapper (§IV.A "wildcard reception style").
	const senders = 7
	err := Run(senders+1, func(c *Comm) error {
		if c.Rank() > 0 {
			return c.Send(0, 5, []byte{byte(c.Rank())})
		}
		seen := make(map[int]bool)
		for i := 0; i < senders; i++ {
			data, st, err := c.Recv(AnySource, 5)
			if err != nil {
				return err
			}
			if int(data[0]) != st.Source {
				return fmt.Errorf("payload %d != source %d", data[0], st.Source)
			}
			if seen[st.Source] {
				return fmt.Errorf("duplicate source %d", st.Source)
			}
			seen[st.Source] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnyTagWildcard(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 42, []byte("x"))
		}
		_, st, err := c.Recv(0, AnyTag)
		if err != nil {
			return err
		}
		if st.Tag != 42 {
			return fmt.Errorf("tag = %d", st.Tag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeThenRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 9, []byte("sized"))
		}
		st, err := c.Probe(AnySource, AnyTag)
		if err != nil {
			return err
		}
		if st.Size != 5 || st.Source != 0 || st.Tag != 9 {
			return fmt.Errorf("probe status %+v", st)
		}
		data, _, err := c.Recv(st.Source, st.Tag)
		if err != nil {
			return err
		}
		if string(data) != "sized" {
			return fmt.Errorf("recv after probe got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobeNonBlocking(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c1 := w.Comm(1)
	if _, ok, err := c1.Iprobe(AnySource, AnyTag); err != nil || ok {
		t.Fatalf("Iprobe on empty queue: ok=%v err=%v", ok, err)
	}
	if err := w.Comm(0).Send(1, 1, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c1.Iprobe(0, 1); err != nil || !ok {
		t.Fatalf("Iprobe after send: ok=%v err=%v", ok, err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 4, []byte("async"))
			_, _, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 4)
		data, st, err := req.Wait()
		if err != nil {
			return err
		}
		if string(data) != "async" || st.Source != 0 {
			return fmt.Errorf("irecv got %q %+v", data, st)
		}
		if !req.Test() {
			return errors.New("Test false after Wait")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllCollectsError(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c := w.Comm(0)
	bad := c.Isend(99, 1, nil) // invalid rank
	good := c.Isend(1, 1, []byte("ok"))
	if err := WaitAll(bad, good); err == nil {
		t.Fatal("WaitAll swallowed the invalid-rank error")
	}
}

func TestValidation(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c := w.Comm(0)
	if err := c.Send(5, 1, nil); err == nil {
		t.Error("Send to invalid rank succeeded")
	}
	if err := c.Send(1, -3, nil); err == nil {
		t.Error("Send with negative tag succeeded")
	}
	if err := c.Send(1, MaxUserTag+1, nil); err == nil {
		t.Error("Send with reserved tag succeeded")
	}
	if _, _, err := c.Recv(5, 1); err == nil {
		t.Error("Recv from invalid rank succeeded")
	}
	if _, _, err := c.Recv(1, collTagBase); err == nil {
		t.Error("Recv with reserved tag succeeded")
	}
}

func TestWorldCloseUnblocksRecv(t *testing.T) {
	w := NewWorld(2)
	errc := make(chan error, 1)
	go func() {
		_, _, err := w.Comm(1).Recv(0, 1)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrWorldClosed) {
			t.Fatalf("err = %v, want ErrWorldClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestRunPropagatesErrorAndUnblocksPeers(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			return sentinel
		}
		// Peers block forever unless the world is torn down.
		_, _, err := c.Recv(0, 1)
		if !errors.Is(err, ErrWorldClosed) {
			return fmt.Errorf("peer unblocked with %v", err)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run err = %v, want sentinel", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("rank 1 exploded")
		}
		_, _, err := c.Recv(1, 1)
		_ = err // unblocked by teardown
		return nil
	})
	if err == nil {
		t.Fatal("panic did not surface as error")
	}
}

// --------------------------------------------------------------------------
// Collectives

func worldSizes() []int { return []int{1, 2, 3, 4, 7, 8} }

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range worldSizes() {
		var entered int32
		err := Run(n, func(c *Comm) error {
			atomic.AddInt32(&entered, 1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if got := atomic.LoadInt32(&entered); got != int32(n) {
				return fmt.Errorf("rank %d passed barrier with %d/%d entered", c.Rank(), got, n)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range worldSizes() {
		for root := 0; root < n; root++ {
			payload := []byte(fmt.Sprintf("payload-from-%d", root))
			err := Run(n, func(c *Comm) error {
				var in []byte
				if c.Rank() == root {
					in = payload
				}
				out, err := c.Bcast(root, in)
				if err != nil {
					return err
				}
				if !bytes.Equal(out, payload) {
					return fmt.Errorf("rank %d got %q", c.Rank(), out)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range worldSizes() {
		for root := 0; root < n; root++ {
			err := Run(n, func(c *Comm) error {
				out, err := c.Reduce(root, EncodeInt64(int64(c.Rank()+1)), SumInt64)
				if err != nil {
					return err
				}
				if c.Rank() == root {
					want := int64(n * (n + 1) / 2)
					if got := DecodeInt64(out); got != want {
						return fmt.Errorf("sum = %d, want %d", got, want)
					}
				} else if out != nil {
					return fmt.Errorf("non-root got %v", out)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	for _, n := range worldSizes() {
		err := Run(n, func(c *Comm) error {
			out, err := c.Allreduce(EncodeInt64(int64(c.Rank())), MaxInt64)
			if err != nil {
				return err
			}
			if got := DecodeInt64(out); got != int64(n-1) {
				return fmt.Errorf("rank %d: max = %d, want %d", c.Rank(), got, n-1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n = 5
	err := Run(n, func(c *Comm) error {
		gathered, err := c.Gather(2, []byte{byte(c.Rank() * 10)})
		if err != nil {
			return err
		}
		var parts [][]byte
		if c.Rank() == 2 {
			for i, g := range gathered {
				if len(g) != 1 || g[0] != byte(i*10) {
					return fmt.Errorf("gathered[%d] = %v", i, g)
				}
			}
			parts = make([][]byte, n)
			for i := range parts {
				parts[i] = []byte{byte(i * 10), 1}
			}
		}
		mine, err := c.Scatter(2, parts)
		if err != nil {
			return err
		}
		if len(mine) != 2 || mine[0] != byte(c.Rank()*10) {
			return fmt.Errorf("rank %d scattered %v", c.Rank(), mine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongPartCount(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 0 {
			parts = make([][]byte, 1) // wrong: needs 2
			_, err := c.Scatter(0, parts)
			if err == nil {
				return errors.New("Scatter accepted wrong part count")
			}
			return fmt.Errorf("expected failure: %w", err)
		}
		_, err := c.Scatter(0, nil)
		_ = err // unblocked by teardown
		return nil
	})
	if err == nil {
		t.Fatal("expected error to propagate")
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range worldSizes() {
		err := Run(n, func(c *Comm) error {
			out, err := c.Allgather([]byte{byte(c.Rank())})
			if err != nil {
				return err
			}
			for i, o := range out {
				if len(o) != 1 || o[0] != byte(i) {
					return fmt.Errorf("rank %d: out[%d] = %v", c.Rank(), i, o)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range worldSizes() {
		err := Run(n, func(c *Comm) error {
			parts := make([][]byte, n)
			for j := range parts {
				parts[j] = []byte{byte(c.Rank()), byte(j)}
			}
			out, err := c.Alltoall(parts)
			if err != nil {
				return err
			}
			for i, o := range out {
				if len(o) != 2 || o[0] != byte(i) || o[1] != byte(c.Rank()) {
					return fmt.Errorf("rank %d: out[%d] = %v", c.Rank(), i, o)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestConsecutiveCollectivesDoNotInterfere(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			out, err := c.Allreduce(EncodeInt64(int64(i)), SumInt64)
			if err != nil {
				return err
			}
			if got := DecodeInt64(out); got != int64(4*i) {
				return fmt.Errorf("iter %d: %d, want %d", i, got, 4*i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesMixedWithPointToPoint(t *testing.T) {
	// Collective traffic on reserved tags must not match user Recvs.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, []byte("user")); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			data, _, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if string(data) != "user" {
				return fmt.Errorf("got %q", data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankWorldCollectives(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		out, err := c.Bcast(0, []byte("solo"))
		if err != nil || string(out) != "solo" {
			return fmt.Errorf("bcast: %q %v", out, err)
		}
		red, err := c.Reduce(0, EncodeInt64(9), SumInt64)
		if err != nil || DecodeInt64(red) != 9 {
			return fmt.Errorf("reduce: %v %v", red, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
