// Collective operations over a communicator: Barrier, Bcast, Reduce,
// Allreduce, Gather, Scatter, Allgather, Alltoall(v), Sendrecv, and the
// one-sided Mcast multicast primitive.
//
// # The call-order contract
//
// Every true collective here (everything except Mcast and Sendrecv) must be
// called by every rank of the communicator, in the same program order.
// That contract is what lets tag allocation be a plain per-rank counter
// (nextCollTag): rank k's third collective call and rank j's third
// collective call are the same logical operation, so they agree on the
// reserved tag without any negotiation traffic. Interleaving collectives
// with point-to-point traffic is safe — collectives use the reserved tag
// space at collTagBase and above, which Send/Recv reject.
//
// # Algorithms
//
// Barrier is the dissemination algorithm (log2(n) rounds of pairwise
// notifications); Bcast and Reduce walk binomial trees rooted at the
// caller-chosen root; Allreduce is reduce-to-0 plus broadcast; the
// gather/scatter/all-to-all family uses eager linear exchanges, which the
// non-blocking eager transports make deadlock-free (send-all then
// receive-all never blocks on a peer's send).
//
// # Multicast (Mcast)
//
// Mcast is deliberately not a collective: only the sender calls it, and
// each destination receives the payload with a plain Recv on the same user
// tag. It models the one-to-many transmission of a multicast-capable
// fabric (Ethernet multicast, InfiniBand UD multicast, or a rack switch
// replicating a frame): one logical transmission serves every destination.
// The in-process and TCP transports emulate it by unicast fan-out, so
// callers that account for network traffic (the coded-shuffle prototype in
// internal/coded) should count len(data) once per Mcast call, not once per
// destination — that is exactly the accounting gap coded shuffle exploits.

package mpi

import (
	"encoding/binary"
	"fmt"
)

// ReduceFunc combines two payloads into one. It must be associative and
// commutative (the reduction tree imposes no order guarantee). It may reuse
// either input's storage.
type ReduceFunc func(a, b []byte) []byte

// nextCollTag reserves the tag for the next collective operation. Every rank
// calls collectives in the same program order, so per-rank counters agree.
// Wrapping keeps tags in the reserved space; 2^20 in-flight collectives
// would have to overlap for a clash, which the call-order contract forbids.
func (c *Comm) nextCollTag() int {
	tag := collTagBase + (c.collSeq % (1 << 20))
	c.collSeq++
	return tag
}

// Barrier blocks until every rank has entered it. Dissemination algorithm:
// log2(n) rounds of pairwise notifications.
func (c *Comm) Barrier() error {
	tag := c.nextCollTag()
	n := c.Size()
	for k := 1; k < n; k <<= 1 {
		to := (c.rank + k) % n
		from := (c.rank - k + n) % n
		if err := c.send(to, tag, nil); err != nil {
			return err
		}
		if _, err := c.crecv(from, tag); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns the payload (on root, data itself). Non-root callers pass nil.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := validateRank(root, c.Size()); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	n := c.Size()
	vrank := (c.rank - root + n) % n

	// Receive from the parent (clear lowest set bit), unless root.
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % n
			data2, err := c.crecv(parent, tag)
			if err != nil {
				return nil, err
			}
			data = data2
			break
		}
		mask <<= 1
	}
	// Forward to children.
	mask >>= 1
	for mask > 0 {
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			if err := c.send(child, tag, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// Reduce combines each rank's contribution with op along a binomial tree.
// The combined result is returned on root; other ranks get nil.
func (c *Comm) Reduce(root int, data []byte, op ReduceFunc) ([]byte, error) {
	if err := validateRank(root, c.Size()); err != nil {
		return nil, err
	}
	if op == nil {
		return nil, fmt.Errorf("mpi: Reduce needs a ReduceFunc")
	}
	tag := c.nextCollTag()
	n := c.Size()
	vrank := (c.rank - root + n) % n

	acc := data
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask == 0 {
			peer := vrank | mask
			if peer < n {
				peerData, err := c.crecv((peer+root)%n, tag)
				if err != nil {
					return nil, err
				}
				acc = op(acc, peerData)
			}
		} else {
			parent := (vrank - mask + root) % n
			if err := c.send(parent, tag, acc); err != nil {
				return nil, err
			}
			acc = nil
			break
		}
	}
	if c.rank == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce combines all contributions and returns the result on every rank
// (reduce-to-0 followed by broadcast).
func (c *Comm) Allreduce(data []byte, op ReduceFunc) ([]byte, error) {
	acc, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, acc)
}

// Gather collects each rank's payload at root, indexed by rank. Non-root
// callers receive nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := validateRank(root, c.Size()); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	n := c.Size()
	if c.rank != root {
		return nil, c.send(root, tag, data)
	}
	out := make([][]byte, n)
	out[root] = data
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		data, err := c.crecv(i, tag)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// Scatter distributes parts[i] from root to rank i and returns this rank's
// part. Only root's parts argument is consulted; it must have one entry per
// rank.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := validateRank(root, c.Size()); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	n := c.Size()
	if c.rank == root {
		if len(parts) != n {
			return nil, fmt.Errorf("mpi: Scatter needs %d parts, got %d", n, len(parts))
		}
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			if err := c.send(i, tag, parts[i]); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	data, err := c.crecv(root, tag)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Allgather collects every rank's payload on every rank, indexed by rank.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	tag := c.nextCollTag()
	n := c.Size()
	out := make([][]byte, n)
	out[c.rank] = data
	// Eager sends cannot block, so send-all then receive-all is safe.
	for i := 0; i < n; i++ {
		if i == c.rank {
			continue
		}
		if err := c.send(i, tag, data); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		if i == c.rank {
			continue
		}
		data, err := c.crecv(i, tag)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// Alltoall sends parts[j] to rank j and returns the payloads received from
// every rank, indexed by source. This is the mapper-to-reducer communication
// pattern the paper discusses in §III.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	n := c.Size()
	if len(parts) != n {
		return nil, fmt.Errorf("mpi: Alltoall needs %d parts, got %d", n, len(parts))
	}
	tag := c.nextCollTag()
	out := make([][]byte, n)
	out[c.rank] = parts[c.rank]
	for i := 0; i < n; i++ {
		if i == c.rank {
			continue
		}
		if err := c.send(i, tag, parts[i]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		if i == c.rank {
			continue
		}
		data, err := c.crecv(i, tag)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// Mcast transmits one payload to several destinations — the multicast
// primitive. Unlike the collectives above it is one-sided: only the sender
// calls it, and each destination receives the payload with an ordinary
// Recv(sender, tag) on the same user tag. Destinations must be distinct
// ranks of this communicator and must not include the sender; tag must be
// a user tag (below the reserved collective space).
//
// Semantically this is one transmission: on a multicast-capable fabric the
// payload crosses the sender's link once however many destinations there
// are. The transports here emulate that with an eager unicast fan-out, so
// delivery order between destinations is unspecified, but per-destination
// FIFO ordering (the transport invariant) still holds. Callers modelling
// network cost should charge len(data) once per Mcast call — the
// accounting the coded-shuffle prototype (internal/coded) builds on.
//
// Ownership of data transfers with the message on zero-copy transports,
// exactly as for Send: the caller must not modify the slice afterwards.
// On those transports every destination also receives an alias of the
// same backing array, so receivers must treat a multicast payload as
// read-only.
func (c *Comm) Mcast(dests []int, tag int, data []byte) error {
	if err := validateTag(tag); err != nil {
		return err
	}
	if len(dests) == 0 {
		return fmt.Errorf("mpi: Mcast needs at least one destination")
	}
	seen := make(map[int]bool, len(dests))
	for _, d := range dests {
		if err := validateRank(d, c.Size()); err != nil {
			return err
		}
		if d == c.rank {
			return fmt.Errorf("mpi: Mcast destination %d is the sender", d)
		}
		if seen[d] {
			return fmt.Errorf("mpi: Mcast destination %d listed twice", d)
		}
		seen[d] = true
	}
	for _, d := range dests {
		if err := c.send(d, tag, data); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Common reduce operators

// SumInt64 adds two 8-byte big-endian signed integers.
func SumInt64(a, b []byte) []byte {
	return EncodeInt64(DecodeInt64(a) + DecodeInt64(b))
}

// MaxInt64 keeps the larger of two encoded integers.
func MaxInt64(a, b []byte) []byte {
	if DecodeInt64(a) >= DecodeInt64(b) {
		return a
	}
	return b
}

// MinInt64 keeps the smaller of two encoded integers.
func MinInt64(a, b []byte) []byte {
	if DecodeInt64(a) <= DecodeInt64(b) {
		return a
	}
	return b
}

// EncodeInt64 renders v as the 8-byte value the integer operators consume.
func EncodeInt64(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// DecodeInt64 parses an 8-byte operator value; it panics on malformed input
// because operator payloads are runtime-internal, never external data.
func DecodeInt64(b []byte) int64 {
	if len(b) != 8 {
		panic(fmt.Sprintf("mpi: integer operator payload must be 8 bytes, got %d", len(b)))
	}
	return int64(binary.BigEndian.Uint64(b))
}

// Sendrecv performs a simultaneous send to `to` and receive from `from`
// without deadlocking (MPI_Sendrecv). Both directions use the same tag.
func (c *Comm) Sendrecv(to int, sendData []byte, from, tag int) ([]byte, Status, error) {
	if err := validateRank(to, c.Size()); err != nil {
		return nil, Status{}, err
	}
	if from != AnySource {
		if err := validateRank(from, c.Size()); err != nil {
			return nil, Status{}, err
		}
	}
	if err := validateTag(tag); err != nil {
		return nil, Status{}, err
	}
	// Sends are eager, so send-then-receive cannot deadlock.
	if err := c.send(to, tag, sendData); err != nil {
		return nil, Status{}, err
	}
	return c.recv(from, tag)
}

// Alltoallv is the variable-size all-to-all: parts[j] (any length,
// including empty) goes to rank j; the return value holds what each rank
// sent here. This matches MPI-D's realigned-partition exchange, where
// partition sizes differ per destination.
func (c *Comm) Alltoallv(parts [][]byte) ([][]byte, error) {
	// Payload sizes differ, but the communication pattern is Alltoall's;
	// empty parts still travel so the receive count stays uniform.
	return c.Alltoall(parts)
}
