package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

// runTCP mirrors Run over a TCP world.
func runTCP(t *testing.T, n int, body func(*Comm) error) {
	t.Helper()
	w, err := NewTCPWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := RunOn(w, body); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSendRecv(t *testing.T) {
	runTCP(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("over the wire"))
		}
		data, st, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "over the wire" || st.Size != 13 {
			return fmt.Errorf("got %q %+v", data, st)
		}
		return nil
	})
}

func TestTCPEmptyMessage(t *testing.T) {
	runTCP(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, nil)
		}
		data, st, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if len(data) != 0 || st.Size != 0 {
			return fmt.Errorf("empty message arrived as %v %+v", data, st)
		}
		return nil
	})
}

func TestTCPLargeMessage(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 4<<20) // 4 MiB
	runTCP(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 2, payload)
		}
		data, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if !bytes.Equal(data, payload) {
			return fmt.Errorf("large payload corrupted: %d bytes", len(data))
		}
		return nil
	})
}

func TestTCPOrderingManyMessages(t *testing.T) {
	const n = 500
	runTCP(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				payload := []byte{byte(i), byte(i >> 8)}
				if err := c.Send(1, 3, payload); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, _, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			got := int(data[0]) | int(data[1])<<8
			if got != i {
				return fmt.Errorf("message %d arrived as %d", i, got)
			}
		}
		return nil
	})
}

func TestTCPPingPong(t *testing.T) {
	runTCP(t, 2, func(c *Comm) error {
		const rounds = 20
		if c.Rank() == 0 {
			for i := 0; i < rounds; i++ {
				if err := c.Send(1, 1, []byte{byte(i)}); err != nil {
					return err
				}
				data, _, err := c.Recv(1, 1)
				if err != nil {
					return err
				}
				if data[0] != byte(i) {
					return fmt.Errorf("echo %d came back as %d", i, data[0])
				}
			}
			return nil
		}
		for i := 0; i < rounds; i++ {
			data, _, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if err := c.Send(0, 1, data); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestTCPCollectives(t *testing.T) {
	runTCP(t, 4, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		out, err := c.Allreduce(EncodeInt64(int64(c.Rank()+1)), SumInt64)
		if err != nil {
			return err
		}
		if got := DecodeInt64(out); got != 10 {
			return fmt.Errorf("allreduce = %d, want 10", got)
		}
		parts := make([][]byte, 4)
		for j := range parts {
			parts[j] = []byte{byte(c.Rank() * 4), byte(j)}
		}
		recvd, err := c.Alltoall(parts)
		if err != nil {
			return err
		}
		for i, r := range recvd {
			if r[0] != byte(i*4) || r[1] != byte(c.Rank()) {
				return fmt.Errorf("alltoall[%d] = %v", i, r)
			}
		}
		return nil
	})
}

func TestTCPAnySourceManySenders(t *testing.T) {
	const senders = 6
	runTCP(t, senders+1, func(c *Comm) error {
		if c.Rank() > 0 {
			return c.Send(0, 5, []byte{byte(c.Rank())})
		}
		seen := make(map[int]bool)
		for i := 0; i < senders; i++ {
			data, st, err := c.Recv(AnySource, 5)
			if err != nil {
				return err
			}
			if int(data[0]) != st.Source || seen[st.Source] {
				return fmt.Errorf("bad/duplicate source %d", st.Source)
			}
			seen[st.Source] = true
		}
		return nil
	})
}

func TestTCPWorldCloseIdempotent(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSendAfterCloseFails(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Comm(0)
	w.Close()
	if err := c.Send(1, 1, []byte("x")); err == nil {
		t.Fatal("Send after Close succeeded")
	}
}

func TestTCPInvalidWorldSize(t *testing.T) {
	if _, err := NewTCPWorld(0); err == nil {
		t.Fatal("NewTCPWorld(0) succeeded")
	}
}
