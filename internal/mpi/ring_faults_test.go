package mpi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/faults"
)

// ringModes runs a subtest in both payload modes: the default zero-copy
// hand-off and the CopyPayloads device emulation. Fault and edge behavior
// must be identical in both.
func ringModes(t *testing.T, cfg RingConfig, fn func(t *testing.T, w *World)) {
	t.Helper()
	for _, mode := range []struct {
		name string
		copy bool
	}{{"zerocopy", false}, {"copy", true}} {
		t.Run(mode.name, func(t *testing.T) {
			c := cfg
			c.CopyPayloads = mode.copy
			w := NewRingWorldConfig(2, c)
			defer w.Close()
			fn(t, w)
		})
	}
}

// TestRingWraparoundFIFO pushes far more messages than the ring has slots
// through a pathologically small ring, so every slot's sequence number
// wraps many times. Order and content must survive: a stale slot observed
// across a wrap would break either.
func TestRingWraparoundFIFO(t *testing.T) {
	const total = 300 // 75 wraps of a 4-slot ring
	ringModes(t, RingConfig{Slots: 4, InlineBytes: 64}, func(t *testing.T, w *World) {
		errs := make(chan error, 1)
		go func() {
			c := w.Comm(0)
			for i := 0; i < total; i++ {
				if err := c.Send(1, 5, []byte(fmt.Sprintf("msg-%03d", i))); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
		c := w.Comm(1)
		for i := 0; i < total; i++ {
			data, _, err := c.Recv(0, 5)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if want := fmt.Sprintf("msg-%03d", i); string(data) != want {
				t.Fatalf("recv %d = %q, want %q (overtaking across wraparound)", i, data, want)
			}
		}
		if err := <-errs; err != nil {
			t.Fatalf("sender: %v", err)
		}
	})
}

// TestRingArenaExhaustion forces rendezvous sends through an arena much
// smaller than the offered load: producers must block on credit and
// resume as the consumer drains, and a single message larger than the
// whole arena must still be admitted rather than deadlock.
func TestRingArenaExhaustion(t *testing.T) {
	cfg := RingConfig{CopyPayloads: true, InlineBytes: 32, ArenaBytes: 2048}
	w := NewRingWorldConfig(2, cfg)
	defer w.Close()

	const msgs = 16
	payload := make([]byte, 1024) // 1 KiB each through a 2 KiB arena
	for i := range payload {
		payload[i] = byte(i)
	}
	errs := make(chan error, 1)
	go func() {
		c := w.Comm(0)
		for i := 0; i < msgs; i++ {
			if err := c.Send(1, 1, payload); err != nil {
				errs <- err
				return
			}
		}
		// Larger than the entire arena: must borrow the full budget.
		errs <- c.Send(1, 2, make([]byte, 8192))
	}()

	// Let the sender hit the credit wall before draining.
	time.Sleep(20 * time.Millisecond)
	c := w.Comm(1)
	pool := c.RecvBufferPool()
	for i := 0; i < msgs; i++ {
		data, _, err := c.Recv(0, 1)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		for j, b := range data {
			if b != byte(j) {
				t.Fatalf("recv %d corrupted at byte %d", i, j)
			}
		}
		pool.Put(data)
	}
	data, _, err := c.Recv(0, 2)
	if err != nil || len(data) != 8192 {
		t.Fatalf("oversized message: %d bytes, %v", len(data), err)
	}
	pool.Put(data)
	if err := <-errs; err != nil {
		t.Fatalf("sender: %v", err)
	}
}

// TestRingTornSlotNeverObserved storms a tiny ring from concurrent senders
// while the receiver validates every message is internally consistent
// (uniform fill byte, length encoded in the tag). Publication order (fill
// before the sequence store) is what prevents a half-written slot from
// being popped; any tear shows up as a mixed fill. Run under -race this
// also checks the payload hand-off is properly synchronized.
func TestRingTornSlotNeverObserved(t *testing.T) {
	const senders = 3
	const perSender = 150
	w := NewRingWorldConfig(senders+1, RingConfig{Slots: 8, InlineBytes: 128})
	defer w.Close()

	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			for i := 0; i < perSender; i++ {
				size := 1 + (i*7+rank)%96
				msg := make([]byte, size)
				for j := range msg {
					msg[j] = byte(rank)
				}
				if err := c.Send(0, size, msg); err != nil {
					t.Errorf("rank %d send %d: %v", rank, i, err)
					return
				}
			}
		}(s)
	}
	c := w.Comm(0)
	for i := 0; i < senders*perSender; i++ {
		data, st, err := c.Recv(AnySource, AnyTag)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(data) != st.Tag {
			t.Fatalf("recv %d: %d bytes from rank %d, tag promised %d (torn slot)", i, len(data), st.Source, st.Tag)
		}
		for j, b := range data {
			if b != byte(st.Source) {
				t.Fatalf("recv %d byte %d = %d, want %d (torn slot)", i, j, b, st.Source)
			}
		}
	}
	wg.Wait()
}

// TestRingIsendStorm mirrors the TCP coverage bar: a burst of in-flight
// Isends from every rank into one receiver, all waited, all delivered.
func TestRingIsendStorm(t *testing.T) {
	const senders = 3
	const burst = 64
	for _, copyMode := range []bool{false, true} {
		name := "zerocopy"
		if copyMode {
			name = "copy"
		}
		t.Run(name, func(t *testing.T) {
			w := NewRingWorldConfig(senders+1, RingConfig{Slots: 16, CopyPayloads: copyMode})
			defer w.Close()
			var wg sync.WaitGroup
			for s := 1; s <= senders; s++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					c := w.Comm(rank)
					reqs := make([]*Request, 0, burst)
					for i := 0; i < burst; i++ {
						msg := []byte(fmt.Sprintf("r%d-i%03d", rank, i))
						reqs = append(reqs, c.Isend(0, rank, msg))
					}
					for i, r := range reqs {
						if _, _, err := r.Wait(); err != nil {
							t.Errorf("rank %d isend %d: %v", rank, i, err)
							return
						}
					}
				}(s)
			}
			c := w.Comm(0)
			got := map[int]int{}
			for i := 0; i < senders*burst; i++ {
				_, st, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				got[st.Source]++
			}
			for s := 1; s <= senders; s++ {
				if got[s] != burst {
					t.Fatalf("rank %d delivered %d/%d", s, got[s], burst)
				}
			}
			wg.Wait()
		})
	}
}

// TestRingAnySourceReceiveWhileSenderDies is the ring version of the TCP
// fault-parity test: one of two senders racing to an ANY_SOURCE receiver
// is killed by an injected fault and the receiver completes with the
// survivor's message.
func TestRingAnySourceReceiveWhileSenderDies(t *testing.T) {
	inj := faults.New(1, faults.Rule{Component: "mpi.rank1", Operation: "send", Action: faults.Drop})
	w := NewRingWorldWithFaults(3, inj)
	defer w.Close()

	recvd := make(chan error, 1)
	go func() {
		data, st, err := w.Comm(0).Recv(AnySource, 9)
		if err == nil && (st.Source != 2 || string(data) != "survivor") {
			t.Errorf("recv = %q from rank %d", data, st.Source)
		}
		recvd <- err
	}()
	if err := w.Comm(1).Send(0, 9, []byte("casualty")); !faults.IsInjected(err) {
		t.Fatalf("dead sender's send: %v, want injected", err)
	}
	if err := w.Comm(2).Send(0, 9, []byte("survivor")); err != nil {
		t.Fatalf("surviving sender: %v", err)
	}
	select {
	case err := <-recvd:
		if err != nil {
			t.Fatalf("receiver: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ANY_SOURCE receive hung after sender death")
	}
}

// TestRingCloseUnblocksFullRingProducer fills a receiverless ring until the
// producer parks in waitSpace, then closes the world: the producer must
// fail out with ErrWorldClosed instead of hanging.
func TestRingCloseUnblocksFullRingProducer(t *testing.T) {
	w := NewRingWorldConfig(2, RingConfig{Slots: 4})
	blocked := make(chan error, 1)
	go func() {
		c := w.Comm(0)
		for i := 0; ; i++ {
			if err := c.Send(1, 1, []byte("fill")); err != nil {
				blocked <- err
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond) // sender is parked on a full ring now
	w.Close()
	select {
	case err := <-blocked:
		if err != ErrWorldClosed {
			t.Fatalf("blocked producer returned %v, want ErrWorldClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer still parked after Close")
	}
}
