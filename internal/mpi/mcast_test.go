package mpi

import (
	"bytes"
	"strings"
	"testing"
)

func TestMcastDeliversToEveryDestination(t *testing.T) {
	payload := []byte("coded packet")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Mcast([]int{1, 2, 3}, 9, payload)
		}
		data, st, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if !bytes.Equal(data, payload) {
			t.Errorf("rank %d got %q", c.Rank(), data)
		}
		if st.Source != 0 || st.Tag != 9 {
			t.Errorf("rank %d status %+v", c.Rank(), st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMcastPreservesPerDestinationOrder(t *testing.T) {
	// Two multicasts to the same group: each destination must see them in
	// send order (the transport's non-overtaking invariant).
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Mcast([]int{1, 2}, 5, []byte{1}); err != nil {
				return err
			}
			return c.Mcast([]int{1, 2}, 5, []byte{2})
		}
		for want := byte(1); want <= 2; want++ {
			data, _, err := c.Recv(0, 5)
			if err != nil {
				return err
			}
			if data[0] != want {
				t.Errorf("rank %d: multicast %d arrived out of order: %d", c.Rank(), want, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMcastValidation(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		cases := []struct {
			dests []int
			tag   int
			want  string
		}{
			{nil, 1, "at least one destination"},
			{[]int{0}, 1, "is the sender"},
			{[]int{1, 1}, 1, "listed twice"},
			{[]int{7}, 1, "out of range"},
			{[]int{1}, -1, "outside user tag range"},
		}
		for _, tc := range cases {
			err := c.Mcast(tc.dests, tc.tag, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Mcast(%v, %d) = %v, want error containing %q", tc.dests, tc.tag, err, tc.want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
