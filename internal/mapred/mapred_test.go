package mapred

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/kv"
)

// wordCountMapper splits a line into words and emits (word, 1).
var wordCountMapper = MapperFunc(func(_, value []byte, emit Emit) error {
	for _, w := range bytes.Fields(value) {
		if err := emit(w, kv.AppendVLong(nil, 1)); err != nil {
			return err
		}
	}
	return nil
})

// wordCountReducer sums counts.
var wordCountReducer = ReducerFunc(func(key []byte, values [][]byte, emit Emit) error {
	var total int64
	for _, v := range values {
		n, _, err := kv.ReadVLong(v)
		if err != nil {
			return err
		}
		total += n
	}
	return emit(key, kv.AppendVLong(nil, total))
})

// refWordCount computes counts sequentially.
func refWordCount(text []byte) map[string]int64 {
	ref := make(map[string]int64)
	for _, line := range strings.Split(string(text), "\n") {
		for _, w := range strings.Fields(line) {
			ref[w]++
		}
	}
	return ref
}

func decodeCountPairs(t *testing.T, pairs []kv.Pair) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, p := range pairs {
		n, _, err := kv.ReadVLong(p.Value)
		if err != nil {
			t.Fatalf("bad count for %q: %v", p.Key, err)
		}
		out[string(p.Key)] += n
	}
	return out
}

// genText produces deterministic newline-delimited text of roughly size
// bytes from a 300-word pool. It stands in for the workload package's text
// generator, which can no longer be imported here: workload now depends on
// mapred, so an internal mapred test importing it would be a cycle.
func genText(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for b.Len() < size {
		words := 3 + rng.Intn(8)
		for i := 0; i < words; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "w%04d", rng.Intn(300))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func TestWordCountJobEndToEnd(t *testing.T) {
	text := genText(50_000, 1)
	job := Job{
		Name:        "wordcount",
		Mapper:      wordCountMapper,
		Reducer:     wordCountReducer,
		Combiner:    CombinerFromReducer(wordCountReducer),
		NumReducers: 3,
	}
	res, err := Run(job, SplitText(text, 8_000), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeCountPairs(t, res.Pairs())
	want := refWordCount(text)
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
	if res.MapTasks != 7 { // 50000/8000 rounded by line boundaries
		t.Logf("map tasks = %d", res.MapTasks) // informational; depends on line lengths
	}
	if res.MapCounters.PairsSent == 0 || res.MapCounters.Spills == 0 {
		t.Errorf("map counters empty: %+v", res.MapCounters)
	}
}

func TestWordCountSingleMapperSingleReducer(t *testing.T) {
	text := []byte("a b a\nc a b\n")
	res, err := Run(Job{Mapper: wordCountMapper, Reducer: wordCountReducer}, SplitText(text, 1024), 1)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeCountPairs(t, res.Pairs())
	want := map[string]int64{"a": 3, "b": 2, "c": 1}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestEmptyInputProducesEmptyOutput(t *testing.T) {
	res, err := Run(Job{Mapper: wordCountMapper, Reducer: wordCountReducer, NumReducers: 2}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs()) != 0 {
		t.Fatalf("empty job produced %d pairs", len(res.Pairs()))
	}
}

func TestMoreMappersThanSplits(t *testing.T) {
	text := []byte("solo line\n")
	res, err := Run(Job{Mapper: wordCountMapper, Reducer: wordCountReducer}, SplitText(text, 1024), 8)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeCountPairs(t, res.Pairs())
	if got["solo"] != 1 || got["line"] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestReducerOutputKeysSortedWithinReducer(t *testing.T) {
	text := genText(20_000, 2)
	res, err := Run(Job{Mapper: wordCountMapper, Reducer: wordCountReducer, NumReducers: 2}, SplitText(text, 4_000), 3)
	if err != nil {
		t.Fatal(err)
	}
	for r, pairs := range res.ByReducer {
		for i := 1; i < len(pairs); i++ {
			if kv.Compare(pairs[i-1].Key, pairs[i].Key) > 0 {
				t.Fatalf("reducer %d output unsorted at %d", r, i)
			}
		}
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	boom := errors.New("mapper exploded")
	bad := MapperFunc(func(_, _ []byte, _ Emit) error { return boom })
	_, err := Run(Job{Mapper: bad, Reducer: wordCountReducer}, SplitText([]byte("x\n"), 10), 1)
	if err == nil || !strings.Contains(err.Error(), "mapper exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	bad := ReducerFunc(func(_ []byte, _ [][]byte, _ Emit) error { return errors.New("reducer exploded") })
	_, err := Run(Job{Mapper: wordCountMapper, Reducer: bad}, SplitText([]byte("x\n"), 10), 1)
	if err == nil || !strings.Contains(err.Error(), "reducer exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestJobValidation(t *testing.T) {
	if _, err := Run(Job{}, nil, 1); err == nil {
		t.Error("job without mapper/reducer accepted")
	}
	if _, err := Run(Job{Mapper: wordCountMapper, Reducer: wordCountReducer}, nil, 0); err == nil {
		t.Error("zero mappers accepted")
	}
}

func TestCombinerReducesTraffic(t *testing.T) {
	text := genText(40_000, 3)
	splits := SplitText(text, 8_000)
	run := func(withCombiner bool) core.Counters {
		job := Job{Mapper: wordCountMapper, Reducer: wordCountReducer}
		if withCombiner {
			job.Combiner = CombinerFromReducer(wordCountReducer)
		}
		res, err := Run(job, splits, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.MapCounters
	}
	with, without := run(true), run(false)
	if with.BytesSent >= without.BytesSent {
		t.Errorf("combiner did not shrink traffic: %d >= %d", with.BytesSent, without.BytesSent)
	}
	if with.PairsCombined == 0 {
		t.Error("PairsCombined = 0 with combiner on")
	}
}

func TestDistributedSortJob(t *testing.T) {
	// The JavaSort shape: identity map, identity reduce, range partitioner
	// so concatenating reducer outputs yields a globally sorted sequence.
	rng := rand.New(rand.NewSource(7))
	var pairs []kv.Pair
	for i := 0; i < 2_000; i++ {
		key := make([]byte, 10)
		for j := range key {
			key[j] = byte(' ' + rng.Intn(95))
		}
		pairs = append(pairs, kv.Pair{Key: key, Value: []byte(fmt.Sprintf("rec-%06d", i))})
	}
	splits := []Split{
		NewPairSplit(0, pairs[:500]),
		NewPairSplit(1, pairs[500:1200]),
		NewPairSplit(2, pairs[1200:]),
	}
	identityMap := MapperFunc(func(k, v []byte, emit Emit) error { return emit(k, v) })
	identityReduce := ReducerFunc(func(k []byte, values [][]byte, emit Emit) error {
		for _, v := range values {
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	})
	res, err := Run(Job{
		Name:        "javasort",
		Mapper:      identityMap,
		Reducer:     identityReduce,
		Partitioner: core.FirstByteRangePartitioner,
		NumReducers: 4,
	}, splits, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Concatenate reducer outputs in reducer order: must be globally sorted
	// and a permutation of the input.
	var out []kv.Pair
	for _, rp := range res.ByReducer {
		out = append(out, rp...)
	}
	if len(out) != len(pairs) {
		t.Fatalf("output has %d records, want %d", len(out), len(pairs))
	}
	for i := 1; i < len(out); i++ {
		if kv.Compare(out[i-1].Key, out[i].Key) > 0 {
			t.Fatalf("global order violated at %d", i)
		}
	}
	// Permutation check via sorted multiset of keys.
	inKeys := make([]string, len(pairs))
	outKeys := make([]string, len(out))
	for i := range pairs {
		inKeys[i] = string(pairs[i].Key)
		outKeys[i] = string(out[i].Key)
	}
	sort.Strings(inKeys)
	sort.Strings(outKeys)
	for i := range inKeys {
		if inKeys[i] != outKeys[i] {
			t.Fatalf("key multiset differs at %d: %q vs %q", i, inKeys[i], outKeys[i])
		}
	}
}

func TestManyReducersManyMappersStress(t *testing.T) {
	text := genText(100_000, 4)
	job := Job{
		Mapper:      wordCountMapper,
		Reducer:     wordCountReducer,
		Combiner:    CombinerFromReducer(wordCountReducer),
		NumReducers: 7,
		Async:       true,
	}
	res, err := Run(job, SplitText(text, 5_000), 7)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeCountPairs(t, res.Pairs())
	want := refWordCount(text)
	var gotTotal, wantTotal int64
	for _, v := range got {
		gotTotal += v
	}
	for _, v := range want {
		wantTotal += v
	}
	if gotTotal != wantTotal {
		t.Fatalf("total words: got %d, want %d", gotTotal, wantTotal)
	}
}

// --------------------------------------------------------------------------
// Input splitting

func TestLineSplitRecords(t *testing.T) {
	s := NewLineSplit(0, []byte("first\nsecond\nthird"))
	var lines []string
	var offsets []int64
	err := s.Records(func(k, v []byte) error {
		off, _, err := kv.ReadVLong(k)
		if err != nil {
			return err
		}
		offsets = append(offsets, off)
		lines = append(lines, string(v))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(lines) != "[first second third]" {
		t.Fatalf("lines = %v", lines)
	}
	if fmt.Sprint(offsets) != "[0 6 13]" {
		t.Fatalf("offsets = %v", offsets)
	}
}

func TestLineSplitEmpty(t *testing.T) {
	s := NewLineSplit(0, nil)
	count := 0
	if err := s.Records(func(_, _ []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("empty split yielded %d records", count)
	}
}

func TestSplitTextCoversAllBytes(t *testing.T) {
	text := genText(10_000, 5)
	splits := SplitText(text, 1_000)
	var total int
	for i, s := range splits {
		ls := s.(*LineSplit)
		if s.ID() != i {
			t.Fatalf("split %d has ID %d", i, s.ID())
		}
		total += ls.Len()
	}
	if total != len(text) {
		t.Fatalf("splits cover %d bytes, want %d", total, len(text))
	}
}

func TestSplitTextNoStraddlingRecords(t *testing.T) {
	// The word multiset over all splits must equal the whole text's.
	text := genText(10_000, 6)
	splits := SplitText(text, 777)
	counts := make(map[string]int64)
	for _, s := range splits {
		if err := s.Records(func(_, v []byte) error {
			for _, w := range bytes.Fields(v) {
				counts[string(w)]++
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	want := refWordCount(text)
	if len(counts) != len(want) {
		t.Fatalf("distinct words %d, want %d", len(counts), len(want))
	}
	for w, c := range want {
		if counts[w] != c {
			t.Fatalf("count[%q] = %d, want %d", w, counts[w], c)
		}
	}
}

func TestSplitTextDefaultBlockSize(t *testing.T) {
	splits := SplitText([]byte("a\nb\n"), 0)
	if len(splits) != 1 {
		t.Fatalf("got %d splits", len(splits))
	}
}

func TestTaskRetryRecoversTransientFailure(t *testing.T) {
	// The mapper fails the first attempt of every split, succeeding on
	// retry — the output must be exactly-once despite the failures.
	text := []byte("a b a\nc a b\nb c c\n")
	splits := SplitText(text, 6)
	var failed sync.Map // split first-attempt tracker via first record key
	flaky := MapperFunc(func(key, value []byte, emit Emit) error {
		if _, loaded := failed.LoadOrStore(string(key), true); !loaded {
			return errors.New("transient failure")
		}
		return wordCountMapper.Map(key, value, emit)
	})
	res, err := Run(Job{
		Mapper:          flaky,
		Reducer:         wordCountReducer,
		MaxTaskAttempts: 3,
	}, splits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedAttempts == 0 {
		t.Fatal("no failures recorded despite flaky mapper")
	}
	got := decodeCountPairs(t, res.Pairs())
	want := refWordCount(text)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d (retry duplicated or lost output)", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("distinct words %d, want %d", len(got), len(want))
	}
}

func TestTaskRetryBudgetExhausted(t *testing.T) {
	always := MapperFunc(func(_, _ []byte, _ Emit) error {
		return errors.New("permanent failure")
	})
	_, err := Run(Job{
		Mapper:          always,
		Reducer:         wordCountReducer,
		MaxTaskAttempts: 3,
	}, SplitText([]byte("x\n"), 10), 2)
	if err == nil || !strings.Contains(err.Error(), "budget 3 exhausted") {
		t.Fatalf("err = %v", err)
	}
}

func TestTaskRetryNoFailuresIsFreeOfSideEffects(t *testing.T) {
	// Buffered-commit mode with a healthy mapper must match direct mode.
	text := genText(20_000, 7)
	splits := SplitText(text, 4_000)
	direct, err := Run(Job{Mapper: wordCountMapper, Reducer: wordCountReducer}, splits, 3)
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := Run(Job{Mapper: wordCountMapper, Reducer: wordCountReducer, MaxTaskAttempts: 4}, splits, 3)
	if err != nil {
		t.Fatal(err)
	}
	if buffered.FailedAttempts != 0 {
		t.Fatalf("FailedAttempts = %d", buffered.FailedAttempts)
	}
	a := decodeCountPairs(t, direct.Pairs())
	b := decodeCountPairs(t, buffered.Pairs())
	if len(a) != len(b) {
		t.Fatalf("distinct words differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("count[%q]: direct %d, buffered %d", k, v, b[k])
		}
	}
}
