package mapred

import (
	"bytes"

	"github.com/ict-repro/mpid/internal/kv"
)

// LineSplit is the TextInputFormat analogue: records are lines, the key is
// the byte offset of the line within the split (as a VLong) and the value
// is the line without its newline.
type LineSplit struct {
	id   int
	data []byte
}

// NewLineSplit wraps a text buffer as a split.
func NewLineSplit(id int, data []byte) *LineSplit {
	return &LineSplit{id: id, data: data}
}

// ID implements Split.
func (s *LineSplit) ID() int { return s.id }

// Len returns the split size in bytes.
func (s *LineSplit) Len() int { return len(s.data) }

// Records implements Split, yielding (offset, line) records.
func (s *LineSplit) Records(yield func(key, value []byte) error) error {
	data := s.data
	offset := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		var consumed int64
		if nl < 0 {
			line, consumed = data, int64(len(data))
		} else {
			line, consumed = data[:nl], int64(nl+1)
		}
		if err := yield(kv.AppendVLong(nil, offset), line); err != nil {
			return err
		}
		offset += consumed
		data = data[consumed:]
	}
	return nil
}

// SplitText chops a text buffer into roughly blockSize splits on line
// boundaries, the way HDFS blocks plus TextInputFormat split a file. Every
// byte of input lands in exactly one split.
func SplitText(data []byte, blockSize int) []Split {
	if blockSize <= 0 {
		blockSize = 64 << 20
	}
	var splits []Split
	id := 0
	for len(data) > 0 {
		end := blockSize
		if end >= len(data) {
			end = len(data)
		} else {
			// Extend to the end of the current line so records never
			// straddle splits.
			if nl := bytes.IndexByte(data[end:], '\n'); nl >= 0 {
				end += nl + 1
			} else {
				end = len(data)
			}
		}
		splits = append(splits, NewLineSplit(id, data[:end]))
		id++
		data = data[end:]
	}
	return splits
}

// PairSplit is a split over pre-formed key-value records, used by the sort
// example where inputs are (key, value) records rather than text lines.
type PairSplit struct {
	id    int
	pairs []kv.Pair
}

// NewPairSplit wraps records as a split.
func NewPairSplit(id int, pairs []kv.Pair) *PairSplit {
	return &PairSplit{id: id, pairs: pairs}
}

// ID implements Split.
func (s *PairSplit) ID() int { return s.id }

// Records implements Split.
func (s *PairSplit) Records(yield func(key, value []byte) error) error {
	for _, p := range s.pairs {
		if err := yield(p.Key, p.Value); err != nil {
			return err
		}
	}
	return nil
}
