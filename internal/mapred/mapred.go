// Package mapred is a MapReduce framework over MPI-D, mirroring the
// simulation system of the paper's §IV.A (Figure 4): rank 0 acts as the
// master (the jobtracker analogue), other ranks are mapper and reducer
// workers. Mappers scan input records, call the user map function, and emit
// through MPI_D_Send; MPI-D buffers, combines, partitions, realigns and
// ships the pairs; reducers drain MPI_D_Recv and call the user reduce
// function. Applications never touch communication, exactly as the paper
// prescribes: "our MPI-D interfaces can be also adopted inner the map and
// reduce runners, and we can keep them transparently for the developers."
package mapred

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/ict-repro/mpid/internal/bufpool"
	"github.com/ict-repro/mpid/internal/core"
	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/metrics"
	"github.com/ict-repro/mpid/internal/mpi"
)

// Emit is the output collector handed to map and reduce functions.
type Emit func(key, value []byte) error

// Mapper transforms one input record into zero or more key-value pairs.
type Mapper interface {
	Map(key, value []byte, emit Emit) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(key, value []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(key, value []byte, emit Emit) error { return f(key, value, emit) }

// Reducer folds a key's value list into zero or more output pairs.
type Reducer interface {
	Reduce(key []byte, values [][]byte, emit Emit) error
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key []byte, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key []byte, values [][]byte, emit Emit) error {
	return f(key, values, emit)
}

// CombinerFromReducer derives an MPI-D combiner from a reducer, the common
// Hadoop idiom the paper notes ("the combine function ... is always
// assigned as the reduce function"). The reducer must emit values under the
// same key for this to be sound; an emission under any other key would be
// silently re-filed under the input key and corrupt the shuffle, so the
// combiner checks every emitted key and falls back to not combining when
// one differs. CombinerFromReducerObserved additionally counts fallbacks.
func CombinerFromReducer(r Reducer) core.CombineFunc {
	return CombinerFromReducerObserved(r, nil)
}

// CombinerFromReducerObserved is CombinerFromReducer with a metrics hook:
// every fallback (reducer error, or an emission whose key differs from the
// combined key) increments mapred.combiner.fallback on reg, and key
// mismatches additionally increment mapred.combiner.key_mismatch. A nil
// registry records nothing.
func CombinerFromReducerObserved(r Reducer, reg *metrics.Registry) core.CombineFunc {
	fallbacks := reg.Counter("mapred.combiner.fallback")
	mismatches := reg.Counter("mapred.combiner.key_mismatch")
	return func(key []byte, values [][]byte) [][]byte {
		var out [][]byte
		mismatch := false
		err := r.Reduce(key, values, func(k, v []byte) error {
			if !bytes.Equal(k, key) {
				mismatch = true
			}
			out = append(out, append([]byte(nil), v...))
			return nil
		})
		if mismatch {
			mismatches.Inc()
		}
		if err != nil || mismatch {
			// A combiner has no error channel (it runs inside Send), and a
			// reducer emitting under a different key cannot be re-filed
			// under this one; fall back to not combining rather than
			// corrupting data.
			fallbacks.Inc()
			return values
		}
		return out
	}
}

// Job describes a MapReduce job.
type Job struct {
	// Name labels the job in errors.
	Name string
	// Mapper and Reducer are required.
	Mapper  Mapper
	Reducer Reducer
	// Combiner optionally pre-reduces map output locally. Use
	// CombinerFromReducer for the common case.
	Combiner core.CombineFunc
	// ObservedCombiner, when set, builds a metrics-observing variant of
	// Combiner bound to an engine's per-job registry (normally via
	// CombinerFromReducerObserved). Engines that combine outside the MPI-D
	// send path — the hadoop engine's node-level combine stage — prefer it
	// over Combiner so combiner fallbacks surface as
	// mapred.combiner.fallback in the job's /metrics.prom.
	ObservedCombiner func(*metrics.Registry) core.CombineFunc
	// NodeCombine lifts the combine stage from task scope to node scope.
	// On the MPI-D engine every mapper rank shares one core.NodeArena (the
	// in-process world is a single node), so duplicate keys fold across
	// co-located mappers before shipping; on the hadoop engine the flag of
	// the same name on hadoop.Config merges co-located map outputs behind
	// the shuffle server. Requires the arena send buffer (not LegacySend).
	NodeCombine bool
	// Partitioner overrides MPI-D's hash-mod default.
	Partitioner core.PartitionFunc
	// NumReducers is the reducer count (default 1).
	NumReducers int
	// SpillThreshold, SortValues and Async pass through to core.Config.
	SpillThreshold int
	SortValues     bool
	Async          bool
	// LegacySend and LegacyGroup select MPI-D's pre-optimization send
	// buffer and grouped drain (core.Config knobs of the same names) — the
	// A/B baseline the mpidbench harness measures the fast path against.
	LegacySend  bool
	LegacyGroup bool
	// Pool passes a shared buffer pool through to core.Config.Pool.
	Pool *bufpool.Pool
	// MaxTaskAttempts is how many times a failing map task is retried
	// before the job fails (mapred.map.max.attempts; Hadoop defaults to
	// 4). Values < 2 disable retries. With retries enabled, a task's
	// emissions are buffered and committed only when the attempt
	// succeeds, as Hadoop commits map output at task end — a failed
	// attempt leaves no trace in the shuffle.
	MaxTaskAttempts int
}

// Split is one input slice processed by a single map task, the analogue of
// an HDFS block handed to a mapper. Records returns the key-value records
// of the split; for text inputs use LineSplit.
type Split interface {
	// ID identifies the split for scheduling.
	ID() int
	// Records iterates the split's records in order.
	Records(yield func(key, value []byte) error) error
}

// Result is the collected output of a job.
type Result struct {
	// ByReducer holds each reducer's emissions in reduce order (keys
	// arrive lexicographically sorted within a reducer).
	ByReducer [][]kv.Pair
	// MapCounters aggregates the MPI-D counters over all mappers.
	MapCounters core.Counters
	// MapTasks is the number of splits processed.
	MapTasks int
	// FailedAttempts counts map attempts that errored and were retried.
	FailedAttempts int
	// MaxTaskExecutions is the highest number of times any single task was
	// launched: 1 in a fault-free run, > 1 when tasks were re-executed
	// after failures or tracker loss. (Populated by the hadoop engine.)
	MaxTaskExecutions int
}

// Pairs returns all output pairs merged and canonically sorted, the
// equivalent of concatenating the part-r-* files and sorting. The order is
// total — (key, value), with equal pairs kept in reducer order by a stable
// sort — so two results holding the same multiset of pairs render the same
// sequence even when duplicate keys land on different reducers. (A key-only
// unstable sort here made every duplicate-key workload's canonical output
// flip nondeterministically between runs.)
func (r *Result) Pairs() []kv.Pair {
	var all []kv.Pair
	for _, pairs := range r.ByReducer {
		all = append(all, pairs...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if c := kv.Compare(all[i].Key, all[j].Key); c != 0 {
			return c < 0
		}
		return kv.Compare(all[i].Value, all[j].Value) < 0
	})
	return all
}

// Tags for framework traffic (distinct from core's DataTag/DoneTag).
const (
	tagSched      = 101 // mapper -> master: scheduling events (typed payload)
	tagTaskAssign = 102 // master -> mapper: split id, or -1 for done
	tagOutput     = 103 // reducer -> master: serialized output pairs
	tagCounters   = 104 // mapper -> master: serialized counters
)

// Scheduling event types carried on tagSched.
const (
	schedRequest = 0 // give me work
	schedDone    = 1 // split N succeeded
	schedFailed  = 2 // split N's attempt errored
)

// Run executes the job on an in-process MPI world with 1 master rank,
// nMappers mapper ranks and job.NumReducers reducer ranks, scheduling
// splits dynamically, and returns the collected output.
func Run(job Job, splits []Split, nMappers int) (*Result, error) {
	return RunOnWorld(job, splits, nMappers, func(n int) (*mpi.World, error) {
		return mpi.NewWorld(n), nil
	})
}

// RunOnWorld is Run over a caller-chosen transport: newWorld receives the
// rank count the job needs (1 master + NumReducers + nMappers) and returns
// the world to execute on. The world is closed when the job finishes. The
// transport equivalence suite uses this to run the identical job over the
// chan, ring and TCP transports and compare outputs byte for byte.
func RunOnWorld(job Job, splits []Split, nMappers int, newWorld func(n int) (*mpi.World, error)) (*Result, error) {
	if job.Mapper == nil || job.Reducer == nil {
		return nil, errors.New("mapred: job needs Mapper and Reducer")
	}
	if nMappers <= 0 {
		return nil, fmt.Errorf("mapred: need at least one mapper, got %d", nMappers)
	}
	if job.NumReducers <= 0 {
		job.NumReducers = 1
	}

	nRanks := 1 + job.NumReducers + nMappers
	reducers := make([]int, job.NumReducers)
	for i := range reducers {
		reducers[i] = 1 + i // ranks 1..NumReducers
	}
	senders := make([]int, nMappers)
	for i := range senders {
		senders[i] = 1 + job.NumReducers + i
	}

	result := &Result{ByReducer: make([][]kv.Pair, job.NumReducers), MapTasks: len(splits)}

	// One shared arena for all mapper ranks: the in-process world is one
	// node, so NodeCombine means every sender combines into the same buffer.
	var nodeArena *core.NodeArena
	if job.NodeCombine {
		nodeArena = core.NewNodeArena()
	}

	w, err := newWorld(nRanks)
	if err != nil {
		return nil, fmt.Errorf("mapred: job %q: world: %w", job.Name, err)
	}
	defer w.Close()
	err = mpi.RunOn(w, func(c *mpi.Comm) error {
		cfg := core.Config{
			Comm:           c,
			Reducers:       reducers,
			Senders:        senders,
			Combiner:       job.Combiner,
			Partitioner:    job.Partitioner,
			SpillThreshold: job.SpillThreshold,
			SortValues:     job.SortValues,
			Async:          job.Async,
			LegacySend:     job.LegacySend,
			LegacyGroup:    job.LegacyGroup,
			NodeArena:      nodeArena,
			Pool:           job.Pool,
		}
		d, err := core.Init(cfg)
		if err != nil {
			return err
		}
		switch {
		case c.Rank() == 0:
			return runMaster(c, d, result, job, splits, nMappers, job.NumReducers)
		case d.IsReducer():
			return runReducer(c, d, job)
		default:
			return runMapper(c, d, job, splits)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("mapred: job %q: %w", job.Name, err)
	}
	return result, nil
}

// runMaster schedules splits to mappers on demand — re-queueing failed
// attempts up to the job's retry budget — and collects reducer outputs and
// mapper counters.
func runMaster(c *mpi.Comm, d *core.D, result *Result, job Job, splits []Split, nMappers, nReducers int) error {
	maxAttempts := job.MaxTaskAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	pending := make([]int, len(splits))
	for i := range pending {
		pending[i] = i
	}
	attempts := make(map[int]int)
	var waiters []int // mapper ranks parked until work appears or the job drains
	outstanding := 0  // splits assigned but not yet reported done/failed
	released := 0     // mappers told to shut down

	assign := func(rank, split int) error {
		return c.Send(rank, tagTaskAssign, kv.AppendVLong(nil, int64(split)))
	}
	release := func(rank int) error {
		released++
		return c.Send(rank, tagTaskAssign, kv.AppendVLong(nil, -1))
	}
	// dispatch gives rank work if any is pending, parks it if work may yet
	// reappear (failures), and releases it when the job has drained.
	dispatch := func(rank int) error {
		if len(pending) > 0 {
			split := pending[0]
			pending = pending[1:]
			outstanding++
			return assign(rank, split)
		}
		if outstanding > 0 {
			waiters = append(waiters, rank)
			return nil
		}
		return release(rank)
	}
	// drainWaiters re-evaluates parked mappers after state changes.
	drainWaiters := func() error {
		for len(waiters) > 0 {
			if len(pending) == 0 && outstanding > 0 {
				return nil // still parked
			}
			rank := waiters[0]
			waiters = waiters[1:]
			if err := dispatch(rank); err != nil {
				return err
			}
		}
		return nil
	}

	for released < nMappers {
		data, st, err := c.Recv(mpi.AnySource, tagSched)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			return errors.New("mapred: empty scheduling event")
		}
		switch data[0] {
		case schedRequest:
			if err := dispatch(st.Source); err != nil {
				return err
			}
		case schedDone:
			outstanding--
			if err := drainWaiters(); err != nil {
				return err
			}
		case schedFailed:
			split64, _, err := kv.ReadVLong(data[1:])
			if err != nil {
				return fmt.Errorf("mapred: corrupt failure event: %w", err)
			}
			split := int(split64)
			attempts[split]++
			result.FailedAttempts++
			if attempts[split] >= maxAttempts {
				return fmt.Errorf("mapred: map task %d failed %d time(s), budget %d exhausted",
					split, attempts[split], maxAttempts)
			}
			outstanding--
			pending = append(pending, split)
			if err := drainWaiters(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("mapred: unknown scheduling event %d", data[0])
		}
	}
	// Mapper counters.
	for i := 0; i < nMappers; i++ {
		data, _, err := c.Recv(mpi.AnySource, tagCounters)
		if err != nil {
			return err
		}
		cs, err := decodeCounters(data)
		if err != nil {
			return err
		}
		addCounters(&result.MapCounters, cs)
	}
	// Reducer outputs, indexed by reducer rank.
	for i := 0; i < nReducers; i++ {
		data, st, err := c.Recv(mpi.AnySource, tagOutput)
		if err != nil {
			return err
		}
		pairs, err := decodePairs(data)
		if err != nil {
			return err
		}
		result.ByReducer[st.Source-1] = pairs
	}
	return d.Finalize()
}

// runMapper pulls splits until the master says done, mapping each record.
// With retries enabled, an attempt's output is buffered and committed only
// on success; a failed attempt is reported to the master for re-queueing.
func runMapper(c *mpi.Comm, d *core.D, job Job, splits []Split) error {
	retries := job.MaxTaskAttempts > 1
	for {
		if err := c.Send(0, tagSched, []byte{schedRequest}); err != nil {
			return err
		}
		data, _, err := c.Recv(0, tagTaskAssign)
		if err != nil {
			return err
		}
		idx, _, err := kv.ReadVLong(data)
		if err != nil {
			return err
		}
		if idx < 0 {
			break
		}

		var taskErr error
		if retries {
			// Buffered commit: nothing reaches the shuffle unless the
			// whole attempt succeeds.
			var buffered []kv.Pair
			emit := func(key, value []byte) error {
				buffered = append(buffered, kv.Pair{Key: key, Value: value}.Clone())
				return nil
			}
			taskErr = splits[idx].Records(func(k, v []byte) error {
				return job.Mapper.Map(k, v, emit)
			})
			if taskErr == nil {
				for _, p := range buffered {
					if err := d.SendPair(p); err != nil {
						return err
					}
				}
			}
		} else {
			emit := func(key, value []byte) error { return d.Send(key, value) }
			taskErr = splits[idx].Records(func(k, v []byte) error {
				return job.Mapper.Map(k, v, emit)
			})
		}

		if taskErr != nil {
			if !retries {
				return fmt.Errorf("map task %d: %w", idx, taskErr)
			}
			event := append([]byte{schedFailed}, kv.AppendVLong(nil, idx)...)
			if err := c.Send(0, tagSched, event); err != nil {
				return err
			}
			continue
		}
		event := append([]byte{schedDone}, kv.AppendVLong(nil, idx)...)
		if err := c.Send(0, tagSched, event); err != nil {
			return err
		}
	}
	if err := d.Finalize(); err != nil {
		return err
	}
	return c.Send(0, tagCounters, encodeCounters(d.Counters()))
}

// runReducer drains MPI-D, reduces each group and ships the output to the
// master.
func runReducer(c *mpi.Comm, d *core.D, job Job) error {
	var out []byte
	emit := func(key, value []byte) error {
		out = kv.AppendPair(out, kv.Pair{Key: key, Value: value})
		return nil
	}
	for {
		key, values, err := d.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if err := job.Reducer.Reduce(key, values, emit); err != nil {
			return fmt.Errorf("reduce key %q: %w", key, err)
		}
	}
	if err := d.Finalize(); err != nil {
		return err
	}
	return c.Send(0, tagOutput, out)
}

// --------------------------------------------------------------------------
// Counter and pair serialization for master collection.

func encodeCounters(cs core.Counters) []byte {
	b := kv.AppendVLong(nil, cs.PairsSent)
	b = kv.AppendVLong(b, cs.PairsCombined)
	b = kv.AppendVLong(b, cs.Spills)
	b = kv.AppendVLong(b, cs.MessagesSent)
	b = kv.AppendVLong(b, cs.BytesSent)
	b = kv.AppendVLong(b, cs.PairsReceived)
	return b
}

func decodeCounters(b []byte) (core.Counters, error) {
	var cs core.Counters
	fields := []*int64{
		&cs.PairsSent, &cs.PairsCombined, &cs.Spills,
		&cs.MessagesSent, &cs.BytesSent, &cs.PairsReceived,
	}
	for _, f := range fields {
		v, n, err := kv.ReadVLong(b)
		if err != nil {
			return cs, fmt.Errorf("mapred: corrupt counters: %w", err)
		}
		*f = v
		b = b[n:]
	}
	return cs, nil
}

func addCounters(dst *core.Counters, src core.Counters) {
	dst.PairsSent += src.PairsSent
	dst.PairsCombined += src.PairsCombined
	dst.Spills += src.Spills
	dst.MessagesSent += src.MessagesSent
	dst.BytesSent += src.BytesSent
	dst.PairsReceived += src.PairsReceived
}

func decodePairs(b []byte) ([]kv.Pair, error) {
	var pairs []kv.Pair
	for len(b) > 0 {
		p, n, err := kv.ReadPair(b)
		if err != nil {
			return nil, fmt.Errorf("mapred: corrupt output: %w", err)
		}
		pairs = append(pairs, p.Clone())
		b = b[n:]
	}
	return pairs, nil
}
