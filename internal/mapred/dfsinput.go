package mapred

import (
	"bytes"
	"fmt"

	"github.com/ict-repro/mpid/internal/dfs"
	"github.com/ict-repro/mpid/internal/kv"
)

// DFSLineSplit is one HDFS block of a text file, read with Hadoop
// TextInputFormat semantics: a line belongs to the split in which it
// starts. A split that does not begin the file discards the (possibly
// partial) first line — it belongs to the previous split — and a line cut
// by the block boundary is completed by reading on into the next block.
// Every line of the file is therefore processed exactly once across
// splits, even though blocks cut the byte stream arbitrarily.
type DFSLineSplit struct {
	nn    *dfs.NameNode
	path  string
	index int
	// PreferNode hints the replica to read (the map task's node for
	// locality); -1 for no preference.
	PreferNode int
}

// DFSSplits returns one split per block of a dfs text file, the input the
// job scheduler hands to mappers.
func DFSSplits(nn *dfs.NameNode, path string) ([]Split, error) {
	blocks, err := nn.Blocks(path)
	if err != nil {
		return nil, err
	}
	splits := make([]Split, len(blocks))
	for i := range blocks {
		splits[i] = &DFSLineSplit{nn: nn, path: path, index: i, PreferNode: -1}
	}
	return splits, nil
}

// ID implements Split.
func (s *DFSLineSplit) ID() int { return s.index }

// Records implements Split: (global byte offset, line) records with
// TextInputFormat boundary handling.
func (s *DFSLineSplit) Records(yield func(key, value []byte) error) error {
	blocks, err := s.nn.Blocks(s.path)
	if err != nil {
		return err
	}
	if s.index < 0 || s.index >= len(blocks) {
		return fmt.Errorf("mapred: split %d out of range for %s", s.index, s.path)
	}
	data, err := s.nn.ReadBlock(blocks[s.index].ID, s.PreferNode)
	if err != nil {
		return err
	}

	// Global offset of this block's first byte.
	var base int64
	for i := 0; i < s.index; i++ {
		base += blocks[i].Size
	}

	pos := 0
	offset := base
	// A non-first split owns the line beginning at its first byte only if
	// the previous block ended exactly on a newline; otherwise that line
	// started in the previous split, which will reassemble it — skip
	// through its end here (TextInputFormat's back-up-one-byte rule).
	if s.index > 0 {
		prev, err := s.nn.ReadBlock(blocks[s.index-1].ID, s.PreferNode)
		if err != nil {
			return err
		}
		continuation := len(prev) == 0 || prev[len(prev)-1] != '\n'
		if continuation {
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				// The whole block is the middle of one line owned by an
				// earlier split: nothing to yield.
				return nil
			}
			pos = nl + 1
			offset += int64(pos)
		}
	}

	for pos < len(data) {
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl >= 0 {
			line := data[pos : pos+nl]
			if err := yield(kv.AppendVLong(nil, offset), line); err != nil {
				return err
			}
			pos += nl + 1
			offset += int64(nl + 1)
			continue
		}
		// Last line starts here and is cut by the block boundary (or the
		// file simply has no trailing newline). Complete it from the
		// following blocks.
		line := append([]byte(nil), data[pos:]...)
		for bi := s.index + 1; bi < len(blocks); bi++ {
			next, err := s.nn.ReadBlock(blocks[bi].ID, s.PreferNode)
			if err != nil {
				return err
			}
			if nl := bytes.IndexByte(next, '\n'); nl >= 0 {
				line = append(line, next[:nl]...)
				return yield(kv.AppendVLong(nil, offset), line)
			}
			line = append(line, next...)
		}
		return yield(kv.AppendVLong(nil, offset), line)
	}
	return nil
}
