package mapred

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ict-repro/mpid/internal/kv"
	"github.com/ict-repro/mpid/internal/metrics"
)

// dupKeyResult builds a Result whose output holds dup copies of every key
// with distinct values, spread round-robin across reducers, with each
// reducer's value order shuffled by seed. Two results built from different
// seeds hold the same pair multiset in different physical layouts — exactly
// what two engines (or two runs of one engine) hand to Pairs().
func dupKeyResult(nKeys, dup, reducers int, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	res := &Result{ByReducer: make([][]kv.Pair, reducers)}
	for k := 0; k < nKeys; k++ {
		key := []byte(fmt.Sprintf("key-%03d", k))
		r := k % reducers // same key always lands on one reducer
		for d := 0; d < dup; d++ {
			res.ByReducer[r] = append(res.ByReducer[r], kv.Pair{
				Key:   key,
				Value: []byte(fmt.Sprintf("val-%03d", d)),
			})
		}
	}
	for r := range res.ByReducer {
		rng.Shuffle(len(res.ByReducer[r]), func(i, j int) {
			res.ByReducer[r][i], res.ByReducer[r][j] = res.ByReducer[r][j], res.ByReducer[r][i]
		})
	}
	return res
}

// TestPairsCanonicalWithDuplicateKeys is the regression test for the
// nondeterministic canonicalization bug: Pairs() used an unstable
// sort.Slice comparing keys only, so any workload with duplicate output
// keys rendered its equal-key values in layout-dependent order and the
// cross-engine equality gates flaked. The canonical order is (key, value).
func TestPairsCanonicalWithDuplicateKeys(t *testing.T) {
	res := dupKeyResult(40, 12, 3, 1)
	pairs := res.Pairs()
	if len(pairs) != 40*12 {
		t.Fatalf("got %d pairs, want %d", len(pairs), 40*12)
	}
	for i := 1; i < len(pairs); i++ {
		c := kv.Compare(pairs[i-1].Key, pairs[i].Key)
		if c > 0 {
			t.Fatalf("pair %d: key %q after %q", i, pairs[i].Key, pairs[i-1].Key)
		}
		if c == 0 && kv.Compare(pairs[i-1].Value, pairs[i].Value) > 0 {
			t.Fatalf("pair %d: duplicate key %q values out of order: %q after %q",
				i, pairs[i].Key, pairs[i].Value, pairs[i-1].Value)
		}
	}
}

// TestPairsDeterministicAcrossLayouts asserts the property the equality
// gates depend on: two results holding the same multiset of output pairs in
// different reducer-local orders canonicalize to the identical sequence.
func TestPairsDeterministicAcrossLayouts(t *testing.T) {
	want := dupKeyResult(25, 8, 4, 7).Pairs()
	for seed := int64(8); seed < 16; seed++ {
		got := dupKeyResult(25, 8, 4, seed).Pairs()
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d pairs, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(want[i].Key, got[i].Key) || !bytes.Equal(want[i].Value, got[i].Value) {
				t.Fatalf("seed %d: pair %d is %s, want %s", seed, i, got[i], want[i])
			}
		}
	}
}

// TestCombinerFromReducerCombines covers the sound case: an order-
// insensitive same-key reducer combines and nothing falls back.
func TestCombinerFromReducerCombines(t *testing.T) {
	reg := metrics.NewRegistry()
	combine := CombinerFromReducerObserved(wordCountReducer, reg)
	out := combine([]byte("w"), [][]byte{
		kv.AppendVLong(nil, 1), kv.AppendVLong(nil, 1), kv.AppendVLong(nil, 3),
	})
	if len(out) != 1 {
		t.Fatalf("combined to %d values, want 1", len(out))
	}
	if n, _, _ := kv.ReadVLong(out[0]); n != 5 {
		t.Fatalf("combined count = %d, want 5", n)
	}
	if v := reg.Counter("mapred.combiner.fallback").Value(); v != 0 {
		t.Fatalf("fallback counter = %d, want 0", v)
	}
}

// TestCombinerFromReducerKeyMismatchFallsBack is the regression test for
// the silent-corruption bug: a derived reducer emitting under a different
// key than its input had its output re-filed under the input key. The
// combiner must detect the mismatch, return the values uncombined, and
// count the fallback.
func TestCombinerFromReducerKeyMismatchFallsBack(t *testing.T) {
	// A reducer that re-keys its output — sound as a reducer, unsound as a
	// combiner (e.g. an inverting job emitting (value, key)).
	rekeying := ReducerFunc(func(key []byte, values [][]byte, emit Emit) error {
		return emit(append(append([]byte(nil), key...), '!'), kv.AppendVLong(nil, int64(len(values))))
	})
	reg := metrics.NewRegistry()
	combine := CombinerFromReducerObserved(rekeying, reg)
	in := [][]byte{[]byte("a"), []byte("b")}
	out := combine([]byte("k"), in)
	if len(out) != len(in) {
		t.Fatalf("fallback returned %d values, want the %d originals", len(out), len(in))
	}
	for i := range in {
		if !bytes.Equal(out[i], in[i]) {
			t.Fatalf("value %d rewritten to %q, want %q untouched", i, out[i], in[i])
		}
	}
	if v := reg.Counter("mapred.combiner.key_mismatch").Value(); v != 1 {
		t.Fatalf("key_mismatch counter = %d, want 1", v)
	}
	if v := reg.Counter("mapred.combiner.fallback").Value(); v != 1 {
		t.Fatalf("fallback counter = %d, want 1", v)
	}
	// The nil-registry derivation must behave identically, just uncounted.
	out = CombinerFromReducer(rekeying)([]byte("k"), in)
	if len(out) != len(in) || !bytes.Equal(out[0], in[0]) {
		t.Fatalf("nil-registry fallback altered values: %q", out)
	}
}
