package mapred

import (
	"bytes"
	"testing"
	"time"
)

// encodeCanonical frames a result's canonical pair list for byte-exact
// comparison across configurations.
func encodeCanonical(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf []byte
	for _, p := range res.Pairs() {
		buf = append(buf, p.Key...)
		buf = append(buf, 0)
		buf = append(buf, p.Value...)
		buf = append(buf, 1)
	}
	return buf
}

// TestNodeCombineSharedArena: with Job.NodeCombine every mapper rank
// shares one NodeArena, so the incremental combiner folds duplicate keys
// across all co-located maps before anything ships. Output must be
// byte-identical to the per-rank run, and the aggregate shipped bytes
// strictly lower for a workload with cross-rank key overlap.
func TestNodeCombineSharedArena(t *testing.T) {
	text := genText(120_000, 9)
	splits := SplitText(text, 4_000)
	// Tiny in-memory splits map faster than mapper goroutines spin up, so
	// the first requester can drain the whole queue and leave nothing for
	// the arena to fold across ranks. A yield per split keeps every rank
	// in the game, which is the shape this test is about.
	slowMapper := MapperFunc(func(key, value []byte, emit Emit) error {
		time.Sleep(time.Millisecond)
		return wordCountMapper.Map(key, value, emit)
	})
	job := Job{
		Name:        "wc-nodearena",
		Mapper:      slowMapper,
		Reducer:     wordCountReducer,
		Combiner:    CombinerFromReducer(wordCountReducer),
		NumReducers: 2,
	}
	sharedJob := job
	sharedJob.NodeCombine = true
	shared, err := Run(sharedJob, splits, 5)
	if err != nil {
		t.Fatal(err)
	}
	if shared.MapCounters.BytesSent == 0 {
		t.Fatal("shared-arena byte counter not recorded")
	}
	// The baseline's shipped bytes depend on dynamic split scheduling: on
	// a loaded machine one mapper rank can grab every split, and a single
	// rank's per-rank arena combines as completely as the shared one, so
	// that run ties instead of losing. Never-worse must hold on every
	// run; strict reduction on at least one of a few attempts.
	strictly := false
	for attempt := 0; attempt < 5; attempt++ {
		base, err := Run(job, splits, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeCanonical(t, shared), encodeCanonical(t, base)) {
			t.Fatal("NodeCombine changed job output")
		}
		if base.MapCounters.BytesSent == 0 {
			t.Fatal("baseline byte counter not recorded")
		}
		if shared.MapCounters.BytesSent > base.MapCounters.BytesSent {
			t.Fatalf("shared arena shipped more bytes: %d > %d",
				shared.MapCounters.BytesSent, base.MapCounters.BytesSent)
		}
		if shared.MapCounters.BytesSent < base.MapCounters.BytesSent {
			strictly = true
			break
		}
	}
	if !strictly {
		t.Fatal("shared arena never shipped fewer bytes than the per-rank baseline")
	}
}

// TestNodeCombineRejectsLegacySend: the shared arena needs the arena fast
// path; combining across ranks was never built into the legacy per-pair
// map buffer.
func TestNodeCombineRejectsLegacySend(t *testing.T) {
	text := genText(2_000, 10)
	job := Job{
		Name:        "wc-conflict",
		Mapper:      wordCountMapper,
		Reducer:     wordCountReducer,
		NodeCombine: true,
		LegacySend:  true,
	}
	if _, err := Run(job, SplitText(text, 1_000), 2); err == nil {
		t.Fatal("NodeCombine+LegacySend should be rejected")
	}
}
