package mapred

import (
	"strings"
	"testing"

	"github.com/ict-repro/mpid/internal/dfs"
	"github.com/ict-repro/mpid/internal/kv"
)

// writeDFS stores text in a fresh dfs cluster and returns the namenode.
func writeDFS(t *testing.T, text []byte, blockSize int64) *dfs.NameNode {
	t.Helper()
	nn, err := dfs.NewCluster(3, dfs.Config{BlockSize: blockSize, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := nn.Create("/input.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(text); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return nn
}

// collectLines gathers (offset, line) pairs from all splits of a file.
func collectLines(t *testing.T, nn *dfs.NameNode, path string) (lines []string, offsets []int64) {
	t.Helper()
	splits, err := DFSSplits(nn, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range splits {
		if err := s.Records(func(k, v []byte) error {
			off, _, err := kv.ReadVLong(k)
			if err != nil {
				return err
			}
			offsets = append(offsets, off)
			lines = append(lines, string(v))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return lines, offsets
}

func TestDFSSplitsExactlyOnceDelivery(t *testing.T) {
	// A tiny block size guarantees lines straddle block boundaries; every
	// line must still be delivered exactly once with its global offset.
	text := []byte("alpha bravo\ncharlie\ndelta echo foxtrot golf\nhotel\nindia juliet\n")
	for _, blockSize := range []int64{5, 7, 13, 64, 1024} {
		nn := writeDFS(t, text, blockSize)
		lines, offsets := collectLines(t, nn, "/input.txt")
		want := strings.Split(strings.TrimRight(string(text), "\n"), "\n")
		if len(lines) != len(want) {
			t.Fatalf("blockSize %d: %d lines, want %d: %q", blockSize, len(lines), len(want), lines)
		}
		// Lines may be yielded out of global order across splits; verify
		// each (offset, line) pair against the source text.
		for i, off := range offsets {
			end := int(off) + len(lines[i])
			if end > len(text) || string(text[off:end]) != lines[i] {
				t.Fatalf("blockSize %d: offset %d claims %q", blockSize, off, lines[i])
			}
		}
		seen := make(map[int64]bool)
		for _, off := range offsets {
			if seen[off] {
				t.Fatalf("blockSize %d: offset %d delivered twice", blockSize, off)
			}
			seen[off] = true
		}
	}
}

func TestDFSSplitsNoTrailingNewline(t *testing.T) {
	text := []byte("first\nsecond\nunterminated tail")
	nn := writeDFS(t, text, 8)
	lines, _ := collectLines(t, nn, "/input.txt")
	found := false
	for _, l := range lines {
		if l == "unterminated tail" {
			found = true
		}
	}
	if !found || len(lines) != 3 {
		t.Fatalf("lines = %q", lines)
	}
}

func TestDFSSplitLineSpanningManyBlocks(t *testing.T) {
	// One line longer than several blocks: the split owning its start must
	// reassemble it across blocks; middle blocks yield nothing.
	long := strings.Repeat("x", 100)
	text := []byte("short\n" + long + "\nlast\n")
	nn := writeDFS(t, text, 16)
	lines, _ := collectLines(t, nn, "/input.txt")
	if len(lines) != 3 {
		t.Fatalf("%d lines: %q", len(lines), lines)
	}
	foundLong := false
	for _, l := range lines {
		if l == long {
			foundLong = true
		}
	}
	if !foundLong {
		t.Fatal("long spanning line lost or truncated")
	}
}

func TestDFSSplitsMissingFile(t *testing.T) {
	nn, err := dfs.NewCluster(2, dfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DFSSplits(nn, "/ghost"); err == nil {
		t.Fatal("DFSSplits of missing file succeeded")
	}
}

func TestWordCountJobOverDFS(t *testing.T) {
	// Full pipeline: generate text, store it in the mini-HDFS, run the
	// real MPI-D WordCount over DFS splits, compare with the sequential
	// reference.
	text := genText(40_000, 6)
	nn := writeDFS(t, text, 4096)

	splits, err := DFSSplits(nn, "/input.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 5 {
		t.Fatalf("only %d splits; block size not applied?", len(splits))
	}
	job := Job{
		Name:        "dfs-wordcount",
		Mapper:      wordCountMapper,
		Reducer:     wordCountReducer,
		Combiner:    CombinerFromReducer(wordCountReducer),
		NumReducers: 2,
	}
	res, err := Run(job, splits, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeCountPairs(t, res.Pairs())
	want := refWordCount(text)
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
}

func TestWordCountJobOverDFSWithNodeFailure(t *testing.T) {
	// Replication means the job still sees every record after a datanode
	// dies between write and read.
	text := genText(10_000, 9)
	nn := writeDFS(t, text, 2048)
	nn.DataNode(0).Fail()

	splits, err := DFSSplits(nn, "/input.txt")
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Mapper: wordCountMapper, Reducer: wordCountReducer}
	res, err := Run(job, splits, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeCountPairs(t, res.Pairs())
	want := refWordCount(text)
	var gotTotal, wantTotal int64
	for _, v := range got {
		gotTotal += v
	}
	for _, v := range want {
		wantTotal += v
	}
	if gotTotal != wantTotal {
		t.Fatalf("word totals differ after failover: %d vs %d", gotTotal, wantTotal)
	}
}
