package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ict-repro/mpid/internal/metrics"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Type: "x"}) // must not panic
	if r.Events() != nil || r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder must report nothing")
	}
	c := r.NewChild(7, "alice")
	if c == nil {
		t.Fatal("NewChild on nil recorder must return a usable recorder")
	}
	c.Emit(Event{Type: "x"})
	got := c.Events()
	if len(got) != 1 || got[0].Job != 7 || got[0].Tenant != "alice" {
		t.Fatalf("child of nil recorder: events = %+v", got)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Type: "e", Attempt: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("Total/Dropped = %d/%d, want 10/6", r.Total(), r.Dropped())
	}
	ev := r.Events()
	// Newest 4 survive, oldest first.
	for i, e := range ev {
		if e.Attempt != 6+i {
			t.Fatalf("event %d has Attempt %d, want %d", i, e.Attempt, 6+i)
		}
		if i > 0 && ev[i-1].Seq >= e.Seq {
			t.Fatalf("events not in Seq order: %d then %d", ev[i-1].Seq, e.Seq)
		}
	}
}

func TestRecorderEmitStamps(t *testing.T) {
	r := NewRecorder(8)
	before := time.Now()
	r.Emit(Event{Type: EvSpill})
	ev := r.Events()
	if len(ev) != 1 {
		t.Fatalf("Len = %d, want 1", len(ev))
	}
	if ev[0].Seq == 0 {
		t.Fatal("Emit must stamp Seq")
	}
	if ev[0].Time.Before(before) {
		t.Fatal("Emit must stamp Time when zero")
	}
	// Explicit Time survives.
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	r.Emit(Event{Type: EvSpill, Time: fixed})
	ev = r.Events()
	if !ev[1].Time.Equal(fixed) {
		t.Fatalf("explicit Time overwritten: %v", ev[1].Time)
	}
}

func TestChildRecorderFoldsIntoParent(t *testing.T) {
	parent := NewRecorder(16)
	c1 := parent.NewChild(1, "alice")
	c2 := parent.NewChild(2, "bob")
	c1.Emit(Event{Type: EvAttemptScheduled, Task: "m0"})
	c2.Emit(Event{Type: EvAttemptLost, Task: "m1"})
	c1.Emit(Event{Type: EvJobDone})

	if got := len(parent.Events()); got != 3 {
		t.Fatalf("parent has %d events, want 3", got)
	}
	if got := len(c1.Events()); got != 2 {
		t.Fatalf("child1 has %d events, want 2", got)
	}
	for _, e := range c1.Events() {
		if e.Job != 1 || e.Tenant != "alice" {
			t.Fatalf("child event not stamped: %+v", e)
		}
	}
	// Parent view interleaves by Seq and keeps per-job identity.
	var jobs []int64
	for _, e := range parent.Events() {
		jobs = append(jobs, e.Job)
	}
	if jobs[0] != 1 || jobs[1] != 2 || jobs[2] != 1 {
		t.Fatalf("parent job order = %v, want [1 2 1]", jobs)
	}
	// A grandchild folds transitively.
	gc := c1.NewChild(0, "")
	gc.Emit(Event{Type: EvSpill})
	if got := len(parent.Events()); got != 4 {
		t.Fatalf("parent has %d events after grandchild emit, want 4", got)
	}
}

func TestRecorderOfType(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(Event{Type: EvSpill})
	r.Emit(Event{Type: EvAttemptLost})
	r.Emit(Event{Type: EvSpill})
	if got := len(r.OfType(EvSpill)); got != 2 {
		t.Fatalf("OfType(spill) = %d, want 2", got)
	}
	if got := len(r.OfType(EvProbeVerdict)); got != 0 {
		t.Fatalf("OfType(probe.verdict) = %d, want 0", got)
	}
}

// TestRecorderConcurrentEmit exercises the ring under the race detector:
// many goroutines emitting through children into one parent.
func TestRecorderConcurrentEmit(t *testing.T) {
	parent := NewRecorder(64)
	const workers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := parent.NewChild(int64(w+1), "t")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Emit(Event{Type: EvSpill, Attempt: i})
			}
		}()
	}
	wg.Wait()
	if parent.Total() != workers*each {
		t.Fatalf("Total = %d, want %d", parent.Total(), workers*each)
	}
	if parent.Len() != 64 {
		t.Fatalf("Len = %d, want 64 (ring cap)", parent.Len())
	}
	ev := parent.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i-1].Seq >= ev[i].Seq {
			t.Fatalf("Events not strictly Seq-ordered at %d", i)
		}
	}
}

func TestRenderEvents(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(Event{Type: EvAttemptLost, Job: 3, Tenant: "alice", Task: "m1", Attempt: 1, Detail: "tracker 2 lost"})
	out := RenderEvents(r.Events())
	for _, want := range []string{"attempt.lost", "alice", "m1", "tracker 2 lost", "seq", "type"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderEvents missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkRecorderEmit is the overhead budget behind the "event emission
// costs <3% on a WordCount bench" acceptance point: emission is
// control-plane only (per attempt/spill/failure, never per record), so a
// sub-microsecond Emit is invisible next to a multi-millisecond task.
func BenchmarkRecorderEmit(b *testing.B) {
	r := NewRecorder(DefaultEventCap).NewChild(1, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Event{Type: EvSpill, Task: "m0", Attempt: 1, Detail: "bench"})
	}
}

func TestWritePromLintsClean(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("rpc.calls").Add(41)
	reg.Counter("serve.submitted").Inc()
	reg.Gauge("serve.running").Set(3)
	tm := reg.Timer("job.latency")
	for i := 1; i <= 100; i++ {
		tm.Observe(float64(i) / 1000)
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, "mpid", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := LintProm(buf.Bytes()); err != nil {
		t.Fatalf("WriteProm output fails its own lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE mpid_rpc_calls counter",
		"mpid_rpc_calls_total 41",
		"# TYPE mpid_serve_running gauge",
		"mpid_serve_running 3",
		"# TYPE mpid_job_latency summary",
		"mpid_job_latency{quantile=\"0.5\"}",
		"mpid_job_latency{quantile=\"0.99\"}",
		"mpid_job_latency_count 100",
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("exposition must end with # EOF:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"rpc.calls":    "mpid_rpc_calls",
		"shuffle-rate": "mpid_shuffle_rate",
		"a b":          "mpid_a_b",
	}
	for in, want := range cases {
		if got := PromName("mpid", in); got != want {
			t.Fatalf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := PromName("", "9lives"); got != "_9lives" {
		t.Fatalf("leading digit must be guarded, got %q", got)
	}
}

func TestLintPromRejects(t *testing.T) {
	cases := map[string]string{
		"no EOF":             "# TYPE a counter\na_total 1\n",
		"empty line":         "# TYPE a counter\n\na_total 1\n# EOF\n",
		"undeclared sample":  "b 1\n# EOF\n",
		"counter w/o total":  "# TYPE a counter\na 1\n# EOF\n",
		"bad value":          "# TYPE a gauge\na one\n# EOF\n",
		"duplicate TYPE":     "# TYPE a gauge\n# TYPE a counter\na 1\n# EOF\n",
		"labeled gauge":      "# TYPE a gauge\na{x=\"1\"} 1\n# EOF\n",
		"bad summary suffix": "# TYPE a summary\na_bogus 1\n# EOF\n",
		"malformed TYPE":     "# TYPE a\na 1\n# EOF\n",
		"unknown kind":       "# TYPE a histogram\na 1\n# EOF\n",
	}
	for name, body := range cases {
		if err := LintProm([]byte(body)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", name, body)
		}
	}
	// A gauge legitimately named x_total must still lint: suffix stripping
	// only applies when the stripped family was declared.
	ok := "# TYPE x_total gauge\nx_total 5\n# EOF\n"
	if err := LintProm([]byte(ok)); err != nil {
		t.Errorf("gauge named x_total rejected: %v", err)
	}
}

func TestSamplerRatesAndRings(t *testing.T) {
	reg := metrics.NewRegistry()
	smp := NewSampler(reg, SeriesConfig{
		Capacity: 4,
		Counters: []string{"c"},
		Gauges:   []string{"g"},
		Timers:   []string{"t"},
	})
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	// First sample: no baseline, so rate is zero (not a spike).
	reg.Counter("c").Add(100)
	smp.Sample(base)
	// Then 50 increments over 2 seconds = 25/s.
	reg.Counter("c").Add(50)
	reg.Gauge("g").Set(7)
	for i := 1; i <= 10; i++ {
		reg.Timer("t").Observe(float64(i) / 100) // 10..100 ms
	}
	smp.Sample(base.Add(2 * time.Second))

	snap := smp.Snapshot()
	byName := map[string]Series{}
	for _, s := range snap.Series {
		byName[s.Name] = s
	}
	c := byName["c"]
	if c.Kind != "rate" || len(c.Points) != 2 {
		t.Fatalf("counter series = %+v", c)
	}
	if c.Points[0].V != 0 {
		t.Fatalf("first counter sample rate = %v, want 0", c.Points[0].V)
	}
	if c.Points[1].V != 25 {
		t.Fatalf("counter rate = %v, want 25/s", c.Points[1].V)
	}
	if g := byName["g"]; g.Kind != "gauge" || g.Points[1].V != 7 {
		t.Fatalf("gauge series = %+v", g)
	}
	p50 := byName["t.p50"]
	if p50.Kind != "ms" || len(p50.Points) != 2 {
		t.Fatalf("timer p50 series = %+v", p50)
	}
	// 10..100ms observations: p50 is ~55ms; allow interpolation slack.
	if v := p50.Points[1].V; v < 40 || v > 70 {
		t.Fatalf("timer p50 = %v ms, want ~55", v)
	}
	if _, ok := byName["t.p99"]; !ok {
		t.Fatal("timer must expand to a .p99 series")
	}

	// Ring wraps at capacity 4.
	for i := 3; i <= 10; i++ {
		smp.Sample(base.Add(time.Duration(i) * time.Second))
	}
	snap = smp.Snapshot()
	for _, s := range snap.Series {
		if len(s.Points) != 4 {
			t.Fatalf("series %s has %d points, want 4 (ring cap)", s.Name, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i-1].UnixMs >= s.Points[i].UnixMs {
				t.Fatalf("series %s points not oldest-first", s.Name)
			}
		}
	}

	// JSON body has the documented shape.
	body, err := smp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded SeriesSnapshot
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("series.json does not round-trip: %v", err)
	}
	if len(decoded.Series) != len(snap.Series) {
		t.Fatalf("round-trip lost series: %d vs %d", len(decoded.Series), len(snap.Series))
	}
}

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Sample(time.Now())
	s.Stop()
	if snap := s.Snapshot(); len(snap.Series) != 0 {
		t.Fatal("nil sampler must report no series")
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := metrics.NewRegistry()
	smp := NewSampler(reg, SeriesConfig{Interval: time.Millisecond, Counters: []string{"c"}})
	smp.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(smp.Snapshot().Series) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	smp.Stop()
	if len(smp.Snapshot().Series) == 0 {
		t.Fatal("sampler goroutine took no samples")
	}
	smp.Stop() // second Stop is a no-op
}

func TestSpark(t *testing.T) {
	if got := Spark(nil, 10); got != "" {
		t.Fatalf("Spark(nil) = %q", got)
	}
	flat := Spark([]float64{5, 5, 5}, 10)
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q, want all-low", flat)
	}
	ramp := []rune(Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 10))
	if len(ramp) != 8 || ramp[0] != '▁' || ramp[7] != '█' {
		t.Fatalf("ramp sparkline = %q", string(ramp))
	}
	// Width trims to the newest values.
	if got := Spark([]float64{0, 0, 9, 9}, 2); got != "▁▁" {
		t.Fatalf("trimmed sparkline = %q, want the two newest (flat) values", got)
	}
}

func TestRenderSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	smp := NewSampler(reg, SeriesConfig{Gauges: []string{"g"}})
	reg.Gauge("g").Set(42)
	smp.Sample(time.Now())
	out := RenderSeries(smp.Snapshot(), 0)
	if !strings.Contains(out, "g") || !strings.Contains(out, "last=42") {
		t.Fatalf("RenderSeries output:\n%s", out)
	}
}

func TestHealth(t *testing.T) {
	var nilH *Health
	if ok, res := nilH.Evaluate(); !ok || res != nil {
		t.Fatal("nil Health must evaluate healthy with no checks")
	}
	nilH.Register("x", func() Status { return Healthy("") }) // no panic

	h := NewHealth()
	ok, _ := h.Evaluate()
	if !ok {
		t.Fatal("empty Health must be healthy")
	}
	dead := 0
	h.Register("probe", func() Status {
		if dead > 0 {
			return Unhealthy("%d dead trackers", dead)
		}
		return Healthy("all trackers answering")
	})
	h.Register("saturation", func() Status { return Healthy("0/8 backlogged") })

	ok, results := h.Evaluate()
	if !ok || len(results) != 2 {
		t.Fatalf("ok=%v results=%d, want healthy with 2 checks", ok, len(results))
	}
	if results[0].Name != "probe" || results[1].Name != "saturation" {
		t.Fatalf("results out of registration order: %+v", results)
	}
	dead = 2
	ok, results = h.Evaluate()
	if ok {
		t.Fatal("one failing check must flip overall health")
	}
	out := RenderHealth(ok, results)
	if !strings.HasPrefix(out, "unhealthy\n") || !strings.Contains(out, "2 dead trackers") || !strings.Contains(out, "FAIL") {
		t.Fatalf("RenderHealth output:\n%s", out)
	}
	dead = 0
	ok, results = h.Evaluate()
	if !ok {
		t.Fatal("health must recover when the check clears")
	}
	if out := RenderHealth(ok, results); !strings.HasPrefix(out, "ok\n") {
		t.Fatalf("RenderHealth output:\n%s", out)
	}
}
